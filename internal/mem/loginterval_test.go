package mem

import (
	"math/rand"
	"testing"
)

// TestLocalNewIntervalMatchesNaiveClear cross-checks the masked whole-uint64
// log-bit clear in the local NewInterval path against a per-word reference on
// randomized write patterns, including memory sizes that are not multiples of
// the line or the 64-bit chunk.
func TestLocalNewIntervalMatchesNaiveClear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		words := 600 + rng.Intn(97) // deliberately ragged tail
		s, _ := newTestSystem(4, words)
		for i := 0; i < 400; i++ {
			s.Store(rng.Intn(4), int64(rng.Intn(words)), int64(i))
		}
		groupMask := uint64(1 + rng.Intn(15))

		// Reference: clear one bit at a time for every word of every line
		// last written by a group member.
		want := make([]uint64, len(s.logBits))
		copy(want, s.logBits)
		lw := int64(s.cfg.LineWords)
		for line, writer := range s.lastWriter {
			if writer == 0 || groupMask&(1<<uint(writer-1)) == 0 {
				continue
			}
			for a := int64(line) * lw; a < (int64(line)+1)*lw && a < int64(words); a++ {
				want[a>>6] &^= 1 << uint(a&63)
			}
		}

		s.NewInterval(groupMask, false)
		for i := range want {
			if s.logBits[i] != want[i] {
				t.Fatalf("trial %d (words=%d, mask=%b): logBits[%d] = %064b, want %064b",
					trial, words, groupMask, i, s.logBits[i], want[i])
			}
		}
	}
}
