package mem

import (
	"math/rand"
	"testing"
)

// TestLocalNewIntervalMatchesNaiveClear cross-checks the masked whole-uint64
// log-bit clear in the local NewInterval path against a per-word reference on
// randomized write patterns, including memory sizes that are not multiples of
// the line or the 64-bit chunk.
func TestLocalNewIntervalMatchesNaiveClear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		words := 600 + rng.Intn(97) // deliberately ragged tail
		s, _ := newTestSystem(4, words)
		for i := 0; i < 400; i++ {
			s.Store(rng.Intn(4), int64(rng.Intn(words)), int64(i))
		}
		groupMask := 1 + rng.Intn(15)
		group := NewCoreSet(4)
		for c := 0; c < 4; c++ {
			if groupMask&(1<<uint(c)) != 0 {
				group.Add(c)
			}
		}

		// Shard-aware views of the directory state.
		logBit := func(a int64) bool {
			sh := s.shardOf(a)
			off := a - sh.base
			return sh.logBits[off>>6]&(1<<uint(off&63)) != 0
		}
		lastWriterOf := func(line int64) int32 {
			sh := s.shardOfLine(line)
			return sh.lastWriter[line-sh.lineBase]
		}

		// Reference: clear one bit at a time for every word of every line
		// last written by a group member.
		want := make([]bool, words)
		for a := 0; a < words; a++ {
			want[a] = logBit(int64(a))
		}
		lw := int64(s.cfg.LineWords)
		nLines := (int64(words) + lw - 1) / lw
		for line := int64(0); line < nLines; line++ {
			writer := lastWriterOf(line)
			if writer == 0 || !group.Has(int(writer-1)) {
				continue
			}
			for a := line * lw; a < (line+1)*lw && a < int64(words); a++ {
				want[a] = false
			}
		}

		s.NewInterval(group, false)
		for a := 0; a < words; a++ {
			if logBit(int64(a)) != want[a] {
				t.Fatalf("trial %d (words=%d, group=%v): log bit of word %d = %v, want %v",
					trial, words, group, a, logBit(int64(a)), want[a])
			}
		}
	}
}
