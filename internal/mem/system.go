package mem

import (
	"fmt"
	"math/bits"

	"acr/internal/energy"
)

// Config describes the memory subsystem, defaulting to the paper's Table I.
type Config struct {
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig
	// LineWords is the cache line size in 64-bit words.
	LineWords int
	// Latencies in core cycles at 1.09 GHz (Table I: L1 3.66 ns, L2
	// 24.77 ns, main memory 120 ns). L1 hits are charged one cycle: the
	// 4-stage load pipeline is fully overlapped in the in-order model.
	L1HitCycles int64
	L2HitCycles int64
	DRAMCycles  int64
	// WordsPerCycle is the sustained bandwidth of one memory controller
	// in 64-bit words per core cycle (Table I: 7.6 GB/s at 1.09 GHz ≈
	// 0.87 words/cycle).
	WordsPerCycle float64
	// CoresPerController: one memory controller per 4 cores (Table I).
	CoresPerController int
}

// DefaultConfig returns the Table I configuration.
func DefaultConfig() Config {
	return Config{
		L1I:                CacheConfig{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64},
		L1D:                CacheConfig{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L2:                 CacheConfig{SizeBytes: 512 << 10, Ways: 8, LineBytes: 64},
		LineWords:          8,
		L1HitCycles:        1,
		L2HitCycles:        27,
		DRAMCycles:         131,
		WordsPerCycle:      0.87,
		CoresPerController: 4,
	}
}

// coreCaches is the private cache stack of one core.
type coreCaches struct {
	l1d *Cache
	l2  *Cache
}

// LevelStats counts one cache level's activity for one core. Writebacks
// counts dirty victims migrated to the next level down (L1→L2, L2→DRAM).
type LevelStats struct {
	Hits, Misses, Writebacks int64
}

// CoreStats aggregates the private cache stack activity of one core.
type CoreStats struct {
	L1D, L2 LevelStats
	// Fills counts line fills from DRAM (L2 misses serviced by memory).
	Fills int64
}

// Stats is the whole-hierarchy activity summary. The counters are
// maintained unconditionally — they are plain increments on paths that
// already charge energy — and are pure observation: reading them has no
// timing or energy effect, so results stay bit-identical whether or not
// anything consumes them.
type Stats struct {
	// PerCore holds cache-stack counters indexed by core id.
	PerCore []CoreStats
	// CommEdges counts directory communication observations: accesses to a
	// line another core wrote within the current checkpoint interval (the
	// coherence traffic coordinated-local checkpointing keys off, §V-E).
	CommEdges int64
	// LogBitSets counts first-store log-bit transitions — the directory
	// traffic that triggers checkpoint logging (§II-A).
	LogBitSets int64
	// FlushedLines counts dirty lines written back at checkpoint
	// establishment.
	FlushedLines int64
}

// System is the whole-machine memory subsystem.
type System struct {
	cfg    Config
	nCores int
	meter  *energy.Meter

	dram []int64
	// logBits: one bit per word; set when the word's old value has been
	// captured (or amnesically omitted) for the current checkpoint
	// interval (paper §II-A: the directory's log bit; held per word here
	// because logging is word-granular in this reproduction).
	logBits []uint64

	// lastWriter[line] = core id + 1 of the last core to store to the
	// line; 0 if never written. lastWriteIvl[line] is the checkpoint
	// interval of that store. Both drive communication observation.
	lastWriter   []int32
	lastWriteIvl []int32
	curInterval  int32

	// comm[c] is a bitmask of cores with which core c communicated during
	// the current interval (read a line another core wrote this
	// interval, or overwrote such a line).
	comm []uint64

	caches []coreCaches
	stats  Stats
}

// NewSystem builds a memory system with the given number of data words.
func NewSystem(cfg Config, nCores, words int, meter *energy.Meter) *System {
	if nCores > 64 {
		panic("mem: at most 64 cores supported (communication bitmask)")
	}
	if words <= 0 {
		panic("mem: non-positive memory size")
	}
	lines := (words + cfg.LineWords - 1) / cfg.LineWords
	s := &System{
		cfg:          cfg,
		nCores:       nCores,
		meter:        meter,
		dram:         make([]int64, words),
		logBits:      make([]uint64, (words+63)/64),
		lastWriter:   make([]int32, lines),
		lastWriteIvl: make([]int32, lines),
		comm:         make([]uint64, nCores),
		caches:       make([]coreCaches, nCores),
	}
	for i := range s.caches {
		s.caches[i] = coreCaches{l1d: NewCache(cfg.L1D), l2: NewCache(cfg.L2)}
	}
	s.stats.PerCore = make([]CoreStats, nCores)
	return s
}

// Stats returns a copy of the hierarchy activity counters.
func (s *System) Stats() Stats {
	out := s.stats
	out.PerCore = append([]CoreStats(nil), s.stats.PerCore...)
	return out
}

// Words returns the size of data memory in words.
func (s *System) Words() int { return len(s.dram) }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// ReadWord reads memory functionally, without timing or energy effects.
// Used by program init, checkpoint verification and tests.
func (s *System) ReadWord(addr int64) int64 {
	return s.dram[addr]
}

// WriteWord writes memory functionally, bypassing caches, timing, energy,
// log bits and communication tracking. Used by program init and by the
// recovery handler when restoring state (the restore's cost is charged
// explicitly by the recovery handler).
func (s *System) WriteWord(addr, val int64) {
	s.dram[addr] = val
}

//acr:spec-safe
func (s *System) checkAddr(addr int64) {
	if addr < 0 || addr >= int64(len(s.dram)) {
		panic(fmt.Sprintf("mem: address %d out of range [0,%d)", addr, len(s.dram)))
	}
}

// access runs addr through core's cache stack and returns the latency,
// charging energy as it goes. Dirty victims migrate down the hierarchy:
// an L1 eviction installs the dirty line into L2; an L2 eviction writes it
// back to memory.
func (s *System) access(core int, line int64, store bool) int64 {
	cc := &s.caches[core]
	st := &s.stats.PerCore[core]
	s.meter.Add(energy.L1DAccess, 1)
	hit, victim, victimDirty := cc.l1d.Access(line, store)
	if hit {
		st.L1D.Hits++
		return s.cfg.L1HitCycles
	}
	st.L1D.Misses++
	if victimDirty {
		// Write the dirty L1 victim back into L2.
		st.L1D.Writebacks++
		s.meter.Add(energy.L2Access, 1)
		_, v2, v2Dirty := cc.l2.Access(victim, true)
		if v2Dirty && v2 != victim {
			st.L2.Writebacks++
			s.meter.Add(energy.DRAMWrite, uint64(s.cfg.LineWords))
		}
	}
	s.meter.Add(energy.L2Access, 1)
	hit, victim, victimDirty = cc.l2.Access(line, false)
	if hit {
		st.L2.Hits++
		return s.cfg.L2HitCycles
	}
	st.L2.Misses++
	if victimDirty {
		// Write-back from L2 to memory: one line of words.
		st.L2.Writebacks++
		s.meter.Add(energy.DRAMWrite, uint64(s.cfg.LineWords))
	}
	// Line fill from DRAM.
	st.Fills++
	s.meter.Add(energy.DRAMRead, uint64(s.cfg.LineWords))
	return s.cfg.DRAMCycles
}

// Load performs a data load by core, returning the value and access latency
// in cycles. Communication with the line's last writer (within the current
// interval) is recorded for local checkpointing.
func (s *System) Load(core int, addr int64) (val, cycles int64) {
	s.checkAddr(addr)
	line := addr / int64(s.cfg.LineWords)
	cycles = s.access(core, line, false)
	s.observeComm(core, line)
	return s.dram[addr], cycles
}

// Store performs a data store by core. It returns the old value of the
// word, whether this is the first store to the word in the current
// checkpoint interval (log bit was clear; the caller — the checkpoint
// manager — logs or omits the old value and the bit is set here), and the
// access latency.
func (s *System) Store(core int, addr, val int64) (old int64, first bool, cycles int64) {
	s.checkAddr(addr)
	line := addr / int64(s.cfg.LineWords)
	cycles = s.access(core, line, true)
	s.observeComm(core, line)
	old = s.dram[addr]
	s.dram[addr] = val

	w, b := addr/64, uint(addr%64)
	if s.logBits[w]&(1<<b) == 0 {
		s.logBits[w] |= 1 << b
		first = true
		s.stats.LogBitSets++
	}
	s.lastWriter[line] = int32(core) + 1
	s.lastWriteIvl[line] = s.curInterval
	return old, first, cycles
}

func (s *System) observeComm(core int, line int64) {
	lw := s.lastWriter[line]
	if lw != 0 && int(lw-1) != core && s.lastWriteIvl[line] == s.curInterval {
		s.comm[core] |= 1 << uint(lw-1)
		s.comm[lw-1] |= 1 << uint(core)
		s.stats.CommEdges++
	}
}

// CommMask returns core's communication bitmask for the current interval.
func (s *System) CommMask(core int) uint64 { return s.comm[core] }

// CommGroups partitions cores into connected components of the current
// interval's communication graph. Each group is returned as a bitmask; the
// groups are disjoint and cover all cores, ordered by lowest member.
func (s *System) CommGroups() []uint64 {
	assigned := uint64(0)
	var groups []uint64
	for c := 0; c < s.nCores; c++ {
		if assigned&(1<<uint(c)) != 0 {
			continue
		}
		// BFS over the adjacency masks.
		group := uint64(1 << uint(c))
		frontier := group
		for frontier != 0 {
			next := uint64(0)
			for w := 0; w < s.nCores; w++ {
				if frontier&(1<<uint(w)) != 0 {
					next |= s.comm[w]
				}
			}
			frontier = next &^ group
			group |= next
		}
		assigned |= group
		groups = append(groups, group)
	}
	return groups
}

// NewInterval begins a new checkpoint interval for the given cores
// (bitmask): their log bits and communication edges are cleared. Under
// global checkpointing the mask covers all cores and all log bits clear;
// under local checkpointing only words last written by group members are
// cleared (the group checkpoints its own data).
func (s *System) NewInterval(groupMask uint64, allCores bool) {
	if allCores {
		for i := range s.logBits {
			s.logBits[i] = 0
		}
		for c := range s.comm {
			s.comm[c] = 0
		}
		s.curInterval++
		return
	}
	// Local: clear log bits of words on lines last written by the group.
	// A line is LineWords contiguous bits of logBits, so the clear is a
	// handful of masked whole-uint64 writes per line, not a per-word loop.
	lw := s.cfg.LineWords
	for line, writer := range s.lastWriter {
		if writer == 0 || groupMask&(1<<uint(writer-1)) == 0 {
			continue
		}
		base := int64(line) * int64(lw)
		end := base + int64(lw)
		if end > int64(len(s.dram)) {
			end = int64(len(s.dram))
		}
		for a := base; a < end; {
			lo := uint(a & 63)
			n := int64(64 - lo)
			if a+n > end {
				n = end - a
			}
			s.logBits[a>>6] &^= (^uint64(0) >> (64 - uint(n))) << lo
			a += n
		}
	}
	for c := 0; c < s.nCores; c++ {
		if groupMask&(1<<uint(c)) != 0 {
			s.comm[c] = 0
		}
	}
	s.curInterval++
}

// FlushDirty cleans all dirty lines in the cache stacks of the cores in
// groupMask, charging DRAM write energy, and returns the number of lines
// flushed. This models the write-back of dirty data when a checkpoint is
// established.
func (s *System) FlushDirty(groupMask uint64) int {
	total := 0
	for c := 0; c < s.nCores; c++ {
		if groupMask&(1<<uint(c)) == 0 {
			continue
		}
		n := s.caches[c].l1d.FlushDirty()
		n += s.caches[c].l2.FlushDirty()
		total += n
	}
	s.stats.FlushedLines += int64(total)
	s.meter.Add(energy.DRAMWrite, uint64(total*s.cfg.LineWords))
	return total
}

// AppendDirtyWords appends to buf the addresses of every word whose log
// bit is set — the words updated since the interval's log bits were last
// cleared — and returns the extended slice. The scan is pure observation:
// no timing, energy or log-bit effect. The differential checkpoint
// strategy uses the log-bit array as its epoch dirty bitmap, scanning it
// at establishment (before NewInterval clears it) to capture the epoch's
// delta.
func (s *System) AppendDirtyWords(buf []int64) []int64 {
	for w, mask := range s.logBits {
		for mask != 0 {
			buf = append(buf, int64(w*64)+int64(bits.TrailingZeros64(mask)))
			mask &= mask - 1
		}
	}
	return buf
}

// SnapshotWords copies the functional memory image into buf (grown as
// needed) and returns it. Pure observation, used by checkpoint strategies
// that retain full images.
func (s *System) SnapshotWords(buf []int64) []int64 {
	if cap(buf) < len(s.dram) {
		buf = make([]int64, len(s.dram))
	}
	buf = buf[:len(s.dram)]
	copy(buf, s.dram)
	return buf
}

// fastTierSpeedup is the bandwidth advantage of the fast (NVM-like)
// checkpoint tier over the DRAM channel: the log store sits on-package,
// off the shared memory controllers.
const fastTierSpeedup = 4

// FastTransferCycles returns the time, in cycles, to move the given number
// of words through the fast checkpoint tier (tiered strategies' log
// traffic). The tier shares the controller fan-out but sustains
// fastTierSpeedup times the per-controller bandwidth.
func (s *System) FastTransferCycles(words int) int64 {
	if words <= 0 {
		return 0
	}
	perCtrl := float64(words) / float64(s.Controllers())
	return int64(perCtrl/(s.cfg.WordsPerCycle*fastTierSpeedup)) + 1
}

// Controllers returns the number of memory controllers.
func (s *System) Controllers() int {
	n := s.nCores / s.cfg.CoresPerController
	if n < 1 {
		n = 1
	}
	return n
}

// TransferCycles returns the time, in cycles, to move the given number of
// words through the memory controllers, assuming uniform interleaving
// (Table I bandwidth: 7.6 GB/s per controller, one per four cores).
func (s *System) TransferCycles(words int) int64 {
	if words <= 0 {
		return 0
	}
	perCtrl := float64(words) / float64(s.Controllers())
	return int64(perCtrl/s.cfg.WordsPerCycle) + 1
}

// ResetCaches invalidates every cache (used between independent runs).
func (s *System) ResetCaches() {
	for i := range s.caches {
		s.caches[i].l1d.Reset()
		s.caches[i].l2.Reset()
	}
}

// DirtyLines reports the current number of dirty lines across the cache
// stacks of cores in groupMask, without flushing.
func (s *System) DirtyLines(groupMask uint64) int {
	n := 0
	for c := 0; c < s.nCores; c++ {
		if groupMask&(1<<uint(c)) != 0 {
			n += s.caches[c].l1d.DirtyLines() + s.caches[c].l2.DirtyLines()
		}
	}
	return n
}

// AllCoresMask returns the bitmask covering every core.
func (s *System) AllCoresMask() uint64 {
	if s.nCores == 64 {
		return ^uint64(0)
	}
	return (1 << uint(s.nCores)) - 1
}
