package mem

import (
	"fmt"
	"math/bits"

	"acr/internal/energy"
)

// Config describes the memory subsystem, defaulting to the paper's Table I.
type Config struct {
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig
	// LineWords is the cache line size in 64-bit words.
	LineWords int
	// Latencies in core cycles at 1.09 GHz (Table I: L1 3.66 ns, L2
	// 24.77 ns, main memory 120 ns). L1 hits are charged one cycle: the
	// 4-stage load pipeline is fully overlapped in the in-order model.
	L1HitCycles int64
	L2HitCycles int64
	DRAMCycles  int64
	// WordsPerCycle is the sustained bandwidth of one memory controller
	// in 64-bit words per core cycle (Table I: 7.6 GB/s at 1.09 GHz ≈
	// 0.87 words/cycle).
	WordsPerCycle float64
	// CoresPerController: one memory controller per 4 cores (Table I).
	CoresPerController int
}

// DefaultConfig returns the Table I configuration.
func DefaultConfig() Config {
	return Config{
		L1I:                CacheConfig{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64},
		L1D:                CacheConfig{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L2:                 CacheConfig{SizeBytes: 512 << 10, Ways: 8, LineBytes: 64},
		LineWords:          8,
		L1HitCycles:        1,
		L2HitCycles:        27,
		DRAMCycles:         131,
		WordsPerCycle:      0.87,
		CoresPerController: 4,
	}
}

// MaxCores is the sanity ceiling on the simulated core count. It bounds
// nothing architectural — the sharded directory and multi-word comm bitsets
// scale past it — but catches configs that would allocate absurd state.
const MaxCores = 4096

// ConfigError reports an invalid memory-system or machine-scale
// configuration. sim.New surfaces it unwrapped so callers can distinguish
// configuration mistakes from runtime failures.
type ConfigError struct {
	Reason string
}

func (e *ConfigError) Error() string { return "mem: invalid config: " + e.Reason }

// coreCaches is the private cache stack of one core.
type coreCaches struct {
	l1d *Cache
	l2  *Cache
}

// LevelStats counts one cache level's activity for one core. Writebacks
// counts dirty victims migrated to the next level down (L1→L2, L2→DRAM).
type LevelStats struct {
	Hits, Misses, Writebacks int64
}

// CoreStats aggregates the private cache stack activity of one core.
type CoreStats struct {
	L1D, L2 LevelStats
	// Fills counts line fills from DRAM (L2 misses serviced by memory).
	Fills int64
}

// Stats is the whole-hierarchy activity summary. The counters are
// maintained unconditionally — they are plain increments on paths that
// already charge energy — and are pure observation: reading them has no
// timing or energy effect, so results stay bit-identical whether or not
// anything consumes them.
type Stats struct {
	// PerCore holds cache-stack counters indexed by core id.
	PerCore []CoreStats
	// CommEdges counts directory communication observations: accesses to a
	// line another core wrote within the current checkpoint interval (the
	// coherence traffic coordinated-local checkpointing keys off, §V-E).
	CommEdges int64
	// LogBitSets counts first-store log-bit transitions — the directory
	// traffic that triggers checkpoint logging (§II-A).
	LogBitSets int64
	// FlushedLines counts dirty lines written back at checkpoint
	// establishment.
	FlushedLines int64
}

// CtrlStats is one shard memory controller's bandwidth ledger, in 64-bit
// words moved through that controller. Pure observation: the counters ride
// paths that already charge energy and never feed timing, so results are
// bit-identical whether or not anything reads them.
type CtrlStats struct {
	// FillWords: line fills read from this shard's DRAM slice.
	FillWords int64
	// WritebackWords: dirty cache victims written back to this shard.
	WritebackWords int64
	// FlushWords: checkpoint-establishment flush traffic landing here.
	FlushWords int64
	// LogBitSets: first-store log-bit transitions in this shard's slice of
	// the directory.
	LogBitSets int64
}

// ShardInfo describes one shard's extent and controller activity.
type ShardInfo struct {
	Index int
	// Base is the first word address the shard owns; Words its extent.
	Base  int64
	Words int
	Ctrl  CtrlStats
}

// shard owns one contiguous, line-aligned slice of the memory plane: its
// dram words, per-word log bits, per-line last-writer/interval directory
// entries, and the bandwidth ledger of the memory controller fronting it.
// Shards are line-disjoint by construction (a cache line never straddles a
// shard boundary), so shard-local state can be walked concurrently — the
// differential strategy's seal scan exploits that.
type shard struct {
	// base is the first word address owned; lineBase the first global
	// line index.
	base     int64
	lineBase int64
	dram     []int64
	// logBits: one bit per word of the shard's slice; set when the word's
	// old value has been captured (or amnesically omitted) for the current
	// checkpoint interval (paper §II-A). Tail bits past the slice length
	// are never set.
	logBits []uint64
	// lastWriter[l] = core id + 1 of the last core to store to the shard's
	// l-th line; 0 if never written. lastWriteIvl[l] is the checkpoint
	// interval of that store. Both drive communication observation.
	lastWriter   []int32
	lastWriteIvl []int32
	ctrl         CtrlStats
}

// System is the whole-machine memory subsystem: a line-sharded directory in
// front of flat word-addressed DRAM. Address space is split into
// power-of-two, line-aligned contiguous shards (one per memory controller,
// Table I's cores-per-controller ratio), each owning its words' data, log
// bits and last-writer entries. Contiguous (rather than interleaved)
// shard extents keep every address-ordered scan — AppendDirtyWords most
// critically — bit-identical to the pre-sharding flat arrays.
type System struct {
	cfg    Config
	nCores int
	meter  *energy.Meter

	words  int
	shards []shard
	// shardShift: shard index of addr is addr>>shardShift (shards span
	// 1<<shardShift words).
	shardShift  uint
	curInterval int32

	// comm is the per-core communication bitset for the current interval:
	// row c (commW words at comm[c*commW:]) holds the cores with which c
	// communicated (read a line another core wrote this interval, or
	// overwrote such a line).
	commW int
	comm  []uint64

	caches []coreCaches
	stats  Stats

	// allCores is the full core set, built once; AllCores returns it and
	// callers treat it as read-only.
	allCores CoreSet
}

// shardLayout picks the shard width: the smallest power of two ≥ 64 words
// that yields at most one shard per memory controller (rounded up to a
// power of two). When LineWords is not itself a power of two a single
// shard covers everything — the line-disjointness invariant must hold and
// ragged line alignment cannot be guaranteed across interior boundaries.
func shardLayout(words, lineWords, controllers int) uint {
	if lineWords&(lineWords-1) != 0 {
		shift := uint(6)
		for 1<<shift < words {
			shift++
		}
		return shift
	}
	target := 1
	for target < controllers {
		target <<= 1
	}
	per := (words + target - 1) / target
	shift := uint(6)
	for 1<<shift < per || 1<<shift < lineWords {
		shift++
	}
	return shift
}

// NewSystem builds a memory system with the given number of data words.
// Invalid scale parameters return a *ConfigError; earlier revisions
// panicked here (notably on nCores > 64, a hard cap the sharded directory
// and multi-word comm bitsets remove).
func NewSystem(cfg Config, nCores, words int, meter *energy.Meter) (*System, error) {
	if nCores <= 0 {
		return nil, &ConfigError{Reason: fmt.Sprintf("core count %d must be positive", nCores)}
	}
	if nCores > MaxCores {
		return nil, &ConfigError{Reason: fmt.Sprintf("%d cores exceed the %d-core sanity ceiling", nCores, MaxCores)}
	}
	if words <= 0 {
		return nil, &ConfigError{Reason: "non-positive memory size"}
	}
	if cfg.LineWords <= 0 {
		return nil, &ConfigError{Reason: fmt.Sprintf("line size %d words must be positive", cfg.LineWords)}
	}
	s := &System{
		cfg:    cfg,
		nCores: nCores,
		meter:  meter,
		words:  words,
		commW:  (nCores + 63) / 64,
		caches: make([]coreCaches, nCores),
	}
	s.shardShift = shardLayout(words, cfg.LineWords, s.Controllers())
	per := 1 << s.shardShift
	nShards := (words + per - 1) / per
	s.shards = make([]shard, nShards)
	for i := range s.shards {
		base := i * per
		n := words - base
		if n > per {
			n = per
		}
		lines := (n + cfg.LineWords - 1) / cfg.LineWords
		s.shards[i] = shard{
			base:         int64(base),
			lineBase:     int64(base / cfg.LineWords),
			dram:         make([]int64, n),
			logBits:      make([]uint64, (n+63)/64),
			lastWriter:   make([]int32, lines),
			lastWriteIvl: make([]int32, lines),
		}
	}
	s.comm = make([]uint64, nCores*s.commW)
	for i := range s.caches {
		s.caches[i] = coreCaches{l1d: NewCache(cfg.L1D), l2: NewCache(cfg.L2)}
	}
	s.stats.PerCore = make([]CoreStats, nCores)
	s.allCores = NewCoreSet(nCores)
	for c := 0; c < nCores; c++ {
		s.allCores.Add(c)
	}
	return s, nil
}

// MustNewSystem is NewSystem for callers with statically valid configs
// (tests, workload builders); it panics on error.
func MustNewSystem(cfg Config, nCores, words int, meter *energy.Meter) *System {
	s, err := NewSystem(cfg, nCores, words, meter)
	if err != nil {
		panic(err)
	}
	return s
}

// Stats returns a copy of the hierarchy activity counters.
func (s *System) Stats() Stats {
	out := s.stats
	out.PerCore = append([]CoreStats(nil), s.stats.PerCore...)
	return out
}

// Shards returns the number of directory shards.
func (s *System) Shards() int { return len(s.shards) }

// ShardInfo returns shard i's extent and controller ledger.
func (s *System) ShardInfo(i int) ShardInfo {
	sh := &s.shards[i]
	return ShardInfo{Index: i, Base: sh.base, Words: len(sh.dram), Ctrl: sh.ctrl}
}

// Words returns the size of data memory in words.
func (s *System) Words() int { return s.words }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// shardOf returns the shard owning addr.
//
//acr:spec-safe
func (s *System) shardOf(addr int64) *shard {
	return &s.shards[addr>>s.shardShift]
}

// shardOfLine returns the shard owning the given global line.
//
//acr:spec-safe
func (s *System) shardOfLine(line int64) *shard {
	return &s.shards[(line*int64(s.cfg.LineWords))>>s.shardShift]
}

// ReadWord reads memory functionally, without timing or energy effects.
// Used by program init, checkpoint verification and tests.
func (s *System) ReadWord(addr int64) int64 {
	sh := s.shardOf(addr)
	return sh.dram[addr-sh.base]
}

// WriteWord writes memory functionally, bypassing caches, timing, energy,
// log bits and communication tracking. Used by program init and by the
// recovery handler when restoring state (the restore's cost is charged
// explicitly by the recovery handler).
func (s *System) WriteWord(addr, val int64) {
	sh := s.shardOf(addr)
	sh.dram[addr-sh.base] = val
}

//acr:spec-safe
func (s *System) checkAddr(addr int64) {
	if addr < 0 || addr >= int64(s.words) {
		panic(fmt.Sprintf("mem: address %d out of range [0,%d)", addr, s.words))
	}
}

// access runs addr through core's cache stack and returns the latency,
// charging energy as it goes. Dirty victims migrate down the hierarchy:
// an L1 eviction installs the dirty line into L2; an L2 eviction writes it
// back to memory, charged to the victim line's home shard controller.
//
//acr:noalloc
func (s *System) access(core int, line int64, store bool) int64 {
	cc := &s.caches[core]
	st := &s.stats.PerCore[core]
	s.meter.Add(energy.L1DAccess, 1)
	hit, victim, victimDirty := cc.l1d.Access(line, store)
	if hit {
		st.L1D.Hits++
		return s.cfg.L1HitCycles
	}
	st.L1D.Misses++
	if victimDirty {
		// Write the dirty L1 victim back into L2.
		st.L1D.Writebacks++
		s.meter.Add(energy.L2Access, 1)
		_, v2, v2Dirty := cc.l2.Access(victim, true)
		if v2Dirty && v2 != victim {
			st.L2.Writebacks++
			s.meter.Add(energy.DRAMWrite, uint64(s.cfg.LineWords))
			s.shardOfLine(v2).ctrl.WritebackWords += int64(s.cfg.LineWords)
		}
	}
	s.meter.Add(energy.L2Access, 1)
	hit, victim, victimDirty = cc.l2.Access(line, false)
	if hit {
		st.L2.Hits++
		return s.cfg.L2HitCycles
	}
	st.L2.Misses++
	if victimDirty {
		// Write-back from L2 to memory: one line of words.
		st.L2.Writebacks++
		s.meter.Add(energy.DRAMWrite, uint64(s.cfg.LineWords))
		s.shardOfLine(victim).ctrl.WritebackWords += int64(s.cfg.LineWords)
	}
	// Line fill from DRAM.
	st.Fills++
	s.meter.Add(energy.DRAMRead, uint64(s.cfg.LineWords))
	s.shardOfLine(line).ctrl.FillWords += int64(s.cfg.LineWords)
	return s.cfg.DRAMCycles
}

// Load performs a data load by core, returning the value and access latency
// in cycles. Communication with the line's last writer (within the current
// interval) is recorded for local checkpointing.
//
//acr:noalloc
func (s *System) Load(core int, addr int64) (val, cycles int64) {
	s.checkAddr(addr)
	line := addr / int64(s.cfg.LineWords)
	cycles = s.access(core, line, false)
	sh := s.shardOf(addr)
	s.observeComm(core, sh, line-sh.lineBase)
	return sh.dram[addr-sh.base], cycles
}

// Store performs a data store by core. It returns the old value of the
// word, whether this is the first store to the word in the current
// checkpoint interval (log bit was clear; the caller — the checkpoint
// manager — logs or omits the old value and the bit is set here), and the
// access latency.
//
//acr:noalloc
func (s *System) Store(core int, addr, val int64) (old int64, first bool, cycles int64) {
	s.checkAddr(addr)
	line := addr / int64(s.cfg.LineWords)
	cycles = s.access(core, line, true)
	sh := s.shardOf(addr)
	lline := line - sh.lineBase
	s.observeComm(core, sh, lline)
	off := addr - sh.base
	old = sh.dram[off]
	sh.dram[off] = val

	w, b := off>>6, uint(off&63)
	if sh.logBits[w]&(1<<b) == 0 {
		sh.logBits[w] |= 1 << b
		first = true
		s.stats.LogBitSets++
		sh.ctrl.LogBitSets++
	}
	sh.lastWriter[lline] = int32(core) + 1
	sh.lastWriteIvl[lline] = s.curInterval
	return old, first, cycles
}

// observeComm records a communication edge between core and the last
// writer of the shard-local line, if that write happened this interval.
//
//acr:noalloc
func (s *System) observeComm(core int, sh *shard, lline int64) {
	lw := sh.lastWriter[lline]
	if lw != 0 && int(lw-1) != core && sh.lastWriteIvl[lline] == s.curInterval {
		w := int(lw - 1)
		s.comm[core*s.commW+(w>>6)] |= 1 << uint(w&63)
		s.comm[w*s.commW+(core>>6)] |= 1 << uint(core&63)
		s.stats.CommEdges++
	}
}

// CommSet returns core's communication set for the current interval as a
// read-only view (aliasing the live directory row; callers must Clone
// before mutating).
func (s *System) CommSet(core int) CoreSet {
	return CoreSet(s.comm[core*s.commW : (core+1)*s.commW])
}

// CommGroups partitions cores into connected components of the current
// interval's communication graph. The groups are disjoint, cover all
// cores, and are ordered by lowest member; each is freshly allocated.
func (s *System) CommGroups() []CoreSet {
	assigned := NewCoreSet(s.nCores)
	next := NewCoreSet(s.nCores)
	var groups []CoreSet
	for c := 0; c < s.nCores; c++ {
		if assigned.Has(c) {
			continue
		}
		// BFS over the adjacency rows.
		group := NewCoreSet(s.nCores)
		group.Add(c)
		frontier := group.Clone()
		for !frontier.Empty() {
			next.Reset()
			frontier.ForEach(func(w int) {
				next.Or(s.CommSet(w))
			})
			for i := range frontier {
				frontier[i] = next[i] &^ group[i]
				group[i] |= next[i]
			}
		}
		assigned.Or(group)
		groups = append(groups, group)
	}
	return groups
}

// NewInterval begins a new checkpoint interval for the given cores: their
// log bits and communication rows are cleared. Under global checkpointing
// the group covers all cores and all log bits clear; under local
// checkpointing only words last written by group members are cleared (the
// group checkpoints its own data).
func (s *System) NewInterval(group CoreSet, allCores bool) {
	if allCores {
		for i := range s.shards {
			clear(s.shards[i].logBits)
		}
		clear(s.comm)
		s.curInterval++
		return
	}
	// Local: clear log bits of words on lines last written by the group.
	// A line is LineWords contiguous bits of a shard's logBits (lines
	// never straddle shards), so the clear is a handful of masked
	// whole-uint64 writes per line, not a per-word loop.
	lw := s.cfg.LineWords
	for i := range s.shards {
		sh := &s.shards[i]
		for line, writer := range sh.lastWriter {
			if writer == 0 || !group.Has(int(writer-1)) {
				continue
			}
			base := int64(line) * int64(lw)
			end := base + int64(lw)
			if end > int64(len(sh.dram)) {
				end = int64(len(sh.dram))
			}
			for a := base; a < end; {
				lo := uint(a & 63)
				n := int64(64 - lo)
				if a+n > end {
					n = end - a
				}
				sh.logBits[a>>6] &^= (^uint64(0) >> (64 - uint(n))) << lo
				a += n
			}
		}
	}
	for c := 0; c < s.nCores; c++ {
		if group.Has(c) {
			clear(s.comm[c*s.commW : (c+1)*s.commW])
		}
	}
	s.curInterval++
}

// FlushDirty cleans all dirty lines in the cache stacks of the cores in
// group, charging DRAM write energy and each line's home shard controller,
// and returns the number of lines flushed. This models the write-back of
// dirty data when a checkpoint is established.
func (s *System) FlushDirty(group CoreSet) int {
	total := 0
	charge := func(line int64) {
		s.shardOfLine(line).ctrl.FlushWords += int64(s.cfg.LineWords)
	}
	for c := 0; c < s.nCores; c++ {
		if !group.Has(c) {
			continue
		}
		n := s.caches[c].l1d.FlushDirtyEach(charge)
		n += s.caches[c].l2.FlushDirtyEach(charge)
		total += n
	}
	s.stats.FlushedLines += int64(total)
	s.meter.Add(energy.DRAMWrite, uint64(total*s.cfg.LineWords))
	return total
}

// AppendDirtyWords appends to buf the addresses of every word whose log
// bit is set — the words updated since the interval's log bits were last
// cleared — and returns the extended slice, in ascending address order
// (shards are contiguous and walked in order, so the scan is bit-identical
// to the pre-sharding flat array's). The scan is pure observation: no
// timing, energy or log-bit effect. The differential checkpoint strategy
// uses the log-bit array as its epoch dirty bitmap, scanning it at
// establishment (before NewInterval clears it) to capture the epoch's
// delta.
func (s *System) AppendDirtyWords(buf []int64) []int64 {
	for i := range s.shards {
		buf = s.AppendDirtyWordsShard(i, buf)
	}
	return buf
}

// AppendDirtyWordsShard is AppendDirtyWords restricted to shard i's slice
// of the address space. Shards are word-disjoint, so distinct shards may
// be scanned concurrently (the differential strategy seals shard-parallel);
// concatenating the per-shard results in shard order reproduces
// AppendDirtyWords exactly.
func (s *System) AppendDirtyWordsShard(i int, buf []int64) []int64 {
	sh := &s.shards[i]
	for w, mask := range sh.logBits {
		for mask != 0 {
			buf = append(buf, sh.base+int64(w*64)+int64(bits.TrailingZeros64(mask)))
			mask &= mask - 1
		}
	}
	return buf
}

// SnapshotWords copies the functional memory image into buf (grown as
// needed) and returns it. Pure observation, used by checkpoint strategies
// that retain full images.
func (s *System) SnapshotWords(buf []int64) []int64 {
	if cap(buf) < s.words {
		buf = make([]int64, s.words)
	}
	buf = buf[:s.words]
	for i := range s.shards {
		sh := &s.shards[i]
		copy(buf[sh.base:], sh.dram)
	}
	return buf
}

// fastTierSpeedup is the bandwidth advantage of the fast (NVM-like)
// checkpoint tier over the DRAM channel: the log store sits on-package,
// off the shared memory controllers.
const fastTierSpeedup = 4

// FastTransferCycles returns the time, in cycles, to move the given number
// of words through the fast checkpoint tier (tiered strategies' log
// traffic). The tier shares the controller fan-out but sustains
// fastTierSpeedup times the per-controller bandwidth.
func (s *System) FastTransferCycles(words int) int64 {
	if words <= 0 {
		return 0
	}
	perCtrl := float64(words) / float64(s.Controllers())
	return int64(perCtrl/(s.cfg.WordsPerCycle*fastTierSpeedup)) + 1
}

// Controllers returns the number of memory controllers.
func (s *System) Controllers() int {
	n := s.nCores / s.cfg.CoresPerController
	if n < 1 {
		n = 1
	}
	return n
}

// TransferCycles returns the time, in cycles, to move the given number of
// words through the memory controllers, assuming uniform interleaving
// (Table I bandwidth: 7.6 GB/s per controller, one per four cores).
func (s *System) TransferCycles(words int) int64 {
	if words <= 0 {
		return 0
	}
	perCtrl := float64(words) / float64(s.Controllers())
	return int64(perCtrl/s.cfg.WordsPerCycle) + 1
}

// ResetCaches invalidates every cache (used between independent runs).
func (s *System) ResetCaches() {
	for i := range s.caches {
		s.caches[i].l1d.Reset()
		s.caches[i].l2.Reset()
	}
}

// DirtyLines reports the current number of dirty lines across the cache
// stacks of cores in group, without flushing.
func (s *System) DirtyLines(group CoreSet) int {
	n := 0
	for c := 0; c < s.nCores; c++ {
		if group.Has(c) {
			n += s.caches[c].l1d.DirtyLines() + s.caches[c].l2.DirtyLines()
		}
	}
	return n
}

// AllCores returns the set containing every core. The set is built once at
// construction and shared across calls — callers must treat it as
// read-only (Clone before mutating).
//
//acr:noalloc
func (s *System) AllCores() CoreSet { return s.allCores }

// NCores returns the simulated core count.
func (s *System) NCores() int { return s.nCores }
