package mem

import (
	"acr/internal/energy"
)

// SpecView is one core's isolated window onto the System during a
// speculative parallel round. While a round is open, all System state
// shared between cores — the shards' dram words, log bits and last-writer
// directory entries, comm rows, global stats, the meter — is frozen: the
// view reads it but never writes it. The core's own writes land in a
// private overlay, its cache stack mutates for real behind the per-set
// rollback journal (caches are core-private), and everything else the
// quantum produces (write log, first-store words, comm observations,
// energy counts, shard-controller traffic, touched-line sets) is buffered
// for the commit step.
//
// Bit-identity argument: absent line conflicts with the other quanta of
// the round, a quantum's speculative execution observes exactly the state
// serial execution would have shown it — the frozen shared state is the
// round-start state, and no other core may have changed any line this
// core touches (that is the conflict rule). Commit then applies the
// buffered effects; effects that are order-sensitive across cores (hook
// calls) are replayed by the engine in the serial merge order, and the
// rest (dram words, directory entries, log bits) are line-disjoint
// between quanta, so per-view application order cannot matter.
//
// A SpecView is owned by one worker goroutine during the round and by the
// main goroutine during commit/abort; the round's channel handoff
// provides the happens-before edge.
type SpecView struct {
	sys  *System
	core int

	// Acc is the detached energy accumulator merged at commit.
	Acc energy.Accum

	// overlay holds the quantum's own stores (addr → val), open-addressed
	// with addr+1 keys so the zero slot means empty.
	ovKeys []int64
	ovVals []int64
	ovLen  int

	// wlog is the quantum's stores in execution order; applied to the
	// shards' dram (and last-writer directories) at commit.
	wlog []wlogEntry

	// Touched-line sets for conflict detection, each as an open-addressed
	// membership table (line+1 keys) plus a dense list for iteration.
	reads  lineSet
	writes lineSet

	// firstWords are the addresses whose first store of the current
	// checkpoint interval happened in this quantum (frozen log bit clear,
	// not previously stored by this quantum); their log bits are set at
	// commit.
	firstWords []int64

	// ownAssocs marks the addresses this quantum ASSOC-ADDRed, as an
	// open-addressed set. A first store to an address the same quantum
	// already assoc'd would make the frozen-AddrMap stall prediction
	// unreliable; the engine treats it as a conflict (Poisoned).
	oaKeys []int64
	oaLen  int

	// Poisoned is set when the quantum's speculative execution could not
	// be proven equivalent to serial execution (see NoteAssoc); the round
	// must abort and replay serially.
	Poisoned bool

	// Comm observations against the frozen directory, multi-word per the
	// machine's core count: commSelf is the row to OR into the view core's
	// comm row; commOut (a writer-indexed matrix of commW-word rows, rows
	// live for writers in commTouched) is OR'd into each observed writer's
	// row; commEdges counts observations for Stats.
	commSelf    CoreSet
	commOut     []uint64
	commTouched CoreSet
	commList    []int32
	commEdges   int64

	// ctrlFill/ctrlWb buffer the per-shard controller traffic of the
	// quantum's fills and writebacks; merged into the shard ledgers at
	// commit (direct increments would race across worker goroutines).
	ctrlFill []int64
	ctrlWb   []int64

	// statsSnap restores stats.PerCore[core] on abort (the view mutates
	// that element in place: distinct cores touch distinct elements).
	statsSnap CoreStats
}

type wlogEntry struct{ addr, val int64 }

// lineSet is an open-addressed membership set over cache-line indices
// (stored as line+1 so zero means empty) with a dense list and a
// last-member fast path for the sequential-access common case.
type lineSet struct {
	keys []int64
	list []int64
	last int64 // last line added/probed hit; -1 when empty
}

//acr:spec-safe
func (s *lineSet) reset() {
	for _, ln := range s.list {
		h := setHome(ln, len(s.keys))
		for s.keys[h] != ln+1 {
			h = (h + 1) & (len(s.keys) - 1)
		}
		s.keys[h] = 0
	}
	s.list = s.list[:0]
	s.last = -1
}

//acr:spec-safe
func setHome(line int64, n int) int {
	return int((uint64(line+1) * 0x9E3779B97F4A7C15) >> 32 & uint64(n-1))
}

// add inserts line, reporting whether it was new.
//
//acr:spec-safe
func (s *lineSet) add(line int64) bool {
	if line == s.last {
		return false
	}
	if s.keys == nil {
		s.keys = make([]int64, 64)
	}
	if (s.len()+1)*4 > len(s.keys)*3 {
		s.grow()
	}
	h := setHome(line, len(s.keys))
	for {
		switch s.keys[h] {
		case 0:
			s.keys[h] = line + 1
			s.list = append(s.list, line)
			s.last = line
			return true
		case line + 1:
			s.last = line
			return false
		}
		h = (h + 1) & (len(s.keys) - 1)
	}
}

//acr:spec-safe
func (s *lineSet) has(line int64) bool {
	if len(s.keys) == 0 {
		return false
	}
	h := setHome(line, len(s.keys))
	for {
		switch s.keys[h] {
		case 0:
			return false
		case line + 1:
			return true
		}
		h = (h + 1) & (len(s.keys) - 1)
	}
}

//acr:spec-safe
func (s *lineSet) len() int { return len(s.list) }

//acr:spec-safe
func (s *lineSet) grow() {
	old := s.keys
	s.keys = make([]int64, len(old)*2)
	for _, k := range old {
		if k == 0 {
			continue
		}
		h := setHome(k-1, len(s.keys))
		for s.keys[h] != 0 {
			h = (h + 1) & (len(s.keys) - 1)
		}
		s.keys[h] = k
	}
}

// NewSpecView returns core's speculative view of sys. One view per core is
// allocated once and reused across rounds.
func NewSpecView(sys *System, core int) *SpecView {
	return &SpecView{
		sys:         sys,
		core:        core,
		ovKeys:      make([]int64, 256),
		ovVals:      make([]int64, 256),
		oaKeys:      make([]int64, 64),
		commSelf:    NewCoreSet(sys.nCores),
		commOut:     make([]uint64, sys.nCores*sys.commW),
		commTouched: NewCoreSet(sys.nCores),
		ctrlFill:    make([]int64, len(sys.shards)),
		ctrlWb:      make([]int64, len(sys.shards)),
	}
}

// Begin opens a round: all per-round buffers reset, the core's stat
// element is snapshotted, and the cache stack starts journaling.
//
//acr:spec-safe
func (v *SpecView) Begin() {
	// Deleting individual open-addressing slots would break probe
	// sequences, so the overlay and assoc tables are wiped whole when used.
	if v.ovLen > 0 {
		clear(v.ovKeys)
		v.ovLen = 0
	}
	if v.oaLen > 0 {
		clear(v.oaKeys)
		v.oaLen = 0
	}
	v.wlog = v.wlog[:0]
	v.reads.reset()
	v.writes.reset()
	v.firstWords = v.firstWords[:0]
	v.Poisoned = false
	v.commSelf.Reset()
	cw := v.sys.commW
	for _, w := range v.commList {
		clear(v.commOut[int(w)*cw : (int(w)+1)*cw])
	}
	v.commList = v.commList[:0]
	v.commTouched.Reset()
	v.commEdges = 0
	clear(v.ctrlFill)
	clear(v.ctrlWb)
	v.Acc.Reset()
	v.statsSnap = v.sys.stats.PerCore[v.core]
	cc := &v.sys.caches[v.core]
	cc.l1d.BeginSpec()
	cc.l2.BeginSpec()
}

// overlay lookup; ok reports presence.
//
//acr:spec-safe
func (v *SpecView) ovGet(addr int64) (int64, bool) {
	h := setHome(addr, len(v.ovKeys))
	for {
		switch v.ovKeys[h] {
		case 0:
			return 0, false
		case addr + 1:
			return v.ovVals[h], true
		}
		h = (h + 1) & (len(v.ovKeys) - 1)
	}
}

//acr:spec-safe
func (v *SpecView) ovPut(addr, val int64) {
	if (v.ovLen+1)*4 > len(v.ovKeys)*3 {
		old, vals := v.ovKeys, v.ovVals
		v.ovKeys = make([]int64, len(old)*2)
		v.ovVals = make([]int64, len(old)*2)
		for i, k := range old {
			if k == 0 {
				continue
			}
			h := setHome(k-1, len(v.ovKeys))
			for v.ovKeys[h] != 0 {
				h = (h + 1) & (len(v.ovKeys) - 1)
			}
			v.ovKeys[h], v.ovVals[h] = k, vals[i]
		}
	}
	h := setHome(addr, len(v.ovKeys))
	for {
		switch v.ovKeys[h] {
		case 0:
			v.ovKeys[h] = addr + 1
			v.ovVals[h] = val
			v.ovLen++
			return
		case addr + 1:
			v.ovVals[h] = val
			return
		}
		h = (h + 1) & (len(v.ovKeys) - 1)
	}
}

// access mirrors System.access against the core's (real, journaled) cache
// stack, charging the view's accumulator instead of the meter and the
// per-shard traffic buffers instead of the live controller ledgers.
//
//acr:spec-safe
func (v *SpecView) access(line int64, store bool) int64 {
	s := v.sys
	cc := &s.caches[v.core]
	st := &s.stats.PerCore[v.core]
	v.Acc.Add(energy.L1DAccess, 1)
	hit, victim, victimDirty := cc.l1d.Access(line, store)
	if hit {
		st.L1D.Hits++
		return s.cfg.L1HitCycles
	}
	st.L1D.Misses++
	if victimDirty {
		st.L1D.Writebacks++
		v.Acc.Add(energy.L2Access, 1)
		_, v2, v2Dirty := cc.l2.Access(victim, true)
		if v2Dirty && v2 != victim {
			st.L2.Writebacks++
			v.Acc.Add(energy.DRAMWrite, uint64(s.cfg.LineWords))
			v.ctrlWb[(v2*int64(s.cfg.LineWords))>>s.shardShift] += int64(s.cfg.LineWords)
		}
	}
	v.Acc.Add(energy.L2Access, 1)
	hit, victim, victimDirty = cc.l2.Access(line, false)
	if hit {
		st.L2.Hits++
		return s.cfg.L2HitCycles
	}
	st.L2.Misses++
	if victimDirty {
		st.L2.Writebacks++
		v.Acc.Add(energy.DRAMWrite, uint64(s.cfg.LineWords))
		v.ctrlWb[(victim*int64(s.cfg.LineWords))>>s.shardShift] += int64(s.cfg.LineWords)
	}
	st.Fills++
	v.Acc.Add(energy.DRAMRead, uint64(s.cfg.LineWords))
	v.ctrlFill[(line*int64(s.cfg.LineWords))>>s.shardShift] += int64(s.cfg.LineWords)
	return s.cfg.DRAMCycles
}

// observeComm mirrors System.observeComm against the frozen directory,
// buffering the row updates. A line this quantum already stored to is its
// own (serial execution would have made this core the last writer), so no
// edge is observed; a line another round member stores to is a conflict,
// so within committing rounds the frozen directory gives exactly the
// serial observation.
//
//acr:spec-safe
func (v *SpecView) observeComm(line int64) {
	if v.writes.has(line) {
		return
	}
	s := v.sys
	sh := s.shardOfLine(line)
	lline := line - sh.lineBase
	lw := sh.lastWriter[lline]
	if lw != 0 && int(lw-1) != v.core && sh.lastWriteIvl[lline] == s.curInterval {
		w := int(lw - 1)
		v.commSelf.Add(w)
		v.commOut[w*s.commW+(v.core>>6)] |= 1 << uint(v.core&63)
		if !v.commTouched.Has(w) {
			v.commTouched.Add(w)
			v.commList = append(v.commList, int32(w))
		}
		v.commEdges++
	}
}

// Load mirrors System.Load speculatively.
//
//acr:spec-safe
func (v *SpecView) Load(addr int64) (val, cycles int64) {
	v.sys.checkAddr(addr)
	line := addr / int64(v.sys.cfg.LineWords)
	cycles = v.access(line, false)
	v.observeComm(line)
	v.reads.add(line)
	if ov, ok := v.ovGet(addr); ok {
		return ov, cycles
	}
	sh := v.sys.shardOf(addr)
	return sh.dram[addr-sh.base], cycles
}

// Store mirrors System.Store speculatively. first is computed against the
// frozen log bits plus the quantum's own overlay: the word is a first
// store iff its interval log bit was clear at round start and this quantum
// has not stored it before.
//
//acr:spec-safe
func (v *SpecView) Store(addr, val int64) (old int64, first bool, cycles int64) {
	s := v.sys
	s.checkAddr(addr)
	line := addr / int64(s.cfg.LineWords)
	cycles = v.access(line, true)
	v.observeComm(line)
	old, stored := v.ovGet(addr)
	sh := s.shardOf(addr)
	off := addr - sh.base
	if !stored {
		old = sh.dram[off]
	}
	v.ovPut(addr, val)
	v.wlog = append(v.wlog, wlogEntry{addr, val})
	v.writes.add(line)
	if !stored {
		if sh.logBits[off>>6]&(1<<uint(off&63)) == 0 {
			first = true
			v.firstWords = append(v.firstWords, addr)
		}
	}
	return old, first, cycles
}

// NoteAssoc records that the quantum ASSOC-ADDRed addr. The association
// itself is replayed by the engine at commit; here the address's line
// joins the write set (the association publishes directory state for that
// line, so any cross-core touch of it must conflict rather than observe a
// half-applied association).
//
//acr:spec-safe
func (v *SpecView) NoteAssoc(addr int64) {
	line := addr / int64(v.sys.cfg.LineWords)
	v.writes.add(line)
	if (v.oaLen+1)*4 > len(v.oaKeys)*3 {
		old := v.oaKeys
		v.oaKeys = make([]int64, len(old)*2)
		for _, k := range old {
			if k == 0 {
				continue
			}
			h := setHome(k-1, len(v.oaKeys))
			for v.oaKeys[h] != 0 {
				h = (h + 1) & (len(v.oaKeys) - 1)
			}
			v.oaKeys[h] = k
		}
	}
	h := setHome(addr, len(v.oaKeys))
	for {
		switch v.oaKeys[h] {
		case 0:
			v.oaKeys[h] = addr + 1
			v.oaLen++
			return
		case addr + 1:
			return
		}
		h = (h + 1) & (len(v.oaKeys) - 1)
	}
}

// AssocdOwn reports whether this quantum already ASSOC-ADDRed addr. The
// engine's first-store stall prediction peeks the frozen AddrMap, which
// cannot see the quantum's own pending association — such a store makes
// the prediction unreliable, so the engine poisons the round.
//
//acr:spec-safe
func (v *SpecView) AssocdOwn(addr int64) bool {
	if v.oaLen == 0 {
		return false
	}
	h := setHome(addr, len(v.oaKeys))
	for {
		switch v.oaKeys[h] {
		case 0:
			return false
		case addr + 1:
			return true
		}
		h = (h + 1) & (len(v.oaKeys) - 1)
	}
}

// ReadLines and WriteLines expose the touched-line sets (dense, unordered)
// for the engine's conflict scan.
//
//acr:spec-safe
func (v *SpecView) ReadLines() []int64  { return v.reads.list }
func (v *SpecView) WriteLines() []int64 { return v.writes.list }

// Touched reports whether the quantum read or wrote line.
//
//acr:spec-safe
func (v *SpecView) Touched(line int64) bool {
	return v.reads.has(line) || v.writes.has(line)
}

// Abort discards the round: the cache stack rolls back and the core's stat
// element is restored. Buffered effects die with the next Begin.
//
//acr:spec-safe
func (v *SpecView) Abort() {
	cc := &v.sys.caches[v.core]
	cc.l1d.AbortSpec()
	cc.l2.AbortSpec()
	v.sys.stats.PerCore[v.core] = v.statsSnap
}

// Commit applies the round's buffered effects to the System: dram words
// and directory entries from the write log (line-disjoint from every other
// committing quantum, so per-view order is immaterial), interval log bits
// for the first-stored words, comm rows, shard-controller traffic and
// global counters, and the energy accumulator. Hook effects (checkpoint
// logging, associations) are NOT applied here — the engine replays those
// through the real hooks in serial merge order.
//
//acr:spec-safe
func (v *SpecView) Commit() {
	s := v.sys
	cc := &s.caches[v.core]
	cc.l1d.CommitSpec()
	cc.l2.CommitSpec()
	lw := int64(s.cfg.LineWords)
	for _, e := range v.wlog {
		sh := s.shardOf(e.addr)
		sh.dram[e.addr-sh.base] = e.val
		lline := e.addr/lw - sh.lineBase
		sh.lastWriter[lline] = int32(v.core) + 1
		sh.lastWriteIvl[lline] = s.curInterval
	}
	for _, addr := range v.firstWords {
		sh := s.shardOf(addr)
		off := addr - sh.base
		sh.logBits[off>>6] |= 1 << uint(off&63)
		sh.ctrl.LogBitSets++
	}
	s.stats.LogBitSets += int64(len(v.firstWords))
	s.stats.CommEdges += v.commEdges
	cw := s.commW
	CoreSet(s.comm[v.core*cw : (v.core+1)*cw]).Or(v.commSelf)
	for _, w := range v.commList {
		CoreSet(s.comm[int(w)*cw : (int(w)+1)*cw]).Or(CoreSet(v.commOut[int(w)*cw : (int(w)+1)*cw]))
	}
	for i, n := range v.ctrlFill {
		if n != 0 {
			s.shards[i].ctrl.FillWords += n
		}
	}
	for i, n := range v.ctrlWb {
		if n != 0 {
			s.shards[i].ctrl.WritebackWords += n
		}
	}
	s.meter.Merge(&v.Acc)
}
