package mem

import (
	"testing"
	"testing/quick"

	"acr/internal/energy"
)

func newTestSystem(nCores, words int) (*System, *energy.Meter) {
	m := energy.NewMeter(nil)
	return MustNewSystem(DefaultConfig(), nCores, words, m), m
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64})
	hit, _, _ := c.Access(5, false)
	if hit {
		t.Fatal("first access must miss")
	}
	hit, _, _ = c.Access(5, false)
	if !hit {
		t.Fatal("second access must hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 8 sets: lines 0, 8, 16 map to set 0.
	c := NewCache(CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64})
	c.Access(0, false)
	c.Access(8, false)
	c.Access(0, false)  // 0 now MRU; 8 is LRU
	c.Access(16, false) // evicts 8
	if !c.Contains(0) || !c.Contains(16) || c.Contains(8) {
		t.Errorf("LRU eviction wrong: contains(0)=%v contains(8)=%v contains(16)=%v",
			c.Contains(0), c.Contains(8), c.Contains(16))
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64})
	c.Access(0, true) // dirty
	c.Access(8, false)
	_, ev, evDirty := c.Access(16, false) // evicts 0 (dirty)
	if !evDirty || ev != 0 {
		t.Errorf("evicting a dirty line must report it: ev=%d dirty=%v", ev, evDirty)
	}
	_, ev, evDirty = c.Access(0, false) // evicts 8 (clean)
	if evDirty || ev != 8 {
		t.Errorf("evicting a clean line: ev=%d dirty=%v", ev, evDirty)
	}
}

func TestCacheFlushDirty(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64})
	c.Access(0, true)
	c.Access(1, true)
	c.Access(2, false)
	if got := c.DirtyLines(); got != 2 {
		t.Fatalf("DirtyLines = %d, want 2", got)
	}
	if got := c.FlushDirty(); got != 2 {
		t.Fatalf("FlushDirty = %d, want 2", got)
	}
	if got := c.DirtyLines(); got != 0 {
		t.Fatalf("DirtyLines after flush = %d", got)
	}
}

func TestCacheRejectsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-power-of-two sets")
		}
	}()
	NewCache(CacheConfig{SizeBytes: 3 * 64, Ways: 1, LineBytes: 64})
}

func TestStoreLoadRoundTrip(t *testing.T) {
	s, _ := newTestSystem(2, 1024)
	old, first, _ := s.Store(0, 100, 42)
	if old != 0 || !first {
		t.Errorf("Store: old=%d first=%v", old, first)
	}
	v, _ := s.Load(1, 100)
	if v != 42 {
		t.Errorf("Load = %d, want 42", v)
	}
	old, first, _ = s.Store(0, 100, 7)
	if old != 42 || first {
		t.Errorf("second Store: old=%d first=%v, want 42,false", old, first)
	}
}

func TestLogBitPerInterval(t *testing.T) {
	s, _ := newTestSystem(1, 1024)
	_, first, _ := s.Store(0, 5, 1)
	if !first {
		t.Fatal("first store must report first=true")
	}
	_, first, _ = s.Store(0, 5, 2)
	if first {
		t.Fatal("second store same interval must report first=false")
	}
	s.NewInterval(s.AllCores(), true)
	_, first, _ = s.Store(0, 5, 3)
	if !first {
		t.Fatal("store after new interval must report first=true again")
	}
}

func TestCommunicationObservation(t *testing.T) {
	s, _ := newTestSystem(4, 4096)
	// Core 0 writes line 0, core 1 reads it: edge (0,1).
	s.Store(0, 0, 11)
	s.Load(1, 1) // same line (line words = 8)
	if !s.CommSet(1).Has(0) || !s.CommSet(0).Has(1) {
		t.Errorf("expected comm edge 0<->1: set0=%v set1=%v", s.CommSet(0), s.CommSet(1))
	}
	// Core 2 and 3 don't communicate.
	s.Store(2, 2000, 5)
	s.Load(2, 2000)
	groups := s.CommGroups()
	if len(groups) != 3 {
		t.Fatalf("groups = %v, want 3 groups {0,1},{2},{3}", groups)
	}
	if groups[0][0] != 0b0011 || groups[1][0] != 0b0100 || groups[2][0] != 0b1000 {
		t.Errorf("groups = %b", groups)
	}
}

func TestCommunicationIntervalScoped(t *testing.T) {
	s, _ := newTestSystem(2, 1024)
	s.Store(0, 0, 1)
	s.NewInterval(s.AllCores(), true)
	// Write happened last interval: reading it now is NOT communication
	// for this interval's coordination purposes.
	s.Load(1, 0)
	if !s.CommSet(1).Empty() {
		t.Errorf("stale write counted as communication: %v", s.CommSet(1))
	}
}

func TestCommGroupsTransitive(t *testing.T) {
	s, _ := newTestSystem(8, 8192)
	// Chain: 0->1->2 communicate; 3..7 isolated.
	s.Store(0, 0, 1)
	s.Load(1, 0)
	s.Store(1, 512, 2)
	s.Load(2, 512)
	groups := s.CommGroups()
	if groups[0][0] != 0b111 {
		t.Errorf("transitive group = %b, want 0b111", groups[0][0])
	}
	if len(groups) != 1+5 {
		t.Errorf("got %d groups, want 6", len(groups))
	}
}

func TestLocalNewIntervalClearsOnlyGroupBits(t *testing.T) {
	s, _ := newTestSystem(2, 1024)
	s.Store(0, 8, 1)   // line 1, written by core 0
	s.Store(1, 512, 2) // line 64, written by core 1
	// Local checkpoint of group {core 0} only.
	g := NewCoreSet(2)
	g.Add(0)
	s.NewInterval(g, false)
	_, first, _ := s.Store(0, 8, 3)
	if !first {
		t.Error("core-0 word should have been cleared by local interval")
	}
	_, first, _ = s.Store(1, 512, 4)
	if first {
		t.Error("core-1 word must keep its log bit across core-0's local checkpoint")
	}
}

func TestFlushDirtyCountsAndCharges(t *testing.T) {
	s, m := newTestSystem(2, 4096)
	s.Store(0, 0, 1)
	s.Store(0, 100, 2)
	s.Store(1, 200, 3)
	before := m.Count(energy.DRAMWrite)
	n := s.FlushDirty(s.AllCores())
	if n != 3 {
		t.Errorf("FlushDirty = %d lines, want 3", n)
	}
	wrote := m.Count(energy.DRAMWrite) - before
	if wrote != uint64(3*s.Config().LineWords) {
		t.Errorf("flush charged %d word writes, want %d", wrote, 3*s.Config().LineWords)
	}
	if s.DirtyLines(s.AllCores()) != 0 {
		t.Error("dirty lines remain after flush")
	}
}

func TestAccessLatencies(t *testing.T) {
	s, _ := newTestSystem(1, 1<<20)
	cfg := s.Config()
	_, lat := s.Load(0, 0)
	if lat != cfg.DRAMCycles {
		t.Errorf("cold load latency = %d, want DRAM %d", lat, cfg.DRAMCycles)
	}
	_, lat = s.Load(0, 0)
	if lat != cfg.L1HitCycles {
		t.Errorf("hot load latency = %d, want L1 %d", lat, cfg.L1HitCycles)
	}
	// Evict from L1 by touching many lines mapping everywhere, then the
	// original line should be an L2 hit.
	for i := int64(1); i <= 1024; i++ {
		s.Load(0, i*8)
	}
	_, lat = s.Load(0, 0)
	if lat != cfg.L2HitCycles {
		t.Errorf("L2 load latency = %d, want %d", lat, cfg.L2HitCycles)
	}
}

func TestTransferCycles(t *testing.T) {
	s, _ := newTestSystem(8, 1024) // 2 controllers
	if s.Controllers() != 2 {
		t.Fatalf("controllers = %d, want 2", s.Controllers())
	}
	c1 := s.TransferCycles(1000)
	c2 := s.TransferCycles(2000)
	if c2 <= c1 {
		t.Error("transfer time must grow with words")
	}
	if s.TransferCycles(0) != 0 {
		t.Error("zero words must take zero time")
	}
	s4, _ := newTestSystem(32, 1024) // 8 controllers
	if got := s4.TransferCycles(1000); got >= c1 {
		t.Errorf("more controllers must be faster: %d vs %d", got, c1)
	}
}

func TestWriteWordBypassesLogBits(t *testing.T) {
	s, _ := newTestSystem(1, 64)
	s.WriteWord(3, 99)
	if s.ReadWord(3) != 99 {
		t.Error("WriteWord/ReadWord round trip failed")
	}
	_, first, _ := s.Store(0, 3, 1)
	if !first {
		t.Error("WriteWord must not set log bits")
	}
}

func TestStoreOldValueProperty(t *testing.T) {
	// Property: Store always returns the previous content of the word.
	s, _ := newTestSystem(1, 256)
	shadow := make([]int64, 256)
	f := func(addr uint8, val int64) bool {
		a := int64(addr)
		old, _, _ := s.Store(0, a, val)
		ok := old == shadow[a]
		shadow[a] = val
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s, _ := newTestSystem(1, 16)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range address")
		}
	}()
	s.Load(0, 16)
}
