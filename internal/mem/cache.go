// Package mem models the memory subsystem of the simulated machine: private
// set-associative write-back caches per core (Table I), a flat word-addressed
// DRAM, the per-word checkpoint log bit maintained by the directory
// controller (paper §II-A), and the inter-core communication observation the
// directory provides for coordinated local checkpointing (paper §V-E).
//
// The design is functional-direct with timing-model caches, as in Sniper:
// loads and stores update the flat memory immediately; the caches decide
// which *level* serviced an access, which determines latency and energy.
//
//acr:deterministic
package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// Lines returns the total number of lines.
func (c CacheConfig) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.Lines() / c.Ways }

// way packs one cache way's metadata (tag, LRU stamp, dirty bit) into a
// single slice element so an Access touches one contiguous span per set
// instead of three parallel arrays.
type way struct {
	tag   int64 // -1 = invalid
	tick  uint64
	dirty bool
}

// Cache is a set-associative LRU write-back cache used as a timing model:
// it tracks presence and dirtiness of lines but holds no data (the flat
// memory is always current functionally).
type Cache struct {
	sets int
	ways int
	// lines[set*ways+way].
	lines []way
	// mru[set] is the way index of the last hit or fill in the set; the
	// Access fast path probes it before scanning the set.
	mru  []int32
	tick uint64

	// Speculative rollback journal (BeginSpec/CommitSpec/AbortSpec): while
	// spec is set, Access copies a set's ways and MRU slot into the journal
	// before first touching it, so AbortSpec can restore the cache
	// bit-identically to the round start. specEpoch stamps which sets are
	// already journaled this round (bumping specCur invalidates all stamps
	// in O(1)).
	spec      bool
	specEpoch []uint32
	specCur   uint32
	jSets     []int32
	jWays     []way
	jMRU      []int32
	jTick     uint64
}

// NewCache builds a cache from cfg. Sets must be a power of two.
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache sets %d not a positive power of two (cfg %+v)", sets, cfg))
	}
	c := &Cache{sets: sets, ways: cfg.Ways,
		lines: make([]way, sets*cfg.Ways), mru: make([]int32, sets)}
	for i := range c.lines {
		c.lines[i].tag = -1
	}
	return c
}

// Access looks up line; on miss it allocates, evicting the LRU way.
// It returns whether the access hit, the evicted line (-1 if none), and
// whether that line was dirty — the caller writes it back to the next
// level. If markDirty is set the line is marked dirty (store or
// fill-for-write).
//
// The most-recently-used way of the set is probed before the scan:
// temporal locality makes it the common hit, and skipping the scan does
// not change which way would have hit (tags are unique within a set) nor
// any LRU decision (victim choice reads the same tick values either way).
//
//acr:spec-safe
func (c *Cache) Access(line int64, markDirty bool) (hit bool, evicted int64, evictedDirty bool) {
	set := int(uint64(line) & uint64(c.sets-1))
	base := set * c.ways
	if c.spec {
		c.journalTouch(set, base)
	}
	c.tick++
	if m := &c.lines[base+int(c.mru[set])]; m.tag == line {
		m.tick = c.tick
		if markDirty {
			m.dirty = true
		}
		return true, -1, false
	}
	victim, victimTick := base, c.lines[base].tick
	for w := 0; w < c.ways; w++ {
		i := base + w
		ln := &c.lines[i]
		if ln.tag == line {
			ln.tick = c.tick
			if markDirty {
				ln.dirty = true
			}
			c.mru[set] = int32(w)
			return true, -1, false
		}
		if ln.tick < victimTick {
			victim, victimTick = i, ln.tick
		}
	}
	v := &c.lines[victim]
	evicted = v.tag
	evictedDirty = evicted >= 0 && v.dirty
	v.tag = line
	v.dirty = markDirty
	v.tick = c.tick
	c.mru[set] = int32(victim - base)
	return false, evicted, evictedDirty
}

// Contains reports whether line is present (no LRU update).
func (c *Cache) Contains(line int64) bool {
	set := int(uint64(line) & uint64(c.sets-1))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].tag == line {
			return true
		}
	}
	return false
}

// FlushDirty marks every dirty line clean and returns how many lines were
// dirty. Used when establishing a checkpoint (all dirty data is written
// back to memory, paper §II-A).
func (c *Cache) FlushDirty() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].dirty && c.lines[i].tag >= 0 {
			n++
			c.lines[i].dirty = false
		}
	}
	return n
}

// DirtyLines returns the number of dirty lines without cleaning them.
func (c *Cache) DirtyLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].dirty && c.lines[i].tag >= 0 {
			n++
		}
	}
	return n
}

// BeginSpec opens a speculative round: subsequent Accesses journal each
// touched set's pre-round contents so AbortSpec can undo them. Rounds do
// not nest. Accesses outside a round pay no journaling cost (one branch).
//
//acr:spec-safe
func (c *Cache) BeginSpec() {
	if c.specEpoch == nil {
		c.specEpoch = make([]uint32, c.sets)
	}
	c.specCur++
	if c.specCur == 0 { // epoch wrapped: hard-clear stale stamps
		clear(c.specEpoch)
		c.specCur = 1
	}
	c.jSets = c.jSets[:0]
	c.jWays = c.jWays[:0]
	c.jMRU = c.jMRU[:0]
	c.jTick = c.tick
	c.spec = true
}

// CommitSpec keeps the round's accesses and discards the journal.
//
//acr:spec-safe
func (c *Cache) CommitSpec() { c.spec = false }

// AbortSpec restores every set touched since BeginSpec, and the LRU clock,
// to their pre-round state.
//
//acr:spec-safe
func (c *Cache) AbortSpec() {
	for i, set := range c.jSets {
		base := int(set) * c.ways
		copy(c.lines[base:base+c.ways], c.jWays[i*c.ways:(i+1)*c.ways])
		c.mru[set] = c.jMRU[i]
	}
	c.tick = c.jTick
	c.spec = false
}

//acr:spec-safe
func (c *Cache) journalTouch(set, base int) {
	if c.specEpoch[set] == c.specCur {
		return
	}
	c.specEpoch[set] = c.specCur
	c.jSets = append(c.jSets, int32(set))
	c.jWays = append(c.jWays, c.lines[base:base+c.ways]...)
	c.jMRU = append(c.jMRU, c.mru[set])
}

// Reset invalidates the whole cache.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = way{tag: -1}
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
	c.tick = 0
}
