// Package mem models the memory subsystem of the simulated machine: private
// set-associative write-back caches per core (Table I), a flat word-addressed
// DRAM, the per-word checkpoint log bit maintained by the directory
// controller (paper §II-A), and the inter-core communication observation the
// directory provides for coordinated local checkpointing (paper §V-E).
//
// The design is functional-direct with timing-model caches, as in Sniper:
// loads and stores update the flat memory immediately; the caches decide
// which *level* serviced an access, which determines latency and energy.
package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// Lines returns the total number of lines.
func (c CacheConfig) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.Lines() / c.Ways }

// Cache is a set-associative LRU write-back cache used as a timing model:
// it tracks presence and dirtiness of lines but holds no data (the flat
// memory is always current functionally).
type Cache struct {
	sets  int
	ways  int
	shift uint // log2(line words)... set index uses line address directly
	// tags[set*ways+way]; -1 = invalid.
	tags  []int64
	dirty []bool
	// lruTick[set*ways+way]: larger = more recently used.
	lruTick []uint64
	tick    uint64
}

// NewCache builds a cache from cfg. Sets must be a power of two.
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache sets %d not a positive power of two (cfg %+v)", sets, cfg))
	}
	n := sets * cfg.Ways
	c := &Cache{sets: sets, ways: cfg.Ways,
		tags: make([]int64, n), dirty: make([]bool, n), lruTick: make([]uint64, n)}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Access looks up line; on miss it allocates, evicting the LRU way.
// It returns whether the access hit, the evicted line (-1 if none), and
// whether that line was dirty — the caller writes it back to the next
// level. If markDirty is set the line is marked dirty (store or
// fill-for-write).
func (c *Cache) Access(line int64, markDirty bool) (hit bool, evicted int64, evictedDirty bool) {
	set := int(uint64(line) & uint64(c.sets-1))
	base := set * c.ways
	c.tick++
	victim, victimTick := base, c.lruTick[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.lruTick[i] = c.tick
			if markDirty {
				c.dirty[i] = true
			}
			return true, -1, false
		}
		if c.lruTick[i] < victimTick {
			victim, victimTick = i, c.lruTick[i]
		}
	}
	evicted = c.tags[victim]
	evictedDirty = evicted >= 0 && c.dirty[victim]
	c.tags[victim] = line
	c.dirty[victim] = markDirty
	c.lruTick[victim] = c.tick
	return false, evicted, evictedDirty
}

// Contains reports whether line is present (no LRU update).
func (c *Cache) Contains(line int64) bool {
	set := int(uint64(line) & uint64(c.sets-1))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// FlushDirty marks every dirty line clean and returns how many lines were
// dirty. Used when establishing a checkpoint (all dirty data is written
// back to memory, paper §II-A).
func (c *Cache) FlushDirty() int {
	n := 0
	for i, d := range c.dirty {
		if d && c.tags[i] >= 0 {
			n++
			c.dirty[i] = false
		}
	}
	return n
}

// DirtyLines returns the number of dirty lines without cleaning them.
func (c *Cache) DirtyLines() int {
	n := 0
	for i, d := range c.dirty {
		if d && c.tags[i] >= 0 {
			n++
		}
	}
	return n
}

// Reset invalidates the whole cache.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
		c.dirty[i] = false
		c.lruTick[i] = 0
	}
	c.tick = 0
}
