// Package mem models the memory subsystem of the simulated machine: private
// set-associative write-back caches per core (Table I), a flat word-addressed
// DRAM, the per-word checkpoint log bit maintained by the directory
// controller (paper §II-A), and the inter-core communication observation the
// directory provides for coordinated local checkpointing (paper §V-E).
//
// The design is functional-direct with timing-model caches, as in Sniper:
// loads and stores update the flat memory immediately; the caches decide
// which *level* serviced an access, which determines latency and energy.
//
//acr:deterministic
package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// Lines returns the total number of lines.
func (c CacheConfig) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.Lines() / c.Ways }

// way packs one cache way's metadata (tag, LRU stamp, dirty bit) into a
// single slice element so an Access touches one contiguous span per set
// instead of three parallel arrays. The tag stores line+1 so the zero
// value means invalid: a fresh cache is all-zero memory and construction
// needs no initialization pass over the line array — at 256 cores that
// pass was a visible slice of machine-construction time.
type way struct {
	tag   int64 // line+1; 0 = invalid
	tick  uint64
	dirty bool
}

// Cache is a set-associative LRU write-back cache used as a timing model:
// it tracks presence and dirtiness of lines but holds no data (the flat
// memory is always current functionally).
type Cache struct {
	sets int
	ways int
	// lines[set*ways+way].
	lines []way
	// mru[set] is the way index of the last hit or fill in the set; the
	// Access fast path probes it before scanning the set.
	mru  []int32
	tick uint64

	// Speculative rollback journal (BeginSpec/CommitSpec/AbortSpec): while
	// spec is set, Access copies a set's ways and MRU slot into the journal
	// before first touching it, so AbortSpec can restore the cache
	// bit-identically to the round start. specEpoch stamps which sets are
	// already journaled this round (bumping specCur invalidates all stamps
	// in O(1)).
	spec      bool
	specEpoch []uint32
	specCur   uint32
	jSets     []int32
	jWays     []way
	jMRU      []int32
	jTick     uint64

	// dirtySets lists the sets that may hold dirty lines, so the flush
	// scans touch O(dirty sets × ways) entries instead of every line —
	// the full-array scan at every checkpoint was the dominant cost of
	// amnesic runs on wide machines, where the combined line arrays
	// outgrow the last-level cache. The list over-approximates: a
	// flagged set's dirty lines may since have been evicted, which the
	// per-line dirty bits resolve at flush time. dirtyEpoch[set] ==
	// dirtyCur marks membership (bumping dirtyCur empties the list in
	// O(1)); capacity is fixed at sets so noteDirty never reallocates.
	dirtySets  []int32
	dirtyEpoch []uint32
	dirtyCur   uint32
}

// NewCache builds a cache from cfg. Sets must be a power of two.
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache sets %d not a positive power of two (cfg %+v)", sets, cfg))
	}
	return &Cache{sets: sets, ways: cfg.Ways,
		lines: make([]way, sets*cfg.Ways), mru: make([]int32, sets),
		dirtySets:  make([]int32, 0, sets),
		dirtyEpoch: make([]uint32, sets),
		dirtyCur:   1,
	}
}

// noteDirty flags set as possibly holding dirty lines. Spec-safe without
// journaling: the list over-approximates by contract, so a flag left by an
// aborted round is harmless — flush re-checks the per-line dirty bits,
// which the journal does restore.
//
//acr:noalloc
//acr:spec-safe
func (c *Cache) noteDirty(set int) {
	if c.dirtyEpoch[set] == c.dirtyCur {
		return
	}
	c.dirtyEpoch[set] = c.dirtyCur
	c.dirtySets = append(c.dirtySets, int32(set)) //acr:alloc-ok capacity fixed at sets in NewCache; each set appends at most once per epoch
}

// clearDirtySets empties the dirty-set list.
func (c *Cache) clearDirtySets() {
	c.dirtySets = c.dirtySets[:0]
	c.dirtyCur++
	if c.dirtyCur == 0 { // epoch wrapped: hard-clear stale stamps
		clear(c.dirtyEpoch)
		c.dirtyCur = 1
	}
}

// Access looks up line; on miss it allocates, evicting the LRU way.
// It returns whether the access hit, the evicted line (-1 if none), and
// whether that line was dirty — the caller writes it back to the next
// level. If markDirty is set the line is marked dirty (store or
// fill-for-write).
//
// The most-recently-used way of the set is probed before the scan:
// temporal locality makes it the common hit, and skipping the scan does
// not change which way would have hit (tags are unique within a set) nor
// any LRU decision (victim choice reads the same tick values either way).
//
//acr:spec-safe
func (c *Cache) Access(line int64, markDirty bool) (hit bool, evicted int64, evictedDirty bool) {
	key := line + 1
	set := int(uint64(line) & uint64(c.sets-1))
	base := set * c.ways
	if c.spec {
		c.journalTouch(set, base)
	}
	c.tick++
	if m := &c.lines[base+int(c.mru[set])]; m.tag == key {
		m.tick = c.tick
		if markDirty {
			m.dirty = true
			c.noteDirty(set)
		}
		return true, -1, false
	}
	victim, victimTick := base, c.lines[base].tick
	for w := 0; w < c.ways; w++ {
		i := base + w
		ln := &c.lines[i]
		if ln.tag == key {
			ln.tick = c.tick
			if markDirty {
				ln.dirty = true
				c.noteDirty(set)
			}
			c.mru[set] = int32(w)
			return true, -1, false
		}
		if ln.tick < victimTick {
			victim, victimTick = i, ln.tick
		}
	}
	v := &c.lines[victim]
	evicted = v.tag - 1
	evictedDirty = evicted >= 0 && v.dirty
	v.tag = key
	v.dirty = markDirty
	v.tick = c.tick
	if markDirty {
		c.noteDirty(set)
	}
	c.mru[set] = int32(victim - base)
	return false, evicted, evictedDirty
}

// Contains reports whether line is present (no LRU update).
func (c *Cache) Contains(line int64) bool {
	key := line + 1
	set := int(uint64(line) & uint64(c.sets-1))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].tag == key {
			return true
		}
	}
	return false
}

// FlushDirty marks every dirty line clean and returns how many lines were
// dirty. Used when establishing a checkpoint (all dirty data is written
// back to memory, paper §II-A). Only the flagged dirty sets are scanned,
// so the cost is proportional to the interval's write working set, not
// the cache size.
func (c *Cache) FlushDirty() int {
	n := 0
	for _, set := range c.dirtySets {
		base := int(set) * c.ways
		for w := 0; w < c.ways; w++ {
			ln := &c.lines[base+w]
			if ln.dirty && ln.tag > 0 {
				n++
				ln.dirty = false
			}
		}
	}
	c.clearDirtySets()
	return n
}

// FlushDirtyEach is FlushDirty with per-line attribution: fn is invoked
// with each flushed line's id so the caller can charge the line's home
// shard controller. The count returned is identical to FlushDirty's; the
// attribution order follows first-dirtied set order, which only feeds
// commutative per-shard sums.
func (c *Cache) FlushDirtyEach(fn func(line int64)) int {
	n := 0
	for _, set := range c.dirtySets {
		base := int(set) * c.ways
		for w := 0; w < c.ways; w++ {
			ln := &c.lines[base+w]
			if ln.dirty && ln.tag > 0 {
				n++
				ln.dirty = false
				fn(ln.tag - 1)
			}
		}
	}
	c.clearDirtySets()
	return n
}

// DirtyLines returns the number of dirty lines without cleaning them.
func (c *Cache) DirtyLines() int {
	n := 0
	for _, set := range c.dirtySets {
		base := int(set) * c.ways
		for w := 0; w < c.ways; w++ {
			if c.lines[base+w].dirty && c.lines[base+w].tag > 0 {
				n++
			}
		}
	}
	return n
}

// BeginSpec opens a speculative round: subsequent Accesses journal each
// touched set's pre-round contents so AbortSpec can undo them. Rounds do
// not nest. Accesses outside a round pay no journaling cost (one branch).
//
//acr:spec-safe
func (c *Cache) BeginSpec() {
	if c.specEpoch == nil {
		c.specEpoch = make([]uint32, c.sets)
	}
	c.specCur++
	if c.specCur == 0 { // epoch wrapped: hard-clear stale stamps
		clear(c.specEpoch)
		c.specCur = 1
	}
	c.jSets = c.jSets[:0]
	c.jWays = c.jWays[:0]
	c.jMRU = c.jMRU[:0]
	c.jTick = c.tick
	c.spec = true
}

// CommitSpec keeps the round's accesses and discards the journal.
//
//acr:spec-safe
func (c *Cache) CommitSpec() { c.spec = false }

// AbortSpec restores every set touched since BeginSpec, and the LRU clock,
// to their pre-round state. Restored sets holding dirty lines are
// re-flagged: a flush between the flag's original setting and this abort
// would have cleared the flag, so membership is re-derived from the
// restored dirty bits rather than assumed.
//
//acr:spec-safe
func (c *Cache) AbortSpec() {
	for i, set := range c.jSets {
		base := int(set) * c.ways
		copy(c.lines[base:base+c.ways], c.jWays[i*c.ways:(i+1)*c.ways])
		c.mru[set] = c.jMRU[i]
		for w := 0; w < c.ways; w++ {
			if c.lines[base+w].dirty {
				c.noteDirty(int(set))
				break
			}
		}
	}
	c.tick = c.jTick
	c.spec = false
}

//acr:spec-safe
func (c *Cache) journalTouch(set, base int) {
	if c.specEpoch[set] == c.specCur {
		return
	}
	c.specEpoch[set] = c.specCur
	c.jSets = append(c.jSets, int32(set))
	c.jWays = append(c.jWays, c.lines[base:base+c.ways]...)
	c.jMRU = append(c.jMRU, c.mru[set])
}

// Reset invalidates the whole cache.
func (c *Cache) Reset() {
	clear(c.lines)
	clear(c.mru)
	c.tick = 0
	c.clearDirtySets()
}
