package mem

import "math/bits"

// CoreSet is a multi-word bitset over core ids — the generalisation of the
// single-uint64 core masks that capped the machine at 64 cores. A set is
// sized at construction for a fixed core count ((nCores+63)/64 words) and
// every set flowing through one System has that System's width; the
// word-granular operations below assume equal widths.
//
// The zero-length set is valid and empty. All operations are
// allocation-free except NewCoreSet and Clone.
type CoreSet []uint64

// NewCoreSet returns an empty set sized for nCores cores.
func NewCoreSet(nCores int) CoreSet {
	return make(CoreSet, (nCores+63)/64)
}

// Has reports whether core is in the set.
//
//acr:spec-safe
func (s CoreSet) Has(core int) bool {
	w := core >> 6
	return w < len(s) && s[w]&(1<<uint(core&63)) != 0
}

// Add inserts core into the set.
//
//acr:spec-safe
func (s CoreSet) Add(core int) {
	s[core>>6] |= 1 << uint(core&63)
}

// Remove deletes core from the set.
//
//acr:spec-safe
func (s CoreSet) Remove(core int) {
	s[core>>6] &^= 1 << uint(core&63)
}

// Or unions t into s.
//
//acr:spec-safe
func (s CoreSet) Or(t CoreSet) {
	for i, w := range t {
		s[i] |= w
	}
}

// Count returns the number of cores in the set.
//
//acr:spec-safe
func (s CoreSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
//
//acr:spec-safe
func (s CoreSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share a member.
//
//acr:spec-safe
func (s CoreSet) Intersects(t CoreSet) bool {
	for i, w := range t {
		if s[i]&w != 0 {
			return true
		}
	}
	return false
}

// Reset clears the set.
//
//acr:spec-safe
func (s CoreSet) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s CoreSet) Clone() CoreSet {
	out := make(CoreSet, len(s))
	copy(out, s)
	return out
}

// ForEach calls fn for every member in ascending core-id order.
func (s CoreSet) ForEach(fn func(core int)) {
	for i, w := range s {
		for w != 0 {
			fn(i<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Min returns the lowest member, or -1 if the set is empty.
//
//acr:spec-safe
func (s CoreSet) Min() int {
	for i, w := range s {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}
