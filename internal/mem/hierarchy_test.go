package mem

import (
	"errors"
	"testing"

	"acr/internal/energy"
)

func TestWriteBackEnergyChargedOnEviction(t *testing.T) {
	s, m := newTestSystem(1, 1<<21)
	// Dirty one line, then stream enough distinct lines through the same
	// set path to evict it from both L1 and L2; the final eviction must
	// charge a line's worth of DRAM writes beyond the fills.
	s.Store(0, 0, 1)
	before := m.Count(energy.DRAMWrite)
	// L2 is 512KB = 8192 lines; stream 3x that many distinct lines.
	for i := int64(1); i <= 3*8192; i++ {
		s.Load(0, i*8)
	}
	wrote := m.Count(energy.DRAMWrite) - before
	if wrote < uint64(s.Config().LineWords) {
		t.Errorf("dirty eviction charged %d word writes, want at least %d",
			wrote, s.Config().LineWords)
	}
}

func TestLoadEnergyScalesWithLevel(t *testing.T) {
	s, m := newTestSystem(1, 1<<20)
	e0 := m.TotalPJ()
	s.Load(0, 0) // cold: L1 + L2 + DRAM line fill
	cold := m.TotalPJ() - e0
	e1 := m.TotalPJ()
	s.Load(0, 0) // hot: L1 only
	hot := m.TotalPJ() - e1
	if cold < 20*hot {
		t.Errorf("cold load (%v pJ) should dwarf a hot one (%v pJ)", cold, hot)
	}
}

func TestCommGroupsCoverAllCores(t *testing.T) {
	s, _ := newTestSystem(8, 4096)
	s.Store(0, 0, 1)
	s.Load(3, 0)
	groups := s.CommGroups()
	union := NewCoreSet(s.NCores())
	for _, g := range groups {
		if union.Intersects(g) {
			t.Fatalf("groups overlap: %b", groups)
		}
		union.Or(g)
	}
	if union.Count() != s.NCores() {
		t.Fatalf("groups do not cover all cores: %v", union)
	}
}

func TestAllCores(t *testing.T) {
	for _, n := range []int{1, 4, 63, 64, 65, 128, 256} {
		s, _ := newTestSystem(n, 64)
		all := s.AllCores()
		if all.Count() != n {
			t.Errorf("AllCores(%d cores) has %d members", n, all.Count())
		}
		if !all.Has(0) || !all.Has(n-1) || all.Has(n) {
			t.Errorf("AllCores(%d cores) membership wrong: %v", n, all)
		}
	}
}

func TestTooManyCoresRejected(t *testing.T) {
	// 65 cores — the old hard cap — now construct fine; only the sanity
	// ceiling rejects, and with a typed error instead of a panic.
	if _, err := NewSystem(DefaultConfig(), 65, 64, energy.NewMeter(nil)); err != nil {
		t.Fatalf("65 cores must construct: %v", err)
	}
	_, err := NewSystem(DefaultConfig(), MaxCores+1, 64, energy.NewMeter(nil))
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("expected *ConfigError for %d cores, got %v", MaxCores+1, err)
	}
}

func TestZeroWordsRejected(t *testing.T) {
	_, err := NewSystem(DefaultConfig(), 1, 0, energy.NewMeter(nil))
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("expected *ConfigError for zero-word memory, got %v", err)
	}
}

func TestLogBitSetOnceAcrossCores(t *testing.T) {
	// The log bit is per word, not per core: a second core's store to
	// the same word within an interval is not a "first" update.
	s, _ := newTestSystem(2, 1024)
	_, first, _ := s.Store(0, 9, 1)
	if !first {
		t.Fatal("first store not first")
	}
	_, first, _ = s.Store(1, 9, 2)
	if first {
		t.Fatal("second core's store must not be first in the same interval")
	}
}

func TestCacheResetInvalidates(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64})
	c.Access(5, true)
	c.Reset()
	if c.Contains(5) || c.DirtyLines() != 0 {
		t.Error("Reset left state behind")
	}
}

func TestResetCachesDropsDirtyState(t *testing.T) {
	s, _ := newTestSystem(2, 1024)
	s.Store(0, 0, 1)
	s.ResetCaches()
	if s.DirtyLines(s.AllCores()) != 0 {
		t.Error("ResetCaches left dirty lines")
	}
	if s.ReadWord(0) != 1 {
		t.Error("ResetCaches must not touch memory contents")
	}
}
