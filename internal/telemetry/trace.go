package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"acr/internal/sim"
)

// tracePid is the single simulated-machine process in the trace.
const tracePid = 1

// Tracer implements sim.Observer by converting the event stream into Chrome
// trace-event JSON (the format chrome://tracing and Perfetto load). It
// streams: each event is encoded and written as it arrives through a
// buffered writer, so long runs never buffer the whole timeline.
//
// Track layout: one thread track per core carrying alternating "run" and
// "barrier" complete spans, one "checkpoint" track (tid = cores) with async
// checkpoint spans and defer instants, and one "recovery" track
// (tid = cores+1) with error instants and async recovery spans. Timestamps
// are simulated cycles presented as microseconds (1 µs = 1 cycle) — the
// cycle domain, not wall time.
type Tracer struct {
	w      *bufio.Writer
	cores  int
	n      int // events written
	err    error
	closed bool
	// resume[c] is the cycle core c last left a barrier (run-span start).
	resume  []int64
	asyncID int
}

// NewTracer starts a trace for a machine with the given core count, writing
// the opening bracket and track metadata immediately. Call Close when the
// run finishes to terminate the JSON array.
func NewTracer(w io.Writer, cores int) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w), cores: cores, resume: make([]int64, cores)}
	t.raw("[")
	t.meta("process_name", tracePid, 0, map[string]any{"name": "acr machine"})
	for c := 0; c < cores; c++ {
		t.meta("thread_name", tracePid, c, map[string]any{"name": fmt.Sprintf("core %d", c)})
		t.meta("thread_sort_index", tracePid, c, map[string]any{"sort_index": c})
	}
	t.meta("thread_name", tracePid, cores, map[string]any{"name": "checkpoint"})
	t.meta("thread_name", tracePid, cores+1, map[string]any{"name": "recovery"})
	return t
}

// Events returns how many trace events have been emitted.
func (t *Tracer) Events() int { return t.n }

// Err returns the first write or encoding error, if any.
func (t *Tracer) Err() error { return t.err }

// Close terminates the JSON array and flushes. The tracer ignores further
// events afterwards.
func (t *Tracer) Close() error {
	if t.closed {
		return t.err
	}
	t.closed = true
	t.raw("\n]\n")
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

func (t *Tracer) raw(s string) {
	if t.err != nil {
		return
	}
	if _, err := t.w.WriteString(s); err != nil {
		t.err = err
	}
}

// emit writes one trace event object. Map encoding keeps the output
// deterministic: encoding/json sorts map keys.
func (t *Tracer) emit(ev map[string]any) {
	if t.err != nil || t.closed {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	if t.n > 0 {
		t.raw(",\n")
	} else {
		t.raw("\n")
	}
	t.raw(string(b))
	t.n++
}

func (t *Tracer) meta(name string, pid, tid int, args map[string]any) {
	t.emit(map[string]any{"name": name, "ph": "M", "pid": pid, "tid": tid, "args": args})
}

// span emits a complete ("X") event.
func (t *Tracer) span(name string, tid int, ts, dur int64, args map[string]any) {
	ev := map[string]any{"name": name, "ph": "X", "pid": tracePid, "tid": tid, "ts": ts, "dur": dur}
	if args != nil {
		ev["args"] = args
	}
	t.emit(ev)
}

// instant emits a thread-scoped instant ("i") event.
func (t *Tracer) instant(name string, tid int, ts int64, args map[string]any) {
	ev := map[string]any{"name": name, "ph": "i", "s": "t", "pid": tracePid, "tid": tid, "ts": ts}
	if args != nil {
		ev["args"] = args
	}
	t.emit(ev)
}

// async emits a begin/end async span pair ("b"/"e") under cat/name with a
// fresh id. Async spans let checkpoint and recovery episodes overlap core
// activity on their own tracks.
func (t *Tracer) async(cat, name string, tid int, ts, dur int64, args map[string]any) {
	t.asyncID++
	id := fmt.Sprintf("%#x", t.asyncID)
	begin := map[string]any{"name": name, "cat": cat, "ph": "b", "id": id,
		"pid": tracePid, "tid": tid, "ts": ts}
	if args != nil {
		begin["args"] = args
	}
	t.emit(begin)
	t.emit(map[string]any{"name": name, "cat": cat, "ph": "e", "id": id,
		"pid": tracePid, "tid": tid, "ts": ts + dur})
}

// OnEvent implements sim.Observer.
func (t *Tracer) OnEvent(e sim.Event) {
	switch e.Kind {
	case sim.EvBarrier:
		core := int(e.Core)
		start := e.Time - e.Dur
		if run := start - t.resume[core]; run > 0 {
			t.span("run", core, t.resume[core], run, nil)
		}
		t.span("barrier", core, start, e.Dur, nil)
		t.resume[core] = e.Time
	case sim.EvCheckpoint:
		t.async("ckpt", "checkpoint", t.cores, e.Time, e.Dur,
			map[string]any{"logged_words": e.Detail, "omitted_words": e.Aux})
	case sim.EvDefer:
		t.instant("defer", t.cores, e.Time, nil)
	case sim.EvError:
		t.instant("error", t.cores+1, e.Time, map[string]any{"occurred_at": e.Detail})
	case sim.EvRecovery:
		t.async("recovery", "recovery", t.cores+1, e.Time-e.Dur, e.Dur,
			map[string]any{"restored_words": e.Detail, "recomputed_values": e.Aux})
	}
}
