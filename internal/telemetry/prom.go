package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE headers, then one sample line per series,
// histograms expanded into cumulative _bucket{le=...}, _sum and _count.
// Families and series render in creation order, so deterministic
// instrumentation yields byte-identical expositions.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families {
		if len(f.series) == 0 {
			continue
		}
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.series {
			if f.Kind != KindHistogram {
				fmt.Fprintf(bw, "%s%s %s\n", f.Name,
					labelString(f.LabelNames, s.LabelValues, "", ""), formatValue(s.value))
				continue
			}
			cum := uint64(0)
			for i, n := range s.bucketCounts {
				cum += n
				le := "+Inf"
				if i < len(f.buckets) {
					le = formatValue(f.buckets[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.Name,
					labelString(f.LabelNames, s.LabelValues, "le", le), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", f.Name,
				labelString(f.LabelNames, s.LabelValues, "", ""), formatValue(s.sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", f.Name,
				labelString(f.LabelNames, s.LabelValues, "", ""), s.count)
		}
	}
	return bw.Flush()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString renders {a="x",b="y"} plus an optional extra pair; empty
// schemas with no extra render as "".
func labelString(names, values []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders floats the way Prometheus expects: integers without
// an exponent or trailing zeros.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExpositionStats summarises a parsed exposition.
type ExpositionStats struct {
	Families int
	Samples  int
}

// ParseExposition validates Prometheus text exposition format: TYPE
// comments naming a known kind, and sample lines of the shape
// name{label="value",...} number. It returns family/sample counts, erroring
// on the first malformed line. This is the validation half of the CI smoke
// gate (and of round-trip tests against WritePrometheus).
func ParseExposition(r io.Reader) (ExpositionStats, error) {
	var st ExpositionStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) < 4 {
					return st, fmt.Errorf("line %d: malformed TYPE comment", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return st, fmt.Errorf("line %d: unknown metric type %q", line, fields[3])
				}
				st.Families++
			}
			continue
		}
		if _, err := parseSample(text); err != nil {
			return st, fmt.Errorf("line %d: %w", line, err)
		}
		st.Samples++
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	if st.Samples == 0 {
		return st, fmt.Errorf("exposition contains no samples")
	}
	return st, nil
}

// Label is one parsed name="value" pair of a sample's label set.
type Label struct {
	Name  string
	Value string
}

// Sample is one parsed exposition sample line: metric name, label pairs in
// exposition order, and the value. Histogram expansion lines (_bucket with
// le, _sum, _count) parse as plain samples — Sample is the wire-level view.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// ParseSamples parses a Prometheus text exposition into its sample lines,
// unescaping label values. Comments and blank lines are skipped; the first
// malformed line is an error. Together with WritePrometheus it forms the
// round-trip pair the exposition tests (and the observatory's scrape tests)
// assert equality over.
func ParseSamples(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, s)
	}
	return out, sc.Err()
}

func parseSample(text string) (Sample, error) {
	var sample Sample
	name := text
	rest := ""
	if i := strings.IndexByte(text, '{'); i >= 0 {
		name = text[:i]
		j := strings.LastIndexByte(text, '}')
		if j < i {
			return sample, fmt.Errorf("unterminated label set")
		}
		labels, err := parseLabels(text[i+1 : j])
		if err != nil {
			return sample, err
		}
		sample.Labels = labels
		rest = strings.TrimSpace(text[j+1:])
	} else {
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return sample, fmt.Errorf("sample %q has no value", text)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validMetricName(name) {
		return sample, fmt.Errorf("invalid metric name %q", name)
	}
	sample.Name = name
	// Value, optionally followed by a timestamp.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return sample, fmt.Errorf("sample %q: want value [timestamp]", text)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return sample, fmt.Errorf("sample %q: bad value: %w", text, err)
	}
	sample.Value = v
	return sample, nil
}

func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q missing '='", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validMetricName(name) {
			return nil, fmt.Errorf("invalid label name %q", s[:eq])
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label value not quoted")
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value")
		}
		out = append(out, Label{Name: name, Value: unescapeLabel(s[1:end])})
		s = strings.TrimSpace(s[end+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// unescapeLabel reverses escapeLabel: \\, \" and \n escapes back to their
// literal characters.
func unescapeLabel(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 == len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
