package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE headers, then one sample line per series,
// histograms expanded into cumulative _bucket{le=...}, _sum and _count.
// Families and series render in creation order, so deterministic
// instrumentation yields byte-identical expositions.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families {
		if len(f.series) == 0 {
			continue
		}
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.series {
			if f.Kind != KindHistogram {
				fmt.Fprintf(bw, "%s%s %s\n", f.Name,
					labelString(f.LabelNames, s.LabelValues, "", ""), formatValue(s.value))
				continue
			}
			cum := uint64(0)
			for i, n := range s.bucketCounts {
				cum += n
				le := "+Inf"
				if i < len(f.buckets) {
					le = formatValue(f.buckets[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.Name,
					labelString(f.LabelNames, s.LabelValues, "le", le), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", f.Name,
				labelString(f.LabelNames, s.LabelValues, "", ""), formatValue(s.sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", f.Name,
				labelString(f.LabelNames, s.LabelValues, "", ""), s.count)
		}
	}
	return bw.Flush()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString renders {a="x",b="y"} plus an optional extra pair; empty
// schemas with no extra render as "".
func labelString(names, values []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders floats the way Prometheus expects: integers without
// an exponent or trailing zeros.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExpositionStats summarises a parsed exposition.
type ExpositionStats struct {
	Families int
	Samples  int
}

// ParseExposition validates Prometheus text exposition format: TYPE
// comments naming a known kind, and sample lines of the shape
// name{label="value",...} number. It returns family/sample counts, erroring
// on the first malformed line. This is the validation half of the CI smoke
// gate (and of round-trip tests against WritePrometheus).
func ParseExposition(r io.Reader) (ExpositionStats, error) {
	var st ExpositionStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) < 4 {
					return st, fmt.Errorf("line %d: malformed TYPE comment", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return st, fmt.Errorf("line %d: unknown metric type %q", line, fields[3])
				}
				st.Families++
			}
			continue
		}
		if err := parseSample(text); err != nil {
			return st, fmt.Errorf("line %d: %w", line, err)
		}
		st.Samples++
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	if st.Samples == 0 {
		return st, fmt.Errorf("exposition contains no samples")
	}
	return st, nil
}

func parseSample(text string) error {
	name := text
	rest := ""
	if i := strings.IndexByte(text, '{'); i >= 0 {
		name = text[:i]
		j := strings.LastIndexByte(text, '}')
		if j < i {
			return fmt.Errorf("unterminated label set")
		}
		if err := parseLabels(text[i+1 : j]); err != nil {
			return err
		}
		rest = strings.TrimSpace(text[j+1:])
	} else {
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return fmt.Errorf("sample %q has no value", text)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	// Value, optionally followed by a timestamp.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %q: want value [timestamp]", text)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("sample %q: bad value: %w", text, err)
	}
	return nil
}

func parseLabels(s string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q missing '='", s)
		}
		if !validMetricName(strings.TrimSpace(s[:eq])) {
			return fmt.Errorf("invalid label name %q", s[:eq])
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label value not quoted")
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value")
		}
		s = strings.TrimSpace(s[end+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
