package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// buildRegistry populates a registry with every metric kind and label shape.
func buildRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("snap_plain_total", "A label-less counter.").Add(3)
	lc := reg.Counter("snap_labeled_total", "A labelled counter.", "op", "core")
	lc.With("read", "0").Add(2)
	lc.With("write", "1").Add(5)
	reg.Gauge("snap_gauge", "A gauge.").Set(-1.5)
	h := reg.Histogram("snap_hist", "A histogram.", []float64{1, 2, 4}, "kind")
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.With("a").Observe(v)
	}
	h.With("b").Observe(2)
	return reg
}

func export(t *testing.T, reg *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

func TestCloneIsDeep(t *testing.T) {
	reg := buildRegistry()
	before := export(t, reg)

	clone := reg.Clone()
	if got := export(t, clone); got != before {
		t.Fatalf("clone exports differently:\n--- source ---\n%s--- clone ---\n%s", before, got)
	}

	// Mutating the source must not leak into the clone, and vice versa.
	reg.Counter("snap_plain_total", "A label-less counter.").Add(10)
	reg.Histogram("snap_hist", "A histogram.", []float64{1, 2, 4}, "kind").With("a").Observe(1)
	if got := export(t, clone); got != before {
		t.Fatal("mutating the source changed the clone — copy is shallow")
	}
	clone.Gauge("snap_gauge", "A gauge.").Set(99)
	after := export(t, reg)
	if strings.Contains(after, "snap_gauge 99") {
		t.Fatal("mutating the clone changed the source — copy is shallow")
	}
}

func TestImportSnapshotAddsRunLabel(t *testing.T) {
	run1 := buildRegistry()
	run2 := buildRegistry()

	agg := NewRegistry()
	if err := agg.ImportSnapshot(run1.Snapshot(), "run", "r1"); err != nil {
		t.Fatalf("import r1: %v", err)
	}
	if err := agg.ImportSnapshot(run2.Snapshot(), "run", "r2"); err != nil {
		t.Fatalf("import r2: %v", err)
	}

	out := export(t, agg)
	for _, want := range []string{
		`snap_plain_total{run="r1"} 3`,
		`snap_plain_total{run="r2"} 3`,
		`snap_labeled_total{op="read",core="0",run="r1"} 2`,
		`snap_hist_bucket{kind="a",run="r2",le="+Inf"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("aggregated exposition lacks %q:\n%s", want, out)
		}
	}

	// Re-importing the same run key adds onto the existing series
	// (cumulative counters stay cumulative).
	if err := agg.ImportSnapshot(run1.Snapshot(), "run", "r1"); err != nil {
		t.Fatalf("re-import r1: %v", err)
	}
	if out := export(t, agg); !strings.Contains(out, `snap_plain_total{run="r1"} 6`) {
		t.Errorf("re-import should add values:\n%s", out)
	}
}

func TestImportSnapshotRejectsShapeSkew(t *testing.T) {
	agg := NewRegistry()
	agg.Counter("skewed", "")

	if err := agg.ImportSnapshot([]SnapshotFamily{{Name: "skewed", Kind: "gauge"}}, "", ""); err == nil {
		t.Error("kind skew: want error")
	}
	if err := agg.ImportSnapshot([]SnapshotFamily{{Name: "skewed", Kind: "counter", Labels: []string{"x"}}}, "", ""); err == nil {
		t.Error("label-schema skew: want error")
	}
	if err := agg.ImportSnapshot([]SnapshotFamily{{Name: "nonsense", Kind: "frobnicator"}}, "", ""); err == nil {
		t.Error("unknown kind: want error")
	}
	if err := agg.ImportSnapshot([]SnapshotFamily{{
		Name: "badhist", Kind: "histogram", Buckets: []float64{1, 2},
		Series: []SnapshotSeries{{BucketCounts: []uint64{1}}},
	}}, "", ""); err == nil {
		t.Error("bucket-count mismatch: want error")
	}
}
