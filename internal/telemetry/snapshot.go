package telemetry

import "fmt"

// KindFromString parses the Kind spelling used by snapshots and profiles.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "counter":
		return KindCounter, nil
	case "gauge":
		return KindGauge, nil
	case "histogram":
		return KindHistogram, nil
	}
	return 0, fmt.Errorf("telemetry: unknown metric kind %q", s)
}

// Clone returns a deep copy of the registry: mutating either side never
// affects the other. Families and series keep their creation order, so a
// clone exports byte-identically to its source.
func (r *Registry) Clone() *Registry {
	out := NewRegistry()
	if err := out.ImportSnapshot(r.Snapshot(), "", ""); err != nil {
		// Snapshot always round-trips through ImportSnapshot: families
		// are well-formed by construction.
		panic(fmt.Sprintf("telemetry: clone failed: %v", err))
	}
	return out
}

// ImportSnapshot merges a registry snapshot into r, optionally widening
// every family's label schema with one extra label (extraName) carrying
// extraValue on each imported series — the mechanism the observatory uses
// to aggregate per-run registries into one exposition keyed by a "run"
// label. Counter and gauge values add onto existing series; histogram
// bucket counts, sums and counts add exactly (no re-bucketing through
// Observe). Importing families whose name already exists with a different
// kind, label schema or bucket layout is an error, not a panic: snapshots
// cross process boundaries, so shape skew is an input error.
func (r *Registry) ImportSnapshot(fams []SnapshotFamily, extraName, extraValue string) error {
	for _, sf := range fams {
		kind, err := KindFromString(sf.Kind)
		if err != nil {
			return err
		}
		labels := append([]string(nil), sf.Labels...)
		if extraName != "" {
			labels = append(labels, extraName)
		}
		if f, ok := r.byName[sf.Name]; ok {
			if f.Kind != kind || len(f.LabelNames) != len(labels) {
				return fmt.Errorf("telemetry: import %q: kind/label shape differs from registered family", sf.Name)
			}
			if len(f.buckets) != len(sf.Buckets) {
				return fmt.Errorf("telemetry: import %q: bucket layout differs from registered family", sf.Name)
			}
			for i, b := range sf.Buckets {
				if f.buckets[i] != b {
					return fmt.Errorf("telemetry: import %q: bucket layout differs from registered family", sf.Name)
				}
			}
		} else if kind == KindHistogram && len(sf.Buckets) == 0 {
			return fmt.Errorf("telemetry: import %q: histogram without buckets", sf.Name)
		}
		f := r.register(sf.Name, sf.Help, kind, sf.Buckets, labels)
		for _, ss := range sf.Series {
			if len(ss.LabelValues) != len(sf.Labels) {
				return fmt.Errorf("telemetry: import %q: series has %d label values, schema has %d",
					sf.Name, len(ss.LabelValues), len(sf.Labels))
			}
			values := append([]string(nil), ss.LabelValues...)
			if extraName != "" {
				values = append(values, extraValue)
			}
			s := f.With(values...)
			if kind != KindHistogram {
				s.value += ss.Value
				continue
			}
			if len(ss.BucketCounts) != len(f.buckets)+1 {
				return fmt.Errorf("telemetry: import %q: %d bucket counts for %d bounds",
					sf.Name, len(ss.BucketCounts), len(f.buckets))
			}
			for i, n := range ss.BucketCounts {
				s.bucketCounts[i] += n
			}
			s.sum += ss.Sum
			s.count += ss.Count
		}
	}
	return nil
}
