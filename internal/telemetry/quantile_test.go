package telemetry

import (
	"math"
	"testing"
)

func TestHistQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	counts := []uint64{2, 2, 2, 0} // final entry = +Inf overflow

	cases := []struct {
		q    float64
		want float64
	}{
		{0, 0},     // first bucket interpolates from 0
		{0.5, 1.5}, // rank 3 of 6 → halfway through (1,2]
		{1, 4},     // rank 6 → top of (2,4]
		{1.0 / 6, 0.5},
	}
	for _, c := range cases {
		got, ok := HistQuantile(bounds, counts, c.q)
		if !ok {
			t.Fatalf("q=%g: unexpectedly empty", c.q)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("q=%g: got %g, want %g", c.q, got, c.want)
		}
	}
}

func TestHistQuantileOverflowClamps(t *testing.T) {
	got, ok := HistQuantile([]float64{1, 2, 4}, []uint64{0, 0, 0, 5}, 0.5)
	if !ok || got != 4 {
		t.Fatalf("overflow-only histogram: got %g ok=%v, want 4 (largest finite bound)", got, ok)
	}
}

func TestHistQuantileEmpty(t *testing.T) {
	if v, ok := HistQuantile([]float64{1, 2, 4}, []uint64{0, 0, 0, 0}, 0.5); ok || v != 0 {
		t.Fatalf("empty histogram: got %g ok=%v, want 0 false", v, ok)
	}
	if v, ok := HistQuantile(nil, nil, 0.5); ok || v != 0 {
		t.Fatalf("nil histogram: got %g ok=%v, want 0 false", v, ok)
	}
}

func TestHistQuantileClampsQ(t *testing.T) {
	bounds := []float64{1, 2}
	counts := []uint64{1, 1, 0}
	lo, _ := HistQuantile(bounds, counts, -3)
	want0, _ := HistQuantile(bounds, counts, 0)
	if lo != want0 {
		t.Errorf("q<0 should clamp to 0: got %g, want %g", lo, want0)
	}
	hi, _ := HistQuantile(bounds, counts, 7)
	want1, _ := HistQuantile(bounds, counts, 1)
	if hi != want1 {
		t.Errorf("q>1 should clamp to 1: got %g, want %g", hi, want1)
	}
}

func TestSeriesQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_test", "", []float64{1, 2, 4})

	// Empty series: ok=false.
	if _, ok := h.With().Quantile(0.5); ok {
		t.Fatal("empty series: want ok=false")
	}

	for _, v := range []float64{0.5, 1.5, 1.5, 3} {
		h.Observe(v)
	}
	got, ok := h.With().Quantile(0.5)
	if !ok {
		t.Fatal("populated series: want ok=true")
	}
	// rank 2 of 4 lands at the end of bucket (1,2] count 2 → 1+1*(2-1)/2 = 1.5.
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("p50: got %g, want 1.5", got)
	}
}

func TestSeriesQuantilePanicsOnCounter(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("q_counter", "")
	c.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on a counter series should panic, mirroring Observe")
		}
	}()
	c.With().Quantile(0.5)
}
