package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"acr/internal/sim"
)

func TestRegistryCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()

	c := reg.Counter("jobs_total", "Jobs.", "kind")
	c.With("a").Add(2)
	c.With("a").Add(3)
	c.With("b").Add(1)
	if got := c.With("a").Value(); got != 5 {
		t.Errorf(`counter {a} = %v, want 5`, got)
	}
	if len(c.Series()) != 2 {
		t.Errorf("series count = %d, want 2", len(c.Series()))
	}

	g := reg.Gauge("depth", "Depth.")
	g.Set(7)
	g.Set(3)
	if got := g.With().Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}

	h := reg.Histogram("lat", "Latency.", []float64{10, 100})
	h.Observe(5)
	h.Observe(10) // upper bounds are inclusive
	h.Observe(50)
	h.Observe(1000)
	buckets, sum, count := h.With().Hist()
	if buckets[0] != 2 || buckets[1] != 1 || buckets[2] != 1 {
		t.Errorf("buckets = %v, want [2 1 1]", buckets)
	}
	if sum != 1065 || count != 4 {
		t.Errorf("sum/count = %v/%v, want 1065/4", sum, count)
	}

	// Registration is idempotent for an identical shape.
	if reg.Counter("jobs_total", "Jobs.", "kind") != c {
		t.Error("re-registration returned a different family")
	}
	if len(reg.Families()) != 3 {
		t.Errorf("family count = %d, want 3", len(reg.Families()))
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	reg := NewRegistry()
	c := reg.Counter("c", "", "x")
	expectPanic("shape mismatch", func() { reg.Gauge("c", "") })
	expectPanic("label arity", func() { c.With("a", "b") })
	expectPanic("negative counter", func() { c.With("a").Add(-1) })
	expectPanic("unsorted buckets", func() { reg.Histogram("h", "", []float64{5, 1}) })
	expectPanic("empty buckets", func() { reg.Histogram("h2", "", nil) })
	expectPanic("observe non-histogram", func() { reg.Gauge("g", "").With().Observe(1) })
}

func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("acr_hits_total", "Hits per core.", "core", "level").With("0", "l1d").Add(12)
	reg.Counter("acr_hits_total", "Hits per core.", "core", "level").With("1", "l2").Add(3)
	reg.Gauge("acr_run_cycles", "Makespan.").Set(145184)
	h := reg.Histogram("acr_stall_cycles", "Stalls with a \"quoted\\escaped\" help.", []float64{100, 1000})
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`acr_hits_total{core="0",level="l1d"} 12`,
		`acr_run_cycles 145184`,
		`acr_stall_cycles_bucket{le="100"} 1`,
		`acr_stall_cycles_bucket{le="+Inf"} 2`,
		`acr_stall_cycles_sum 5050`,
		`acr_stall_cycles_count 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	st, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if st.Families != 3 {
		t.Errorf("parsed %d families, want 3", st.Families)
	}
	// 2 counter series + 1 gauge + (3 buckets + sum + count).
	if st.Samples != 8 {
		t.Errorf("parsed %d samples, want 8", st.Samples)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",                             // no samples
		"# TYPE x gibberish\nx 1",      // unknown type
		"metric{oops} 1",               // label without value
		`metric{a="unterminated} 1`,    // unterminated quote
		"metric one\n",                 // non-numeric value
		"1metric 5\n",                  // invalid name
		`metric{a="v"} 1 2 3`,          // too many fields
		"# TYPE only_type histogram\n", // families but no samples
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed exposition %q", bad)
		}
	}
}

func TestTracerProducesValidTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 2)
	events := []sim.Event{
		{Time: 100, Kind: sim.EvBarrier, Core: 0, Dur: 20},
		{Time: 100, Kind: sim.EvBarrier, Core: 1, Dur: 5},
		{Time: 150, Kind: sim.EvCheckpoint, Core: -1, Detail: 40, Aux: 60, Dur: 30},
		{Time: 200, Kind: sim.EvDefer, Core: -1},
		{Time: 240, Kind: sim.EvError, Core: -1, Detail: 210},
		{Time: 300, Kind: sim.EvRecovery, Core: -1, Detail: 80, Aux: 20, Dur: 55},
	}
	for _, e := range events {
		tr.OnEvent(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	n, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, buf.String())
	}
	// 7 metadata (process + 2×(name+sort) + checkpoint + recovery), 2 barrier
	// spans + 2 run spans, 2 async pairs, 2 instants.
	if n != tr.Events() {
		t.Errorf("validator counted %d events, tracer wrote %d", n, tr.Events())
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"core 0"`, `"name":"checkpoint"`, `"name":"recovery"`,
		`"name":"barrier"`, `"name":"run"`, `"ph":"b"`, `"ph":"e"`,
		`"logged_words":40`, `"restored_words":80`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	// Ignoring events after Close must not corrupt the output.
	tr.OnEvent(events[0])
	if ValidateTraceString(t, buf.Bytes()) != n {
		t.Error("post-Close event changed the trace")
	}
}

func ValidateTraceString(t *testing.T, b []byte) int {
	t.Helper()
	n, err := ValidateTrace(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestValidateTraceRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		``, `[]`, `{"ph":"X"}`,
		`[{"ph":"X","name":"x","pid":1,"tid":0,"ts":1}]`, // X without dur
		`[{"name":"x","pid":1,"tid":0,"ts":1}]`,          // no phase
		`[{"ph":"q","name":"x","pid":1,"tid":0}]`,        // unknown phase
	} {
		if _, err := ValidateTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed trace %q", bad)
		}
	}
}

func TestProfileRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "A.", "k").With("x").Add(4)
	reg.Histogram("b", "B.", []float64{1, 2}).Observe(1.5)

	var buf bytes.Buffer
	meta := map[string]string{"bench": "is", "class": "S"}
	if err := WriteProfile(&buf, meta, reg); err != nil {
		t.Fatal(err)
	}
	p, err := ReadProfile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Meta["bench"] != "is" || len(p.Families) != 2 {
		t.Errorf("profile round-trip lost data: %+v", p)
	}
	hist := p.Families[1]
	if hist.Kind != "histogram" || len(hist.Series[0].BucketCounts) != 3 {
		t.Errorf("histogram shape lost: %+v", hist)
	}

	if _, err := ReadProfile(strings.NewReader(`{"families":[]}`)); err == nil {
		t.Error("accepted empty profile")
	}
	if _, err := ReadProfile(strings.NewReader(
		`{"families":[{"name":"x","kind":"blob","series":[]}]}`)); err == nil {
		t.Error("accepted unknown family kind")
	}
}

// TestObserveResultStrategyMetrics: ObserveResult labels the run with its
// resolved checkpoint strategy and exports the strategy-specific traffic
// counters, so exported profiles identify the scheme that produced them.
func TestObserveResultStrategyMetrics(t *testing.T) {
	reg := NewRegistry()
	col := NewCollector(reg)
	var res sim.Result
	res.Strategy = "tiered"
	res.Ckpt.FastLogWords = 128
	res.Ckpt.DemotedWords = 64
	res.Ckpt.MultiSnapshotRollbacks = 2
	res.Ckpt.MaxRollbackDepth = 3
	res.AddrMap.PrunedAssocs = 5
	res.AddrMap.BoostedAssocs = 7
	col.ObserveResult(res)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`acr_run_strategy_info{strategy="tiered"} 1`,
		"acr_ckpt_fast_log_words 128",
		"acr_ckpt_demoted_words 64",
		"acr_ckpt_multi_snapshot_rollbacks 2",
		"acr_ckpt_max_rollback_depth 3",
		"acr_addrmap_pruned_assocs 5",
		"acr_addrmap_boosted_assocs 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}
