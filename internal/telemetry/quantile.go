package telemetry

// HistQuantile estimates the q-quantile (0 ≤ q ≤ 1) of a fixed-bucket
// histogram from its upper bounds and per-bucket counts (the final count is
// the +Inf overflow bucket). The estimate interpolates linearly inside the
// containing bucket, Prometheus-style: the first bucket interpolates from 0,
// and a quantile landing in the overflow bucket clamps to the largest finite
// bound. The second return is false when the histogram is empty (no
// observations), in which case the value is 0.
func HistQuantile(bounds []float64, counts []uint64, q float64) (float64, bool) {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no finite upper bound to interpolate
			// toward; clamp to the largest finite bound.
			return bounds[len(bounds)-1], true
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		frac := (rank - float64(cum-c)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lower + (upper-lower)*frac, true
	}
	// Unreachable: cum == total ≥ rank by the loop's end.
	return bounds[len(bounds)-1], true
}

// Quantile estimates the q-quantile of a histogram series (see
// HistQuantile). It panics on non-histogram series, mirroring Observe.
func (s *Series) Quantile(q float64) (float64, bool) {
	if s.bucketCounts == nil {
		panic("telemetry: Quantile on non-histogram " + s.family.Name)
	}
	return HistQuantile(s.family.buckets, s.bucketCounts, q)
}
