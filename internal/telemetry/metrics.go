// Package telemetry is the observability layer of the reproduction: a typed
// metrics registry (counters, gauges, fixed-bucket histograms with labels),
// a Collector that turns the simulator's one-way event stream and run
// results into metrics, a streaming Chrome trace-event encoder, and
// Prometheus/JSON exporters for run profiles.
//
// Everything here observes; nothing feeds back into the machine. The
// simulator's determinism invariant — identical configs produce bit-identical
// results with telemetry attached or not — is preserved by construction and
// enforced by the sim package's determinism regression tests. Registry
// contents are themselves deterministic for a deterministic instrumentation
// order: families and series export in creation order.
//
//acr:deterministic
package telemetry

import (
	"fmt"
	"sort"
)

// Kind types a metric family.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "metric"
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. Registries are not safe for concurrent use: the simulator is
// single-goroutine, and driver-side use guards externally.
type Registry struct {
	families []*Family
	byName   map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Family)}
}

// Families returns the registered families in creation order.
func (r *Registry) Families() []*Family { return r.families }

func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels []string) *Family {
	if f, ok := r.byName[name]; ok {
		if f.Kind != kind || len(f.LabelNames) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &Family{Name: name, Help: help, Kind: kind,
		LabelNames: append([]string(nil), labels...),
		buckets:    append([]float64(nil), buckets...),
		byKey:      make(map[string]*Series)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers (or returns) a monotonically increasing counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Family {
	return r.register(name, help, KindCounter, nil, labels)
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Family {
	return r.register(name, help, KindGauge, nil, labels)
}

// Histogram registers (or returns) a fixed-bucket histogram family. Buckets
// are upper bounds in increasing order; an implicit +Inf bucket is added.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Family {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket", name))
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("telemetry: histogram %q buckets not sorted", name))
	}
	return r.register(name, help, KindHistogram, buckets, labels)
}

// Family is one named metric with a fixed label schema. Its series are the
// concrete label-value instantiations, created on first use.
type Family struct {
	Name       string
	Help       string
	Kind       Kind
	LabelNames []string

	buckets []float64
	series  []*Series
	byKey   map[string]*Series
}

// Buckets returns a histogram family's upper bounds (nil otherwise).
func (f *Family) Buckets() []float64 { return f.buckets }

// Series returns the family's series in creation order.
func (f *Family) Series() []*Series { return f.series }

// With returns the series for the given label values, creating it on first
// use. The number of values must match the family's label schema.
func (f *Family) With(labelValues ...string) *Series {
	if len(labelValues) != len(f.LabelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.Name, len(f.LabelNames), len(labelValues)))
	}
	key := ""
	for _, v := range labelValues {
		key += v + "\x00"
	}
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &Series{family: f, LabelValues: append([]string(nil), labelValues...)}
	if f.Kind == KindHistogram {
		s.bucketCounts = make([]uint64, len(f.buckets)+1)
	}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s
}

// Add increments the family's label-less series (counters).
func (f *Family) Add(v float64) { f.With().Add(v) }

// Set sets the family's label-less series (gauges).
func (f *Family) Set(v float64) { f.With().Set(v) }

// Observe records one observation on the family's label-less series
// (histograms).
func (f *Family) Observe(v float64) { f.With().Observe(v) }

// Series is one labelled instance of a family.
type Series struct {
	family      *Family
	LabelValues []string

	value        float64
	bucketCounts []uint64
	sum          float64
	count        uint64
}

// Add increments a counter series. Negative deltas panic: counters are
// monotone by contract.
func (s *Series) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("telemetry: counter %q decremented", s.family.Name))
	}
	s.value += v
}

// Set sets a gauge series.
func (s *Series) Set(v float64) { s.value = v }

// Value returns a counter/gauge series' current value.
func (s *Series) Value() float64 { return s.value }

// Observe records one histogram observation.
func (s *Series) Observe(v float64) { s.ObserveN(v, 1) }

// ObserveN records n identical histogram observations (used to import
// pre-bucketed substrate histograms such as ckpt.ReplayHist).
func (s *Series) ObserveN(v float64, n uint64) {
	if s.bucketCounts == nil {
		panic(fmt.Sprintf("telemetry: Observe on non-histogram %q", s.family.Name))
	}
	i := sort.SearchFloat64s(s.family.buckets, v)
	s.bucketCounts[i] += n
	s.sum += v * float64(n)
	s.count += n
}

// Hist returns a histogram series' per-bucket counts (including the final
// +Inf bucket), sum and total count.
func (s *Series) Hist() (buckets []uint64, sum float64, count uint64) {
	return s.bucketCounts, s.sum, s.count
}
