package telemetry

import (
	"sort"
	"strconv"

	"acr/internal/ckpt"
	"acr/internal/sim"
)

// Cycle-domain histogram buckets shared by the stall/wait metrics. The
// ranges span from a bare handler invocation to multi-period recovery
// stalls on large machines.
var stallBuckets = []float64{
	100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000,
}

// Collector implements sim.Observer: it folds the machine's event stream
// into the metrics registry as the run progresses, and ObserveResult
// finalises the run-level aggregates (cache hierarchy, checkpoint volumes,
// AddrMap behaviour, energy breakdown) from the Result. Collection is
// strictly one-way — the Collector never touches machine state.
type Collector struct {
	reg *Registry

	checkpoints  *Family
	loggedWords  *Family
	omittedWords *Family
	ckptStall    *Family
	defers       *Family
	errors       *Family
	recoveries   *Family
	recStall     *Family
	recRestored  *Family
	recRecomp    *Family
	barrierWaits *Family
	barrierWait  *Family
	barrierHist  *Family
}

// NewCollector returns a collector registering its event-driven families in
// reg. Run-level families are registered by ObserveResult.
func NewCollector(reg *Registry) *Collector {
	c := &Collector{reg: reg}
	c.checkpoints = reg.Counter("acr_sim_checkpoints_total",
		"Checkpoints established (including warm-up boundaries before the ROI).")
	c.loggedWords = reg.Counter("acr_sim_checkpoint_logged_words_total",
		"Old values conventionally logged, summed over closing intervals.")
	c.omittedWords = reg.Counter("acr_sim_checkpoint_omitted_words_total",
		"Old values amnesically omitted, summed over closing intervals.")
	c.ckptStall = reg.Histogram("acr_sim_checkpoint_stall_cycles",
		"Establishment stall per checkpoint (start to last group release).", stallBuckets)
	c.defers = reg.Counter("acr_sim_defers_total",
		"Checkpoint boundaries deferred by adaptive placement.")
	c.errors = reg.Counter("acr_sim_errors_total", "Errors detected.")
	c.recoveries = reg.Counter("acr_sim_recoveries_total", "Recoveries performed.")
	c.recStall = reg.Histogram("acr_sim_recovery_stall_cycles",
		"Recovery wall-cycles per recovery (detection to group release).", stallBuckets)
	c.recRestored = reg.Counter("acr_sim_recovery_restored_words_total",
		"Memory words written during roll-backs.")
	c.recRecomp = reg.Counter("acr_sim_recovery_recomputed_values_total",
		"Values regenerated along Slices during roll-backs.")
	c.barrierWaits = reg.Counter("acr_sim_barrier_waits_total",
		"Barrier participations per core.", "core")
	c.barrierWait = reg.Counter("acr_sim_barrier_wait_cycles_total",
		"Cycles spent waiting at barriers per core (incl. sync cost).", "core")
	c.barrierHist = reg.Histogram("acr_sim_barrier_wait_cycles",
		"Per-participation barrier wait distribution.", stallBuckets)
	return c
}

// OnEvent implements sim.Observer.
func (c *Collector) OnEvent(e sim.Event) {
	switch e.Kind {
	case sim.EvCheckpoint:
		c.checkpoints.Add(1)
		c.loggedWords.Add(float64(e.Detail))
		c.omittedWords.Add(float64(e.Aux))
		c.ckptStall.Observe(float64(e.Dur))
	case sim.EvDefer:
		c.defers.Add(1)
	case sim.EvError:
		c.errors.Add(1)
	case sim.EvRecovery:
		c.recoveries.Add(1)
		c.recStall.Observe(float64(e.Dur))
		c.recRestored.Add(float64(e.Detail))
		c.recRecomp.Add(float64(e.Aux))
	case sim.EvBarrier:
		core := strconv.Itoa(int(e.Core))
		c.barrierWaits.With(core).Add(1)
		c.barrierWait.With(core).Add(float64(e.Dur))
		c.barrierHist.Observe(float64(e.Dur))
	}
}

// ObserveResult folds a completed run's aggregates into the registry:
// run-level gauges, per-core per-level cache activity, directory traffic,
// checkpoint/AddrMap statistics, the Slice replay-length histogram and the
// energy-event breakdown.
func (c *Collector) ObserveResult(res sim.Result) {
	reg := c.reg

	run := func(name, help string, v float64) {
		reg.Gauge(name, help).Set(v)
	}
	run("acr_run_cycles", "Makespan of the run in cycles.", float64(res.Cycles))
	run("acr_run_instructions", "Retired instructions.", float64(res.Instrs))
	run("acr_run_energy_pj", "Total energy including leakage.", res.EnergyPJ)
	run("acr_run_dynamic_pj", "Dynamic (event) energy.", res.DynamicPJ)
	run("acr_run_edp_pj_cycles", "Energy-delay product.", res.EDP())
	run("acr_run_barrier_episodes", "Barrier episodes released.", float64(res.Barriers))
	run("acr_run_period_cycles", "Realised checkpoint period (0 = no checkpointing).",
		float64(res.PeriodCycles))
	run("acr_run_roi_start_cycles", "Region-of-interest start.", float64(res.ROIStartCycles))
	run("acr_run_timeline_dropped", "Events discarded by the timeline ring buffer.",
		float64(res.TimelineDropped))
	if res.Strategy != "" {
		// Info-style gauge: constant 1, the label carries the resolved
		// checkpoint strategy so dashboards can slice runs by scheme.
		reg.Gauge("acr_run_strategy_info",
			"Resolved checkpoint strategy of this run (label-only, value is 1).",
			"strategy").With(res.Strategy).Set(1)
	}

	hits := reg.Counter("acr_cache_hits_total", "Cache hits per core and level.", "core", "level")
	misses := reg.Counter("acr_cache_misses_total", "Cache misses per core and level.", "core", "level")
	wbs := reg.Counter("acr_cache_writebacks_total",
		"Dirty victims migrated to the next level down, per core and level.", "core", "level")
	fills := reg.Counter("acr_dram_fills_total", "Line fills from DRAM per core.", "core")
	for i, cs := range res.Mem.PerCore {
		core := strconv.Itoa(i)
		hits.With(core, "l1d").Add(float64(cs.L1D.Hits))
		hits.With(core, "l2").Add(float64(cs.L2.Hits))
		misses.With(core, "l1d").Add(float64(cs.L1D.Misses))
		misses.With(core, "l2").Add(float64(cs.L2.Misses))
		wbs.With(core, "l1d").Add(float64(cs.L1D.Writebacks))
		wbs.With(core, "l2").Add(float64(cs.L2.Writebacks))
		fills.With(core).Add(float64(cs.Fills))
	}
	reg.Counter("acr_directory_comm_edges_total",
		"Directory communication observations (coherence traffic).").Add(float64(res.Mem.CommEdges))
	reg.Counter("acr_directory_log_bit_sets_total",
		"First-store log-bit transitions.").Add(float64(res.Mem.LogBitSets))
	reg.Counter("acr_flushed_lines_total",
		"Dirty lines written back at checkpoint establishment.").Add(float64(res.Mem.FlushedLines))

	ck := res.Ckpt
	run("acr_ckpt_checkpoints", "Checkpoints inside the ROI.", float64(ck.Checkpoints))
	run("acr_ckpt_recoveries", "Recoveries performed.", float64(ck.Recoveries))
	run("acr_ckpt_logged_words", "ROI words conventionally logged.", float64(ck.LoggedWords))
	run("acr_ckpt_omitted_words", "ROI words amnesically omitted.", float64(ck.OmittedWords))
	run("acr_ckpt_restored_words", "Words restored during roll-backs.", float64(ck.RestoredWords))
	run("acr_ckpt_recomputed_words", "Amnesic subset of restored words.", float64(ck.RecomputedWords))
	run("acr_ckpt_delta_words", "Dirty words sealed into differential checkpoints.", float64(ck.DeltaWords))
	run("acr_ckpt_fast_log_words", "Words logged to the fast tier (tiered strategy).", float64(ck.FastLogWords))
	run("acr_ckpt_demoted_words", "Fast-tier words demoted to DRAM.", float64(ck.DemotedWords))
	run("acr_ckpt_multi_snapshot_rollbacks", "Recoveries that crossed more than one checkpoint.",
		float64(ck.MultiSnapshotRollbacks))
	run("acr_ckpt_max_rollback_depth", "Deepest rollback in retained checkpoints.",
		float64(ck.MaxRollbackDepth))

	replay := reg.Histogram("acr_recovery_replay_length_instructions",
		"Slice replay length per recomputed value.", replayBuckets())
	for i, n := range ck.ReplayLens {
		if n == 0 {
			continue
		}
		// Import each substrate bucket at its upper bound (overflow at
		// one past the largest bound).
		v := float64(ckpt.ReplayLenBuckets[len(ckpt.ReplayLenBuckets)-1] + 1)
		if i < len(ckpt.ReplayLenBuckets) {
			v = float64(ckpt.ReplayLenBuckets[i])
		}
		replay.With().ObserveN(v, uint64(n))
	}

	am := res.AddrMap
	run("acr_addrmap_inserts", "Successful associations.", float64(am.Inserts))
	run("acr_addrmap_rejected", "Associations dropped: map full.", float64(am.Rejected))
	run("acr_addrmap_slice_too_long", "Associations dropped: Slice over cap.", float64(am.SliceTooLong))
	run("acr_addrmap_lookups", "Omission-decision lookups.", float64(am.Lookups))
	run("acr_addrmap_hits", "Lookups whose record recomputes the old value.", float64(am.Hits))
	run("acr_addrmap_peak_occupancy", "Peak records held.", float64(am.PeakOccupancy))
	run("acr_addrmap_peak_input_words", "Peak buffered input words.", float64(am.PeakInputWords))
	run("acr_addrmap_pruned_assocs", "Associations skipped by the auto strategy's site plan.",
		float64(am.PrunedAssocs))
	run("acr_addrmap_boosted_assocs", "Associations compiled under a boosted site cap.",
		float64(am.BoostedAssocs))

	energy := reg.Counter("acr_energy_events_total",
		"Chargeable architectural events by kind.", "event")
	names := make([]string, 0, len(res.EnergyEvents))
	for name := range res.EnergyEvents { //acr:maporder-ok keys are sorted below before any output
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		energy.With(name).Add(float64(res.EnergyEvents[name]))
	}
}

// SchedCollector exports the serial engine's dispatch diagnostics — the
// quantum-length histogram and the coalescing counters. It is a separate
// observer from Collector because sim.SchedStats describe the engine, not
// the simulated machine: they move with the Coalesce/Compile/Workers speed
// seams while Result does not, and profiles recorded without a
// SchedCollector attached (notably the fastpath oracle fixture) must stay
// byte-identical.
type SchedCollector struct{ reg *Registry }

// NewSchedCollector returns a collector writing into reg when a run
// completes.
func NewSchedCollector(reg *Registry) *SchedCollector { return &SchedCollector{reg: reg} }

// OnEvent implements sim.Observer; SchedCollector only consumes the
// end-of-run diagnostics.
func (s *SchedCollector) OnEvent(sim.Event) {}

// ObserveSchedStats implements sim.SchedStatsObserver.
func (s *SchedCollector) ObserveSchedStats(st sim.SchedStats) {
	hist := s.reg.Histogram("acr_sched_quantum_instrs",
		"Serial-engine quantum lengths in retired instructions (power-of-two buckets).",
		quantumBuckets())
	for i, n := range st.QuantumHist {
		if n == 0 {
			continue
		}
		// Bucket i of the machine histogram holds lengths in
		// [2^(i-1), 2^i - 1] (bucket 0: empty quanta); import it at its
		// inclusive upper bound, which is exactly a registry bucket edge.
		hist.With().ObserveN(float64(int64(1)<<uint(i)-1), uint64(n))
	}
	s.reg.Gauge("acr_sched_quantum_avg_instrs",
		"Average serial quantum length in instructions (span instructions / spans).").
		Set(st.AvgQuantum())
	s.reg.Gauge("acr_sched_spans",
		"Quanta dispatched by the serial engine.").Set(float64(st.Spans))
	s.reg.Gauge("acr_sched_eager_calls",
		"Coalescing eager executions that advanced a peer core.").Set(float64(st.EagerCalls))
	s.reg.Gauge("acr_sched_eager_instrs",
		"Peer instructions retired eagerly by quantum coalescing.").Set(float64(st.EagerInstrs))
}

// quantumBuckets are the registry-side edges mirroring the machine's
// power-of-two quantum histogram: 2^i - 1 for i in [0, 15).
func quantumBuckets() []float64 {
	out := make([]float64, 15)
	for i := range out {
		out[i] = float64(int64(1)<<uint(i) - 1)
	}
	return out
}

func replayBuckets() []float64 {
	out := make([]float64, len(ckpt.ReplayLenBuckets))
	for i, b := range ckpt.ReplayLenBuckets {
		out[i] = float64(b)
	}
	return out
}
