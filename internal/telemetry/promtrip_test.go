package telemetry

import (
	"bytes"
	"reflect"
	"testing"
)

// TestPrometheusSampleRoundTrip proves Write → Parse equality over a
// registry exercising every metric kind and label shape: label-less,
// single- and multi-label counters, gauges, and labelled histograms, with
// label values needing every escape (backslash, quote, newline).
func TestPrometheusSampleRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_plain_total", "plain").Add(7)
	c := reg.Counter("rt_ops_total", "ops", "op", "core")
	c.With("read", "0").Add(1)
	c.With("write", "3").Add(2.5)
	reg.Gauge("rt_level", "level").Set(-2.25)
	esc := reg.Gauge("rt_escaped", "escapes", "path")
	esc.With(`C:\dir "quoted"` + "\nline2").Set(1)
	h := reg.Histogram("rt_lat", "latency", []float64{0.5, 1}, "kind")
	h.With("a").Observe(0.25)
	h.With("a").Observe(0.75)
	h.With("a").Observe(9)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	exposition := buf.String()

	if _, err := ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ParseExposition rejects our own output: %v\n%s", err, exposition)
	}

	got, err := ParseSamples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseSamples: %v\n%s", err, exposition)
	}

	want := []Sample{
		{Name: "rt_plain_total", Value: 7},
		{Name: "rt_ops_total", Labels: []Label{{"op", "read"}, {"core", "0"}}, Value: 1},
		{Name: "rt_ops_total", Labels: []Label{{"op", "write"}, {"core", "3"}}, Value: 2.5},
		{Name: "rt_level", Value: -2.25},
		{Name: "rt_escaped", Labels: []Label{{"path", `C:\dir "quoted"` + "\nline2"}}, Value: 1},
		{Name: "rt_lat_bucket", Labels: []Label{{"kind", "a"}, {"le", "0.5"}}, Value: 1},
		{Name: "rt_lat_bucket", Labels: []Label{{"kind", "a"}, {"le", "1"}}, Value: 2},
		{Name: "rt_lat_bucket", Labels: []Label{{"kind", "a"}, {"le", "+Inf"}}, Value: 3},
		{Name: "rt_lat_sum", Labels: []Label{{"kind", "a"}}, Value: 10},
		{Name: "rt_lat_count", Labels: []Label{{"kind", "a"}}, Value: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\ngot  %+v\nwant %+v\nexposition:\n%s", got, want, exposition)
	}
}

// TestPrometheusRoundTripViaImport closes the loop the observatory relies
// on: a registry's snapshot imported into a fresh registry exports
// byte-identically.
func TestPrometheusRoundTripViaImport(t *testing.T) {
	reg := buildRegistry()
	want := export(t, reg)
	re := NewRegistry()
	if err := re.ImportSnapshot(reg.Snapshot(), "", ""); err != nil {
		t.Fatalf("ImportSnapshot: %v", err)
	}
	if got := export(t, re); got != want {
		t.Fatalf("import round-trip not byte-identical:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func TestParseSamplesRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value\n",
		`unterminated{a="x} 1` + "\n",
		`bad-name{} 1` + "\n",
		`missing_eq{a} 1` + "\n",
		`trailing{a="x"} not_a_number` + "\n",
	} {
		if _, err := ParseSamples(bytes.NewReader([]byte(bad))); err == nil {
			t.Errorf("ParseSamples(%q): want error", bad)
		}
	}
}
