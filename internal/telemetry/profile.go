package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SnapshotFamily is the JSON-snapshot form of one metric family.
type SnapshotFamily struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    string           `json:"kind"`
	Labels  []string         `json:"labels,omitempty"`
	Buckets []float64        `json:"buckets,omitempty"`
	Series  []SnapshotSeries `json:"series"`
}

// SnapshotSeries is one series inside a SnapshotFamily. Counters and gauges
// carry Value; histograms carry BucketCounts (per-bucket, final entry = the
// +Inf overflow), Sum and Count.
type SnapshotSeries struct {
	LabelValues  []string `json:"label_values,omitempty"`
	Value        float64  `json:"value,omitempty"`
	BucketCounts []uint64 `json:"bucket_counts,omitempty"`
	Sum          float64  `json:"sum,omitempty"`
	Count        uint64   `json:"count,omitempty"`
}

// Profile is an exportable run profile: metadata about the run plus the full
// registry snapshot. Meta keys serialise sorted, families in creation order,
// so identical runs produce byte-identical profiles.
type Profile struct {
	Meta     map[string]string `json:"meta,omitempty"`
	Families []SnapshotFamily  `json:"families"`
}

// Snapshot copies the registry's current state into plain serialisable
// structs.
func (r *Registry) Snapshot() []SnapshotFamily {
	out := make([]SnapshotFamily, 0, len(r.families))
	for _, f := range r.families {
		sf := SnapshotFamily{
			Name:    f.Name,
			Help:    f.Help,
			Kind:    f.Kind.String(),
			Labels:  append([]string(nil), f.LabelNames...),
			Buckets: append([]float64(nil), f.buckets...),
			Series:  make([]SnapshotSeries, 0, len(f.series)),
		}
		for _, s := range f.series {
			ss := SnapshotSeries{LabelValues: append([]string(nil), s.LabelValues...)}
			if f.Kind == KindHistogram {
				ss.BucketCounts = append([]uint64(nil), s.bucketCounts...)
				ss.Sum = s.sum
				ss.Count = s.count
			} else {
				ss.Value = s.value
			}
			sf.Series = append(sf.Series, ss)
		}
		out = append(out, sf)
	}
	return out
}

// WriteJSON writes the bare registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteProfile writes a run profile — metadata plus registry snapshot — as
// indented JSON. encoding/json serialises the meta map with sorted keys, so
// output is deterministic.
func WriteProfile(w io.Writer, meta map[string]string, reg *Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Profile{Meta: meta, Families: reg.Snapshot()})
}

// ReadProfile parses a profile written by WriteProfile and performs basic
// shape validation (non-empty families, known kinds, label arity).
func ReadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if len(p.Families) == 0 {
		return nil, fmt.Errorf("profile: no metric families")
	}
	for _, f := range p.Families {
		switch f.Kind {
		case "counter", "gauge", "histogram":
		default:
			return nil, fmt.Errorf("profile: family %q has unknown kind %q", f.Name, f.Kind)
		}
		for _, s := range f.Series {
			if len(s.LabelValues) != len(f.Labels) {
				return nil, fmt.Errorf("profile: family %q: series has %d label values, schema has %d",
					f.Name, len(s.LabelValues), len(f.Labels))
			}
			if f.Kind == "histogram" && len(s.BucketCounts) != len(f.Buckets)+1 {
				return nil, fmt.Errorf("profile: family %q: %d bucket counts for %d bounds",
					f.Name, len(s.BucketCounts), len(f.Buckets))
			}
		}
	}
	return &p, nil
}

// ValidateTrace parses Chrome trace-event JSON produced by Tracer (the JSON
// array form) and checks each event has the fields Perfetto requires for its
// phase. It returns the number of events. This is the trace half of the CI
// smoke gate.
func ValidateTrace(r io.Reader) (int, error) {
	var events []map[string]any
	if err := json.NewDecoder(r).Decode(&events); err != nil {
		return 0, fmt.Errorf("trace: %w", err)
	}
	if len(events) == 0 {
		return 0, fmt.Errorf("trace: no events")
	}
	for i, ev := range events {
		phase, ok := ev["ph"].(string)
		if !ok {
			return 0, fmt.Errorf("trace: event %d missing ph", i)
		}
		if _, ok := ev["name"].(string); !ok {
			return 0, fmt.Errorf("trace: event %d missing name", i)
		}
		need := func(keys ...string) error {
			for _, k := range keys {
				if _, ok := ev[k]; !ok {
					return fmt.Errorf("trace: event %d (ph=%s) missing %q", i, phase, k)
				}
			}
			return nil
		}
		var err error
		switch phase {
		case "M":
			err = need("pid", "args")
		case "X":
			err = need("pid", "tid", "ts", "dur")
		case "i", "I":
			err = need("pid", "tid", "ts")
		case "b", "e":
			err = need("pid", "tid", "ts", "id", "cat")
		default:
			err = fmt.Errorf("trace: event %d has unsupported phase %q", i, phase)
		}
		if err != nil {
			return 0, err
		}
	}
	return len(events), nil
}

// TopSeries returns up to n (name, labels, value) rows for the registry's
// counter/gauge series sorted by descending value — a convenience for
// human-readable driver summaries.
func (r *Registry) TopSeries(n int) []string {
	type row struct {
		text  string
		value float64
	}
	var rows []row
	for _, f := range r.families {
		if f.Kind == KindHistogram {
			continue
		}
		for _, s := range f.series {
			if s.value == 0 {
				continue
			}
			rows = append(rows, row{
				text:  fmt.Sprintf("%s%s = %s", f.Name, labelString(f.LabelNames, s.LabelValues, "", ""), formatValue(s.value)),
				value: s.value,
			})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].value > rows[j].value })
	if len(rows) > n {
		rows = rows[:n]
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.text
	}
	return out
}
