package obsrv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"acr/internal/telemetry"
)

// Server is the embeddable HTTP observatory over a run registry.
//
// Endpoints:
//
//	GET /healthz             liveness: "ok" plus run counts
//	GET /metrics             live Prometheus exposition, aggregated across
//	                         runs (every per-run family gains a run="key"
//	                         label; observatory-level families describe the
//	                         registry itself)
//	GET /runs                all run records (JSON, registration order,
//	                         without metric snapshots)
//	GET /runs/{key}          one full record: summary, metrics snapshot,
//	                         histogram quantiles (key may contain slashes)
//	GET /runs/{key}/events   SSE stream of flight-recorder events; closes
//	                         with "event: done" once the run finishes and
//	                         the stream is drained
//	GET /debug/pprof/...     the standard pprof handlers (replacing the
//	                         former ad-hoc DefaultServeMux listener)
type Server struct {
	reg  *Registry
	mux  *http.ServeMux
	srv  *http.Server
	ln   net.Listener
	base time.Time

	scrapes atomic.Int64

	// pollInterval paces the SSE poll loop; tests shrink it.
	pollInterval time.Duration
}

// NewServer builds an observatory over reg. Call Start (or mount Handler
// in an existing server) to serve it.
func NewServer(reg *Registry) *Server {
	s := &Server{
		reg:          reg,
		mux:          http.NewServeMux(),
		base:         time.Now(),
		pollInterval: 25 * time.Millisecond,
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/runs", s.handleRuns)
	s.mux.HandleFunc("/runs/", s.handleRun)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the observatory's routing handler, for mounting into an
// existing HTTP server (the future acrd daemon).
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr and serves in the background. The bind itself is
// synchronous — an unusable address fails here, not in a goroutine log
// line — and the bound address (useful with ":0") is returned. Serve-loop
// errors after a successful bind are reported on stderr.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsrv: bind %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "obsrv: serve: %v\n", err)
		}
	}()
	return ln.Addr(), nil
}

// Close stops the listener; in-flight handlers are abandoned (the
// observatory holds no state worth draining for).
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	counts := s.reg.CountByStatus()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok running=%d done=%d failed=%d interrupted=%d\n",
		counts[StatusRunning], counts[StatusDone], counts[StatusFailed], counts[StatusInterrupted])
}

// handleMetrics renders one merged exposition: observatory-level families
// plus every run's registry imported under a run="key" label. Counters
// stay counters across scrapes because each run's registry is cumulative;
// the merge itself is rebuilt per scrape from immutable snapshots.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.scrapes.Add(1)
	agg := telemetry.NewRegistry()
	agg.Gauge("acr_observatory_uptime_seconds", "Observatory wall time since start.").
		Set(time.Since(s.base).Seconds())
	agg.Counter("acr_observatory_scrapes_total", "Scrapes of /metrics since start.").
		Add(float64(s.scrapes.Load()))
	runsG := agg.Gauge("acr_observatory_runs", "Registered runs by lifecycle status.", "status")
	counts := s.reg.CountByStatus()
	for _, st := range []Status{StatusRunning, StatusDone, StatusFailed, StatusInterrupted} {
		runsG.With(string(st)).Set(float64(counts[st]))
	}
	eventsG := agg.Gauge("acr_observatory_flight_events", "Flight-recorder events recorded per run.", "run")

	for _, rec := range s.reg.Runs() {
		full, ok := s.reg.Get(rec.Key)
		if !ok {
			continue
		}
		eventsG.With(rec.Key).Set(float64(full.EventsSeen))
		if err := agg.ImportSnapshot(full.Metrics, "run", rec.Key); err != nil {
			http.Error(w, fmt.Sprintf("aggregate %s: %v", rec.Key, err), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := agg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.reg.Runs())
}

// HistogramQuantiles is the derived per-histogram summary /runs/{key}
// attaches next to the raw snapshot.
type HistogramQuantiles struct {
	Family      string   `json:"family"`
	LabelValues []string `json:"label_values,omitempty"`
	Count       uint64   `json:"count"`
	Sum         float64  `json:"sum"`
	P50         float64  `json:"p50"`
	P90         float64  `json:"p90"`
	P99         float64  `json:"p99"`
}

// runResponse is the /runs/{key} document.
type runResponse struct {
	RunRecord
	Quantiles []HistogramQuantiles `json:"histogram_quantiles,omitempty"`
}

// handleRun serves /runs/{key} and /runs/{key}/events. Keys contain
// slashes (bench/threads/class/config), so the path is parsed by suffix
// rather than by segment.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/runs/")
	if rest, ok := strings.CutSuffix(key, "/events"); ok {
		s.serveEvents(w, r, rest)
		return
	}
	rec, ok := s.reg.Get(key)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown run %q", key), http.StatusNotFound)
		return
	}
	resp := runResponse{RunRecord: rec}
	for _, f := range rec.Metrics {
		if f.Kind != "histogram" {
			continue
		}
		for _, series := range f.Series {
			hq := HistogramQuantiles{
				Family:      f.Name,
				LabelValues: series.LabelValues,
				Count:       series.Count,
				Sum:         series.Sum,
			}
			// An empty histogram quantiles to 0 (the ok=false case):
			// zeros keep the JSON finite and are unambiguous next to
			// Count=0.
			hq.P50, _ = telemetry.HistQuantile(f.Buckets, series.BucketCounts, 0.50)
			hq.P90, _ = telemetry.HistQuantile(f.Buckets, series.BucketCounts, 0.90)
			hq.P99, _ = telemetry.HistQuantile(f.Buckets, series.BucketCounts, 0.99)
			resp.Quantiles = append(resp.Quantiles, hq)
		}
	}
	writeJSON(w, resp)
}

// serveEvents streams the run's flight recorder as server-sent events:
// each event is one `data:` JSON line with its absolute sequence number as
// the SSE id. The stream replays the retained ring, then follows the live
// run; when the run leaves StatusRunning and the ring is drained it emits
// `event: done` and closes. `?after=N` resumes past a previous cursor.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request, key string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	cursor := uint64(0)
	if after := r.URL.Query().Get("after"); after != "" {
		n, err := strconv.ParseUint(after, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad after cursor %q", after), http.StatusBadRequest)
			return
		}
		cursor = n
	}
	if _, _, _, _, ok := s.reg.Events(key, cursor); !ok {
		http.Error(w, fmt.Sprintf("unknown run %q", key), http.StatusNotFound)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	enc := json.NewEncoder(w)
	for {
		events, last, missed, status, ok := s.reg.Events(key, cursor)
		if !ok {
			return
		}
		if missed > 0 {
			fmt.Fprintf(w, "event: gap\ndata: {\"evicted\": %d}\n\n", missed)
		}
		for _, ev := range viewEvents(events, last) {
			fmt.Fprintf(w, "id: %d\ndata: ", ev.Seq)
			if err := enc.Encode(ev); err != nil {
				return
			}
			fmt.Fprint(w, "\n")
		}
		if len(events) > 0 {
			cursor = last
			flusher.Flush()
		}
		if status != StatusRunning {
			fmt.Fprintf(w, "event: done\ndata: {\"status\": %q, \"last_seq\": %d}\n\n", status, cursor)
			flusher.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(s.pollInterval):
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
