package obsrv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acr/internal/sim"
	"acr/internal/telemetry"
)

// populated returns a registry with one finished, event-bearing run plus
// its server, and the run's key.
func populated(t *testing.T) (*Server, string) {
	t.Helper()
	g, err := NewRegistry(Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := testJob()
	key := j.KeyString()
	token := g.JobBegin(j, key, false)
	feed(token.Observers(),
		sim.Event{Time: 10, Kind: sim.EvCheckpoint, Core: -1, Detail: 64, Dur: 4},
		sim.Event{Time: 20, Kind: sim.EvBarrier, Core: 0, Dur: 2},
		sim.Event{Time: 20, Kind: sim.EvBarrier, Core: 1, Dur: 2},
	)
	token.JobEnd(sim.Result{Cycles: 100, Instrs: 50, EnergyPJ: 10}, nil)
	s := NewServer(g)
	s.pollInterval = time.Millisecond
	return s, key
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerHealthz(t *testing.T) {
	s, _ := populated(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok ") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if !strings.Contains(body, "done=1") {
		t.Fatalf("healthz should count the finished run: %q", body)
	}
}

func TestServerMetrics(t *testing.T) {
	s, key := populated(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d\n%s", code, body)
	}
	if _, err := telemetry.ParseExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v\n%s", err, body)
	}
	samples, err := telemetry.ParseSamples(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// Observatory-level families plus the run's metrics under a run label.
	var sawScrapes, sawRunLabel bool
	for _, sm := range samples {
		if sm.Name == "acr_observatory_scrapes_total" && sm.Value >= 1 {
			sawScrapes = true
		}
		for _, l := range sm.Labels {
			if l.Name == "run" && l.Value == key {
				sawRunLabel = true
			}
		}
	}
	if !sawScrapes || !sawRunLabel {
		t.Fatalf("metrics lack observatory families (%v) or run-labelled series (%v):\n%s",
			sawScrapes, sawRunLabel, body)
	}
}

func TestServerRuns(t *testing.T) {
	s, key := populated(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/runs")
	if code != http.StatusOK {
		t.Fatalf("runs: %d", code)
	}
	var runs []RunRecord
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs: %v\n%s", err, body)
	}
	if len(runs) != 1 || runs[0].Key != key || runs[0].Status != StatusDone {
		t.Fatalf("/runs: %+v", runs)
	}
	if len(runs[0].Metrics) != 0 {
		t.Fatal("/runs must not inline metric snapshots")
	}

	code, body = get(t, srv, "/runs/"+key)
	if code != http.StatusOK {
		t.Fatalf("run: %d", code)
	}
	var rec struct {
		RunRecord
		Quantiles []HistogramQuantiles `json:"histogram_quantiles"`
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatalf("/runs/{key}: %v\n%s", err, body)
	}
	if rec.Summary == nil || rec.Summary.Cycles != 100 {
		t.Fatalf("/runs/{key} summary: %+v", rec.Summary)
	}
	if len(rec.Metrics) == 0 {
		t.Fatal("/runs/{key} should include the metrics snapshot")
	}
	if len(rec.Quantiles) == 0 {
		t.Fatal("/runs/{key} should derive histogram quantiles")
	}

	if code, _ := get(t, srv, "/runs/no/such/key"); code != http.StatusNotFound {
		t.Fatalf("unknown run: %d, want 404", code)
	}
	if code, _ := get(t, srv, "/runs/no/such/key/events"); code != http.StatusNotFound {
		t.Fatalf("unknown run events: %d, want 404", code)
	}
}

func TestServerEventsSSE(t *testing.T) {
	s, key := populated(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// The run is finished, so the stream replays the ring, emits done and
	// closes — a plain GET terminates.
	resp, err := srv.Client().Get(srv.URL + "/runs/" + key + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type=%q", ct)
	}

	var dataLines []EventView
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: {\"seq\"") {
			var ev EventView
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			dataLines = append(dataLines, ev)
		}
		if line == "event: done" {
			sawDone = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(dataLines) != 3 || !sawDone {
		t.Fatalf("SSE: %d events, done=%v, want 3 events and a done frame", len(dataLines), sawDone)
	}
	if dataLines[0].Seq != 1 || dataLines[0].Kind != "checkpoint" {
		t.Fatalf("first event: %+v", dataLines[0])
	}

	// Resuming past a cursor skips the replayed prefix.
	resp2, err := srv.Client().Get(srv.URL + "/runs/" + key + "/events?after=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if n := bytes.Count(body, []byte("data: {\"seq\"")); n != 1 {
		t.Fatalf("after=2: %d events, want 1:\n%s", n, body)
	}
}
