package obsrv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// journalLine is one JSONL journal entry: a wall-clock stamp plus the run
// record at a lifecycle transition. Begin-lines carry the light record
// (status running); end-lines carry the full record including the summary
// and metrics snapshot, so the journal alone reconstructs finished runs.
type journalLine struct {
	TS     string    `json:"ts"`
	Record RunRecord `json:"record"`
}

// journal is the append-only on-disk log. Appends are serialised by a
// mutex and flushed per line: a crashed process loses at most the line in
// flight, and every retained line is independently parseable.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obsrv: journal: %w", err)
	}
	return &journal{f: f}, nil
}

func (j *journal) append(rec RunRecord) error {
	line := journalLine{TS: time.Now().UTC().Format(time.RFC3339Nano), Record: rec}
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(data)
	return err
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// appendJournal journals a record transition; journal write failures are
// surfaced on stderr rather than failing the run — observability must not
// take the experiment down.
func (g *Registry) appendJournal(rec RunRecord) {
	if g.journal == nil {
		return
	}
	if err := g.journal.append(rec); err != nil {
		fmt.Fprintf(os.Stderr, "obsrv: journal append: %v\n", err)
	}
}

// LoadJournal folds an existing journal file into the registry: later
// lines for a key supersede earlier ones, and records that were still
// running when their process died load as StatusInterrupted. A missing
// file is not an error (first run with a fresh journal path). Loaded runs
// have empty flight rings — event history is in-memory only.
func (g *Registry) LoadJournal(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("obsrv: journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	n := 0
	for sc.Scan() {
		n++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var line journalLine
		if err := json.Unmarshal(text, &line); err != nil {
			return fmt.Errorf("obsrv: journal %s line %d: %w", path, n, err)
		}
		rec := line.Record
		if rec.Key == "" {
			return fmt.Errorf("obsrv: journal %s line %d: record without key", path, n)
		}
		if rec.Status == StatusRunning {
			rec.Status = StatusInterrupted
			rec.Error = "interrupted: loaded from journal with status running"
		}
		g.mu.Lock()
		st := g.runs[rec.Key]
		if st == nil {
			st = &runState{flight: newFlightRing(g.opts.FlightCap)}
			g.runs[rec.Key] = st
			g.order = append(g.order, rec.Key)
		}
		g.mu.Unlock()
		st.mu.Lock()
		// The journal records EventsSeen at transition time, but the
		// events themselves are gone with the old process.
		rec.EventsHeld = 0
		st.record = rec
		st.mu.Unlock()
	}
	return sc.Err()
}
