package obsrv

import (
	"testing"

	"acr/internal/sim"
)

func ev(t int64) sim.Event {
	return sim.Event{Time: t, Kind: sim.EvCheckpoint, Core: -1}
}

func TestFlightRingBeforeWrap(t *testing.T) {
	f := newFlightRing(4)
	for i := int64(1); i <= 3; i++ {
		f.push(ev(i))
	}
	events, last, missed := f.since(0)
	if len(events) != 3 || last != 3 || missed != 0 {
		t.Fatalf("since(0): got %d events last=%d missed=%d, want 3/3/0", len(events), last, missed)
	}
	for i, e := range events {
		if e.Time != int64(i+1) {
			t.Fatalf("event %d: Time=%d, want %d", i, e.Time, i+1)
		}
	}
	if f.oldest() != 0 {
		t.Fatalf("oldest=%d, want 0", f.oldest())
	}
}

func TestFlightRingWrapEvicts(t *testing.T) {
	f := newFlightRing(4)
	for i := int64(1); i <= 6; i++ {
		f.push(ev(i))
	}
	if f.seq != 6 || f.oldest() != 2 {
		t.Fatalf("seq=%d oldest=%d, want 6/2", f.seq, f.oldest())
	}
	events, last, missed := f.since(0)
	if len(events) != 4 || last != 6 || missed != 2 {
		t.Fatalf("since(0): got %d events last=%d missed=%d, want 4/6/2", len(events), last, missed)
	}
	// Retained events are the most recent four, in recording order.
	for i, e := range events {
		if e.Time != int64(i+3) {
			t.Fatalf("event %d: Time=%d, want %d", i, e.Time, i+3)
		}
	}
}

func TestFlightRingCursors(t *testing.T) {
	f := newFlightRing(4)
	for i := int64(1); i <= 6; i++ {
		f.push(ev(i))
	}
	// Cursor inside the retained window: no misses, only the tail.
	events, last, missed := f.since(4)
	if len(events) != 2 || last != 6 || missed != 0 {
		t.Fatalf("since(4): got %d events last=%d missed=%d, want 2/6/0", len(events), last, missed)
	}
	if events[0].Time != 5 || events[1].Time != 6 {
		t.Fatalf("since(4): got times %d,%d, want 5,6", events[0].Time, events[1].Time)
	}
	// Cursor at the head: nothing new, cursor unchanged.
	events, last, missed = f.since(6)
	if len(events) != 0 || last != 6 || missed != 0 {
		t.Fatalf("since(6): got %d events last=%d missed=%d, want 0/6/0", len(events), last, missed)
	}
	// Cursor beyond the head (stale reader of a reset stream): same.
	if events, last, _ := f.since(99); len(events) != 0 || last != 99 {
		t.Fatalf("since(99): got %d events last=%d, want 0/99", len(events), last)
	}
}

func TestFlightRingDefaultCap(t *testing.T) {
	f := newFlightRing(0)
	if cap(f.buf) != DefaultFlightCap {
		t.Fatalf("cap=%d, want DefaultFlightCap=%d", cap(f.buf), DefaultFlightCap)
	}
}
