// Package obsrv is the live observability plane: a run registry recording
// every driver job (in memory, with an append-only JSONL journal keyed by
// the deterministic memo keys), a per-run flight recorder ringing the most
// recent simulator events, and an embeddable HTTP observatory serving
// /metrics, /healthz, /runs, per-run JSON and SSE event streams, and
// /debug/pprof. It is the first concrete slice of the ROADMAP's `acrd`
// service: everything here observes the bench driver through the
// bench.Lifecycle seam and the sim.Observer contract — nothing feeds back
// into simulated results, so observation on or off is bit-identical by
// construction (the PR 3 invariant, enforced by the determinism tests and
// the observerpurity analyzer).
package obsrv

import "acr/internal/sim"

// flightRing is a fixed-capacity ring of recent sim.Events with absolute
// sequence numbers: seq counts every event ever recorded, so a reader
// holding a cursor can detect both new events and how many it missed when
// the ring lapped it. It reuses the Config.TimelineCap idea — bound memory
// for arbitrarily long runs — but lives driver-side and is safe to read
// while the run is in flight (callers synchronise through the owning
// record's mutex).
type flightRing struct {
	buf []sim.Event
	seq uint64 // total events recorded since the ring was created
}

func newFlightRing(capacity int) *flightRing {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &flightRing{buf: make([]sim.Event, 0, capacity)}
}

// push records one event, evicting the oldest when full.
func (f *flightRing) push(e sim.Event) {
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.seq%uint64(cap(f.buf))] = e
	}
	f.seq++
}

// oldest returns the sequence number of the earliest retained event.
func (f *flightRing) oldest() uint64 {
	return f.seq - uint64(len(f.buf))
}

// since returns the retained events with sequence numbers > after, in
// recording order, together with the sequence number of the last returned
// event (== after when nothing new) and the count of events the caller
// missed because the ring evicted them past its cursor.
func (f *flightRing) since(after uint64) (events []sim.Event, last uint64, missed uint64) {
	if after >= f.seq {
		return nil, after, 0
	}
	from := after
	if oldest := f.oldest(); from < oldest {
		missed = oldest - from
		from = oldest
	}
	events = make([]sim.Event, 0, f.seq-from)
	for s := from; s < f.seq; s++ {
		if len(f.buf) < cap(f.buf) {
			events = append(events, f.buf[s])
		} else {
			events = append(events, f.buf[s%uint64(cap(f.buf))])
		}
	}
	return events, f.seq, missed
}
