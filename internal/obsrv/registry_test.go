package obsrv

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"acr/internal/bench"
	"acr/internal/sim"
	"acr/internal/workloads"
)

func testJob() bench.Job {
	return bench.Job{
		Bench:  "is",
		Params: bench.Params{Threads: 2, Class: workloads.ClassS},
		Spec:   bench.CkptNE,
	}
}

func feed(obs []sim.Observer, events ...sim.Event) {
	for _, e := range events {
		for _, o := range obs {
			o.OnEvent(e)
		}
	}
}

func TestRegistryRunLifecycle(t *testing.T) {
	g, err := NewRegistry(Options{FlightCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	j := testJob()
	key := j.KeyString()
	token := g.JobBegin(j, key, false)

	rec, ok := g.Get(key)
	if !ok || rec.Status != StatusRunning {
		t.Fatalf("after JobBegin: ok=%v status=%q, want running", ok, rec.Status)
	}
	if rec.Bench != "is" || rec.Threads != 2 || rec.Class != "S" || rec.Config != "Ckpt_NE" {
		t.Fatalf("record misdescribes the job: %+v", rec)
	}
	if rec.Strategy != "full" {
		t.Fatalf("strategy=%q, want full", rec.Strategy)
	}

	feed(token.Observers(),
		sim.Event{Time: 10, Kind: sim.EvCheckpoint, Core: -1, Detail: 5},
		sim.Event{Time: 20, Kind: sim.EvBarrier, Core: 1},
	)
	events, last, missed, status, ok := g.Events(key, 0)
	if !ok || len(events) != 2 || last != 2 || missed != 0 || status != StatusRunning {
		t.Fatalf("Events: ok=%v n=%d last=%d missed=%d status=%q", ok, len(events), last, missed, status)
	}

	token.JobEnd(sim.Result{Cycles: 1000, Instrs: 500, EnergyPJ: 42}, nil)
	rec, _ = g.Get(key)
	if rec.Status != StatusDone {
		t.Fatalf("status=%q, want done", rec.Status)
	}
	if rec.Summary == nil || rec.Summary.Cycles != 1000 || rec.Summary.Instrs != 500 {
		t.Fatalf("summary: %+v", rec.Summary)
	}
	if len(rec.Metrics) == 0 {
		t.Fatal("finished run lacks a metrics snapshot")
	}
	if rec.EventsSeen != 2 || rec.EventsHeld != 2 {
		t.Fatalf("events seen=%d held=%d, want 2/2", rec.EventsSeen, rec.EventsHeld)
	}
	if rec.EndUnixNano == 0 || rec.EndUnixNano < rec.StartUnixNano {
		t.Fatalf("wall times: start=%d end=%d", rec.StartUnixNano, rec.EndUnixNano)
	}
}

func TestRegistryFailureAndReattempt(t *testing.T) {
	g, err := NewRegistry(Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := testJob()
	key := j.KeyString()

	token := g.JobBegin(j, key, false)
	feed(token.Observers(), sim.Event{Time: 1, Kind: sim.EvCheckpoint, Core: -1})
	token.JobEnd(sim.Result{}, errors.New("injected"))
	rec, _ := g.Get(key)
	if rec.Status != StatusFailed || rec.Error != "injected" || rec.Err() == nil {
		t.Fatalf("failed run: %+v", rec)
	}

	// Re-beginning the same key is a new attempt on the same record; the
	// flight ring persists across attempts.
	token = g.JobBegin(j, key, true)
	rec, _ = g.Get(key)
	if rec.Attempts != 2 || rec.Status != StatusRunning || !rec.Shared {
		t.Fatalf("re-begin: attempts=%d status=%q shared=%v", rec.Attempts, rec.Status, rec.Shared)
	}
	if rec.EventsSeen != 1 {
		t.Fatalf("flight ring should persist across attempts: seen=%d", rec.EventsSeen)
	}
	token.JobEnd(sim.Result{Cycles: 7}, nil)
	if runs := g.Runs(); len(runs) != 1 {
		t.Fatalf("re-begin registered a duplicate: %d runs", len(runs))
	}
}

func TestRegistryJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	g, err := NewRegistry(Options{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}

	done := testJob()
	g.JobBegin(done, done.KeyString(), false).
		JobEnd(sim.Result{Cycles: 123, Instrs: 77}, nil)

	interrupted := testJob()
	interrupted.Spec = bench.ReCkptE
	g.JobBegin(interrupted, interrupted.KeyString(), false) // no JobEnd: dies running
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh registry (a restarted process) reconstructs the runs.
	g2, err := NewRegistry(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.LoadJournal(path); err != nil {
		t.Fatal(err)
	}
	runs := g2.Runs()
	if len(runs) != 2 {
		t.Fatalf("loaded %d runs, want 2", len(runs))
	}
	rec, ok := g2.Get(done.KeyString())
	if !ok || rec.Status != StatusDone || rec.Summary == nil || rec.Summary.Cycles != 123 {
		t.Fatalf("done run: ok=%v %+v", ok, rec)
	}
	if len(rec.Metrics) == 0 {
		t.Fatal("journal end-line should carry the metrics snapshot")
	}
	rec, ok = g2.Get(interrupted.KeyString())
	if !ok || rec.Status != StatusInterrupted {
		t.Fatalf("interrupted run: ok=%v status=%q", ok, rec.Status)
	}
	if !strings.Contains(rec.Error, "interrupted") {
		t.Fatalf("interrupted run error: %q", rec.Error)
	}
	if rec.EventsHeld != 0 {
		t.Fatal("journal-loaded runs cannot retain events")
	}

	// Missing journals are fine (first run with a fresh path).
	if err := g2.LoadJournal(filepath.Join(t.TempDir(), "absent.jsonl")); err != nil {
		t.Fatalf("missing journal: %v", err)
	}
}

func TestRegistryCountByStatusAndDump(t *testing.T) {
	g, _ := NewRegistry(Options{})
	j := testJob()
	token := g.JobBegin(j, j.KeyString(), false)
	feed(token.Observers(), sim.Event{Time: 5, Kind: sim.EvCheckpoint, Core: -1})
	token.JobEnd(sim.Result{Cycles: 1}, nil)

	counts := g.CountByStatus()
	if counts[StatusDone] != 1 || counts[StatusRunning] != 0 {
		t.Fatalf("counts: %v", counts)
	}

	var dump strings.Builder
	g.DumpFlight(func(format string, args ...any) {
		dump.WriteString(strings.TrimSpace(format))
		_ = args
	})
	if dump.Len() == 0 {
		t.Fatal("DumpFlight wrote nothing for a run with events")
	}
}
