package obsrv

import (
	"fmt"
	"sync"
	"time"

	"acr/internal/bench"
	"acr/internal/sim"
	"acr/internal/telemetry"
)

// DefaultFlightCap is the per-run flight-recorder capacity: enough to hold
// every checkpoint/recovery event of a paper-scale run plus the barrier
// tail, while bounding memory for arbitrarily long sweeps.
const DefaultFlightCap = 4096

// Status is a run's lifecycle state.
type Status string

// Run statuses. StatusInterrupted marks journal-loaded records that were
// still running when their process died — the observatory's equivalent of
// a fail-stop error.
const (
	StatusRunning     Status = "running"
	StatusDone        Status = "done"
	StatusFailed      Status = "failed"
	StatusInterrupted Status = "interrupted"
)

// RunSummary is the compact, JSON-friendly view of a sim.Result a finished
// run exposes through /runs and the journal.
type RunSummary struct {
	Cycles          int64   `json:"cycles"`
	Instrs          int64   `json:"instrs"`
	EnergyPJ        float64 `json:"energy_pj"`
	DynamicPJ       float64 `json:"dynamic_pj"`
	EDP             float64 `json:"edp_pj_cycles"`
	Barriers        int64   `json:"barriers"`
	Checkpoints     int64   `json:"checkpoints"`
	Recoveries      int64   `json:"recoveries"`
	LoggedWords     int64   `json:"logged_words"`
	OmittedWords    int64   `json:"omitted_words"`
	RestoredWords   int64   `json:"restored_words"`
	RecomputedWords int64   `json:"recomputed_words"`
	PeriodCycles    int64   `json:"period_cycles"`
	ROIStartCycles  int64   `json:"roi_start_cycles"`
}

func summarize(res sim.Result) *RunSummary {
	return &RunSummary{
		Cycles:          res.Cycles,
		Instrs:          res.Instrs,
		EnergyPJ:        res.EnergyPJ,
		DynamicPJ:       res.DynamicPJ,
		EDP:             res.EDP(),
		Barriers:        res.Barriers,
		Checkpoints:     res.Ckpt.Checkpoints,
		Recoveries:      res.Ckpt.Recoveries,
		LoggedWords:     res.Ckpt.LoggedWords,
		OmittedWords:    res.Ckpt.OmittedWords,
		RestoredWords:   res.Ckpt.RestoredWords,
		RecomputedWords: res.Ckpt.RecomputedWords,
		PeriodCycles:    res.PeriodCycles,
		ROIStartCycles:  res.ROIStartCycles,
	}
}

// RunRecord is the registry's serialisable view of one run: the
// deterministic job key, the configuration it names, lifecycle state with
// host wall times, and — once finished — the result summary and the final
// telemetry snapshot.
type RunRecord struct {
	Key      string `json:"key"`
	Bench    string `json:"bench"`
	Config   string `json:"config"`
	Strategy string `json:"strategy,omitempty"`
	Threads  int    `json:"threads"`
	Class    string `json:"class"`

	Status   Status `json:"status"`
	Shared   bool   `json:"shared,omitempty"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`

	StartUnixNano int64 `json:"start_unix_nano"`
	EndUnixNano   int64 `json:"end_unix_nano,omitempty"`

	// EventsSeen counts flight-recorder events recorded for the run so
	// far; EventsHeld is how many the ring still retains.
	EventsSeen uint64 `json:"events_seen"`
	EventsHeld int    `json:"events_held"`

	Summary *RunSummary                `json:"summary,omitempty"`
	Metrics []telemetry.SnapshotFamily `json:"metrics,omitempty"`
}

// light returns the record without the (potentially large) metrics
// snapshot, for run listings and journal begin-lines.
func (rr RunRecord) light() RunRecord {
	rr.Metrics = nil
	return rr
}

// runState is one registered run: the record plus its live observation
// state, guarded by its own mutex so a scrape never blocks the whole
// registry and the simulation goroutine never blocks on other runs.
type runState struct {
	mu     sync.Mutex
	record RunRecord
	flight *flightRing
	reg    *telemetry.Registry
	col    *telemetry.Collector
}

// Options configures a Registry.
type Options struct {
	// FlightCap bounds each run's flight recorder (0 = DefaultFlightCap).
	FlightCap int
	// JournalPath, when non-empty, appends a JSONL journal line on every
	// run begin and end (see journal.go).
	JournalPath string
}

// Registry is the in-memory run table. It implements bench.Lifecycle, so
// attaching it to a bench.Runner registers every driver job; it is safe
// for concurrent use by the driver's worker pool and the HTTP observatory.
type Registry struct {
	opts Options

	mu    sync.Mutex
	runs  map[string]*runState
	order []string // registration order, for stable /runs listings

	journal *journal
}

// NewRegistry returns an empty registry. When opts.JournalPath is set, the
// journal file is opened for append immediately so a bind-time
// misconfiguration fails fast rather than at first run completion.
func NewRegistry(opts Options) (*Registry, error) {
	g := &Registry{opts: opts, runs: make(map[string]*runState)}
	if opts.JournalPath != "" {
		j, err := openJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		g.journal = j
	}
	return g, nil
}

// Close releases the journal file, if any.
func (g *Registry) Close() error {
	if g.journal == nil {
		return nil
	}
	return g.journal.close()
}

// runObserver is the sim.Observer the registry attaches to executions: a
// locked fan-out into the run's flight ring and metrics collector. It is
// strictly one-way (observerpurity-checked): it mutates only the run's own
// observation state, never the machine.
type runObserver struct {
	st *runState
}

// OnEvent implements sim.Observer.
func (o *runObserver) OnEvent(e sim.Event) {
	st := o.st
	st.mu.Lock()
	st.flight.push(e)
	st.record.EventsSeen = st.flight.seq
	st.record.EventsHeld = len(st.flight.buf)
	st.col.OnEvent(e)
	st.mu.Unlock()
}

// RunHandle is one observed job in flight; it implements
// bench.JobObservation.
type RunHandle struct {
	g  *Registry
	st *runState
}

// Observers implements bench.JobObservation.
func (h *RunHandle) Observers() []sim.Observer {
	return []sim.Observer{&runObserver{st: h.st}}
}

// JobEnd implements bench.JobObservation: it finalises the record with the
// result summary and telemetry snapshot and journals the transition.
func (h *RunHandle) JobEnd(res sim.Result, err error) {
	h.st.mu.Lock()
	rec := &h.st.record
	rec.EndUnixNano = time.Now().UnixNano()
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
	} else {
		rec.Status = StatusDone
		rec.Summary = summarize(res)
		h.st.col.ObserveResult(res)
		rec.Metrics = h.st.reg.Snapshot()
	}
	line := *rec
	h.st.mu.Unlock()
	h.g.appendJournal(line)
}

// JobBegin implements bench.Lifecycle. Re-beginning an existing key (a
// repeated sweep, or RunObserved after RunAll) reuses the record as a new
// attempt: the flight ring and its sequence numbers persist, while the
// metrics registry restarts so the final snapshot describes one execution.
func (g *Registry) JobBegin(j bench.Job, key string, shared bool) bench.JobObservation {
	g.mu.Lock()
	st := g.runs[key]
	if st == nil {
		st = &runState{flight: newFlightRing(g.opts.FlightCap)}
		g.runs[key] = st
		g.order = append(g.order, key)
	}
	g.mu.Unlock()

	st.mu.Lock()
	spec := j.Spec
	st.record = RunRecord{
		Key:           key,
		Bench:         j.Bench,
		Config:        spec.String(),
		Threads:       j.Params.Threads,
		Class:         j.Params.Class.Name,
		Status:        StatusRunning,
		Shared:        shared,
		Attempts:      st.record.Attempts + 1,
		StartUnixNano: time.Now().UnixNano(),
		EventsSeen:    st.flight.seq,
		EventsHeld:    len(st.flight.buf),
	}
	if spec.Ckpt {
		st.record.Strategy = spec.Kind().String()
	}
	st.reg = telemetry.NewRegistry()
	st.col = telemetry.NewCollector(st.reg)
	line := st.record
	st.mu.Unlock()
	g.appendJournal(line.light())
	return &RunHandle{g: g, st: st}
}

// Runs returns every record in registration order, without metrics
// snapshots (fetch one run for those).
func (g *Registry) Runs() []RunRecord {
	g.mu.Lock()
	order := append([]string(nil), g.order...)
	g.mu.Unlock()
	out := make([]RunRecord, 0, len(order))
	for _, key := range order {
		if rec, ok := g.Get(key); ok {
			out = append(out, rec.light())
		}
	}
	return out
}

// Get returns the full record for key, including — for finished runs — the
// metrics snapshot. For a running run the snapshot is taken live.
func (g *Registry) Get(key string) (RunRecord, bool) {
	g.mu.Lock()
	st := g.runs[key]
	g.mu.Unlock()
	if st == nil {
		return RunRecord{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	rec := st.record
	if rec.Status == StatusRunning && st.reg != nil {
		rec.Metrics = st.reg.Snapshot()
	}
	return rec, true
}

// Events returns the retained flight-recorder events for key with sequence
// numbers > after (see flightRing.since), plus the run's current status.
func (g *Registry) Events(key string, after uint64) (events []sim.Event, last uint64, missed uint64, status Status, ok bool) {
	g.mu.Lock()
	st := g.runs[key]
	g.mu.Unlock()
	if st == nil {
		return nil, after, 0, "", false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	events, last, missed = st.flight.since(after)
	return events, last, missed, st.record.Status, true
}

// CountByStatus returns how many runs are in each lifecycle state, in a
// fixed order (running, done, failed, interrupted).
func (g *Registry) CountByStatus() map[Status]int {
	counts := map[Status]int{}
	for _, rec := range g.Runs() {
		counts[rec.Status]++
	}
	return counts
}

// EventView is the JSON form of one flight-recorder event.
type EventView struct {
	Seq    uint64 `json:"seq"`
	Time   int64  `json:"time"`
	Kind   string `json:"kind"`
	Core   int32  `json:"core"`
	Detail int64  `json:"detail"`
	Aux    int64  `json:"aux"`
	Dur    int64  `json:"dur"`
}

// viewEvents pairs events with their absolute sequence numbers: last is
// the sequence number of the final event in events.
func viewEvents(events []sim.Event, last uint64) []EventView {
	out := make([]EventView, len(events))
	base := last - uint64(len(events))
	for i, e := range events {
		out[i] = EventView{
			Seq:    base + uint64(i) + 1,
			Time:   e.Time,
			Kind:   e.Kind.String(),
			Core:   e.Core,
			Detail: e.Detail,
			Aux:    e.Aux,
			Dur:    e.Dur,
		}
	}
	return out
}

// DumpFlight writes the retained flight-recorder events of every run that
// has any, most recent runs last — the on-demand/on-panic dump. The CLIs
// call it from a recover wrapper so a crashing sweep leaves its recent
// event history on stderr.
func (g *Registry) DumpFlight(w func(format string, args ...any)) {
	for _, rec := range g.Runs() {
		events, last, missed, _, ok := g.Events(rec.Key, 0)
		if !ok || len(events) == 0 {
			continue
		}
		w("run %s (%s, %d/%d events retained, %d evicted):\n",
			rec.Key, rec.Status, len(events), rec.EventsSeen, missed)
		for _, ev := range viewEvents(events, last) {
			w("  #%d t=%d %s core=%d detail=%d aux=%d dur=%d\n",
				ev.Seq, ev.Time, ev.Kind, ev.Core, ev.Detail, ev.Aux, ev.Dur)
		}
	}
}

var _ bench.Lifecycle = (*Registry)(nil)
var _ bench.JobObservation = (*RunHandle)(nil)
var _ sim.Observer = (*runObserver)(nil)

// String renders a status for log lines.
func (s Status) String() string { return string(s) }

// Err returns a non-nil error when the record failed.
func (rr RunRecord) Err() error {
	if rr.Error == "" {
		return nil
	}
	return fmt.Errorf("%s", rr.Error)
}
