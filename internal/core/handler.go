package core

import (
	"acr/internal/energy"
	"acr/internal/slice"
)

// Config parameterises ACR.
type Config struct {
	// Threshold is the maximum Slice length in instructions; Slices
	// exceeding it are not embedded (paper §III-A, default 10; the paper
	// lowers it to 5 for is). Used by PolicyThreshold.
	Threshold int
	// MapCapacity is the number of records the AddrMap can hold.
	MapCapacity int
	// Policy selects the Slice embedding decision; the zero value is the
	// paper's greedy length threshold.
	Policy Policy
	// Cost parameterises PolicyCost; the zero value is replaced by
	// DefaultCostModel.
	Cost CostModel
	// SitePlan, when non-nil, is a static per-site policy indexed by the
	// ASSOC-ADDR instruction's PC (the auto strategy's analysis pass
	// produces it). Plan values: -1 prunes the site (the association is
	// dropped before any compile work, as if the compiler had not embedded
	// the instruction), 0 applies the dynamic policy unchanged, and a
	// positive value overrides the Slice-length cap for that site.
	// Pruning and boosting are cost policies only — the runtime compile
	// still validates every accepted Slice — so a plan can never make
	// recovery unsound, only cheaper or more amnesic.
	SitePlan []int32
}

// DefaultConfig returns the paper's default ACR parameters. The AddrMap
// capacity bounds how many unique updated addresses per interval can be
// tracked (§III-C); 4096 records per core is ample for the evaluated
// checkpoint periods while remaining an on-chip-plausible structure.
func DefaultConfig(nCores int) Config {
	return Config{Threshold: 10, MapCapacity: 4096 * nCores}
}

// Handler is the ACR control logic: the checkpoint handler and recovery
// handler of paper §III, sharing the AddrMap (Fig. 5).
type Handler struct {
	cfg     Config
	tracker *slice.Tracker
	addrMap *AddrMap
	meter   *energy.Meter
	scratch []int64
}

// NewHandler builds the ACR handler over the machine's recipe tracker.
func NewHandler(cfg Config, tracker *slice.Tracker, meter *energy.Meter) *Handler {
	if cfg.Policy == PolicyCost && cfg.Cost.Energy == nil {
		cfg.Cost = DefaultCostModel()
	}
	return &Handler{
		cfg:     cfg,
		tracker: tracker,
		addrMap: NewAddrMap(cfg.MapCapacity),
		meter:   meter,
		scratch: make([]int64, 0, 128),
	}
}

// AddrMap exposes the handler's map (stats, tests).
func (h *Handler) AddrMap() *AddrMap { return h.addrMap }

// Threshold returns the configured Slice-length threshold.
func (h *Handler) Threshold() int { return h.cfg.Threshold }

// OnAssoc processes an ASSOC-ADDR: it compiles the stored value's Slice
// and, if the embedding policy accepts it, records the association. The
// AddrMap insertion is buffered off the critical path, so no extra stall is
// returned (the instruction's own issue slot is charged by the core).
//
// The compile reuses a Compiled shell recycled from a freed AddrMap record
// when one is available, so the steady-state association path performs no
// heap allocation.
func (h *Handler) OnAssoc(core, pc int, addr int64, recipe slice.Ref) int64 {
	cap := h.cfg.Threshold
	if h.cfg.Policy == PolicyCost {
		cap = h.cfg.Cost.MaxLen
	}
	if h.cfg.SitePlan != nil && pc >= 0 && pc < len(h.cfg.SitePlan) {
		switch plan := h.cfg.SitePlan[pc]; {
		case plan < 0:
			// Statically pruned site: the analysis proved this store's
			// Slice can never be embedded (or never pays off), so the
			// association is dropped before the AddrMap is even touched.
			h.addrMap.stats.PrunedAssocs++
			return 0
		case plan > 0:
			h.addrMap.stats.BoostedAssocs++
			cap = int(plan)
		}
	}
	h.meter.Add(energy.AddrMapOp, 1)
	// Always hand CompileInto a shell (recycled when available) so a
	// failing compile — the common case for over-threshold Slices — can
	// return its shell to the pool instead of leaking a fresh allocation.
	into := h.addrMap.takeRecycled()
	if into == nil {
		into = &slice.Compiled{}
	}
	sl, err := h.tracker.CompileInto(core, into, recipe, cap)
	if err != nil {
		h.addrMap.recycleSlice(into)
		h.addrMap.stats.SliceTooLong++
		return 0
	}
	if h.cfg.Policy == PolicyCost && !h.cfg.Cost.Embeddable(sl) {
		h.addrMap.recycleSlice(sl)
		h.addrMap.stats.CostRejected++
		return 0
	}
	// Buffer the input operands: one slice-buffer write per input. The
	// insertion itself is buffered off the critical path (the ASSOC-ADDR
	// instruction's issue slot is already charged by the core).
	h.meter.Add(energy.SliceBufOp, uint64(sl.NumInputs()))
	if !h.addrMap.Assoc(core, addr, sl) {
		h.addrMap.recycleSlice(sl)
	}
	return 0
}

// Omittable is the checkpoint-handler decision (Fig. 4a): given the first
// write-back to addr in this interval, whose pre-store value is old, it
// returns the AddrMap record proving old recomputable, or nil if the value
// must be logged conventionally. The returned record is NOT yet pinned;
// the checkpoint log pins it when recording the amnesic entry.
func (h *Handler) Omittable(addr, old int64) *Record {
	h.meter.Add(energy.AddrMapOp, 1)
	h.meter.Add(energy.HandlerOp, 1)
	rec := h.addrMap.Lookup(addr, old, h.scratch)
	if rec != nil {
		h.addrMap.CountOmitted()
	}
	return rec
}

// PeekOmittable predicts Omittable's decision without side effects: no
// energy is charged, no statistics move, and stale records stay mapped.
// scratch must be caller-private (speculative quanta call this
// concurrently against the frozen AddrMap). The prediction matches the
// later real Omittable call exactly as long as no AddrMap event touching
// addr intervenes — the condition the parallel engine's conflict rules
// guarantee for committing rounds.
//
//acr:spec-safe
func (h *Handler) PeekOmittable(addr, old int64, scratch []int64) bool {
	return h.addrMap.Peek(addr, old, scratch)
}

// Recompute regenerates an omitted value along its Slice (Fig. 4b),
// charging ALU and buffer energy, and returns the value together with the
// stall cycles the recomputation occupies on the record's core (one cycle
// per Slice instruction plus one per buffered input, on the in-order
// core's scratchpad).
func (h *Handler) Recompute(rec *Record) (val int64, cycles int64) {
	sl := rec.Slice
	h.meter.Add(energy.AddrMapOp, 1)
	h.meter.Add(energy.HandlerOp, 1)
	h.meter.Add(energy.SliceBufOp, uint64(sl.NumInputs()))
	h.meter.Add(energy.IntOp, uint64(sl.IntOps()))
	h.meter.Add(energy.FloatOp, uint64(sl.FloatOps()))
	h.addrMap.CountRecomputed()
	return sl.Eval(h.scratch), int64(sl.Len() + sl.NumInputs() + 1)
}

// OnCheckpoint advances the AddrMap generation when a checkpoint is
// established (records older than two checkpoints age out, §III-A).
func (h *Handler) OnCheckpoint() { h.addrMap.NewGeneration() }

// OnRecovery clears the AddrMap after a roll-back: its contents are rebuilt
// as execution re-runs from the restored checkpoint.
func (h *Handler) OnRecovery() { h.addrMap.Reset() }
