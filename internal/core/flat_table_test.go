package core

import (
	"math/rand"
	"testing"
)

// collidingAddrs returns n distinct addresses whose home probe position in
// m's table is identical, forcing a linear-probe chain.
func collidingAddrs(m *AddrMap, n int) []int64 {
	want := m.home(1)
	addrs := []int64{1}
	for a := int64(2); len(addrs) < n; a++ {
		if m.home(a) == want {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func TestAddrMapCollisionChain(t *testing.T) {
	m := NewAddrMap(32)
	addrs := collidingAddrs(m, 5)
	for i, a := range addrs {
		if !m.Assoc(0, a, mkSlice(int64(i), 100)) {
			t.Fatalf("assoc of colliding addr %d rejected", a)
		}
	}
	for i, a := range addrs {
		if m.Lookup(a, int64(i)+100, nil) == nil {
			t.Fatalf("colliding addr %d not found", a)
		}
	}
}

func TestAddrMapBackwardShiftDeletion(t *testing.T) {
	// Deleting from the middle of a probe chain must keep the entries
	// behind it reachable (backward-shift deletion, no tombstones).
	m := NewAddrMap(32)
	addrs := collidingAddrs(m, 6)
	for i, a := range addrs {
		m.Assoc(0, a, mkSlice(int64(i), 100))
	}
	// A mismatched lookup drops the mapping — delete the chain's middle.
	mid := addrs[2]
	if m.Lookup(mid, -1, nil) != nil {
		t.Fatal("mismatched lookup must miss")
	}
	for i, a := range addrs {
		rec := m.Lookup(a, int64(i)+100, nil)
		if a == mid {
			if rec != nil {
				t.Fatalf("deleted addr %d still mapped", a)
			}
			continue
		}
		if rec == nil {
			t.Fatalf("addr %d lost after mid-chain deletion", a)
		}
	}
	// The vacated capacity is reusable.
	if !m.Assoc(0, mid, mkSlice(7, 100)) {
		t.Fatal("re-association after deletion rejected")
	}
}

func TestAddrMapRandomizedAgainstModel(t *testing.T) {
	// Drive the open-addressed table with random churn — insertions,
	// replacements, stale drops, generation aging — against a reference
	// map. Values are offset by 100 so the sentinels below never match a
	// stored value.
	rng := rand.New(rand.NewSource(42))
	m := NewAddrMap(64)
	type entry struct {
		val int64
		gen int64
	}
	model := map[int64]entry{}
	for step := 0; step < 30000; step++ {
		addr := int64(rng.Intn(256))
		switch rng.Intn(8) {
		case 0, 1, 2: // associate
			v := int64(rng.Intn(1000)) + 100
			if m.Assoc(0, addr, mkSlice(v-100, 100)) {
				model[addr] = entry{val: v, gen: m.gen}
			} else if _, ok := model[addr]; ok {
				t.Fatalf("step %d: replacement of mapped addr %d rejected", step, addr)
			} else if len(model) < 64 {
				t.Fatalf("step %d: assoc rejected below capacity (%d mapped)", step, len(model))
			}
		case 3, 4, 5: // lookup with the correct old value
			if e, ok := model[addr]; ok {
				if m.Lookup(addr, e.val, nil) == nil {
					t.Fatalf("step %d: mapped addr %d missed", step, addr)
				}
			} else if m.Lookup(addr, -2, nil) != nil {
				t.Fatalf("step %d: unmapped addr %d found", step, addr)
			}
		case 6: // stale drop
			if _, ok := model[addr]; ok {
				if m.Lookup(addr, -1, nil) != nil {
					t.Fatalf("step %d: stale lookup hit", step)
				}
				delete(model, addr)
			}
		case 7: // occasionally advance the checkpoint generation
			if rng.Intn(20) == 0 {
				m.NewGeneration()
				for a, e := range model {
					if e.gen < m.gen-1 {
						delete(model, a)
					}
				}
			}
		}
		if m.mapped != len(model) {
			t.Fatalf("step %d: mapped=%d, model=%d", step, m.mapped, len(model))
		}
	}
	for a, e := range model {
		if m.Lookup(a, e.val, nil) == nil {
			t.Fatalf("final sweep: addr %d lost", a)
		}
	}
}

func TestAddrMapRecordPointersStableAcrossGrowth(t *testing.T) {
	// Record pointers are handed to checkpoint logs and must survive slab
	// growth (the pool allocates in fixed-size blocks, never reallocates).
	m := NewAddrMap(5000) // several blocks at the 4096-slot block cap
	m.Assoc(0, 1, mkSlice(41, 1))
	rec := m.Lookup(1, 42, nil)
	rec.Pin()
	for a := int64(2); a <= 4500; a++ {
		m.Assoc(0, a, mkSlice(a, 0))
	}
	if rec.Addr != 1 || rec.Slice.Eval(nil) != 42 {
		t.Fatalf("pinned record corrupted by slab growth: %+v", rec)
	}
	m.Release(rec)
}

func TestAddrMapSupersededSliceRecycled(t *testing.T) {
	m := NewAddrMap(8)
	s1 := mkSlice(1, 0)
	m.Assoc(0, 1, s1)
	m.Assoc(0, 1, mkSlice(2, 0))
	if got := m.takeRecycled(); got != s1 {
		t.Fatalf("superseded shell not recycled: got %p, want %p", got, s1)
	}
}

func TestAddrMapReassocSameSliceNotRecycled(t *testing.T) {
	// Re-associating the identical Compiled must not put the live object
	// into the recycle pool (it would be handed out while still mapped).
	m := NewAddrMap(8)
	s1 := mkSlice(1, 0)
	m.Assoc(0, 1, s1)
	m.Assoc(0, 1, s1)
	if got := m.takeRecycled(); got != nil {
		t.Fatalf("live shell leaked into the pool: %p", got)
	}
	if m.Lookup(1, 1, nil) == nil {
		t.Fatal("re-associated record lost")
	}
}

func TestAddrMapResetClearsAndRecycles(t *testing.T) {
	m := NewAddrMap(16)
	for a := int64(1); a <= 10; a++ {
		m.Assoc(0, a, mkSlice(a, 0))
	}
	m.Reset()
	if m.Occupancy() != 0 {
		t.Fatalf("occupancy after reset = %d", m.Occupancy())
	}
	for a := int64(1); a <= 10; a++ {
		if m.Lookup(a, a, nil) != nil {
			t.Fatalf("addr %d survived reset", a)
		}
	}
	if m.takeRecycled() == nil {
		t.Fatal("reset must return shells to the recycle pool")
	}
	if !m.Assoc(0, 99, mkSlice(0, 99)) || m.Lookup(99, 99, nil) == nil {
		t.Fatal("map unusable after reset")
	}
}
