package core

import (
	"acr/internal/energy"
	"acr/internal/slice"
)

// Policy selects how the compiler decides which Slices to embed
// (paper §III-A). The paper's evaluation uses the greedy length threshold;
// it sketches a probabilistic cost-based alternative ("estimating the
// anticipated cost of recomputation along each Slice when compared to
// loading the respective data value from a checkpoint in memory"), which is
// implemented here as an extension and compared by the ablation benches.
type Policy int

// Slice selection policies.
const (
	// PolicyThreshold embeds Slices not longer than Config.Threshold
	// instructions (the paper's default, §III-A).
	PolicyThreshold Policy = iota
	// PolicyCost embeds a Slice when its estimated recomputation cost —
	// ALU energy for its instructions plus buffer energy for its inputs,
	// weighted by CostLambda times its latency contribution — stays
	// below the cost of the avoided memory traffic (the log write plus
	// the eventual checkpoint read-back).
	PolicyCost
)

func (p Policy) String() string {
	if p == PolicyCost {
		return "cost"
	}
	return "threshold"
}

// CostModel weighs recomputation against memory traffic for PolicyCost.
type CostModel struct {
	// Energy is the event-energy table the estimate charges against.
	Energy *energy.Model
	// Lambda trades delay into the energy-denominated objective:
	// estimated cost = energy(pJ) + Lambda * latency(cycles). Lambda 0
	// selects a pure energy objective ("cost can be delay, energy or a
	// combination of both", §III-A).
	Lambda float64
	// MaxLen caps the Slice length regardless of cost, bounding the
	// hardware buffers (the AddrMap must still fit the embedded Slices).
	MaxLen int
}

// DefaultCostModel returns a cost model with the evaluation's energy table,
// a mild delay weight, and a hardware cap of 64 instructions.
func DefaultCostModel() CostModel {
	return CostModel{Energy: energy.Default22nm(), Lambda: 4, MaxLen: 64}
}

// RecomputeCost estimates the time-weighted energy of recomputing along sl.
func (cm CostModel) RecomputeCost(sl *slice.Compiled) float64 {
	e := float64(sl.IntOps())*cm.Energy.PerEvent[energy.IntOp] +
		float64(sl.FloatOps())*cm.Energy.PerEvent[energy.FloatOp] +
		float64(sl.NumInputs())*cm.Energy.PerEvent[energy.SliceBufOp] +
		cm.Energy.PerEvent[energy.AddrMapOp]
	lat := float64(sl.Len() + sl.NumInputs() + 1)
	return e + cm.Lambda*lat
}

// MemoryCost estimates the time-weighted energy of NOT omitting the value:
// the two-word log write at checkpoint time plus the two-word log read and
// one-word restore if recovery ever replays it, discounted by the recovery
// probability (recoveries are far rarer than checkpoints, §III).
func (cm CostModel) MemoryCost() float64 {
	const recoveryProb = 0.1
	write := 2 * cm.Energy.PerEvent[energy.DRAMWrite]
	replay := recoveryProb * (2*cm.Energy.PerEvent[energy.DRAMRead] + cm.Energy.PerEvent[energy.DRAMWrite])
	// A log write occupies a controller for ~2.3 cycles.
	return write + replay + cm.Lambda*2.3
}

// Embeddable applies the policy to a compiled Slice.
func (cm CostModel) Embeddable(sl *slice.Compiled) bool {
	if sl.Len() > cm.MaxLen {
		return false
	}
	return cm.RecomputeCost(sl) <= cm.MemoryCost()
}
