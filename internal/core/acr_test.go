package core

import (
	"testing"

	"acr/internal/energy"
	"acr/internal/isa"
	"acr/internal/slice"
)

// mkSlice builds a trivial compiled Slice computing base+delta from one
// buffered input.
func mkSlice(base, delta int64) *slice.Compiled {
	return &slice.Compiled{
		Inputs: []int64{base},
		Ops:    []slice.COp{{Op: isa.ADDI, A: 0, B: -1, C: -1, Imm: delta}},
	}
}

func TestAddrMapAssocLookup(t *testing.T) {
	m := NewAddrMap(8)
	if !m.Assoc(0, 100, mkSlice(40, 2)) {
		t.Fatal("assoc rejected")
	}
	rec := m.Lookup(100, 42, nil)
	if rec == nil {
		t.Fatal("lookup missed")
	}
	if rec.Addr != 100 || rec.Core != 0 {
		t.Errorf("record = %+v", rec)
	}
	st := m.Stats()
	if st.Hits != 1 || st.Lookups != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAddrMapStaleRecordDropped(t *testing.T) {
	m := NewAddrMap(8)
	m.Assoc(0, 100, mkSlice(40, 2)) // recomputes 42
	// The word now holds 99 (overwritten by an unassociated store):
	// lookup must miss and drop the stale mapping.
	if rec := m.Lookup(100, 99, nil); rec != nil {
		t.Fatal("stale record returned")
	}
	if m.Stats().StaleMisses != 1 {
		t.Errorf("stats = %+v", m.Stats())
	}
	if rec := m.Lookup(100, 42, nil); rec != nil {
		t.Fatal("stale record not dropped")
	}
}

func TestAddrMapCapacity(t *testing.T) {
	m := NewAddrMap(2)
	m.Assoc(0, 1, mkSlice(0, 1))
	m.Assoc(0, 2, mkSlice(0, 2))
	if m.Assoc(0, 3, mkSlice(0, 3)) {
		t.Fatal("assoc beyond capacity accepted")
	}
	if m.Stats().Rejected != 1 {
		t.Errorf("stats = %+v", m.Stats())
	}
	// Replacing an existing address is allowed at capacity.
	if !m.Assoc(0, 2, mkSlice(10, 2)) {
		t.Fatal("replacement rejected at capacity")
	}
	if m.Stats().Superseded != 1 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

func TestAddrMapGenerationAging(t *testing.T) {
	m := NewAddrMap(8)
	m.Assoc(0, 1, mkSlice(0, 1)) // gen 0
	m.NewGeneration()            // gen 1: record from gen 0 survives (two most recent)
	if m.Lookup(1, 1, nil) == nil {
		t.Fatal("record aged too early")
	}
	m.NewGeneration() // gen 2: gen-0 record ages out
	if m.Lookup(1, 1, nil) != nil {
		t.Fatal("record survived beyond two generations")
	}
	if m.Stats().Aged != 1 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

func TestPinnedRecordSurvivesAgingAndHoldsCapacity(t *testing.T) {
	m := NewAddrMap(2)
	m.Assoc(0, 1, mkSlice(0, 1))
	rec := m.Lookup(1, 1, nil)
	rec.Pin()
	m.NewGeneration()
	m.NewGeneration() // ages out of the map, but pinned: retained
	if m.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1 (retained)", m.Occupancy())
	}
	m.Assoc(0, 2, mkSlice(0, 2))
	if m.Assoc(0, 3, mkSlice(0, 3)) {
		t.Fatal("retained record must hold capacity")
	}
	m.Release(rec)
	if m.Occupancy() != 1 {
		t.Fatalf("occupancy after release = %d, want 1", m.Occupancy())
	}
	if !m.Assoc(0, 3, mkSlice(0, 3)) {
		t.Fatal("capacity not freed by release")
	}
}

func TestReleaseUnpinnedPanics(t *testing.T) {
	m := NewAddrMap(2)
	m.Assoc(0, 1, mkSlice(0, 1))
	rec := m.Lookup(1, 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic releasing unpinned record")
		}
	}()
	m.Release(rec)
}

func TestHandlerAssocGatesOnThreshold(t *testing.T) {
	tr := slice.NewTracker(1)
	meter := energy.NewMeter(nil)
	h := NewHandler(Config{Threshold: 3, MapCapacity: 16}, tr, meter)

	// Short chain: 2 ops, accepted.
	tr.OnALU(0, isa.Instr{Op: isa.LI, Rd: 1, Imm: 5})
	tr.OnALU(0, isa.Instr{Op: isa.MULI, Rd: 2, Rs: 1, Imm: 3})
	h.OnAssoc(0, 0, 100, tr.Recipe(0, 2))
	if h.AddrMap().Stats().Inserts != 1 {
		t.Fatalf("short slice not inserted: %+v", h.AddrMap().Stats())
	}

	// Long chain: 6 ops, rejected by threshold.
	for i := 0; i < 5; i++ {
		tr.OnALU(0, isa.Instr{Op: isa.ADDI, Rd: 2, Rs: 2, Imm: 1})
	}
	h.OnAssoc(0, 0, 101, tr.Recipe(0, 2))
	st := h.AddrMap().Stats()
	if st.Inserts != 1 || st.SliceTooLong != 1 {
		t.Errorf("threshold gating failed: %+v", st)
	}
}

func TestHandlerOmitRecomputeRoundTrip(t *testing.T) {
	tr := slice.NewTracker(1)
	meter := energy.NewMeter(nil)
	h := NewHandler(Config{Threshold: 10, MapCapacity: 16}, tr, meter)

	tr.OnLoad(0, 1, 40)
	tr.OnALU(0, isa.Instr{Op: isa.ADDI, Rd: 2, Rs: 1, Imm: 2}) // value 42
	h.OnAssoc(0, 0, 100, tr.Recipe(0, 2))

	rec := h.Omittable(100, 42)
	if rec == nil {
		t.Fatal("42 should be omittable")
	}
	val, cycles := h.Recompute(rec)
	if val != 42 {
		t.Errorf("recomputed %d, want 42", val)
	}
	if cycles <= 0 {
		t.Errorf("recompute cycles = %d", cycles)
	}
	st := h.AddrMap().Stats()
	if st.OmittedValues != 1 || st.RecomputedValues != 1 {
		t.Errorf("stats = %+v", st)
	}
	if rec2 := h.Omittable(100, 999); rec2 != nil {
		t.Error("mismatched old value must not be omittable")
	}
}

func TestHandlerEnergyCharged(t *testing.T) {
	tr := slice.NewTracker(1)
	meter := energy.NewMeter(nil)
	h := NewHandler(Config{Threshold: 10, MapCapacity: 16}, tr, meter)
	tr.OnLoad(0, 1, 1)
	tr.OnALU(0, isa.Instr{Op: isa.ADDI, Rd: 2, Rs: 1, Imm: 1})
	h.OnAssoc(0, 0, 5, tr.Recipe(0, 2))
	if meter.Count(energy.AddrMapOp) == 0 || meter.Count(energy.SliceBufOp) == 0 {
		t.Error("assoc charged no AddrMap/slice-buffer energy")
	}
	rec := h.Omittable(5, 2)
	if rec == nil {
		t.Fatal("should be omittable")
	}
	before := meter.Count(energy.IntOp)
	h.Recompute(rec)
	if meter.Count(energy.IntOp) == before {
		t.Error("recompute charged no ALU energy")
	}
}

func TestHandlerLifecycleHooks(t *testing.T) {
	tr := slice.NewTracker(1)
	h := NewHandler(Config{Threshold: 10, MapCapacity: 16}, tr, energy.NewMeter(nil))
	tr.OnLoad(0, 1, 7)
	tr.OnALU(0, isa.Instr{Op: isa.MOV, Rd: 2, Rs: 1})
	h.OnAssoc(0, 0, 9, tr.Recipe(0, 2))
	h.OnCheckpoint()
	if h.Omittable(9, 7) == nil {
		t.Fatal("record must survive one checkpoint")
	}
	h.OnRecovery()
	if h.Omittable(9, 7) != nil {
		t.Fatal("AddrMap must be empty after recovery reset")
	}
}

func TestPeakStatsTracked(t *testing.T) {
	m := NewAddrMap(8)
	m.Assoc(0, 1, &slice.Compiled{Inputs: []int64{1, 2, 3}})
	m.Assoc(0, 2, &slice.Compiled{Inputs: []int64{4}})
	st := m.Stats()
	if st.PeakOccupancy != 2 {
		t.Errorf("peak occupancy = %d", st.PeakOccupancy)
	}
	if st.PeakInputWords != 4 {
		t.Errorf("peak input words = %d", st.PeakInputWords)
	}
}
