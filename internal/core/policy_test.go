package core

import (
	"testing"

	"acr/internal/energy"
	"acr/internal/isa"
	"acr/internal/slice"
)

func chainSlice(n int) *slice.Compiled {
	c := &slice.Compiled{Inputs: []int64{1}}
	for i := 0; i < n; i++ {
		prev := int32(i) // slot 0 is the input; op i reads slot i
		c.Ops = append(c.Ops, slice.COp{Op: isa.ADDI, A: prev, B: -1, C: -1, Imm: 1})
	}
	return c
}

func TestPolicyNames(t *testing.T) {
	if PolicyThreshold.String() != "threshold" || PolicyCost.String() != "cost" {
		t.Errorf("policy names: %v, %v", PolicyThreshold, PolicyCost)
	}
}

func TestCostModelShortSliceWins(t *testing.T) {
	cm := DefaultCostModel()
	if !cm.Embeddable(chainSlice(3)) {
		t.Error("3-op slice must beat two DRAM writes")
	}
	// The cost policy accepts far longer Slices than the threshold —
	// that is the point of the paper's observation that computation is
	// orders of magnitude cheaper than memory traffic.
	if !cm.Embeddable(chainSlice(40)) {
		t.Error("40-op slice should still beat memory under the energy model")
	}
}

func TestCostModelHardwareCap(t *testing.T) {
	cm := DefaultCostModel()
	if cm.Embeddable(chainSlice(cm.MaxLen + 1)) {
		t.Error("hardware cap must bound the policy")
	}
}

func TestCostModelLambdaTradesDelay(t *testing.T) {
	cm := DefaultCostModel()
	cm.Lambda = 1e6 // delay-dominated objective
	if cm.Embeddable(chainSlice(30)) {
		t.Error("with a huge delay weight, long recomputation must lose")
	}
	cm.Lambda = 0 // pure energy objective
	if !cm.Embeddable(chainSlice(30)) {
		t.Error("with a pure energy objective, the slice must win")
	}
}

func TestCostModelMonotoneInLength(t *testing.T) {
	cm := DefaultCostModel()
	prev := 0.0
	for n := 1; n <= 32; n++ {
		c := cm.RecomputeCost(chainSlice(n))
		if c <= prev {
			t.Fatalf("cost not increasing at %d ops", n)
		}
		prev = c
	}
}

func TestHandlerCostPolicyAcceptsBeyondThreshold(t *testing.T) {
	tr := slice.NewTracker(1)
	meter := energy.NewMeter(nil)
	h := NewHandler(Config{Threshold: 10, MapCapacity: 64, Policy: PolicyCost}, tr, meter)

	// A 25-op chain: rejected by the paper's threshold 10, accepted by
	// the cost policy.
	tr.OnLoad(0, 1, 5)
	for i := 0; i < 25; i++ {
		tr.OnALU(0, isa.Instr{Op: isa.ADDI, Rd: 1, Rs: 1, Imm: 1})
	}
	h.OnAssoc(0, 0, 7, tr.Recipe(0, 1))
	if h.AddrMap().Stats().Inserts != 1 {
		t.Fatalf("cost policy rejected a profitable slice: %+v", h.AddrMap().Stats())
	}
	if rec := h.Omittable(7, 30); rec == nil {
		t.Fatal("value should be omittable under the cost policy")
	} else if v, _ := h.Recompute(rec); v != 30 {
		t.Fatalf("recomputed %d, want 30", v)
	}
}

func TestHandlerCostPolicyDefaultsModel(t *testing.T) {
	tr := slice.NewTracker(1)
	h := NewHandler(Config{Threshold: 10, MapCapacity: 8, Policy: PolicyCost}, tr, energy.NewMeter(nil))
	if h.cfg.Cost.Energy == nil {
		t.Fatal("cost model not defaulted")
	}
}
