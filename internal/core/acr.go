// Package core implements ACR — Amnesic Checkpointing and Recovery, the
// paper's contribution (§III). It provides the AddrMap bookkeeping buffer,
// the ACR checkpoint handler (deciding which values to omit from
// checkpoints) and the ACR recovery handler (recomputing omitted values
// along their Slices and writing them back to establish a consistent
// recovery line).
package core

import (
	"math/bits"

	"acr/internal/slice"
)

// Record is one AddrMap entry: the association between a memory address and
// the Slice (plus buffered input operands) able to recompute the value the
// address held (paper §III-A: "<memory address, Slice address>" plus the
// input-operand buffer of §II-B).
//
// Records live in the AddrMap's slab pool: pointers stay valid for the
// record's lifetime (until it is neither mapped nor pinned), matching the
// hardware structure — a fixed set of entries, not heap objects.
type Record struct {
	Addr  int64
	Slice *slice.Compiled
	// Core is the core whose store created the association; recomputation
	// during recovery runs on this core (Slices are thread-local).
	Core int
	// gen is the checkpoint generation in which the record was created.
	gen int64
	// pins counts live checkpoint-log references: a pinned record must
	// remain available until its log dies (paper §III-A: mappings must
	// remain in AddrMap as long as the corresponding checkpoint does).
	pins int
	// slot is the record's index in the slab pool, for O(1) free.
	slot int32
	// mapped reports whether the record is still the current mapping for
	// its address (it may have been superseded while pinned).
	mapped bool
}

// Pin marks the record as referenced by a live checkpoint log.
func (r *Record) Pin() { r.pins++ }

// AddrMapStats aggregates AddrMap behaviour over a run.
type AddrMapStats struct {
	Inserts          uint64 // successful associations
	Rejected         uint64 // associations dropped: map full
	SliceTooLong     uint64 // associations dropped: Slice exceeds the length cap
	CostRejected     uint64 // associations dropped by the cost policy
	PrunedAssocs     uint64 // associations dropped by the static site plan
	BoostedAssocs    uint64 // associations whose length cap the site plan raised
	Superseded       uint64 // records replaced by a newer store's record
	Lookups          uint64
	Hits             uint64 // lookups whose record recomputes the old value
	StaleMisses      uint64 // record present but value mismatch (stale)
	Aged             uint64 // records dropped by generation aging
	PeakOccupancy    int
	PeakInputWords   int
	OmittedValues    uint64 // values excluded from checkpoints
	RecomputedValues uint64 // values regenerated during recovery
}

// AddrMap is the bounded on-chip buffer associating memory addresses with
// Slices. One AddrMap serves one core group: Slices are confined to
// thread-local data (paper §III-A).
//
// The structure is allocation-free on the hot paths (Assoc, Lookup,
// Release): an open-addressed flat table of int32 slot indices keyed by
// address (linear probing, backward-shift deletion, ≤ 50% load) over a slab
// pool of Records recycled through a freelist. Records superseded or aged
// while pinned by a live checkpoint log simply stay out of the table until
// released; they hold capacity, as in the hardware.
type AddrMap struct {
	// table holds slot+1 of the record mapped at each probe position;
	// 0 marks an empty slot. len(table) is a power of two kept ≥ 2× the
	// mapped population (growTable doubles it on demand), so the load
	// factor never exceeds one half. Sizing the table by live mappings
	// instead of by capacity keeps it cache-resident: capacity scales
	// with the machine (cores × per-core budget), and a capacity-sized
	// table on a 128-core machine is megabytes of mostly-empty slots
	// whose cold misses dominate the store path. Growth only rehashes —
	// probe layout is not architectural state, so results are unchanged.
	table []int32
	shift uint // 64 - log2(len(table)), for the multiplicative hash

	// blocks is the slab pool: fixed-size chunks so record pointers are
	// stable across growth. freelist recycles freed slots; bump allocates
	// never-used ones.
	blocks    [][]Record
	blockBits uint
	freelist  []int32
	bump      int32

	mapped   int // records currently in the table
	retained int // unmapped but pinned records still holding capacity

	// slicePool recycles the Compiled shells of freed records back to the
	// compile path, so steady-state association does not allocate.
	slicePool []*slice.Compiled

	capacity   int
	gen        int64
	stats      AddrMapStats
	inputWords int
}

// NewAddrMap returns an AddrMap with room for capacity records.
func NewAddrMap(capacity int) *AddrMap {
	if capacity < 1 {
		capacity = 1
	}
	tableLen := 16
	for tableLen < 2*capacity && tableLen < 4096 {
		tableLen *= 2
	}
	blockBits := uint(bits.Len(uint(capacity - 1)))
	if blockBits < 4 {
		blockBits = 4
	}
	if blockBits > 12 {
		blockBits = 12
	}
	return &AddrMap{
		table:     make([]int32, tableLen),
		shift:     uint(64 - bits.Len(uint(tableLen-1))),
		blockBits: blockBits,
		capacity:  capacity,
	}
}

// home returns addr's preferred probe position (Fibonacci hashing: the
// multiplier is the odd fractional part of the golden ratio, scrambling
// sequential addresses across the table).
//
//acr:noalloc
//acr:spec-safe
func (m *AddrMap) home(addr int64) uint64 {
	return (uint64(addr) * 0x9E3779B97F4A7C15) >> m.shift
}

// rec returns the pooled record at slot.
//
//acr:noalloc
//acr:spec-safe
func (m *AddrMap) rec(slot int32) *Record {
	return &m.blocks[slot>>m.blockBits][slot&int32(1<<m.blockBits-1)]
}

// allocRecord takes a slot from the freelist or bump-allocates one,
// extending the slab pool by one block when exhausted.
//
//acr:noalloc
func (m *AddrMap) allocRecord() *Record {
	if n := len(m.freelist); n > 0 {
		slot := m.freelist[n-1]
		m.freelist = m.freelist[:n-1]
		r := m.rec(slot)
		r.slot = slot
		return r
	}
	if int(m.bump)>>m.blockBits == len(m.blocks) {
		m.blocks = append(m.blocks, make([]Record, 1<<m.blockBits)) //acr:alloc-ok slab growth, amortized over 2^blockBits records
	}
	slot := m.bump
	m.bump++
	r := m.rec(slot)
	r.slot = slot
	return r
}

// freeRecord returns rec's slot to the freelist and recycles its Slice.
//
//acr:noalloc
func (m *AddrMap) freeRecord(rec *Record) {
	if rec.Slice != nil {
		m.recycleSlice(rec.Slice)
		rec.Slice = nil
	}
	m.freelist = append(m.freelist, rec.slot) //acr:alloc-ok bounded by the slab pool, steady state reuses capacity
}

// recycleSlice offers a dead Compiled shell back to the compile path. The
// pool is bounded by the map capacity — shells in flight can never exceed
// the records that hold them — so steady-state compilation stays inside
// the pool; overflow is left to the garbage collector.
//
//acr:noalloc
func (m *AddrMap) recycleSlice(sl *slice.Compiled) {
	if len(m.slicePool) < m.capacity {
		m.slicePool = append(m.slicePool, sl) //acr:alloc-ok bounded by capacity, steady state reuses the pool's array
	}
}

// takeRecycled pops a recycled Compiled shell, or nil when the pool is
// empty (the compile path then allocates a fresh one).
//
//acr:noalloc
func (m *AddrMap) takeRecycled() *slice.Compiled {
	if n := len(m.slicePool); n > 0 {
		sl := m.slicePool[n-1]
		m.slicePool = m.slicePool[:n-1]
		return sl
	}
	return nil
}

// lookupMapped returns the record currently mapped at addr, or nil.
//
//acr:noalloc
//acr:spec-safe
func (m *AddrMap) lookupMapped(addr int64) *Record {
	mask := uint64(len(m.table) - 1)
	for i := m.home(addr); ; i = (i + 1) & mask {
		e := m.table[i]
		if e == 0 {
			return nil
		}
		if r := m.rec(e - 1); r.Addr == addr {
			return r
		}
	}
}

// tableInsert maps slot at addr's probe position. The caller guarantees
// addr is not already present; the ≤ 50% load bound guarantees a free slot.
//
//acr:noalloc
func (m *AddrMap) tableInsert(addr int64, slot int32) {
	mask := uint64(len(m.table) - 1)
	i := m.home(addr)
	for m.table[i] != 0 {
		i = (i + 1) & mask
	}
	m.table[i] = slot + 1
}

// tableDelete unmaps addr using backward-shift deletion: subsequent probe
// chain members whose home lies at or before the vacated slot move back, so
// no tombstones accumulate and probe chains stay minimal.
//
//acr:noalloc
func (m *AddrMap) tableDelete(addr int64) {
	mask := uint64(len(m.table) - 1)
	i := m.home(addr)
	for {
		e := m.table[i]
		if e == 0 {
			return // not present (caller bug; harmless)
		}
		if m.rec(e-1).Addr == addr {
			break
		}
		i = (i + 1) & mask
	}
	free := i
	for j := i; ; {
		j = (j + 1) & mask
		e := m.table[j]
		if e == 0 {
			break
		}
		h := m.home(m.rec(e - 1).Addr)
		// The entry at j may move into the hole iff its home position
		// precedes or equals the hole along its probe chain.
		if (j-h)&mask >= (j-free)&mask {
			m.table[free] = e
			free = j
		}
	}
	m.table[free] = 0
}

// Occupancy returns the number of records currently holding capacity
// (mapped plus pinned-retained).
func (m *AddrMap) Occupancy() int { return m.mapped + m.retained }

// Stats returns a copy of the accumulated statistics.
func (m *AddrMap) Stats() AddrMapStats { return m.stats }

// Assoc inserts or replaces the record for addr. It reports whether the
// association was accepted (the map may be full); a rejected Slice stays
// owned by the caller.
//
//acr:noalloc
func (m *AddrMap) Assoc(core int, addr int64, sl *slice.Compiled) bool {
	old := m.lookupMapped(addr)
	if old == nil && m.Occupancy() >= m.capacity {
		m.stats.Rejected++
		return false
	}
	if 2*(m.mapped+1) > len(m.table) {
		m.growTable()
	}
	if old != nil {
		m.stats.Superseded++
		if old.Slice == sl {
			// Defensive: re-associating the identical Compiled must not
			// recycle the object being inserted.
			m.inputWords -= sl.NumInputs()
			old.Slice = nil
		}
		m.unmap(old)
	}
	rec := m.allocRecord()
	*rec = Record{Addr: addr, Slice: sl, Core: core, gen: m.gen, slot: rec.slot, mapped: true}
	m.tableInsert(addr, rec.slot)
	m.mapped++
	m.stats.Inserts++
	m.inputWords += sl.NumInputs()
	if occ := m.Occupancy(); occ > m.stats.PeakOccupancy {
		m.stats.PeakOccupancy = occ
	}
	if m.inputWords > m.stats.PeakInputWords {
		m.stats.PeakInputWords = m.inputWords
	}
	return true
}

// growTable doubles the probe table and rehashes every mapped record.
// Amortized O(1) per insertion; the rehash changes only the internal probe
// layout, never which records are mapped, so it is invisible to results.
func (m *AddrMap) growTable() {
	old := m.table
	m.table = make([]int32, 2*len(old))
	m.shift = uint(64 - bits.Len(uint(len(m.table)-1)))
	for _, e := range old {
		if e != 0 {
			m.tableInsert(m.rec(e-1).Addr, e-1)
		}
	}
}

// unmap removes rec from the address mapping, retaining it while pinned.
//
//acr:noalloc
func (m *AddrMap) unmap(rec *Record) {
	m.tableDelete(rec.Addr)
	rec.mapped = false
	m.mapped--
	if rec.Slice != nil {
		m.inputWords -= rec.Slice.NumInputs()
	}
	if rec.pins > 0 {
		m.retained++
	} else {
		m.freeRecord(rec)
	}
}

// Lookup returns the record able to recompute old — the value addr held at
// the last checkpoint — or nil. Validity is checked by evaluating the
// Slice: a record is usable exactly when its recomputation reproduces the
// value being omitted, which is the correctness criterion for amnesic
// omission (§III-C: "whether the current value v ... is recomputable").
//
//acr:noalloc
func (m *AddrMap) Lookup(addr, old int64, scratch []int64) *Record {
	m.stats.Lookups++
	rec := m.lookupMapped(addr)
	if rec == nil {
		return nil
	}
	if rec.Slice.Eval(scratch) != old {
		// Stale: a later, unassociated store overwrote the value the
		// Slice regenerates. Drop the mapping.
		m.stats.StaleMisses++
		m.unmap(rec)
		return nil
	}
	m.stats.Hits++
	return rec
}

// Peek reports whether a Lookup(addr, old, ...) would hit, without
// mutating anything: no statistics move and a stale record stays mapped
// (its unmapping happens when the real Lookup replays). Because it is
// read-only it is safe to call from concurrently-executing speculative
// quanta while the map is otherwise frozen; Slice evaluation is pure and
// scratch is caller-private.
//
//acr:noalloc
//acr:spec-safe
func (m *AddrMap) Peek(addr, old int64, scratch []int64) bool {
	rec := m.lookupMapped(addr)
	return rec != nil && rec.Slice.Eval(scratch) == old
}

// Release drops one pin from rec (its referencing log was discarded) and
// frees its capacity if the record is no longer mapped.
//
//acr:noalloc
func (m *AddrMap) Release(rec *Record) {
	if rec.pins <= 0 {
		panic("core: Release of unpinned record")
	}
	rec.pins--
	if rec.pins == 0 && !rec.mapped {
		m.retained--
		m.freeRecord(rec)
	}
}

// NewGeneration advances the checkpoint generation and ages out records
// older than the two most recent generations (paper §III-A: AddrMap records
// mappings for the two most recent checkpoints). Pinned records survive
// into the retained population. The slab scan visits every pool slot in
// deterministic order; free and retained slots are skipped via the mapped
// flag.
func (m *AddrMap) NewGeneration() {
	m.gen++
	cutoff := m.gen - 1
	for _, blk := range m.blocks {
		for i := range blk {
			rec := &blk[i]
			if rec.mapped && rec.gen < cutoff {
				m.stats.Aged++
				m.unmap(rec)
			}
		}
	}
}

// Reset clears the map entirely (after a recovery: the hardware AddrMap is
// rebuilt as execution re-runs). All pins must have been released — the
// checkpoint manager discards its logs before resetting — because record
// slots are recycled wholesale.
func (m *AddrMap) Reset() {
	clear(m.table)
	for _, blk := range m.blocks {
		for i := range blk {
			rec := &blk[i]
			if rec.Slice != nil {
				m.recycleSlice(rec.Slice)
				rec.Slice = nil
			}
			rec.mapped = false
			rec.pins = 0
		}
	}
	m.freelist = m.freelist[:0]
	m.bump = 0
	m.mapped = 0
	m.retained = 0
	m.inputWords = 0
}

// CountOmitted and CountRecomputed update the omission statistics; they are
// invoked by the handlers so that the stats live with the AddrMap.
func (m *AddrMap) CountOmitted() { m.stats.OmittedValues++ }

// CountRecomputed records one value regenerated during recovery.
func (m *AddrMap) CountRecomputed() { m.stats.RecomputedValues++ }
