// Package core implements ACR — Amnesic Checkpointing and Recovery, the
// paper's contribution (§III). It provides the AddrMap bookkeeping buffer,
// the ACR checkpoint handler (deciding which values to omit from
// checkpoints) and the ACR recovery handler (recomputing omitted values
// along their Slices and writing them back to establish a consistent
// recovery line).
package core

import (
	"acr/internal/slice"
)

// Record is one AddrMap entry: the association between a memory address and
// the Slice (plus buffered input operands) able to recompute the value the
// address held (paper §III-A: "<memory address, Slice address>" plus the
// input-operand buffer of §II-B).
type Record struct {
	Addr  int64
	Slice *slice.Compiled
	// Core is the core whose store created the association; recomputation
	// during recovery runs on this core (Slices are thread-local).
	Core int
	// gen is the checkpoint generation in which the record was created.
	gen int64
	// pins counts live checkpoint-log references: a pinned record must
	// remain available until its log dies (paper §III-A: mappings must
	// remain in AddrMap as long as the corresponding checkpoint does).
	pins int
	// mapped reports whether the record is still the current mapping for
	// its address (it may have been superseded while pinned).
	mapped bool
}

// Pin marks the record as referenced by a live checkpoint log.
func (r *Record) Pin() { r.pins++ }

// AddrMapStats aggregates AddrMap behaviour over a run.
type AddrMapStats struct {
	Inserts          uint64 // successful associations
	Rejected         uint64 // associations dropped: map full
	SliceTooLong     uint64 // associations dropped: Slice exceeds the length cap
	CostRejected     uint64 // associations dropped by the cost policy
	Superseded       uint64 // records replaced by a newer store's record
	Lookups          uint64
	Hits             uint64 // lookups whose record recomputes the old value
	StaleMisses      uint64 // record present but value mismatch (stale)
	Aged             uint64 // records dropped by generation aging
	PeakOccupancy    int
	PeakInputWords   int
	OmittedValues    uint64 // values excluded from checkpoints
	RecomputedValues uint64 // values regenerated during recovery
}

// AddrMap is the bounded on-chip buffer associating memory addresses with
// Slices. One AddrMap serves one core: Slices are confined to thread-local
// data (paper §III-A).
type AddrMap struct {
	byAddr map[int64]*Record
	// retained holds records that are pinned by live logs but no longer
	// mapped (superseded or aged); they still occupy capacity.
	retained   map[*Record]struct{}
	capacity   int
	gen        int64
	stats      AddrMapStats
	inputWords int
}

// NewAddrMap returns an AddrMap with room for capacity records.
func NewAddrMap(capacity int) *AddrMap {
	return &AddrMap{
		byAddr:   make(map[int64]*Record, capacity),
		retained: make(map[*Record]struct{}),
		capacity: capacity,
	}
}

// Occupancy returns the number of records currently holding capacity
// (mapped plus pinned-retained).
func (m *AddrMap) Occupancy() int { return len(m.byAddr) + len(m.retained) }

// Stats returns a copy of the accumulated statistics.
func (m *AddrMap) Stats() AddrMapStats { return m.stats }

// Assoc inserts or replaces the record for addr. It reports whether the
// association was accepted (the map may be full).
func (m *AddrMap) Assoc(core int, addr int64, sl *slice.Compiled) bool {
	old, exists := m.byAddr[addr]
	if !exists && m.Occupancy() >= m.capacity {
		m.stats.Rejected++
		return false
	}
	if exists {
		m.stats.Superseded++
		m.unmap(old)
	}
	rec := &Record{Addr: addr, Slice: sl, Core: core, gen: m.gen, mapped: true}
	m.byAddr[addr] = rec
	m.stats.Inserts++
	m.inputWords += sl.NumInputs()
	if occ := m.Occupancy(); occ > m.stats.PeakOccupancy {
		m.stats.PeakOccupancy = occ
	}
	if m.inputWords > m.stats.PeakInputWords {
		m.stats.PeakInputWords = m.inputWords
	}
	return true
}

// unmap removes rec from the address mapping, retaining it while pinned.
func (m *AddrMap) unmap(rec *Record) {
	delete(m.byAddr, rec.Addr)
	rec.mapped = false
	m.inputWords -= rec.Slice.NumInputs()
	if rec.pins > 0 {
		m.retained[rec] = struct{}{}
	}
}

// Lookup returns the record able to recompute old — the value addr held at
// the last checkpoint — or nil. Validity is checked by evaluating the
// Slice: a record is usable exactly when its recomputation reproduces the
// value being omitted, which is the correctness criterion for amnesic
// omission (§III-C: "whether the current value v ... is recomputable").
func (m *AddrMap) Lookup(addr, old int64, scratch []int64) *Record {
	m.stats.Lookups++
	rec, ok := m.byAddr[addr]
	if !ok {
		return nil
	}
	if rec.Slice.Eval(scratch) != old {
		// Stale: a later, unassociated store overwrote the value the
		// Slice regenerates. Drop the mapping.
		m.stats.StaleMisses++
		m.unmap(rec)
		return nil
	}
	m.stats.Hits++
	return rec
}

// Release drops one pin from rec (its referencing log was discarded) and
// frees its capacity if the record is no longer mapped.
func (m *AddrMap) Release(rec *Record) {
	if rec.pins <= 0 {
		panic("core: Release of unpinned record")
	}
	rec.pins--
	if rec.pins == 0 && !rec.mapped {
		delete(m.retained, rec)
	}
}

// NewGeneration advances the checkpoint generation and ages out records
// older than the two most recent generations (paper §III-A: AddrMap records
// mappings for the two most recent checkpoints). Pinned records survive
// into the retained set.
func (m *AddrMap) NewGeneration() {
	m.gen++
	for addr, rec := range m.byAddr {
		if rec.gen < m.gen-1 {
			m.stats.Aged++
			_ = addr
			m.unmap(rec)
		}
	}
}

// Reset clears the map entirely (after a recovery: the hardware AddrMap is
// rebuilt as execution re-runs).
func (m *AddrMap) Reset() {
	clear(m.byAddr)
	clear(m.retained)
	m.inputWords = 0
}

// CountOmitted and CountRecomputed update the omission statistics; they are
// invoked by the handlers so that the stats live with the AddrMap.
func (m *AddrMap) CountOmitted() { m.stats.OmittedValues++ }

// CountRecomputed records one value regenerated during recovery.
func (m *AddrMap) CountRecomputed() { m.stats.RecomputedValues++ }
