// Package ckpt implements the BER substrate as a pluggable strategy
// engine. The baseline scheme is log-based incremental in-memory
// checkpointing in the style of ReVive/Rebound (paper §II-A): upon the
// first update to a memory word within a checkpoint interval, the word's
// old value is logged to an in-memory log; establishing a checkpoint
// writes back all dirty cache lines, records each core's architectural
// state, and starts a fresh log. Retained checkpoints form a ring sized by
// the strategy's retention depth — two for the paper's schemes, because
// the error-detection latency is bounded by the checkpoint period (§II-A,
// Fig. 2); deeper for the tiered strategy.
//
// The Strategy interface (strategy.go) is the seam: full, amnesic
// (recomputable old values omitted and replaced by pinned AddrMap records,
// paper §III), differential (flush-and-copy delta images), tiered (fast
// NVM-like log tier with demotion) and auto (amnesic plus a static
// analysis site plan) all plug into one Manager that owns the ring, the
// interval logs and the generic bookkeeping.
//
//acr:deterministic
package ckpt

import (
	"fmt"

	"acr/internal/core"
	"acr/internal/cpu"
	"acr/internal/energy"
	"acr/internal/mem"
)

// Mode selects the coordination scheme (paper §II-A, §V-E).
type Mode int

// Coordination modes.
const (
	// Global: all cores cooperate on every checkpoint.
	Global Mode = iota
	// Local: only communicating cores (connected components of the
	// interval's communication graph) coordinate.
	Local
)

func (m Mode) String() string {
	if m == Local {
		return "local"
	}
	return "global"
}

// LogEntry is one record of the in-memory checkpoint log. A non-nil Rec
// marks an amnesic entry: the old value was omitted and will be recomputed
// along Rec's Slice during recovery.
type LogEntry struct {
	Addr   int64
	Old    int64
	Rec    *core.Record
	Writer int8
}

// Snapshot is one established checkpoint: the architectural state of every
// core plus the establishment time. Memory state is implicit (the log of
// the following interval undoes subsequent updates).
type Snapshot struct {
	Seq  int64
	Time int64
	Arch []cpu.ArchState
}

// IntervalStat records the checkpointable volume of one interval.
type IntervalStat struct {
	// Logged is the number of words conventionally logged.
	Logged int64
	// Omitted is the number of words amnesically omitted. The baseline
	// checkpoint size of the interval is Logged+Omitted.
	Omitted int64
}

// Size returns the baseline (non-amnesic) checkpoint size in words.
func (s IntervalStat) Size() int64 { return s.Logged + s.Omitted }

// ReplayLenBuckets are the upper bounds of the Slice replay-length
// histogram, in instructions replayed per recomputed value; ReplayHist has
// one extra overflow bucket for longer Slices.
var ReplayLenBuckets = [...]int64{1, 2, 4, 8, 16, 32, 64}

// ReplayHist is a fixed-bucket histogram of Slice replay lengths observed
// while recomputing amnesically omitted values during recoveries. Bucket i
// counts replays of length ≤ ReplayLenBuckets[i] (cumulative-free: each
// observation lands in exactly one bucket); the final bucket is overflow.
type ReplayHist [len(ReplayLenBuckets) + 1]int64

func (h *ReplayHist) observe(n int64) {
	for i, ub := range ReplayLenBuckets {
		if n <= ub {
			h[i]++
			return
		}
	}
	h[len(ReplayLenBuckets)]++
}

// Total returns the number of observations across all buckets.
func (h ReplayHist) Total() int64 {
	t := int64(0)
	for _, n := range h {
		t += n
	}
	return t
}

// Stats aggregates manager activity over a run. The strategy-specific
// counters (DeltaWords, FastLogWords, DemotedWords) stay zero for
// strategies that don't produce them, so one struct carries every
// scheme's cost accounting through Result and telemetry.
type Stats struct {
	Checkpoints  int64
	Recoveries   int64
	LoggedWords  int64
	OmittedWords int64
	// RestoredWords counts memory words written during roll-backs
	// (conventional restores plus recomputed write-backs).
	RestoredWords int64
	// RecomputedWords counts the amnesic subset of RestoredWords.
	RecomputedWords int64
	// ReplayLens distributes the RecomputedWords by Slice replay length
	// (the per-dependency instrumentation that makes recomputation-cost
	// claims auditable).
	ReplayLens ReplayHist
	// DeltaWords counts words captured into differential images at
	// establishment (differential strategy).
	DeltaWords int64
	// FastLogWords counts log words written to the fast checkpoint tier
	// (tiered strategy).
	FastLogWords int64
	// DemotedWords counts log words streamed fast→slow at establishment
	// (tiered strategy).
	DemotedWords int64
	// MultiSnapshotRollbacks counts recoveries that crossed two or more
	// retained intervals; MaxRollbackDepth is the deepest roll-back in
	// intervals applied (paper Fig. 2's retention argument, exercised).
	MultiSnapshotRollbacks int64
	MaxRollbackDepth       int64
}

// EstablishInfo reports what a checkpoint establishment did, per
// coordination group, so the machine can charge time.
type EstablishInfo struct {
	// Groups lists the coordination groups; under Global there is one
	// covering all cores.
	Groups []GroupInfo
	// ClosedInterval is the just-sealed interval's volume (for strategies
	// that only learn the volume at establishment — differential — the
	// pre-establish OpenInterval reading would be stale).
	ClosedInterval IntervalStat
}

// GroupInfo is the per-group establishment cost basis.
type GroupInfo struct {
	// Members is the group's core set (multi-word: machines past 64 cores
	// are first-class).
	Members mem.CoreSet
	// Cores is the population of Members.
	Cores int
	// FlushedWords is the dirty data written back for this group.
	FlushedWords int
	// ArchWords is the architectural state written for this group.
	ArchWords int
	// LogWords is the log traffic (address + old value per entry) written
	// by the group's cores during the closing interval; it must drain
	// through the memory controllers before the checkpoint is complete.
	// For the differential and tiered strategies it also carries the
	// establishment-time delta copy and demotion stream.
	LogWords int
	// FastLogWords is the log traffic draining through the fast
	// checkpoint tier instead of the DRAM channel (tiered strategy).
	FastLogWords int
}

// RollbackInfo reports what a roll-back did so the machine can charge time.
type RollbackInfo struct {
	Target *Snapshot
	// LogWordsRead counts words read from the in-memory log (or the
	// retained image, for the differential strategy) over the DRAM
	// channel.
	LogWordsRead int64
	// FastLogWordsRead counts words read from the fast log tier.
	FastLogWordsRead int64
	// WordsRestored counts memory writes performed.
	WordsRestored int64
	// RecomputeCycles is the recomputation occupancy per core.
	RecomputeCycles []int64
	// RecomputedValues counts amnesic values regenerated.
	RecomputedValues int64
	// IntervalsApplied is the roll-back depth: retained intervals crossed
	// to reach the target (1 = newest checkpoint).
	IntervalsApplied int
}

// InlineLogStallCycles is the store-side stall of enqueuing one log entry:
// one store-buffer slot. The log itself drains to memory asynchronously
// (Rebound-style); its bandwidth cost is charged when the checkpoint is
// established, via GroupInfo.LogWords. OmitStallCycles is the amnesic path:
// the AddrMap check is folded into the ASSOC-ADDR protocol, so the store
// does not stall at all.
const (
	InlineLogStallCycles = 1
	OmitStallCycles      = 0
)

// Manager owns the retained-checkpoint ring, the interval logs and the
// generic bookkeeping; the strategy decides what is captured, sealed and
// restored. The sim machine drives coordination timing.
type Manager struct {
	strat Strategy
	mode  Mode
	sys   *mem.System
	meter *energy.Meter
	acr   *core.Handler // nil: plain (non-amnesic) checkpointing

	// snaps is the retained-checkpoint ring, newest first: snaps[0] is
	// the most recent established checkpoint. logs[i] holds the entries
	// captured during the interval that began at snaps[i]; logs[0] is the
	// open interval's log. Both are truncated to the strategy's retention.
	snaps []*Snapshot
	logs  [][]LogEntry

	intervals []IntervalStat
	curStat   IntervalStat
	// logWordsByCore attributes the closing interval's log traffic to its
	// writing cores (len = core count), for per-group establishment costing
	// under Local.
	logWordsByCore []int64
	stats          Stats
	nextSeq        int64
}

// NewManager creates a manager for the given strategy and establishes the
// implicit initial checkpoint (sequence 0 at time 0) from the given
// architectural states. Memory must already hold the program's initial
// image (the differential strategy snapshots it here). The ACR handler is
// required by the amnesic and auto strategies and rejected by the others.
func NewManager(kind Kind, mode Mode, sys *mem.System, meter *energy.Meter, acr *core.Handler, arch []cpu.ArchState) (*Manager, error) {
	if kind.Amnesic() != (acr != nil) {
		if acr != nil {
			return nil, fmt.Errorf("ckpt: strategy %v does not take an ACR handler", kind)
		}
		return nil, fmt.Errorf("ckpt: strategy %v requires an ACR handler", kind)
	}
	if kind.GlobalOnly() && mode != Global {
		return nil, fmt.Errorf("ckpt: strategy %v requires global coordination", kind)
	}
	m := &Manager{strat: newStrategy(kind, sys.Words()), mode: mode, sys: sys, meter: meter, acr: acr,
		logWordsByCore: make([]int64, sys.NCores())}
	m.snaps = append(m.snaps, &Snapshot{Seq: 0, Time: 0, Arch: append([]cpu.ArchState(nil), arch...)})
	m.logs = append(m.logs, nil)
	m.nextSeq = 1
	if d, ok := m.strat.(*diffStrategy); ok {
		d.init(m)
	}
	return m, nil
}

// Mode returns the coordination mode.
func (m *Manager) Mode() Mode { return m.mode }

// Kind returns the checkpoint strategy.
func (m *Manager) Kind() Kind { return m.strat.Kind() }

// Retention returns the number of checkpoints the strategy keeps.
func (m *Manager) Retention() int { return m.strat.Retention() }

// Retained returns the number of checkpoints currently in the ring.
func (m *Manager) Retained() int { return len(m.snaps) }

// Amnesic reports whether an ACR handler is attached.
func (m *Manager) Amnesic() bool { return m.acr != nil }

// ACR returns the attached handler (nil when not amnesic).
func (m *Manager) ACR() *core.Handler { return m.acr }

// Stats returns accumulated statistics.
func (m *Manager) Stats() Stats { return m.stats }

// ResetStats clears the accumulated statistics and interval history. The
// machine calls it when the region of interest begins, so reported volumes
// cover the ROI only (the paper measures the ROI, §IV); logs, snapshots and
// the AddrMap are untouched.
func (m *Manager) ResetStats() {
	m.stats = Stats{}
	m.intervals = nil
	m.curStat = IntervalStat{}
}

// Intervals returns per-interval checkpoint volume statistics, in
// establishment order (the current, unfinished interval is not included).
func (m *Manager) Intervals() []IntervalStat { return m.intervals }

// OpenInterval returns the running statistics of the current, not yet
// established interval (consumed by adaptive checkpoint placement).
func (m *Manager) OpenInterval() IntervalStat { return m.curStat }

// Current returns the most recent established checkpoint.
func (m *Manager) Current() *Snapshot { return m.snaps[0] }

// totalLogWords sums the open interval's attributed log traffic.
func (m *Manager) totalLogWords() int64 {
	t := int64(0)
	for _, w := range m.logWordsByCore {
		t += w
	}
	return t
}

// OnFirstStore handles the first update to addr within the current
// interval: the strategy logs, omits or ignores the old value. It returns
// the store-side stall in cycles.
func (m *Manager) OnFirstStore(coreID int, addr, old int64) int64 {
	return m.strat.OnFirstStore(m, coreID, addr, old)
}

// PredictFirstStore returns the stall OnFirstStore(coreID, addr, old)
// would return, without side effects: nothing is logged or pinned, no
// statistics move and no energy is charged. scratch must be
// caller-private. Speculative quanta use it to account the store-side
// stall before the real OnFirstStore replays at commit; the parallel
// engine's conflict rules guarantee the prediction matches the replay for
// committing rounds.
//
//acr:spec-safe
func (m *Manager) PredictFirstStore(addr, old int64, scratch []int64) int64 {
	return m.strat.Predict(m, addr, old, scratch)
}

// groupLogWords sums the interval's logged words over the group's members.
// The plain indexed loop (rather than CoreSet.ForEach with a closure) keeps
// the per-checkpoint path allocation-free.
//
//acr:noalloc
func (m *Manager) groupLogWords(set mem.CoreSet) int {
	t := int64(0)
	for c, w := range m.logWordsByCore {
		if set.Has(c) {
			t += w
		}
	}
	return int(t)
}

// asGroup assembles one coordination group's traffic summary.
//
//acr:noalloc
func (m *Manager) asGroup(set mem.CoreSet, cores, archWordsPer int, fastLogs bool) GroupInfo {
	g := GroupInfo{
		Members: set, Cores: cores,
		ArchWords: archWordsPer * cores,
	}
	if fastLogs {
		g.FastLogWords = m.groupLogWords(set)
	} else {
		g.LogWords = m.groupLogWords(set)
	}
	return g
}

// Establish creates a checkpoint at the given time from the cores'
// architectural states. Under Local mode, groups are the current
// communication components; under Global there is a single group. The
// strategy's Seal runs first — before the log bits clear and the ring
// rotates — capturing interval-granular state and deciding how the
// closing traffic drains.
func (m *Manager) Establish(time int64, arch []cpu.ArchState) EstablishInfo {
	var info EstablishInfo
	seal := m.strat.Seal(m, time)
	archWordsPer := 0
	if len(arch) > 0 {
		archWordsPer = arch[0].Words()
	}
	lineWords := m.sys.Config().LineWords

	if m.mode == Global {
		all := m.sys.AllCores()
		flushed := m.sys.FlushDirty(all)
		g := m.asGroup(all, len(arch), archWordsPer, seal.LogsToFastTier)
		g.FlushedWords = flushed * lineWords
		info.Groups = []GroupInfo{g}
		m.sys.NewInterval(all, true)
	} else {
		groups := m.sys.CommGroups()
		for _, gm := range groups {
			flushed := m.sys.FlushDirty(gm)
			g := m.asGroup(gm, gm.Count(), archWordsPer, seal.LogsToFastTier)
			g.FlushedWords = flushed * lineWords
			info.Groups = append(info.Groups, g)
		}
		for _, gm := range groups {
			m.sys.NewInterval(gm, false)
		}
	}
	// Establishment-time strategy traffic (delta copy, demotion stream)
	// drains with the first — under the global-only strategies, the only —
	// group.
	info.Groups[0].LogWords += seal.ExtraSlowWords
	clear(m.logWordsByCore)

	// Architectural state goes to the in-memory checkpoint area.
	m.meter.Add(energy.RegCkpt, uint64(archWordsPer*len(arch)))
	m.meter.Add(energy.DRAMWrite, uint64(archWordsPer*len(arch)))

	// Rotate the ring. Once it is full, the oldest log retires: its pinned
	// records are released and its backing array is recycled as the next
	// interval's log, so steady-state logging regrows nothing. The stale
	// entries beyond the reset length only reference records in the
	// AddrMap's machine-lifetime pool.
	var recycled []LogEntry
	if len(m.snaps) == m.strat.Retention() {
		oldest := m.logs[len(m.logs)-1]
		m.releaseLog(oldest)
		recycled = oldest[:0]
		m.logs = m.logs[:len(m.logs)-1]
		m.snaps = m.snaps[:len(m.snaps)-1]
	}
	m.logs = append(m.logs, nil)
	copy(m.logs[1:], m.logs)
	m.logs[0] = recycled
	m.snaps = append(m.snaps, nil)
	copy(m.snaps[1:], m.snaps)
	m.snaps[0] = &Snapshot{Seq: m.nextSeq, Time: time, Arch: append([]cpu.ArchState(nil), arch...)}

	info.ClosedInterval = m.curStat
	m.intervals = append(m.intervals, m.curStat)
	m.curStat = IntervalStat{}
	m.nextSeq++
	m.stats.Checkpoints++
	if m.acr != nil {
		m.acr.OnCheckpoint()
	}
	return info
}

func (m *Manager) releaseLog(log []LogEntry) {
	if m.acr == nil {
		return
	}
	am := m.acr.AddrMap()
	for i := range log {
		if log[i].Rec != nil {
			am.Release(log[i].Rec)
		}
	}
}

// SafeTarget returns the most recent retained checkpoint established
// strictly before the error occurrence time — the roll-back target per
// Fig. 2 (a checkpoint established after the error occurred may hold
// corrupted state). Deeper-retention strategies can reach past the two
// newest checkpoints when the detection latency spans several periods.
func (m *Manager) SafeTarget(errTime int64) (*Snapshot, error) {
	if i := m.strat.SafeTarget(m, errTime); i >= 0 {
		return m.snaps[i], nil
	}
	return nil, fmt.Errorf("ckpt: no safe checkpoint for error at %d (cur %d)", errTime, m.snaps[0].Time)
}

// Rollback restores memory to the state captured by target, recomputing
// amnesically omitted values along their Slices (Fig. 4b). It resets the
// manager to a single retained checkpoint (target, with an empty log), the
// memory interval state, and the AddrMap. The caller restores core
// architectural state from target.Arch and charges the stall reported in
// RollbackInfo.
func (m *Manager) Rollback(target *Snapshot, nCores int) (RollbackInfo, error) {
	info := RollbackInfo{Target: target, RecomputeCycles: make([]int64, nCores)}
	depth := -1
	for i, s := range m.snaps {
		if s == target {
			depth = i
			break
		}
	}
	if depth < 0 {
		return info, fmt.Errorf("ckpt: rollback target seq %d is not retained", target.Seq)
	}
	m.strat.Rollback(m, depth, &info)
	info.IntervalsApplied = depth + 1

	for _, log := range m.logs {
		m.releaseLog(log)
	}
	m.logs = append(m.logs[:0], nil)
	m.snaps = append(m.snaps[:0], target)
	m.curStat = IntervalStat{}

	m.sys.NewInterval(m.sys.AllCores(), true)
	if m.acr != nil {
		m.acr.OnRecovery()
	}
	m.stats.Recoveries++
	m.stats.RestoredWords += info.WordsRestored
	m.stats.RecomputedWords += info.RecomputedValues
	if depth >= 1 {
		m.stats.MultiSnapshotRollbacks++
	}
	if d := int64(depth + 1); d > m.stats.MaxRollbackDepth {
		m.stats.MaxRollbackDepth = d
	}
	return info, nil
}

// applyLog replays one interval's undo log. fast selects the log tier the
// conventional entries are read from (tiered strategy).
func (m *Manager) applyLog(log []LogEntry, fast bool, info *RollbackInfo) {
	for i := range log {
		e := &log[i]
		var val int64
		if e.Rec != nil {
			v, cycles := m.acr.Recompute(e.Rec)
			val = v
			info.RecomputeCycles[e.Rec.Core] += cycles
			info.RecomputedValues++
			m.stats.ReplayLens.observe(int64(e.Rec.Slice.Len()))
		} else if fast {
			// Read the entry (address + old value) from the fast log tier.
			m.meter.Add(energy.NVMRead, 2)
			info.FastLogWordsRead += 2
			val = e.Old
		} else {
			// Read the entry (address + old value) from the log.
			m.meter.Add(energy.DRAMRead, 2)
			info.LogWordsRead += 2
			val = e.Old
		}
		m.sys.WriteWord(e.Addr, val)
		m.meter.Add(energy.DRAMWrite, 1)
		info.WordsRestored++
	}
}
