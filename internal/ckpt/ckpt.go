// Package ckpt implements the baseline BER substrate: log-based incremental
// in-memory checkpointing in the style of ReVive/Rebound (paper §II-A).
// Upon the first update to a memory word within a checkpoint interval, the
// word's old value is logged to an in-memory log; establishing a checkpoint
// writes back all dirty cache lines, records each core's architectural
// state, and starts a fresh log. The two most recent checkpoints are
// retained because the error-detection latency is bounded by the checkpoint
// period (§II-A, Fig. 2).
//
// When an ACR handler is attached, the manager becomes amnesic: old values
// proven recomputable are omitted from the log and replaced by pinned
// AddrMap records (paper §III).
package ckpt

import (
	"fmt"
	"math/bits"

	"acr/internal/core"
	"acr/internal/cpu"
	"acr/internal/energy"
	"acr/internal/mem"
)

// Mode selects the coordination scheme (paper §II-A, §V-E).
type Mode int

// Coordination modes.
const (
	// Global: all cores cooperate on every checkpoint.
	Global Mode = iota
	// Local: only communicating cores (connected components of the
	// interval's communication graph) coordinate.
	Local
)

func (m Mode) String() string {
	if m == Local {
		return "local"
	}
	return "global"
}

// LogEntry is one record of the in-memory checkpoint log. A non-nil Rec
// marks an amnesic entry: the old value was omitted and will be recomputed
// along Rec's Slice during recovery.
type LogEntry struct {
	Addr   int64
	Old    int64
	Rec    *core.Record
	Writer int8
}

// Snapshot is one established checkpoint: the architectural state of every
// core plus the establishment time. Memory state is implicit (the log of
// the following interval undoes subsequent updates).
type Snapshot struct {
	Seq  int64
	Time int64
	Arch []cpu.ArchState
}

// IntervalStat records the checkpointable volume of one interval.
type IntervalStat struct {
	// Logged is the number of words conventionally logged.
	Logged int64
	// Omitted is the number of words amnesically omitted. The baseline
	// checkpoint size of the interval is Logged+Omitted.
	Omitted int64
}

// Size returns the baseline (non-amnesic) checkpoint size in words.
func (s IntervalStat) Size() int64 { return s.Logged + s.Omitted }

// ReplayLenBuckets are the upper bounds of the Slice replay-length
// histogram, in instructions replayed per recomputed value; ReplayHist has
// one extra overflow bucket for longer Slices.
var ReplayLenBuckets = [...]int64{1, 2, 4, 8, 16, 32, 64}

// ReplayHist is a fixed-bucket histogram of Slice replay lengths observed
// while recomputing amnesically omitted values during recoveries. Bucket i
// counts replays of length ≤ ReplayLenBuckets[i] (cumulative-free: each
// observation lands in exactly one bucket); the final bucket is overflow.
type ReplayHist [len(ReplayLenBuckets) + 1]int64

func (h *ReplayHist) observe(n int64) {
	for i, ub := range ReplayLenBuckets {
		if n <= ub {
			h[i]++
			return
		}
	}
	h[len(ReplayLenBuckets)]++
}

// Total returns the number of observations across all buckets.
func (h ReplayHist) Total() int64 {
	t := int64(0)
	for _, n := range h {
		t += n
	}
	return t
}

// Stats aggregates manager activity over a run.
type Stats struct {
	Checkpoints  int64
	Recoveries   int64
	LoggedWords  int64
	OmittedWords int64
	// RestoredWords counts memory words written during roll-backs
	// (conventional restores plus recomputed write-backs).
	RestoredWords int64
	// RecomputedWords counts the amnesic subset of RestoredWords.
	RecomputedWords int64
	// ReplayLens distributes the RecomputedWords by Slice replay length
	// (the per-dependency instrumentation that makes recomputation-cost
	// claims auditable).
	ReplayLens ReplayHist
}

// EstablishInfo reports what a checkpoint establishment did, per
// coordination group, so the machine can charge time.
type EstablishInfo struct {
	// Groups lists the coordination groups; under Global there is one
	// covering all cores.
	Groups []GroupInfo
}

// GroupInfo is the per-group establishment cost basis.
type GroupInfo struct {
	Mask uint64
	// Cores is the population of Mask.
	Cores int
	// FlushedWords is the dirty data written back for this group.
	FlushedWords int
	// ArchWords is the architectural state written for this group.
	ArchWords int
	// LogWords is the log traffic (address + old value per entry) written
	// by the group's cores during the closing interval; it must drain
	// through the memory controllers before the checkpoint is complete.
	LogWords int
}

// RollbackInfo reports what a roll-back did so the machine can charge time.
type RollbackInfo struct {
	Target *Snapshot
	// LogWordsRead counts words read from the in-memory log.
	LogWordsRead int64
	// WordsRestored counts memory writes performed.
	WordsRestored int64
	// RecomputeCycles is the recomputation occupancy per core.
	RecomputeCycles []int64
	// RecomputedValues counts amnesic values regenerated.
	RecomputedValues int64
}

// InlineLogStallCycles is the store-side stall of enqueuing one log entry:
// one store-buffer slot. The log itself drains to memory asynchronously
// (Rebound-style); its bandwidth cost is charged when the checkpoint is
// established, via GroupInfo.LogWords. OmitStallCycles is the amnesic path:
// the AddrMap check is folded into the ASSOC-ADDR protocol, so the store
// does not stall at all.
const (
	InlineLogStallCycles = 1
	OmitStallCycles      = 0
)

// Manager owns logs, snapshots and the omission decision. It implements
// the bookkeeping half of checkpointing; the sim machine drives
// coordination timing.
type Manager struct {
	mode  Mode
	sys   *mem.System
	meter *energy.Meter
	acr   *core.Handler // nil: plain (non-amnesic) checkpointing

	prev, cur *Snapshot
	curLog    []LogEntry
	prevLog   []LogEntry

	intervals []IntervalStat
	curStat   IntervalStat
	// logWordsByCore attributes the closing interval's log traffic to its
	// writing cores, for per-group establishment costing under Local.
	logWordsByCore [64]int64
	stats          Stats
	nextSeq        int64
}

// NewManager creates a manager and establishes the implicit initial
// checkpoint (sequence 0 at time 0) from the given architectural states.
func NewManager(mode Mode, sys *mem.System, meter *energy.Meter, acr *core.Handler, arch []cpu.ArchState) *Manager {
	m := &Manager{mode: mode, sys: sys, meter: meter, acr: acr}
	m.cur = &Snapshot{Seq: 0, Time: 0, Arch: append([]cpu.ArchState(nil), arch...)}
	m.nextSeq = 1
	return m
}

// Mode returns the coordination mode.
func (m *Manager) Mode() Mode { return m.mode }

// Amnesic reports whether an ACR handler is attached.
func (m *Manager) Amnesic() bool { return m.acr != nil }

// ACR returns the attached handler (nil when not amnesic).
func (m *Manager) ACR() *core.Handler { return m.acr }

// Stats returns accumulated statistics.
func (m *Manager) Stats() Stats { return m.stats }

// ResetStats clears the accumulated statistics and interval history. The
// machine calls it when the region of interest begins, so reported volumes
// cover the ROI only (the paper measures the ROI, §IV); logs, snapshots and
// the AddrMap are untouched.
func (m *Manager) ResetStats() {
	m.stats = Stats{}
	m.intervals = nil
	m.curStat = IntervalStat{}
}

// Intervals returns per-interval checkpoint volume statistics, in
// establishment order (the current, unfinished interval is not included).
func (m *Manager) Intervals() []IntervalStat { return m.intervals }

// OpenInterval returns the running statistics of the current, not yet
// established interval (consumed by adaptive checkpoint placement).
func (m *Manager) OpenInterval() IntervalStat { return m.curStat }

// Current returns the most recent established checkpoint.
func (m *Manager) Current() *Snapshot { return m.cur }

// OnFirstStore handles the first update to addr within the current
// interval: the old value is either logged (charging the inline log write)
// or amnesically omitted. It returns the store-side stall in cycles.
func (m *Manager) OnFirstStore(coreID int, addr, old int64) int64 {
	if m.acr != nil {
		if rec := m.acr.Omittable(addr, old); rec != nil {
			rec.Pin()
			m.curLog = append(m.curLog, LogEntry{Addr: addr, Rec: rec, Writer: int8(coreID)})
			m.curStat.Omitted++
			m.stats.OmittedWords++
			return OmitStallCycles
		}
	}
	m.curLog = append(m.curLog, LogEntry{Addr: addr, Old: old, Writer: int8(coreID)})
	m.curStat.Logged++
	m.stats.LoggedWords++
	m.logWordsByCore[coreID] += 2
	// Log entry: address + old value written to the in-memory log.
	m.meter.Add(energy.DRAMWrite, 2)
	return InlineLogStallCycles
}

// PredictFirstStore returns the stall OnFirstStore(coreID, addr, old)
// would return, without side effects: nothing is logged or pinned, no
// statistics move and no energy is charged. scratch must be
// caller-private. Speculative quanta use it to account the store-side
// stall before the real OnFirstStore replays at commit; the parallel
// engine's conflict rules guarantee the prediction matches the replay for
// committing rounds.
func (m *Manager) PredictFirstStore(addr, old int64, scratch []int64) int64 {
	if m.acr != nil && m.acr.PeekOmittable(addr, old, scratch) {
		return OmitStallCycles
	}
	return InlineLogStallCycles
}

// Establish creates a checkpoint at the given time from the cores'
// architectural states. Under Local mode, groups are the current
// communication components; under Global there is a single group.
func (m *Manager) Establish(time int64, arch []cpu.ArchState) EstablishInfo {
	var info EstablishInfo
	archWordsPer := 0
	if len(arch) > 0 {
		archWordsPer = arch[0].Words()
	}
	lineWords := m.sys.Config().LineWords

	logWords := func(mask uint64) int {
		t := int64(0)
		for c := 0; c < 64; c++ {
			if mask&(1<<uint(c)) != 0 {
				t += m.logWordsByCore[c]
			}
		}
		return int(t)
	}
	if m.mode == Global {
		mask := m.sys.AllCoresMask()
		flushed := m.sys.FlushDirty(mask)
		info.Groups = []GroupInfo{{
			Mask: mask, Cores: len(arch),
			FlushedWords: flushed * lineWords,
			ArchWords:    archWordsPer * len(arch),
			LogWords:     logWords(mask),
		}}
		m.sys.NewInterval(mask, true)
	} else {
		groups := m.sys.CommGroups()
		for _, g := range groups {
			flushed := m.sys.FlushDirty(g)
			n := bits.OnesCount64(g)
			info.Groups = append(info.Groups, GroupInfo{
				Mask: g, Cores: n,
				FlushedWords: flushed * lineWords,
				ArchWords:    archWordsPer * n,
				LogWords:     logWords(g),
			})
		}
		for _, g := range groups {
			m.sys.NewInterval(g, false)
		}
	}
	m.logWordsByCore = [64]int64{}

	// Architectural state goes to the in-memory checkpoint area.
	m.meter.Add(energy.RegCkpt, uint64(archWordsPer*len(arch)))
	m.meter.Add(energy.DRAMWrite, uint64(archWordsPer*len(arch)))

	// Retire the older log: its pinned records are released and its
	// backing array is recycled as the next interval's log, so steady-state
	// logging regrows nothing. The stale entries beyond the reset length
	// only reference records in the AddrMap's machine-lifetime pool.
	retired := m.prevLog
	m.releaseLog(retired)
	m.prevLog = m.curLog
	m.curLog = retired[:0]
	m.intervals = append(m.intervals, m.curStat)
	m.curStat = IntervalStat{}

	m.prev = m.cur
	m.cur = &Snapshot{Seq: m.nextSeq, Time: time, Arch: append([]cpu.ArchState(nil), arch...)}
	m.nextSeq++
	m.stats.Checkpoints++
	if m.acr != nil {
		m.acr.OnCheckpoint()
	}
	return info
}

func (m *Manager) releaseLog(log []LogEntry) {
	if m.acr == nil {
		return
	}
	am := m.acr.AddrMap()
	for i := range log {
		if log[i].Rec != nil {
			am.Release(log[i].Rec)
		}
	}
}

// SafeTarget returns the most recent checkpoint established strictly before
// the error occurrence time — the roll-back target per Fig. 2 (a checkpoint
// established after the error occurred may hold corrupted state).
func (m *Manager) SafeTarget(errTime int64) (*Snapshot, error) {
	if m.cur.Time < errTime {
		return m.cur, nil
	}
	if m.prev != nil && m.prev.Time < errTime {
		return m.prev, nil
	}
	return nil, fmt.Errorf("ckpt: no safe checkpoint for error at %d (cur %d)", errTime, m.cur.Time)
}

// Rollback restores memory to the state captured by target, recomputing
// amnesically omitted values along their Slices (Fig. 4b). It resets the
// manager to a single retained checkpoint (target, with an empty log), the
// memory interval state, and the AddrMap. The caller restores core
// architectural state from target.Arch and charges the stall reported in
// RollbackInfo.
func (m *Manager) Rollback(target *Snapshot, nCores int) (RollbackInfo, error) {
	info := RollbackInfo{Target: target, RecomputeCycles: make([]int64, nCores)}
	if target != m.cur && target != m.prev {
		return info, fmt.Errorf("ckpt: rollback target seq %d is not retained", target.Seq)
	}
	// Undo the current interval first, then — when rolling back to the
	// second most recent checkpoint — the previous one. A word logged in
	// both intervals ends at the older interval's old value because the
	// older log is applied last.
	m.applyLog(m.curLog, &info)
	if target == m.prev {
		m.applyLog(m.prevLog, &info)
	}
	m.releaseLog(m.curLog)
	m.releaseLog(m.prevLog)
	m.curLog = nil
	m.prevLog = nil
	m.curStat = IntervalStat{}

	m.cur = target
	m.prev = nil
	m.sys.NewInterval(m.sys.AllCoresMask(), true)
	if m.acr != nil {
		m.acr.OnRecovery()
	}
	m.stats.Recoveries++
	m.stats.RestoredWords += info.WordsRestored
	m.stats.RecomputedWords += info.RecomputedValues
	return info, nil
}

func (m *Manager) applyLog(log []LogEntry, info *RollbackInfo) {
	for i := range log {
		e := &log[i]
		var val int64
		if e.Rec != nil {
			v, cycles := m.acr.Recompute(e.Rec)
			val = v
			info.RecomputeCycles[e.Rec.Core] += cycles
			info.RecomputedValues++
			m.stats.ReplayLens.observe(int64(e.Rec.Slice.Len()))
		} else {
			// Read the entry (address + old value) from the log.
			m.meter.Add(energy.DRAMRead, 2)
			info.LogWordsRead += 2
			val = e.Old
		}
		m.sys.WriteWord(e.Addr, val)
		m.meter.Add(energy.DRAMWrite, 1)
		info.WordsRestored++
	}
}
