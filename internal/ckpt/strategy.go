package ckpt

import (
	"fmt"
	"sync"

	"acr/internal/energy"
	"acr/internal/mem"
)

// Kind identifies a checkpoint strategy. The zero value is the
// conventional full-logging baseline.
type Kind int

// Checkpoint strategies.
const (
	// KindFull is conventional undo-log checkpointing: every first store
	// of an interval logs the old value (ReVive/Rebound, paper §II-A).
	KindFull Kind = iota
	// KindAmnesic is the paper's scheme: recomputable old values are
	// omitted from the log and recovered along ACR Slices (§III).
	KindAmnesic
	// KindDifferential is flush-and-copy delta checkpointing: no inline
	// logging at all; at establishment the epoch's dirty words (tracked by
	// the directory log bits acting as a dirty bitmap) are copied into a
	// retained memory image riding the establishment flush. Roll-back
	// restores the union of the crossed epochs' deltas from the target
	// image. Global coordination only.
	KindDifferential
	// KindTiered is multi-level undo logging: log entries are written to a
	// fast NVM-like tier (distinct energy events, higher bandwidth), age
	// into DRAM after TieredFastRetain establishments, and TieredRetention
	// checkpoints are retained — relaxing the detection-latency bound and
	// forcing multi-checkpoint roll-back paths. Global coordination only.
	KindTiered
	// KindAuto is amnesic checkpointing augmented by an AutoCheck-style
	// static pass: reaching-definition/liveness analysis classifies every
	// ASSOC site ahead of time, pruning sites whose Slices can never be
	// embedded and extending the length cap where replay safety is proven
	// statically (internal/analysis). Composes with, not replaces, the
	// amnesic recipes.
	KindAuto
)

// Tiered-strategy retention depths: logs stay in the fast tier for
// TieredFastRetain establishments, then demote to DRAM; TieredRetention
// checkpoints are recoverable in total.
const (
	TieredFastRetain = 2
	TieredRetention  = 4
)

// Kinds returns all strategies in declaration order.
func Kinds() []Kind {
	return []Kind{KindFull, KindAmnesic, KindDifferential, KindTiered, KindAuto}
}

var kindNames = [...]string{
	KindFull:         "full",
	KindAmnesic:      "amnesic",
	KindDifferential: "differential",
	KindTiered:       "tiered",
	KindAuto:         "auto",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses a strategy name as accepted by the CLIs. Aliases: diff,
// tier.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "full":
		return KindFull, nil
	case "amnesic":
		return KindAmnesic, nil
	case "differential", "diff":
		return KindDifferential, nil
	case "tiered", "tier":
		return KindTiered, nil
	case "auto":
		return KindAuto, nil
	}
	return 0, fmt.Errorf("ckpt: unknown strategy %q (want full|amnesic|differential|tiered|auto)", s)
}

// Amnesic reports whether the strategy requires the ACR machinery
// (tracker, handler, AddrMap).
func (k Kind) Amnesic() bool { return k == KindAmnesic || k == KindAuto }

// Retention returns the number of checkpoints the strategy keeps.
func (k Kind) Retention() int {
	if k == KindTiered {
		return TieredRetention
	}
	return 2
}

// GlobalOnly reports whether the strategy requires global coordination
// (the differential image and the fast log tier are machine-global).
func (k Kind) GlobalOnly() bool { return k == KindDifferential || k == KindTiered }

// Describe returns the one-line summary acrsim -list-strategies prints.
func (k Kind) Describe() string {
	switch k {
	case KindFull:
		return "conventional undo-log checkpointing (ReVive/Rebound baseline)"
	case KindAmnesic:
		return "undo log with recomputable old values omitted via ACR Slices (the paper's scheme)"
	case KindDifferential:
		return "flush-and-copy delta images: no inline logging; epoch dirty words captured at establishment (global mode only)"
	case KindTiered:
		return "undo log in a fast NVM-like tier, demoting to DRAM; retains 4 checkpoints (global mode only)"
	case KindAuto:
		return "amnesic plus a static analysis pass pruning futile ASSOC sites and boosting verified ones"
	}
	return "unknown"
}

// SealInfo is what a strategy's Seal reports back to Establish: how the
// closing interval's checkpoint traffic drains.
type SealInfo struct {
	// LogsToFastTier reroutes the closing interval's log words through the
	// fast tier (GroupInfo.FastLogWords) instead of the DRAM channel.
	LogsToFastTier bool
	// ExtraSlowWords is additional DRAM-channel drain charged at this
	// establishment beyond the interval's log words: the differential
	// delta copy, the tiered demotion stream. Attributed to the (single,
	// global) coordination group.
	ExtraSlowWords int
}

// Strategy is the pluggable checkpoint scheme: how old values are captured
// on first store, what establishment seals, which retained checkpoint is
// safe, and how roll-back restores memory. Strategies keep their own
// per-scheme state and cost accounting (ckpt.Stats carries the
// strategy-specific counters); the Manager owns the retained-checkpoint
// ring, the interval logs and the generic bookkeeping.
type Strategy interface {
	// Kind identifies the strategy.
	Kind() Kind
	// Retention is the number of checkpoints the manager keeps.
	Retention() int
	// OnFirstStore handles the first update to addr within the open
	// interval and returns the store-side stall in cycles.
	OnFirstStore(m *Manager, coreID int, addr, old int64) int64
	// Predict returns OnFirstStore's stall without side effects; scratch
	// must be caller-private (the parallel engine predicts concurrently).
	//
	//acr:spec-safe
	Predict(m *Manager, addr, old int64, scratch []int64) int64
	// Seal runs at establishment, before the log ring rotates and before
	// the interval's log bits clear: the strategy captures
	// interval-granular state (delta images, tier demotion) and reports
	// how the closing traffic drains.
	Seal(m *Manager, time int64) SealInfo
	// SafeTarget returns the ring index of the newest retained checkpoint
	// established strictly before errTime, or -1 if none qualifies.
	SafeTarget(m *Manager, errTime int64) int
	// Rollback restores memory to the state of m.snaps[depth], filling
	// info, and resets any per-strategy interval state (the Manager resets
	// the ring afterwards).
	Rollback(m *Manager, depth int, info *RollbackInfo)
}

// newStrategy builds the strategy object for a kind.
func newStrategy(kind Kind, words int) Strategy {
	switch kind {
	case KindDifferential:
		return &diffStrategy{seen: make([]uint64, (words+63)/64)}
	case KindTiered:
		return &tieredStrategy{}
	default:
		return logStrategy{kind: kind}
	}
}

// ringSafeTarget is the shared safe-target rule (paper Fig. 2): the newest
// retained checkpoint established strictly before the error occurred — a
// checkpoint established after the occurrence may hold corrupted state.
func ringSafeTarget(m *Manager, errTime int64) int {
	for i, s := range m.snaps {
		if s.Time < errTime {
			return i
		}
	}
	return -1
}

// logStrategy is the classic undo-log capture path, shared by the full,
// amnesic and auto kinds (auto differs only in the static site plan the
// ACR handler applies at ASSOC time; amnesic and auto require an attached
// handler, full forbids one).
type logStrategy struct {
	kind Kind
}

func (s logStrategy) Kind() Kind     { return s.kind }
func (s logStrategy) Retention() int { return s.kind.Retention() }

func (s logStrategy) OnFirstStore(m *Manager, coreID int, addr, old int64) int64 {
	if m.acr != nil {
		if rec := m.acr.Omittable(addr, old); rec != nil {
			rec.Pin()
			m.logs[0] = append(m.logs[0], LogEntry{Addr: addr, Rec: rec, Writer: int8(coreID)})
			m.curStat.Omitted++
			m.stats.OmittedWords++
			return OmitStallCycles
		}
	}
	m.logs[0] = append(m.logs[0], LogEntry{Addr: addr, Old: old, Writer: int8(coreID)})
	m.curStat.Logged++
	m.stats.LoggedWords++
	m.logWordsByCore[coreID] += 2
	// Log entry: address + old value written to the in-memory log.
	m.meter.Add(energy.DRAMWrite, 2)
	return InlineLogStallCycles
}

//acr:spec-safe
func (s logStrategy) Predict(m *Manager, addr, old int64, scratch []int64) int64 {
	if m.acr != nil && m.acr.PeekOmittable(addr, old, scratch) {
		return OmitStallCycles
	}
	return InlineLogStallCycles
}

func (s logStrategy) Seal(*Manager, int64) SealInfo { return SealInfo{} }

func (s logStrategy) SafeTarget(m *Manager, errTime int64) int {
	return ringSafeTarget(m, errTime)
}

func (s logStrategy) Rollback(m *Manager, depth int, info *RollbackInfo) {
	// Undo the open interval first, then each older interval in turn: a
	// word logged in several intervals ends at the oldest crossed
	// interval's old value because the oldest log is applied last.
	for i := 0; i <= depth; i++ {
		m.applyLog(m.logs[i], false, info)
	}
}

// tieredStrategy writes undo logs to a fast NVM-like tier. At each
// establishment the log aging past TieredFastRetain streams out to the
// DRAM-resident slow log area; TieredRetention checkpoints stay
// recoverable, so roll-backs may cross several intervals, reading the
// young logs at fast-tier cost and the demoted ones from DRAM.
type tieredStrategy struct {
	// sealedWords[i-1] is the log word count of ring log i (post-seal
	// alignment): the drain accounting the demotion charge needs.
	sealedWords []int
}

func (t *tieredStrategy) Kind() Kind     { return KindTiered }
func (t *tieredStrategy) Retention() int { return TieredRetention }

func (t *tieredStrategy) OnFirstStore(m *Manager, coreID int, addr, old int64) int64 {
	m.logs[0] = append(m.logs[0], LogEntry{Addr: addr, Old: old, Writer: int8(coreID)})
	m.curStat.Logged++
	m.stats.LoggedWords++
	m.stats.FastLogWords += 2
	m.logWordsByCore[coreID] += 2
	// Log entry: address + old value written to the fast log tier.
	m.meter.Add(energy.NVMWrite, 2)
	return InlineLogStallCycles
}

//acr:spec-safe
func (t *tieredStrategy) Predict(*Manager, int64, int64, []int64) int64 {
	return InlineLogStallCycles
}

func (t *tieredStrategy) Seal(m *Manager, _ int64) SealInfo {
	closing := int(m.totalLogWords())
	// After the manager rotates, the closing log sits at ring index 1 and
	// every sealed log moves one slot deeper; keep the word counts
	// aligned with that post-rotation ring.
	t.sealedWords = append(t.sealedWords, 0)
	copy(t.sealedWords[1:], t.sealedWords)
	t.sealedWords[0] = closing
	if len(t.sealedWords) > TieredRetention-1 {
		t.sealedWords = t.sealedWords[:TieredRetention-1]
	}
	demoted := 0
	if len(t.sealedWords) >= TieredFastRetain {
		// The log arriving at ring index TieredFastRetain leaves the fast
		// tier: stream it to the DRAM-resident slow log area.
		demoted = t.sealedWords[TieredFastRetain-1]
	}
	if demoted > 0 {
		m.meter.Add(energy.NVMRead, uint64(demoted))
		m.meter.Add(energy.DRAMWrite, uint64(demoted))
		m.stats.DemotedWords += int64(demoted)
	}
	return SealInfo{LogsToFastTier: true, ExtraSlowWords: demoted}
}

func (t *tieredStrategy) SafeTarget(m *Manager, errTime int64) int {
	return ringSafeTarget(m, errTime)
}

func (t *tieredStrategy) Rollback(m *Manager, depth int, info *RollbackInfo) {
	for i := 0; i <= depth; i++ {
		m.applyLog(m.logs[i], i < TieredFastRetain, info)
	}
	t.sealedWords = t.sealedWords[:0]
}

// diffStrategy is flush-and-copy delta checkpointing: stores never stall
// and nothing is logged inline; the directory log bits double as the
// epoch's dirty bitmap. At establishment the dirty words are scanned and
// their (already flushed) values copied into a retained full-memory image
// — only the copy's writes are charged, the reads ride the establishment
// flush. Roll-back restores the union of the crossed epochs' dirty sets
// from the target image: one image read and one memory write per distinct
// word, with no double-restores.
type diffStrategy struct {
	// images[i] is the memory image at snaps[i]; deltas[i-1] lists the
	// addresses dirtied during ring interval i (post-seal alignment).
	images  [][]int64
	deltas  [][]int64
	scratch []int64
	seen    []uint64 // distinct-word bitmap, cleared after each roll-back
	spare   [][]int64
	// shardBufs are the reusable per-shard buffers of the parallel seal
	// scan (sealScan).
	shardBufs [][]int64
}

// sealScanParallelMin is the memory size, in words, below which the seal
// scan stays serial: goroutine fan-out only pays for itself once shards
// are big enough to scan.
const sealScanParallelMin = 1 << 15

// sealScan collects the epoch's dirty words in ascending address order.
// Shards own disjoint, contiguous address ranges, so each can be scanned
// by its own goroutine into a reusable per-shard buffer; concatenating the
// buffers in shard order reproduces the serial AppendDirtyWords walk
// bit-identically. The gate is config-derived, so the choice of path is
// deterministic.
func (d *diffStrategy) sealScan(sys *mem.System, buf []int64) []int64 {
	n := sys.Shards()
	if n == 1 || sys.Words() < sealScanParallelMin {
		return sys.AppendDirtyWords(buf)
	}
	if len(d.shardBufs) < n {
		d.shardBufs = append(d.shardBufs, make([][]int64, n-len(d.shardBufs))...)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.shardBufs[i] = sys.AppendDirtyWordsShard(i, d.shardBufs[i][:0])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		buf = append(buf, d.shardBufs[i]...)
	}
	return buf
}

func (d *diffStrategy) Kind() Kind     { return KindDifferential }
func (d *diffStrategy) Retention() int { return 2 }

// init captures the initial memory image for the implicit checkpoint the
// manager establishes at construction. Called by NewManager, after the
// program's memory init.
func (d *diffStrategy) init(m *Manager) {
	d.images = append(d.images, m.sys.SnapshotWords(nil))
}

func (d *diffStrategy) OnFirstStore(*Manager, int, int64, int64) int64 { return 0 }

//acr:spec-safe
func (d *diffStrategy) Predict(*Manager, int64, int64, []int64) int64 { return 0 }

func (d *diffStrategy) Seal(m *Manager, _ int64) SealInfo {
	d.scratch = d.sealScan(m.sys, d.scratch[:0])
	n := len(d.scratch)
	// The delta's values are captured from the establishment flush stream;
	// only the writes into the image area hit the channel.
	m.meter.Add(energy.DRAMWrite, uint64(n))
	m.stats.DeltaWords += int64(n)
	m.stats.LoggedWords += int64(n)
	m.curStat.Logged = int64(n)

	// New image = newest image + delta, aligned with the post-rotation
	// ring (index 0); the delta list lands at ring interval 1.
	var img []int64
	if len(d.images) >= d.Retention() {
		img = d.images[len(d.images)-1]
		d.images = d.images[:len(d.images)-1]
		copy(img, d.images[0])
	} else if len(d.spare) > 0 {
		img = d.spare[len(d.spare)-1]
		d.spare = d.spare[:len(d.spare)-1]
		copy(img, d.images[0])
	} else {
		img = append([]int64(nil), d.images[0]...)
	}
	for _, a := range d.scratch {
		img[a] = m.sys.ReadWord(a)
	}
	d.images = append(d.images, nil)
	copy(d.images[1:], d.images)
	d.images[0] = img

	var delta []int64
	if len(d.deltas) >= d.Retention()-1 {
		delta = d.deltas[len(d.deltas)-1][:0]
		d.deltas = d.deltas[:len(d.deltas)-1]
	}
	delta = append(delta, d.scratch...)
	d.deltas = append(d.deltas, nil)
	copy(d.deltas[1:], d.deltas)
	d.deltas[0] = delta
	return SealInfo{ExtraSlowWords: n}
}

func (d *diffStrategy) SafeTarget(m *Manager, errTime int64) int {
	return ringSafeTarget(m, errTime)
}

func (d *diffStrategy) Rollback(m *Manager, depth int, info *RollbackInfo) {
	img := d.images[depth]
	restore := func(addr int64) {
		w, b := addr/64, uint(addr%64)
		if d.seen[w]&(1<<b) != 0 {
			return
		}
		d.seen[w] |= 1 << b
		m.sys.WriteWord(addr, img[addr])
		// One image word read, one memory word written.
		m.meter.Add(energy.DRAMRead, 1)
		m.meter.Add(energy.DRAMWrite, 1)
		info.LogWordsRead++
		info.WordsRestored++
	}
	// Words dirtied since the target: the open epoch's dirty bitmap plus
	// the deltas of every crossed sealed interval.
	d.scratch = m.sys.AppendDirtyWords(d.scratch[:0])
	for _, a := range d.scratch {
		restore(a)
	}
	for i := 0; i < depth; i++ {
		for _, a := range d.deltas[i] {
			restore(a)
		}
	}
	for i := range d.seen {
		d.seen[i] = 0
	}

	// The ring collapses to the target: keep its image, recycle the rest.
	if depth != 0 {
		d.images[0], d.images[depth] = d.images[depth], d.images[0]
	}
	for _, img := range d.images[1:] {
		d.spare = append(d.spare, img)
	}
	d.images = d.images[:1]
	d.deltas = d.deltas[:0]
}
