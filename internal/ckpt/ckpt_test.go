package ckpt

import (
	"testing"

	"acr/internal/core"
	"acr/internal/cpu"
	"acr/internal/energy"
	"acr/internal/isa"
	"acr/internal/mem"
	"acr/internal/slice"
)

// rig is a minimal machine-less harness: it drives the memory system and
// manager directly, playing the role of the sim loop.
type rig struct {
	sys   *mem.System
	meter *energy.Meter
	tr    *slice.Tracker
	h     *core.Handler
	mgr   *Manager
}

func newRig(t *testing.T, mode Mode, amnesic bool, nCores int) *rig {
	t.Helper()
	kind := KindFull
	if amnesic {
		kind = KindAmnesic
	}
	return newKindRig(t, kind, mode, nCores)
}

// newKindRig builds a rig running the given checkpoint strategy.
func newKindRig(t *testing.T, kind Kind, mode Mode, nCores int) *rig {
	t.Helper()
	meter := energy.NewMeter(nil)
	sys := mem.MustNewSystem(mem.DefaultConfig(), nCores, 4096, meter)
	arch := make([]cpu.ArchState, nCores)
	r := &rig{sys: sys, meter: meter}
	if kind.Amnesic() {
		r.tr = slice.NewTracker(nCores)
		r.h = core.NewHandler(core.Config{Threshold: 10, MapCapacity: 1024}, r.tr, meter)
	}
	mgr, err := NewManager(kind, mode, sys, meter, r.h, arch)
	if err != nil {
		t.Fatal(err)
	}
	r.mgr = mgr
	return r
}

// store performs a store by coreID, routing first-store events to the
// manager, exactly as the machine's hook does.
func (r *rig) store(coreID int, addr, val int64) {
	old, first, _ := r.sys.Store(coreID, addr, val)
	if first {
		r.mgr.OnFirstStore(coreID, addr, old)
	}
}

// assocStore performs a store paired with ASSOC-ADDR whose recipe is a
// trivially recomputable constant (LI val).
func (r *rig) assocStore(coreID int, addr, val int64) {
	r.tr.OnALU(coreID, isa.Instr{Op: isa.LI, Rd: 1, Imm: val})
	r.store(coreID, addr, val)
	r.h.OnAssoc(coreID, 0, addr, r.tr.Recipe(coreID, 1))
}

func (r *rig) establish(t *testing.T, time int64, nCores int) EstablishInfo {
	t.Helper()
	arch := make([]cpu.ArchState, nCores)
	return r.mgr.Establish(time, arch)
}

func snapshotMem(sys *mem.System, n int64) []int64 {
	out := make([]int64, n)
	for i := int64(0); i < n; i++ {
		out[i] = sys.ReadWord(i)
	}
	return out
}

func checkMem(t *testing.T, sys *mem.System, want []int64) {
	t.Helper()
	for i, w := range want {
		if got := sys.ReadWord(int64(i)); got != w {
			t.Fatalf("mem[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestRollbackToMostRecent(t *testing.T) {
	r := newRig(t, Global, false, 1)
	r.store(0, 10, 100)
	r.store(0, 11, 200)
	r.establish(t, 1000, 1)
	want := snapshotMem(r.sys, 64)

	r.store(0, 10, 999)
	r.store(0, 12, 888)
	target, err := r.mgr.SafeTarget(1500)
	if err != nil {
		t.Fatal(err)
	}
	if target.Seq != 1 {
		t.Fatalf("target seq = %d, want 1", target.Seq)
	}
	info, err := r.mgr.Rollback(target, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkMem(t, r.sys, want)
	if info.WordsRestored != 2 {
		t.Errorf("restored = %d, want 2", info.WordsRestored)
	}
}

func TestRollbackToSecondMostRecent(t *testing.T) {
	r := newRig(t, Global, false, 1)
	r.store(0, 10, 1)
	r.establish(t, 1000, 1) // ckpt 1: mem[10]=1
	want := snapshotMem(r.sys, 64)

	r.store(0, 10, 2)
	r.store(0, 11, 3)
	r.establish(t, 2000, 1) // ckpt 2 (unsafe: error occurred at 900? no —)

	r.store(0, 10, 4) // current interval

	// Error occurred at 1500, before ckpt 2 was established but detected
	// only after: ckpt 2 may be corrupted, so roll back to ckpt 1
	// (Fig. 2 semantics).
	target, err := r.mgr.SafeTarget(1500)
	if err != nil {
		t.Fatal(err)
	}
	if target.Seq != 1 {
		t.Fatalf("target seq = %d, want 1", target.Seq)
	}
	if _, err := r.mgr.Rollback(target, 1); err != nil {
		t.Fatal(err)
	}
	checkMem(t, r.sys, want)
}

func TestSafeTargetPrefersNewestSafe(t *testing.T) {
	r := newRig(t, Global, false, 1)
	r.establish(t, 1000, 1)
	r.establish(t, 2000, 1)
	target, err := r.mgr.SafeTarget(2500) // error after newest ckpt
	if err != nil || target.Time != 2000 {
		t.Fatalf("target = %+v, err %v", target, err)
	}
	target, err = r.mgr.SafeTarget(1500) // error before newest ckpt
	if err != nil || target.Time != 1000 {
		t.Fatalf("target = %+v, err %v", target, err)
	}
	if _, err := r.mgr.SafeTarget(500); err == nil {
		t.Error("error predating both checkpoints must fail (only two retained)")
	}
}

func TestAmnesicOmissionAndRecomputation(t *testing.T) {
	r := newRig(t, Global, true, 1)
	// Interval 1: associated stores produce recomputable values.
	r.assocStore(0, 10, 42)
	r.assocStore(0, 11, 43)
	r.store(0, 12, 44) // plain store: not omittable
	r.establish(t, 1000, 1)
	want := snapshotMem(r.sys, 64)

	// Interval 2: first stores to 10..12 trigger logging; 10 and 11 are
	// omitted (their old values 42, 43 are recomputable).
	r.store(0, 10, 0)
	r.store(0, 11, 0)
	r.store(0, 12, 0)
	st := r.mgr.Stats()
	if st.OmittedWords != 2 {
		t.Fatalf("omitted = %d, want 2 (stats %+v)", st.OmittedWords, st)
	}
	if st.LoggedWords != 3+1 { // interval 1 logged 3 (old values all 0), interval 2 logged word 12
		t.Fatalf("logged = %d, want 4 (stats %+v)", st.LoggedWords, st)
	}

	target, err := r.mgr.SafeTarget(1500)
	if err != nil {
		t.Fatal(err)
	}
	info, err := r.mgr.Rollback(target, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkMem(t, r.sys, want)
	if info.RecomputedValues != 2 {
		t.Errorf("recomputed = %d, want 2", info.RecomputedValues)
	}
	if info.RecomputeCycles[0] <= 0 {
		t.Error("recompute cycles not attributed to core 0")
	}
	if r.sys.ReadWord(10) != 42 || r.sys.ReadWord(11) != 43 {
		t.Errorf("amnesic restore wrong: %d, %d", r.sys.ReadWord(10), r.sys.ReadWord(11))
	}
}

func TestAmnesicTwoIntervalRollback(t *testing.T) {
	r := newRig(t, Global, true, 1)
	r.assocStore(0, 10, 7)
	r.establish(t, 1000, 1)
	want := snapshotMem(r.sys, 64)
	r.store(0, 10, 8) // omits 7 amnesically into interval-2 log
	r.establish(t, 2000, 1)
	r.store(0, 10, 9)

	// Error at 1500 (before ckpt 2's establishment): must roll past both
	// logs to ckpt 1, recomputing 7.
	target, err := r.mgr.SafeTarget(1500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.mgr.Rollback(target, 1); err != nil {
		t.Fatal(err)
	}
	checkMem(t, r.sys, want)
	if r.sys.ReadWord(10) != 7 {
		t.Fatalf("mem[10] = %d, want recomputed 7", r.sys.ReadWord(10))
	}
}

func TestStaleAssociationNotOmitted(t *testing.T) {
	r := newRig(t, Global, true, 1)
	r.assocStore(0, 10, 42)
	r.store(0, 10, 55) // unassociated overwrite: record is stale
	r.establish(t, 1000, 1)
	r.store(0, 10, 0) // first store of interval 2: old value 55 ≠ 42 → logged
	st := r.mgr.Stats()
	if st.OmittedWords != 0 {
		t.Fatalf("stale value omitted: %+v", st)
	}
	target, _ := r.mgr.SafeTarget(1500)
	r.mgr.Rollback(target, 1)
	if r.sys.ReadWord(10) != 55 {
		t.Errorf("mem[10] = %d, want 55", r.sys.ReadWord(10))
	}
}

func TestIntervalStatsRecorded(t *testing.T) {
	r := newRig(t, Global, true, 1)
	r.assocStore(0, 10, 1)
	r.store(0, 20, 2)
	r.establish(t, 1000, 1)
	r.store(0, 10, 3) // omits
	r.store(0, 20, 4) // logs
	r.store(0, 21, 5) // logs
	r.establish(t, 2000, 1)
	ivs := r.mgr.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d, want 2", len(ivs))
	}
	if ivs[0].Logged != 2 || ivs[0].Omitted != 0 {
		t.Errorf("interval 0 = %+v", ivs[0])
	}
	if ivs[1].Logged != 2 || ivs[1].Omitted != 1 {
		t.Errorf("interval 1 = %+v", ivs[1])
	}
	if ivs[1].Size() != 3 {
		t.Errorf("interval 1 size = %d", ivs[1].Size())
	}
}

func TestLocalEstablishGroups(t *testing.T) {
	r := newRig(t, Local, false, 4)
	// Cores 0,1 communicate; 2 and 3 are independent.
	r.store(0, 0, 1)
	r.sys.Load(1, 0)
	r.store(2, 1024, 2)
	info := r.establish(t, 1000, 4)
	if len(info.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(info.Groups))
	}
	if info.Groups[0].Members[0] != 0b0011 || info.Groups[0].Cores != 2 {
		t.Errorf("group 0 = %+v", info.Groups[0])
	}
	// Each group flushed only its own dirty data.
	if info.Groups[0].FlushedWords == 0 {
		t.Error("communicating group flushed nothing")
	}
	if info.Groups[2].FlushedWords != 0 { // core 3 wrote nothing
		t.Errorf("idle core flushed %d words", info.Groups[2].FlushedWords)
	}
}

func TestGlobalEstablishSingleGroup(t *testing.T) {
	r := newRig(t, Global, false, 4)
	r.store(0, 0, 1)
	info := r.establish(t, 1000, 4)
	if len(info.Groups) != 1 || info.Groups[0].Cores != 4 {
		t.Fatalf("groups = %+v", info.Groups)
	}
	if info.Groups[0].ArchWords != 4*(isa.NumRegs+1) {
		t.Errorf("arch words = %d", info.Groups[0].ArchWords)
	}
}

func TestRollbackRejectsUnretainedTarget(t *testing.T) {
	r := newRig(t, Global, false, 1)
	old := r.mgr.Current()
	r.establish(t, 1000, 1)
	r.establish(t, 2000, 1)
	r.establish(t, 3000, 1) // old (seq 0) no longer retained
	if _, err := r.mgr.Rollback(old, 1); err == nil {
		t.Error("rollback to unretained snapshot must fail")
	}
}

func TestRecoveryResetsLogsAndOmissionState(t *testing.T) {
	r := newRig(t, Global, true, 1)
	r.assocStore(0, 10, 42)
	r.establish(t, 1000, 1)
	r.store(0, 10, 1)
	target, _ := r.mgr.SafeTarget(1500)
	r.mgr.Rollback(target, 1)
	if r.mgr.Stats().Recoveries != 1 {
		t.Error("recovery not counted")
	}
	// After recovery the AddrMap is reset: the same old value can no
	// longer be omitted until re-associated.
	r.store(0, 10, 2)
	if r.mgr.Stats().OmittedWords != 1 { // only the pre-recovery omission
		t.Errorf("post-recovery omission happened: %+v", r.mgr.Stats())
	}
	// And rollback to the restored checkpoint still works.
	target2, err := r.mgr.SafeTarget(1600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.mgr.Rollback(target2, 1); err != nil {
		t.Fatal(err)
	}
	if r.sys.ReadWord(10) != 42 {
		t.Errorf("mem[10] = %d, want 42", r.sys.ReadWord(10))
	}
}

func TestInlineLogEnergyCheaperWhenOmitted(t *testing.T) {
	// The amnesic path must not charge the DRAM log write.
	r := newRig(t, Global, true, 1)
	r.assocStore(0, 10, 42)
	r.establish(t, 1000, 1)
	before := r.meter.Count(energy.DRAMWrite)
	r.store(0, 10, 1) // omitted
	if got := r.meter.Count(energy.DRAMWrite) - before; got != 0 {
		t.Errorf("omitted first store charged %d DRAM writes", got)
	}
	r.store(0, 20, 2) // logged
	if got := r.meter.Count(energy.DRAMWrite) - before; got != 2 {
		t.Errorf("logged first store charged %d DRAM writes, want 2", got)
	}
}

func TestStallAsymmetry(t *testing.T) {
	r := newRig(t, Global, true, 1)
	r.assocStore(0, 10, 42)
	r.establish(t, 1000, 1)
	old, _, _ := r.sys.Store(0, 10, 1)
	if got := r.mgr.OnFirstStore(0, 10, old); got != OmitStallCycles {
		t.Errorf("omit stall = %d", got)
	}
	old, _, _ = r.sys.Store(0, 20, 1)
	if got := r.mgr.OnFirstStore(0, 20, old); got != InlineLogStallCycles {
		t.Errorf("log stall = %d", got)
	}
}
