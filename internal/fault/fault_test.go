package fault

import (
	"math"
	"testing"
)

func TestUniformSpacing(t *testing.T) {
	s := Uniform(3, 4000, 10)
	want := []int64{1000, 2000, 3000}
	if len(s.Times) != 3 {
		t.Fatalf("times = %v", s.Times)
	}
	for i, w := range want {
		if s.Times[i] != w {
			t.Errorf("Times[%d] = %d, want %d", i, s.Times[i], w)
		}
	}
}

func TestPendingConsume(t *testing.T) {
	s := Uniform(2, 300, 7)
	occur, detect, ok := s.Pending()
	if !ok || occur != 100 || detect != 107 {
		t.Fatalf("Pending = %d,%d,%v", occur, detect, ok)
	}
	s.Consume()
	occur, _, ok = s.Pending()
	if !ok || occur != 200 {
		t.Fatalf("second Pending = %d,%v", occur, ok)
	}
	if s.Remaining() != 1 {
		t.Errorf("Remaining = %d", s.Remaining())
	}
	s.Consume()
	if _, _, ok := s.Pending(); ok {
		t.Error("Pending after exhausting schedule")
	}
}

func TestConsumeEmptyPanics(t *testing.T) {
	s := Uniform(0, 100, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Consume()
}

func TestNilScheduleSafe(t *testing.T) {
	var s *Schedule
	if _, _, ok := s.Pending(); ok {
		t.Error("nil schedule pending")
	}
	if s.Remaining() != 0 {
		t.Error("nil schedule remaining")
	}
	if err := s.Validate(100, 2); err != nil {
		t.Error(err)
	}
}

func TestValidateDetectionLatencyBound(t *testing.T) {
	s := Uniform(1, 1000, 500)
	if err := s.Validate(400, 2); err == nil {
		t.Error("latency > period must fail validation")
	}
	if err := s.Validate(600, 2); err != nil {
		t.Errorf("latency < period must validate: %v", err)
	}
}

func TestValidateRetentionScalesLatencyBound(t *testing.T) {
	// With 4 retained checkpoints the tolerable latency is 3 periods.
	s := Uniform(1, 1000, 1100)
	if err := s.Validate(400, 2); err == nil {
		t.Error("latency > period must fail at retention 2")
	}
	if err := s.Validate(400, 4); err != nil {
		t.Errorf("retention 4 tolerates latency < 3 periods: %v", err)
	}
	if err := s.Validate(300, 1); err == nil {
		t.Error("retention < 2 must fail validation")
	}
}

func TestRelativeErrorRateFig1(t *testing.T) {
	if RelativeErrorRate(0) != 1 {
		t.Errorf("generation 0 rate = %v, want 1", RelativeErrorRate(0))
	}
	// Monotonic growth, roughly 2.16x per generation.
	prev := 1.0
	for g := 1; g <= 8; g++ {
		r := RelativeErrorRate(g)
		if r <= prev {
			t.Fatalf("rate not increasing at generation %d", g)
		}
		if math.Abs(r/prev-2.16) > 1e-9 {
			t.Fatalf("growth factor = %v, want 2.16", r/prev)
		}
		prev = r
	}
}
