// Package fault models the paper's fail-stop error model (§II-A): errors
// corrupt core state but never data memory or checkpoint logs (assumed
// ECC-protected); detection lags occurrence by a bounded error-detection
// latency that never exceeds the checkpoint period, so retaining the two
// most recent checkpoints always suffices for recovery (Fig. 2).
package fault

import (
	"fmt"
	"math"
)

// Schedule is a deterministic error schedule over a run. Errors are
// uniformly distributed over the (estimated) region-of-interest execution
// time, as in the paper's evaluation (§V-D2).
type Schedule struct {
	// Times are the error occurrence times in cycles, ascending.
	Times []int64
	// DetectLatency is the error-detection latency in cycles.
	DetectLatency int64

	next int
}

// Uniform returns a schedule of n errors uniformly distributed over
// [0, horizon): error i occurs at (i+1)*horizon/(n+1).
func Uniform(n int, horizon, detectLatency int64) *Schedule {
	return UniformIn(n, 0, horizon, detectLatency)
}

// UniformIn returns a schedule of n errors uniformly distributed over
// [start, end) — used to confine errors to the region of interest.
func UniformIn(n int, start, end, detectLatency int64) *Schedule {
	s := &Schedule{DetectLatency: detectLatency}
	for i := 1; i <= n; i++ {
		s.Times = append(s.Times, start+int64(i)*(end-start)/int64(n+1))
	}
	return s
}

// Pending returns the occurrence and detection time of the next unconsumed
// error, if any.
func (s *Schedule) Pending() (occur, detect int64, ok bool) {
	if s == nil || s.next >= len(s.Times) {
		return 0, 0, false
	}
	t := s.Times[s.next]
	return t, t + s.DetectLatency, true
}

// Consume marks the next error handled.
func (s *Schedule) Consume() {
	if s.next >= len(s.Times) {
		panic("fault: Consume with no pending error")
	}
	s.next++
}

// Remaining returns the number of unconsumed errors.
func (s *Schedule) Remaining() int {
	if s == nil {
		return 0
	}
	return len(s.Times) - s.next
}

// Validate checks the invariant the recovery scheme relies on (§II-A,
// Fig. 2): with `retained` checkpoints kept, the oldest safe roll-back
// target is retained-1 periods in the past, so the detection latency must
// not exceed (retained-1) checkpoint periods. The paper's scheme retains
// two checkpoints (latency ≤ one period); deeper-retention strategies
// (tiered) relax the bound proportionally.
func (s *Schedule) Validate(periodCycles int64, retained int) error {
	if s == nil {
		return nil
	}
	if retained < 2 {
		return fmt.Errorf("fault: retention %d cannot recover (need ≥ 2 checkpoints)", retained)
	}
	if bound := int64(retained-1) * periodCycles; s.DetectLatency > bound {
		return fmt.Errorf("fault: detection latency %d exceeds %d retained period(s) (%d cycles); the safe checkpoint could age out",
			s.DetectLatency, retained-1, bound)
	}
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i] < s.Times[i-1] {
			return fmt.Errorf("fault: error times not ascending at %d", i)
		}
	}
	return nil
}

// RelativeErrorRate reproduces Fig. 1: the relative component error rate
// across technology generations, assuming 8% degradation per bit per
// generation with the per-component bit count doubling each generation
// (Borkar [10]): rate(g) = (1.08 * 2)^g relative to generation 0.
func RelativeErrorRate(generation int) float64 {
	if generation < 0 {
		panic("fault: negative generation")
	}
	return math.Pow(1.08*2, float64(generation))
}
