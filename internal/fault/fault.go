// Package fault models the paper's fail-stop error model (§II-A): errors
// corrupt core state but never data memory or checkpoint logs (assumed
// ECC-protected); detection lags occurrence by a bounded error-detection
// latency that never exceeds the checkpoint period, so retaining the two
// most recent checkpoints always suffices for recovery (Fig. 2).
package fault

import (
	"fmt"
	"math"
)

// Schedule is a deterministic error schedule over a run. Errors are
// uniformly distributed over the (estimated) region-of-interest execution
// time, as in the paper's evaluation (§V-D2).
type Schedule struct {
	// Times are the error occurrence times in cycles, ascending.
	Times []int64
	// DetectLatency is the error-detection latency in cycles.
	DetectLatency int64

	next int
}

// Uniform returns a schedule of n errors uniformly distributed over
// [0, horizon): error i occurs at (i+1)*horizon/(n+1).
func Uniform(n int, horizon, detectLatency int64) *Schedule {
	return UniformIn(n, 0, horizon, detectLatency)
}

// UniformIn returns a schedule of n errors uniformly distributed over
// [start, end) — used to confine errors to the region of interest.
func UniformIn(n int, start, end, detectLatency int64) *Schedule {
	s := &Schedule{DetectLatency: detectLatency}
	for i := 1; i <= n; i++ {
		s.Times = append(s.Times, start+int64(i)*(end-start)/int64(n+1))
	}
	return s
}

// Pending returns the occurrence and detection time of the next unconsumed
// error, if any.
func (s *Schedule) Pending() (occur, detect int64, ok bool) {
	if s == nil || s.next >= len(s.Times) {
		return 0, 0, false
	}
	t := s.Times[s.next]
	return t, t + s.DetectLatency, true
}

// Consume marks the next error handled.
func (s *Schedule) Consume() {
	if s.next >= len(s.Times) {
		panic("fault: Consume with no pending error")
	}
	s.next++
}

// Remaining returns the number of unconsumed errors.
func (s *Schedule) Remaining() int {
	if s == nil {
		return 0
	}
	return len(s.Times) - s.next
}

// Validate checks the invariant the recovery scheme relies on: the
// detection latency must not exceed the checkpoint period (§II-A).
func (s *Schedule) Validate(periodCycles int64) error {
	if s == nil {
		return nil
	}
	if s.DetectLatency > periodCycles {
		return fmt.Errorf("fault: detection latency %d exceeds checkpoint period %d; two retained checkpoints would not suffice",
			s.DetectLatency, periodCycles)
	}
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i] < s.Times[i-1] {
			return fmt.Errorf("fault: error times not ascending at %d", i)
		}
	}
	return nil
}

// RelativeErrorRate reproduces Fig. 1: the relative component error rate
// across technology generations, assuming 8% degradation per bit per
// generation with the per-component bit count doubling each generation
// (Borkar [10]): rate(g) = (1.08 * 2)^g relative to generation 0.
func RelativeErrorRate(generation int) float64 {
	if generation < 0 {
		panic("fault: negative generation")
	}
	return math.Pow(1.08*2, float64(generation))
}
