// Package vet is the repository's Go-level invariant suite: custom static
// analyzers that prove, at compile time, properties the simulator otherwise
// enforces only with runtime tests and fuzz oracles — bit-identical
// determinism, allocation-free hot paths, speculative-state isolation,
// observer purity and memoisation-key completeness.
//
// The suite is annotation-driven: source opts into each invariant with
// //acr: directives (see annotations.go for the grammar), and the analyzers
// check every opted-in entity across the whole program. cmd/acrvet is the
// multichecker CLI; the hygiene analyzer validates the annotation grammar
// itself.
//
// The implementation is deliberately standard-library only (go/parser +
// go/types with the compiler source importer): the repository has no
// third-party dependencies, and its static tooling keeps it that way.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run receives the whole Program:
// several invariants (call closures, interface implementations) are
// cross-package by nature.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) []Diagnostic
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NoAllocAnalyzer,
		SpecSafetyAnalyzer,
		ObserverAnalyzer,
		MemoKeyAnalyzer,
		HygieneAnalyzer,
	}
}

// ByName returns the named analyzer or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over prog and returns the findings sorted by
// position then analyzer name.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		diags = append(diags, a.Run(prog)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// diag builds a Diagnostic anchored at pos.
func diag(prog *Program, name string, pos token.Pos, format string, args ...any) Diagnostic {
	p := prog.Fset.Position(pos)
	return Diagnostic{
		Analyzer: name,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// pkgPathOf returns the package path an object was declared in, or "" for
// builtins and universe objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// rootIdent unwraps an lvalue expression (selectors, indexing, derefs,
// parens) to its base identifier: the object that owns the written memory,
// as far as syntax can tell. Returns nil when the base is not an identifier
// (e.g. a call result or composite literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// useObj resolves an identifier to its object through uses then defs.
func useObj(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions and calls through function values.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := useObj(pkg, fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: fmt.Sprintf.
		if fn, ok := useObj(pkg, fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isConversion reports whether call is a type conversion rather than a
// function call.
func isConversion(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pkg *Package, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := useObj(pkg, id).(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// funcName renders fn for diagnostics: pkg.Name or (pkg.Recv).Name.
func funcName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// enclosingFunc returns the innermost FuncDecl containing pos in file.
func enclosingFunc(pkg *Package, file *ast.File, pos token.Pos) (*ast.FuncDecl, *types.Func) {
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Pos() <= pos && pos <= fd.End() {
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			return fd, fn
		}
	}
	return nil, nil
}

// isLocalTo reports whether obj is declared inside the function declaration
// fd — a local variable, parameter, receiver or named result.
func isLocalTo(obj types.Object, fd *ast.FuncDecl) bool {
	return obj != nil && fd.Pos() <= obj.Pos() && obj.Pos() <= fd.End()
}

// isPkgLevelVar reports whether obj is a package-level variable.
func isPkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// Local reports whether path belongs to the analyzed module (as opposed to
// the standard library).
func (p *Program) Local(path string) bool {
	return path == p.Module || strings.HasPrefix(path, p.Module+"/")
}
