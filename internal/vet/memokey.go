package vet

import (
	"go/ast"
	"go/types"
)

// MemoKeyAnalyzer mechanizes the memoisation-key completeness rules the
// bench cache depends on (the PR 5 SimWorkers precedent): a configuration
// knob either participates in the memo key, or it is explicitly declared
// outside it — never silently in between, where a new field can split the
// cache (two spellings of one configuration) or poison it (one cell served
// for two genuinely different configurations).
//
// Three annotations drive it:
//
//   - //acr:memo-key on the key struct: every field, recursively, must be
//     a pure value — basic types, arrays and structs of them. A pointer,
//     slice, map, interface, chan or func field compares by reference
//     identity, so semantically equal keys would miss (split) the cache.
//   - //acr:memo-spec M on the configuration struct: every field must be
//     inside the key — embedded wholesale in a //acr:memo-key struct,
//     mirrored there by name and type, or read by the canonicaliser method
//     M — or carry //acr:memo-exempt. An exempt field must additionally be
//     assigned in M: canonicalisation is what guarantees an
//     outside-the-key field cannot split the cache.
//   - //acr:memo-cache on the struct owning the cache: every exported
//     field (a driver knob) must be //acr:memo-exempt, the reviewed
//     declaration that the knob provably does not change results.
var MemoKeyAnalyzer = &Analyzer{
	Name: "memokey",
	Doc:  "prove memo-key completeness for //acr:memo-spec, //acr:memo-key and //acr:memo-cache structs",
	Run:  runMemoKey,
}

func runMemoKey(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, tn := range prog.Ann.AnnotatedTypes(prog, "memo-key") {
		diags = append(diags, memoKeyPurity(prog, tn)...)
	}
	for _, tn := range prog.Ann.AnnotatedTypes(prog, "memo-cache") {
		diags = append(diags, memoCacheFields(prog, tn)...)
	}
	for _, tn := range prog.Ann.AnnotatedTypes(prog, "memo-spec") {
		diags = append(diags, memoSpecFields(prog, tn)...)
	}
	return diags
}

// memoKeyPurity flags reference-identity fields anywhere inside a
// //acr:memo-key struct.
func memoKeyPurity(prog *Program, tn *types.TypeName) []Diagnostic {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var diags []Diagnostic
	var walk func(st *types.Struct, path string, at *types.Var)
	seen := make(map[*types.Struct]bool)
	walk = func(st *types.Struct, path string, at *types.Var) {
		if seen[st] {
			return
		}
		seen[st] = true
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			name := path + f.Name()
			pos := f.Pos()
			if at != nil {
				pos = at.Pos() // anchor nested findings at the outer field
			}
			anchor := f
			if at != nil {
				anchor = at
			}
			switch u := f.Type().Underlying().(type) {
			case *types.Basic:
			case *types.Struct:
				walk(u, name+".", anchor)
			case *types.Array:
				if !pureValue(u.Elem()) {
					diags = append(diags, diag(prog, "memokey", pos,
						"memo-key field %s: array element %s compares by reference identity; equal keys would miss the cache", name, u.Elem()))
				}
			default:
				diags = append(diags, diag(prog, "memokey", pos,
					"memo-key field %s has reference type %s: two equal configurations would occupy (or miss) distinct cache cells", name, f.Type()))
			}
		}
	}
	walk(st, tn.Name()+".", nil)
	return diags
}

func pureValue(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return true
	case *types.Array:
		return pureValue(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !pureValue(u.Field(i).Type()) {
				return false
			}
		}
		return true
	}
	return false
}

// memoCacheFields requires every exported field of a //acr:memo-cache
// struct to be //acr:memo-exempt: exported fields are driver knobs, and a
// knob outside the memo key must be declared (and reviewed) as
// result-invariant.
func memoCacheFields(prog *Program, tn *types.TypeName) []Diagnostic {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var diags []Diagnostic
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue // cache machinery (the map, the lock, reports)
		}
		if !prog.Ann.FieldHas(f, "memo-exempt") {
			diags = append(diags, diag(prog, "memokey", f.Pos(),
				"%s.%s is a knob on the memo-cache owner but outside the memo key: move it into the spec or annotate //acr:memo-exempt with the result-invariance argument",
				tn.Name(), f.Name()))
		}
	}
	return diags
}

// memoSpecFields checks the configuration struct against its canonicaliser
// and the key structs of the same package.
func memoSpecFields(prog *Program, tn *types.TypeName) []Diagnostic {
	ann, _ := prog.Ann.TypeAnn(tn, "memo-spec")
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var diags []Diagnostic
	canonName := ann.Arg
	reads, writes, haveCanon := canonicaliserFieldUse(prog, tn, canonName)
	if !haveCanon && canonName != "" {
		diags = append(diags, diag(prog, "memokey", ann.Pos,
			"//acr:memo-spec names canonicaliser %s, but %s has no such method", canonName, tn.Name()))
	}

	// Key coverage: is the spec embedded (by value) in a memo-key struct,
	// and which key fields mirror spec fields by name?
	embedded := false
	keyFields := make(map[string]types.Type)
	for _, keyTN := range prog.Ann.AnnotatedTypes(prog, "memo-key") {
		if keyTN.Pkg() != tn.Pkg() {
			continue
		}
		kst, ok := keyTN.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < kst.NumFields(); i++ {
			f := kst.Field(i)
			if types.Identical(f.Type(), tn.Type()) {
				embedded = true
			}
			keyFields[f.Name()] = f.Type()
		}
	}

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if prog.Ann.FieldHas(f, "memo-exempt") {
			if haveCanon && !writes[f.Name()] {
				diags = append(diags, diag(prog, "memokey", f.Pos(),
					"%s.%s is //acr:memo-exempt but %s never canonicalises it: two spellings of one configuration would split the cache",
					tn.Name(), f.Name(), canonName))
			}
			continue
		}
		inKey := embedded || reads[f.Name()]
		if !inKey {
			if kt, ok := keyFields[f.Name()]; ok && types.Identical(kt, f.Type()) {
				inKey = true
			}
		}
		if !inKey {
			diags = append(diags, diag(prog, "memokey", f.Pos(),
				"%s.%s reaches neither the memo key nor canonicaliser %s: a run keyed without it poisons the cache (add it to the key or annotate //acr:memo-exempt)",
				tn.Name(), f.Name(), canonName))
		}
	}
	return diags
}

// canonicaliserFieldUse returns the spec fields read and assigned in the
// canonicaliser method's body.
func canonicaliserFieldUse(prog *Program, tn *types.TypeName, method string) (reads, writes map[string]bool, found bool) {
	reads, writes = make(map[string]bool), make(map[string]bool)
	if method == "" {
		return reads, writes, false
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, tn.Pkg(), method)
	fn, ok := obj.(*types.Func)
	if !ok {
		return reads, writes, false
	}
	fd, pkg := prog.Decl(fn)
	if fd == nil || fd.Body == nil {
		return reads, writes, false
	}
	specFields := make(map[*types.Var]bool)
	if st, ok := tn.Type().Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			specFields[st.Field(i)] = true
		}
	}
	mark := func(e ast.Expr, m map[string]bool) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if v, ok := useObj(pkg, sel.Sel).(*types.Var); ok && specFields[v] {
			m[v.Name()] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs, writes)
			}
			for _, rhs := range n.Rhs {
				markReads(pkg, rhs, specFields, reads)
			}
		case *ast.SelectorExpr:
			mark(n, reads)
		}
		return true
	})
	return reads, writes, true
}

func markReads(pkg *Package, e ast.Expr, specFields map[*types.Var]bool, reads map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if v, ok := useObj(pkg, sel.Sel).(*types.Var); ok && specFields[v] {
				reads[v.Name()] = true
			}
		}
		return true
	})
}
