package vet

import (
	"go/ast"
	"go/types"
)

// SpecSafetyAnalyzer checks the speculative-execution confinement contract
// of the parallel engine (PR 5): code annotated //acr:spec-safe — the
// closure reachable from cpu.Core.SpecStep, the mem.SpecView methods and
// the tracker's Begin/Commit/AbortSpec round protocol — runs on worker
// goroutines against core-private state, so it must not write any
// package-level variable and may only call functions that are themselves
// //acr:spec-safe (or allowlisted pure standard library).
//
// Calls through interfaces are resolved to the interface method, so a
// //acr:spec-safe annotation on the interface type (cpu.SpecHooks) vouches
// for every implementation — each implementation carries its own
// annotation and is checked independently. Calls through plain function
// values cannot be resolved statically and are flagged unless the line
// carries //acr:spec-ok with the justification.
//
// The dynamic counterpart of this analyzer is the conflict-oracle fuzz in
// internal/sim: the static pass proves the write/call discipline, the fuzz
// proves bit-identity of the results.
var SpecSafetyAnalyzer = &Analyzer{
	Name: "specsafety",
	Doc:  "confine //acr:spec-safe code to private state and spec-safe callees",
	Run:  runSpecSafety,
}

// specUnsafeStd are stdlib packages whose calls touch process-shared state
// and are never acceptable during a speculative round.
var specUnsafeStd = map[string]bool{
	"os": true, "io": true, "bufio": true, "time": true,
	"math/rand": true, "math/rand/v2": true, "sync": true,
	"sync/atomic": true, "runtime": true,
}

func runSpecSafety(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil || !prog.Ann.FuncHas(fn, "spec-safe") {
					continue
				}
				diags = append(diags, specSafeFunc(prog, pkg, fd, fn)...)
			}
		}
	}
	return diags
}

func specSafeFunc(prog *Program, pkg *Package, fd *ast.FuncDecl, fn *types.Func) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		if prog.Ann.LineHas(prog.Fset, n.Pos(), "spec-ok") {
			return
		}
		args = append(args, funcName(fn))
		diags = append(diags, diag(prog, "specsafety", n.Pos(), format+" in //acr:spec-safe %s", args...))
	}

	checkWrite := func(e ast.Expr) {
		id := rootIdent(e)
		if id == nil {
			return
		}
		if obj := useObj(pkg, id); isPkgLevelVar(obj) {
			report(e, "write to package-level %s: speculative code must only touch core-private state", id.Name)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		case *ast.GoStmt:
			report(n, "go statement: speculative code must stay on its worker goroutine")
		case *ast.CallExpr:
			if inPanic(pkg, n) {
				return false
			}
			if builtinName(pkg, n) != "" || isConversion(pkg, n) {
				return true
			}
			callee := calleeFunc(pkg, n)
			if callee == nil {
				if _, isLit := ast.Unparen(n.Fun).(*ast.FuncLit); isLit {
					return true // literal called in place: body checked by this walk
				}
				report(n, "call through a function value cannot be proven spec-safe (annotate the line //acr:spec-ok with the confinement argument)")
				return true
			}
			path := pkgPathOf(callee)
			switch {
			case prog.Ann.FuncHas(callee, "spec-safe"):
			case !prog.Local(path):
				if specUnsafeStd[path] {
					report(n, "call to %s touches process-shared state", funcName(callee))
				}
			default:
				report(n, "call to %s, which is not //acr:spec-safe", funcName(callee))
			}
		}
		return true
	})
	return diags
}
