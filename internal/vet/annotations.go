package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The //acr: annotation grammar. A directive is a comment of the form
//
//	//acr:name [freeform reason or argument]
//
// written like a compiler directive (no space after //, so gofmt preserves
// it). Placement decides meaning:
//
//	//acr:deterministic      package clause doc — package joins the
//	                         determinism analyzer's scope
//	//acr:noalloc            func doc — function body is checked
//	                         allocation-free
//	//acr:spec-safe          func doc or interface type doc — function (or
//	                         every method of the interface) may run during a
//	                         speculative round
//	//acr:observer           interface type doc — implementations' interface
//	                         methods are checked side-effect-free
//	//acr:memo-spec M        struct type doc — memo-key completeness is
//	                         checked against canonicaliser method M
//	//acr:memo-key           struct type doc — struct must be a pure value
//	                         (deep comparability, no reference identity)
//	//acr:memo-cache         struct type doc — exported fields must be
//	                         //acr:memo-exempt
//	//acr:memo-exempt        struct field — field deliberately does not
//	                         contribute to the memoisation key
//	//acr:wallclock-ok       func doc or end of line — intentional wall-clock
//	                         use inside a deterministic package
//	//acr:maporder-ok        func doc or end of line — map-range order proven
//	                         not to reach any output
//	//acr:alloc-ok           end of line — allocation site inside a noalloc
//	                         function, justified (cold path, amortized
//	                         growth, proven non-escaping)
//	//acr:spec-ok            end of line — unresolvable call inside a
//	                         spec-safe function, justified
//
// The hygiene analyzer validates exactly this table: unknown names,
// misplaced directives and missing arguments are diagnostics.
const directivePrefix = "//acr:"

// Placement describes where a directive may legally appear.
type Placement uint8

// Placement bits.
const (
	OnPackage Placement = 1 << iota
	OnFunc
	OnType
	OnField
	OnLine
)

// directives is the registry of known annotation names. needsArg marks
// directives whose argument is load-bearing rather than a free-form reason.
var directives = map[string]struct {
	where    Placement
	needsArg bool
}{
	"deterministic": {where: OnPackage},
	"noalloc":       {where: OnFunc},
	"spec-safe":     {where: OnFunc | OnType},
	"observer":      {where: OnType},
	"memo-spec":     {where: OnType, needsArg: true},
	"memo-key":      {where: OnType},
	"memo-cache":    {where: OnType},
	"memo-exempt":   {where: OnField},
	"wallclock-ok":  {where: OnFunc | OnLine},
	"maporder-ok":   {where: OnFunc | OnLine},
	"alloc-ok":      {where: OnLine},
	"spec-ok":       {where: OnLine},
}

// Annotation is one parsed //acr: directive.
type Annotation struct {
	Name string // directive name ("noalloc")
	Arg  string // remainder after the name, trimmed
	Pos  token.Pos
	At   Placement // where it was found (a single bit)
}

// Annotations indexes every directive in a Program by the entity it
// annotates.
type Annotations struct {
	pkgs   map[string][]Annotation // package path → package-clause directives
	funcs  map[*types.Func][]Annotation
	types_ map[*types.TypeName][]Annotation
	fields map[*types.Var][]Annotation
	lines  map[string]map[int][]Annotation // filename → line → directives
	all    []placed                        // everything, for the hygiene pass
}

// placed is an Annotation plus its attachment context, kept for hygiene
// validation.
type placed struct {
	Annotation
	pkg *Package
	// target is the annotated object (nil for package and line context).
	target types.Object
}

func parseDirective(c *ast.Comment) (Annotation, bool) {
	rest, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return Annotation{}, false
	}
	name, arg, _ := strings.Cut(rest, " ")
	return Annotation{Name: name, Arg: strings.TrimSpace(arg), Pos: c.Pos()}, true
}

func groupDirectives(g *ast.CommentGroup) []Annotation {
	if g == nil {
		return nil
	}
	var anns []Annotation
	for _, c := range g.List {
		if a, ok := parseDirective(c); ok {
			anns = append(anns, a)
		}
	}
	return anns
}

// PackageHas reports whether the package clause of pkgPath carries name.
func (x *Annotations) PackageHas(pkgPath, name string) bool {
	for _, a := range x.pkgs[pkgPath] {
		if a.Name == name {
			return true
		}
	}
	return false
}

// FuncHas reports whether fn's declaration carries name (directly, or via a
// spec-safe interface whose method set fn belongs to — see indexing).
func (x *Annotations) FuncHas(fn *types.Func, name string) bool {
	for _, a := range x.funcs[fn] {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Func returns fn's directives.
func (x *Annotations) Func(fn *types.Func) []Annotation { return x.funcs[fn] }

// TypeAnn returns the first directive named name on tn, if any.
func (x *Annotations) TypeAnn(tn *types.TypeName, name string) (Annotation, bool) {
	for _, a := range x.types_[tn] {
		if a.Name == name {
			return a, true
		}
	}
	return Annotation{}, false
}

// FieldHas reports whether struct field v carries name.
func (x *Annotations) FieldHas(v *types.Var, name string) bool {
	for _, a := range x.fields[v] {
		if a.Name == name {
			return true
		}
	}
	return false
}

// LineHas reports whether the source line holding pos carries an
// end-of-line directive name.
func (x *Annotations) LineHas(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	for _, a := range x.lines[p.Filename][p.Line] {
		if a.Name == name {
			return true
		}
	}
	return false
}

// indexAnnotations walks every file of prog once, classifying each //acr:
// directive by its syntactic attachment.
func indexAnnotations(prog *Program) *Annotations {
	x := &Annotations{
		pkgs:   make(map[string][]Annotation),
		funcs:  make(map[*types.Func][]Annotation),
		types_: make(map[*types.TypeName][]Annotation),
		fields: make(map[*types.Var][]Annotation),
		lines:  make(map[string]map[int][]Annotation),
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			claimed := make(map[*ast.CommentGroup]bool)
			x.indexFile(prog, pkg, f, claimed)
			// Every directive not claimed by a declaration is a line
			// directive for its own source line.
			for _, g := range f.Comments {
				if claimed[g] {
					continue
				}
				for _, a := range groupDirectives(g) {
					a.At = OnLine
					p := prog.Fset.Position(a.Pos)
					if x.lines[p.Filename] == nil {
						x.lines[p.Filename] = make(map[int][]Annotation)
					}
					x.lines[p.Filename][p.Line] = append(x.lines[p.Filename][p.Line], a)
					x.all = append(x.all, placed{Annotation: a, pkg: pkg})
				}
			}
		}
	}
	return x
}

func (x *Annotations) indexFile(prog *Program, pkg *Package, f *ast.File, claimed map[*ast.CommentGroup]bool) {
	claim := func(g *ast.CommentGroup, at Placement, target types.Object) []Annotation {
		if g == nil {
			return nil
		}
		claimed[g] = true
		anns := groupDirectives(g)
		for i := range anns {
			anns[i].At = at
			x.all = append(x.all, placed{Annotation: anns[i], pkg: pkg, target: target})
		}
		return anns
	}

	x.pkgs[pkg.Path] = append(x.pkgs[pkg.Path], claim(f.Doc, OnPackage, nil)...)

	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
			var target types.Object
			if fn != nil {
				target = fn
			}
			anns := claim(d.Doc, OnFunc, target)
			if fn != nil {
				x.funcs[fn] = append(x.funcs[fn], anns...)
			}
		case *ast.GenDecl:
			declAnns := groupDirectives(d.Doc)
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
				var target types.Object
				if tn != nil {
					target = tn
				}
				anns := claim(ts.Doc, OnType, target)
				anns = append(anns, claim(ts.Comment, OnType, target)...)
				// A doc on the GenDecl itself annotates a sole TypeSpec
				// (the common `// doc` + `type T struct` shape).
				if len(d.Specs) == 1 && len(declAnns) > 0 {
					anns = append(anns, claim(d.Doc, OnType, target)...)
				}
				if tn == nil {
					continue
				}
				x.types_[tn] = append(x.types_[tn], anns...)
				x.indexTypeSpec(prog, pkg, ts, tn, claim)
			}
		}
	}
}

func (x *Annotations) indexTypeSpec(prog *Program, pkg *Package, ts *ast.TypeSpec, tn *types.TypeName, claim func(*ast.CommentGroup, Placement, types.Object) []Annotation) {
	switch t := ts.Type.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			anns := claim(field.Doc, OnField, nil)
			anns = append(anns, claim(field.Comment, OnField, nil)...)
			if len(anns) == 0 {
				continue
			}
			idents := field.Names
			if len(idents) == 0 {
				// Embedded field: resolve the implicit name's object from
				// the struct type instead of the syntax.
				if st, ok := tn.Type().Underlying().(*types.Struct); ok {
					for i := 0; i < st.NumFields(); i++ {
						if st.Field(i).Embedded() && st.Field(i).Pos() == field.Type.Pos() {
							x.fields[st.Field(i)] = append(x.fields[st.Field(i)], anns...)
						}
					}
				}
				continue
			}
			for _, id := range idents {
				if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
					x.fields[v] = append(x.fields[v], anns...)
				}
			}
		}
	case *ast.InterfaceType:
		// A directive on an interface method attaches to the method object:
		// calls through the interface resolve to it, so annotating the
		// contract covers every call site (each implementation still carries
		// and is checked under its own annotation).
		for _, field := range t.Methods.List {
			for _, id := range field.Names {
				fn, ok := pkg.Info.Defs[id].(*types.Func)
				if !ok {
					continue
				}
				anns := claim(field.Doc, OnFunc, fn)
				anns = append(anns, claim(field.Comment, OnFunc, fn)...)
				x.funcs[fn] = append(x.funcs[fn], anns...)
			}
		}
		// A spec-safe interface marks each of its methods spec-safe: calls
		// through the interface are the engine's controlled injection
		// points, and every implementation is annotated (and so checked)
		// on its own.
		if _, ok := x.TypeAnn(tn, "spec-safe"); !ok {
			break
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
			ann := Annotation{Name: "spec-safe", Pos: ts.Pos(), At: OnFunc}
			for i := 0; i < iface.NumMethods(); i++ {
				x.funcs[iface.Method(i)] = append(x.funcs[iface.Method(i)], ann)
			}
		}
	}
}

// AnnotatedTypes returns every type annotated with name, in deterministic
// (package, position) order.
func (x *Annotations) AnnotatedTypes(prog *Program, name string) []*types.TypeName {
	var out []*types.TypeName
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, n := range scope.Names() {
			tn, ok := scope.Lookup(n).(*types.TypeName)
			if !ok {
				continue
			}
			if _, ok := x.TypeAnn(tn, name); ok {
				out = append(out, tn)
			}
		}
	}
	return out
}
