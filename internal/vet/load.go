package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit the analyzers
// inspect. Files holds the package's non-test sources with comments.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded set of packages sharing one FileSet, one type-checker
// universe (cross-package objects are pointer-identical) and one annotation
// index. Analyzers receive the whole Program: several invariants (spec-safe
// call closures, observer implementations) are inherently cross-package.
type Program struct {
	Fset   *token.FileSet
	Pkgs   []*Package // sorted by import path
	Module string     // module path of the loaded module

	// Ann indexes every //acr: annotation in the loaded sources.
	Ann *Annotations

	// decls maps function and method objects to their declarations, for
	// analyzers that follow type-checker objects back to syntax.
	decls map[*types.Func]*ast.FuncDecl
	// declPkg maps a declaration's function object to its Package.
	declPkg map[*types.Func]*Package
}

// Decl returns the declaration of fn and the package holding it, or nil if
// fn was not declared in the loaded sources (e.g. a stdlib function).
func (p *Program) Decl(fn *types.Func) (*ast.FuncDecl, *Package) {
	return p.decls[fn], p.declPkg[fn]
}

// Loader loads packages of one module from source, resolving intra-module
// imports recursively and standard-library imports through the compiler
// source importer — no export data, no go/packages, no network. That keeps
// the tool self-contained: the repository deliberately has no dependencies
// outside the standard library.
type Loader struct {
	Root   string // module root directory (holds go.mod)
	Module string // module path, e.g. "acr"

	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*Package
	order  []string // load completion order (dependencies first)
}

// NewLoader returns a loader for the module rooted at root. The module path
// is read from go.mod.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("vet: %w", err)
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("vet: no module directive in %s/go.mod", root)
	}
	l := &Loader{Root: root, Module: mod, loaded: make(map[string]*Package)}
	l.fset = token.NewFileSet()
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l, nil
}

// FindModuleRoot walks up from dir to the nearest directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("vet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import resolves an import path for the type checker: module-local paths
// load from source under Root, everything else delegates to the standard
// importer. This makes Loader a types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(path, l.Module)
	rel = strings.TrimPrefix(rel, "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("vet: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.loaded[path] = nil // cycle marker
	pkg, err := l.check(path, l.dirFor(path))
	if err != nil {
		delete(l.loaded, path)
		return nil, err
	}
	l.loaded[path] = pkg
	l.order = append(l.order, path)
	return pkg, nil
}

func (l *Loader) check(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("vet: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("vet: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("vet: %s: no Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: %s: %w", path, err)
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}

// expand resolves CLI-style patterns ("./...", "./internal/sim", import
// paths) into module package paths. Directories named testdata and hidden
// directories are skipped, matching the go tool.
func (l *Loader) expand(patterns []string) ([]string, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all" || pat == l.Module+"/...":
			err := filepath.WalkDir(l.Root, func(dir string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				base := filepath.Base(dir)
				if dir != l.Root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
					return filepath.SkipDir
				}
				entries, err := os.ReadDir(dir)
				if err != nil {
					return err
				}
				for _, e := range entries {
					if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
						rel, err := filepath.Rel(l.Root, dir)
						if err != nil {
							return err
						}
						if rel == "." {
							add(l.Module)
						} else {
							add(l.Module + "/" + filepath.ToSlash(rel))
						}
						break
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		case strings.HasPrefix(pat, "./"):
			rel := filepath.ToSlash(strings.TrimPrefix(pat, "./"))
			if rel == "" || rel == "." {
				add(l.Module)
			} else {
				add(l.Module + "/" + rel)
			}
		default:
			add(pat)
		}
	}
	return paths, nil
}

// Load type-checks the packages named by patterns (plus their module-local
// dependencies) and returns them as an analyzable Program. The returned
// Program contains exactly the matched packages; dependencies are loaded
// but only analyzed when they match too.
func (l *Loader) Load(patterns ...string) (*Program, error) {
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	matched := make(map[string]bool)
	for _, p := range paths {
		if _, err := l.loadPath(p); err != nil {
			return nil, err
		}
		matched[p] = true
	}
	var pkgs []*Package
	for _, p := range l.order {
		if matched[p] {
			pkgs = append(pkgs, l.loaded[p])
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return l.program(pkgs), nil
}

// Programs assembled by one loader share its FileSet and object identity,
// so annotations indexed from one Load call resolve against the next.
func (l *Loader) program(pkgs []*Package) *Program {
	prog := &Program{
		Fset:    l.fset,
		Pkgs:    pkgs,
		Module:  l.Module,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		declPkg: make(map[*types.Func]*Package),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					prog.decls[fn] = fd
					prog.declPkg[fn] = pkg
				}
			}
		}
	}
	prog.Ann = indexAnnotations(prog)
	return prog
}
