package vet_test

import (
	"testing"

	"acr/internal/vet"
	"acr/internal/vet/vettest"
)

// Each analyzer has a golden fixture package under testdata: seeded
// violations annotated with // want expectations next to clean idioms that
// must stay silent. The fixtures double as executable documentation of
// what each invariant means at the source level.

const fixture = "acr/internal/vet/testdata/"

func TestDeterminismFixture(t *testing.T) {
	vettest.Check(t, vet.DeterminismAnalyzer, fixture+"determinism")
}

func TestNoAllocFixture(t *testing.T) {
	vettest.Check(t, vet.NoAllocAnalyzer, fixture+"noalloc")
}

func TestSpecSafetyFixture(t *testing.T) {
	vettest.Check(t, vet.SpecSafetyAnalyzer, fixture+"specsafety")
}

func TestObserverFixture(t *testing.T) {
	// The interface and its implementations load as two packages so the
	// cross-package call-back rule is exercised as in the real repository.
	vettest.Check(t, vet.ObserverAnalyzer, fixture+"observer", fixture+"observer/impls")
}

func TestMemoKeyFixture(t *testing.T) {
	vettest.Check(t, vet.MemoKeyAnalyzer, fixture+"memokey")
}

func TestHygieneFixture(t *testing.T) {
	vettest.Check(t, vet.HygieneAnalyzer, fixture+"hygiene")
}
