package vet

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer proves the bit-identical-results invariant at the
// source level for packages annotated //acr:deterministic: no wall-clock
// reads, no math/rand, and no map-range loop whose body can reach program
// output (emission, telemetry, appends to state that outlives the loop) —
// Go randomizes map iteration order, so such a loop is a nondeterminism
// bug by construction. Intentional wall-clock sites (host-time driver
// diagnostics) opt out with //acr:wallclock-ok; a map-range loop whose
// order is proven immaterial opts out with //acr:maporder-ok.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock reads, math/rand and order-leaking map ranges in //acr:deterministic packages",
	Run:  runDeterminism,
}

// wallClockFuncs are the time-package entry points that read or depend on
// the host clock. Pure value plumbing (time.Duration arithmetic) is fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

func runDeterminism(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !prog.Ann.PackageHas(pkg.Path, "deterministic") {
			continue
		}
		for _, file := range pkg.Files {
			diags = append(diags, detFile(prog, pkg, file)...)
		}
	}
	return diags
}

func detFile(prog *Program, pkg *Package, file *ast.File) []Diagnostic {
	var diags []Diagnostic
	report := func(pos ast.Node, directive, format string, args ...any) {
		if prog.Ann.LineHas(prog.Fset, pos.Pos(), directive) {
			return
		}
		if fd, fn := enclosingFunc(pkg, file, pos.Pos()); fd != nil && fn != nil && prog.Ann.FuncHas(fn, directive) {
			return
		}
		diags = append(diags, diag(prog, "determinism", pos.Pos(), format, args...))
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := useObj(pkg, n.Sel)
			switch pkgPathOf(obj) {
			case "time":
				if fn, ok := obj.(*types.Func); ok && wallClockFuncs[fn.Name()] {
					report(n, "wallclock-ok",
						"call to time.%s in deterministic package %s (annotate //acr:wallclock-ok if host time never reaches simulated results)",
						fn.Name(), pkg.Types.Name())
				}
			case "math/rand", "math/rand/v2":
				report(n, "wallclock-ok",
					"use of %s.%s in deterministic package %s: seedless process-global randomness breaks bit-identical replay",
					obj.Pkg().Name(), obj.Name(), pkg.Types.Name())
			}
		case *ast.RangeStmt:
			t := pkg.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if leak := mapRangeLeak(prog, pkg, n); leak != "" {
				report(n, "maporder-ok",
					"map-range loop %s: iteration order is randomized, so the output depends on it (iterate a sorted key slice, or annotate //acr:maporder-ok with the order-independence argument)",
					leak)
			}
		}
		return true
	})
	return diags
}

// mapRangeLeak reports how a map-range body leaks iteration order into
// observable output, or "" when the body looks order-insensitive
// (commutative aggregation into locals).
func mapRangeLeak(prog *Program, pkg *Package, loop *ast.RangeStmt) string {
	leak := ""
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if leak != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pkg, n); fn != nil {
				path := pkgPathOf(fn)
				switch {
				case path == "fmt" || path == "os" || path == "io" || path == "bufio":
					leak = "emits through " + funcName(fn)
				case prog.Local(path) && pkg.Types.Path() != path && lastElem(path) == "telemetry":
					leak = "touches telemetry via " + funcName(fn)
				}
			}
			if builtinName(pkg, n) == "append" {
				// append whose destination outlives the loop accumulates
				// in iteration order.
				if len(n.Args) > 0 {
					if id := rootIdent(n.Args[0]); id != nil {
						obj := useObj(pkg, id)
						if obj != nil && !(loop.Pos() <= obj.Pos() && obj.Pos() <= loop.End()) {
							leak = "appends to " + id.Name + " declared outside the loop"
						}
					}
				}
			}
		case *ast.SendStmt:
			leak = "sends on a channel"
		}
		return true
	})
	return leak
}

func lastElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
