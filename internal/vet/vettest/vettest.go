// Package vettest is the golden-fixture harness for the acrvet analyzer
// suite. A fixture is an ordinary Go package under internal/vet/testdata
// (excluded from ./... expansion, so seeded violations never reach the
// repository gate) whose sources embed expectations as comments:
//
//	t.slots = append(t.slots, rec{}) // want "append may grow its backing array"
//
// A // want comment holds one quoted substring per expected diagnostic on
// its own line. For diagnostics anchored on positions that are themselves
// comments (directive-grammar findings), // want-next matches anywhere from
// the following line to the end of its own comment group — gofmt moves
// directive comments within a group, so a fixed offset would be brittle.
// Check fails the test on any diagnostic without a matching expectation
// and any expectation without a matching diagnostic — the fixture is
// golden in both directions.
package vettest

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"acr/internal/vet"
)

// loader is shared across fixture tests: programs assembled by one loader
// share its FileSet and type-checker universe, so the standard library is
// type-checked once per test binary rather than once per fixture.
var loader = sync.OnceValues(func() (*vet.Loader, error) {
	root, err := vet.FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return vet.NewLoader(root)
})

// expectation is one parsed // want clause, matching diagnostics in the
// line range [lineMin, lineMax] of file.
type expectation struct {
	file             string
	lineMin, lineMax int
	substr           string
	hit              bool
}

var quoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Check loads the fixture packages named by their import paths, runs
// exactly one analyzer over them and compares the findings against the
// embedded expectations.
func Check(t *testing.T, a *vet.Analyzer, paths ...string) {
	t.Helper()
	l, err := loader()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	prog, err := l.Load(paths...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", paths, err)
	}
	wants := collectWants(prog)
	for _, d := range vet.Run(prog, []*vet.Analyzer{a}) {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q: no %s diagnostic matched", w.file, w.lineMin, w.substr, a.Name)
		}
	}
}

// claim marks the first unhit expectation matching d and reports whether
// one existed.
func claim(wants []*expectation, d vet.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.File && w.lineMin <= d.Line && d.Line <= w.lineMax &&
			strings.Contains(d.Message, w.substr) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants parses the // want and // want-next comments of every
// matched package.
func collectWants(prog *vet.Program) []*expectation {
	var out []*expectation
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, g := range f.Comments {
				groupEnd := prog.Fset.Position(g.End()).Line
				for _, c := range g.List {
					next := false
					switch {
					case strings.HasPrefix(c.Text, "// want-next "):
						next = true
					case strings.HasPrefix(c.Text, "// want "):
					default:
						continue
					}
					p := prog.Fset.Position(c.Pos())
					lineMin, lineMax := p.Line, p.Line
					if next {
						lineMin, lineMax = p.Line+1, groupEnd
					}
					for _, q := range quoted.FindAllString(c.Text, -1) {
						s, err := strconv.Unquote(q)
						if err != nil {
							continue
						}
						out = append(out, &expectation{file: p.Filename, lineMin: lineMin, lineMax: lineMax, substr: s})
					}
				}
			}
		}
	}
	return out
}
