package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAllocAnalyzer checks functions annotated //acr:noalloc — the
// per-instruction hot paths that the PR 4 alloc-budget benchmarks protect
// dynamically — for source constructs that heap-allocate: make/new,
// growing append, composite literals whose address escapes, closures,
// goroutines, defers, map inserts, string concatenation and conversions,
// interface boxing, and calls into allocating formatting/string packages.
//
// The checks are conservative (escape analysis would stack-allocate some
// flagged sites); a site verified cold or non-escaping carries an
// end-of-line //acr:alloc-ok with the justification, which is itself part
// of the reviewed source. Subtrees under panic(...) are exempt: the panic
// path abandons the simulation, so its allocations are irrelevant.
var NoAllocAnalyzer = &Analyzer{
	Name: "noalloc",
	Doc:  "flag allocating constructs in //acr:noalloc functions",
	Run:  runNoAlloc,
}

// allocatingStd are stdlib packages whose exported API allocates on
// essentially every call; a noalloc function has no business calling them.
var allocatingStd = map[string]bool{
	"fmt": true, "strings": true, "strconv": true, "sort": true,
	"bytes": true, "errors": true,
}

func runNoAlloc(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil || !prog.Ann.FuncHas(fn, "noalloc") {
					continue
				}
				diags = append(diags, noAllocFunc(prog, pkg, fd, fn)...)
			}
		}
	}
	return diags
}

func noAllocFunc(prog *Program, pkg *Package, fd *ast.FuncDecl, fn *types.Func) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		if prog.Ann.LineHas(prog.Fset, n.Pos(), "alloc-ok") {
			return
		}
		args = append(args, funcName(fn))
		diags = append(diags, diag(prog, "noalloc", n.Pos(), format+" in //acr:noalloc %s", args...))
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if inPanic(pkg, n) {
				return false
			}
			switch builtinName(pkg, n) {
			case "make":
				report(n, "make allocates")
				return true
			case "new":
				report(n, "new allocates")
				return true
			case "append":
				report(n, "append may grow its backing array")
				return true
			}
			if isConversion(pkg, n) {
				to := pkg.Info.TypeOf(n)
				from := pkg.Info.TypeOf(n.Args[0])
				if to != nil && from != nil && conversionAllocates(to, from) {
					report(n, "conversion %s(%s) copies its operand", types.TypeString(to, types.RelativeTo(pkg.Types)), from)
				}
				return true
			}
			if callee := calleeFunc(pkg, n); callee != nil {
				if path := pkgPathOf(callee); allocatingStd[path] {
					report(n, "call to allocating stdlib %s", funcName(callee))
				}
			}
			diags = append(diags, boxedArgs(prog, pkg, fn, n)...)
		case *ast.CompositeLit:
			t := pkg.Info.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n, "slice literal allocates")
				case *types.Map:
					report(n, "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n, "&composite-literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pkg.Info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "string concatenation allocates")
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN {
				if t := pkg.Info.TypeOf(n.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "string concatenation allocates")
					}
				}
			}
			diags = append(diags, mapInsert(prog, pkg, fn, n)...)
			diags = append(diags, boxedAssign(prog, pkg, fn, n)...)
		case *ast.FuncLit:
			report(n, "closure may escape to the heap")
			return false // do not double-report the closure body
		case *ast.GoStmt:
			report(n, "go statement allocates a goroutine")
		case *ast.DeferStmt:
			report(n, "defer allocates its frame record")
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return diags
}

// inPanic reports whether call is the panic builtin or sits inside one:
// the panic path abandons the run, so its allocation cost is irrelevant.
func inPanic(pkg *Package, call *ast.CallExpr) bool {
	return builtinName(pkg, call) == "panic"
}

// mapInsert flags assignments through a map index: inserts may grow the
// table.
func mapInsert(prog *Program, pkg *Package, fn *types.Func, as *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	for _, lhs := range as.Lhs {
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		if t := pkg.Info.TypeOf(ix.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if !prog.Ann.LineHas(prog.Fset, lhs.Pos(), "alloc-ok") {
					diags = append(diags, diag(prog, "noalloc", lhs.Pos(),
						"map insert may grow the table in //acr:noalloc %s", funcName(fn)))
				}
			}
		}
	}
	return diags
}

// conversionAllocates reports conversions with an allocating copy:
// string <-> []byte/[]rune, and concrete -> interface.
func conversionAllocates(to, from types.Type) bool {
	if types.IsInterface(to) && !types.IsInterface(from) {
		return true
	}
	toB, toIsBasic := to.Underlying().(*types.Basic)
	_, fromIsSlice := from.Underlying().(*types.Slice)
	if toIsBasic && toB.Info()&types.IsString != 0 && fromIsSlice {
		return true
	}
	_, toIsSlice := to.Underlying().(*types.Slice)
	fromB, fromIsBasic := from.Underlying().(*types.Basic)
	if toIsSlice && fromIsBasic && fromB.Info()&types.IsString != 0 {
		return true
	}
	return false
}

// boxedArgs flags concrete values passed to interface-typed parameters:
// the conversion boxes the value on the heap.
func boxedArgs(prog *Program, pkg *Package, fn *types.Func, call *ast.CallExpr) []Diagnostic {
	sigT := pkg.Info.TypeOf(call.Fun)
	if sigT == nil {
		return nil
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var diags []Diagnostic
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no boxing
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		at := pkg.Info.TypeOf(arg)
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if prog.Ann.LineHas(prog.Fset, arg.Pos(), "alloc-ok") {
			continue
		}
		diags = append(diags, diag(prog, "noalloc", arg.Pos(),
			"argument boxes %s into interface %s in //acr:noalloc %s",
			types.TypeString(at, types.RelativeTo(pkg.Types)),
			types.TypeString(pt, types.RelativeTo(pkg.Types)), funcName(fn)))
	}
	return diags
}

// boxedAssign flags concrete-to-interface assignments.
func boxedAssign(prog *Program, pkg *Package, fn *types.Func, as *ast.AssignStmt) []Diagnostic {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	var diags []Diagnostic
	for i := range as.Lhs {
		lt := pkg.Info.TypeOf(as.Lhs[i])
		rt := pkg.Info.TypeOf(as.Rhs[i])
		if lt == nil || rt == nil || !types.IsInterface(lt) || types.IsInterface(rt) {
			continue
		}
		if b, ok := rt.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if prog.Ann.LineHas(prog.Fset, as.Pos(), "alloc-ok") {
			continue
		}
		diags = append(diags, diag(prog, "noalloc", as.Rhs[i].Pos(),
			"assignment boxes %s into interface %s in //acr:noalloc %s",
			types.TypeString(rt, types.RelativeTo(pkg.Types)),
			types.TypeString(lt, types.RelativeTo(pkg.Types)), funcName(fn)))
	}
	return diags
}
