package vet_test

import (
	"testing"

	"acr/internal/vet"
)

// TestRepositoryClean asserts the invariant the CI acrvet gate enforces:
// the full analyzer suite reports zero findings on the repository itself.
// A finding here means either a genuine invariant violation or an
// annotation that needs its justification reviewed — both block the merge.
func TestRepositoryClean(t *testing.T) {
	root, err := vet.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	l, err := vet.NewLoader(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	prog, err := l.Load("./...")
	if err != nil {
		t.Fatalf("type-checking repository: %v", err)
	}
	for _, d := range vet.Run(prog, vet.Analyzers()) {
		t.Errorf("%s", d)
	}
}
