package vet

import (
	"go/ast"
	"go/types"
)

// ObserverAnalyzer mechanizes the PR 3 observation contract: observation
// is strictly one-way. For every interface annotated //acr:observer
// (sim.Observer), each implementation's interface methods must not mutate
// anything but the implementing value itself — no package-level writes, no
// writes through non-receiver roots, and no calls back into the package
// that declares the interface (an observer that drives the machine it
// observes breaks the with-or-without-observation bit-identity the bench
// driver's replay guard asserts dynamically).
var ObserverAnalyzer = &Analyzer{
	Name: "observerpurity",
	Doc:  "prove //acr:observer implementations are one-way",
	Run:  runObserver,
}

func runObserver(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, ifaceTN := range prog.Ann.AnnotatedTypes(prog, "observer") {
		iface, ok := ifaceTN.Type().Underlying().(*types.Interface)
		if !ok {
			continue // hygiene flags the misplacement
		}
		for _, pkg := range prog.Pkgs {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() || tn == ifaceTN {
					continue
				}
				T := tn.Type()
				if types.IsInterface(T) {
					continue
				}
				impl := types.Implements(T, iface) || types.Implements(types.NewPointer(T), iface)
				if !impl {
					continue
				}
				diags = append(diags, observerImpl(prog, pkg, tn, ifaceTN, iface)...)
			}
		}
	}
	return diags
}

func observerImpl(prog *Program, pkg *Package, tn *types.TypeName, ifaceTN *types.TypeName, iface *types.Interface) []Diagnostic {
	var diags []Diagnostic
	for i := 0; i < iface.NumMethods(); i++ {
		im := iface.Method(i)
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pkg.Types, im.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		fd, declPkg := prog.Decl(fn)
		if fd == nil || fd.Body == nil {
			continue
		}
		diags = append(diags, observerMethod(prog, declPkg, fd, fn, tn, ifaceTN)...)
	}
	return diags
}

func observerMethod(prog *Program, pkg *Package, fd *ast.FuncDecl, fn *types.Func, tn, ifaceTN *types.TypeName) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		args = append(args, tn.Name(), ifaceTN.Name())
		diags = append(diags, diag(prog, "observerpurity", n.Pos(), format+" (%s implements //acr:observer %s)", args...))
	}

	checkWrite := func(e ast.Expr) {
		id := rootIdent(e)
		if id == nil {
			report(e, "write through a non-identifier lvalue cannot be proven observer-local")
			return
		}
		obj := useObj(pkg, id)
		if isPkgLevelVar(obj) {
			report(e, "observer writes package-level %s", id.Name)
			return
		}
		if !isLocalTo(obj, fd) {
			report(e, "observer writes %s, which is neither local nor the receiver", id.Name)
		}
	}

	ifacePkg := ifaceTN.Pkg()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		case *ast.CallExpr:
			if inPanic(pkg, n) {
				return false
			}
			callee := calleeFunc(pkg, n)
			if callee == nil {
				return true
			}
			// Calling back into the package that declares the observed
			// interface is driving the machine, unless the callee is a
			// value-receiver accessor (those cannot mutate the machine) or
			// the observer itself lives there.
			if callee.Pkg() == ifacePkg && tn.Pkg() != ifacePkg {
				if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
					if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
						return true
					}
				}
				report(n, "observer calls %s in the observed package %s", funcName(callee), ifacePkg.Name())
			}
		}
		return true
	})
	return diags
}
