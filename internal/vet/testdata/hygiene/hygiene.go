// Package hygiene is an acrvet fixture for the annotation-grammar checks:
// unknown names, misplaced directives, missing load-bearing arguments,
// duplicates, directive-specific target constraints and the spaced-prefix
// near-miss.
package hygiene

// Unknown carries a directive the registry does not know.
//
// want-next "unknown //acr: directive \"nosuch\""
//
//acr:nosuch
func Unknown() {}

// Misplaced carries a package-only directive on a function.
//
// want-next "//acr:deterministic is meaningless on a function declaration; it belongs on a package clause"
//
//acr:deterministic
func Misplaced() {}

// NoArg omits the load-bearing canonicaliser argument.
//
// want-next "//acr:memo-spec requires an argument"
//
//acr:memo-spec
type NoArg struct{ N int }

// Duplicated carries the same directive twice.
//
// want-next "duplicate //acr:noalloc"
//
//acr:noalloc
//acr:noalloc
func Duplicated() {}

// BadObserver puts the interface-only directive on a struct.
//
// want-next "//acr:observer on type BadObserver: only interface types take this directive"
//
//acr:observer
type BadObserver struct{ N int }

// BadKey puts a struct-only directive on a named slice.
//
// want-next "//acr:memo-key on type BadKey: only struct types take this directive"
//
//acr:memo-key
type BadKey []int

// NearMiss demonstrates the dangerous typo: a spaced prefix is an ordinary
// comment and would silently annotate nothing.
func NearMiss() {
	// want-next "is not a directive (write //acr:name with no spaces)"
	// acr:noalloc
	_ = 0
}

// Clean is a correctly annotated function the analyzer must accept.
//
//acr:noalloc
func Clean(x int) int { return x + 1 }
