// Package observer is an acrvet fixture: the observed machine side of the
// observer-purity contract. Implementations live in the impls subpackage so
// the call-back rule (an observer must not drive the package declaring the
// interface) is exercised cross-package, as in the real repository.
package observer

// Event is one emission of the observed machine.
type Event struct{ Kind, Detail int }

// Machine is the observed state.
type Machine struct {
	cycles int64
}

// Observer receives events; implementations must be strictly one-way.
//
//acr:observer
type Observer interface {
	OnEvent(e Event)
}

// Advance drives the machine: a pointer-receiver mutator that observers
// must not call.
func (m *Machine) Advance(n int64) { m.cycles += n }

// Cycles is a value-receiver accessor: it cannot mutate the machine, so
// observers may call it.
func (m Machine) Cycles() int64 { return m.cycles }
