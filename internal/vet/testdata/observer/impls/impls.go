// Package impls holds fixture implementations of the observer contract:
// one clean recorder and three ways to break one-way observation.
package impls

import fixture "acr/internal/vet/testdata/observer"

// total is package-level state a leaking observer accumulates into.
var total int64

// globalSlots is shared storage reachable through a function result.
var globalSlots = make([]int64, 4)

func sharedSlot() []int64 { return globalSlots }

// Recorder is a clean observer: it only touches its own fields.
type Recorder struct {
	events []fixture.Event
	n      int
}

// OnEvent implements fixture.Observer.
func (r *Recorder) OnEvent(e fixture.Event) {
	r.events = append(r.events, e)
	r.n++
}

// Leaker accumulates into package-level state.
type Leaker struct{}

// OnEvent implements fixture.Observer.
func (Leaker) OnEvent(e fixture.Event) {
	total += int64(e.Detail) // want "observer writes package-level total"
}

// Driver calls back into the observed package's mutator.
type Driver struct {
	m *fixture.Machine
}

// OnEvent implements fixture.Observer.
func (d *Driver) OnEvent(e fixture.Event) {
	d.m.Advance(1) // want "observer calls Machine.Advance in the observed package observer"
	_ = d.m.Cycles()
}

// Alias writes through an lvalue whose root is not an identifier.
type Alias struct{}

// OnEvent implements fixture.Observer.
func (Alias) OnEvent(e fixture.Event) {
	sharedSlot()[0] = int64(e.Kind) // want "write through a non-identifier lvalue cannot be proven observer-local"
}
