// Package noalloc is an acrvet fixture for the allocation-free analyzer:
// one function per family of allocating construct, plus the clean
// steady-state shape that must stay silent.
package noalloc

import "fmt"

type rec struct{ a, b int64 }

type table struct {
	slots []rec
	idx   map[int64]int32
	buf   []byte
}

// BadConstructs hits the builtin allocators.
//
//acr:noalloc
func BadConstructs(t *table, n int) {
	s := make([]rec, n) // want "make allocates"
	_ = s
	p := new(rec) // want "new allocates"
	_ = p
	t.slots = append(t.slots, rec{}) // want "append may grow its backing array"
	t.idx[7] = 1                     // want "map insert may grow the table"
}

// BadBoxing converts concrete values to interfaces.
//
//acr:noalloc
func BadBoxing(v int64) {
	var box interface{}
	box = v // want "assignment boxes int64 into interface"
	_ = box
	fmt.Println(v) // want "call to allocating stdlib fmt.Println" "argument boxes int64 into interface"
}

// BadLiterals allocates through composite literals.
//
//acr:noalloc
func BadLiterals() *rec {
	xs := []int{1, 2, 3} // want "slice literal allocates"
	_ = xs
	m := map[int]int{} // want "map literal allocates"
	_ = m
	return &rec{a: 1} // want "&composite-literal allocates"
}

// BadStrings concatenates and converts strings.
//
//acr:noalloc
func BadStrings(a, b string) string {
	s := a + b      // want "string concatenation allocates"
	s += a          // want "string concatenation allocates"
	bs := []byte(a) // want "conversion []byte(string) copies its operand"
	_ = bs
	return s
}

// BadControl allocates through control-flow constructs.
//
//acr:noalloc
func BadControl() {
	f := func() {} // want "closure may escape to the heap"
	f()
	go f()    // want "go statement allocates a goroutine"
	defer f() // want "defer allocates its frame record"
}

// BadBlockClosure is the block-compilation anti-pattern: building a dyn
// closure inside the annotated execution loop. Closures belong in the cold
// compile step — a compile performed on the hot path allocates per quantum
// instead of once per block.
//
//acr:noalloc
func BadBlockClosure(t *table, pc int) func() {
	op := t.slots[pc]
	return func() { // want "closure may escape to the heap"
		t.slots[pc].a = op.a + op.b
	}
}

// shard mimics one slice of the line-sharded memory plane: a dirty-line
// scratch list sealed into each checkpoint.
type shard struct {
	dirty  []int64
	sealed int64
}

// BadShardSeal is the sharded-seal anti-pattern: capturing the shard in a
// fresh closure on every seal. The seal runs once per checkpoint per shard
// — at 256 shards the per-seal closure (and the append into an unsized
// batch) turns the checkpoint path into an allocation storm. The clean
// shape passes the shard by index to a prebound method value and reuses a
// capacity-fixed batch, as GoodShardSeal shows.
//
//acr:noalloc
func BadShardSeal(shards []shard, ck int64) []func() {
	var pending []func()
	for i := range shards {
		s := &shards[i]
		pending = append(pending, func() { // want "append may grow its backing array" "closure may escape to the heap"
			s.sealed = ck
			s.dirty = s.dirty[:0]
		})
	}
	return pending
}

// GoodShardSeal seals every shard in place: no closures, no growth — the
// shape the sharded memory plane's checkpoint path must keep.
//
//acr:noalloc
func GoodShardSeal(shards []shard, ck int64) {
	for i := range shards {
		shards[i].sealed = ck
		shards[i].dirty = shards[i].dirty[:0]
	}
}

// GoodHot is the steady-state hot-path shape: indexing, arithmetic, field
// writes, justified amortized growth and panic-path formatting.
//
//acr:noalloc
func GoodHot(t *table, i int, v int64) {
	if i >= len(t.slots) {
		panic(fmt.Sprintf("noalloc fixture: index %d out of range", i))
	}
	t.slots[i].a = v
	t.slots[i].b += v
	t.buf = append(t.buf, byte(v)) //acr:alloc-ok amortized growth, steady state reuses capacity
}
