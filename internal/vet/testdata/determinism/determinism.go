// Package determinism is an acrvet fixture: seeded violations of the
// bit-identical-results invariant next to the clean idioms the analyzer
// must stay silent on. The // want comments are the golden expectations
// checked by internal/vet/vettest.
//
//acr:deterministic
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// BadWallClock reads the host clock inside a deterministic package.
func BadWallClock() int64 {
	t := time.Now() // want "call to time.Now in deterministic package determinism"
	return t.UnixNano()
}

// BadRand draws from the seedless process-global generator.
func BadRand() int {
	return rand.Intn(8) // want "use of rand.Intn in deterministic package determinism"
}

// BadMapOrder accumulates keys in iteration order: the result depends on
// the randomized order.
func BadMapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map-range loop appends to keys declared outside the loop"
		keys = append(keys, k)
	}
	return keys
}

// BadMapPrint emits directly from a map-range body.
func BadMapPrint(m map[string]int) {
	for k, v := range m { // want "map-range loop emits through fmt.Println"
		fmt.Println(k, v)
	}
}

// GoodSum aggregates commutatively: iteration order cannot reach the
// result, so no annotation is needed.
func GoodSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodSorted collects then sorts before any use: the canonical idiom,
// declared order-independent on the range line.
func GoodSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //acr:maporder-ok keys are sorted below before any use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodProfiled reads the wall clock for host-side diagnostics that never
// reach simulated results, declared on the function.
//
//acr:wallclock-ok host-side profiling only; never reaches results
func GoodProfiled() time.Duration {
	start := time.Now()
	return time.Since(start)
}
