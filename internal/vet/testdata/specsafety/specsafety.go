// Package specsafety is an acrvet fixture for the speculative-confinement
// analyzer: spec-safe functions that stay on core-private state and
// annotated callees, next to the write and call shapes that must be
// flagged.
package specsafety

import (
	"fmt"
	"time"
)

var specGlobal int64

type core struct {
	regs  [4]int64
	hooks Hooks
	fn    func(int64) int64
}

// Hooks is the fixture's injection-point interface. The contract method is
// vouched spec-safe, so calls through the interface resolve to an
// annotated object; each implementation carries (and is checked under) its
// own annotation.
type Hooks interface {
	//acr:spec-safe
	Predict(addr int64) int64
}

// goodStep touches only receiver state and annotated callees.
//
//acr:spec-safe
func goodStep(c *core, addr int64) int64 {
	c.regs[0]++
	return c.hooks.Predict(addr) + goodHelper(addr)
}

// goodHelper is pure; its panic path may format freely.
//
//acr:spec-safe
func goodHelper(addr int64) int64 {
	if addr < 0 {
		panic(fmt.Sprintf("specsafety fixture: negative address %d", addr))
	}
	return addr * 3
}

// goodJustified calls through a function value with the confinement
// argument on the line.
//
//acr:spec-safe
func goodJustified(c *core, addr int64) int64 {
	return c.fn(addr) //acr:spec-ok fn is core-private, set before the round starts
}

// badWrites mutates package-level state from a speculative round.
//
//acr:spec-safe
func badWrites() {
	specGlobal++ // want "write to package-level specGlobal"
}

// badCalls leaves the confinement discipline four ways.
//
//acr:spec-safe
func badCalls(c *core, addr int64) int64 {
	go badHelper()              // want "go statement: speculative code must stay on its worker goroutine" "call to specsafety.badHelper, which is not //acr:spec-safe"
	time.Sleep(time.Nanosecond) // want "call to time.Sleep touches process-shared state"
	badHelper()                 // want "call to specsafety.badHelper, which is not //acr:spec-safe"
	return c.fn(addr)           // want "call through a function value cannot be proven spec-safe"
}

func badHelper() {}
