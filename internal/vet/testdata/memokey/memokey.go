// Package memokey is an acrvet fixture for memo-key completeness: a key
// struct with reference-identity fields, a spec whose fields variously
// reach (or miss) the key and its canonicaliser, and a cache owner with an
// undeclared knob.
package memokey

import "strings"

// Key is the memo key: it must be a pure value, deeply comparable with no
// reference identity.
//
//acr:memo-key
type Key struct {
	Name    string
	Params  [4]int64
	Workers int
	Seed    int64
	Nested  inner    // want "memo-key field Key.Nested.ptr has reference type *int64"
	Tags    []string // want "memo-key field Key.Tags has reference type []string"
}

type inner struct {
	scale float64
	ptr   *int64
}

// Spec is the configuration struct; normalized is its canonicaliser.
//
//acr:memo-spec normalized
type Spec struct {
	Name    string // read by normalized
	Workers int    // mirrored in Key by name and type
	Seed    int64  // read by normalized
	Debug   bool   // want "Spec.Debug reaches neither the memo key nor canonicaliser normalized"
	// Verbose claims exemption but is never canonicalised, so two
	// spellings of one configuration would split the cache.
	//
	//acr:memo-exempt
	Verbose bool // want "Spec.Verbose is //acr:memo-exempt but normalized never canonicalises it"
	// LogPath is exempt and zeroed by the canonicaliser: the clean shape.
	//
	//acr:memo-exempt
	LogPath string
}

func (s Spec) normalized() Spec {
	n := s
	n.Name = strings.TrimSpace(s.Name)
	n.Seed = s.Seed & 0xffff
	n.LogPath = ""
	return n
}

// Broken names a canonicaliser that does not exist.
//
// want-next "names canonicaliser canonical, but Broken has no such method"
//
//acr:memo-spec canonical
type Broken struct {
	N int // want "Broken.N reaches neither the memo key nor canonicaliser canonical"
}

// Cache owns the memo table; exported fields are driver knobs and must be
// declared result-invariant.
//
//acr:memo-cache
type Cache struct {
	//acr:memo-exempt pool width never changes results, only wall-clock
	Workers int
	Retries int // want "Cache.Retries is a knob on the memo-cache owner but outside the memo key"
	table   map[string]int
}

// Lookup keeps the unexported machinery referenced.
func (c *Cache) Lookup(key string) (int, bool) {
	v, ok := c.table[key]
	return v, ok
}
