package vet

import (
	"go/types"
	"sort"
	"strings"
)

// HygieneAnalyzer validates the //acr: annotation grammar itself, so the
// rest of the suite can trust what it reads: unknown directive names,
// directives in positions where they have no meaning, missing load-bearing
// arguments, duplicates on one target, and near-miss spellings ("// acr:"
// with a space is an ordinary comment and silently does nothing — the most
// dangerous typo an invariant annotation can have).
var HygieneAnalyzer = &Analyzer{
	Name: "annotations",
	Doc:  "validate the //acr: directive grammar",
	Run:  runHygiene,
}

func runHygiene(prog *Program) []Diagnostic {
	var diags []Diagnostic

	type targetKey struct {
		target types.Object
		pkg    string
		at     Placement
		name   string
		line   int
	}
	seen := make(map[targetKey]bool)
	for _, p := range prog.Ann.all {
		d, known := directives[p.Name]
		if p.Name == "" || !known {
			diags = append(diags, diag(prog, "annotations", p.Pos,
				"unknown //acr: directive %q (known: %s)", p.Name, knownDirectives()))
			continue
		}
		if p.At&d.where == 0 {
			diags = append(diags, diag(prog, "annotations", p.Pos,
				"//acr:%s is meaningless %s; it belongs %s", p.Name, placementName(p.At), placementList(d.where)))
			continue
		}
		if d.needsArg && p.Arg == "" {
			diags = append(diags, diag(prog, "annotations", p.Pos,
				"//acr:%s requires an argument", p.Name))
		}
		key := targetKey{target: p.target, pkg: p.pkg.Path, at: p.At, name: p.Name}
		if p.At == OnLine {
			key.line = prog.Fset.Position(p.Pos).Line
		}
		// Field and unresolved attachments carry a nil target; only dedup
		// contexts where the key actually identifies one entity.
		if p.target != nil || p.At == OnPackage || p.At == OnLine {
			if seen[key] {
				diags = append(diags, diag(prog, "annotations", p.Pos,
					"duplicate //acr:%s", p.Name))
			}
			seen[key] = true
		}
		diags = append(diags, placementChecks(prog, p)...)
	}

	// Near-miss spellings anywhere in the sources.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, g := range f.Comments {
				for _, c := range g.List {
					text := c.Text
					if strings.HasPrefix(text, "// acr:") || strings.HasPrefix(text, "//acr :") {
						diags = append(diags, diag(prog, "annotations", c.Pos(),
							"%q is not a directive (write //acr:name with no spaces)", firstLine(text)))
					}
				}
			}
		}
	}
	return diags
}

// placementChecks validates directive-specific target constraints beyond
// raw placement.
func placementChecks(prog *Program, p placed) []Diagnostic {
	var diags []Diagnostic
	switch p.Name {
	case "observer":
		if tn, ok := p.target.(*types.TypeName); ok {
			if _, isIface := tn.Type().Underlying().(*types.Interface); !isIface {
				diags = append(diags, diag(prog, "annotations", p.Pos,
					"//acr:%s on type %s: only interface types take this directive", p.Name, tn.Name()))
			}
		}
	case "memo-spec", "memo-key", "memo-cache":
		if tn, ok := p.target.(*types.TypeName); ok {
			if _, isStruct := tn.Type().Underlying().(*types.Struct); !isStruct {
				diags = append(diags, diag(prog, "annotations", p.Pos,
					"//acr:%s on type %s: only struct types take this directive", p.Name, tn.Name()))
			}
		}
	}
	return diags
}

func knownDirectives() string {
	names := make([]string, 0, len(directives))
	for n := range directives {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func placementName(at Placement) string {
	switch at {
	case OnPackage:
		return "on a package clause"
	case OnFunc:
		return "on a function declaration"
	case OnType:
		return "on a type declaration"
	case OnField:
		return "on a struct field"
	case OnLine:
		return "at end of line"
	}
	return "here"
}

func placementList(where Placement) string {
	var parts []string
	for _, at := range []Placement{OnPackage, OnFunc, OnType, OnField, OnLine} {
		if where&at != 0 {
			parts = append(parts, placementName(at))
		}
	}
	return strings.Join(parts, " or ")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
