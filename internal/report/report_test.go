package report

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"acr/internal/telemetry"
)

func TestLoadBenchAndSelfDiff(t *testing.T) {
	doc, err := LoadBench("../../BENCH_6.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) == 0 {
		t.Fatal("BENCH_6.json loaded no rows")
	}
	for name, row := range doc.Rows {
		if _, ok := row["ns_per_op"]; !ok {
			t.Fatalf("row %s lacks ns_per_op: %v", name, row)
		}
		if _, ok := row["n"]; ok {
			t.Fatalf("row %s kept the harness iteration count as a metric", name)
		}
	}

	// An artifact diffed against itself never regresses, even at
	// threshold 0.
	rep := DiffBench(doc, doc, Options{Threshold: 0})
	if rep.Regressions != 0 {
		t.Fatalf("self-diff found %d regressions", rep.Regressions)
	}
	if len(rep.Rows) == 0 || len(rep.OnlyOld) != 0 || len(rep.OnlyNew) != 0 {
		t.Fatalf("self-diff shape: rows=%d onlyOld=%d onlyNew=%d",
			len(rep.Rows), len(rep.OnlyOld), len(rep.OnlyNew))
	}
}

// perturb deep-copies a BenchDoc and scales one metric of one row.
func perturb(doc *BenchDoc, metric string, factor float64) *BenchDoc {
	out := &BenchDoc{Path: doc.Path + "(perturbed)", Rows: make(map[string]map[string]float64)}
	first := true
	for name, row := range doc.Rows {
		copied := make(map[string]float64, len(row))
		for m, v := range row {
			copied[m] = v
		}
		if first {
			copied[metric] *= factor
			first = false
		}
		out.Rows[name] = copied
	}
	return out
}

func TestDiffBenchDetectsInjectedRegression(t *testing.T) {
	doc, err := LoadBench("../../BENCH_6.json")
	if err != nil {
		t.Fatal(err)
	}

	// +50% ns_per_op on one row beats any sane threshold.
	rep := DiffBench(doc, perturb(doc, "ns_per_op", 1.5), Options{Threshold: 0.05})
	if rep.Regressions != 1 {
		t.Fatalf("injected +50%% ns_per_op: %d regressions, want 1", rep.Regressions)
	}
	if !rep.Rows[0].Regressed || rep.Rows[0].Metric != "ns_per_op" {
		t.Fatalf("regressions should sort first: %+v", rep.Rows[0])
	}

	// A 50% ns_per_op *improvement* is not a regression (HigherWorse).
	rep = DiffBench(doc, perturb(doc, "ns_per_op", 0.5), Options{Threshold: 0.05})
	if rep.Regressions != 0 {
		t.Fatalf("improvement flagged as regression: %d", rep.Regressions)
	}

	// sim_mips is LowerWorse: halving it regresses, raising it does not.
	if rep := DiffBench(doc, perturb(doc, "sim_mips", 0.5), Options{Threshold: 0.05}); rep.Regressions != 1 {
		t.Fatalf("sim_mips drop: %d regressions, want 1", rep.Regressions)
	}
	if rep := DiffBench(doc, perturb(doc, "sim_mips", 2), Options{Threshold: 0.05}); rep.Regressions != 0 {
		t.Fatalf("sim_mips gain flagged: %d", rep.Regressions)
	}

	// instrs is AnyChange: deterministic counts may not drift either way.
	if rep := DiffBench(doc, perturb(doc, "instrs", 1.2), Options{Threshold: 0.05}); rep.Regressions != 1 {
		t.Fatalf("instrs drift up: want 1 regression")
	}
	if rep := DiffBench(doc, perturb(doc, "instrs", 0.8), Options{Threshold: 0.05}); rep.Regressions != 1 {
		t.Fatalf("instrs drift down: want 1 regression")
	}

	// Below-threshold drift passes.
	if rep := DiffBench(doc, perturb(doc, "ns_per_op", 1.01), Options{Threshold: 0.05}); rep.Regressions != 0 {
		t.Fatalf("1%% drift at 5%% threshold: %d regressions", rep.Regressions)
	}

	// The metrics allowlist masks regressions outside it.
	rep = DiffBench(doc, perturb(doc, "ns_per_op", 1.5),
		Options{Threshold: 0.05, Metrics: []string{"allocs_per_op"}})
	if rep.Regressions != 0 {
		t.Fatalf("allowlisted diff still sees ns_per_op: %d", rep.Regressions)
	}
}

func TestDiffBenchUnmatchedRows(t *testing.T) {
	oldDoc := &BenchDoc{Rows: map[string]map[string]float64{
		"a": {"ns_per_op": 1}, "gone": {"ns_per_op": 1},
	}}
	newDoc := &BenchDoc{Rows: map[string]map[string]float64{
		"a": {"ns_per_op": 1}, "fresh": {"ns_per_op": 1},
	}}
	rep := DiffBench(oldDoc, newDoc, Options{})
	if rep.Regressions != 0 || len(rep.OnlyOld) != 1 || len(rep.OnlyNew) != 1 {
		t.Fatalf("unmatched rows are notes by default: %+v", rep)
	}
	rep = DiffBench(oldDoc, newDoc, Options{RequireMatch: true})
	if rep.Regressions != 2 {
		t.Fatalf("-require-match: %d regressions, want 2", rep.Regressions)
	}
}

func TestCompareAppeared(t *testing.T) {
	r := compare("k", "m", 0, 5, HigherWorse, 0.05)
	if !r.Appeared || !r.Regressed || r.Delta != 0 {
		t.Fatalf("0→5 higher-worse: %+v", r)
	}
	r = compare("k", "m", 0, 0, AnyChange, 0)
	if r.Appeared || r.Regressed {
		t.Fatalf("0→0: %+v", r)
	}
}

// writeProfile writes one telemetry profile into dir.
func writeProfile(t *testing.T, dir, name string, meta map[string]string, touch func(*telemetry.Registry)) {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("rep_events_total", "", "kind").With("checkpoint").Add(10)
	h := reg.Histogram("rep_span", "", []float64{1, 10, 100})
	h.Observe(5)
	h.Observe(50)
	if touch != nil {
		touch(reg)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := telemetry.WriteProfile(f, meta, reg); err != nil {
		t.Fatal(err)
	}
}

func TestDiffProfiles(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	meta := map[string]string{"bench": "is", "config": "ReCkpt_E"}
	writeProfile(t, oldDir, "a.json", meta, nil)
	writeProfile(t, newDir, "a.json", meta, nil)

	oldSet, err := LoadProfiles(oldDir)
	if err != nil {
		t.Fatal(err)
	}
	newSet, err := LoadProfiles(newDir)
	if err != nil {
		t.Fatal(err)
	}
	rep := DiffProfiles(oldSet, newSet, Options{Threshold: 0})
	if rep.Regressions != 0 {
		t.Fatalf("identical profiles: %d regressions", rep.Regressions)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("identical profiles compared no samples")
	}

	// Any drift in a deterministic profile regresses at threshold 0 —
	// even an "improvement"-shaped one like an extra span observation.
	drifted := t.TempDir()
	writeProfile(t, drifted, "a.json", meta, func(reg *telemetry.Registry) {
		reg.Counter("rep_events_total", "", "kind").With("checkpoint").Add(2)
	})
	driftSet, err := LoadProfiles(drifted)
	if err != nil {
		t.Fatal(err)
	}
	rep = DiffProfiles(oldSet, driftSet, Options{Threshold: 0})
	if rep.Regressions == 0 {
		t.Fatal("deterministic drift not flagged")
	}

	// A single profile file also loads (non-directory path).
	single, err := LoadProfiles(filepath.Join(oldDir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Samples) != 1 {
		t.Fatalf("single file: %d profiles", len(single.Samples))
	}
	// Histograms flatten into count/sum/quantiles.
	for _, samples := range single.Samples {
		for _, want := range []string{"rep_span:count", "rep_span:sum", "rep_span:p50", "rep_span:p99"} {
			if _, ok := samples[want]; !ok {
				t.Fatalf("flattened profile lacks %s: %v", want, samples)
			}
		}
	}
}

func TestRenderOutputs(t *testing.T) {
	oldDoc := &BenchDoc{Rows: map[string]map[string]float64{"a": {"ns_per_op": 100}}}
	newDoc := &BenchDoc{Rows: map[string]map[string]float64{"a": {"ns_per_op": 150}}}
	rep := DiffBench(oldDoc, newDoc, Options{Threshold: 0.05})

	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "1 regression") {
		t.Fatalf("table output:\n%s", out)
	}

	buf.Reset()
	if err := rep.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Regressions != 1 || decoded.Mode != "bench" {
		t.Fatalf("JSON output: %+v", decoded)
	}
}
