// Package report joins two benchmark or telemetry artifacts on their
// deterministic keys and emits a per-metric delta table with regression
// gating — the tooling behind cmd/acrreport, which turns "eyeball the
// BENCH_N.json trajectory" into an exit-code check.
//
// Two artifact shapes are supported:
//
//   - BENCH_*.json documents (the bench-regression emitter's schema): rows
//     join on their benchmark name, numeric row fields are the metrics,
//     and each metric carries a known improvement direction (ns_per_op up
//     is a regression, sim_mips down is).
//   - Run-profile JSON files or directories of them (telemetry.Profile):
//     profiles join on their canonicalised meta, series flatten to
//     name{labels} samples, histograms additionally expose _count, _sum
//     and interpolated p50/p99. Simulated results are deterministic, so
//     any drift beyond the threshold counts as a regression (AnyChange).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"acr/internal/stats"
)

// Direction classifies how a metric's delta maps to "regressed".
type Direction int

// Directions.
const (
	// HigherWorse flags relative increases beyond the threshold
	// (latencies, allocation counts).
	HigherWorse Direction = iota
	// LowerWorse flags relative decreases beyond the threshold
	// (throughput such as sim_mips).
	LowerWorse
	// AnyChange flags drift in either direction beyond the threshold
	// (deterministic quantities such as instruction counts).
	AnyChange
)

func (d Direction) String() string {
	switch d {
	case HigherWorse:
		return "higher-worse"
	case LowerWorse:
		return "lower-worse"
	case AnyChange:
		return "any-change"
	}
	return "direction"
}

// Row is one (join key, metric) comparison.
type Row struct {
	Key    string  `json:"key"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Delta is the relative change (new-old)/old; 0 when both sides are
	// 0. When old is 0 and new is not, Delta is 0 and Appeared is set —
	// the relative delta is undefined but the change is real.
	Delta     float64 `json:"delta"`
	Appeared  bool    `json:"appeared,omitempty"`
	Direction string  `json:"direction"`
	Regressed bool    `json:"regressed,omitempty"`
}

// Report is a full comparison.
type Report struct {
	Mode      string   `json:"mode"`
	Threshold float64  `json:"threshold"`
	Rows      []Row    `json:"rows"`
	OnlyOld   []string `json:"only_old,omitempty"`
	OnlyNew   []string `json:"only_new,omitempty"`
	// Regressions counts rows whose delta crossed the threshold in the
	// metric's worse direction; acrreport exits 1 when it is non-zero.
	Regressions int `json:"regressions"`
}

// Options tunes a comparison.
type Options struct {
	// Threshold is the relative-delta gate (0.05 = 5%). Zero means any
	// change at all regresses, which is the right default only for
	// fully deterministic metrics.
	Threshold float64
	// Metrics, when non-empty, restricts the comparison to metrics whose
	// name (the row field for bench docs, the family name for profiles)
	// is in the list.
	Metrics []string
	// RequireMatch makes unmatched join keys on either side count as
	// regressions instead of notes.
	RequireMatch bool
}

func (o Options) wants(metric string) bool {
	if len(o.Metrics) == 0 {
		return true
	}
	for _, m := range o.Metrics {
		if m == metric {
			return true
		}
	}
	return false
}

// compare builds one Row and classifies it against the threshold.
func compare(key, metric string, oldV, newV float64, dir Direction, threshold float64) Row {
	r := Row{Key: key, Metric: metric, Old: oldV, New: newV, Direction: dir.String()}
	switch {
	case oldV == 0 && newV == 0:
		// No change, delta 0.
	case oldV == 0:
		r.Appeared = true
	default:
		r.Delta = (newV - oldV) / math.Abs(oldV)
	}
	switch dir {
	case HigherWorse:
		r.Regressed = r.Delta > threshold || (r.Appeared && newV > 0)
	case LowerWorse:
		r.Regressed = r.Delta < -threshold
	case AnyChange:
		r.Regressed = math.Abs(r.Delta) > threshold || r.Appeared
	}
	return r
}

// finish sorts rows (regressions first, then key/metric), fills the
// summary counters and applies RequireMatch.
func (r *Report) finish(opt Options) {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		if a.Regressed != b.Regressed {
			return a.Regressed
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Metric < b.Metric
	})
	sort.Strings(r.OnlyOld)
	sort.Strings(r.OnlyNew)
	for _, row := range r.Rows {
		if row.Regressed {
			r.Regressions++
		}
	}
	if opt.RequireMatch {
		r.Regressions += len(r.OnlyOld) + len(r.OnlyNew)
	}
}

// Render writes the human-readable delta table plus a gate summary.
func (r *Report) Render(w io.Writer) error {
	t := &stats.Table{
		Title: fmt.Sprintf("%s delta (threshold %.2f%%)", r.Mode, 100*r.Threshold),
		Cols:  []string{"key", "metric", "old", "new", "delta%", "gate"},
	}
	for _, row := range r.Rows {
		delta := fmt.Sprintf("%+.2f", 100*row.Delta)
		if row.Appeared {
			delta = "new"
		}
		gate := "ok"
		if row.Regressed {
			gate = "REGRESSED"
		}
		t.AddRow(row.Key, row.Metric,
			formatNum(row.Old), formatNum(row.New), delta, gate)
	}
	t.Render(w)
	for _, k := range r.OnlyOld {
		fmt.Fprintf(w, "only in old: %s\n", k)
	}
	for _, k := range r.OnlyNew {
		fmt.Fprintf(w, "only in new: %s\n", k)
	}
	if r.Regressions > 0 {
		fmt.Fprintf(w, "\n%d regression(s) beyond %.2f%%\n", r.Regressions, 100*r.Threshold)
	} else {
		fmt.Fprintf(w, "\nno regressions beyond %.2f%% (%d comparisons)\n", 100*r.Threshold, len(r.Rows))
	}
	return nil
}

// RenderJSON writes the report as indented JSON.
func (r *Report) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
