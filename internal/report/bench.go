package report

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// benchDirections maps BENCH row fields to their improvement direction.
// Fields absent here (and any future numeric field) default to AnyChange —
// a conservative choice for a regression gate. The "n" iteration count is
// harness bookkeeping, not a metric.
var benchDirections = map[string]Direction{
	"ns_per_op":         HigherWorse,
	"allocs_per_op":     HigherWorse,
	"bytes_per_op":      HigherWorse,
	"allocs_per_kinstr": HigherWorse,
	"sim_mips":          LowerWorse,
	"instrs":            AnyChange,
}

var benchSkipFields = map[string]bool{"n": true}

// BenchDoc is a loaded BENCH_*.json document reduced to its comparison
// surface: the result rows, keyed by row name, with every numeric field as
// a metric.
type BenchDoc struct {
	Path string
	// Rows maps row name → metric name → value.
	Rows map[string]map[string]float64
}

// LoadBench reads a BENCH_*.json document (the bench emitter's schema) and
// extracts its "results" rows. The row schema is discovered dynamically:
// any numeric field is a metric, so the differ keeps working as emitters
// grow fields.
func LoadBench(path string) (*BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Results []map[string]any `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("%s: no results rows (not a BENCH_*.json artifact?)", path)
	}
	out := &BenchDoc{Path: path, Rows: make(map[string]map[string]float64, len(doc.Results))}
	for i, row := range doc.Results {
		name, _ := row["name"].(string)
		if name == "" {
			return nil, fmt.Errorf("%s: results[%d] has no name", path, i)
		}
		metrics := make(map[string]float64)
		for field, v := range row {
			f, ok := v.(float64)
			if !ok || benchSkipFields[field] {
				continue
			}
			metrics[field] = f
		}
		out.Rows[name] = metrics
	}
	return out, nil
}

// DiffBench compares two BENCH documents row-by-row.
func DiffBench(oldDoc, newDoc *BenchDoc, opt Options) *Report {
	r := &Report{Mode: "bench", Threshold: opt.Threshold}
	names := make([]string, 0, len(oldDoc.Rows))
	for name := range oldDoc.Rows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		oldRow := oldDoc.Rows[name]
		newRow, ok := newDoc.Rows[name]
		if !ok {
			r.OnlyOld = append(r.OnlyOld, name)
			continue
		}
		metrics := make([]string, 0, len(oldRow))
		for m := range oldRow {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			newV, ok := newRow[m]
			if !ok || !opt.wants(m) {
				continue
			}
			dir, known := benchDirections[m]
			if !known {
				dir = AnyChange
			}
			r.Rows = append(r.Rows, compare(name, m, oldRow[m], newV, dir, opt.Threshold))
		}
	}
	for name := range newDoc.Rows {
		if _, ok := oldDoc.Rows[name]; !ok {
			r.OnlyNew = append(r.OnlyNew, name)
		}
	}
	r.finish(opt)
	return r
}
