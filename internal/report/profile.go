package report

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"acr/internal/telemetry"
)

// ProfileSet is one side of a profile comparison: every profile found at a
// path (a single JSON file, or every *.json in a directory), keyed by its
// canonicalised meta and flattened to name{labels} samples.
type ProfileSet struct {
	Path string
	// Samples maps profile key → metric id → value.
	Samples map[string]map[string]float64
}

// LoadProfiles loads a run-profile JSON file or a directory of them.
func LoadProfiles(path string) (*ProfileSet, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	files := []string{path}
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "*.json"))
		if err != nil {
			return nil, err
		}
		sort.Strings(files)
		if len(files) == 0 {
			return nil, fmt.Errorf("%s: no *.json profiles", path)
		}
	}
	out := &ProfileSet{Path: path, Samples: make(map[string]map[string]float64)}
	for _, file := range files {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		p, err := telemetry.ReadProfile(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		key := metaKey(p.Meta)
		if key == "" {
			// Meta-less profiles (bare registry dumps) fall back to the
			// file name so two dirs with matching layouts still join.
			key = filepath.Base(file)
		}
		if _, dup := out.Samples[key]; dup {
			return nil, fmt.Errorf("%s: duplicate profile key %q", file, key)
		}
		out.Samples[key] = flattenProfile(p)
	}
	return out, nil
}

// metaKey canonicalises a profile's meta map: sorted k=v pairs.
func metaKey(meta map[string]string) string {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + meta[k]
	}
	return strings.Join(parts, ",")
}

// flattenProfile turns a profile's families into flat samples. Histograms
// contribute their count, sum and interpolated p50/p99 — the shape drifts
// a regression differ can actually gate on.
func flattenProfile(p *telemetry.Profile) map[string]float64 {
	out := make(map[string]float64)
	for _, f := range p.Families {
		for _, s := range f.Series {
			id := f.Name
			if len(s.LabelValues) > 0 {
				pairs := make([]string, len(s.LabelValues))
				for i, v := range s.LabelValues {
					name := ""
					if i < len(f.Labels) {
						name = f.Labels[i]
					}
					pairs[i] = name + "=" + v
				}
				id += "{" + strings.Join(pairs, ",") + "}"
			}
			if f.Kind != "histogram" {
				out[id] = s.Value
				continue
			}
			out[id+":count"] = float64(s.Count)
			out[id+":sum"] = s.Sum
			if p50, ok := telemetry.HistQuantile(f.Buckets, s.BucketCounts, 0.50); ok {
				out[id+":p50"] = p50
			}
			if p99, ok := telemetry.HistQuantile(f.Buckets, s.BucketCounts, 0.99); ok {
				out[id+":p99"] = p99
			}
		}
	}
	return out
}

// familyOf strips a metric id back to its family name for Options.Metrics
// filtering.
func familyOf(id string) string {
	if i := strings.IndexAny(id, "{:"); i >= 0 {
		return id[:i]
	}
	return id
}

// DiffProfiles compares two profile sets. Simulated telemetry is
// deterministic, so every metric uses AnyChange: drift in either direction
// beyond the threshold regresses.
func DiffProfiles(oldSet, newSet *ProfileSet, opt Options) *Report {
	r := &Report{Mode: "profiles", Threshold: opt.Threshold}
	keys := make([]string, 0, len(oldSet.Samples))
	for key := range oldSet.Samples {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		oldSamples := oldSet.Samples[key]
		newSamples, ok := newSet.Samples[key]
		if !ok {
			r.OnlyOld = append(r.OnlyOld, key)
			continue
		}
		ids := make([]string, 0, len(oldSamples))
		for id := range oldSamples {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			newV, ok := newSamples[id]
			if !ok || !opt.wants(familyOf(id)) {
				continue
			}
			r.Rows = append(r.Rows, compare(key, id, oldSamples[id], newV, AnyChange, opt.Threshold))
		}
	}
	for key := range newSet.Samples {
		if _, ok := oldSet.Samples[key]; !ok {
			r.OnlyNew = append(r.OnlyNew, key)
		}
	}
	r.finish(opt)
	return r
}
