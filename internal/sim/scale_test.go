package sim

import (
	"errors"
	"math/rand"
	"testing"

	"acr/internal/ckpt"
	"acr/internal/fault"
	"acr/internal/mem"
)

// TestConfigErrorThroughNew pins the machine-scale error contract: asking for
// more cores than the memory plane supports surfaces a typed
// *mem.ConfigError through sim.New — it must never panic, and the error must
// be matchable with errors.As so callers (acrsim, bench sweeps) can report
// the limit instead of crashing. Before the sharded directory this was a
// panic at 65 cores; now 65 constructs fine and only > mem.MaxCores errors.
func TestConfigErrorThroughNew(t *testing.T) {
	p := testKernel(4, 8, 1)

	cfg := DefaultConfig(mem.MaxCores + 1)
	_, err := New(cfg, p)
	if err == nil {
		t.Fatalf("New accepted %d cores (limit %d)", mem.MaxCores+1, mem.MaxCores)
	}
	var ce *mem.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("New(%d cores) returned %T (%v), want *mem.ConfigError", mem.MaxCores+1, err, err)
	}
	if ce.Reason == "" {
		t.Error("ConfigError carries no reason")
	}
}

// TestLegacyLimitLifted proves the old 64-core ceiling is gone: a 65-core
// machine — one past the single-word bitset — constructs and runs an
// amnesic-checkpointed kernel to completion.
func TestLegacyLimitLifted(t *testing.T) {
	const cores = 65
	p := testKernel(cores, 8, 2)
	base := DefaultConfig(cores)
	ref, _, _ := runWorkers(t, base, p, 1)

	cfg := base
	cfg.Checkpointing = true
	cfg.Amnesic = true
	cfg.PeriodCycles = ref.Cycles / 3
	m, err := New(cfg, p)
	if err != nil {
		t.Fatalf("65-core machine failed to construct: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ckpt.Checkpoints == 0 {
		t.Error("65-core run took no checkpoints")
	}
}

// TestScaleBitIdentityFuzz extends the bit-identity fuzz oracle to 128- and
// 256-core machines: for each scale, every checkpoint strategy crossed with
// workers 1/4, the block-compilation engine, and the quantum coalescer must
// reproduce the serial interpreter bit-for-bit — the full Result and every
// data-memory word. This is the acceptance gate for the sharded memory plane
// and the grouped scheduler queue: any shard-ownership or pick-order bug at
// scale shows up as a diverging cycle count or memory word here.
func TestScaleBitIdentityFuzz(t *testing.T) {
	coreChoices := []int{128, 256}
	if testing.Short() {
		coreChoices = []int{128}
	}
	rng := rand.New(rand.NewSource(17))

	for _, cores := range coreChoices {
		perThread := 6
		iters := 2
		p := testKernel(cores, perThread, iters)

		base := DefaultConfig(cores)
		ref, refMem, _ := runWorkers(t, base, p, 1)

		// Coalescing off must match the default-on serial reference
		// exactly: the coalescer only changes wall clock.
		off := base
		off.Coalesce = false
		ores, omem, _ := runWorkers(t, off, p, 1)
		checkBitIdentical(t, "coalesce-off@"+itoa(cores), ref, ores, refMem, omem)

		// Compiled uncheckpointed run.
		cres, cmem, _ := runCompiled(t, base, p, 1)
		checkBitIdentical(t, "compiled/none@"+itoa(cores), ref, cres, refMem, cmem)

		for _, kind := range ckpt.Kinds() {
			cfg := base
			cfg.Checkpointing = true
			cfg.Strategy = kind
			cfg.PeriodCycles = ref.Cycles / int64(3+rng.Intn(2))
			if rng.Intn(2) == 1 {
				cfg.Errors = fault.Uniform(1, ref.Cycles, cfg.PeriodCycles/2)
			}
			want, wantMem, _ := runWorkers(t, cfg, p, 1)

			noco := cfg
			noco.Coalesce = false
			nres, nmem, _ := runWorkers(t, noco, p, 1)
			label := itoa(cores) + "/" + kind.String()
			checkBitIdentical(t, label+"/coalesce-off", want, nres, wantMem, nmem)

			pres, pmem, _ := runWorkers(t, cfg, p, 4)
			checkBitIdentical(t, label+"/workers=4", want, pres, wantMem, pmem)

			gres, gmem, _ := runCompiled(t, cfg, p, 1)
			checkBitIdentical(t, label+"/compiled", want, gres, wantMem, gmem)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCoalesceBitIdentitySmall crosses the coalescer toggle with the
// package's standard checkpoint/error scenarios at the default small scale,
// so the seam is pinned on the recovery-heavy paths too (rollback, replay,
// adaptive placement), not only the scale kernels.
func TestCoalesceBitIdentitySmall(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  Config
	}{
		{"ckpt-full", ckptConfig(t, false, tCkpts)},
		{"ckpt-amnesic", ckptConfig(t, true, tCkpts)},
		{"err-amnesic", errConfig(t, true, tCkpts, 2)},
	}
	for _, sc := range scenarios {
		p := testKernel(tThreads, tPer, tIters)
		on := sc.cfg
		on.Coalesce = true
		off := sc.cfg
		off.Coalesce = false
		want, wantMem, _ := runWorkers(t, off, p, 1)
		got, gotMem, _ := runWorkers(t, on, p, 1)
		checkBitIdentical(t, sc.name, want, got, wantMem, gotMem)
	}
}

// TestQuantumCoalescingLengthensSpans pins the perf claim behind the
// coalescer: with it on, the scheduler's average serial quantum on a
// communicating many-core kernel must beat both the coalesce-off baseline
// and the paper's 2.7-instruction average, and the eager engine must have
// actually retired instructions. The histogram must account for every span.
func TestQuantumCoalescingLengthensSpans(t *testing.T) {
	const cores = 128
	p := testKernel(cores, 6, 2)

	run := func(coalesce bool) SchedStats {
		cfg := DefaultConfig(cores)
		cfg.Coalesce = coalesce
		m, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.SchedStats()
	}

	off := run(false)
	on := run(true)

	if on.EagerCalls == 0 || on.EagerInstrs == 0 {
		t.Fatalf("coalescer never fired: %+v", on)
	}
	if off.EagerInstrs != 0 {
		t.Fatalf("coalesce-off run executed eagerly: %+v", off)
	}
	if on.AvgQuantum() <= off.AvgQuantum() {
		t.Errorf("coalescing did not lengthen quanta: on %.2f, off %.2f",
			on.AvgQuantum(), off.AvgQuantum())
	}
	if on.AvgQuantum() <= 2.7 {
		t.Errorf("average serial quantum %.2f, want > 2.7", on.AvgQuantum())
	}
	var hist int64
	for _, n := range on.QuantumHist {
		hist += n
	}
	if hist != on.Spans {
		t.Errorf("quantum histogram accounts for %d spans, want %d", hist, on.Spans)
	}
}
