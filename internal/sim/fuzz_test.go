package sim

import (
	"math/rand"
	"testing"

	"acr/internal/ckpt"
	acr "acr/internal/core"
	"acr/internal/fault"
	"acr/internal/isa"
	"acr/internal/prog"
)

// randomProgram generates a structured random multithreaded kernel:
// iterations of phases, each phase a loop over a partition that loads from a
// random array, applies a random arithmetic chain, and stores (associated)
// into a random array, with barriers between phases. This is the
// machine-level fuzz harness: whatever program comes out, checkpointing and
// recovery must be semantically invisible.
func randomProgram(rng *rand.Rand, threads int) *prog.Program {
	b := prog.New("fuzz")
	const n = 24
	nArrays := 2 + rng.Intn(3)
	arrays := make([]int64, nArrays)
	for i := range arrays {
		arrays[i] = b.Data(threads * n)
	}
	iters := 3 + rng.Intn(4)
	phases := 1 + rng.Intn(3)

	// Base registers for each array: r10+i.
	for i, arr := range arrays {
		b.OpI(isa.MULI, isa.Reg(10+i), prog.RegTID, n)
		b.OpI(isa.ADDI, isa.Reg(10+i), isa.Reg(10+i), arr)
	}
	ops := []isa.Op{isa.ADDI, isa.MULI, isa.XORI, isa.SHRI, isa.ORI, isa.ANDI}

	b.LoopConst(20, 21, int64(iters), func() {
		for ph := 0; ph < phases; ph++ {
			src := isa.Reg(10 + rng.Intn(nArrays))
			dst := isa.Reg(10 + rng.Intn(nArrays))
			depth := 1 + rng.Intn(14)
			chain := make([]isa.Instr, depth)
			for k := range chain {
				chain[k] = isa.Instr{
					Op: ops[rng.Intn(len(ops))], Rd: 3, Rs: 3,
					Imm: int64(rng.Intn(1000) + 1),
				}
			}
			b.LoopConst(1, 2, n, func() {
				b.Op3(isa.ADD, 4, src, 1)
				b.Ld(3, 4, 0)
				for _, in := range chain {
					b.Emit(in)
				}
				b.Op3(isa.ADD, 4, dst, 1)
				b.StAssoc(3, 4, 0)
			})
			if rng.Intn(2) == 0 {
				b.Barrier()
			}
		}
		b.Barrier()
	})
	b.Halt()
	return b.MustBuild()
}

// TestFuzzRecoveryInvisible is the repository's core end-to-end property:
// for random programs, random checkpoint periods, random error schedules,
// and every configuration (global/local × plain/amnesic), the final memory
// image is bit-identical to the error-free uncheckpointed run.
func TestFuzzRecoveryInvisible(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		threads := 2 + rng.Intn(3)
		build := func() *prog.Program {
			return randomProgram(rand.New(rand.NewSource(int64(500+trial))), threads)
		}

		ref, err := New(DefaultConfig(threads), build())
		if err != nil {
			t.Fatal(err)
		}
		refRes, err := ref.Run()
		if err != nil {
			t.Fatal(err)
		}
		want := memWords(ref, build().DataWords)

		nCkpts := int64(3 + rng.Intn(8))
		period := refRes.Cycles / (nCkpts + 1)
		if period < 10 {
			period = 10
		}
		errs := rng.Intn(3)

		for _, mode := range []ckpt.Mode{ckpt.Global, ckpt.Local} {
			for _, kind := range ckpt.Kinds() {
				if kind.GlobalOnly() && mode == ckpt.Local {
					continue
				}
				cfg := DefaultConfig(threads)
				cfg.Checkpointing = true
				cfg.Mode = mode
				cfg.PeriodCycles = period
				cfg.Strategy = kind
				if kind.Amnesic() {
					cfg.ACR = acr.Config{Threshold: 10, MapCapacity: 4096}
					if rng.Intn(2) == 0 {
						cfg.ACR.Policy = acr.PolicyCost
					}
					cfg.AdaptivePlacement = rng.Intn(2) == 0
				}
				if errs > 0 {
					cfg.Errors = fault.Uniform(errs, refRes.Cycles, period/2)
				}
				m, err := New(cfg, build())
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatalf("trial %d mode=%v strategy=%v: %v", trial, mode, kind, err)
				}
				if errs > 0 && res.Ckpt.Recoveries == 0 {
					// An error may land after completion for very
					// short runs; tolerate but note.
					t.Logf("trial %d: no recovery triggered (run too short)", trial)
				}
				got := memWords(m, build().DataWords)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d mode=%v strategy=%v errs=%d: memory differs at %d: %d vs %d",
							trial, mode, kind, errs, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestFuzzDeterministicReplay: the same configuration twice produces
// identical cycle counts, energies and statistics.
func TestFuzzDeterministicReplay(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		build := func() *prog.Program {
			return randomProgram(rand.New(rand.NewSource(int64(42+trial))), 3)
		}
		run := func() Result {
			cfg := DefaultConfig(3)
			cfg.Checkpointing = true
			cfg.Amnesic = true
			cfg.ACR = acr.Config{Threshold: 10, MapCapacity: 1024}
			cfg.PeriodCycles = 5000
			cfg.Errors = fault.Uniform(1, 40000, 2000)
			m, err := New(cfg, build())
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if a.Cycles != b.Cycles || a.EnergyPJ != b.EnergyPJ ||
			a.Ckpt != b.Ckpt || a.Instrs != b.Instrs {
			t.Fatalf("trial %d: non-deterministic replay:\n%+v\n%+v", trial, a, b)
		}
	}
}

func TestAdaptivePlacementStillCorrect(t *testing.T) {
	_, base := baseline(t)
	cfg := errConfig(t, true, tCkpts, 2)
	cfg.AdaptivePlacement = true
	res, memv := runCfg(t, cfg)
	if res.Ckpt.Recoveries != 2 {
		t.Fatalf("recoveries = %d", res.Ckpt.Recoveries)
	}
	checkSameMem(t, memv, base, "adaptive")
}

func TestCostPolicyStillCorrect(t *testing.T) {
	_, base := baseline(t)
	cfg := errConfig(t, true, tCkpts, 1)
	cfg.ACR.Policy = acr.PolicyCost
	res, memv := runCfg(t, cfg)
	if res.Ckpt.Recoveries != 1 {
		t.Fatalf("recoveries = %d", res.Ckpt.Recoveries)
	}
	checkSameMem(t, memv, base, "cost policy")
	if res.Ckpt.OmittedWords == 0 {
		t.Error("cost policy omitted nothing")
	}
}
