// The telemetry determinism regression lives in an external test package:
// telemetry imports sim, so an in-package test importing telemetry would
// cycle. It pins the PR's acceptance invariant — identical configs stay
// bit-identical with telemetry attached or not.
package sim_test

import (
	"io"
	"reflect"
	"testing"

	acr "acr/internal/core"
	"acr/internal/fault"
	"acr/internal/sim"
	"acr/internal/telemetry"
	"acr/internal/workloads"
)

func telemetryTestRun(t *testing.T, obs ...sim.Observer) (sim.Result, []int64) {
	t.Helper()
	const threads = 4
	bench, err := workloads.ByName("is")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *sim.Machine {
		p, err := bench.Build(threads, workloads.ClassS)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig(threads)
		m, err := sim.New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}

	p, err := bench.Build(threads, workloads.ClassS)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(threads)
	cfg.Checkpointing = true
	cfg.Amnesic = true
	cfg.ACR = acr.Config{Threshold: bench.Threshold, MapCapacity: 4096 * threads}
	cfg.PeriodCycles = base.Cycles / 4
	cfg.Errors = fault.Uniform(1, base.Cycles, cfg.PeriodCycles/2)
	cfg.Observers = obs
	m, err := sim.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	memv := make([]int64, p.DataWords)
	for i := range memv {
		memv[i] = m.Mem().ReadWord(int64(i))
	}
	return res, memv
}

// TestTelemetryPreservesDeterminism: a faulted amnesic run with a full
// telemetry stack attached (metrics Collector + streaming Chrome tracer)
// produces a Result struct and final memory image bit-identical to the same
// run with no observers. This is the enforcement of the tentpole's
// determinism invariant: observation is strictly one-way.
func TestTelemetryPreservesDeterminism(t *testing.T) {
	plainRes, plainMem := telemetryTestRun(t)

	reg := telemetry.NewRegistry()
	col := telemetry.NewCollector(reg)
	tracer := telemetry.NewTracer(io.Discard, 4)
	obsRes, obsMem := telemetryTestRun(t, col, tracer)
	if err := tracer.Close(); err != nil {
		t.Fatalf("tracer: %v", err)
	}

	if !reflect.DeepEqual(plainRes, obsRes) {
		t.Errorf("telemetry perturbed the Result:\nplain %+v\nobserved %+v", plainRes, obsRes)
	}
	if !reflect.DeepEqual(plainMem, obsMem) {
		t.Error("telemetry perturbed final memory")
	}

	// The observers must actually have seen the run.
	if tracer.Events() == 0 {
		t.Error("tracer recorded nothing")
	}
	col.ObserveResult(obsRes)
	ckpts := 0.0
	for _, f := range reg.Families() {
		if f.Name == "acr_sim_checkpoints_total" {
			ckpts = f.With().Value()
		}
	}
	if ckpts == 0 {
		t.Error("collector recorded no checkpoints")
	}
	if got := float64(obsRes.Ckpt.Recoveries); got != 1 {
		t.Errorf("recoveries = %v, want 1 (config not exercising the faulted path)", got)
	}
}
