// Fast-path vs. oracle bit-identity: the allocation-free hot paths (flat
// AddrMap, pooled recipe arena, batched energy accounting, MRU cache way)
// must leave every observable of a run — Result, per-event energy counts,
// memory-hierarchy stats, final memory image, exported telemetry profile —
// bit-for-bit identical to the pre-optimization simulator. The oracle under
// testdata/ was recorded by the unoptimized implementation; regenerate only
// when the *modelled machine* changes (never to paper over a fast-path
// divergence) with:
//
//	ACR_UPDATE_ORACLE=1 go test ./internal/sim -run TestFastPathMatchesOracle
//
// The test lives in the external package because it attaches the telemetry
// stack (telemetry imports sim).
package sim_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"acr/internal/ckpt"
	acr "acr/internal/core"
	"acr/internal/fault"
	"acr/internal/sim"
	"acr/internal/telemetry"
	"acr/internal/workloads"
)

const (
	oracleProfilePath = "testdata/fastpath_oracle_profile.json"
	oracleResultPath  = "testdata/fastpath_oracle_result.json"
)

// oracleRecord is the serialised form of the oracle run's observables.
type oracleRecord struct {
	Result sim.Result `json:"result"`
	// MemFNV is the FNV-64a digest of the final data-memory image.
	MemFNV string `json:"mem_fnv"`
}

// oracleRun executes the fixed reference configuration: the is kernel on 8
// cores under amnesic local checkpointing with adaptive placement and two
// injected errors — every hot path this PR touches is live (flat AddrMap,
// recipe tracking with compaction, batched accounting, local-mode interval
// clearing, recovery recomputation).
func oracleRun(t *testing.T) (oracleRecord, []byte) {
	t.Helper()
	const threads = 8
	bench, err := workloads.ByName("is")
	if err != nil {
		t.Fatal(err)
	}

	calibrate := func() int64 {
		p, err := bench.Build(threads, workloads.ClassS)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(sim.DefaultConfig(threads), p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	baseCycles := calibrate()

	p, err := bench.Build(threads, workloads.ClassS)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(threads)
	cfg.Checkpointing = true
	cfg.Amnesic = true
	cfg.Mode = ckpt.Local
	cfg.AdaptivePlacement = true
	cfg.ACR = acr.Config{Threshold: bench.Threshold, MapCapacity: 4096 * threads}
	cfg.PeriodCycles = baseCycles / 9
	cfg.ROIStartCycles = cfg.PeriodCycles / 2
	cfg.Errors = fault.Uniform(2, baseCycles, cfg.PeriodCycles/2)
	cfg.RecordTimeline = true

	reg := telemetry.NewRegistry()
	col := telemetry.NewCollector(reg)
	cfg.Observers = []sim.Observer{col}

	m, err := sim.New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	col.ObserveResult(res)

	h := fnv.New64a()
	var w [8]byte
	for i := 0; i < p.DataWords; i++ {
		v := uint64(m.Mem().ReadWord(int64(i)))
		for b := 0; b < 8; b++ {
			w[b] = byte(v >> (8 * b))
		}
		h.Write(w[:])
	}

	var profile bytes.Buffer
	meta := map[string]string{"bench": "is", "class": "S", "threads": "8", "oracle": "fastpath"}
	if err := telemetry.WriteProfile(&profile, meta, reg); err != nil {
		t.Fatal(err)
	}
	return oracleRecord{Result: res, MemFNV: fmt.Sprintf("%016x", h.Sum64())}, profile.Bytes()
}

// TestFastPathMatchesOracle re-runs the reference configuration and diffs
// every observable field-by-field against the recorded pre-optimization
// oracle.
func TestFastPathMatchesOracle(t *testing.T) {
	rec, profile := oracleRun(t)

	recJSON, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	recJSON = append(recJSON, '\n')

	if os.Getenv("ACR_UPDATE_ORACLE") != "" {
		if err := os.MkdirAll(filepath.Dir(oracleResultPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(oracleResultPath, recJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(oracleProfilePath, profile, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("oracle regenerated: %s, %s", oracleResultPath, oracleProfilePath)
		return
	}

	wantJSON, err := os.ReadFile(oracleResultPath)
	if err != nil {
		t.Fatalf("missing oracle (run with ACR_UPDATE_ORACLE=1 to record): %v", err)
	}
	var want oracleRecord
	if err := json.Unmarshal(wantJSON, &want); err != nil {
		t.Fatalf("oracle decode: %v", err)
	}

	// Field-by-field diff of the Result so a divergence names the broken
	// observable (energy counts, mem stats, checkpoint stats, timeline...).
	got, wantRes := reflect.ValueOf(rec.Result), reflect.ValueOf(want.Result)
	for i := 0; i < got.NumField(); i++ {
		name := got.Type().Field(i).Name
		if !reflect.DeepEqual(got.Field(i).Interface(), wantRes.Field(i).Interface()) {
			t.Errorf("Result.%s diverged from oracle:\n got %+v\nwant %+v",
				name, got.Field(i).Interface(), wantRes.Field(i).Interface())
		}
	}
	if rec.MemFNV != want.MemFNV {
		t.Errorf("final memory image diverged: got fnv %s, want %s", rec.MemFNV, want.MemFNV)
	}

	wantProfile, err := os.ReadFile(oracleProfilePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(profile, wantProfile) {
		t.Errorf("telemetry profile diverged from oracle (%d vs %d bytes)", len(profile), len(wantProfile))
	}
}
