// Parallel execution engine: conflict-checked concurrent core quanta with
// serial fallback (Config.Workers > 1).
//
// The engine exploits the same isolation argument the quantum-batched serial
// scheduler rests on (sched.go): the serial interleaving is fully
// characterised by ordering instructions by (⌊start cycle⌋, core id, per-core
// program order). A speculative round picks a horizon h — the earlier of the
// next timed event (checkpoint boundary, error detection) and a fixed span —
// and executes every running core with clock < h concurrently on a worker
// pool, each against a private mem.SpecView that overlays its writes, records
// the cache lines it touched, and defers every cross-core side effect
// (directory metadata, log bits, stats, energy). Checkpoint hooks are
// predicted against round-frozen state and recorded for replay.
//
// Commit requires the round to have been conflict-free: no line written by
// one quantum (stores and ASSOC-ADDRed addresses) was touched — read or
// written — by another. Conflict-free quanta read exactly the values the
// serial oracle would have shown them, so replaying their deferred effects in
// the serial merge order reproduces the serial machine bit-identically:
// memory words, log bits, AddrMap contents, every statistic and every energy
// count. Any round that conflicts (or poisons its stall prediction, or
// panics on a worker) is discarded — cores, views, caches and tracker shards
// roll back to the round start — and the span is re-executed through the
// serial scheduler, the oracle. Determinism therefore never depends on the
// engine being right about speculation, only on it detecting when it was
// wrong.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"acr/internal/cpu"
	"acr/internal/mem"
	"acr/internal/slice"
)

// roundSpanCycles caps a speculative round's horizon in event-free
// stretches. Smaller spans bound the work discarded on a conflict (and the
// overlay/journal footprint); larger spans amortise round overhead. Rounds
// never cross a timed event, so the cap only matters between events.
const roundSpanCycles = 2048

// ParallelStats describes what the parallel engine did during a run. It is
// deliberately not part of Result: Result must be bit-identical across
// worker counts, while these counters describe the (non-deterministic-free
// but result-invariant) execution strategy.
type ParallelStats struct {
	// Rounds counts speculative rounds attempted; Committed and Aborted
	// partition them. SerialQuanta counts quanta run serially because
	// fewer than two cores were eligible.
	Rounds       int64
	Committed    int64
	Aborted      int64
	SerialQuanta int64
	// SpecInstrs counts instructions executed speculatively and committed;
	// ReplayInstrs counts instructions re-executed serially after aborts.
	SpecInstrs   int64
	ReplayInstrs int64
}

// ParallelStats returns the engine counters of the last Run (zero for
// serial runs).
func (m *Machine) ParallelStats() ParallelStats { return m.parStats }

// hookEvent is one deferred checkpoint hook occurrence, recorded during
// speculation and replayed through the real cpu.Hooks at commit.
type hookEvent struct {
	cycle     int64 // start cycle of the issuing instruction (merge key)
	addr      int64
	old       int64     // FirstStore: word value before the store
	recipe    slice.Ref // Assoc: recipe of the paired store's value
	pc        int32     // Assoc: the ASSOC-ADDR instruction's PC
	predicted int64     // stall the speculative prediction charged
	core      int32
	kind      uint8
}

const (
	evFirstStore uint8 = iota
	evAssoc
)

// parallelEngine owns the worker pool and the per-core speculation state.
// All fields indexed by core id are touched by at most one worker during a
// round; everything else is main-goroutine only.
type parallelEngine struct {
	m *Machine

	views   []*mem.SpecView // per-core speculative memory views
	snaps   []cpu.SpecState // per-core rollback snapshots
	events  [][]hookEvent   // per-core deferred hook events
	scratch [][]int64       // per-core slice-evaluation scratch
	panics  []any           // per-core captured worker panics

	roundH   int64 // current round horizon; frozen while workers run
	eligible []int
	writerOf map[int64]int // line -> writing core, reused per round
	merged   []hookEvent   // reusable merge buffer

	jobs    chan int
	results chan int
}

func newParallelEngine(m *Machine) *parallelEngine {
	n := len(m.cores)
	w := m.cfg.Workers
	if w > n {
		w = n
	}
	e := &parallelEngine{
		m:        m,
		views:    make([]*mem.SpecView, n),
		snaps:    make([]cpu.SpecState, n),
		events:   make([][]hookEvent, n),
		scratch:  make([][]int64, n),
		panics:   make([]any, n),
		eligible: make([]int, 0, n),
		writerOf: make(map[int64]int, 256),
		jobs:     make(chan int, n),
		results:  make(chan int, n),
	}
	for i := range e.views {
		e.views[i] = mem.NewSpecView(m.sys, i)
		e.scratch[i] = make([]int64, 512)
	}
	for i := 0; i < w; i++ {
		go e.worker()
	}
	return e
}

func (e *parallelEngine) shutdown() { close(e.jobs) }

func (e *parallelEngine) worker() {
	for id := range e.jobs {
		e.runCore(id)
		e.results <- id
	}
}

// runCore executes one core's speculative quantum up to the round horizon.
// It touches only the core, its SpecView, its tracker shard and frozen
// shared state. A panic (the simulator's response to architecturally
// impossible situations) is captured and re-raised deterministically by the
// serial replay of the aborted round, on the machine's goroutine.
//
//acr:spec-safe
func (e *parallelEngine) runCore(id int) {
	defer func() {
		if r := recover(); r != nil {
			e.panics[id] = r
		}
	}()
	m := e.m
	c := m.cores[id]
	sv := e.views[id]
	for c.State == cpu.Running && c.Cycles() < e.roundH {
		c.SpecStep(m.program, sv, m.tracker, e)
	}
}

// SpecFirstStore implements cpu.SpecHooks: predict the stall against the
// round-frozen AddrMap and defer the real hook to commit.
//
//acr:spec-safe
func (e *parallelEngine) SpecFirstStore(core int, cycle int64, addr, old int64) int64 {
	m := e.m
	if m.mgr == nil {
		return 0
	}
	sv := e.views[core]
	if sv.AssocdOwn(addr) {
		// The quantum ASSOC-ADDRed this address earlier in the round, so
		// the frozen AddrMap cannot predict the stall (the pending
		// insertion lands at replay, before this event). Unreachable given
		// per-interval log bits, but poison rather than prove: the serial
		// oracle resolves the round.
		sv.Poisoned = true
	}
	stall := m.mgr.PredictFirstStore(addr, old, e.scratch[core])
	e.events[core] = append(e.events[core], hookEvent{
		cycle: cycle, core: int32(core), kind: evFirstStore,
		addr: addr, old: old, predicted: stall,
	})
	return stall
}

// SpecAssoc implements cpu.SpecHooks. AddrMap insertion never stalls
// (OnAssoc returns 0 whether the insertion is accepted or rejected), so the
// prediction is trivial; the insertion itself is deferred to commit.
//
//acr:spec-safe
func (e *parallelEngine) SpecAssoc(core int, cycle int64, pc int, addr int64, recipe slice.Ref) int64 {
	if e.m.handler == nil {
		return 0
	}
	e.events[core] = append(e.events[core], hookEvent{
		cycle: cycle, core: int32(core), kind: evAssoc,
		pc: int32(pc), addr: addr, recipe: recipe,
	})
	return 0
}

// round runs one speculative round to horizon h: dispatch, conflict check,
// then commit, or roll back and replay serially.
func (e *parallelEngine) round(h int64) error {
	m := e.m
	e.roundH = h
	for _, id := range e.eligible {
		c := m.cores[id]
		c.SaveSpec(&e.snaps[id])
		e.views[id].Begin()
		if m.tracker != nil {
			m.tracker.BeginSpec(id)
		}
		e.events[id] = e.events[id][:0]
		e.panics[id] = nil
	}
	m.parStats.Rounds++
	for _, id := range e.eligible {
		e.jobs <- id
	}
	for range e.eligible {
		<-e.results
	}

	ok := true
	for _, id := range e.eligible {
		if e.panics[id] != nil || e.views[id].Poisoned {
			ok = false
		}
	}
	if ok && e.conflicts() {
		ok = false
	}
	if !ok {
		e.abort()
		return m.serialSpan(h)
	}
	return e.commit()
}

// conflicts reports whether any line written by one quantum was touched by
// another. ASSOC-ADDRed addresses count as writes (their replay mutates the
// AddrMap entry other cores' stall predictions may have read).
func (e *parallelEngine) conflicts() bool {
	clear(e.writerOf)
	for _, id := range e.eligible {
		for _, ln := range e.views[id].WriteLines() {
			if w, seen := e.writerOf[ln]; seen && w != id {
				return true
			}
			e.writerOf[ln] = id
		}
	}
	for _, id := range e.eligible {
		for _, ln := range e.views[id].ReadLines() {
			if w, seen := e.writerOf[ln]; seen && w != id {
				return true
			}
		}
	}
	return false
}

// commit applies a conflict-free round in the serial merge order.
func (e *parallelEngine) commit() error {
	m := e.m

	// 1. Memory effects: DRAM words, log bits, directory metadata, cache
	// journals, per-core stats, buffered energy. Per-line effects commute
	// across the round's quanta because each line has at most one writer.
	for _, id := range e.eligible {
		e.views[id].Commit()
	}

	// 2. Hook replay in the serial merge order (⌊start cycle⌋, core id,
	// per-core program order): checkpoint log appends and AddrMap
	// mutations land exactly as the serial oracle would order them. The
	// stable sort keeps each core's events in program order within a
	// cycle. A replay stall differing from the prediction would mean
	// mispredicted timing is already baked into a committed clock; the
	// conflict and poison rules make that unreachable, and the check
	// turns any gap in that argument into a hard error instead of a
	// silently wrong profile.
	e.merged = e.merged[:0]
	for _, id := range e.eligible {
		e.merged = append(e.merged, e.events[id]...)
	}
	sort.SliceStable(e.merged, func(i, j int) bool {
		if e.merged[i].cycle != e.merged[j].cycle {
			return e.merged[i].cycle < e.merged[j].cycle
		}
		return e.merged[i].core < e.merged[j].core
	})
	for i := range e.merged {
		ev := &e.merged[i]
		var stall int64
		switch ev.kind {
		case evFirstStore:
			stall = m.FirstStore(int(ev.core), ev.addr, ev.old)
		case evAssoc:
			stall = m.Assoc(int(ev.core), int(ev.pc), ev.addr, ev.recipe)
		}
		if stall != ev.predicted {
			return fmt.Errorf("sim: parallel hook replay diverged on core %d addr %d (predicted stall %d, replay %d); speculation is unsound for this run",
				ev.core, ev.addr, ev.predicted, stall)
		}
	}

	// 3. Recipe arenas: compaction was deferred during the round so the
	// recorded slice.Refs stayed valid through replay; release now.
	if m.tracker != nil {
		for _, id := range e.eligible {
			m.tracker.CommitSpec(id)
		}
	}

	// 4. Scheduling transitions (replayed through SetState so OnState
	// observers fire exactly once, on the machine's goroutine), meter
	// flushes, clock notes and the step budget.
	for _, id := range e.eligible {
		c := m.cores[id]
		if to := c.State; to != e.snaps[id].SavedState() {
			c.State = e.snaps[id].SavedState()
			c.SetState(to)
		}
		c.FlushAccounting(m.meter)
		m.sched.noteClock(c.Cycles())
		d := c.Instrs - e.snaps[id].SavedInstrs()
		m.steps += d
		m.parStats.SpecInstrs += d
	}
	m.parStats.Committed++
	// The committed quanta moved many cores' clocks at once.
	m.sched.clocksMoved()
	return nil
}

// abort rolls every participating core, view and tracker shard back to the
// round start. The restore is bit-exact, so the serial replay that follows
// sees precisely the state the round started from.
func (e *parallelEngine) abort() {
	m := e.m
	for _, id := range e.eligible {
		m.cores[id].RestoreSpec(&e.snaps[id])
		e.views[id].Abort()
		if m.tracker != nil {
			m.tracker.AbortSpec(id)
		}
	}
	m.parStats.Aborted++
	// The roll-back rewound clocks the heap had already ordered.
	m.sched.clocksMoved()
}

// serialSpan re-executes an aborted round's span through the serial
// scheduler until every running core has reached h (or the machine blocks
// or halts). No timed event can fire inside the span — h never exceeds the
// next armed event — but barrier releases can, exactly as in the serial
// loop. A panic the speculative round captured re-raises here, on the
// machine's goroutine, at the same instruction.
func (m *Machine) serialSpan(h int64) error {
	before := m.steps
	defer func() { m.parStats.ReplayInstrs += m.steps - before }()
	for {
		if m.sched.halted() == len(m.cores) {
			return nil
		}
		if m.sched.running() == 0 {
			if m.sched.atBarrier() > 0 {
				m.releaseBarrier()
				continue
			}
			return errors.New("sim: no runnable cores (scheduling bug)")
		}
		c, bound := m.sched.pick()
		if c.Cycles() >= h {
			return nil
		}
		if bound > h {
			bound = h
		}
		if err := m.stepSpan(c, bound); err != nil {
			return err
		}
	}
}

// runParallel is the parallel counterpart of runSerial. Event handling,
// termination and the single-core fast path are byte-for-byte the serial
// logic; only event-free multi-core stretches run as speculative rounds.
func (m *Machine) runParallel() (Result, error) {
	e := newParallelEngine(m)
	defer e.shutdown()
	for {
		if m.sched.halted() == len(m.cores) {
			break
		}
		if m.sched.running() == 0 {
			if m.sched.atBarrier() > 0 {
				m.releaseBarrier()
				continue
			}
			return Result{}, errors.New("sim: no runnable cores (scheduling bug)")
		}

		c, bound := m.sched.pick()
		horizon := c.Cycles()

		// Timed events up to the horizon, in timestamp order (identical
		// to runSerial).
		ckptTime, haveCkpt := m.coord.next()
		haveCkpt = haveCkpt && ckptTime <= horizon
		errOccur, errDetect, haveErr := m.recov.next()
		haveErr = haveErr && errDetect <= horizon
		switch {
		case haveCkpt && (!haveErr || ckptTime <= errDetect):
			m.coord.onBoundary()
			continue
		case haveErr:
			if err := m.recov.recover(errOccur, errDetect); err != nil {
				return Result{}, err
			}
			continue
		}

		// Round horizon: the next armed event, capped to a span so
		// conflicts stay quantum-granular in event-free stretches.
		h := horizon + roundSpanCycles
		if t, ok := m.coord.next(); ok && t < h {
			h = t
		}
		if _, detect, ok := m.recov.next(); ok && detect < h {
			h = detect
		}
		e.eligible = e.eligible[:0]
		for _, cc := range m.cores {
			if cc.State == cpu.Running && cc.Cycles() < h {
				e.eligible = append(e.eligible, cc.ID)
			}
		}

		if len(e.eligible) < 2 {
			// One movable core: speculation buys nothing. Run the serial
			// quantum verbatim.
			if t, ok := m.coord.next(); ok && t < bound {
				bound = t
			}
			if _, detect, ok := m.recov.next(); ok && detect < bound {
				bound = detect
			}
			if err := m.stepSpan(c, bound); err != nil {
				return Result{}, err
			}
			m.parStats.SerialQuanta++
			continue
		}

		if err := e.round(h); err != nil {
			return Result{}, err
		}
		if m.steps > m.cfg.MaxSteps {
			return Result{}, fmt.Errorf("sim: exceeded %d steps (runaway program?)", m.cfg.MaxSteps)
		}
	}
	return m.result(), nil
}
