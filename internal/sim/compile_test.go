package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"acr/internal/ckpt"
	"acr/internal/cpu"
	"acr/internal/fault"
	"acr/internal/prog"
)

// runCompiled runs p under cfg with the block-compilation engine on and
// returns the result, final memory image and the engine counters.
func runCompiled(t *testing.T, cfg Config, p *prog.Program, workers int) (Result, []int64, cpu.CompileStats) {
	t.Helper()
	cfg.Compile = true
	cfg.Workers = workers
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, memWords(m, p.DataWords), m.CompileStats()
}

// TestCompileBitIdentityFuzz is the block-compilation engine's oracle: a
// sweep of randomized workload shapes, each crossed with every checkpoint
// strategy and with the serial and parallel drivers, asserting that
// Compile=true reproduces the interpreter bit-for-bit — the full Result
// (cycles, instructions, energy totals and per-event counts,
// checkpoint/AddrMap statistics, recorded timeline) and every data-memory
// word. Error injection exercises recovery replay through compiled code;
// RecordTimeline pins observer ordering.
func TestCompileBitIdentityFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	scenarios := 12
	workerChoices := []int{1, 4}
	if testing.Short() {
		scenarios = 4
		workerChoices = []int{1}
	}

	var compiledTotal int64
	for i := 0; i < scenarios; i++ {
		cores := []int{4, 8, 16}[rng.Intn(3)]
		perThread := []int{8, 16, 24}[rng.Intn(3)]
		iters := 2 + rng.Intn(3)
		p := testKernel(cores, perThread, iters)

		base := DefaultConfig(cores)
		if rng.Intn(2) == 1 {
			base.RecordTimeline = true
		}
		ref, refMem, _ := runWorkers(t, base, p, 1)

		// Uncheckpointed serial: the engine's plain-execution oracle.
		label := "scenario " + string(rune('A'+i)) + "/none"
		cres, cmem, cs := runCompiled(t, base, p, 1)
		checkBitIdentical(t, label, ref, cres, refMem, cmem)
		if cs.CompiledInstrs == 0 {
			t.Fatalf("%s: engine never ran compiled code", label)
		}
		compiledTotal += cs.CompiledInstrs

		for _, kind := range ckpt.Kinds() {
			cfg := base
			cfg.Checkpointing = true
			cfg.Strategy = kind
			cfg.PeriodCycles = ref.Cycles / int64(3+rng.Intn(3))
			if rng.Intn(2) == 1 {
				cfg.Errors = fault.Uniform(1+rng.Intn(2), ref.Cycles, cfg.PeriodCycles/2)
			}
			if kind == ckpt.KindAmnesic && rng.Intn(3) == 0 {
				cfg.AdaptivePlacement = true
			}
			for _, workers := range workerChoices {
				label := "scenario " + string(rune('A'+i)) + "/" + kind.String() +
					"/workers=" + string(rune('0'+workers))
				want, wantMem, _ := runWorkers(t, cfg, p, workers)
				got, gotMem, cs := runCompiled(t, cfg, p, workers)
				checkBitIdentical(t, label, want, got, wantMem, gotMem)
				// Speculative rounds bypass the engine by design, so only
				// serial runs are guaranteed compiled instructions.
				if workers == 1 && cs.CompiledInstrs == 0 {
					t.Fatalf("%s: engine never ran compiled code", label)
				}
			}
		}
	}
	if compiledTotal == 0 {
		t.Fatal("no scenario retired compiled instructions")
	}
}

// TestCompileDeoptBitIdentity forces the compiler to refuse blocks via the
// deny hook and checks the interpreter deopt path both executes (the
// denied blocks retire through Core.Step) and stays bit-identical —
// including a full deny, where the engine is pure overhead.
func TestCompileDeoptBitIdentity(t *testing.T) {
	p := testKernel(8, 16, 3)
	cfg := DefaultConfig(8)
	cfg.RecordTimeline = true
	want, wantMem, _ := runWorkers(t, cfg, p, 1)

	run := func(label string, deny func(start, end int) bool) cpu.CompileStats {
		t.Helper()
		c := cfg
		c.Compile = true
		m, err := New(c, p)
		if err != nil {
			t.Fatal(err)
		}
		m.denyCompile(deny)
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		checkBitIdentical(t, label, want, res, wantMem, memWords(m, p.DataWords))
		return m.CompileStats()
	}

	cs := run("deny even blocks", func(start, end int) bool { return start%2 == 0 })
	if cs.Deopts == 0 || cs.InterpSteps == 0 {
		t.Errorf("partial deny took no deopt path: %+v", cs)
	}
	if cs.CompiledInstrs == 0 {
		t.Errorf("partial deny compiled nothing: %+v", cs)
	}

	cs = run("deny all blocks", func(start, end int) bool { return true })
	if cs.CompiledInstrs != 0 || cs.Blocks != 0 {
		t.Errorf("full deny still compiled: %+v", cs)
	}
	if cs.InterpSteps == 0 {
		t.Errorf("full deny retired nothing through the interpreter: %+v", cs)
	}
}

// TestCompileCheckpointedDeopt crosses the deopt path with checkpointing
// and recovery: denied blocks interleave interpreter steps with compiled
// quanta while boundaries and rollbacks fire.
func TestCompileCheckpointedDeopt(t *testing.T) {
	p := testKernel(8, 16, 3)
	ref := DefaultConfig(8)
	base, _, _ := runWorkers(t, ref, p, 1)

	cfg := DefaultConfig(8)
	cfg.Checkpointing = true
	cfg.Strategy = ckpt.KindAmnesic
	cfg.PeriodCycles = base.Cycles / 4
	cfg.Errors = fault.Uniform(1, base.Cycles, cfg.PeriodCycles/2)
	want, wantMem, _ := runWorkers(t, cfg, p, 1)

	c := cfg
	c.Compile = true
	m, err := New(c, p)
	if err != nil {
		t.Fatal(err)
	}
	m.denyCompile(func(start, end int) bool { return start%3 == 0 })
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, "checkpointed deopt", want, res, wantMem, memWords(m, p.DataWords))
	cs := m.CompileStats()
	if cs.InterpSteps == 0 || cs.CompiledInstrs == 0 {
		t.Errorf("mixed path unexercised: %+v", cs)
	}
	if res.Ckpt.Recoveries == 0 {
		t.Error("no recovery fired through the mixed path")
	}
}

// TestCompileResultInvariance pins that the engine toggle is invisible to
// reflect.DeepEqual over the whole Result — the structural guarantee the
// bench memo key relies on to share cells across -compile (cpu.CompileStats
// is deliberately outside Result).
func TestCompileResultInvariance(t *testing.T) {
	p := testKernel(tThreads, tPer, tIters)
	cfg := DefaultConfig(tThreads)
	cfg.RecordTimeline = true
	want, wantMem, _ := runWorkers(t, cfg, p, 1)
	got, gotMem, _ := runCompiled(t, cfg, p, 1)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("results differ:\ninterp:   %+v\ncompiled: %+v", want, got)
	}
	checkBitIdentical(t, "invariance", want, got, wantMem, gotMem)
}
