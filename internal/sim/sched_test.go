package sim

import (
	"testing"

	"acr/internal/ckpt"
	"acr/internal/cpu"
)

// TestSchedulerAggregatesMatchScans proves the incremental syncTime/liveMax
// aggregates equal the reference O(cores) scans at every consultation point:
// with debugCheckAggregates set, every aggregate-served answer self-checks
// against the scan and panics on the first divergence. The machines below
// exercise every path that feeds the aggregates — barrier entry and release,
// checkpoint establishment synchronisation, halts, and recovery roll-backs
// (which rewind clocks and force the stale/rescan path) — under both the
// serial and the parallel engine.
func TestSchedulerAggregatesMatchScans(t *testing.T) {
	debugCheckAggregates = true
	defer func() { debugCheckAggregates = false }()

	scenarios := []struct {
		name string
		cfg  Config
	}{
		{"baseline", DefaultConfig(tThreads)},
		{"ckpt", ckptConfig(t, false, tCkpts)},
		{"amnesic", ckptConfig(t, true, tCkpts)},
		{"errors", errConfig(t, true, tCkpts, 2)},
	}
	local := ckptConfig(t, true, tCkpts)
	local.Mode = ckpt.Local
	scenarios = append(scenarios, struct {
		name string
		cfg  Config
	}{"local-errors", func() Config {
		c := errConfig(t, true, tCkpts, 2)
		c.Mode = ckpt.Local
		return c
	}()})
	scenarios = append(scenarios, struct {
		name string
		cfg  Config
	}{"local", local})

	for _, sc := range scenarios {
		for _, workers := range []int{1, 4} {
			cfg := sc.cfg
			cfg.Workers = workers
			if _, _ = runCfg(t, cfg); t.Failed() {
				t.Fatalf("%s workers=%d: run failed", sc.name, workers)
			}
		}
	}
}

// TestSchedulerAggregatesUnit drives the scheduler directly through the
// transitions the hooks maintain the aggregates over and compares against
// the scans after each step.
func TestSchedulerAggregatesUnit(t *testing.T) {
	cores := make([]*cpu.Core, 4)
	for i := range cores {
		cores[i] = cpu.New(i, 0, len(cores))
	}
	s := newScheduler(cores)

	check := func(label string) {
		t.Helper()
		st, sn := s.syncTimeScan()
		gt, gn := s.syncTime()
		if gt != st || gn != sn {
			t.Fatalf("%s: syncTime (%d,%d) != scan (%d,%d)", label, gt, gn, st, sn)
		}
		for _, floor := range []int64{0, 50, 10_000} {
			if got, want := s.liveMax(floor), s.liveMaxScan(floor); got != want {
				t.Fatalf("%s: liveMax(%d) %d != scan %d", label, floor, got, want)
			}
		}
	}

	advance := func(c *cpu.Core, to int64) {
		c.SetCycles(to)
		s.noteClock(to)
	}

	check("initial")
	advance(cores[0], 10)
	advance(cores[1], 25)
	check("advanced")
	cores[1].SetState(cpu.AtBarrier)
	check("one at barrier")
	advance(cores[2], 40)
	cores[2].SetState(cpu.AtBarrier)
	cores[0].SetState(cpu.AtBarrier)
	advance(cores[3], 31)
	cores[3].SetState(cpu.AtBarrier)
	check("all at barrier")
	for _, c := range cores {
		advance(c, 60)
		c.SetState(cpu.Running)
	}
	check("released")
	advance(cores[3], 90)
	cores[3].SetState(cpu.Halted)
	check("halted drops out of live set")
	// Recovery-shaped rewind: clocks move backwards, states restored.
	for _, c := range cores {
		c.SetCycles(15)
		c.SetState(cpu.Running)
	}
	s.invalidate()
	check("after rewind + invalidate")
	advance(cores[0], 100)
	check("advance after rescan re-seed")
}
