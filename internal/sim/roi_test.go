package sim

import (
	"testing"

	acr "acr/internal/core"
)

// TestROIStatsExcludeWarmup: with an ROI start, the reported interval
// history must begin after the warm-up, and the warm-up checkpoints must
// not count against the budget.
func TestROIStatsExcludeWarmup(t *testing.T) {
	base, _ := baseline(t)
	cfg := ckptConfig(t, true, tCkpts)
	cfg.ROIStartCycles = base.Cycles / 3
	cfg.MaxCheckpoints = 4
	res, _ := runCfg(t, cfg)
	// The budget caps post-ROI checkpoints; the run may end before the
	// budget is exhausted.
	if res.Ckpt.Checkpoints > 4 || res.Ckpt.Checkpoints < 2 {
		t.Errorf("budgeted checkpoints = %d, want 2..4", res.Ckpt.Checkpoints)
	}
	// Warm-up stores (first touches of every array) must not appear in
	// the ROI statistics: with a warm AddrMap, the ROI intervals see
	// omissions from their very first interval.
	if len(res.Intervals) == 0 {
		t.Fatal("no ROI intervals")
	}
	if res.Intervals[0].Omitted == 0 {
		t.Errorf("first ROI interval has no omissions — AddrMap not warm: %+v", res.Intervals[0])
	}
}

// TestROIRunsAreStillCorrect: ROI bookkeeping must not perturb semantics.
func TestROIRunsAreStillCorrect(t *testing.T) {
	_, base := baseline(t)
	bcfg, _ := baseline(t)
	cfg := errConfig(t, true, tCkpts, 2)
	cfg.ROIStartCycles = bcfg.Cycles / 4
	res, memv := runCfg(t, cfg)
	if res.Ckpt.Recoveries != 2 {
		t.Fatalf("recoveries = %d", res.Ckpt.Recoveries)
	}
	checkSameMem(t, memv, base, "roi")
}

// TestAdaptiveDefersReduceCheckpoints: on a workload with uniformly high
// omission, adaptive placement must stretch intervals and realise fewer
// checkpoints for the same budget and period.
func TestAdaptiveDefersReduceCheckpoints(t *testing.T) {
	cfg := ckptConfig(t, true, 12)
	cfg.ACR = acr.Config{Threshold: 10, MapCapacity: 4096 * tThreads}
	uni, _ := runCfg(t, cfg)
	cfg.AdaptivePlacement = true
	ada, _ := runCfg(t, cfg)
	if ada.Ckpt.Checkpoints > uni.Ckpt.Checkpoints {
		t.Errorf("adaptive realised more checkpoints (%d) than uniform (%d)",
			ada.Ckpt.Checkpoints, uni.Ckpt.Checkpoints)
	}
	if ada.Cycles > uni.Cycles {
		t.Errorf("adaptive slower (%d) than uniform (%d) on an omission-rich kernel",
			ada.Cycles, uni.Cycles)
	}
}

func TestTimelineRecordsEvents(t *testing.T) {
	cfg := errConfig(t, true, tCkpts, 1)
	cfg.RecordTimeline = true
	res, _ := runCfg(t, cfg)
	var ckpts, errs, recs int
	for _, e := range res.Timeline {
		switch e.Kind {
		case EvCheckpoint:
			ckpts++
		case EvError:
			errs++
		case EvRecovery:
			recs++
		}
	}
	if int64(ckpts) != res.Ckpt.Checkpoints+1 { // +1: the pre-budget warmup/initial boundary may add
		// The timeline includes unbudgeted boundaries too; just require
		// at least the budgeted count.
		if int64(ckpts) < res.Ckpt.Checkpoints {
			t.Errorf("timeline checkpoints %d < budgeted %d", ckpts, res.Ckpt.Checkpoints)
		}
	}
	if errs != 1 || recs != 1 {
		t.Errorf("timeline errors/recoveries = %d/%d, want 1/1", errs, recs)
	}
	// Events must be time-ordered.
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Time < res.Timeline[i-1].Time {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
	// Without the flag, no timeline is retained.
	cfg.RecordTimeline = false
	res2, _ := runCfg(t, cfg)
	if len(res2.Timeline) != 0 {
		t.Error("timeline recorded without the flag")
	}
}

func TestEventKindNames(t *testing.T) {
	names := map[EventKind]string{
		EvCheckpoint: "checkpoint", EvDefer: "defer",
		EvError: "error", EvRecovery: "recovery", EventKind(99): "event",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("EventKind(%d) = %q, want %q", k, k.String(), want)
		}
	}
}
