package sim

import (
	"testing"

	"acr/internal/ckpt"
	acr "acr/internal/core"
	"acr/internal/isa"
	"acr/internal/prog"
)

func iv(logged, omitted int64) ckpt.IntervalStat {
	return ckpt.IntervalStat{Logged: logged, Omitted: omitted}
}

// TestShouldDefer pins the adaptive-placement trigger of §V-D1: defer only
// with enough history, enough open-interval volume, and an omission ratio
// clearly above the historical average.
func TestShouldDefer(t *testing.T) {
	// 3 closed intervals, 50% average omission, mean size 100.
	history := []ckpt.IntervalStat{iv(50, 50), iv(50, 50), iv(50, 50)}

	cases := []struct {
		name    string
		history []ckpt.IntervalStat
		open    ckpt.IntervalStat
		want    bool
	}{
		{"too little history", history[:2], iv(10, 90), false},
		{"zero historical volume", []ckpt.IntervalStat{iv(0, 0), iv(0, 0), iv(0, 0)}, iv(10, 90), false},
		{"open interval too small to judge", history, iv(4, 45), false},
		{"open ratio at the average", history, iv(50, 50), false},
		{"open ratio inside the 2-point margin", history, iv(49, 51), false},
		{"open ratio above the margin", history, iv(40, 60), true},
		{"fully omitted interval", history, iv(0, 100), true},
	}
	for _, c := range cases {
		if got := shouldDefer(c.history, c.open); got != c.want {
			t.Errorf("%s: shouldDefer = %v, want %v", c.name, got, c.want)
		}
	}
}

// phasedKernel is a workload whose omission profile changes mid-run: a first
// phase of plain-store rewrites (logged, never omitted) followed by a second
// phase of associated-store rewrites over the same array (omission-rich once
// the old values themselves came from associated stores). The early
// intervals give the adaptive trigger a low-omission history; the late ones
// push the open interval's ratio above it and fire deferrals.
func phasedKernel(threads, perThread, plainIters, assocIters int) *prog.Program {
	b := prog.New("phasedkernel")
	a := b.Data(threads * perThread)
	out := b.Data(threads * perThread)

	const (
		rBase  isa.Reg = 1
		rIdx   isa.Reg = 2
		rVal   isa.Reg = 3
		rEnd   isa.Reg = 4
		rAddr  isa.Reg = 5
		rTmp   isa.Reg = 6
		rNbr   isa.Reg = 7
		rOBase isa.Reg = 8
		rIter  isa.Reg = 20
		rItEnd isa.Reg = 21
	)
	b.OpI(isa.MULI, rBase, prog.RegTID, int64(perThread))
	b.OpI(isa.ADDI, rBase, rBase, a)
	b.OpI(isa.ADDI, rNbr, prog.RegTID, 1)
	b.Op3(isa.REM, rNbr, rNbr, prog.RegNTHR)
	b.OpI(isa.MULI, rNbr, rNbr, int64(perThread))
	b.OpI(isa.ADDI, rNbr, rNbr, a)
	b.OpI(isa.MULI, rOBase, prog.RegTID, int64(perThread))
	b.OpI(isa.ADDI, rOBase, rOBase, out)
	b.Li(rEnd, int64(perThread))

	iteration := func(assoc bool) func() {
		st := b.St
		if assoc {
			st = b.StAssoc
		}
		return func() {
			b.Loop(rIdx, rEnd, func() {
				b.Op3(isa.ADD, rAddr, rOBase, rIdx)
				b.Ld(rVal, rAddr, 0)
				b.OpI(isa.SHRI, rVal, rVal, 1)
				b.OpI(isa.ADDI, rVal, rVal, 3)
				b.Op3(isa.ADD, rVal, rVal, prog.RegTID)
				b.Op3(isa.ADD, rAddr, rBase, rIdx)
				st(rVal, rAddr, 0)
			})
			b.Barrier()
			b.Loop(rIdx, rEnd, func() {
				b.Op3(isa.ADD, rAddr, rNbr, rIdx)
				b.Ld(rTmp, rAddr, 0)
				b.OpI(isa.MULI, rTmp, rTmp, 2)
				b.OpI(isa.ADDI, rTmp, rTmp, 1)
				b.Op3(isa.ADD, rAddr, rOBase, rIdx)
				st(rTmp, rAddr, 0)
			})
			b.Barrier()
		}
	}
	b.LoopConst(rIter, rItEnd, int64(plainIters), iteration(false))
	b.LoopConst(rIter, rItEnd, int64(assocIters), iteration(true))
	b.Halt()
	return b.MustBuild()
}

// TestAdaptiveDeferCap: on the phased kernel the adaptive trigger must fire
// at least once, and the timeline may never show more than maxDefers
// consecutive deferrals before a checkpoint lands — the cap bounds the
// interval stretch, and with it the worst-case roll-back depth.
func TestAdaptiveDeferCap(t *testing.T) {
	p := phasedKernel(tThreads, tPer, 16, 24)
	ref, err := New(DefaultConfig(tThreads), p)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(tThreads)
	cfg.Checkpointing = true
	cfg.Amnesic = true
	cfg.ACR = acr.Config{Threshold: 10, MapCapacity: 4096 * tThreads}
	cfg.PeriodCycles = refRes.Cycles / 8
	cfg.AdaptivePlacement = true
	cfg.RecordTimeline = true
	m, err := New(cfg, phasedKernel(tThreads, tPer, 16, 24))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	defers, run := 0, 0
	for _, e := range res.Timeline {
		switch e.Kind {
		case EvDefer:
			defers++
			run++
			if run > maxDefers {
				t.Fatalf("%d consecutive deferrals at t=%d, cap is %d", run, e.Time, maxDefers)
			}
		case EvCheckpoint:
			run = 0
		}
	}
	if defers == 0 {
		t.Error("adaptive run recorded no deferrals; the trigger never fired")
	}
	if res.Ckpt.Checkpoints == 0 {
		t.Error("adaptive run realised no checkpoints")
	}
}
