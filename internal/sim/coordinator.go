package sim

import (
	"acr/internal/ckpt"
	"acr/internal/cpu"
	"acr/internal/energy"
)

// coordinator is the checkpoint-placement engine the machine composes. It
// owns the boundary cadence (uniform, or recomputation-aware when adaptive
// placement is on) and drives establishment through the ckpt.Manager.
type coordinator interface {
	// next returns the next armed boundary time; ok is false when no
	// boundary is armed (checkpointing disabled or budget exhausted).
	next() (t int64, ok bool)
	// onBoundary handles a reached boundary: it either defers it
	// (adaptive placement) or establishes the checkpoint.
	onBoundary()
}

// noCheckpoints is the coordinator of an uncheckpointed machine.
type noCheckpoints struct{}

func (noCheckpoints) next() (int64, bool) { return 0, false }
func (noCheckpoints) onBoundary()         {}

// ckptCoordinator implements coordinator over the machine's checkpoint
// manager: uniform boundaries PeriodCycles apart, a checkpoint budget
// (MaxCheckpoints) measured from the region of interest, and the optional
// adaptive deferral of §V-D1/§V-D3.
type ckptCoordinator struct {
	m *Machine

	nextCkpt   int64
	ckptsDone  int64
	roiPending bool
	defers     int
}

func newCkptCoordinator(m *Machine) *ckptCoordinator {
	return &ckptCoordinator{
		m:          m,
		nextCkpt:   m.cfg.PeriodCycles,
		roiPending: m.cfg.ROIStartCycles > 0,
	}
}

func (co *ckptCoordinator) next() (int64, bool) {
	if !co.roiPending && co.ckptsDone >= co.m.cfg.MaxCheckpoints {
		return 0, false
	}
	return co.nextCkpt, true
}

func (co *ckptCoordinator) onBoundary() {
	if co.deferCheckpoint() {
		return
	}
	co.establish()
}

// deferCheckpoint reports whether adaptive placement wants to push the
// pending boundary out (by a quarter period, at most three times), and
// performs the deferral: the boundary is stretched while the open
// interval's omission ratio runs above the historical average, i.e. while
// recomputation is absorbing the would-be checkpoint.
func (co *ckptCoordinator) deferCheckpoint() bool {
	if !co.m.cfg.AdaptivePlacement || co.roiPending || co.defers >= maxDefers {
		return false
	}
	mgr := co.m.mgr
	if !shouldDefer(mgr.Intervals(), mgr.OpenInterval()) {
		return false
	}
	co.defers++
	co.m.record(Event{Time: co.nextCkpt, Kind: EvDefer, Core: -1})
	co.nextCkpt += co.m.cfg.PeriodCycles / 4
	return true
}

// maxDefers caps how often one boundary may be pushed out, bounding the
// interval stretch (and hence the roll-back depth) to 1.75 periods.
const maxDefers = 3

// shouldDefer is the adaptive-placement trigger: defer while the open
// interval omits above the historical average. It needs at least three
// closed intervals of history and enough open-interval volume (half the
// mean interval size) to judge the region; the 2-point margin keeps
// boundary noise from oscillating the decision.
func shouldDefer(history []ckpt.IntervalStat, open ckpt.IntervalStat) bool {
	if len(history) < 3 {
		return false
	}
	var logged, omitted, size float64
	for _, iv := range history {
		logged += float64(iv.Logged)
		omitted += float64(iv.Omitted)
		size += float64(iv.Size())
	}
	if logged+omitted == 0 {
		return false
	}
	avgRatio := omitted / (logged + omitted)
	if float64(open.Size()) < size/float64(len(history))/2 {
		// Too little volume yet to judge the region.
		return false
	}
	ratio := float64(open.Omitted) / float64(open.Size())
	return ratio > avgRatio+0.02
}

// establish creates a coordinated checkpoint (global or local).
func (co *ckptCoordinator) establish() {
	m := co.m
	// Establishment start: the latest point any live core has reached.
	tMax := m.sched.liveMax(0)
	info := m.mgr.Establish(tMax, m.archStates())
	// The closed interval's volume: the per-checkpoint traffic the event
	// stream reports (reported by Establish because some strategies —
	// differential — only learn it while sealing).
	ivl := info.ClosedInterval

	maxRelease := tMax
	for _, g := range info.Groups {
		// Group start time: the latest member (under Global the single
		// group makes this tMax, i.e. full coordination skew).
		tg := int64(0)
		for _, c := range m.cores {
			if g.Members.Has(c.ID) && c.State != cpu.Halted && c.Cycles() > tg {
				tg = c.Cycles()
			}
		}
		stall := barrierCycles(g.Cores) + handlerCycles +
			m.sys.TransferCycles(g.FlushedWords+g.ArchWords+g.LogWords) +
			m.sys.FastTransferCycles(g.FastLogWords)
		release := tg + stall
		if release > maxRelease {
			maxRelease = release
		}
		for _, c := range m.cores {
			if g.Members.Has(c.ID) && c.State != cpu.Halted {
				c.SetCycles(release)
			}
		}
		m.meter.Add(energy.BarrierSync, uint64(g.Cores))
		m.meter.Add(energy.HandlerOp, uint64(g.Cores))
	}
	m.sched.noteClock(maxRelease)
	// The releases moved running cores' clocks without a state transition.
	m.sched.clocksMoved()

	switch {
	case co.roiPending && tMax >= m.cfg.ROIStartCycles:
		// The first checkpoint inside the region of interest:
		// statistics are measured from here on. Checkpoints taken
		// during warm-up kept the AddrMap and log bits in steady
		// state but are not reported and not budgeted.
		co.roiPending = false
		m.mgr.ResetStats()
	case co.roiPending:
		// Warm-up checkpoint: unbudgeted.
	default:
		co.ckptsDone++
	}
	co.defers = 0
	m.record(Event{Time: tMax, Kind: EvCheckpoint, Core: -1,
		Detail: ivl.Logged, Aux: ivl.Omitted, Dur: maxRelease - tMax})
	// Boundaries continue on the wall clock; if establishment (or a
	// recovery) overshot several boundaries, take one checkpoint now and
	// resume the cadence from here rather than firing a burst. The next
	// boundary must land strictly after every core has resumed, or a
	// period shorter than the establishment stall would livelock the
	// machine in back-to-back checkpoints.
	co.nextCkpt += m.cfg.PeriodCycles
	if co.nextCkpt <= maxRelease {
		co.nextCkpt = maxRelease + 1
	}
}
