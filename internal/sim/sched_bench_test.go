package sim

import (
	"fmt"
	"testing"

	"acr/internal/cpu"
)

// BenchmarkSchedulerPick isolates the scheduler's pick/advance/reinsert
// cycle — the operation the grouped calendar queue makes O(1) — across
// machine widths up to 256 cores. The reference scan is O(cores) per pick,
// so its cost quadruples from 64 to 256 cores; the queue's should stay flat.
// Core clocks start staggered and each pick advances the chosen core by a
// short quantum, the steady-state shape of the serial run loop.
func BenchmarkSchedulerPick(b *testing.B) {
	for _, n := range []int{8, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			cores := make([]*cpu.Core, n)
			for i := range cores {
				cores[i] = cpu.New(i, 0, n)
				cores[i].AddCycles(int64(i % 7))
			}
			s := newScheduler(cores)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				best, _ := s.pick()
				best.AddCycles(3)
				s.noteClock(best.Cycles())
			}
		})
	}
}

// BenchmarkSchedulerPickScan is the same cycle through the O(cores)
// reference scan, the pre-queue cost model — kept for the comparison the
// pick benchmark's flat profile is measured against.
func BenchmarkSchedulerPickScan(b *testing.B) {
	for _, n := range []int{8, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			cores := make([]*cpu.Core, n)
			for i := range cores {
				cores[i] = cpu.New(i, 0, n)
				cores[i].AddCycles(int64(i % 7))
			}
			s := newScheduler(cores)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				best, _ := s.pickScan()
				best.AddCycles(3)
				s.noteClock(best.Cycles())
			}
		})
	}
}
