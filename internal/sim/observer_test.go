package sim

import (
	"reflect"
	"testing"
)

// recordingObserver retains the full stream for assertions.
type recordingObserver struct {
	events []Event
}

func (o *recordingObserver) OnEvent(e Event) { o.events = append(o.events, e) }

// TestObserverTimestampOrder pins the delivery contract documented on
// Observer: events arrive in emission order with nondecreasing timestamps
// (EvDefer, stamped at the boundary it defers, is the documented exception),
// machine-wide events carry Core = -1, and per-core barrier events carry the
// releasing core.
func TestObserverTimestampOrder(t *testing.T) {
	obs := &recordingObserver{}
	cfg := errConfig(t, true, tCkpts, 1)
	cfg.Observers = []Observer{obs}
	runCfg(t, cfg)

	if len(obs.events) == 0 {
		t.Fatal("observer saw no events")
	}
	last := int64(0)
	kinds := map[EventKind]int{}
	for i, e := range obs.events {
		kinds[e.Kind]++
		switch e.Kind {
		case EvBarrier:
			if e.Core < 0 || int(e.Core) >= tThreads {
				t.Fatalf("event %d: barrier core %d out of range", i, e.Core)
			}
			if e.Dur < 0 {
				t.Fatalf("event %d: negative barrier wait %d", i, e.Dur)
			}
		case EvDefer:
			// Boundary-time stamped; exempt from the ordering check.
			continue
		default:
			if e.Core != -1 {
				t.Fatalf("event %d: machine-wide %v has core %d, want -1", i, e.Kind, e.Core)
			}
		}
		if e.Time < last {
			t.Fatalf("event %d (%v) at %d precedes predecessor at %d", i, e.Kind, e.Time, last)
		}
		last = e.Time
	}
	if kinds[EvBarrier] == 0 {
		t.Error("no barrier events delivered")
	}
	if kinds[EvCheckpoint] == 0 || kinds[EvError] != 1 || kinds[EvRecovery] != 1 {
		t.Errorf("kind counts %v, want checkpoints>0 and one error/recovery pair", kinds)
	}
}

// TestTimelineCap: with Config.TimelineCap set, Result.Timeline is the ring
// buffer's view — the most recent cap events in emission order — and
// TimelineDropped accounts for the discarded prefix.
func TestTimelineCap(t *testing.T) {
	full := errConfig(t, true, tCkpts, 1)
	full.RecordTimeline = true
	refRes, _ := runCfg(t, full)
	if len(refRes.Timeline) <= 4 {
		t.Fatalf("reference timeline too short (%d events) to exercise the cap", len(refRes.Timeline))
	}

	capped := errConfig(t, true, tCkpts, 1)
	capped.RecordTimeline = true
	capped.TimelineCap = 4
	res, _ := runCfg(t, capped)

	if len(res.Timeline) != 4 {
		t.Fatalf("capped timeline has %d events, want 4", len(res.Timeline))
	}
	want := refRes.Timeline[len(refRes.Timeline)-4:]
	if !reflect.DeepEqual(res.Timeline, want) {
		t.Errorf("capped timeline is not the suffix of the full one:\n%+v\nwant\n%+v", res.Timeline, want)
	}
	if got, want := res.TimelineDropped, int64(len(refRes.Timeline)-4); got != want {
		t.Errorf("TimelineDropped = %d, want %d", got, want)
	}
	if refRes.TimelineDropped != 0 {
		t.Errorf("uncapped run dropped %d events", refRes.TimelineDropped)
	}
}

// corruptingObserver violates the observer contract: it writes machine
// memory from the callback.
type corruptingObserver struct {
	m *Machine
}

func (o *corruptingObserver) OnEvent(e Event) {
	if e.Kind == EvBarrier {
		o.m.Mem().WriteWord(0, 1<<40)
	}
}

// TestMutatingObserverCaught demonstrates that the determinism/correctness
// harness detects an observer that mutates machine state: clobbering one
// word at barrier releases must surface as a divergence from the golden
// memory image. (A checkpointed no-error run, so recovery cannot mask the
// corruption.) If this test ever fails, observers have gained a way to
// write state without the regression suite noticing.
func TestMutatingObserverCaught(t *testing.T) {
	obs := &corruptingObserver{}
	cfg := ckptConfig(t, true, tCkpts)
	cfg.Observers = []Observer{obs}
	p := testKernel(tThreads, tPer, tIters)
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	obs.m = m
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got := memWords(m, p.DataWords)
	want := golden(tThreads, tPer, tIters)
	diverged := false
	for i := range want {
		if got[i] != want[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("mutating observer left no detectable trace in final memory")
	}
}
