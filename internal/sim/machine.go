// Package sim ties the substrates into a whole-machine simulator: in-order
// cores (cpu), the memory subsystem (mem), the energy model (energy), the
// baseline checkpointing substrate (ckpt), ACR (core), and the fail-stop
// fault model (fault). It plays the role Snipersim plays in the paper's
// evaluation (§IV).
//
// The machine is layered: a quantum-batched scheduler (sched.go) picks
// which core executes and for how long; a checkpoint coordinator
// (coordinator.go) owns boundary placement and establishment; a recovery
// engine (recovery.go) owns roll-back and replay; observers (observer.go)
// receive the event stream. Machine composes the engines behind small
// interfaces and keeps only the glue: the run loop, barrier release, and
// result assembly.
//
// Scheduling is deterministic: among runnable cores, the one with the
// smallest local clock executes next (ties broken by core id); barriers
// synchronise all live cores; checkpoint boundaries and error detections
// fire as timed events interleaved with execution in timestamp order.
// Recovery is real, not modelled: memory and architectural state are rolled
// back, omitted values are recomputed along their Slices, and the machine
// re-executes the lost work, so the wasted time and energy of Equation 3
// accrue naturally and final program outputs are verifiably identical to
// error-free runs.
//
//acr:deterministic
package sim

import (
	"errors"
	"fmt"
	"math/bits"

	"acr/internal/analysis"
	"acr/internal/ckpt"
	acr "acr/internal/core"
	"acr/internal/cpu"
	"acr/internal/energy"
	"acr/internal/fault"
	"acr/internal/isa"
	"acr/internal/mem"
	"acr/internal/prog"
	"acr/internal/slice"
)

// Config assembles a machine. The zero value is not runnable; start from
// DefaultConfig.
type Config struct {
	Cores  int
	Mem    mem.Config
	Energy *energy.Model

	// Checkpointing enables the BER substrate. Mode selects global or
	// local coordination. Amnesic attaches ACR.
	Checkpointing bool
	Mode          ckpt.Mode
	Amnesic       bool
	ACR           acr.Config
	// Strategy selects the checkpoint scheme (see ckpt.Kinds). The zero
	// value is the conventional full-logging baseline; setting Amnesic
	// with the zero Strategy resolves to ckpt.KindAmnesic (the legacy
	// spelling), and an explicitly amnesic strategy (amnesic, auto)
	// implies Amnesic. Differential and tiered require Global mode and
	// reject Amnesic.
	Strategy ckpt.Kind

	// PeriodCycles is the checkpoint period; MaxCheckpoints caps how many
	// checkpoints are established (the paper fixes the count per run and
	// distributes them uniformly, §IV).
	PeriodCycles   int64
	MaxCheckpoints int64
	// ROIStartCycles marks the start of the region of interest: a
	// checkpoint is established there and the checkpointing statistics
	// are reset, so reported volumes exclude program initialisation
	// (the paper measures the ROI, §IV). Zero means the ROI starts at 0.
	ROIStartCycles int64
	// AdaptivePlacement enables recomputation-aware checkpoint placement
	// — the future-work idea of paper §V-D1/§V-D3: instead of blindly
	// checkpointing at uniform boundaries, a boundary is deferred (by a
	// quarter period, at most three times) while the open interval's
	// omission ratio runs above the historical average, i.e. while
	// recomputation is absorbing the would-be checkpoint. Checkpoints
	// are thereby spent on the amnesia-resistant execution regions and
	// stretched over the amnesia-friendly ones.
	AdaptivePlacement bool

	// Errors optionally schedules fail-stop errors.
	Errors *fault.Schedule

	// MaxSteps bounds total instruction executions as a runaway guard.
	MaxSteps int64

	// Compile enables the block-compilation execution engine: basic
	// blocks of the program are compiled once into straight-line Go
	// closures and retired without per-instruction dispatch, with the
	// interpreter as the deopt fallback (unhandled blocks, speculative
	// rounds). Results are bit-identical to Compile=false for every
	// configuration; only wall-clock time changes — like Workers, the
	// knob is a speed seam, not a semantic one.
	Compile bool

	// Workers selects intra-run parallelism: up to Workers OS threads
	// execute independent cores' quanta concurrently in conflict-checked
	// speculative rounds (parallel.go), committing in the serial merge
	// order and falling back to serial replay on conflict. Results are
	// bit-identical to Workers<=1 for every configuration; only wall-clock
	// time changes. 0 and 1 mean serial execution.
	Workers int

	// Coalesce enables scheduler quantum coalescing on the serial engine:
	// when a pick's bound is set by a peer core whose next instructions
	// are core-private (register-only ALU, branches, NOPs — they touch no
	// shared line, no barrier, no checkpoint state), the peer's private
	// prefix is executed eagerly. Private instructions commute across
	// cores, so eager execution is exactly the serial interleaving
	// reordered within a commutative window — and it raises the pick's
	// bound, so the picked core dispatches longer quanta (the PR 9
	// finding: the average serial quantum of 2.7 instructions kept the
	// block engine at parity). Results are bit-identical with the knob
	// off; only wall clock moves — a speed seam like Compile and Workers.
	Coalesce bool

	// RecordTimeline retains checkpoint/recovery events in the Result.
	RecordTimeline bool
	// TimelineCap bounds the recorded timeline to the most recent N
	// events (0 = unbounded). Result.TimelineDropped reports how many
	// earlier events the ring buffer discarded.
	TimelineCap int
	// Observers receive the machine's event stream alongside the
	// built-in timeline recorder. Observers must be deterministic and
	// must not mutate machine state.
	Observers []Observer
}

// DefaultConfig returns the paper's Table I machine with checkpointing
// disabled (the NoCkpt baseline).
func DefaultConfig(cores int) Config {
	return Config{
		Cores:    cores,
		Mem:      mem.DefaultConfig(),
		Energy:   energy.Default22nm(),
		ACR:      acr.DefaultConfig(cores),
		MaxSteps: 2_000_000_000,
		Coalesce: true,
	}
}

// Result summarises a run.
type Result struct {
	// Cycles is the makespan: the largest core-local clock at completion.
	Cycles int64
	// Instrs is the total number of retired instructions.
	Instrs int64
	// EnergyPJ is total energy including leakage; DynamicPJ excludes it.
	EnergyPJ  float64
	DynamicPJ float64
	// Barriers counts barrier episodes.
	Barriers int64

	// Strategy names the checkpoint strategy of the run ("" when
	// checkpointing is disabled).
	Strategy string
	// Ckpt carries checkpointing statistics (zero value when disabled).
	Ckpt ckpt.Stats
	// Intervals is the per-interval checkpoint volume history.
	Intervals []ckpt.IntervalStat
	// AddrMap carries ACR statistics (zero value when not amnesic).
	AddrMap acr.AddrMapStats
	// Mem summarises memory-hierarchy activity: per-core hits/misses per
	// cache level, directory traffic, flushed lines.
	Mem mem.Stats
	// EnergyEvents is the per-event energy count breakdown by event name
	// (the decomposition of DynamicPJ).
	EnergyEvents map[string]uint64
	// PeriodCycles and ROIStartCycles echo the realised checkpoint
	// cadence (zero when checkpointing is disabled), so exported run
	// profiles are self-describing and an observed replay can reconstruct
	// the exact configuration.
	PeriodCycles   int64
	ROIStartCycles int64
	// Timeline is the event log (empty unless Config.RecordTimeline).
	// When Config.TimelineCap is set, it is truncated to the most recent
	// TimelineCap events and TimelineDropped counts the discarded rest.
	Timeline        []Event
	TimelineDropped int64
}

// EDP returns the energy-delay product in pJ·cycles.
func (r Result) EDP() float64 { return r.EnergyPJ * float64(r.Cycles) }

// EventKind tags a timeline event.
type EventKind uint8

// Timeline event kinds.
const (
	EvCheckpoint EventKind = iota
	EvDefer
	EvError
	EvRecovery
	EvBarrier
)

func (k EventKind) String() string {
	switch k {
	case EvCheckpoint:
		return "checkpoint"
	case EvDefer:
		return "defer"
	case EvError:
		return "error"
	case EvRecovery:
		return "recovery"
	case EvBarrier:
		return "barrier"
	}
	return "event"
}

// Event is one entry of the machine's event stream: checkpoints
// established, boundaries deferred, barriers released, errors detected and
// recoveries performed. Per kind:
//
//   - EvCheckpoint: Time is the establishment start (latest live core
//     clock), Dur the establishment stall (all groups released by
//     Time+Dur), Detail the closing interval's logged words and Aux its
//     amnesically omitted words.
//   - EvDefer: Time is the deferred boundary's wall-clock time.
//   - EvError: Time is the detection synchronisation point; Detail is the
//     error's occurrence time.
//   - EvRecovery: Time is the moment the stalled group resumes, Dur the
//     recovery wall-cycles (detection point = Time-Dur), Detail the words
//     restored and Aux the values recomputed along Slices.
//   - EvBarrier: one event per participating core (Core set). Time is the
//     synchronised release; Dur is that core's wait, including the
//     synchronisation cost (arrival = Time-Dur).
type Event struct {
	Time int64
	Kind EventKind
	// Core identifies the participating core for per-core events
	// (EvBarrier); machine-wide events carry -1.
	Core int32
	// Detail and Aux carry kind-specific counts (see above).
	Detail int64
	Aux    int64
	// Dur is the span length in cycles for span-shaped events.
	Dur int64
}

// Machine is a runnable simulated machine. It composes the scheduling,
// checkpointing and recovery layers; the substrate handles (cores, memory,
// meter, tracker) are shared with the engines.
type Machine struct {
	cfg     Config
	program *prog.Program
	cores   []*cpu.Core
	sys     *mem.System
	meter   *energy.Meter
	tracker *slice.Tracker
	handler *acr.Handler
	mgr     *ckpt.Manager

	sched     *scheduler
	runner    *cpu.BlockRunner
	coord     coordinator
	recov     recoverer
	observers []Observer
	timeline  *timelineRecorder

	barriers   int64
	steps      int64
	parStats   ParallelStats
	schedStats SchedStats
	// eagerSpan carries the instructions the last coalesce call retired
	// eagerly into the next stepSpan's quantum accounting, so the quantum
	// metric reads "instructions retired per scheduler dispatch".
	eagerSpan int64
	// eagerFn is the bound method value of eagerSteps, and hooks the
	// machine boxed as cpu.Hooks — both taken once at construction so the
	// per-pick coalescing path allocates nothing.
	eagerFn func(*cpu.Core, int64) bool
	hooks   cpu.Hooks

	// archScratch is the reusable buffer archStates fills per checkpoint
	// boundary; both consumers (ckpt.NewManager, ckpt.Establish) copy it
	// into the snapshot they build.
	archScratch []cpu.ArchState
}

// New builds a machine for program p. The program is validated; its Init
// function seeds data memory (modelling the pre-ROI phase, not charged).
func New(cfg Config, p *prog.Program) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("sim: config needs at least one core (got %d)", cfg.Cores)
	}
	if cfg.Energy == nil {
		return nil, errors.New("sim: config needs an energy model (Config.Energy is nil; start from DefaultConfig)")
	}
	if cfg.Checkpointing && cfg.PeriodCycles <= 0 {
		return nil, fmt.Errorf("sim: checkpointing enabled with non-positive period %d", cfg.PeriodCycles)
	}
	if cfg.Checkpointing && cfg.MaxCheckpoints == 0 {
		cfg.MaxCheckpoints = 1 << 62 // unlimited
	}
	// Resolve the strategy dimension: the legacy Amnesic flag spells
	// ckpt.KindAmnesic; amnesic-family strategies imply the ACR machinery.
	if cfg.Strategy == ckpt.KindFull && cfg.Amnesic {
		cfg.Strategy = ckpt.KindAmnesic
	}
	if cfg.Strategy.Amnesic() {
		cfg.Amnesic = true
	} else if cfg.Amnesic {
		return nil, fmt.Errorf("sim: strategy %v does not compose with Amnesic (it has no log to omit from)", cfg.Strategy)
	}
	if cfg.Strategy != ckpt.KindFull && !cfg.Checkpointing {
		return nil, fmt.Errorf("sim: strategy %v requires checkpointing", cfg.Strategy)
	}
	if cfg.Errors != nil && !cfg.Checkpointing {
		return nil, errors.New("sim: error schedule without checkpointing cannot recover")
	}
	if cfg.Errors != nil {
		if err := cfg.Errors.Validate(cfg.PeriodCycles, cfg.Strategy.Retention()); err != nil {
			return nil, err
		}
		// The schedule carries a consumption cursor; clone it so two
		// machines built from one Config (e.g. a serial oracle and a
		// parallel run under comparison) don't steal each other's errors.
		errs := *cfg.Errors
		cfg.Errors = &errs
	}
	if cfg.TimelineCap < 0 {
		return nil, fmt.Errorf("sim: negative timeline cap %d", cfg.TimelineCap)
	}

	m := &Machine{cfg: cfg, program: p}
	m.meter = energy.NewMeter(cfg.Energy)
	words := p.DataWords
	if words == 0 {
		words = 64
	}
	sys, err := mem.NewSystem(cfg.Mem, cfg.Cores, words, m.meter)
	if err != nil {
		return nil, err
	}
	m.sys = sys
	if p.Init != nil {
		buf := make([]int64, words)
		p.Init(buf)
		for i, v := range buf {
			if v != 0 {
				m.sys.WriteWord(int64(i), v)
			}
		}
	}

	m.cores = make([]*cpu.Core, cfg.Cores)
	for i := range m.cores {
		m.cores[i] = cpu.New(i, p.Entry, cfg.Cores)
	}
	m.sched = newScheduler(m.cores)
	m.eagerFn = m.eagerSteps
	m.hooks = m

	if cfg.Amnesic {
		if !cfg.Checkpointing {
			return nil, errors.New("sim: amnesic mode requires checkpointing")
		}
		if cfg.Strategy == ckpt.KindAuto && cfg.ACR.SitePlan == nil {
			// The auto strategy's static pass: classify every ASSOC site
			// ahead of time from the program's dataflow.
			plan, err := analysis.PlanCheckpointSites(p.Code, p.Entry, cfg.ACR.Threshold)
			if err != nil {
				return nil, fmt.Errorf("sim: auto strategy analysis: %w", err)
			}
			cfg.ACR.SitePlan = plan.SiteCaps
			m.cfg.ACR.SitePlan = plan.SiteCaps
		}
		m.tracker = slice.NewTracker(cfg.Cores)
		m.handler = acr.NewHandler(cfg.ACR, m.tracker, m.meter)
		for _, c := range m.cores {
			c.AssocEnabled = true
			m.tracker.ResetCore(c.ID, &c.Regs)
		}
	}
	m.coord = noCheckpoints{}
	m.recov = noErrors{}
	if cfg.Checkpointing {
		mgr, err := ckpt.NewManager(cfg.Strategy, cfg.Mode, m.sys, m.meter, m.handler, m.archStates())
		if err != nil {
			return nil, err
		}
		m.mgr = mgr
		m.coord = newCkptCoordinator(m)
	}
	if cfg.Errors != nil {
		m.recov = newRecoveryEngine(m, cfg.Errors)
	}
	m.observers = append(m.observers, cfg.Observers...)
	if cfg.RecordTimeline {
		m.timeline = &timelineRecorder{cap: cfg.TimelineCap}
		m.observers = append(m.observers, m.timeline)
	}
	if cfg.Compile {
		// Block discovery cannot fail on a Validate-clean program; if a
		// pathological image defeats it anyway, the run deopts wholesale
		// to the interpreter — Compile never changes results, so it must
		// never change runnability either.
		if table, err := analysis.BuildBlockTable(p.Code, p.Entry); err == nil {
			m.runner = cpu.NewBlockRunner(p, table, m.sys, m.tracker, m, cfg.Amnesic)
		}
	}
	return m, nil
}

// CompileStats returns the block-engine counters (zero value when the
// engine is off). Like ParallelStats, the counters are diagnostics, not
// part of the architectural Result.
func (m *Machine) CompileStats() cpu.CompileStats {
	if m.runner == nil {
		return cpu.CompileStats{}
	}
	return m.runner.Stats()
}

// denyCompile installs the block-compile veto (test hook forcing deopts).
func (m *Machine) denyCompile(deny func(start, end int) bool) {
	if m.runner != nil {
		m.runner.SetDeny(deny)
	}
}

// Mem exposes the memory system for result verification.
func (m *Machine) Mem() *mem.System { return m.sys }

// Manager exposes the checkpoint manager (nil when disabled).
func (m *Machine) Manager() *ckpt.Manager { return m.mgr }

func (m *Machine) archStates() []cpu.ArchState {
	if m.archScratch == nil {
		m.archScratch = make([]cpu.ArchState, len(m.cores))
	}
	for i, c := range m.cores {
		m.archScratch[i] = c.Arch()
	}
	return m.archScratch
}

// FirstStore implements cpu.Hooks.
func (m *Machine) FirstStore(core int, addr, old int64) int64 {
	if m.mgr == nil {
		return 0
	}
	return m.mgr.OnFirstStore(core, addr, old)
}

// Assoc implements cpu.Hooks. pc is the ASSOC-ADDR instruction's address,
// keying the auto strategy's static site plan.
func (m *Machine) Assoc(core, pc int, addr int64, recipe slice.Ref) int64 {
	if m.handler == nil {
		return 0
	}
	return m.handler.OnAssoc(core, pc, addr, recipe)
}

// barrierCycles is the synchronisation cost of n cores coordinating.
func barrierCycles(n int) int64 { return 40 + 4*int64(n) }

// handlerCycles is the fixed checkpoint/recovery handler overhead.
const handlerCycles = 25

// Run executes the program to completion and returns the run summary.
//
// The loop is event-paced, not instruction-paced: each iteration picks the
// minimum-clock core and either handles a timed event that its horizon has
// reached (checkpoint boundary or error detection, in timestamp order) or
// executes the core in a tight quantum until the earliest of the next
// event time and the point where the scheduling choice must be revisited.
// Within a quantum only the picked core's clock moves, so the instruction
// interleaving — and therefore every statistic — is bit-identical to the
// per-instruction scheduling it replaces.
// SchedStatsObserver is an optional Observer extension: when a run
// completes, the machine hands the serial engine's dispatch diagnostics to
// every configured observer that implements it. Kept separate from the
// event stream because SchedStats describe the engine, not the simulated
// machine — they vary with Coalesce/Compile/Workers while Result does not.
type SchedStatsObserver interface {
	ObserveSchedStats(SchedStats)
}

func (m *Machine) Run() (Result, error) {
	res, err := m.runEngine()
	if err == nil {
		for _, o := range m.cfg.Observers {
			if so, ok := o.(SchedStatsObserver); ok {
				so.ObserveSchedStats(m.schedStats)
			}
		}
	}
	return res, err
}

func (m *Machine) runEngine() (Result, error) {
	if m.cfg.Workers > 1 && len(m.cores) > 1 {
		return m.runParallel()
	}
	return m.runSerial()
}

func (m *Machine) runSerial() (Result, error) {
	// The armed-event queries are cached across quanta: next() depends
	// only on state the event handlers themselves mutate (checkpoint
	// schedule and budget in onBoundary/establish, the fault schedule's
	// cursor in recover), so the cache is refreshed exactly after a
	// handler runs instead of re-querying two interfaces per pick.
	ckptTime, haveCkpt := m.coord.next()
	errOccur, errDetect, haveErr := m.recov.next()
	refresh := func() {
		ckptTime, haveCkpt = m.coord.next()
		errOccur, errDetect, haveErr = m.recov.next()
	}
	for {
		if m.sched.halted() == len(m.cores) {
			break
		}
		if m.sched.running() == 0 {
			if m.sched.atBarrier() > 0 {
				m.releaseBarrier()
				refresh()
				continue
			}
			return Result{}, errors.New("sim: no runnable cores (scheduling bug)")
		}

		c, bound := m.sched.pick()
		horizon := c.Cycles()

		// Timed events up to the horizon, in timestamp order.
		ckptDue := haveCkpt && ckptTime <= horizon
		errDue := haveErr && errDetect <= horizon
		switch {
		case ckptDue && (!errDue || ckptTime <= errDetect):
			m.coord.onBoundary()
			refresh()
			continue
		case errDue:
			if err := m.recov.recover(errOccur, errDetect); err != nil {
				return Result{}, err
			}
			refresh()
			continue
		}

		// No event before the horizon: run the quantum. Coalescing first
		// tries to raise the bound by eagerly retiring peers' core-private
		// prefixes — capped by the coalescing window and, crucially, by
		// every armed event time, so no peer ever executes across a
		// checkpoint boundary or an error-detection point. The bound then
		// shrinks to the next armed event as before, so the event fires
		// exactly when the minimum clock reaches it.
		if m.cfg.Coalesce && bound != unbounded {
			ceil := c.Cycles() + coalesceWindow
			if haveCkpt && ckptTime < ceil {
				ceil = ckptTime
			}
			if haveErr && errDetect < ceil {
				ceil = errDetect
			}
			if bound < ceil {
				e0 := m.schedStats.EagerInstrs
				bound = m.sched.coalesce(c, bound, ceil, m.eagerFn)
				// Attribute the eager work to this dispatch: the
				// quantum metric counts instructions retired per pick.
				m.eagerSpan = m.schedStats.EagerInstrs - e0
			}
		}
		if haveCkpt && ckptTime < bound {
			bound = ckptTime
		}
		if haveErr && errDetect < bound {
			bound = errDetect
		}
		if err := m.stepSpan(c, bound); err != nil {
			return Result{}, err
		}
	}
	return m.result(), nil
}

// stepSpan executes one quantum of core c: instructions retire until the
// core leaves the Running state or its clock reaches bound, through the
// compiled-block engine when it is on and the interpreter otherwise. The
// MaxSteps runaway guard keeps the interpreter's exact semantics — the
// instruction that exceeds the budget retires first, then the run fails.
// Energy flushes once per quantum instead of once per instruction; counts
// are commutative, so totals stay bit-identical.
func (m *Machine) stepSpan(c *cpu.Core, bound int64) error {
	var n int64
	if m.runner != nil {
		n = m.runner.Run(c, bound, m.cfg.MaxSteps-m.steps+1)
		m.steps += n
	} else {
		for c.State == cpu.Running && c.Cycles() < bound {
			c.Step(m.program, m.sys, m.tracker, m)
			m.steps++
			n++
			if m.steps > m.cfg.MaxSteps {
				break
			}
		}
	}
	m.schedStats.note(n + m.eagerSpan)
	m.eagerSpan = 0
	if m.steps > m.cfg.MaxSteps {
		c.FlushAccounting(m.meter)
		return fmt.Errorf("sim: exceeded %d steps (runaway program?)", m.cfg.MaxSteps)
	}
	c.FlushAccounting(m.meter)
	m.sched.noteClock(c.Cycles())
	return nil
}

// coalesceWindow bounds how far past the picked core's clock (in cycles)
// peers are eagerly advanced during quantum coalescing. A small window
// keeps the reordering local: eager work is never more than one cache-miss
// latency ahead of the architectural frontier.
const coalesceWindow = 64

// maxEagerSteps caps the instruction budget of a single eager call so one
// long register-only stretch cannot monopolise the run loop between picks.
const maxEagerSteps = 256

// SchedStats summarises the serial engine's dispatch granularity. Like
// ParallelStats these are engine diagnostics — they are not part of the
// architectural Result, so Result stays bit-identical across Coalesce,
// Compile, and Workers settings.
type SchedStats struct {
	// Spans counts dispatched quanta; SpanInstrs the instructions retired
	// per dispatch — the picked core's quantum plus any peer instructions
	// the coalescer eagerly retired to raise that pick's bound.
	// SpanInstrs/Spans is the average serial quantum length — the number
	// PR 9 measured at 2.7 for the flat scheduler.
	Spans      int64
	SpanInstrs int64
	// EagerCalls and EagerInstrs count coalescing's eager private-prefix
	// executions: peer instructions retired outside any quantum to raise
	// the pick bound.
	EagerCalls  int64
	EagerInstrs int64
	// QuantumHist buckets quantum lengths by powers of two: bucket 0
	// counts empty quanta, bucket i>0 counts lengths in [2^(i-1), 2^i).
	// The last bucket absorbs overflow.
	QuantumHist [16]int64
}

//acr:noalloc
func (s *SchedStats) note(n int64) {
	s.Spans++
	s.SpanInstrs += n
	b := bits.Len64(uint64(n))
	if b >= len(s.QuantumHist) {
		b = len(s.QuantumHist) - 1
	}
	s.QuantumHist[b]++
}

// SchedStats reports serial-engine dispatch diagnostics for the run so far.
func (m *Machine) SchedStats() SchedStats { return m.schedStats }

// AvgQuantum returns the average quantum length in instructions, 0 before
// any quantum has been dispatched.
func (s SchedStats) AvgQuantum() float64 {
	if s.Spans == 0 {
		return 0
	}
	return float64(s.SpanInstrs) / float64(s.Spans)
}

// eagerSteps retires core p's private-instruction prefix while its clock is
// below ceil, reporting whether it advanced at all. Private instructions —
// register-only ALU ops, branches, NOPs, and ASSOCADDR markers with
// association disabled — read and write only p's own architectural state
// and per-core accounting, so retiring them here commutes with every other
// core's execution: the machine state after the full run is bit-identical
// to the strict smallest-clock-first order. Memory operations, barriers,
// halts and enabled association markers end the prefix.
//
//acr:noalloc
func (m *Machine) eagerSteps(p *cpu.Core, ceil int64) bool {
	code := m.program.Code
	advanced := false
	for n := 0; n < maxEagerSteps && p.State == cpu.Running && p.Cycles() < ceil && m.steps < m.cfg.MaxSteps; n++ {
		op := code[p.PC].Op
		if !(op == isa.NOP || op.IsALU() || op.IsBranch() || (op == isa.ASSOCADDR && !p.AssocEnabled)) {
			break
		}
		p.Step(m.program, m.sys, m.tracker, m.hooks)
		m.steps++
		m.schedStats.EagerInstrs++
		advanced = true
	}
	if advanced {
		m.schedStats.EagerCalls++
	}
	return advanced
}

// releaseBarrier resumes all barrier-waiting cores at the synchronised time,
// publishing one EvBarrier span per participant (arrival to release).
func (m *Machine) releaseBarrier() {
	t, n := m.sched.syncTime()
	t += barrierCycles(n)
	for _, c := range m.cores {
		if c.State == cpu.AtBarrier {
			if len(m.observers) > 0 {
				m.record(Event{Time: t, Kind: EvBarrier, Core: int32(c.ID), Dur: t - c.Cycles()})
			}
			c.SetCycles(t)
			c.SetState(cpu.Running)
		}
	}
	m.meter.Add(energy.BarrierSync, uint64(n))
	m.barriers++
	m.sched.noteClock(t)
}

// record publishes an event to every attached observer.
func (m *Machine) record(e Event) {
	for _, o := range m.observers {
		o.OnEvent(e)
	}
}

func (m *Machine) result() Result {
	r := Result{Barriers: m.barriers}
	for _, c := range m.cores {
		c.FlushAccounting(m.meter) // defensive: quanta flush on exit already
		if c.Cycles() > r.Cycles {
			r.Cycles = c.Cycles()
		}
		r.Instrs += c.Instrs
	}
	m.meter.AddLeakage(float64(r.Cycles) * float64(len(m.cores)))
	r.EnergyPJ = m.meter.TotalPJ()
	r.DynamicPJ = m.meter.DynamicPJ()
	r.EnergyEvents = m.meter.Counts()
	r.Mem = m.sys.Stats()
	if m.mgr != nil {
		r.Strategy = m.mgr.Kind().String()
		r.Ckpt = m.mgr.Stats()
		r.Intervals = append(r.Intervals, m.mgr.Intervals()...)
		r.PeriodCycles = m.cfg.PeriodCycles
		r.ROIStartCycles = m.cfg.ROIStartCycles
	}
	if m.handler != nil {
		r.AddrMap = m.handler.AddrMap().Stats()
	}
	if m.timeline != nil {
		r.Timeline = m.timeline.snapshot()
		r.TimelineDropped = m.timeline.dropped
	}
	return r
}
