// Package sim ties the substrates into a whole-machine simulator: in-order
// cores (cpu), the memory subsystem (mem), the energy model (energy), the
// baseline checkpointing substrate (ckpt), ACR (core), and the fail-stop
// fault model (fault). It plays the role Snipersim plays in the paper's
// evaluation (§IV).
//
// Scheduling is deterministic: among runnable cores, the one with the
// smallest local clock executes next (ties broken by core id); barriers
// synchronise all live cores; checkpoint boundaries and error detections
// fire as timed events interleaved with execution in timestamp order.
// Recovery is real, not modelled: memory and architectural state are rolled
// back, omitted values are recomputed along their Slices, and the machine
// re-executes the lost work, so the wasted time and energy of Equation 3
// accrue naturally and final program outputs are verifiably identical to
// error-free runs.
package sim

import (
	"errors"
	"fmt"
	"math/bits"

	"acr/internal/ckpt"
	acr "acr/internal/core"
	"acr/internal/cpu"
	"acr/internal/energy"
	"acr/internal/fault"
	"acr/internal/mem"
	"acr/internal/prog"
	"acr/internal/slice"
)

// Config assembles a machine. The zero value is not runnable; start from
// DefaultConfig.
type Config struct {
	Cores  int
	Mem    mem.Config
	Energy *energy.Model

	// Checkpointing enables the BER substrate. Mode selects global or
	// local coordination. Amnesic attaches ACR.
	Checkpointing bool
	Mode          ckpt.Mode
	Amnesic       bool
	ACR           acr.Config

	// PeriodCycles is the checkpoint period; MaxCheckpoints caps how many
	// checkpoints are established (the paper fixes the count per run and
	// distributes them uniformly, §IV).
	PeriodCycles   int64
	MaxCheckpoints int64
	// ROIStartCycles marks the start of the region of interest: a
	// checkpoint is established there and the checkpointing statistics
	// are reset, so reported volumes exclude program initialisation
	// (the paper measures the ROI, §IV). Zero means the ROI starts at 0.
	ROIStartCycles int64
	// AdaptivePlacement enables recomputation-aware checkpoint placement
	// — the future-work idea of paper §V-D1/§V-D3: instead of blindly
	// checkpointing at uniform boundaries, a boundary is deferred (by a
	// quarter period, at most three times) while the open interval's
	// omission ratio runs above the historical average, i.e. while
	// recomputation is absorbing the would-be checkpoint. Checkpoints
	// are thereby spent on the amnesia-resistant execution regions and
	// stretched over the amnesia-friendly ones.
	AdaptivePlacement bool

	// Errors optionally schedules fail-stop errors.
	Errors *fault.Schedule

	// MaxSteps bounds total instruction executions as a runaway guard.
	MaxSteps int64

	// RecordTimeline retains checkpoint/recovery events in the Result.
	RecordTimeline bool
}

// DefaultConfig returns the paper's Table I machine with checkpointing
// disabled (the NoCkpt baseline).
func DefaultConfig(cores int) Config {
	return Config{
		Cores:    cores,
		Mem:      mem.DefaultConfig(),
		Energy:   energy.Default22nm(),
		ACR:      acr.DefaultConfig(cores),
		MaxSteps: 2_000_000_000,
	}
}

// Result summarises a run.
type Result struct {
	// Cycles is the makespan: the largest core-local clock at completion.
	Cycles int64
	// Instrs is the total number of retired instructions.
	Instrs int64
	// EnergyPJ is total energy including leakage; DynamicPJ excludes it.
	EnergyPJ  float64
	DynamicPJ float64
	// Barriers counts barrier episodes.
	Barriers int64

	// Ckpt carries checkpointing statistics (zero value when disabled).
	Ckpt ckpt.Stats
	// Intervals is the per-interval checkpoint volume history.
	Intervals []ckpt.IntervalStat
	// AddrMap carries ACR statistics (zero value when not amnesic).
	AddrMap acr.AddrMapStats
	// Timeline is the event log (empty unless Config.RecordTimeline).
	Timeline []Event
}

// EDP returns the energy-delay product in pJ·cycles.
func (r Result) EDP() float64 { return r.EnergyPJ * float64(r.Cycles) }

// EventKind tags a timeline event.
type EventKind uint8

// Timeline event kinds.
const (
	EvCheckpoint EventKind = iota
	EvDefer
	EvError
	EvRecovery
)

func (k EventKind) String() string {
	switch k {
	case EvCheckpoint:
		return "checkpoint"
	case EvDefer:
		return "defer"
	case EvError:
		return "error"
	case EvRecovery:
		return "recovery"
	}
	return "event"
}

// Event is one entry of the machine's timeline: when checkpoints were
// established, boundaries deferred, errors detected and recoveries
// performed. The timeline is recorded only when Config.RecordTimeline is
// set (it grows with the run).
type Event struct {
	Time int64
	Kind EventKind
	// Detail carries kind-specific counts: logged words for checkpoints,
	// restored words for recoveries.
	Detail int64
}

// Machine is a runnable simulated machine.
type Machine struct {
	cfg     Config
	program *prog.Program
	cores   []*cpu.Core
	sys     *mem.System
	meter   *energy.Meter
	tracker *slice.Tracker
	handler *acr.Handler
	mgr     *ckpt.Manager
	faults  *fault.Schedule

	nextCkpt   int64
	ckptsDone  int64
	roiPending bool
	defers     int
	timeline   []Event
	barriers   int64
	errIndex   int
	steps      int64
}

// New builds a machine for program p. The program is validated; its Init
// function seeds data memory (modelling the pre-ROI phase, not charged).
func New(cfg Config, p *prog.Program) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores <= 0 {
		return nil, errors.New("sim: config needs at least one core")
	}
	if cfg.Checkpointing && cfg.PeriodCycles <= 0 {
		return nil, errors.New("sim: checkpointing enabled with non-positive period")
	}
	if cfg.Checkpointing && cfg.MaxCheckpoints == 0 {
		cfg.MaxCheckpoints = 1 << 62 // unlimited
	}
	if cfg.Errors != nil && !cfg.Checkpointing {
		return nil, errors.New("sim: error schedule without checkpointing cannot recover")
	}
	if cfg.Errors != nil {
		if err := cfg.Errors.Validate(cfg.PeriodCycles); err != nil {
			return nil, err
		}
	}

	m := &Machine{cfg: cfg, program: p, faults: cfg.Errors}
	m.meter = energy.NewMeter(cfg.Energy)
	words := p.DataWords
	if words == 0 {
		words = 64
	}
	m.sys = mem.NewSystem(cfg.Mem, cfg.Cores, words, m.meter)
	if p.Init != nil {
		buf := make([]int64, words)
		p.Init(buf)
		for i, v := range buf {
			if v != 0 {
				m.sys.WriteWord(int64(i), v)
			}
		}
	}

	m.cores = make([]*cpu.Core, cfg.Cores)
	for i := range m.cores {
		m.cores[i] = cpu.New(i, p.Entry, cfg.Cores)
	}

	if cfg.Amnesic {
		if !cfg.Checkpointing {
			return nil, errors.New("sim: amnesic mode requires checkpointing")
		}
		m.tracker = slice.NewTracker(cfg.Cores)
		m.handler = acr.NewHandler(cfg.ACR, m.tracker, m.meter)
		for _, c := range m.cores {
			c.AssocEnabled = true
			m.tracker.ResetCore(c.ID, &c.Regs)
		}
	}
	if cfg.Checkpointing {
		m.mgr = ckpt.NewManager(cfg.Mode, m.sys, m.meter, m.handler, m.archStates())
		m.nextCkpt = cfg.PeriodCycles
		m.roiPending = cfg.ROIStartCycles > 0
	}
	return m, nil
}

// Mem exposes the memory system for result verification.
func (m *Machine) Mem() *mem.System { return m.sys }

// Manager exposes the checkpoint manager (nil when disabled).
func (m *Machine) Manager() *ckpt.Manager { return m.mgr }

func (m *Machine) archStates() []cpu.ArchState {
	arch := make([]cpu.ArchState, len(m.cores))
	for i, c := range m.cores {
		arch[i] = c.Arch()
	}
	return arch
}

// FirstStore implements cpu.Hooks.
func (m *Machine) FirstStore(core int, addr, old int64) int64 {
	if m.mgr == nil {
		return 0
	}
	return m.mgr.OnFirstStore(core, addr, old)
}

// Assoc implements cpu.Hooks.
func (m *Machine) Assoc(core int, addr int64, recipe slice.Ref) int64 {
	if m.handler == nil {
		return 0
	}
	return m.handler.OnAssoc(core, addr, recipe)
}

// barrierCycles is the synchronisation cost of n cores coordinating.
func barrierCycles(n int) int64 { return 40 + 4*int64(n) }

// handlerCycles is the fixed checkpoint/recovery handler overhead.
const handlerCycles = 25

// Run executes the program to completion and returns the run summary.
func (m *Machine) Run() (Result, error) {
	for {
		running, atBarrier, halted := m.census()
		if halted == len(m.cores) {
			break
		}
		if running == 0 && atBarrier > 0 {
			m.releaseBarrier()
			continue
		}
		if running == 0 {
			return Result{}, errors.New("sim: no runnable cores (scheduling bug)")
		}

		c := m.minRunningCore()
		horizon := c.Cycles()

		// Timed events up to the horizon, in timestamp order.
		ckptTime, haveCkpt := m.pendingCheckpoint(horizon)
		errOccur, errDetect, haveErr := m.pendingError(horizon)
		switch {
		case haveCkpt && (!haveErr || ckptTime <= errDetect):
			if m.deferCheckpoint() {
				continue
			}
			m.doCheckpoint()
			continue
		case haveErr:
			if err := m.doRecovery(errOccur, errDetect); err != nil {
				return Result{}, err
			}
			continue
		}

		c.Step(m.program, m.sys, m.tracker, m, m.meter)
		m.steps++
		if m.steps > m.cfg.MaxSteps {
			return Result{}, fmt.Errorf("sim: exceeded %d steps (runaway program?)", m.cfg.MaxSteps)
		}
	}
	return m.result(), nil
}

func (m *Machine) census() (running, atBarrier, halted int) {
	for _, c := range m.cores {
		switch c.State {
		case cpu.Running:
			running++
		case cpu.AtBarrier:
			atBarrier++
		default:
			halted++
		}
	}
	return
}

func (m *Machine) minRunningCore() *cpu.Core {
	var best *cpu.Core
	for _, c := range m.cores {
		if c.State != cpu.Running {
			continue
		}
		if best == nil || c.Cycles() < best.Cycles() {
			best = c
		}
	}
	return best
}

func (m *Machine) pendingCheckpoint(horizon int64) (int64, bool) {
	if m.mgr == nil || (!m.roiPending && m.ckptsDone >= m.cfg.MaxCheckpoints) {
		return 0, false
	}
	if horizon >= m.nextCkpt {
		return m.nextCkpt, true
	}
	return 0, false
}

func (m *Machine) pendingError(horizon int64) (occur, detect int64, ok bool) {
	occur, detect, ok = m.faults.Pending()
	if !ok || detect > horizon {
		return 0, 0, false
	}
	return occur, detect, true
}

// releaseBarrier resumes all barrier-waiting cores at the synchronised time.
func (m *Machine) releaseBarrier() {
	t := int64(0)
	n := 0
	for _, c := range m.cores {
		if c.State == cpu.AtBarrier {
			n++
			if c.Cycles() > t {
				t = c.Cycles()
			}
		}
	}
	t += barrierCycles(n)
	for _, c := range m.cores {
		if c.State == cpu.AtBarrier {
			c.SetCycles(t)
			c.State = cpu.Running
		}
	}
	m.meter.Add(energy.BarrierSync, uint64(n))
	m.barriers++
}

// deferCheckpoint reports whether adaptive placement wants to push the
// pending boundary out, and performs the deferral.
func (m *Machine) deferCheckpoint() bool {
	if !m.cfg.AdaptivePlacement || m.roiPending || m.defers >= 3 {
		return false
	}
	ivs := m.mgr.Intervals()
	if len(ivs) < 3 {
		return false
	}
	var logged, omitted, size float64
	for _, iv := range ivs {
		logged += float64(iv.Logged)
		omitted += float64(iv.Omitted)
		size += float64(iv.Size())
	}
	if logged+omitted == 0 {
		return false
	}
	avgRatio := omitted / (logged + omitted)
	open := m.mgr.OpenInterval()
	if float64(open.Size()) < size/float64(len(ivs))/2 {
		// Too little volume yet to judge the region.
		return false
	}
	ratio := float64(open.Omitted) / float64(open.Size())
	if ratio <= avgRatio+0.02 {
		return false
	}
	m.defers++
	m.record(Event{Time: m.nextCkpt, Kind: EvDefer})
	m.nextCkpt += m.cfg.PeriodCycles / 4
	return true
}

func (m *Machine) record(e Event) {
	if m.cfg.RecordTimeline {
		m.timeline = append(m.timeline, e)
	}
}

// doCheckpoint establishes a coordinated checkpoint (global or local).
func (m *Machine) doCheckpoint() {
	// Establishment start: the latest point any live core has reached.
	tMax := int64(0)
	for _, c := range m.cores {
		if c.State != cpu.Halted && c.Cycles() > tMax {
			tMax = c.Cycles()
		}
	}
	info := m.mgr.Establish(tMax, m.archStates())

	maxRelease := tMax
	for _, g := range info.Groups {
		// Group start time: the latest member (under Global the single
		// group makes this tMax, i.e. full coordination skew).
		tg := int64(0)
		for _, c := range m.cores {
			if g.Mask&(1<<uint(c.ID)) != 0 && c.State != cpu.Halted && c.Cycles() > tg {
				tg = c.Cycles()
			}
		}
		stall := barrierCycles(g.Cores) + handlerCycles +
			m.sys.TransferCycles(g.FlushedWords+g.ArchWords+g.LogWords)
		release := tg + stall
		if release > maxRelease {
			maxRelease = release
		}
		for _, c := range m.cores {
			if g.Mask&(1<<uint(c.ID)) != 0 && c.State != cpu.Halted {
				c.SetCycles(release)
			}
		}
		m.meter.Add(energy.BarrierSync, uint64(g.Cores))
		m.meter.Add(energy.HandlerOp, uint64(g.Cores))
	}

	switch {
	case m.roiPending && tMax >= m.cfg.ROIStartCycles:
		// The first checkpoint inside the region of interest:
		// statistics are measured from here on. Checkpoints taken
		// during warm-up kept the AddrMap and log bits in steady
		// state but are not reported and not budgeted.
		m.roiPending = false
		m.mgr.ResetStats()
	case m.roiPending:
		// Warm-up checkpoint: unbudgeted.
	default:
		m.ckptsDone++
	}
	m.defers = 0
	m.record(Event{Time: tMax, Kind: EvCheckpoint, Detail: int64(m.mgr.Stats().LoggedWords)})
	// Boundaries continue on the wall clock; if establishment (or a
	// recovery) overshot several boundaries, take one checkpoint now and
	// resume the cadence from here rather than firing a burst. The next
	// boundary must land strictly after every core has resumed, or a
	// period shorter than the establishment stall would livelock the
	// machine in back-to-back checkpoints.
	m.nextCkpt += m.cfg.PeriodCycles
	if m.nextCkpt <= maxRelease {
		m.nextCkpt = maxRelease + 1
	}
}

// doRecovery rolls the machine back to the most recent safe checkpoint,
// recomputing amnesically omitted values, and charges the recovery stall.
func (m *Machine) doRecovery(errOccur, errDetect int64) error {
	target, err := m.mgr.SafeTarget(errOccur)
	if err != nil {
		return err
	}
	info, err := m.mgr.Rollback(target, len(m.cores))
	if err != nil {
		return err
	}

	// Detection point: every live core has at least reached errDetect.
	tDetect := errDetect
	for _, c := range m.cores {
		if c.State != cpu.Halted && c.Cycles() > tDetect {
			tDetect = c.Cycles()
		}
	}

	// The group that must stall for the roll-back: everyone under Global;
	// the erring core's communication component under Local (the paper's
	// coordinated-local recovery, §V-E). The erring core rotates
	// deterministically across injected errors.
	groupMask := m.sys.AllCoresMask()
	if m.mgr.Mode() == ckpt.Local {
		errCore := m.errIndex % len(m.cores)
		for _, g := range m.sys.CommGroups() {
			if g&(1<<uint(errCore)) != 0 {
				groupMask = g
				break
			}
		}
	}
	m.errIndex++

	maxRecompute := int64(0)
	for coreID, rc := range info.RecomputeCycles {
		if groupMask&(1<<uint(coreID)) != 0 && rc > maxRecompute {
			maxRecompute = rc
		}
	}
	stall := handlerCycles + barrierCycles(bits.OnesCount64(groupMask)) +
		m.sys.TransferCycles(int(info.LogWordsRead+info.WordsRestored)) +
		maxRecompute
	release := tDetect + stall

	// Functional roll-back of every core (determinism keeps non-group
	// cores' re-execution identical under Local; only the stall charge
	// is confined to the group).
	for i, c := range m.cores {
		c.Restore(&target.Arch[i])
		if groupMask&(1<<uint(c.ID)) != 0 {
			c.SetCycles(release)
		} else {
			c.SetCycles(tDetect)
		}
		if m.tracker != nil {
			m.tracker.ResetCore(c.ID, &c.Regs)
		}
	}
	m.faults.Consume()
	m.record(Event{Time: errOccur, Kind: EvError})
	m.record(Event{Time: release, Kind: EvRecovery, Detail: info.WordsRestored})
	return nil
}

func (m *Machine) result() Result {
	r := Result{Barriers: m.barriers}
	for _, c := range m.cores {
		if c.Cycles() > r.Cycles {
			r.Cycles = c.Cycles()
		}
		r.Instrs += c.Instrs
	}
	m.meter.AddLeakage(float64(r.Cycles) * float64(len(m.cores)))
	r.EnergyPJ = m.meter.TotalPJ()
	r.DynamicPJ = m.meter.DynamicPJ()
	if m.mgr != nil {
		r.Ckpt = m.mgr.Stats()
		r.Intervals = append(r.Intervals, m.mgr.Intervals()...)
	}
	if m.handler != nil {
		r.AddrMap = m.handler.AddrMap().Stats()
	}
	r.Timeline = m.timeline
	return r
}
