package sim

import (
	"strings"
	"testing"

	"acr/internal/ckpt"
	"acr/internal/fault"
	"acr/internal/isa"
	"acr/internal/prog"
)

// testKernel builds an iterative multithreaded program, shaped like the NAS
// codes: over several iterations, each thread overwrites its partition of an
// array with values computed arithmetically from the indices (stored with
// ASSOC-ADDR), then, after a barrier, reads its neighbour's partition and
// overwrites an output array with transformed values. Re-writing the same
// addresses across checkpoint intervals is what creates omission
// opportunities: the old value logged at the first update of an interval is
// the value an associated store produced earlier.
func testKernel(threads, perThread, iters int) *prog.Program {
	b := prog.New("testkernel")
	a := b.Data(threads * perThread)
	out := b.Data(threads * perThread)

	const (
		rBase  isa.Reg = 1
		rIdx   isa.Reg = 2
		rVal   isa.Reg = 3
		rEnd   isa.Reg = 4
		rAddr  isa.Reg = 5
		rTmp   isa.Reg = 6
		rNbr   isa.Reg = 7
		rOBase isa.Reg = 8
		rIter  isa.Reg = 20
		rItEnd isa.Reg = 21
	)
	// rBase = a + tid*perThread
	b.OpI(isa.MULI, rBase, prog.RegTID, int64(perThread))
	b.OpI(isa.ADDI, rBase, rBase, a)
	b.OpI(isa.ADDI, rNbr, prog.RegTID, 1)
	b.Op3(isa.REM, rNbr, rNbr, prog.RegNTHR)
	b.OpI(isa.MULI, rNbr, rNbr, int64(perThread))
	b.OpI(isa.ADDI, rNbr, rNbr, a)
	b.OpI(isa.MULI, rOBase, prog.RegTID, int64(perThread))
	b.OpI(isa.ADDI, rOBase, rOBase, out)
	b.Li(rEnd, int64(perThread))

	b.LoopConst(rIter, rItEnd, int64(iters), func() {
		// Phase 1: a[i] = out_own[i]/2 + 3 + tid. The value derives
		// from a load plus short arithmetic, so its Slice is a few
		// instructions with one buffered input — the common NAS shape.
		b.Loop(rIdx, rEnd, func() {
			b.Op3(isa.ADD, rAddr, rOBase, rIdx)
			b.Ld(rVal, rAddr, 0)
			b.OpI(isa.SHRI, rVal, rVal, 1)
			b.OpI(isa.ADDI, rVal, rVal, 3)
			b.Op3(isa.ADD, rVal, rVal, prog.RegTID)
			b.Op3(isa.ADD, rAddr, rBase, rIdx)
			b.StAssoc(rVal, rAddr, 0)
		})
		b.Barrier()
		// Phase 2: out[i] = a_nbr[i]*2 + 1 (cross-thread communication).
		b.Loop(rIdx, rEnd, func() {
			b.Op3(isa.ADD, rAddr, rNbr, rIdx)
			b.Ld(rTmp, rAddr, 0)
			b.OpI(isa.MULI, rTmp, rTmp, 2)
			b.OpI(isa.ADDI, rTmp, rTmp, 1)
			b.Op3(isa.ADD, rAddr, rOBase, rIdx)
			b.StAssoc(rTmp, rAddr, 0)
		})
		b.Barrier()
	})
	b.Halt()
	return b.MustBuild()
}

// golden mirrors testKernel functionally.
func golden(threads, perThread, iters int) []int64 {
	a := make([]int64, threads*perThread)
	out := make([]int64, threads*perThread)
	for iter := 0; iter < iters; iter++ {
		for tid := 0; tid < threads; tid++ {
			for i := 0; i < perThread; i++ {
				a[tid*perThread+i] = out[tid*perThread+i]/2 + 3 + int64(tid)
			}
		}
		for tid := 0; tid < threads; tid++ {
			nbr := (tid + 1) % threads
			for i := 0; i < perThread; i++ {
				out[tid*perThread+i] = a[nbr*perThread+i]*2 + 1
			}
		}
	}
	return append(a, out...)
}

func memWords(m *Machine, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = m.Mem().ReadWord(int64(i))
	}
	return out
}

// The test regime mirrors the paper's: a checkpoint interval spans several
// re-write iterations, so values omitted from a checkpoint were produced by
// associated stores in the recent past.
const (
	tThreads = 4
	tPer     = 40
	tIters   = 12
	tCkpts   = 2
)

func runCfg(t *testing.T, cfg Config) (Result, []int64) {
	t.Helper()
	p := testKernel(tThreads, tPer, tIters)
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, memWords(m, p.DataWords)
}

// baselineCycles runs NoCkpt once and caches the result for the package.
var baselineRes *Result
var baselineMem []int64

func baseline(t *testing.T) (Result, []int64) {
	t.Helper()
	if baselineRes == nil {
		res, mv := runCfg(t, DefaultConfig(tThreads))
		baselineRes, baselineMem = &res, mv
	}
	return *baselineRes, baselineMem
}

func ckptConfig(t *testing.T, amnesic bool, nCkpts int64) Config {
	t.Helper()
	base, _ := baseline(t)
	cfg := DefaultConfig(tThreads)
	cfg.Checkpointing = true
	cfg.Amnesic = amnesic
	cfg.PeriodCycles = base.Cycles / (nCkpts + 1)
	return cfg
}

func errConfig(t *testing.T, amnesic bool, nCkpts int64, nErr int) Config {
	t.Helper()
	base, _ := baseline(t)
	cfg := ckptConfig(t, amnesic, nCkpts)
	cfg.Errors = fault.Uniform(nErr, base.Cycles, cfg.PeriodCycles/2)
	return cfg
}

func checkSameMem(t *testing.T, got, want []int64, label string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: memory differs at %d: %d vs %d", label, i, got[i], want[i])
		}
	}
}

func TestFunctionalCorrectness(t *testing.T) {
	_, memv := baseline(t)
	want := golden(tThreads, tPer, tIters)
	checkSameMem(t, memv, want, "golden model")
}

func TestDeterminism(t *testing.T) {
	r1, m1 := runCfg(t, DefaultConfig(tThreads))
	r2, m2 := runCfg(t, DefaultConfig(tThreads))
	if r1.Cycles != r2.Cycles || r1.Instrs != r2.Instrs || r1.EnergyPJ != r2.EnergyPJ {
		t.Errorf("non-deterministic results: %+v vs %+v", r1, r2)
	}
	checkSameMem(t, m1, m2, "determinism")
}

func TestCheckpointingPreservesResults(t *testing.T) {
	_, base := baseline(t)
	for _, amnesic := range []bool{false, true} {
		res, memv := runCfg(t, ckptConfig(t, amnesic, tCkpts))
		if res.Ckpt.Checkpoints == 0 {
			t.Fatalf("amnesic=%v: no checkpoints taken", amnesic)
		}
		checkSameMem(t, memv, base, "checkpointing")
	}
}

func TestCheckpointingCostsTime(t *testing.T) {
	rNo, _ := baseline(t)
	rCk, _ := runCfg(t, ckptConfig(t, false, tCkpts))
	if rCk.Cycles <= rNo.Cycles {
		t.Errorf("checkpointing free? NoCkpt %d, Ckpt %d cycles", rNo.Cycles, rCk.Cycles)
	}
	if rCk.EnergyPJ <= rNo.EnergyPJ {
		t.Errorf("checkpointing energy free? %v vs %v", rNo.EnergyPJ, rCk.EnergyPJ)
	}
}

func TestAmnesicOmitsValues(t *testing.T) {
	res, _ := runCfg(t, ckptConfig(t, true, tCkpts))
	if res.Ckpt.OmittedWords == 0 {
		t.Fatalf("ACR omitted nothing: %+v", res.Ckpt)
	}
	if res.AddrMap.Inserts == 0 {
		t.Fatalf("no AddrMap inserts: %+v", res.AddrMap)
	}
	total := res.Ckpt.LoggedWords + res.Ckpt.OmittedWords
	if float64(res.Ckpt.OmittedWords)/float64(total) < 0.3 {
		t.Errorf("omission rate suspiciously low: %d/%d", res.Ckpt.OmittedWords, total)
	}
}

func TestAmnesicReducesCheckpointCost(t *testing.T) {
	rCk, _ := runCfg(t, ckptConfig(t, false, tCkpts))
	rRe, _ := runCfg(t, ckptConfig(t, true, tCkpts))
	if rRe.Cycles >= rCk.Cycles {
		t.Errorf("ReCkpt (%d cycles) not faster than Ckpt (%d cycles)", rRe.Cycles, rCk.Cycles)
	}
	if rRe.EnergyPJ >= rCk.EnergyPJ {
		t.Errorf("ReCkpt (%v pJ) not cheaper than Ckpt (%v pJ)", rRe.EnergyPJ, rCk.EnergyPJ)
	}
}

func TestRecoveryProducesCorrectResults(t *testing.T) {
	_, base := baseline(t)
	for _, amnesic := range []bool{false, true} {
		res, memv := runCfg(t, errConfig(t, amnesic, tCkpts, 2))
		if res.Ckpt.Recoveries != 2 {
			t.Fatalf("amnesic=%v: recoveries = %d, want 2 (%+v)", amnesic, res.Ckpt.Recoveries, res.Ckpt)
		}
		checkSameMem(t, memv, base, "recovery")
	}
}

func TestRecoveryRecomputesOmittedValues(t *testing.T) {
	res, _ := runCfg(t, errConfig(t, true, tCkpts, 1))
	if res.Ckpt.Recoveries != 1 {
		t.Fatalf("recoveries = %d", res.Ckpt.Recoveries)
	}
	if res.Ckpt.RecomputedWords == 0 {
		t.Fatalf("recovery recomputed nothing: %+v", res.Ckpt)
	}
}

func TestErrorsCostTime(t *testing.T) {
	rNE, _ := runCfg(t, ckptConfig(t, false, tCkpts))
	rE, _ := runCfg(t, errConfig(t, false, tCkpts, 2))
	if rE.Cycles <= rNE.Cycles {
		t.Errorf("errors free? NE %d, E %d cycles", rNE.Cycles, rE.Cycles)
	}
}

func TestLocalModeRuns(t *testing.T) {
	_, base := baseline(t)
	for _, amnesic := range []bool{false, true} {
		cfg := ckptConfig(t, amnesic, tCkpts)
		cfg.Mode = ckpt.Local
		res, memv := runCfg(t, cfg)
		if res.Ckpt.Checkpoints == 0 {
			t.Fatal("no checkpoints under local mode")
		}
		checkSameMem(t, memv, base, "local")
	}
}

func TestLocalModeRecovery(t *testing.T) {
	_, base := baseline(t)
	cfg := errConfig(t, true, tCkpts, 2)
	cfg.Mode = ckpt.Local
	res, memv := runCfg(t, cfg)
	if res.Ckpt.Recoveries != 2 {
		t.Fatalf("recoveries = %d (%+v)", res.Ckpt.Recoveries, res.Ckpt)
	}
	checkSameMem(t, memv, base, "local recovery")
}

func TestMaxCheckpointsCap(t *testing.T) {
	cfg := ckptConfig(t, false, tCkpts)
	cfg.MaxCheckpoints = 3
	res, _ := runCfg(t, cfg)
	if res.Ckpt.Checkpoints != 3 {
		t.Errorf("checkpoints = %d, want capped 3", res.Ckpt.Checkpoints)
	}
}

func TestIntervalStatsPopulated(t *testing.T) {
	res, _ := runCfg(t, ckptConfig(t, true, tCkpts))
	if len(res.Intervals) == 0 {
		t.Fatal("no interval stats")
	}
	var logged, omitted int64
	for _, iv := range res.Intervals {
		logged += iv.Logged
		omitted += iv.Omitted
	}
	// Interval history covers established checkpoints; the tail interval
	// is not closed, so totals are bounded by the run totals.
	if logged > res.Ckpt.LoggedWords || omitted > res.Ckpt.OmittedWords {
		t.Errorf("interval totals exceed run totals: %d/%d vs %d/%d",
			logged, omitted, res.Ckpt.LoggedWords, res.Ckpt.OmittedWords)
	}
}

func TestConfigValidation(t *testing.T) {
	p := testKernel(1, 4, 1)
	bad := DefaultConfig(0)
	if _, err := New(bad, p); err == nil {
		t.Error("zero cores accepted")
	}
	c2 := DefaultConfig(1)
	c2.Checkpointing = true // no period
	if _, err := New(c2, p); err == nil {
		t.Error("zero period accepted")
	}
	c3 := DefaultConfig(1)
	c3.Amnesic = true // no checkpointing
	if _, err := New(c3, p); err == nil {
		t.Error("amnesic without checkpointing accepted")
	}
	c4 := DefaultConfig(1)
	c4.Errors = fault.Uniform(1, 100, 1)
	if _, err := New(c4, p); err == nil {
		t.Error("errors without checkpointing accepted")
	}
	c5 := DefaultConfig(1)
	c5.Checkpointing = true
	c5.PeriodCycles = 100
	c5.Errors = fault.Uniform(1, 1000, 500) // latency > period
	if _, err := New(c5, p); err == nil {
		t.Error("detection latency exceeding period accepted")
	}
	c6 := DefaultConfig(1)
	c6.Energy = nil
	if _, err := New(c6, p); err == nil {
		t.Error("nil energy model accepted")
	} else if !strings.Contains(err.Error(), "energy") {
		t.Errorf("nil-energy error not descriptive: %v", err)
	}
	c7 := DefaultConfig(1)
	c7.Checkpointing = true
	c7.PeriodCycles = -5
	if _, err := New(c7, p); err == nil {
		t.Error("negative period accepted")
	}
}

func TestRunawayGuard(t *testing.T) {
	b := prog.New("spin")
	top := b.NewLabel()
	b.Place(top)
	b.Jmp(top)
	b.Halt()
	p := b.MustBuild()
	cfg := DefaultConfig(1)
	cfg.MaxSteps = 1000
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Error("infinite loop not caught")
	}
}

func TestBarrierCounted(t *testing.T) {
	res, _ := baseline(t)
	if res.Barriers != 2*tIters {
		t.Errorf("barriers = %d, want %d", res.Barriers, 2*tIters)
	}
}
