package sim

// Observer receives machine-level events — checkpoints, deferrals, barrier
// releases, error detections, recoveries — as they are committed. Timeline
// capture (Config.RecordTimeline) is itself an observer; external metering
// or tracing (internal/telemetry) attaches through Config.Observers instead
// of inline branches in the engines.
//
// Delivery contract: every observer sees the same stream, in emission
// order. Timestamps are nondecreasing — each event is stamped at or after
// the machine point it was committed — with one documented exception:
// EvDefer is stamped with the deferred boundary's wall-clock time, which
// can trail a barrier release that overshot the boundary.
//
// Observers must not mutate machine state: the simulation's determinism
// invariant (bit-identical results for identical configs, with observation
// attached or not) is maintained by keeping observation strictly one-way.
// A mutating observer is a bug, and the determinism regression tests are
// written to catch it — dynamically; the observerpurity analyzer proves the
// write/call discipline statically for every implementation in the module.
//
//acr:observer
type Observer interface {
	OnEvent(e Event)
}

// timelineRecorder is the built-in observer behind Config.RecordTimeline.
// With a zero cap it retains every event for Result.Timeline; with a
// positive cap (Config.TimelineCap) it is a ring buffer retaining the most
// recent cap events, so long runs cannot exhaust memory.
type timelineRecorder struct {
	cap     int
	events  []Event
	next    int // ring write index once len(events) == cap
	dropped int64
}

func (t *timelineRecorder) OnEvent(e Event) {
	if t.cap <= 0 || len(t.events) < t.cap {
		t.events = append(t.events, e)
		return
	}
	t.events[t.next] = e
	t.next = (t.next + 1) % t.cap
	t.dropped++
}

// snapshot returns the retained events in emission order.
func (t *timelineRecorder) snapshot() []Event {
	if t.dropped == 0 {
		return t.events
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}
