package sim

// Observer receives machine-level events — checkpoints, deferrals, error
// detections, recoveries — as they are committed, in timestamp order.
// Timeline capture (Config.RecordTimeline) is itself an observer; external
// metering or tracing attaches through Config.Observers instead of inline
// branches in the engines. Observers must not mutate machine state: the
// simulation's determinism invariant (bit-identical results for identical
// configs) is maintained by keeping observation strictly one-way.
type Observer interface {
	OnEvent(e Event)
}

// timelineRecorder is the built-in observer behind Config.RecordTimeline:
// it retains every event for Result.Timeline.
type timelineRecorder struct {
	events []Event
}

func (t *timelineRecorder) OnEvent(e Event) { t.events = append(t.events, e) }
