package sim

import (
	"reflect"
	"testing"

	acr "acr/internal/core"
	"acr/internal/fault"
)

// TestFaultedACRDeterminismRegression is the determinism regression pinned
// by the scheduler refactor: an 8-core amnesic configuration with injected
// errors, run twice from scratch, must produce byte-identical Result
// structs (including interval history and timeline) and byte-identical
// final memory images. Any divergence means the quantum-batched scheduler
// changed the instruction interleaving.
func TestFaultedACRDeterminismRegression(t *testing.T) {
	const cores = 8
	ref, err := New(DefaultConfig(cores), testKernel(cores, 24, 10))
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	run := func() (Result, []int64) {
		cfg := DefaultConfig(cores)
		cfg.Checkpointing = true
		cfg.Amnesic = true
		cfg.ACR = acr.Config{Threshold: 10, MapCapacity: 4096 * cores}
		cfg.PeriodCycles = refRes.Cycles / 4
		cfg.Errors = fault.Uniform(2, refRes.Cycles, cfg.PeriodCycles/2)
		cfg.RecordTimeline = true
		p := testKernel(cores, 24, 10)
		m, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, memWords(m, p.DataWords)
	}

	r1, m1 := run()
	r2, m2 := run()
	if r1.Ckpt.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2 (config not exercising the faulted path)", r1.Ckpt.Recoveries)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("Result structs differ across identical runs:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Error("final memory images differ across identical runs")
	}
}

// countingObserver exercises the pluggable-observer layer.
type countingObserver struct {
	byKind map[EventKind]int
}

func (o *countingObserver) OnEvent(e Event) {
	if o.byKind == nil {
		o.byKind = make(map[EventKind]int)
	}
	o.byKind[e.Kind]++
}

// TestObserverSeesTimelineEvents: a custom observer attached through
// Config.Observers receives exactly the events the built-in timeline
// recorder retains, and attaching it does not perturb the simulation.
func TestObserverSeesTimelineEvents(t *testing.T) {
	plain, _ := runCfg(t, errConfig(t, true, tCkpts, 1))

	obs := &countingObserver{}
	cfg := errConfig(t, true, tCkpts, 1)
	cfg.RecordTimeline = true
	cfg.Observers = []Observer{obs}
	res, _ := runCfg(t, cfg)

	if res.Cycles != plain.Cycles || res.EnergyPJ != plain.EnergyPJ {
		t.Errorf("observer perturbed the run: %d/%v vs %d/%v",
			res.Cycles, res.EnergyPJ, plain.Cycles, plain.EnergyPJ)
	}
	total := 0
	for _, n := range obs.byKind {
		total += n
	}
	if total != len(res.Timeline) {
		t.Errorf("observer saw %d events, timeline has %d", total, len(res.Timeline))
	}
	if obs.byKind[EvError] != 1 || obs.byKind[EvRecovery] != 1 {
		t.Errorf("observer error/recovery counts = %d/%d, want 1/1",
			obs.byKind[EvError], obs.byKind[EvRecovery])
	}
}
