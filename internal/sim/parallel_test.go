package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"acr/internal/ckpt"
	"acr/internal/fault"
	"acr/internal/isa"
	"acr/internal/prog"
)

// runWorkers runs p under cfg with the given worker count and returns the
// result, the final data-memory image and the engine counters.
func runWorkers(t *testing.T, cfg Config, p *prog.Program, workers int) (Result, []int64, ParallelStats) {
	t.Helper()
	cfg.Workers = workers
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, memWords(m, p.DataWords), m.ParallelStats()
}

// checkBitIdentical asserts a parallel run reproduced the serial oracle
// exactly: the full Result (cycles, instructions, energy totals and
// per-event counts, checkpoint/AddrMap/memory statistics, timeline) and
// every data-memory word.
func checkBitIdentical(t *testing.T, label string, serial, par Result, serialMem, parMem []int64) {
	t.Helper()
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("%s: results differ\nserial: %+v\nparallel: %+v", label, serial, par)
	}
	for i := range serialMem {
		if parMem[i] != serialMem[i] {
			t.Fatalf("%s: memory differs at word %d: serial %d, parallel %d",
				label, i, serialMem[i], parMem[i])
		}
	}
}

// TestParallelBitIdentityFuzz sweeps randomized workload shapes and
// configurations across worker counts and checks every parallel run is
// bit-identical to the serial oracle. Unaligned partitions (perThread not a
// multiple of the 8-word line) make neighbouring cores share boundary
// lines, so the sweep exercises both committed rounds and the
// conflict-abort/serial-replay path.
func TestParallelBitIdentityFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scenarios := 12
	coreChoices := []int{8, 16, 32}
	if testing.Short() {
		scenarios = 4
		coreChoices = []int{8, 16}
	}

	var committed, aborted int64
	for i := 0; i < scenarios; i++ {
		cores := coreChoices[rng.Intn(len(coreChoices))]
		perThread := []int{10, 24, 40}[rng.Intn(3)]
		iters := 3 + rng.Intn(3)
		workers := []int{2, 4, 8}[rng.Intn(3)]
		p := testKernel(cores, perThread, iters)

		cfg := DefaultConfig(cores)
		mode := rng.Intn(4) // 0: no ckpt, 1: ckpt, 2: amnesic, 3: amnesic local
		if mode > 0 {
			ref, refMem, _ := runWorkers(t, cfg, p, 1)
			_ = refMem
			cfg.Checkpointing = true
			cfg.Amnesic = mode >= 2
			if mode == 3 {
				cfg.Mode = ckpt.Local
			}
			cfg.PeriodCycles = ref.Cycles / 4
			if rng.Intn(2) == 1 {
				cfg.Errors = fault.Uniform(1+rng.Intn(2), ref.Cycles, cfg.PeriodCycles/2)
			}
			if rng.Intn(3) == 0 {
				cfg.AdaptivePlacement = true
			}
		}
		if rng.Intn(2) == 1 {
			cfg.RecordTimeline = true
		}

		label := "scenario " + string(rune('A'+i))
		serial, serialMem, _ := runWorkers(t, cfg, p, 1)
		par, parMem, ps := runWorkers(t, cfg, p, workers)
		checkBitIdentical(t, label, serial, par, serialMem, parMem)
		if ps.Rounds == 0 {
			t.Errorf("%s: parallel run attempted no speculative rounds", label)
		}
		committed += ps.Committed
		aborted += ps.Aborted
	}
	if committed == 0 {
		t.Error("no scenario committed a speculative round; the engine never ran parallel")
	}
	if aborted == 0 {
		t.Error("no scenario aborted a round; the conflict path went unexercised")
	}
}

// sharedLineKernel makes every core increment the same memory word in a
// tight loop: all quanta touch one line, so every multi-core speculative
// round must conflict and fall back to serial replay.
func sharedLineKernel(iters int) *prog.Program {
	b := prog.New("sharedline")
	w := b.Data(8)
	const (
		rVal  isa.Reg = 1
		rIter isa.Reg = 2
		rEnd  isa.Reg = 3
		rAddr isa.Reg = 4
	)
	b.Li(rAddr, w)
	b.LoopConst(rIter, rEnd, int64(iters), func() {
		b.Ld(rVal, rAddr, 0)
		b.OpI(isa.ADDI, rVal, rVal, 1)
		b.St(rVal, rAddr, 0)
	})
	b.Halt()
	return b.MustBuild()
}

// TestParallelForcedConflict pins the serial-replay fallback: a
// true-sharing workload where every round conflicts. Every speculative
// round must be discarded and replayed, and the result must still be
// bit-identical to the serial oracle.
func TestParallelForcedConflict(t *testing.T) {
	p := sharedLineKernel(300)
	cfg := DefaultConfig(4)
	serial, serialMem, _ := runWorkers(t, cfg, p, 1)
	par, parMem, ps := runWorkers(t, cfg, p, 4)
	checkBitIdentical(t, "forced conflict", serial, par, serialMem, parMem)
	if ps.Rounds == 0 {
		t.Fatal("no speculative rounds attempted")
	}
	if ps.Committed != 0 {
		t.Errorf("true-sharing rounds committed: %+v", ps)
	}
	if ps.Aborted != ps.Rounds {
		t.Errorf("aborted %d of %d rounds, want all", ps.Aborted, ps.Rounds)
	}
	if ps.ReplayInstrs == 0 {
		t.Errorf("serial replay executed nothing: %+v", ps)
	}
}

// TestParallelDisjointCommits is the complement: fully disjoint,
// barrier-free per-core work must commit its rounds rather than abort.
func TestParallelDisjointCommits(t *testing.T) {
	// Aligned partitions and no cross-thread reads: phase-2 reads stay in
	// the own partition when threads == 1 neighbour offset... use a
	// private-accumulation kernel instead.
	b := prog.New("disjoint")
	arr := b.Data(4 * 8)
	const (
		rBase isa.Reg = 1
		rIdx  isa.Reg = 2
		rEnd  isa.Reg = 3
		rVal  isa.Reg = 4
		rIter isa.Reg = 5
		rItE  isa.Reg = 6
		rAddr isa.Reg = 7
	)
	b.OpI(isa.MULI, rBase, prog.RegTID, 8)
	b.OpI(isa.ADDI, rBase, rBase, arr)
	b.Li(rEnd, 8)
	b.LoopConst(rIter, rItE, 200, func() {
		b.Loop(rIdx, rEnd, func() {
			b.Op3(isa.ADD, rAddr, rBase, rIdx)
			b.Ld(rVal, rAddr, 0)
			b.OpI(isa.ADDI, rVal, rVal, 1)
			b.St(rVal, rAddr, 0)
		})
	})
	b.Halt()
	p := b.MustBuild()

	cfg := DefaultConfig(4)
	serial, serialMem, _ := runWorkers(t, cfg, p, 1)
	par, parMem, ps := runWorkers(t, cfg, p, 4)
	checkBitIdentical(t, "disjoint", serial, par, serialMem, parMem)
	if ps.Committed == 0 {
		t.Errorf("disjoint rounds never committed: %+v", ps)
	}
	if ps.Aborted != 0 {
		t.Errorf("disjoint rounds aborted: %+v", ps)
	}
}

// TestParallelWorkerCountInvariance checks the worker count itself (not
// just parallel-vs-serial) never changes the result.
func TestParallelWorkerCountInvariance(t *testing.T) {
	p := testKernel(8, 10, 4)
	cfg := ckptConfigFor(t, p, 8, true, false)
	ref, refMem, _ := runWorkers(t, cfg, p, 1)
	for _, w := range []int{2, 3, 4, 8} {
		res, mem, _ := runWorkers(t, cfg, p, w)
		checkBitIdentical(t, "workers", ref, res, refMem, mem)
	}
}

// ckptConfigFor builds a checkpointing config for an arbitrary kernel by
// probing its serial makespan (ckptConfig is hard-wired to the package
// baseline kernel).
func ckptConfigFor(t *testing.T, p *prog.Program, cores int, amnesic, local bool) Config {
	t.Helper()
	ref, _, _ := runWorkers(t, DefaultConfig(cores), p, 1)
	cfg := DefaultConfig(cores)
	cfg.Checkpointing = true
	cfg.Amnesic = amnesic
	if local {
		cfg.Mode = ckpt.Local
	}
	cfg.PeriodCycles = ref.Cycles / 4
	return cfg
}
