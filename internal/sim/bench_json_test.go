package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"acr/internal/ckpt"
	acr "acr/internal/core"
	"acr/internal/prog"
)

// benchPoint is one benchmark configuration's measured numbers as exported
// to BENCH_6.json.
type benchPoint struct {
	Name    string `json:"name"`
	Cores   int    `json:"cores"`
	Ckpt    bool   `json:"ckpt"`
	Workers int    `json:"workers"`
	// Strategy is the checkpoint scheme ("" for uncheckpointed rows; the
	// pre-strategy-engine baseline rows carry "amnesic", which is what
	// ckpt=true meant before the engine existed).
	Strategy    string  `json:"strategy,omitempty"`
	N           int     `json:"n"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimMIPS     float64 `json:"sim_mips"`
	// Instrs is the instruction count of one simulated run;
	// AllocsPerKInstr = AllocsPerOp / (Instrs/1000) is the amortized
	// per-instruction allocation evidence (run-construction included).
	Instrs          int64   `json:"instrs"`
	AllocsPerKInstr float64 `json:"allocs_per_kinstr"`
}

// benchBaseline carries the BENCH_5.json results (commit d3df3a5,
// go test -bench=MachineRun -benchtime=20x, 1 host CPU) forward as this
// PR's reference point. ckpt=true rows ran amnesic ACR — the only
// checkpointed configuration before the strategy engine — so they anchor
// the strategy=amnesic rows: the engine refactor must not slow the path it
// re-expressed.
var benchBaseline = []benchPoint{
	{Name: "cores=8/ckpt=false/workers=1", Cores: 8, Workers: 1, N: 20, NsPerOp: 1_872_809, AllocsPerOp: 79, BytesPerOp: 1_721_792, SimMIPS: 39.40, Instrs: 73_784, AllocsPerKInstr: 1.071},
	{Name: "cores=8/ckpt=false/workers=4", Cores: 8, Workers: 4, N: 20, NsPerOp: 2_210_576, AllocsPerOp: 556, BytesPerOp: 1_983_118, SimMIPS: 33.38, Instrs: 73_784, AllocsPerKInstr: 7.536},
	{Name: "cores=8/ckpt=true/workers=1", Cores: 8, Ckpt: true, Workers: 1, Strategy: "amnesic", N: 20, NsPerOp: 10_662_276, AllocsPerOp: 2_771, BytesPerOp: 7_811_879, SimMIPS: 7.640, Instrs: 81_464, AllocsPerKInstr: 34.02},
	{Name: "cores=8/ckpt=true/workers=4", Cores: 8, Ckpt: true, Workers: 4, Strategy: "amnesic", N: 20, NsPerOp: 17_122_798, AllocsPerOp: 3_449, BytesPerOp: 8_260_127, SimMIPS: 4.758, Instrs: 81_464, AllocsPerKInstr: 42.34},
	{Name: "cores=16/ckpt=false/workers=1", Cores: 16, Workers: 1, N: 20, NsPerOp: 5_203_523, AllocsPerOp: 143, BytesPerOp: 3_442_208, SimMIPS: 28.36, Instrs: 147_568, AllocsPerKInstr: 0.969},
	{Name: "cores=16/ckpt=false/workers=4", Cores: 16, Workers: 4, N: 20, NsPerOp: 3_450_251, AllocsPerOp: 1_072, BytesPerOp: 3_951_592, SimMIPS: 42.77, Instrs: 147_568, AllocsPerKInstr: 7.264},
	{Name: "cores=16/ckpt=true/workers=1", Cores: 16, Ckpt: true, Workers: 1, Strategy: "amnesic", N: 20, NsPerOp: 25_740_346, AllocsPerOp: 5_168, BytesPerOp: 13_356_040, SimMIPS: 6.330, Instrs: 162_928, AllocsPerKInstr: 31.72},
	{Name: "cores=16/ckpt=true/workers=4", Cores: 16, Ckpt: true, Workers: 4, Strategy: "amnesic", N: 20, NsPerOp: 34_396_882, AllocsPerOp: 6_364, BytesPerOp: 17_054_072, SimMIPS: 4.737, Instrs: 162_928, AllocsPerKInstr: 39.06},
	{Name: "cores=32/ckpt=false/workers=1", Cores: 32, Workers: 1, N: 20, NsPerOp: 15_351_035, AllocsPerOp: 271, BytesPerOp: 6_883_040, SimMIPS: 19.23, Instrs: 295_136, AllocsPerKInstr: 0.918},
	{Name: "cores=32/ckpt=false/workers=4", Cores: 32, Workers: 4, N: 20, NsPerOp: 6_843_259, AllocsPerOp: 2_112, BytesPerOp: 7_892_168, SimMIPS: 43.13, Instrs: 295_136, AllocsPerKInstr: 7.156},
	{Name: "cores=32/ckpt=true/workers=1", Cores: 32, Ckpt: true, Workers: 1, Strategy: "amnesic", N: 20, NsPerOp: 59_164_866, AllocsPerOp: 10_502, BytesPerOp: 18_881_735, SimMIPS: 5.508, Instrs: 325_856, AllocsPerKInstr: 32.23},
	{Name: "cores=32/ckpt=true/workers=4", Cores: 32, Ckpt: true, Workers: 4, Strategy: "amnesic", N: 20, NsPerOp: 74_190_619, AllocsPerOp: 12_708, BytesPerOp: 23_992_904, SimMIPS: 4.392, Instrs: 325_856, AllocsPerKInstr: 39.00},
}

// benchFile is the BENCH_6.json document.
type benchFile struct {
	Issue       int    `json:"issue"`
	Description string `json:"description"`
	GoVersion   string `json:"go_version"`
	// HostCPUs is GOMAXPROCS on the measuring machine. The workers>1 rows
	// only measure speedup when it exceeds 1; on a single-CPU host they
	// measure the parallel engine's coordination overhead.
	HostCPUs int          `json:"host_cpus"`
	Baseline []benchPoint `json:"baseline_pre_pr"`
	Results  []benchPoint `json:"results"`
	// Serial32AmnesicVsPR5 is BENCH_5 / workers=1 ns_per_op for the
	// 32-core amnesic configuration — the no-regression check on the
	// strategy-engine refactor (≥ ~1 means the seam cost nothing).
	Serial32AmnesicVsPR5 float64 `json:"speedup_32core_amnesic_serial_vs_pr5"`
	// Speedup32AmnesicParallel is workers=1 / workers=max ns_per_op for
	// the same configuration, carried over from BENCH_5's criterion.
	Speedup32AmnesicParallel float64 `json:"speedup_32core_amnesic_workers"`
}

// benchStrategySetup builds the configuration for one (cores, strategy)
// point: the synthetic kernel plus a checkpoint period calibrated once so
// every measured run establishes ~12 checkpoints. kind < 0 means no
// checkpointing.
func benchStrategySetup(tb testing.TB, cores, iters int, kind ckpt.Kind) (Config, *prog.Program) {
	tb.Helper()
	p := testKernel(cores, 48, iters)
	cfg := DefaultConfig(cores)
	if kind >= 0 {
		m, err := New(cfg, p)
		if err != nil {
			tb.Fatal(err)
		}
		ref, err := m.Run()
		if err != nil {
			tb.Fatal(err)
		}
		cfg.Checkpointing = true
		cfg.Strategy = kind
		cfg.PeriodCycles = ref.Cycles / 13
		if kind.Amnesic() {
			cfg.ACR = acr.Config{Threshold: 10, MapCapacity: 4096 * cores}
		}
	}
	return cfg, p
}

// benchSetup keeps the pre-strategy (cores, ckpt bool) spelling used by the
// alloc-budget test and BenchmarkMachineRun: ckpt=true is amnesic ACR.
func benchSetup(tb testing.TB, cores, iters int, ck bool) (Config, *prog.Program) {
	tb.Helper()
	kind := ckpt.Kind(-1)
	if ck {
		kind = ckpt.KindAmnesic
	}
	return benchStrategySetup(tb, cores, iters, kind)
}

func measureStrategyPoint(t *testing.T, cores, iters, workers int, kind ckpt.Kind, name string) benchPoint {
	cfg, p := benchStrategySetup(t, cores, iters, kind)
	cfg.Workers = workers
	pt := measureCfg(t, cfg, p, name, cores, kind >= 0)
	pt.Workers = workers
	if kind >= 0 {
		pt.Strategy = kind.String()
	}
	return pt
}

func measureCfg(t *testing.T, cfg Config, p *prog.Program, name string, cores int, ckpt bool) benchPoint {

	// One un-timed run for the instruction count of the workload.
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	r := testing.Benchmark(func(b *testing.B) { benchRun(b, cfg, p) })
	pt := benchPoint{
		Name: name, Cores: cores, Ckpt: ckpt,
		N:           r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SimMIPS:     r.Extra["sim-MIPS"],
		Instrs:      res.Instrs,
	}
	if res.Instrs > 0 {
		pt.AllocsPerKInstr = float64(pt.AllocsPerOp) / (float64(res.Instrs) / 1000)
	}
	return pt
}

// TestEmitBenchJSON regenerates BENCH_6.json: the checkpoint-strategy ×
// core-count matrix, serial and through the parallel engine. It is gated
// behind ACR_BENCH_JSON (the output path, or "1" for the repo-root default)
// so plain `go test ./...` stays fast; CI runs it with -benchtime=1x as a
// smoke check and uploads the artifact, and maintainers refresh the
// committed file with a real benchtime:
//
//	ACR_BENCH_JSON=1 go test ./internal/sim -run TestEmitBenchJSON -benchtime=10x -timeout 30m
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("ACR_BENCH_JSON")
	if path == "" {
		t.Skip("set ACR_BENCH_JSON to emit the benchmark JSON")
	}
	if path == "1" {
		path = "../../BENCH_6.json"
	}

	doc := benchFile{
		Issue:       6,
		Description: "Pluggable checkpoint-strategy engine: full, amnesic, differential, tiered and auto strategies behind one ckpt.Strategy seam, measured on the synthetic NAS-shaped kernel (10 iterations, 48 words/thread, ~12 checkpoints per run) at two machine scales, serial (workers=1) and through the deterministic parallel engine (workers=N). strategy=\"\" rows are the NoCkpt reference. Baseline is BENCH_5 (pre-strategy engine; its ckpt=true rows are amnesic).",
		GoVersion:   runtime.Version(),
		HostCPUs:    runtime.GOMAXPROCS(0),
		Baseline:    benchBaseline,
	}
	dims := append([]ckpt.Kind{-1}, ckpt.Kinds()...)
	var serial32, parallel32 int64
	for _, cores := range []int{8, 32} {
		for _, kind := range dims {
			label := "none"
			if kind >= 0 {
				label = kind.String()
			}
			for _, w := range benchWorkersDim() {
				name := fmt.Sprintf("cores=%d/strategy=%s/workers=%d", cores, label, w)
				pt := measureStrategyPoint(t, cores, 10, w, kind, name)
				doc.Results = append(doc.Results, pt)
				t.Logf("%s: %d ns/op, %d allocs/op, %.3f sim-MIPS", name, pt.NsPerOp, pt.AllocsPerOp, pt.SimMIPS)
				if cores == 32 && kind == ckpt.KindAmnesic {
					if w == 1 {
						serial32 = pt.NsPerOp
					} else {
						parallel32 = pt.NsPerOp
					}
				}
			}
		}
	}
	if serial32 > 0 && parallel32 > 0 {
		doc.Speedup32AmnesicParallel = float64(serial32) / float64(parallel32)
	}
	if serial32 > 0 {
		// benchBaseline row "cores=32/ckpt=true/workers=1".
		doc.Serial32AmnesicVsPR5 = float64(benchBaseline[10].NsPerOp) / float64(serial32)
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (32-core amnesic: serial vs BENCH_5 %.2fx, parallel %.2fx at %d host CPUs)",
		path, doc.Serial32AmnesicVsPR5, doc.Speedup32AmnesicParallel, doc.HostCPUs)
}

// TestBenchAllocBudget is the allocation ceiling on the per-instruction
// path. A run's allocations split into a bounded warm-up (machine
// construction, pool/arena ramp-up — capped by AddrMap capacity, not by
// run length) and the steady-state path, which must be allocation-free.
// The test measures the *marginal* allocations between a short and a 6×
// longer ACR run of the same kernel: with the steady-state path clean the
// margin is near zero per instruction, while the pre-optimization code
// allocated ~570 per 1000 instructions regardless of length.
func TestBenchAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	// Keep the measurement short regardless of -benchtime: 5 iterations
	// are enough for an allocation count, which is near-deterministic
	// per run.
	old := flag.Lookup("test.benchtime").Value.String()
	if err := flag.Set("test.benchtime", "5x"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("test.benchtime", old)

	// Calibrate the checkpoint period once, on the short kernel, and hold
	// it for the long kernel: the comparison must scale the number of
	// intervals, not the per-interval state (pinned-record population and
	// pool high-water marks are proportional to interval volume, which is
	// warm-up state, not per-instruction cost).
	cfg, pShort := benchSetup(t, 8, 10, true)
	short := measureCfg(t, cfg, pShort, "cores=8/ckpt=true/iters=10", 8, true)
	pLong := testKernel(8, 48, 60)
	cfgLong := cfg
	long := measureCfg(t, cfgLong, pLong, "cores=8/ckpt=true/iters=60", 8, true)
	dInstr := long.Instrs - short.Instrs
	if dInstr <= 0 {
		t.Fatalf("kernel lengths did not scale: %d vs %d instrs", short.Instrs, long.Instrs)
	}
	marginal := float64(long.AllocsPerOp-short.AllocsPerOp) / (float64(dInstr) / 1000)
	t.Logf("short: %d allocs / %d instrs; long: %d allocs / %d instrs; marginal %.3f allocs/kinstr",
		short.AllocsPerOp, short.Instrs, long.AllocsPerOp, long.Instrs, marginal)
	const ceiling = 2.0
	if marginal > ceiling {
		t.Errorf("steady-state allocation budget exceeded: %.3f allocs per 1000 instructions (ceiling %.1f)",
			marginal, ceiling)
	}
}
