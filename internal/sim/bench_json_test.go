package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"acr/internal/prog"
)

// benchPoint is one benchmark configuration's measured numbers as exported
// to BENCH_4.json.
type benchPoint struct {
	Name        string  `json:"name"`
	Cores       int     `json:"cores"`
	Ckpt        bool    `json:"ckpt"`
	N           int     `json:"n"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimMIPS     float64 `json:"sim_mips"`
	// Instrs is the instruction count of one simulated run;
	// AllocsPerKInstr = AllocsPerOp / (Instrs/1000) is the amortized
	// per-instruction allocation evidence (run-construction included).
	Instrs          int64   `json:"instrs"`
	AllocsPerKInstr float64 `json:"allocs_per_kinstr"`
}

// benchBaseline records the pre-optimization numbers of this machine
// (commit 08623d3, go test -bench=MachineRun -benchtime=20x) so the JSON
// carries its own reference point; the 32-core ACR row is the ≥1.4×
// speedup denominator.
var benchBaseline = []benchPoint{
	{Name: "cores=8/ckpt=false", Cores: 8, NsPerOp: 2_580_000, AllocsPerOp: 95, SimMIPS: 28.61},
	{Name: "cores=8/ckpt=true", Cores: 8, Ckpt: true, NsPerOp: 18_650_000, AllocsPerOp: 46_835, SimMIPS: 4.367},
	{Name: "cores=16/ckpt=false", Cores: 16, NsPerOp: 5_240_000, AllocsPerOp: 175, SimMIPS: 28.14},
	{Name: "cores=16/ckpt=true", Cores: 16, Ckpt: true, NsPerOp: 40_570_000, AllocsPerOp: 93_157, SimMIPS: 4.016},
	{Name: "cores=32/ckpt=false", Cores: 32, NsPerOp: 19_370_000, AllocsPerOp: 335, SimMIPS: 15.24},
	{Name: "cores=32/ckpt=true", Cores: 32, Ckpt: true, NsPerOp: 90_600_000, AllocsPerOp: 185_744, BytesPerOp: 55_266_848, SimMIPS: 3.596},
}

// benchFile is the BENCH_4.json document.
type benchFile struct {
	Issue       int          `json:"issue"`
	Description string       `json:"description"`
	GoVersion   string       `json:"go_version"`
	Baseline    []benchPoint `json:"baseline_pre_pr"`
	Results     []benchPoint `json:"results"`
	// Speedup32CoreACR is results/baseline ns_per_op for the 32-core ACR
	// configuration, the acceptance-criterion ratio.
	Speedup32CoreACR float64 `json:"speedup_32core_acr"`
}

// measurePoint runs one configuration under testing.Benchmark.
func measurePoint(t *testing.T, cores, iters int, ckpt bool, name string) benchPoint {
	cfg, p := benchSetup(t, cores, iters, ckpt)
	return measureCfg(t, cfg, p, name, cores, ckpt)
}

func measureCfg(t *testing.T, cfg Config, p *prog.Program, name string, cores int, ckpt bool) benchPoint {

	// One un-timed run for the instruction count of the workload.
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	r := testing.Benchmark(func(b *testing.B) { benchRun(b, cfg, p) })
	pt := benchPoint{
		Name: name, Cores: cores, Ckpt: ckpt,
		N:           r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SimMIPS:     r.Extra["sim-MIPS"],
		Instrs:      res.Instrs,
	}
	if res.Instrs > 0 {
		pt.AllocsPerKInstr = float64(pt.AllocsPerOp) / (float64(res.Instrs) / 1000)
	}
	return pt
}

// TestEmitBenchJSON regenerates BENCH_4.json. It is gated behind
// ACR_BENCH_JSON (the output path, or "1" for the repo-root default) so
// plain `go test ./...` stays fast; CI runs it with -benchtime=1x as a
// smoke check and uploads the artifact, and maintainers refresh the
// committed file with a real benchtime:
//
//	ACR_BENCH_JSON=1 go test ./internal/sim -run TestEmitBenchJSON -benchtime=20x -timeout 30m
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("ACR_BENCH_JSON")
	if path == "" {
		t.Skip("set ACR_BENCH_JSON to emit the benchmark JSON")
	}
	if path == "1" {
		path = "../../BENCH_4.json"
	}

	doc := benchFile{
		Issue:       4,
		Description: "Allocation-free hot paths: flat AddrMap, pooled recipe arena, batched accounting, MRU cache way. ns_per_op is one full simulated run of the synthetic NAS-shaped kernel (10 iterations, 48 words/thread); ckpt=true runs amnesic ACR with ~12 checkpoints per run.",
		GoVersion:   runtime.Version(),
		Baseline:    benchBaseline,
	}
	for _, cores := range []int{8, 16, 32} {
		for _, ckpt := range []bool{false, true} {
			name := fmt.Sprintf("cores=%d/ckpt=%v", cores, ckpt)
			pt := measurePoint(t, cores, 10, ckpt, name)
			doc.Results = append(doc.Results, pt)
			t.Logf("%s: %d ns/op, %d allocs/op, %.3f sim-MIPS", name, pt.NsPerOp, pt.AllocsPerOp, pt.SimMIPS)
			if cores == 32 && ckpt && pt.NsPerOp > 0 {
				doc.Speedup32CoreACR = float64(benchBaseline[5].NsPerOp) / float64(pt.NsPerOp)
			}
		}
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (32-core ACR speedup vs pre-PR baseline: %.2fx)", path, doc.Speedup32CoreACR)
}

// TestBenchAllocBudget is the allocation ceiling on the per-instruction
// path. A run's allocations split into a bounded warm-up (machine
// construction, pool/arena ramp-up — capped by AddrMap capacity, not by
// run length) and the steady-state path, which must be allocation-free.
// The test measures the *marginal* allocations between a short and a 6×
// longer ACR run of the same kernel: with the steady-state path clean the
// margin is near zero per instruction, while the pre-optimization code
// allocated ~570 per 1000 instructions regardless of length.
func TestBenchAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	// Keep the measurement short regardless of -benchtime: 5 iterations
	// are enough for an allocation count, which is near-deterministic
	// per run.
	old := flag.Lookup("test.benchtime").Value.String()
	if err := flag.Set("test.benchtime", "5x"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("test.benchtime", old)

	// Calibrate the checkpoint period once, on the short kernel, and hold
	// it for the long kernel: the comparison must scale the number of
	// intervals, not the per-interval state (pinned-record population and
	// pool high-water marks are proportional to interval volume, which is
	// warm-up state, not per-instruction cost).
	cfg, pShort := benchSetup(t, 8, 10, true)
	short := measureCfg(t, cfg, pShort, "cores=8/ckpt=true/iters=10", 8, true)
	pLong := testKernel(8, 48, 60)
	cfgLong := cfg
	long := measureCfg(t, cfgLong, pLong, "cores=8/ckpt=true/iters=60", 8, true)
	dInstr := long.Instrs - short.Instrs
	if dInstr <= 0 {
		t.Fatalf("kernel lengths did not scale: %d vs %d instrs", short.Instrs, long.Instrs)
	}
	marginal := float64(long.AllocsPerOp-short.AllocsPerOp) / (float64(dInstr) / 1000)
	t.Logf("short: %d allocs / %d instrs; long: %d allocs / %d instrs; marginal %.3f allocs/kinstr",
		short.AllocsPerOp, short.Instrs, long.AllocsPerOp, long.Instrs, marginal)
	const ceiling = 2.0
	if marginal > ceiling {
		t.Errorf("steady-state allocation budget exceeded: %.3f allocs per 1000 instructions (ceiling %.1f)",
			marginal, ceiling)
	}
}
