package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"acr/internal/prog"
)

// benchPoint is one benchmark configuration's measured numbers as exported
// to BENCH_5.json.
type benchPoint struct {
	Name        string  `json:"name"`
	Cores       int     `json:"cores"`
	Ckpt        bool    `json:"ckpt"`
	Workers     int     `json:"workers"`
	N           int     `json:"n"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimMIPS     float64 `json:"sim_mips"`
	// Instrs is the instruction count of one simulated run;
	// AllocsPerKInstr = AllocsPerOp / (Instrs/1000) is the amortized
	// per-instruction allocation evidence (run-construction included).
	Instrs          int64   `json:"instrs"`
	AllocsPerKInstr float64 `json:"allocs_per_kinstr"`
}

// benchBaseline carries the BENCH_4.json results (commit cc3d7e4,
// go test -bench=MachineRun -benchtime=20x, serial engine) forward as this
// PR's reference point. The 32-core ACR row is both the denominator of the
// parallel speedup and the no-regression anchor for workers=1.
var benchBaseline = []benchPoint{
	{Name: "cores=8/ckpt=false", Cores: 8, Workers: 1, N: 20, NsPerOp: 1_842_408, AllocsPerOp: 79, BytesPerOp: 1_719_872, SimMIPS: 40.05, Instrs: 73_784, AllocsPerKInstr: 1.071},
	{Name: "cores=8/ckpt=true", Cores: 8, Ckpt: true, Workers: 1, N: 20, NsPerOp: 12_843_931, AllocsPerOp: 2_743, BytesPerOp: 11_043_624, SimMIPS: 6.343, Instrs: 81_464, AllocsPerKInstr: 33.67},
	{Name: "cores=16/ckpt=false", Cores: 16, Workers: 1, N: 20, NsPerOp: 5_369_739, AllocsPerOp: 143, BytesPerOp: 3_438_496, SimMIPS: 27.48, Instrs: 147_568, AllocsPerKInstr: 0.969},
	{Name: "cores=16/ckpt=true", Cores: 16, Ckpt: true, Workers: 1, N: 20, NsPerOp: 27_805_315, AllocsPerOp: 4_981, BytesPerOp: 18_009_729, SimMIPS: 5.860, Instrs: 162_928, AllocsPerKInstr: 30.57},
	{Name: "cores=32/ckpt=false", Cores: 32, Workers: 1, N: 20, NsPerOp: 15_460_923, AllocsPerOp: 271, BytesPerOp: 6_875_744, SimMIPS: 19.09, Instrs: 295_136, AllocsPerKInstr: 0.918},
	{Name: "cores=32/ckpt=true", Cores: 32, Ckpt: true, Workers: 1, N: 20, NsPerOp: 56_706_588, AllocsPerOp: 10_107, BytesPerOp: 22_515_270, SimMIPS: 5.746, Instrs: 325_856, AllocsPerKInstr: 31.02},
}

// benchFile is the BENCH_5.json document.
type benchFile struct {
	Issue       int    `json:"issue"`
	Description string `json:"description"`
	GoVersion   string `json:"go_version"`
	// HostCPUs is GOMAXPROCS on the measuring machine. The parallel
	// speedup below is only meaningful when it exceeds 1; on a single-CPU
	// host the workers>1 rows measure engine overhead, not speedup.
	HostCPUs int          `json:"host_cpus"`
	Baseline []benchPoint `json:"baseline_pre_pr"`
	Results  []benchPoint `json:"results"`
	// Speedup32CoreACRParallel is workers=1 / workers=max ns_per_op for
	// the 32-core ACR configuration, the acceptance-criterion ratio.
	Speedup32CoreACRParallel float64 `json:"speedup_32core_acr_workers"`
	// Serial32CoreACRVsPR4 is BENCH_4 / workers=1 ns_per_op for the same
	// configuration — the no-regression check on the serial path (≥ ~1).
	Serial32CoreACRVsPR4 float64 `json:"speedup_32core_acr_serial_vs_pr4"`
}

// measurePoint runs one configuration under testing.Benchmark.
func measurePoint(t *testing.T, cores, iters, workers int, ckpt bool, name string) benchPoint {
	cfg, p := benchSetup(t, cores, iters, ckpt)
	cfg.Workers = workers
	pt := measureCfg(t, cfg, p, name, cores, ckpt)
	pt.Workers = workers
	return pt
}

func measureCfg(t *testing.T, cfg Config, p *prog.Program, name string, cores int, ckpt bool) benchPoint {

	// One un-timed run for the instruction count of the workload.
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	r := testing.Benchmark(func(b *testing.B) { benchRun(b, cfg, p) })
	pt := benchPoint{
		Name: name, Cores: cores, Ckpt: ckpt,
		N:           r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SimMIPS:     r.Extra["sim-MIPS"],
		Instrs:      res.Instrs,
	}
	if res.Instrs > 0 {
		pt.AllocsPerKInstr = float64(pt.AllocsPerOp) / (float64(res.Instrs) / 1000)
	}
	return pt
}

// TestEmitBenchJSON regenerates BENCH_5.json. It is gated behind
// ACR_BENCH_JSON (the output path, or "1" for the repo-root default) so
// plain `go test ./...` stays fast; CI runs it with -benchtime=1x as a
// smoke check and uploads the artifact, and maintainers refresh the
// committed file with a real benchtime on a multi-core host (the parallel
// speedup requires host_cpus > 1):
//
//	ACR_BENCH_JSON=1 go test ./internal/sim -run TestEmitBenchJSON -benchtime=20x -timeout 30m
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("ACR_BENCH_JSON")
	if path == "" {
		t.Skip("set ACR_BENCH_JSON to emit the benchmark JSON")
	}
	if path == "1" {
		path = "../../BENCH_5.json"
	}

	doc := benchFile{
		Issue:       5,
		Description: "Deterministic intra-run parallelism: conflict-checked speculative rounds dispatch independent core quanta to a worker pool, commit in serial merge order, and fall back to serial replay on conflict — bit-identical to workers=1. ns_per_op is one full simulated run of the synthetic NAS-shaped kernel (10 iterations, 48 words/thread); ckpt=true runs amnesic ACR with ~12 checkpoints per run. Baseline is BENCH_4 (serial engine).",
		GoVersion:   runtime.Version(),
		HostCPUs:    runtime.GOMAXPROCS(0),
		Baseline:    benchBaseline,
	}
	var serial32, parallel32 int64
	workersDim := benchWorkersDim()
	for _, cores := range []int{8, 16, 32} {
		for _, ckpt := range []bool{false, true} {
			for _, w := range workersDim {
				name := fmt.Sprintf("cores=%d/ckpt=%v/workers=%d", cores, ckpt, w)
				pt := measurePoint(t, cores, 10, w, ckpt, name)
				doc.Results = append(doc.Results, pt)
				t.Logf("%s: %d ns/op, %d allocs/op, %.3f sim-MIPS", name, pt.NsPerOp, pt.AllocsPerOp, pt.SimMIPS)
				if cores == 32 && ckpt {
					if w == 1 {
						serial32 = pt.NsPerOp
					} else {
						parallel32 = pt.NsPerOp
					}
				}
			}
		}
	}
	if serial32 > 0 && parallel32 > 0 {
		doc.Speedup32CoreACRParallel = float64(serial32) / float64(parallel32)
	}
	if serial32 > 0 {
		doc.Serial32CoreACRVsPR4 = float64(benchBaseline[5].NsPerOp) / float64(serial32)
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (32-core ACR: parallel speedup %.2fx at %d host CPUs, serial vs BENCH_4 %.2fx)",
		path, doc.Speedup32CoreACRParallel, doc.HostCPUs, doc.Serial32CoreACRVsPR4)
}

// TestBenchAllocBudget is the allocation ceiling on the per-instruction
// path. A run's allocations split into a bounded warm-up (machine
// construction, pool/arena ramp-up — capped by AddrMap capacity, not by
// run length) and the steady-state path, which must be allocation-free.
// The test measures the *marginal* allocations between a short and a 6×
// longer ACR run of the same kernel: with the steady-state path clean the
// margin is near zero per instruction, while the pre-optimization code
// allocated ~570 per 1000 instructions regardless of length.
func TestBenchAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	// Keep the measurement short regardless of -benchtime: 5 iterations
	// are enough for an allocation count, which is near-deterministic
	// per run.
	old := flag.Lookup("test.benchtime").Value.String()
	if err := flag.Set("test.benchtime", "5x"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("test.benchtime", old)

	// Calibrate the checkpoint period once, on the short kernel, and hold
	// it for the long kernel: the comparison must scale the number of
	// intervals, not the per-interval state (pinned-record population and
	// pool high-water marks are proportional to interval volume, which is
	// warm-up state, not per-instruction cost).
	cfg, pShort := benchSetup(t, 8, 10, true)
	short := measureCfg(t, cfg, pShort, "cores=8/ckpt=true/iters=10", 8, true)
	pLong := testKernel(8, 48, 60)
	cfgLong := cfg
	long := measureCfg(t, cfgLong, pLong, "cores=8/ckpt=true/iters=60", 8, true)
	dInstr := long.Instrs - short.Instrs
	if dInstr <= 0 {
		t.Fatalf("kernel lengths did not scale: %d vs %d instrs", short.Instrs, long.Instrs)
	}
	marginal := float64(long.AllocsPerOp-short.AllocsPerOp) / (float64(dInstr) / 1000)
	t.Logf("short: %d allocs / %d instrs; long: %d allocs / %d instrs; marginal %.3f allocs/kinstr",
		short.AllocsPerOp, short.Instrs, long.AllocsPerOp, long.Instrs, marginal)
	const ceiling = 2.0
	if marginal > ceiling {
		t.Errorf("steady-state allocation budget exceeded: %.3f allocs per 1000 instructions (ceiling %.1f)",
			marginal, ceiling)
	}
}
