package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"acr/internal/ckpt"
	acr "acr/internal/core"
	"acr/internal/prog"
)

// benchPoint is one benchmark configuration's measured numbers as exported
// to BENCH_8.json.
type benchPoint struct {
	Name    string `json:"name"`
	Cores   int    `json:"cores"`
	Ckpt    bool   `json:"ckpt"`
	Workers int    `json:"workers"`
	// Compile marks rows run with the block-compilation execution engine
	// (sim.Config.Compile); results are bit-identical to compile=false
	// rows, only the wall clock moves.
	Compile bool `json:"compile,omitempty"`
	// Strategy is the checkpoint scheme ("" for uncheckpointed rows; the
	// pre-strategy-engine baseline rows carry "amnesic", which is what
	// ckpt=true meant before the engine existed).
	Strategy    string  `json:"strategy,omitempty"`
	N           int     `json:"n"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimMIPS     float64 `json:"sim_mips"`
	// Instrs is the instruction count of one simulated run;
	// AllocsPerKInstr = AllocsPerOp / (Instrs/1000) is the amortized
	// per-instruction allocation evidence (run-construction included).
	Instrs          int64   `json:"instrs"`
	AllocsPerKInstr float64 `json:"allocs_per_kinstr"`
}

// loadBenchBaseline carries the committed BENCH_7.json results forward as
// this PR's reference point instead of re-hardcoding them: the file is the
// single source of truth for the pre-sharding numbers, and the 32-core
// amnesic serial row inside it anchors the issue's ≥1.3x criterion for the
// machine-scale work via naive per-core extrapolation.
func loadBenchBaseline(t *testing.T) []benchPoint {
	raw, err := os.ReadFile("../../BENCH_7.json")
	if err != nil {
		t.Fatalf("reading BENCH_7 baseline: %v", err)
	}
	var doc struct {
		Results []benchPoint `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing BENCH_7 baseline: %v", err)
	}
	if len(doc.Results) == 0 {
		t.Fatal("BENCH_7.json has no results rows")
	}
	return doc.Results
}

// base32Amnesic and base32None are the BENCH_7 rows the scale criterion
// extrapolates from: 32 cores, serial, interpreter — the largest machine
// the pre-sharding plane was benchmarked at.
const (
	base32Amnesic = "cores=32/strategy=amnesic/workers=1/compile=false"
	base32None    = "cores=32/strategy=none/workers=1/compile=false"
)

// benchFile is the BENCH_8.json document.
type benchFile struct {
	Issue       int    `json:"issue"`
	Description string `json:"description"`
	GoVersion   string `json:"go_version"`
	// HostCPUs is GOMAXPROCS on the measuring machine. The workers>1 rows
	// only measure speedup when it exceeds 1; on a single-CPU host they
	// measure the parallel engine's coordination overhead.
	HostCPUs int          `json:"host_cpus"`
	Baseline []benchPoint `json:"baseline_pre_pr"`
	Results  []benchPoint `json:"results"`
	// ScaleVsBench7Amnesic is the issue's acceptance criterion (must be
	// ≥ 1.3): BENCH_7's 32-core amnesic serial interpreter ns_per_op,
	// extrapolated to the 128-core workload by instruction count (naive
	// constant per-core cost), divided by this run's measured 128-core
	// amnesic serial interpreter ns_per_op. It compares across
	// invocations, so host noise leaks in; Drift32Amnesic below bounds
	// that noise with this invocation's own 32-core row.
	ScaleVsBench7Amnesic float64 `json:"speedup_128core_amnesic_serial_vs_bench7_percore"`
	// ScaleVsBench7None is the same extrapolated ratio for the
	// uncheckpointed rows.
	ScaleVsBench7None float64 `json:"speedup_128core_nockpt_serial_vs_bench7_percore"`
	// Drift32Amnesic is BENCH_7's 32-core amnesic serial interpreter
	// ns_per_op divided by the same configuration re-measured in this
	// invocation: >1 means this PR (plus host drift) made the identical
	// machine faster, and it factors host drift out of the scale ratios.
	Drift32Amnesic float64 `json:"speedup_32core_amnesic_serial_vs_bench7"`
	// AvgQuantumInstrs is the serial engine's average dispatch quantum on
	// the 128-core amnesic workload with coalescing on — the issue
	// requires it to exceed the 2.7 instructions PR 9 measured for the
	// flat scheduler. AvgQuantumOff is the same run with Coalesce=false.
	AvgQuantumInstrs float64 `json:"avg_quantum_instrs_128core"`
	AvgQuantumOff    float64 `json:"avg_quantum_instrs_128core_coalesce_off"`
	// QuantumHist buckets the coalesce-on run's quantum lengths by powers
	// of two (bucket 0: empty, bucket i: [2^(i-1), 2^i)).
	QuantumHist []int64 `json:"quantum_hist_128core"`
}

// benchStrategySetup builds the configuration for one (cores, strategy)
// point: the synthetic kernel plus a checkpoint period calibrated once so
// every measured run establishes ~12 checkpoints. kind < 0 means no
// checkpointing.
func benchStrategySetup(tb testing.TB, cores, iters int, kind ckpt.Kind) (Config, *prog.Program) {
	tb.Helper()
	p := testKernel(cores, 48, iters)
	cfg := DefaultConfig(cores)
	if kind >= 0 {
		m, err := New(cfg, p)
		if err != nil {
			tb.Fatal(err)
		}
		ref, err := m.Run()
		if err != nil {
			tb.Fatal(err)
		}
		cfg.Checkpointing = true
		cfg.Strategy = kind
		cfg.PeriodCycles = ref.Cycles / 13
		if kind.Amnesic() {
			cfg.ACR = acr.Config{Threshold: 10, MapCapacity: 4096 * cores}
		}
	}
	return cfg, p
}

// benchSetup keeps the pre-strategy (cores, ckpt bool) spelling used by the
// alloc-budget test and BenchmarkMachineRun: ckpt=true is amnesic ACR.
func benchSetup(tb testing.TB, cores, iters int, ck bool) (Config, *prog.Program) {
	tb.Helper()
	kind := ckpt.Kind(-1)
	if ck {
		kind = ckpt.KindAmnesic
	}
	return benchStrategySetup(tb, cores, iters, kind)
}

// measureCompilePair measures one (cores, strategy, workers) configuration
// with the engine off and then on, interleaving the repetitions
// (off, on, off, on, ...) and keeping each side's fastest. The host's
// throughput drifts up to ~1.5x on a minutes scale, so paired alternation
// keeps the off/on comparison inside one noise window instead of letting
// the two sides land in different ones.
func measureCompilePair(t *testing.T, cores, iters, workers int, kind ckpt.Kind, baseName string) [2]benchPoint {
	cfg, p := benchStrategySetup(t, cores, iters, kind)
	cfg.Workers = workers

	// One un-timed run for the instruction count of the workload.
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	var best [2]testing.BenchmarkResult
	for rep := 0; rep < 3; rep++ {
		for i, compile := range []bool{false, true} {
			c := cfg
			c.Compile = compile
			r := testing.Benchmark(func(b *testing.B) { benchRun(b, c, p) })
			if rep == 0 || r.NsPerOp() < best[i].NsPerOp() {
				best[i] = r
			}
		}
	}

	var pts [2]benchPoint
	for i, compile := range []bool{false, true} {
		pt := pointFrom(best[i], fmt.Sprintf("%s/compile=%v", baseName, compile), cores, kind >= 0, res.Instrs)
		pt.Workers = workers
		pt.Compile = compile
		if kind >= 0 {
			pt.Strategy = kind.String()
		}
		pts[i] = pt
	}
	return pts
}

// pointFrom converts one benchmark result into its JSON row.
func pointFrom(r testing.BenchmarkResult, name string, cores int, ckpt bool, instrs int64) benchPoint {
	pt := benchPoint{
		Name: name, Cores: cores, Ckpt: ckpt,
		N:           r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SimMIPS:     r.Extra["sim-MIPS"],
		Instrs:      instrs,
	}
	if instrs > 0 {
		pt.AllocsPerKInstr = float64(pt.AllocsPerOp) / (float64(instrs) / 1000)
	}
	return pt
}

func measureCfg(t *testing.T, cfg Config, p *prog.Program, name string, cores int, ckpt bool) benchPoint {

	// One un-timed run for the instruction count of the workload.
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}

	r := testing.Benchmark(func(b *testing.B) { benchRun(b, cfg, p) })
	return pointFrom(r, name, cores, ckpt, res.Instrs)
}

// TestEmitBenchJSON regenerates BENCH_8.json: the machine-scale matrix —
// 32 (drift anchor) / 64 / 128 / 256 cores × {uncheckpointed, amnesic} ×
// {interpreter, compiled} × {serial, parallel}, plus the 128-core quantum
// statistics. It is gated behind ACR_BENCH_JSON (the output path, or "1"
// for the repo-root default) so plain `go test ./...` stays fast; CI runs
// it with -benchtime=1x as a smoke check and uploads the artifact, and
// maintainers refresh the committed file with a real benchtime:
//
//	ACR_BENCH_JSON=1 go test ./internal/sim -run TestEmitBenchJSON -benchtime=10x -timeout 30m
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("ACR_BENCH_JSON")
	if path == "" {
		t.Skip("set ACR_BENCH_JSON to emit the benchmark JSON")
	}
	if path == "1" {
		path = "../../BENCH_8.json"
	}

	baseline := loadBenchBaseline(t)
	doc := benchFile{
		Issue:       8,
		Description: "Sharded memory plane and quantum-coalescing scheduler: the machine-scale matrix at 32 (BENCH_7's largest, kept as the cross-invocation drift anchor), 64, 128 and 256 cores, serial (workers=1) and through the deterministic parallel engine (workers=N), interpreter (compile=false) and block-compiled (compile=true), uncheckpointed and amnesic. Same synthetic NAS-shaped kernel as BENCH_7 (10 iterations, 48 words/thread; amnesic rows establish ~12 checkpoints per run); quantum coalescing is on (the default) in every row — it is bit-identical to the flat scheduler by contract. Baseline is BENCH_7 (pre-sharding block-compilation matrix), loaded from the committed file; the speedup criteria extrapolate its 32-core per-core cost to 128 cores by instruction count.",
		GoVersion:   runtime.Version(),
		HostCPUs:    runtime.GOMAXPROCS(0),
		Baseline:    baseline,
	}
	type anchor struct{ nsPerOp, instrs int64 }
	measured := map[string]anchor{}
	for _, cores := range []int{32, 64, 128, 256} {
		for _, kind := range []ckpt.Kind{-1, ckpt.KindAmnesic} {
			label := "none"
			if kind >= 0 {
				label = kind.String()
			}
			for _, w := range benchWorkersDim() {
				base := fmt.Sprintf("cores=%d/strategy=%s/workers=%d", cores, label, w)
				pair := measureCompilePair(t, cores, 10, w, kind, base)
				for _, pt := range pair {
					doc.Results = append(doc.Results, pt)
					t.Logf("%s: %d ns/op, %d allocs/op, %.3f sim-MIPS", pt.Name, pt.NsPerOp, pt.AllocsPerOp, pt.SimMIPS)
				}
				if w == 1 {
					measured[pair[0].Name] = anchor{pair[0].NsPerOp, pair[0].Instrs}
				}
			}
		}
	}
	// Scale criteria: naive extrapolation holds BENCH_7's per-core (equiv.
	// per-instruction: the kernel's instruction count is linear in cores)
	// cost constant from 32 to 128 cores.
	extrapolate := func(baseRow, name string) float64 {
		got, ok := measured[name]
		if !ok || got.nsPerOp == 0 {
			return 0
		}
		for _, row := range baseline {
			if row.Name == baseRow && row.Instrs > 0 {
				naive := float64(row.NsPerOp) * float64(got.instrs) / float64(row.Instrs)
				return naive / float64(got.nsPerOp)
			}
		}
		t.Errorf("BENCH_7 baseline is missing row %q; criterion speedup not computed", baseRow)
		return 0
	}
	doc.ScaleVsBench7Amnesic = extrapolate(base32Amnesic, "cores=128/strategy=amnesic/workers=1/compile=false")
	doc.ScaleVsBench7None = extrapolate(base32None, "cores=128/strategy=none/workers=1/compile=false")
	if got, ok := measured[base32Amnesic]; ok && got.nsPerOp > 0 {
		for _, row := range baseline {
			if row.Name == base32Amnesic {
				doc.Drift32Amnesic = float64(row.NsPerOp) / float64(got.nsPerOp)
			}
		}
	}

	// Quantum statistics: one un-timed serial 128-core amnesic run per
	// coalescer setting, the same workload as the measured rows.
	quantum := func(coalesce bool) SchedStats {
		cfg, p := benchStrategySetup(t, 128, 10, ckpt.KindAmnesic)
		cfg.Coalesce = coalesce
		m, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.SchedStats()
	}
	on := quantum(true)
	doc.AvgQuantumInstrs = on.AvgQuantum()
	doc.AvgQuantumOff = quantum(false).AvgQuantum()
	doc.QuantumHist = append([]int64(nil), on.QuantumHist[:]...)
	if doc.AvgQuantumInstrs <= 2.7 {
		t.Errorf("average serial quantum %.2f with coalescing on, want > 2.7", doc.AvgQuantumInstrs)
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (128-core serial interp vs BENCH_7 per-core: amnesic %.2fx, none %.2fx; 32-core drift %.2fx; avg quantum %.2f on / %.2f off; %d host CPUs)",
		path, doc.ScaleVsBench7Amnesic, doc.ScaleVsBench7None, doc.Drift32Amnesic,
		doc.AvgQuantumInstrs, doc.AvgQuantumOff, doc.HostCPUs)
}

// TestBenchAllocBudget is the allocation ceiling on the per-instruction
// path. A run's allocations split into a bounded warm-up (machine
// construction, pool/arena ramp-up — capped by AddrMap capacity, not by
// run length) and the steady-state path, which must be allocation-free.
// The test measures the *marginal* allocations between a short and a 6×
// longer ACR run of the same kernel: with the steady-state path clean the
// margin is near zero per instruction, while the pre-optimization code
// allocated ~570 per 1000 instructions regardless of length.
func TestBenchAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	// Keep the measurement short regardless of -benchtime: 5 iterations
	// are enough for an allocation count, which is near-deterministic
	// per run.
	old := flag.Lookup("test.benchtime").Value.String()
	if err := flag.Set("test.benchtime", "5x"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("test.benchtime", old)

	// Calibrate the checkpoint period once, on the short kernel, and hold
	// it for the long kernel: the comparison must scale the number of
	// intervals, not the per-interval state (pinned-record population and
	// pool high-water marks are proportional to interval volume, which is
	// warm-up state, not per-instruction cost).
	cfg, pShort := benchSetup(t, 8, 10, true)
	short := measureCfg(t, cfg, pShort, "cores=8/ckpt=true/iters=10", 8, true)
	pLong := testKernel(8, 48, 60)
	cfgLong := cfg
	long := measureCfg(t, cfgLong, pLong, "cores=8/ckpt=true/iters=60", 8, true)
	dInstr := long.Instrs - short.Instrs
	if dInstr <= 0 {
		t.Fatalf("kernel lengths did not scale: %d vs %d instrs", short.Instrs, long.Instrs)
	}
	marginal := float64(long.AllocsPerOp-short.AllocsPerOp) / (float64(dInstr) / 1000)
	t.Logf("short: %d allocs / %d instrs; long: %d allocs / %d instrs; marginal %.3f allocs/kinstr",
		short.AllocsPerOp, short.Instrs, long.AllocsPerOp, long.Instrs, marginal)
	const ceiling = 2.0
	if marginal > ceiling {
		t.Errorf("steady-state allocation budget exceeded: %.3f allocs per 1000 instructions (ceiling %.1f)",
			marginal, ceiling)
	}
}
