package sim

import (
	"testing"

	"acr/internal/ckpt"
	"acr/internal/fault"
	"acr/internal/isa"
	"acr/internal/prog"
)

// autoSiteKernel carries one ASSOC site of each static class per thread:
// a short chain (under the dynamic threshold), a dead-value pure chain past
// the threshold (boostable), and a chain past the boost ceiling (prunable).
// Each site re-stores to a fixed per-thread address every iteration, so the
// previous iteration's value is the omission candidate at each interval's
// first store.
func autoSiteKernel() *prog.Program {
	b := prog.New("autosites")
	arr := b.Data(2 * 4)
	const (
		rShort isa.Reg = 3
		rMed   isa.Reg = 4
		rBig   isa.Reg = 5
		rAddr  isa.Reg = 6
		rIter  isa.Reg = 20
		rEnd   isa.Reg = 21
	)
	b.OpI(isa.MULI, rAddr, prog.RegTID, 4)
	b.OpI(isa.ADDI, rAddr, rAddr, arr)
	b.LoopConst(rIter, rEnd, 40, func() {
		// Short chain: length 2, the dynamic policy handles it.
		b.Li(rShort, 7)
		b.OpI(isa.ADDI, rShort, rShort, 35)
		b.StAssoc(rShort, rAddr, 0)
		// Medium chain: length 15 > threshold 10, value dead after the
		// store, statically replay-safe — the auto pass boosts it.
		b.Li(rMed, 1)
		for i := 0; i < 14; i++ {
			b.OpI(isa.ADDI, rMed, rMed, int64(i+1))
		}
		b.StAssoc(rMed, rAddr, 1)
		// Huge chain: length 45 > the 4× boost ceiling — pruned.
		b.Li(rBig, 1)
		for i := 0; i < 44; i++ {
			b.OpI(isa.XORI, rBig, rBig, int64(i+3))
		}
		b.StAssoc(rBig, rAddr, 2)
	})
	b.Halt()
	return b.MustBuild()
}

// strategyConfig builds a checkpointed configuration for the given strategy
// over the shared test kernel, with nCkpts boundaries.
func strategyConfig(t *testing.T, kind ckpt.Kind, nCkpts int64) Config {
	t.Helper()
	base, _ := baseline(t)
	cfg := DefaultConfig(tThreads)
	cfg.Checkpointing = true
	cfg.Strategy = kind
	cfg.PeriodCycles = base.Cycles / (nCkpts + 1)
	return cfg
}

// TestStrategyLegacyBitIdentity pins the refactor's core contract: the
// legacy boolean configuration (Checkpointing / Amnesic) and the explicit
// strategy spelling produce bit-identical runs.
func TestStrategyLegacyBitIdentity(t *testing.T) {
	for _, tc := range []struct {
		name    string
		amnesic bool
		kind    ckpt.Kind
	}{
		{"full", false, ckpt.KindFull},
		{"amnesic", true, ckpt.KindAmnesic},
	} {
		legacy := ckptConfig(t, tc.amnesic, tCkpts)
		explicit := ckptConfig(t, false, tCkpts)
		explicit.Amnesic = false
		explicit.Strategy = tc.kind

		lr, lm := runCfg(t, legacy)
		er, em := runCfg(t, explicit)
		if lr.Cycles != er.Cycles || lr.EnergyPJ != er.EnergyPJ ||
			lr.Ckpt != er.Ckpt || lr.Instrs != er.Instrs || lr.AddrMap != er.AddrMap {
			t.Errorf("%s: legacy and explicit strategy configs diverge:\n%+v\n%+v", tc.name, lr, er)
		}
		if lr.Strategy != er.Strategy || er.Strategy != tc.kind.String() {
			t.Errorf("%s: Result.Strategy = %q / %q, want %q", tc.name, lr.Strategy, er.Strategy, tc.kind)
		}
		checkSameMem(t, em, lm, tc.name)
	}
}

// TestStrategyRecoveryInvisible extends the repository's core property to
// every strategy: with errors injected, the final memory image must be
// bit-identical to the error-free uncheckpointed run.
func TestStrategyRecoveryInvisible(t *testing.T) {
	base, want := baseline(t)
	for _, kind := range ckpt.Kinds() {
		cfg := strategyConfig(t, kind, tCkpts+2)
		cfg.Errors = fault.Uniform(2, base.Cycles, cfg.PeriodCycles/2)
		res, memv := runCfg(t, cfg)
		if res.Ckpt.Recoveries == 0 {
			t.Errorf("%v: no recovery triggered", kind)
		}
		if res.Strategy != kind.String() {
			t.Errorf("%v: Result.Strategy = %q", kind, res.Strategy)
		}
		checkSameMem(t, memv, want, kind.String())
	}
}

// TestMultiCheckpointRollback is the paper's Fig. 2 regression: a detection
// latency spanning more than one checkpoint interval must roll back past
// the newest snapshot(s) to an older retained one and replay every crossed
// log. The tiered strategy retains four checkpoints, so a latency of ~2.5
// periods both validates and forces a depth ≥ 2 roll-back.
func TestMultiCheckpointRollback(t *testing.T) {
	base, want := baseline(t)
	cfg := strategyConfig(t, ckpt.KindTiered, 8)
	cfg.Errors = fault.Uniform(1, base.Cycles*2/3, cfg.PeriodCycles*5/2)
	res, memv := runCfg(t, cfg)
	if res.Ckpt.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", res.Ckpt.Recoveries)
	}
	if res.Ckpt.MultiSnapshotRollbacks == 0 {
		t.Error("rollback did not span multiple snapshots")
	}
	if res.Ckpt.MaxRollbackDepth < 2 {
		t.Errorf("max rollback depth = %d, want ≥ 2 (latency spans ≥ 2 intervals)",
			res.Ckpt.MaxRollbackDepth)
	}
	checkSameMem(t, memv, want, "multi-checkpoint rollback")
}

// TestDeepLatencyRejectedAtRetentionTwo: the same 2.5-period latency that
// the tiered strategy tolerates must fail validation for retention-2
// strategies (the bound of paper §II-A generalised to the retained count).
func TestDeepLatencyRejectedAtRetentionTwo(t *testing.T) {
	base, _ := baseline(t)
	cfg := strategyConfig(t, ckpt.KindFull, 8)
	cfg.Errors = fault.Uniform(1, base.Cycles*2/3, cfg.PeriodCycles*5/2)
	if _, err := New(cfg, testKernel(tThreads, tPer, tIters)); err == nil {
		t.Error("2.5-period detection latency must be rejected with two retained checkpoints")
	}
}

// TestStrategyWorkerInvariance: the parallel engine must stay bit-identical
// to the serial oracle under every strategy (prediction == replay for each
// strategy's first-store stall).
func TestStrategyWorkerInvariance(t *testing.T) {
	base, _ := baseline(t)
	p := testKernel(tThreads, tPer, tIters)
	for _, kind := range ckpt.Kinds() {
		cfg := strategyConfig(t, kind, tCkpts+2)
		cfg.Errors = fault.Uniform(1, base.Cycles, cfg.PeriodCycles/2)
		serial, serialMem, _ := runWorkers(t, cfg, p, 1)
		par, parMem, _ := runWorkers(t, cfg, p, 4)
		checkBitIdentical(t, kind.String(), serial, par, serialMem, parMem)
	}
}

// TestStrategyCostProfiles asserts each strategy's distinguishing cost
// signature over one workload and period, so the bench matrix's dimensions
// are known to measure real mechanisms rather than label noise.
func TestStrategyCostProfiles(t *testing.T) {
	results := map[ckpt.Kind]Result{}
	for _, kind := range ckpt.Kinds() {
		res, memv := runCfg(t, strategyConfig(t, kind, 8))
		_, want := baseline(t)
		checkSameMem(t, memv, want, kind.String())
		results[kind] = res
	}

	full, amn := results[ckpt.KindFull], results[ckpt.KindAmnesic]
	diff, tier, auto := results[ckpt.KindDifferential], results[ckpt.KindTiered], results[ckpt.KindAuto]

	if full.Ckpt.OmittedWords != 0 || full.Ckpt.DeltaWords != 0 || full.Ckpt.FastLogWords != 0 {
		t.Errorf("full profile polluted: %+v", full.Ckpt)
	}
	if amn.Ckpt.OmittedWords == 0 {
		t.Error("amnesic omitted nothing")
	}
	if amn.Ckpt.LoggedWords >= full.Ckpt.LoggedWords {
		t.Errorf("amnesic logged %d ≥ full's %d", amn.Ckpt.LoggedWords, full.Ckpt.LoggedWords)
	}
	if diff.Ckpt.DeltaWords == 0 || diff.Ckpt.LoggedWords != diff.Ckpt.DeltaWords {
		t.Errorf("differential delta accounting wrong: %+v", diff.Ckpt)
	}
	if diff.Ckpt.OmittedWords != 0 {
		t.Errorf("differential is not amnesic: %+v", diff.Ckpt)
	}
	if tier.Ckpt.FastLogWords == 0 || tier.Ckpt.DemotedWords == 0 {
		t.Errorf("tiered fast-tier accounting missing: %+v", tier.Ckpt)
	}
	if tier.Ckpt.FastLogWords != 2*tier.Ckpt.LoggedWords {
		t.Errorf("tiered fast words = %d, want 2 per logged value (%d): %+v",
			tier.Ckpt.FastLogWords, tier.Ckpt.LoggedWords, tier.Ckpt)
	}
	if auto.Ckpt.OmittedWords == 0 {
		t.Error("auto strategy omitted nothing")
	}
	if amn.AddrMap.PrunedAssocs != 0 || amn.AddrMap.BoostedAssocs != 0 {
		t.Errorf("plain amnesic applied a site plan: %+v", amn.AddrMap)
	}
}

// TestAutoStrategyPrunesAndBoosts exercises the auto pass's two levers on a
// kernel built to have all three site classes: a short chain (left to the
// dynamic policy), a verified dead-value chain past the dynamic threshold
// (boosted — amnesic alone cannot omit it), and a chain past the boost
// ceiling (pruned before any AddrMap work).
func TestAutoStrategyPrunesAndBoosts(t *testing.T) {
	build := func() *prog.Program { return autoSiteKernel() }

	ref, err := New(DefaultConfig(2), build())
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := memWords(ref, build().DataWords)

	run := func(kind ckpt.Kind) Result {
		// The period spans many iterations: the toy kernel's arch-state
		// flush dominates shorter intervals and would age every record
		// out before its next-interval lookup.
		cfg := DefaultConfig(2)
		cfg.Checkpointing = true
		cfg.Strategy = kind
		cfg.PeriodCycles = refRes.Cycles / 2
		cfg.Errors = fault.Uniform(1, refRes.Cycles/2, cfg.PeriodCycles/2)
		m, err := New(cfg, build())
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		checkSameMem(t, memWords(m, build().DataWords), want, kind.String())
		return res
	}

	amn := run(ckpt.KindAmnesic)
	auto := run(ckpt.KindAuto)
	if auto.AddrMap.BoostedAssocs == 0 {
		t.Errorf("no site boosted: %+v", auto.AddrMap)
	}
	if auto.AddrMap.PrunedAssocs == 0 {
		t.Errorf("no site pruned: %+v", auto.AddrMap)
	}
	if auto.Ckpt.OmittedWords <= amn.Ckpt.OmittedWords {
		t.Errorf("auto omitted %d ≤ amnesic's %d: the boosted site bought nothing",
			auto.Ckpt.OmittedWords, amn.Ckpt.OmittedWords)
	}
	if auto.AddrMap.SliceTooLong >= amn.AddrMap.SliceTooLong {
		t.Errorf("auto still burned %d over-threshold compiles (amnesic: %d); pruning bought nothing",
			auto.AddrMap.SliceTooLong, amn.AddrMap.SliceTooLong)
	}
}

// TestStrategyConfigValidation pins the composition rules of the strategy
// dimension.
func TestStrategyConfigValidation(t *testing.T) {
	p := testKernel(2, 8, 2)
	build := func(mut func(*Config)) error {
		cfg := DefaultConfig(2)
		cfg.Checkpointing = true
		cfg.PeriodCycles = 1000
		mut(&cfg)
		_, err := New(cfg, p)
		return err
	}
	if err := build(func(c *Config) { c.Strategy = ckpt.KindDifferential; c.Mode = ckpt.Local }); err == nil {
		t.Error("differential + Local must be rejected (global-only strategy)")
	}
	if err := build(func(c *Config) { c.Strategy = ckpt.KindTiered; c.Mode = ckpt.Local }); err == nil {
		t.Error("tiered + Local must be rejected (global-only strategy)")
	}
	if err := build(func(c *Config) { c.Strategy = ckpt.KindDifferential; c.Amnesic = true }); err == nil {
		t.Error("differential + Amnesic must be rejected (no log to omit from)")
	}
	if err := build(func(c *Config) { c.Strategy = ckpt.KindTiered; c.Checkpointing = false; c.PeriodCycles = 0 }); err == nil {
		t.Error("a non-default strategy without checkpointing must be rejected")
	}
	if err := build(func(c *Config) { c.Strategy = ckpt.KindAuto }); err != nil {
		t.Errorf("auto implies amnesic and must validate: %v", err)
	}
	if err := build(func(c *Config) { c.Strategy = ckpt.KindAuto; c.Mode = ckpt.Local }); err != nil {
		t.Errorf("auto + Local is a supported composition: %v", err)
	}
}
