package sim

import (
	"acr/internal/ckpt"
	"acr/internal/fault"
)

// recoverer is the roll-back engine the machine composes. It owns the error
// schedule and the recovery protocol: safe-checkpoint selection, functional
// roll-back with amnesic recomputation, and the stall charge.
type recoverer interface {
	// next returns the next undetected error's occurrence and detection
	// times; ok is false when the schedule is exhausted or absent.
	next() (occur, detect int64, ok bool)
	// recover rolls the machine back for the error at (occur, detect).
	recover(occur, detect int64) error
}

// noErrors is the recoverer of a machine without an error schedule.
type noErrors struct{}

func (noErrors) next() (int64, int64, bool) { return 0, 0, false }
func (noErrors) recover(_, _ int64) error   { return nil }

// recoveryEngine implements recoverer over the fail-stop schedule and the
// checkpoint manager's rollback machinery.
type recoveryEngine struct {
	m      *Machine
	faults *fault.Schedule
	// errIndex rotates the erring core deterministically across injected
	// errors (the schedule says when, not where).
	errIndex int
}

func newRecoveryEngine(m *Machine, faults *fault.Schedule) *recoveryEngine {
	return &recoveryEngine{m: m, faults: faults}
}

func (re *recoveryEngine) next() (occur, detect int64, ok bool) {
	return re.faults.Pending()
}

// recover rolls the machine back to the most recent safe checkpoint,
// recomputing amnesically omitted values, and charges the recovery stall.
func (re *recoveryEngine) recover(errOccur, errDetect int64) error {
	m := re.m
	target, err := m.mgr.SafeTarget(errOccur)
	if err != nil {
		return err
	}
	info, err := m.mgr.Rollback(target, len(m.cores))
	if err != nil {
		return err
	}

	// Detection point: every live core has at least reached errDetect.
	tDetect := m.sched.liveMax(errDetect)

	// The group that must stall for the roll-back: everyone under Global;
	// the erring core's communication component under Local (the paper's
	// coordinated-local recovery, §V-E). The erring core rotates
	// deterministically across injected errors.
	group := m.sys.AllCores()
	if m.mgr.Mode() == ckpt.Local {
		errCore := re.errIndex % len(m.cores)
		for _, g := range m.sys.CommGroups() {
			if g.Has(errCore) {
				group = g
				break
			}
		}
	}
	re.errIndex++

	maxRecompute := int64(0)
	for coreID, rc := range info.RecomputeCycles {
		if group.Has(coreID) && rc > maxRecompute {
			maxRecompute = rc
		}
	}
	stall := handlerCycles + barrierCycles(group.Count()) +
		m.sys.TransferCycles(int(info.LogWordsRead+info.WordsRestored)) +
		m.sys.FastTransferCycles(int(info.FastLogWordsRead)) +
		maxRecompute
	release := tDetect + stall

	// Functional roll-back of every core (determinism keeps non-group
	// cores' re-execution identical under Local; only the stall charge
	// is confined to the group).
	for i, c := range m.cores {
		c.Restore(&target.Arch[i])
		if group.Has(c.ID) {
			c.SetCycles(release)
		} else {
			c.SetCycles(tDetect)
		}
		if m.tracker != nil {
			m.tracker.ResetCore(c.ID, &c.Regs)
		}
	}
	re.faults.Consume()
	// The restores rewound clocks and states in ways the incremental
	// scheduler aggregates cannot characterise; force a rescan.
	m.sched.invalidate()
	m.record(Event{Time: tDetect, Kind: EvError, Core: -1, Detail: errOccur})
	m.record(Event{Time: release, Kind: EvRecovery, Core: -1,
		Detail: info.WordsRestored, Aux: info.RecomputedValues, Dur: release - tDetect})
	return nil
}
