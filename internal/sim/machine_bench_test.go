package sim

import (
	"fmt"
	"testing"

	acr "acr/internal/core"
)

// BenchmarkMachineRun measures the simulator's hot loop — the quantum-
// batched scheduler plus core stepping — at the paper's three machine
// scales, with and without (amnesic) checkpointing. The reported metric is
// wall-clock per simulated run; sim-MIPS puts it in simulator terms.
func BenchmarkMachineRun(b *testing.B) {
	for _, cores := range []int{8, 16, 32} {
		for _, ckpt := range []bool{false, true} {
			name := fmt.Sprintf("cores=%d/ckpt=%v", cores, ckpt)
			b.Run(name, func(b *testing.B) {
				p := testKernel(cores, 48, 10)
				cfg := DefaultConfig(cores)
				if ckpt {
					// Calibrate the period once so every measured run
					// takes ~12 checkpoints.
					m, err := New(cfg, p)
					if err != nil {
						b.Fatal(err)
					}
					ref, err := m.Run()
					if err != nil {
						b.Fatal(err)
					}
					cfg.Checkpointing = true
					cfg.Amnesic = true
					cfg.ACR = acr.Config{Threshold: 10, MapCapacity: 4096 * cores}
					cfg.PeriodCycles = ref.Cycles / 13
				}
				var instrs int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m, err := New(cfg, p)
					if err != nil {
						b.Fatal(err)
					}
					res, err := m.Run()
					if err != nil {
						b.Fatal(err)
					}
					instrs = res.Instrs
				}
				b.StopTimer()
				if instrs > 0 && b.Elapsed() > 0 {
					mips := float64(instrs) * float64(b.N) / b.Elapsed().Seconds() / 1e6
					b.ReportMetric(mips, "sim-MIPS")
				}
			})
		}
	}
}
