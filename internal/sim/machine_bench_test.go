package sim

import (
	"fmt"
	"runtime"
	"testing"

	"acr/internal/prog"
)

// benchRun is the measured body shared by the benchmark and the JSON
// emitter: b.N full simulations, reporting sim-MIPS and allocations.
func benchRun(b *testing.B, cfg Config, p *prog.Program) {
	b.ReportAllocs()
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Instrs
	}
	b.StopTimer()
	if instrs > 0 && b.Elapsed() > 0 {
		mips := float64(instrs) * float64(b.N) / b.Elapsed().Seconds() / 1e6
		b.ReportMetric(mips, "sim-MIPS")
	}
}

// benchWorkersDim is the workers dimension of the benchmark matrix: serial
// execution plus the parallel engine at GOMAXPROCS. On a single-CPU host
// GOMAXPROCS degenerates to 1, so 4 stands in — there the parallel rows
// measure the engine's coordination overhead, not speedup.
func benchWorkersDim() []int {
	if gmp := runtime.GOMAXPROCS(0); gmp > 1 {
		return []int{1, gmp}
	}
	return []int{1, 4}
}

// BenchmarkMachineRun measures the simulator's hot loop — the quantum-
// batched scheduler plus core stepping — at the paper's three machine
// scales plus the sharded plane's 128/256-core rows, with and without
// (amnesic) checkpointing, serial and through the parallel engine. The
// reported metric is wall-clock per simulated run; sim-MIPS puts it in
// simulator terms.
func BenchmarkMachineRun(b *testing.B) {
	for _, cores := range []int{8, 16, 32, 128, 256} {
		for _, ckpt := range []bool{false, true} {
			for _, w := range benchWorkersDim() {
				for _, compile := range []bool{false, true} {
					name := fmt.Sprintf("cores=%d/ckpt=%v/workers=%d/compile=%v", cores, ckpt, w, compile)
					b.Run(name, func(b *testing.B) {
						cfg, p := benchSetup(b, cores, 10, ckpt)
						cfg.Workers = w
						cfg.Compile = compile
						benchRun(b, cfg, p)
					})
				}
			}
		}
	}
}
