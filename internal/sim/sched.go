package sim

import (
	"fmt"
	"math"
	"math/bits"

	"acr/internal/cpu"
)

// scheduler implements the machine's deterministic scheduling policy in
// quantum-batched form. The policy is unchanged from the original
// per-instruction loop — among runnable cores, the one with the smallest
// local clock executes next, ties broken by core id — but instead of
// rescanning every core per retired instruction, the scheduler
//
//   - maintains running/barrier/halted populations incrementally through
//     the cpu.Core.OnState hook (cores change state at barriers, halts and
//     roll-backs only, so the hook fires per event, not per instruction), and
//   - computes, once per pick, the quantum bound: the first clock value at
//     which the choice must be revisited because another running core would
//     win the min-clock comparison.
//
// The run loop then steps the picked core in a tight loop while its clock
// stays below the bound. Because no other core moves during the quantum,
// the instruction interleaving is bit-identical to per-instruction
// rescanning, while the scheduling overhead drops from
// O(instructions × cores) to O(events × cores).
//
// The same quantum-isolation argument is what makes the parallel engine
// (parallel.go) deterministic: the serial interleaving it must reproduce
// is fully characterised by ordering instructions by (⌊start cycle⌋, core
// id, per-core program order) — within one cycle value the lowest-id core
// runs first and executes all of its instructions for that cycle before
// the next core, exactly pick()'s tie-break. A speculative round executes
// several cores' quanta concurrently against round-frozen shared state and
// commits their deferred effects in that merge order, so any round that
// passes the conflict check produces bit-identical state to running the
// same quanta serially; any round that does not is discarded and re-run
// through this serial scheduler, the oracle.
//
// syncTime and liveMax are served from aggregates maintained through the
// OnState hook plus noteClock notifications at the points where the run
// loop advances a clock, falling back to a scan after events that rewind
// clocks (recovery) or change the live set (halts) — see invalidate.
type scheduler struct {
	cores  []*cpu.Core
	counts [3]int // populations indexed by cpu.State

	// barrierMax is the latest clock among barrier-waiting cores,
	// maintained on transitions into AtBarrier (the core's clock already
	// includes the BARRIER instruction's cycle when the hook fires).
	// barrierStale forces a rescan after transitions that can lower it
	// (a waiter leaving while others remain, i.e. recovery restores).
	barrierMax   int64
	barrierStale bool

	// clockHi is the high-water mark of the clocks the run loop has
	// reported through noteClock. While liveStale is clear it equals the
	// max clock over non-halted cores at every consultation point.
	clockHi   int64
	liveStale bool

	// bkts is a calendar queue over the running cores: one bucket per
	// distinct clock value, sorted ascending from index bhd, each holding
	// the bitmask of core ids at that clock. The reference pick scans
	// every core per pick, which at 32 cores touches 32 scattered Core
	// structs — a cache-line walk that dominated the run-loop profile.
	// Here a pick is O(1): the best core is the lowest set bit of the
	// front bucket, and the bound needs at most the front and second
	// buckets (see pick). Between picks only the picked core's clock
	// moves (quantum isolation), so maintenance is one sorted reinsertion
	// near the front; any event that changes the running population or
	// moves other cores' clocks (state transitions, checkpoint releases,
	// recovery rewinds, parallel-round commits) marks the queue stale and
	// the next pick rebuilds it, which keeps maintenance O(events ×
	// cores) like the population counters. Machines wider than 64 cores
	// fall back to the reference scan (wide).
	bkts      []pickBkt
	bhd       int
	pickStale bool
	// lastIdx is the core id removed by the previous pick whose bit is
	// pending reinsertion at its advanced clock, -1 if none.
	lastIdx int
	wide    bool
}

// pickBkt is one calendar-queue bucket: the set of running cores (by id
// bit) whose clock equals cyc.
type pickBkt struct {
	cyc  int64
	mask uint64
}

// unbounded is the quantum bound when no other core constrains the pick
// (the clock value is unreachable within MaxSteps).
const unbounded = int64(math.MaxInt64)

// debugCheckAggregates, set by tests, verifies every aggregate-served
// syncTime/liveMax answer against the reference scan.
var debugCheckAggregates bool

// newScheduler attaches the state hook to every core and seeds the
// population counters.
func newScheduler(cores []*cpu.Core) *scheduler {
	// Bucket storage never reallocates: ≤ 64 live buckets plus ≤ 64 dead
	// front entries between compactions (see pick).
	s := &scheduler{
		cores:     cores,
		bkts:      make([]pickBkt, 0, 160),
		pickStale: true,
		lastIdx:   -1,
		wide:      len(cores) > 64,
	}
	for _, c := range cores {
		s.counts[c.State]++
		c.OnState = s.transition
	}
	return s
}

//acr:noalloc
func (s *scheduler) transition(c *cpu.Core, from, to cpu.State) {
	s.counts[from]--
	s.counts[to]++
	// The running population changed; the pick queue no longer mirrors it.
	s.pickStale = true
	switch to {
	case cpu.AtBarrier:
		if t := c.Cycles(); t > s.barrierMax {
			s.barrierMax = t
		}
	case cpu.Halted:
		// A halted core leaves the live set; clockHi may now overestimate
		// liveMax.
		s.liveStale = true
	}
	switch from {
	case cpu.AtBarrier:
		if s.counts[cpu.AtBarrier] == 0 {
			// Barrier fully released: the aggregate restarts exact.
			s.barrierMax = 0
			s.barrierStale = false
		} else {
			// A waiter left while others remain (recovery restore): the
			// maximum may have dropped.
			s.barrierStale = true
		}
	case cpu.Halted:
		// Un-halt (recovery restore rewinds clocks).
		s.liveStale = true
	}
}

// noteClock reports that the run loop advanced a core's clock to t (cycle
// units). The serial loop calls it once per quantum, the parallel engine
// once per committed or replayed quantum, and the coordinator/recovery
// paths after every synchronisation — every point where a clock moves
// between liveMax consultations.
//
//acr:noalloc
func (s *scheduler) noteClock(t int64) {
	if t > s.clockHi {
		s.clockHi = t
	}
}

// invalidate marks both aggregates stale after an event the hooks cannot
// characterise exactly — recovery rewinds clocks arbitrarily. The next
// syncTime/liveMax rescans and re-seeds.
func (s *scheduler) invalidate() {
	s.barrierStale = true
	s.liveStale = true
	s.pickStale = true
}

// clocksMoved reports that clocks of cores other than the last-picked one
// advanced without a state transition (checkpoint releases, parallel-round
// commits), so the pick queue's cached clocks can no longer be trusted.
//
//acr:noalloc
func (s *scheduler) clocksMoved() { s.pickStale = true }

func (s *scheduler) running() int   { return s.counts[cpu.Running] }
func (s *scheduler) atBarrier() int { return s.counts[cpu.AtBarrier] }
func (s *scheduler) halted() int    { return s.counts[cpu.Halted] }

// pick returns the core to execute next — the running core with the
// smallest clock, lowest id on ties — and the exclusive quantum bound: the
// core keeps executing while its clock stays strictly below the bound. A
// lower-id peer takes over at clock equality, so it bounds at its clock; a
// higher-id peer loses ties, so it bounds one cycle later. The caller must
// ensure at least one core is running.
//
// The answer is served from the calendar queue. The best core is the
// lowest set bit of the front (minimum-clock) bucket: every other core in
// that bucket has the same clock and a higher id. Writing limit(c) =
// c.Cycles() + (1 if c.ID > best.ID else 0), the bound is the minimum
// limit over all non-best cores (exactly what pickScan computes):
//
//   - the front bucket's remaining cores contribute cyc+1 (higher ids);
//   - the second bucket at cyc2 > cyc contributes cyc2 if it holds a core
//     with a lower id than best's, else cyc2+1;
//   - every later bucket at cyc3 > cyc2 contributes at least cyc3 ≥
//     cyc2+1, which the second bucket's contribution never exceeds, so
//     later buckets can be ignored — and when the front bucket still has
//     cores, its cyc+1 ≤ cyc2 dominates everything else.
//
// The picked core's bit is removed here and reinserted at its advanced
// clock on the next pick (quantum isolation: nothing else moves between
// picks); events that move other clocks or change the running set mark
// the queue stale (transition, invalidate, clocksMoved) and it is rebuilt
// here. Machines wider than 64 core-id bits use the reference scan.
//
//acr:noalloc
func (s *scheduler) pick() (*cpu.Core, int64) {
	if s.wide {
		return s.pickScan()
	}
	if s.pickStale {
		s.rebuildBkts()
	} else if s.lastIdx >= 0 {
		c := s.cores[s.lastIdx]
		s.insertBkt(c.Cycles(), uint(s.lastIdx))
		s.lastIdx = -1
	}
	if s.bhd == len(s.bkts) {
		return nil, unbounded
	}
	if s.bhd >= 64 {
		// Compact dead front entries so the backing array never grows
		// past its fixed capacity.
		n := copy(s.bkts, s.bkts[s.bhd:])
		s.bkts = s.bkts[:n]
		s.bhd = 0
	}
	f := &s.bkts[s.bhd]
	bit := bits.TrailingZeros64(f.mask)
	best := s.cores[bit]
	f.mask &^= 1 << uint(bit)
	bound := unbounded
	if f.mask != 0 {
		bound = f.cyc + 1
	} else {
		s.bhd++
		if s.bhd < len(s.bkts) {
			n := &s.bkts[s.bhd]
			if n.mask&((1<<uint(bit))-1) != 0 {
				bound = n.cyc
			} else {
				bound = n.cyc + 1
			}
		}
	}
	s.lastIdx = bit
	if debugCheckAggregates {
		if sb, sbound := s.pickScan(); sb != best || sbound != bound {
			panic(fmt.Sprintf("sim: calendar pick (core %d, bound %d) != scan pick (core %d, bound %d)",
				best.ID, bound, sb.ID, sbound))
		}
	}
	return best, bound
}

// pickScan is the reference O(cores) fused scan pick retains as the debug
// oracle for the heap. When a core displaces the current best, the
// displaced best bounds at exactly its clock (it has the lower id, so it
// takes over at equality); a non-best core seen while some lower-id best
// holds bounds at clock+1 (it loses ties). A candidate's provisional
// bound can only be an overestimate while it might still be displaced,
// and any such overestimate is dominated by the exact bound contributed
// when the displacement happens, so the minimum is identical to the
// two-pass result.
//
//acr:noalloc
func (s *scheduler) pickScan() (*cpu.Core, int64) {
	var best *cpu.Core
	bound := unbounded
	for _, c := range s.cores {
		if c.State != cpu.Running {
			continue
		}
		switch {
		case best == nil:
			best = c
		case c.Cycles() < best.Cycles():
			if best.Cycles() < bound {
				bound = best.Cycles()
			}
			best = c
		default:
			if limit := c.Cycles() + 1; limit < bound {
				bound = limit
			}
		}
	}
	return best, bound
}

// rebuildBkts re-seeds the calendar queue from the running population.
//
//acr:noalloc
func (s *scheduler) rebuildBkts() {
	s.bkts = s.bkts[:0]
	s.bhd = 0
	for i, c := range s.cores {
		if c.State == cpu.Running {
			s.insertBkt(c.Cycles(), uint(i))
		}
	}
	s.pickStale = false
	s.lastIdx = -1
}

// insertBkt adds core id bit at clock cyc, keeping buckets sorted from
// bhd. Reinsertion clocks sit at or just past the front, so the linear
// probe is short.
//
//acr:noalloc
func (s *scheduler) insertBkt(cyc int64, bit uint) {
	b := s.bkts
	i := s.bhd
	for i < len(b) && b[i].cyc < cyc {
		i++
	}
	if i < len(b) && b[i].cyc == cyc {
		b[i].mask |= 1 << bit
		return
	}
	b = append(b, pickBkt{}) //acr:alloc-ok capacity fixed at construction; pick compacts before it can overflow
	copy(b[i+1:], b[i:len(b)-1])
	b[i] = pickBkt{cyc: cyc, mask: 1 << bit}
	s.bkts = b
}

// syncTime returns the latest clock among barrier-waiting cores plus their
// population (the barrier release point), from the incremental aggregate
// when it is exact and by rescan otherwise.
//
//acr:noalloc
func (s *scheduler) syncTime() (t int64, n int) {
	if !s.barrierStale {
		t, n = s.barrierMax, s.counts[cpu.AtBarrier]
		if debugCheckAggregates {
			if st, sn := s.syncTimeScan(); st != t || sn != n {
				panic(fmt.Sprintf("sim: syncTime aggregate (%d,%d) != scan (%d,%d)", t, n, st, sn))
			}
		}
		return t, n
	}
	t, n = s.syncTimeScan()
	s.barrierMax, s.barrierStale = t, false
	return t, n
}

// syncTimeScan is the reference O(cores) computation of syncTime.
//
//acr:noalloc
func (s *scheduler) syncTimeScan() (t int64, n int) {
	for _, c := range s.cores {
		if c.State == cpu.AtBarrier {
			n++
			if c.Cycles() > t {
				t = c.Cycles()
			}
		}
	}
	return t, n
}

// liveMax returns the latest clock among non-halted cores (checkpoint
// establishment and error-detection synchronisation points), from the
// noteClock high-water mark when it is exact and by rescan otherwise.
//
//acr:noalloc
func (s *scheduler) liveMax(floor int64) int64 {
	if !s.liveStale {
		t := floor
		if s.clockHi > t {
			t = s.clockHi
		}
		if debugCheckAggregates {
			if st := s.liveMaxScan(floor); st != t {
				panic(fmt.Sprintf("sim: liveMax aggregate %d != scan %d (floor %d)", t, st, floor))
			}
		}
		return t
	}
	t := s.liveMaxScan(0)
	s.clockHi, s.liveStale = t, false
	if t > floor {
		return t
	}
	return floor
}

// liveMaxScan is the reference O(cores) computation of liveMax.
//
//acr:noalloc
func (s *scheduler) liveMaxScan(floor int64) int64 {
	t := floor
	for _, c := range s.cores {
		if c.State != cpu.Halted && c.Cycles() > t {
			t = c.Cycles()
		}
	}
	return t
}
