package sim

import (
	"math"

	"acr/internal/cpu"
)

// scheduler implements the machine's deterministic scheduling policy in
// quantum-batched form. The policy is unchanged from the original
// per-instruction loop — among runnable cores, the one with the smallest
// local clock executes next, ties broken by core id — but instead of
// rescanning every core per retired instruction, the scheduler
//
//   - maintains running/barrier/halted populations incrementally through
//     the cpu.Core.OnState hook (cores change state at barriers, halts and
//     roll-backs only, so the hook fires per event, not per instruction), and
//   - computes, once per pick, the quantum bound: the first clock value at
//     which the choice must be revisited because another running core would
//     win the min-clock comparison.
//
// The run loop then steps the picked core in a tight loop while its clock
// stays below the bound. Because no other core moves during the quantum,
// the instruction interleaving is bit-identical to per-instruction
// rescanning, while the scheduling overhead drops from
// O(instructions × cores) to O(events × cores).
type scheduler struct {
	cores  []*cpu.Core
	counts [3]int // populations indexed by cpu.State
}

// unbounded is the quantum bound when no other core constrains the pick
// (the clock value is unreachable within MaxSteps).
const unbounded = int64(math.MaxInt64)

// newScheduler attaches the state hook to every core and seeds the
// population counters.
func newScheduler(cores []*cpu.Core) *scheduler {
	s := &scheduler{cores: cores}
	for _, c := range cores {
		s.counts[c.State]++
		c.OnState = s.transition
	}
	return s
}

func (s *scheduler) transition(_ *cpu.Core, from, to cpu.State) {
	s.counts[from]--
	s.counts[to]++
}

func (s *scheduler) running() int   { return s.counts[cpu.Running] }
func (s *scheduler) atBarrier() int { return s.counts[cpu.AtBarrier] }
func (s *scheduler) halted() int    { return s.counts[cpu.Halted] }

// pick returns the core to execute next — the running core with the
// smallest clock, lowest id on ties — and the exclusive quantum bound: the
// core keeps executing while its clock stays strictly below the bound. A
// lower-id peer takes over at clock equality, so it bounds at its clock; a
// higher-id peer loses ties, so it bounds one cycle later. The caller must
// ensure at least one core is running.
// The two scans (best-core selection, bound computation) are fused into
// one pass in core-id order. When a core displaces the current best, the
// displaced best bounds at exactly its clock (it has the lower id, so it
// takes over at equality); a non-best core seen while some lower-id best
// holds bounds at clock+1 (it loses ties). A candidate's provisional
// bound can only be an overestimate while it might still be displaced,
// and any such overestimate is dominated by the exact bound contributed
// when the displacement happens, so the minimum is identical to the
// two-pass result.
func (s *scheduler) pick() (*cpu.Core, int64) {
	var best *cpu.Core
	bound := unbounded
	for _, c := range s.cores {
		if c.State != cpu.Running {
			continue
		}
		switch {
		case best == nil:
			best = c
		case c.Cycles() < best.Cycles():
			if best.Cycles() < bound {
				bound = best.Cycles()
			}
			best = c
		default:
			if limit := c.Cycles() + 1; limit < bound {
				bound = limit
			}
		}
	}
	return best, bound
}

// syncTime returns the latest clock among barrier-waiting cores plus their
// population (the barrier release point).
func (s *scheduler) syncTime() (t int64, n int) {
	for _, c := range s.cores {
		if c.State == cpu.AtBarrier {
			n++
			if c.Cycles() > t {
				t = c.Cycles()
			}
		}
	}
	return t, n
}

// liveMax returns the latest clock among non-halted cores (checkpoint
// establishment and error-detection synchronisation points).
func (s *scheduler) liveMax(floor int64) int64 {
	t := floor
	for _, c := range s.cores {
		if c.State != cpu.Halted && c.Cycles() > t {
			t = c.Cycles()
		}
	}
	return t
}
