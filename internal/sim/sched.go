package sim

import (
	"fmt"
	"math"
	"math/bits"

	"acr/internal/cpu"
)

// scheduler implements the machine's deterministic scheduling policy in
// quantum-batched form. The policy is unchanged from the original
// per-instruction loop — among runnable cores, the one with the smallest
// local clock executes next, ties broken by core id — but instead of
// rescanning every core per retired instruction, the scheduler
//
//   - maintains running/barrier/halted populations incrementally through
//     the cpu.Core.OnState hook (cores change state at barriers, halts and
//     roll-backs only, so the hook fires per event, not per instruction), and
//   - computes, once per pick, the quantum bound: the first clock value at
//     which the choice must be revisited because another running core would
//     win the min-clock comparison.
//
// The run loop then steps the picked core in a tight loop while its clock
// stays below the bound. Because no other core moves during the quantum,
// the instruction interleaving is bit-identical to per-instruction
// rescanning, while the scheduling overhead drops from
// O(instructions × cores) to O(events × cores).
//
// The same quantum-isolation argument is what makes the parallel engine
// (parallel.go) deterministic: the serial interleaving it must reproduce
// is fully characterised by ordering instructions by (⌊start cycle⌋, core
// id, per-core program order) — within one cycle value the lowest-id core
// runs first and executes all of its instructions for that cycle before
// the next core, exactly pick()'s tie-break. A speculative round executes
// several cores' quanta concurrently against round-frozen shared state and
// commits their deferred effects in that merge order, so any round that
// passes the conflict check produces bit-identical state to running the
// same quanta serially; any round that does not is discarded and re-run
// through this serial scheduler, the oracle.
//
// syncTime and liveMax are served from aggregates maintained through the
// OnState hook plus noteClock notifications at the points where the run
// loop advances a clock, falling back to a scan after events that rewind
// clocks (recovery) or change the live set (halts) — see invalidate.
type scheduler struct {
	cores  []*cpu.Core
	counts [3]int // populations indexed by cpu.State

	// barrierMax is the latest clock among barrier-waiting cores,
	// maintained on transitions into AtBarrier (the core's clock already
	// includes the BARRIER instruction's cycle when the hook fires).
	// barrierStale forces a rescan after transitions that can lower it
	// (a waiter leaving while others remain, i.e. recovery restores).
	barrierMax   int64
	barrierStale bool

	// clockHi is the high-water mark of the clocks the run loop has
	// reported through noteClock. While liveStale is clear it equals the
	// max clock over non-halted cores at every consultation point.
	clockHi   int64
	liveStale bool

	// bkts is a grouped calendar queue over the running cores: one bucket
	// per distinct (clock, 64-core id group) pair, sorted ascending by
	// (cyc, grp) from index bhd, each holding the bitmask of core ids
	// (within the group) at that clock. The reference pick scans every
	// core per pick, which at 32 cores touches 32 scattered Core structs —
	// a cache-line walk that dominated the run-loop profile; at 128 or 256
	// cores it is four to eight times worse. Here a pick is O(1) at any
	// machine width: the best core is the lowest set bit of the front
	// bucket (minimal clock, minimal group, so minimal id among min-clock
	// cores), and the bound needs at most the front and second buckets
	// (see pick). Between picks only the picked core's clock moves
	// (quantum isolation) plus any peers coalesce eagerly advanced — both
	// maintain the queue by sorted reinsertion near the front; any event
	// that changes the running population or moves other cores' clocks
	// (state transitions, checkpoint releases, recovery rewinds,
	// parallel-round commits) marks the queue stale and the next pick
	// rebuilds it, which keeps maintenance O(events × cores) like the
	// population counters.
	bkts      []pickBkt
	bhd       int
	pickStale bool
	// lastIdx is the core id removed by the previous pick whose bit is
	// pending reinsertion at its advanced clock, -1 if none.
	lastIdx int
}

// pickBkt is one grouped calendar-queue bucket: the set of running cores
// with id in [64*grp, 64*grp+64) (bit i ⇒ core 64*grp+i) whose clock
// equals cyc. Splitting each clock value by id group keeps the bucket mask
// one machine word at every core count while preserving the ordering the
// pick needs: ascending (cyc, grp) order enumerates min-clock cores in
// ascending id order.
type pickBkt struct {
	cyc  int64
	grp  int32
	mask uint64
}

// unbounded is the quantum bound when no other core constrains the pick
// (the clock value is unreachable within MaxSteps).
const unbounded = int64(math.MaxInt64)

// debugCheckAggregates, set by tests, verifies every aggregate-served
// syncTime/liveMax answer against the reference scan.
var debugCheckAggregates bool

// newScheduler attaches the state hook to every core and seeds the
// population counters.
func newScheduler(cores []*cpu.Core) *scheduler {
	// Bucket storage never reallocates: ≤ len(cores) live buckets plus a
	// bounded run of dead front entries between compactions (pick and
	// coalesce both compact once bhd reaches 64 — see compact).
	s := &scheduler{
		cores:     cores,
		bkts:      make([]pickBkt, 0, len(cores)+96),
		pickStale: true,
		lastIdx:   -1,
	}
	for _, c := range cores {
		s.counts[c.State]++
		c.OnState = s.transition
	}
	return s
}

//acr:noalloc
func (s *scheduler) transition(c *cpu.Core, from, to cpu.State) {
	s.counts[from]--
	s.counts[to]++
	// The running population changed; the pick queue no longer mirrors it.
	s.pickStale = true
	switch to {
	case cpu.AtBarrier:
		if t := c.Cycles(); t > s.barrierMax {
			s.barrierMax = t
		}
	case cpu.Halted:
		// A halted core leaves the live set; clockHi may now overestimate
		// liveMax.
		s.liveStale = true
	}
	switch from {
	case cpu.AtBarrier:
		if s.counts[cpu.AtBarrier] == 0 {
			// Barrier fully released: the aggregate restarts exact.
			s.barrierMax = 0
			s.barrierStale = false
		} else {
			// A waiter left while others remain (recovery restore): the
			// maximum may have dropped.
			s.barrierStale = true
		}
	case cpu.Halted:
		// Un-halt (recovery restore rewinds clocks).
		s.liveStale = true
	}
}

// noteClock reports that the run loop advanced a core's clock to t (cycle
// units). The serial loop calls it once per quantum, the parallel engine
// once per committed or replayed quantum, and the coordinator/recovery
// paths after every synchronisation — every point where a clock moves
// between liveMax consultations.
//
//acr:noalloc
func (s *scheduler) noteClock(t int64) {
	if t > s.clockHi {
		s.clockHi = t
	}
}

// invalidate marks both aggregates stale after an event the hooks cannot
// characterise exactly — recovery rewinds clocks arbitrarily. The next
// syncTime/liveMax rescans and re-seeds.
func (s *scheduler) invalidate() {
	s.barrierStale = true
	s.liveStale = true
	s.pickStale = true
}

// clocksMoved reports that clocks of cores other than the last-picked one
// advanced without a state transition (checkpoint releases, parallel-round
// commits), so the pick queue's cached clocks can no longer be trusted.
//
//acr:noalloc
func (s *scheduler) clocksMoved() { s.pickStale = true }

func (s *scheduler) running() int   { return s.counts[cpu.Running] }
func (s *scheduler) atBarrier() int { return s.counts[cpu.AtBarrier] }
func (s *scheduler) halted() int    { return s.counts[cpu.Halted] }

// pick returns the core to execute next — the running core with the
// smallest clock, lowest id on ties — and the exclusive quantum bound: the
// core keeps executing while its clock stays strictly below the bound. A
// lower-id peer takes over at clock equality, so it bounds at its clock; a
// higher-id peer loses ties, so it bounds one cycle later. The caller must
// ensure at least one core is running.
//
// The answer is served from the grouped calendar queue. The best core is
// the lowest set bit of the front (minimum (clock, group)) bucket: every
// other min-clock core has either the same group and a higher bit, or a
// higher group — a higher id either way. Writing limit(c) = c.Cycles() +
// (1 if c.ID > best.ID else 0), the bound is the minimum limit over all
// non-best cores (exactly what pickScan computes):
//
//   - the front bucket's remaining cores contribute cyc+1 (higher ids);
//   - the second bucket contributes its cyc when it can hold a core with
//     a lower id than best's — a strictly lower group, or best's own
//     group with a bit below best's — and cyc+1 otherwise;
//   - every later bucket sorts ≥ the second in (cyc, grp), and a case
//     split on (clock, group) against best's shows its contribution never
//     beats the second bucket's: a later bucket at the same clock has a
//     higher group, so if the second bucket's group is ≤ best's its cyc
//     dominates, and if it is > best's both contribute cyc+1. When the
//     front bucket still has cores, its cyc+1 ≤ any later contribution
//     dominates everything else.
//
// The picked core's bit is removed here and reinserted at its advanced
// clock on the next pick (quantum isolation: nothing else moves between
// picks except peers coalesce advances, and coalesce does its own queue
// surgery); events that move other clocks or change the running set mark
// the queue stale (transition, invalidate, clocksMoved) and it is rebuilt
// here.
//
//acr:noalloc
func (s *scheduler) pick() (*cpu.Core, int64) {
	if s.pickStale {
		s.rebuildBkts()
	} else if s.lastIdx >= 0 {
		c := s.cores[s.lastIdx]
		s.insertBkt(c.Cycles(), uint(s.lastIdx))
		s.lastIdx = -1
	}
	if s.bhd == len(s.bkts) {
		return nil, unbounded
	}
	s.compact()
	f := &s.bkts[s.bhd]
	bit := bits.TrailingZeros64(f.mask)
	best := s.cores[int(f.grp)<<6|bit]
	f.mask &^= 1 << uint(bit)
	bound := unbounded
	if f.mask != 0 {
		bound = f.cyc + 1
	} else {
		s.bhd++
		bound = s.frontBound(best)
	}
	s.lastIdx = best.ID
	if debugCheckAggregates {
		if sb, sbound := s.pickScan(); sb != best || sbound != bound {
			panic(fmt.Sprintf("sim: calendar pick (core %d, bound %d) != scan pick (core %d, bound %d)",
				best.ID, bound, sb.ID, sbound))
		}
	}
	return best, bound
}

// compact drops dead front entries once they accumulate so the backing
// array never grows past its fixed capacity. Both pick and every coalesce
// iteration call it, bounding bhd by 64 at every append point.
//
//acr:noalloc
func (s *scheduler) compact() {
	if s.bhd < 64 {
		return
	}
	n := copy(s.bkts, s.bkts[s.bhd:])
	s.bkts = s.bkts[:n]
	s.bhd = 0
}

// frontBound returns the quantum bound the current front bucket imposes on
// best, with best's own bit already removed from the queue: the front's
// cyc when it can hold a lower id than best's (lower group, or best's
// group with a bit below best's), cyc+1 otherwise, unbounded on an empty
// queue. The later-buckets-dominated argument on pick applies verbatim.
//
//acr:noalloc
func (s *scheduler) frontBound(best *cpu.Core) int64 {
	if s.bhd == len(s.bkts) {
		return unbounded
	}
	n := &s.bkts[s.bhd]
	grp := int32(best.ID >> 6)
	bit := uint(best.ID & 63)
	if n.grp < grp || (n.grp == grp && n.mask&((1<<bit)-1) != 0) {
		return n.cyc
	}
	return n.cyc + 1
}

// coalesce tries to raise a fresh pick's bound toward ceil by retiring the
// binding peers' core-private instruction prefixes through the machine's
// eager callback. The peer that sets the bound is by construction at the
// front of the queue (best's bit is already removed); if its next
// instructions are private the callback retires them — private
// instructions commute across cores, so machine state stays bit-identical
// to strict min-clock order — and the peer is reinserted at its advanced
// clock, which recomputes a (weakly) larger bound. The loop stops at the
// first peer the callback cannot advance, or once the bound reaches ceil,
// which the caller caps at every armed event time so no peer executes
// across a checkpoint boundary or error detection. The returned bound may
// exceed ceil (the reinserted peer can jump past it); the caller clamps
// against event times afterwards, exactly as for an ordinary pick bound.
//
//acr:noalloc
func (s *scheduler) coalesce(best *cpu.Core, bound, ceil int64, eager func(*cpu.Core, int64) bool) int64 {
	for bound < ceil {
		if s.bhd == len(s.bkts) {
			return unbounded
		}
		s.compact()
		f := &s.bkts[s.bhd]
		bit := bits.TrailingZeros64(f.mask)
		id := int(f.grp)<<6 | bit
		p := s.cores[id]
		if !eager(p, ceil) {
			return bound
		}
		// The peer advanced (private ops only, so it is still running):
		// reinsert it at its new clock and recompute the bound.
		f.mask &^= 1 << uint(bit)
		if f.mask == 0 {
			s.bhd++
		}
		s.insertBkt(p.Cycles(), uint(id))
		s.noteClock(p.Cycles())
		bound = s.frontBound(best)
	}
	return bound
}

// pickScan is the reference O(cores) fused scan pick retains as the debug
// oracle for the heap. When a core displaces the current best, the
// displaced best bounds at exactly its clock (it has the lower id, so it
// takes over at equality); a non-best core seen while some lower-id best
// holds bounds at clock+1 (it loses ties). A candidate's provisional
// bound can only be an overestimate while it might still be displaced,
// and any such overestimate is dominated by the exact bound contributed
// when the displacement happens, so the minimum is identical to the
// two-pass result.
//
//acr:noalloc
func (s *scheduler) pickScan() (*cpu.Core, int64) {
	var best *cpu.Core
	bound := unbounded
	for _, c := range s.cores {
		if c.State != cpu.Running {
			continue
		}
		switch {
		case best == nil:
			best = c
		case c.Cycles() < best.Cycles():
			if best.Cycles() < bound {
				bound = best.Cycles()
			}
			best = c
		default:
			if limit := c.Cycles() + 1; limit < bound {
				bound = limit
			}
		}
	}
	return best, bound
}

// rebuildBkts re-seeds the calendar queue from the running population.
//
//acr:noalloc
func (s *scheduler) rebuildBkts() {
	s.bkts = s.bkts[:0]
	s.bhd = 0
	for i, c := range s.cores {
		if c.State == cpu.Running {
			s.insertBkt(c.Cycles(), uint(i))
		}
	}
	s.pickStale = false
	s.lastIdx = -1
}

// insertBkt adds core id at clock cyc, keeping buckets sorted by
// (cyc, grp) from bhd. Reinsertion clocks sit at or just past the front,
// so the linear probe is short.
//
//acr:noalloc
func (s *scheduler) insertBkt(cyc int64, id uint) {
	grp := int32(id >> 6)
	bit := id & 63
	b := s.bkts
	i := s.bhd
	for i < len(b) && (b[i].cyc < cyc || (b[i].cyc == cyc && b[i].grp < grp)) {
		i++
	}
	if i < len(b) && b[i].cyc == cyc && b[i].grp == grp {
		b[i].mask |= 1 << bit
		return
	}
	b = append(b, pickBkt{}) //acr:alloc-ok capacity fixed at construction; pick and coalesce compact before it can overflow
	copy(b[i+1:], b[i:len(b)-1])
	b[i] = pickBkt{cyc: cyc, grp: grp, mask: 1 << bit}
	s.bkts = b
}

// syncTime returns the latest clock among barrier-waiting cores plus their
// population (the barrier release point), from the incremental aggregate
// when it is exact and by rescan otherwise.
//
//acr:noalloc
func (s *scheduler) syncTime() (t int64, n int) {
	if !s.barrierStale {
		t, n = s.barrierMax, s.counts[cpu.AtBarrier]
		if debugCheckAggregates {
			if st, sn := s.syncTimeScan(); st != t || sn != n {
				panic(fmt.Sprintf("sim: syncTime aggregate (%d,%d) != scan (%d,%d)", t, n, st, sn))
			}
		}
		return t, n
	}
	t, n = s.syncTimeScan()
	s.barrierMax, s.barrierStale = t, false
	return t, n
}

// syncTimeScan is the reference O(cores) computation of syncTime.
//
//acr:noalloc
func (s *scheduler) syncTimeScan() (t int64, n int) {
	for _, c := range s.cores {
		if c.State == cpu.AtBarrier {
			n++
			if c.Cycles() > t {
				t = c.Cycles()
			}
		}
	}
	return t, n
}

// liveMax returns the latest clock among non-halted cores (checkpoint
// establishment and error-detection synchronisation points), from the
// noteClock high-water mark when it is exact and by rescan otherwise.
//
//acr:noalloc
func (s *scheduler) liveMax(floor int64) int64 {
	if !s.liveStale {
		t := floor
		if s.clockHi > t {
			t = s.clockHi
		}
		if debugCheckAggregates {
			if st := s.liveMaxScan(floor); st != t {
				panic(fmt.Sprintf("sim: liveMax aggregate %d != scan %d (floor %d)", t, st, floor))
			}
		}
		return t
	}
	t := s.liveMaxScan(0)
	s.clockHi, s.liveStale = t, false
	if t > floor {
		return t
	}
	return floor
}

// liveMaxScan is the reference O(cores) computation of liveMax.
//
//acr:noalloc
func (s *scheduler) liveMaxScan(floor int64) int64 {
	t := floor
	for _, c := range s.cores {
		if c.State != cpu.Halted && c.Cycles() > t {
			t = c.Cycles()
		}
	}
	return t
}
