package sim

import (
	"fmt"
	"math"

	"acr/internal/cpu"
)

// scheduler implements the machine's deterministic scheduling policy in
// quantum-batched form. The policy is unchanged from the original
// per-instruction loop — among runnable cores, the one with the smallest
// local clock executes next, ties broken by core id — but instead of
// rescanning every core per retired instruction, the scheduler
//
//   - maintains running/barrier/halted populations incrementally through
//     the cpu.Core.OnState hook (cores change state at barriers, halts and
//     roll-backs only, so the hook fires per event, not per instruction), and
//   - computes, once per pick, the quantum bound: the first clock value at
//     which the choice must be revisited because another running core would
//     win the min-clock comparison.
//
// The run loop then steps the picked core in a tight loop while its clock
// stays below the bound. Because no other core moves during the quantum,
// the instruction interleaving is bit-identical to per-instruction
// rescanning, while the scheduling overhead drops from
// O(instructions × cores) to O(events × cores).
//
// The same quantum-isolation argument is what makes the parallel engine
// (parallel.go) deterministic: the serial interleaving it must reproduce
// is fully characterised by ordering instructions by (⌊start cycle⌋, core
// id, per-core program order) — within one cycle value the lowest-id core
// runs first and executes all of its instructions for that cycle before
// the next core, exactly pick()'s tie-break. A speculative round executes
// several cores' quanta concurrently against round-frozen shared state and
// commits their deferred effects in that merge order, so any round that
// passes the conflict check produces bit-identical state to running the
// same quanta serially; any round that does not is discarded and re-run
// through this serial scheduler, the oracle.
//
// syncTime and liveMax are served from aggregates maintained through the
// OnState hook plus noteClock notifications at the points where the run
// loop advances a clock, falling back to a scan after events that rewind
// clocks (recovery) or change the live set (halts) — see invalidate.
type scheduler struct {
	cores  []*cpu.Core
	counts [3]int // populations indexed by cpu.State

	// barrierMax is the latest clock among barrier-waiting cores,
	// maintained on transitions into AtBarrier (the core's clock already
	// includes the BARRIER instruction's cycle when the hook fires).
	// barrierStale forces a rescan after transitions that can lower it
	// (a waiter leaving while others remain, i.e. recovery restores).
	barrierMax   int64
	barrierStale bool

	// clockHi is the high-water mark of the clocks the run loop has
	// reported through noteClock. While liveStale is clear it equals the
	// max clock over non-halted cores at every consultation point.
	clockHi   int64
	liveStale bool
}

// unbounded is the quantum bound when no other core constrains the pick
// (the clock value is unreachable within MaxSteps).
const unbounded = int64(math.MaxInt64)

// debugCheckAggregates, set by tests, verifies every aggregate-served
// syncTime/liveMax answer against the reference scan.
var debugCheckAggregates bool

// newScheduler attaches the state hook to every core and seeds the
// population counters.
func newScheduler(cores []*cpu.Core) *scheduler {
	s := &scheduler{cores: cores}
	for _, c := range cores {
		s.counts[c.State]++
		c.OnState = s.transition
	}
	return s
}

//acr:noalloc
func (s *scheduler) transition(c *cpu.Core, from, to cpu.State) {
	s.counts[from]--
	s.counts[to]++
	switch to {
	case cpu.AtBarrier:
		if t := c.Cycles(); t > s.barrierMax {
			s.barrierMax = t
		}
	case cpu.Halted:
		// A halted core leaves the live set; clockHi may now overestimate
		// liveMax.
		s.liveStale = true
	}
	switch from {
	case cpu.AtBarrier:
		if s.counts[cpu.AtBarrier] == 0 {
			// Barrier fully released: the aggregate restarts exact.
			s.barrierMax = 0
			s.barrierStale = false
		} else {
			// A waiter left while others remain (recovery restore): the
			// maximum may have dropped.
			s.barrierStale = true
		}
	case cpu.Halted:
		// Un-halt (recovery restore rewinds clocks).
		s.liveStale = true
	}
}

// noteClock reports that the run loop advanced a core's clock to t (cycle
// units). The serial loop calls it once per quantum, the parallel engine
// once per committed or replayed quantum, and the coordinator/recovery
// paths after every synchronisation — every point where a clock moves
// between liveMax consultations.
//
//acr:noalloc
func (s *scheduler) noteClock(t int64) {
	if t > s.clockHi {
		s.clockHi = t
	}
}

// invalidate marks both aggregates stale after an event the hooks cannot
// characterise exactly — recovery rewinds clocks arbitrarily. The next
// syncTime/liveMax rescans and re-seeds.
func (s *scheduler) invalidate() {
	s.barrierStale = true
	s.liveStale = true
}

func (s *scheduler) running() int   { return s.counts[cpu.Running] }
func (s *scheduler) atBarrier() int { return s.counts[cpu.AtBarrier] }
func (s *scheduler) halted() int    { return s.counts[cpu.Halted] }

// pick returns the core to execute next — the running core with the
// smallest clock, lowest id on ties — and the exclusive quantum bound: the
// core keeps executing while its clock stays strictly below the bound. A
// lower-id peer takes over at clock equality, so it bounds at its clock; a
// higher-id peer loses ties, so it bounds one cycle later. The caller must
// ensure at least one core is running.
// The two scans (best-core selection, bound computation) are fused into
// one pass in core-id order. When a core displaces the current best, the
// displaced best bounds at exactly its clock (it has the lower id, so it
// takes over at equality); a non-best core seen while some lower-id best
// holds bounds at clock+1 (it loses ties). A candidate's provisional
// bound can only be an overestimate while it might still be displaced,
// and any such overestimate is dominated by the exact bound contributed
// when the displacement happens, so the minimum is identical to the
// two-pass result.
//
//acr:noalloc
func (s *scheduler) pick() (*cpu.Core, int64) {
	var best *cpu.Core
	bound := unbounded
	for _, c := range s.cores {
		if c.State != cpu.Running {
			continue
		}
		switch {
		case best == nil:
			best = c
		case c.Cycles() < best.Cycles():
			if best.Cycles() < bound {
				bound = best.Cycles()
			}
			best = c
		default:
			if limit := c.Cycles() + 1; limit < bound {
				bound = limit
			}
		}
	}
	return best, bound
}

// syncTime returns the latest clock among barrier-waiting cores plus their
// population (the barrier release point), from the incremental aggregate
// when it is exact and by rescan otherwise.
//
//acr:noalloc
func (s *scheduler) syncTime() (t int64, n int) {
	if !s.barrierStale {
		t, n = s.barrierMax, s.counts[cpu.AtBarrier]
		if debugCheckAggregates {
			if st, sn := s.syncTimeScan(); st != t || sn != n {
				panic(fmt.Sprintf("sim: syncTime aggregate (%d,%d) != scan (%d,%d)", t, n, st, sn))
			}
		}
		return t, n
	}
	t, n = s.syncTimeScan()
	s.barrierMax, s.barrierStale = t, false
	return t, n
}

// syncTimeScan is the reference O(cores) computation of syncTime.
//
//acr:noalloc
func (s *scheduler) syncTimeScan() (t int64, n int) {
	for _, c := range s.cores {
		if c.State == cpu.AtBarrier {
			n++
			if c.Cycles() > t {
				t = c.Cycles()
			}
		}
	}
	return t, n
}

// liveMax returns the latest clock among non-halted cores (checkpoint
// establishment and error-detection synchronisation points), from the
// noteClock high-water mark when it is exact and by rescan otherwise.
//
//acr:noalloc
func (s *scheduler) liveMax(floor int64) int64 {
	if !s.liveStale {
		t := floor
		if s.clockHi > t {
			t = s.clockHi
		}
		if debugCheckAggregates {
			if st := s.liveMaxScan(floor); st != t {
				panic(fmt.Sprintf("sim: liveMax aggregate %d != scan %d (floor %d)", t, st, floor))
			}
		}
		return t
	}
	t := s.liveMaxScan(0)
	s.clockHi, s.liveStale = t, false
	if t > floor {
		return t
	}
	return floor
}

// liveMaxScan is the reference O(cores) computation of liveMax.
//
//acr:noalloc
func (s *scheduler) liveMaxScan(floor int64) int64 {
	t := floor
	for _, c := range s.cores {
		if c.State != cpu.Halted && c.Cycles() > t {
			t = c.Cycles()
		}
	}
	return t
}
