// Package energy provides the event-based energy model of the simulated
// machine, standing in for McPAT (paper §IV). Every architectural event is
// charged a fixed energy; leakage is charged per core-cycle. The absolute
// magnitudes are 22 nm-era estimates; what the reproduction relies on is the
// ratio structure the paper's argument rests on: computation (a few pJ per
// ALU op) is one to two orders of magnitude cheaper than moving a word to or
// from DRAM (paper §I, §II-B).
package energy

import "fmt"

// Event identifies a chargeable architectural event.
type Event int

// Events charged by the simulator.
const (
	IntOp       Event = iota // integer ALU operation
	FloatOp                  // FPU operation
	L1IAccess                // instruction fetch from L1-I
	L1DAccess                // L1-D access (hit or fill)
	L2Access                 // L2 access
	DRAMRead                 // one word read from DRAM
	DRAMWrite                // one word written to DRAM
	AddrMapOp                // AddrMap read/insert (modelled after L1-D)
	SliceBufOp               // slice input-operand buffer access
	HandlerOp                // ACR checkpoint/recovery handler operation
	RegCkpt                  // checkpointing one register
	BarrierSync              // one core participating in a barrier
	NVMRead                  // one word read from the fast checkpoint tier
	NVMWrite                 // one word written to the fast checkpoint tier
	numEvents
)

var eventNames = [...]string{
	IntOp: "IntOp", FloatOp: "FloatOp",
	L1IAccess: "L1IAccess", L1DAccess: "L1DAccess", L2Access: "L2Access",
	DRAMRead: "DRAMRead", DRAMWrite: "DRAMWrite",
	AddrMapOp: "AddrMapOp", SliceBufOp: "SliceBufOp", HandlerOp: "HandlerOp",
	RegCkpt: "RegCkpt", BarrierSync: "BarrierSync",
	NVMRead: "NVMRead", NVMWrite: "NVMWrite",
}

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// Model holds per-event energies in picojoules and the leakage power per
// core expressed as pJ per cycle.
type Model struct {
	PerEvent [numEvents]float64 // pJ
	// LeakPerCoreCycle is static energy per core per cycle (pJ). At
	// 1.09 GHz, 45 pJ/cycle corresponds to roughly 49 mW of static power
	// per core, in line with McPAT 22 nm small-core estimates.
	LeakPerCoreCycle float64
}

// Default22nm returns the energy model used throughout the evaluation.
// Magnitudes follow the imbalance the paper builds on: an ALU op costs a few
// pJ, an L1 access ~15 pJ, an L2 access ~50 pJ, and a 64-bit word moved
// to/from DRAM ~650 pJ (≈10 pJ/bit including channel energy).
func Default22nm() *Model {
	m := &Model{LeakPerCoreCycle: 45}
	m.PerEvent[IntOp] = 4
	m.PerEvent[FloatOp] = 16
	m.PerEvent[L1IAccess] = 8
	m.PerEvent[L1DAccess] = 15
	m.PerEvent[L2Access] = 50
	m.PerEvent[DRAMRead] = 650
	m.PerEvent[DRAMWrite] = 650
	m.PerEvent[AddrMapOp] = 15 // modelled after an L1-D access (paper §IV)
	m.PerEvent[SliceBufOp] = 15
	m.PerEvent[HandlerOp] = 10 // modelled after a cache-controller op
	m.PerEvent[RegCkpt] = 2
	m.PerEvent[BarrierSync] = 50
	// Fast checkpoint tier: an on-package NVM-like log store (STT-MRAM
	// class). Accesses stay off the DRAM channel, so a word costs a
	// fraction of a DRAM move; writes are the expensive direction.
	m.PerEvent[NVMRead] = 100
	m.PerEvent[NVMWrite] = 200
	return m
}

// Meter accumulates energy against a Model. Meters are not safe for
// concurrent use; the simulator charges them from one goroutine only.
// During parallel rounds, workers count events into private Accums and the
// committing goroutine folds them in with Merge.
type Meter struct {
	model  *Model
	counts [numEvents]uint64
	// extra accumulates energy added directly in pJ (leakage).
	extraPJ float64
}

// NewMeter returns a meter charging against model.
func NewMeter(model *Model) *Meter {
	if model == nil {
		model = Default22nm()
	}
	return &Meter{model: model}
}

// Add charges n occurrences of event e.
func (m *Meter) Add(e Event, n uint64) { m.counts[e] += n }

// AddLeakage charges static energy for coreCycles core-cycles.
func (m *Meter) AddLeakage(coreCycles float64) {
	m.extraPJ += coreCycles * m.model.LeakPerCoreCycle
}

// Count returns the number of occurrences charged for e.
func (m *Meter) Count(e Event) uint64 { return m.counts[e] }

// Counts returns the non-zero per-event counts keyed by event name. The
// breakdown is what telemetry exports to answer "where do the picojoules
// go": multiplying each count by the model's per-event energy reproduces
// DynamicPJ exactly.
func (m *Meter) Counts() map[string]uint64 {
	out := make(map[string]uint64)
	for e, n := range m.counts {
		if n != 0 {
			out[Event(e).String()] = n
		}
	}
	return out
}

// TotalPJ returns the accumulated energy in picojoules.
func (m *Meter) TotalPJ() float64 {
	t := m.extraPJ
	for e, n := range m.counts {
		t += float64(n) * m.model.PerEvent[e]
	}
	return t
}

// DynamicPJ returns accumulated dynamic (event) energy only, excluding
// leakage.
func (m *Meter) DynamicPJ() float64 {
	t := 0.0
	for e, n := range m.counts {
		t += float64(n) * m.model.PerEvent[e]
	}
	return t
}

// Reset clears all accumulated counts and leakage.
func (m *Meter) Reset() {
	m.counts = [numEvents]uint64{}
	m.extraPJ = 0
}

// Snapshot returns the current total; callers diff snapshots to attribute
// energy to execution phases.
func (m *Meter) Snapshot() float64 { return m.TotalPJ() }

// Accum is a detached event accumulator: a worker executing a speculative
// quantum counts events into a private Accum, and the committing goroutine
// folds it into the Meter. Counts are commutative sums, so the merge order
// cannot affect any total the Meter reports.
type Accum struct {
	counts [numEvents]uint64
}

// Add counts n occurrences of event e.
//
//acr:spec-safe
func (a *Accum) Add(e Event, n uint64) { a.counts[e] += n }

// Reset clears the accumulator for reuse.
//
//acr:spec-safe
func (a *Accum) Reset() { a.counts = [numEvents]uint64{} }

// Empty reports whether the accumulator holds no counts.
func (a *Accum) Empty() bool { return a.counts == [numEvents]uint64{} }

// Merge folds a's counts into the meter. Must be called on the goroutine
// that owns the meter.
//
//acr:spec-safe
func (m *Meter) Merge(a *Accum) {
	for e, n := range a.counts {
		m.counts[e] += n
	}
}
