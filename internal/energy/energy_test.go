package energy

import (
	"testing"
	"testing/quick"
)

func TestDefaultModelRatios(t *testing.T) {
	m := Default22nm()
	// The paper's premise: recomputing (ALU ops) is far cheaper than a
	// memory access. Guard the ratios the results depend on.
	if m.PerEvent[DRAMRead] < 50*m.PerEvent[IntOp] {
		t.Errorf("DRAM read (%v pJ) must dwarf an int op (%v pJ)",
			m.PerEvent[DRAMRead], m.PerEvent[IntOp])
	}
	if m.PerEvent[DRAMWrite] < 20*m.PerEvent[FloatOp] {
		t.Errorf("DRAM write (%v pJ) must dwarf a float op (%v pJ)",
			m.PerEvent[DRAMWrite], m.PerEvent[FloatOp])
	}
	if m.PerEvent[L1DAccess] >= m.PerEvent[L2Access] {
		t.Error("L1 access must be cheaper than L2")
	}
	if m.PerEvent[L2Access] >= m.PerEvent[DRAMRead] {
		t.Error("L2 access must be cheaper than DRAM")
	}
	for e := Event(0); e < numEvents; e++ {
		if m.PerEvent[e] <= 0 {
			t.Errorf("event %v has non-positive energy", e)
		}
		if e.String() == "" {
			t.Errorf("event %d unnamed", e)
		}
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter(Default22nm())
	m.Add(IntOp, 10)
	m.Add(DRAMRead, 2)
	want := 10*4.0 + 2*650.0
	if got := m.TotalPJ(); got != want {
		t.Errorf("TotalPJ = %v, want %v", got, want)
	}
	if m.Count(IntOp) != 10 {
		t.Errorf("Count(IntOp) = %d", m.Count(IntOp))
	}
	m.AddLeakage(100)
	want += 100 * 45
	if got := m.TotalPJ(); got != want {
		t.Errorf("TotalPJ with leakage = %v, want %v", got, want)
	}
	if got := m.DynamicPJ(); got != 10*4.0+2*650.0 {
		t.Errorf("DynamicPJ = %v", got)
	}
	m.Reset()
	if m.TotalPJ() != 0 {
		t.Error("Reset did not clear meter")
	}
}

func TestMeterNilModelDefaults(t *testing.T) {
	m := NewMeter(nil)
	m.Add(IntOp, 1)
	if m.TotalPJ() != 4 {
		t.Errorf("nil model did not default: %v", m.TotalPJ())
	}
}

func TestMeterLinear(t *testing.T) {
	// Property: energy is linear in event counts.
	f := func(a, b uint8) bool {
		m1 := NewMeter(nil)
		m1.Add(L2Access, uint64(a))
		m1.Add(L2Access, uint64(b))
		m2 := NewMeter(nil)
		m2.Add(L2Access, uint64(a)+uint64(b))
		return m1.TotalPJ() == m2.TotalPJ()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotDiffAttributesPhases(t *testing.T) {
	m := NewMeter(nil)
	m.Add(IntOp, 5)
	s := m.Snapshot()
	m.Add(DRAMWrite, 3)
	if got := m.Snapshot() - s; got != 3*650.0 {
		t.Errorf("phase energy = %v, want %v", got, 3*650.0)
	}
}
