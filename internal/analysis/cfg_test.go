package analysis

import (
	"testing"

	"acr/internal/isa"
)

// diamond builds the canonical two-armed CFG used across the tests:
//
//	b0: 0 li r1,1 ; 1 beq r1,r0 -> 4
//	b1: 2 li r2,10 ; 3 jmp 5
//	b2: 4 li r2,20
//	b3: 5 add r3,r2,r1 ; 6 halt
func diamond() []isa.Instr {
	return []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 1},
		{Op: isa.BEQ, Rs: 1, Rt: 0, Imm: 4},
		{Op: isa.LI, Rd: 2, Imm: 10},
		{Op: isa.JMP, Imm: 5},
		{Op: isa.LI, Rd: 2, Imm: 20},
		{Op: isa.ADD, Rd: 3, Rs: 2, Rt: 1},
		{Op: isa.HALT},
	}
}

func TestBuildCFGDiamond(t *testing.T) {
	g, err := BuildCFG(diamond(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4: %+v", len(g.Blocks), g.Blocks)
	}
	wantRange := [][2]int{{0, 2}, {2, 4}, {4, 5}, {5, 7}}
	for i, w := range wantRange {
		if g.Blocks[i].Start != w[0] || g.Blocks[i].End != w[1] {
			t.Errorf("block %d = [%d,%d), want [%d,%d)", i, g.Blocks[i].Start, g.Blocks[i].End, w[0], w[1])
		}
	}
	wantSuccs := [][]int{{2, 1}, {3}, {3}, nil}
	for i, w := range wantSuccs {
		if len(g.Blocks[i].Succs) != len(w) {
			t.Fatalf("block %d succs = %v, want %v", i, g.Blocks[i].Succs, w)
		}
		for j := range w {
			if g.Blocks[i].Succs[j] != w[j] {
				t.Errorf("block %d succs = %v, want %v", i, g.Blocks[i].Succs, w)
			}
		}
	}
	if got := g.BlockOf(4); got != 2 {
		t.Errorf("BlockOf(4) = %d, want 2", got)
	}
	if len(g.Blocks[3].Preds) != 2 {
		t.Errorf("join block preds = %v, want two", g.Blocks[3].Preds)
	}
}

func TestBuildCFGRejectsBadBranchTarget(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.JMP, Imm: 99},
		{Op: isa.HALT},
	}
	if _, err := BuildCFG(code, 0); err == nil {
		t.Fatal("branch to pc 99 in a 2-instruction program must be rejected")
	}
	if _, err := BuildCFG(nil, 0); err == nil {
		t.Fatal("empty code must be rejected")
	}
	if _, err := BuildCFG(diamond(), 42); err == nil {
		t.Fatal("out-of-range entry must be rejected")
	}
}

func TestReachable(t *testing.T) {
	// Block after an unconditional jmp with no inbound edge is dead.
	code := []isa.Instr{
		{Op: isa.JMP, Imm: 3},
		{Op: isa.LI, Rd: 1, Imm: 1}, // dead
		{Op: isa.JMP, Imm: 3},       // dead
		{Op: isa.HALT},
	}
	g, err := BuildCFG(code, 0)
	if err != nil {
		t.Fatal(err)
	}
	reach := g.Reachable()
	if !reach[g.BlockOf(0)] || !reach[g.BlockOf(3)] {
		t.Error("entry and halt blocks must be reachable")
	}
	if reach[g.BlockOf(1)] {
		t.Error("block after jmp with no inbound edge must be unreachable")
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	g, err := BuildCFG(diamond(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rpo := g.ReversePostorder()
	if len(rpo) != 4 || rpo[0] != g.Entry {
		t.Fatalf("rpo = %v, want all 4 blocks starting at entry %d", rpo, g.Entry)
	}
	if rpo[len(rpo)-1] != 3 {
		t.Errorf("rpo = %v, want the join block last", rpo)
	}
}
