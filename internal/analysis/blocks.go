package analysis

import (
	"acr/internal/isa"
	"acr/internal/prog"
)

// BuildBlockTable flattens the program CFG into the prog.BlockTable the
// block-compilation engine executes from: the same basic-block partition
// BuildCFG computes (leaders at the entry, branch targets and the
// instructions after branches and HALTs), without the edge lists the
// execution engine has no use for. Every branch target is therefore a
// block start, which is what lets compiled blocks run straight-line: a
// taken branch always lands on a block head, never mid-block.
//
// It fails exactly when BuildCFG does (empty code, entry or a branch
// target outside the image); on a prog.Validate-clean program it cannot
// fail, and the engine treats failure as a whole-program deopt.
func BuildBlockTable(code []isa.Instr, entry int) (*prog.BlockTable, error) {
	g, err := BuildCFG(code, entry)
	if err != nil {
		return nil, err
	}
	t := &prog.BlockTable{
		Spans:   make([]prog.BlockSpan, len(g.Blocks)),
		BlockOf: make([]int32, len(code)),
	}
	for i, b := range g.Blocks {
		t.Spans[i] = prog.BlockSpan{Start: b.Start, End: b.End}
		for pc := b.Start; pc < b.End; pc++ {
			t.BlockOf[pc] = int32(i)
		}
	}
	return t, nil
}
