package analysis

import (
	"testing"

	"acr/internal/isa"
)

// autoKernel builds a straight-line window with three ASSOC-ADDR sites that
// exercise each plan policy against threshold 3:
//
//   - site A: slice of 2 (LI; MULI) — under threshold, defaulted;
//   - site B: slice of 6 (LI + 5×ADDI), stored register dead afterwards —
//     over threshold, verified, boostable;
//   - site C: slice of 6 like B, but the stored register is read again
//     after the store — over threshold and live, so pruned (not boostable,
//     and the dynamic compile would reject it anyway);
//   - site D: slice of 14 (LI + 13×XORI) — over the 4× boost ceiling,
//     pruned outright.
func autoKernel() []isa.Instr {
	var code []isa.Instr
	emit := func(in isa.Instr) { code = append(code, in) }
	chain := func(rd isa.Reg, n int, op isa.Op) {
		emit(isa.Instr{Op: isa.LI, Rd: rd, Imm: 1})
		for i := 0; i < n; i++ {
			emit(isa.Instr{Op: op, Rd: rd, Rs: rd, Imm: 3})
		}
	}
	emit(isa.Instr{Op: isa.LI, Rd: 1, Imm: 64}) // base address

	// Site A: short chain.
	emit(isa.Instr{Op: isa.LI, Rd: 2, Imm: 7})
	emit(isa.Instr{Op: isa.MULI, Rd: 2, Rs: 2, Imm: 3})
	emit(isa.Instr{Op: isa.ST, Rt: 2, Rs: 1, Imm: 0})
	emit(isa.Instr{Op: isa.ASSOCADDR, Rs: 1, Imm: 0})

	// Site B: over-threshold chain, r3 dead after the store.
	chain(3, 5, isa.ADDI)
	emit(isa.Instr{Op: isa.ST, Rt: 3, Rs: 1, Imm: 1})
	emit(isa.Instr{Op: isa.ASSOCADDR, Rs: 1, Imm: 1})

	// Site C: over-threshold chain, r4 still live after the store.
	chain(4, 5, isa.ADDI)
	emit(isa.Instr{Op: isa.ST, Rt: 4, Rs: 1, Imm: 2})
	emit(isa.Instr{Op: isa.ASSOCADDR, Rs: 1, Imm: 2})
	emit(isa.Instr{Op: isa.ADDI, Rd: 5, Rs: 4, Imm: 1}) // keeps r4 live

	// Site D: chain past the boost ceiling (4×3 = 12).
	chain(6, 13, isa.XORI)
	emit(isa.Instr{Op: isa.ST, Rt: 6, Rs: 1, Imm: 3})
	emit(isa.Instr{Op: isa.ASSOCADDR, Rs: 1, Imm: 3})

	emit(isa.Instr{Op: isa.HALT})
	return code
}

func TestPlanCheckpointSitesPolicies(t *testing.T) {
	code := autoKernel()
	const threshold = 3
	plan, err := PlanCheckpointSites(code, 0, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Sites != 4 {
		t.Fatalf("sites = %d, want 4", plan.Sites)
	}
	if plan.Defaulted != 1 || plan.Boosted != 1 || plan.Pruned != 2 {
		t.Errorf("plan = defaulted %d, boosted %d, pruned %d; want 1/1/2 (%+v)",
			plan.Defaulted, plan.Boosted, plan.Pruned, plan)
	}

	// Locate the four sites and check each cap individually.
	var sites []int
	for pc, in := range code {
		if in.Op == isa.ASSOCADDR {
			sites = append(sites, pc)
		}
	}
	if len(sites) != 4 {
		t.Fatalf("found %d ASSOC sites", len(sites))
	}
	if got := plan.SiteCaps[sites[0]]; got != 0 {
		t.Errorf("short site cap = %d, want 0 (defaulted)", got)
	}
	if got, want := plan.SiteCaps[sites[1]], int32(4*threshold); got != want {
		t.Errorf("dead-value site cap = %d, want boost to %d", got, want)
	}
	if got := plan.SiteCaps[sites[2]]; got != -1 {
		t.Errorf("live-value over-threshold site cap = %d, want -1 (pruned)", got)
	}
	if got := plan.SiteCaps[sites[3]]; got != -1 {
		t.Errorf("over-ceiling site cap = %d, want -1 (pruned)", got)
	}

	// Non-site PCs carry 0: a plan indexed by any other pc is inert.
	for pc, cap := range plan.SiteCaps {
		if code[pc].Op != isa.ASSOCADDR && cap != 0 {
			t.Errorf("non-site pc %d has cap %d", pc, cap)
		}
	}
}

func TestPlanCheckpointSitesDefaultThreshold(t *testing.T) {
	code := autoKernel()
	plan, err := PlanCheckpointSites(code, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At the default threshold of 10 the 6-long chains fall under the
	// threshold and default; the 14-long dead-value chain is now within
	// the 40-word boost ceiling, so nothing needs pruning.
	if plan.Sites != 4 || plan.Pruned != 0 {
		t.Errorf("default-threshold plan = %+v", plan)
	}
}

func TestPlanCheckpointSitesDefensive(t *testing.T) {
	// An ASSOC without a preceding store must be pruned, not crash the
	// pass (the prog validator normally rejects such code).
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 8},
		{Op: isa.ASSOCADDR, Rs: 1, Imm: 0},
		{Op: isa.HALT},
	}
	plan, err := PlanCheckpointSites(code, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pruned != 1 || plan.SiteCaps[1] != -1 {
		t.Errorf("unpaired ASSOC not pruned: %+v", plan)
	}
}
