package analysis

import (
	"fmt"
	"sort"

	"acr/internal/isa"
	"acr/internal/prog"
)

// Severity grades a lint diagnostic. The acrlint gate and the workload
// guard test treat warnings and errors as failures; the split exists so
// reports can distinguish definite bugs from smells. Info diagnostics are
// advisory surfacing of analysis decisions (the auto checkpoint site plan)
// and never gate.
type Severity uint8

// Severities. The wire values of SevWarn and SevError predate SevInfo and
// are kept stable for JSON consumers.
const (
	SevWarn Severity = iota
	SevError
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevInfo:
		return "info"
	}
	return "warning"
}

// Diag is one lint finding, anchored to an instruction (PC) and its basic
// block.
type Diag struct {
	Pass     string   `json:"pass"`
	PC       int      `json:"pc"`
	Block    int      `json:"block"`
	Severity Severity `json:"severity"`
	Msg      string   `json:"msg"`
}

func (d Diag) String() string {
	return fmt.Sprintf("pc %d [%s] %s: %s", d.PC, d.Pass, d.Severity, d.Msg)
}

// Lint runs the full pass suite over a built program: unreachable blocks,
// definitely-uninitialised register reads, dead register writes, writes to
// the hardwired zero register, statically out-of-segment memory references,
// fall-through past the end of the code image, and infinite loops that
// contain no barrier. It returns the findings sorted by PC; the error is
// non-nil only when the CFG cannot be constructed (e.g. a branch targets an
// instruction outside the code image).
func Lint(p *prog.Program) ([]Diag, error) {
	return LintCode(p.Code, p.Entry, p.DataWords)
}

// LintCode is Lint over a raw code image. dataWords bounds the data
// segment for the out-of-segment pass; pass 0 to skip that pass.
func LintCode(code []isa.Instr, entry, dataWords int) ([]Diag, error) {
	g, err := BuildCFG(code, entry)
	if err != nil {
		return nil, err
	}
	reach := g.Reachable()
	var diags []Diag
	diags = append(diags, lintUnreachable(g, reach)...)
	diags = append(diags, lintUninitReads(g, reach)...)
	diags = append(diags, lintDeadStores(g, reach)...)
	diags = append(diags, lintWriteR0(g, reach)...)
	diags = append(diags, lintOutOfSegment(g, reach, dataWords)...)
	diags = append(diags, lintFallOffEnd(g, reach)...)
	diags = append(diags, lintInfiniteLoops(g, reach)...)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].PC != diags[j].PC {
			return diags[i].PC < diags[j].PC
		}
		return diags[i].Pass < diags[j].Pass
	})
	return diags, nil
}

// lintUnreachable flags blocks no path from the entry reaches.
func lintUnreachable(g *CFG, reach []bool) []Diag {
	var diags []Diag
	for _, b := range g.Blocks {
		if reach[b.ID] {
			continue
		}
		diags = append(diags, Diag{
			Pass: "unreachable", PC: b.Start, Block: b.ID, Severity: SevWarn,
			Msg: fmt.Sprintf("block %d (pc %d..%d) is unreachable from the entry", b.ID, b.Start, b.End-1),
		})
	}
	return diags
}

// lintUninitReads flags reads of registers that are never written on any
// path from the entry — the value read is always the architectural zero,
// which is either a latent bug or should be spelled r0. The loader-preset
// thread id and thread count are exempt.
func lintUninitReads(g *CFG, reach []bool) []Diag {
	rd := NewReachingDefs(g)
	var diags []Diag
	var srcs []isa.Reg
	for _, b := range g.Blocks {
		if !reach[b.ID] {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			srcs = g.Code[pc].SrcRegs(srcs[:0])
			seen := uint32(0)
			for _, r := range srcs {
				if r == 0 || r == prog.RegTID || r == prog.RegNTHR || seen&(1<<r) != 0 {
					continue
				}
				seen |= 1 << r
				defs := rd.DefsAt(pc, r)
				allEntry := true
				for _, d := range defs {
					if d != EntryDef {
						allEntry = false
						break
					}
				}
				if allEntry {
					diags = append(diags, Diag{
						Pass: "uninit-read", PC: pc, Block: b.ID, Severity: SevError,
						Msg: fmt.Sprintf("%v reads %v, which is never written on any path from the entry (always its initial zero)", g.Code[pc], r),
					})
				}
			}
		}
	}
	return diags
}

// lintDeadStores flags pure ALU register writes whose value is never read:
// the instruction has no side effect, so it is either dead code or a bug
// (memory operations are exempt — a load's cache traffic is an effect even
// when the loaded value is unused).
func lintDeadStores(g *CFG, reach []bool) []Diag {
	lv := NewLiveness(g)
	var diags []Diag
	for _, b := range g.Blocks {
		if !reach[b.ID] {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Code[pc]
			if !in.Op.IsALU() {
				continue
			}
			r, ok := in.DstReg()
			if !ok || r == 0 {
				continue
			}
			if lv.LiveOutAt(pc)&(1<<r) == 0 {
				diags = append(diags, Diag{
					Pass: "dead-store", PC: pc, Block: b.ID, Severity: SevWarn,
					Msg: fmt.Sprintf("value of %v computed by %v is never read", r, in),
				})
			}
		}
	}
	return diags
}

// lintWriteR0 flags instructions that write the hardwired zero register:
// the write is silently discarded by the core.
func lintWriteR0(g *CFG, reach []bool) []Diag {
	var diags []Diag
	for _, b := range g.Blocks {
		if !reach[b.ID] {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Code[pc]
			if r, ok := in.DstReg(); ok && r == 0 && in.Op != isa.NOP {
				diags = append(diags, Diag{
					Pass: "write-r0", PC: pc, Block: b.ID, Severity: SevError,
					Msg: fmt.Sprintf("%v writes r0; the result is discarded", in),
				})
			}
		}
	}
	return diags
}

// lintOutOfSegment flags memory references whose effective address is a
// proven constant outside the program's data segment [0, dataWords).
func lintOutOfSegment(g *CFG, reach []bool, dataWords int) []Diag {
	if dataWords <= 0 {
		return nil
	}
	cp := NewConstProp(g)
	var diags []Diag
	for _, b := range g.Blocks {
		if !reach[b.ID] {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Code[pc]
			if !in.Op.IsMem() {
				continue
			}
			base, ok := cp.ValueAt(pc, in.Rs)
			if !ok {
				continue
			}
			addr := base + in.Imm
			if addr < 0 || addr >= int64(dataWords) {
				diags = append(diags, Diag{
					Pass: "oob-mem", PC: pc, Block: b.ID, Severity: SevError,
					Msg: fmt.Sprintf("%v addresses word %d, outside the data segment [0,%d)", in, addr, dataWords),
				})
			}
		}
	}
	return diags
}

// lintFallOffEnd flags a reachable block that falls through past the last
// instruction of the code image: execution would run off the program.
func lintFallOffEnd(g *CFG, reach []bool) []Diag {
	var diags []Diag
	for _, b := range g.Blocks {
		if !reach[b.ID] || b.End != len(g.Code) {
			continue
		}
		last := g.Code[b.End-1]
		if last.Op == isa.HALT || last.Op == isa.JMP {
			continue
		}
		diags = append(diags, Diag{
			Pass: "fall-off-end", PC: b.End - 1, Block: b.ID, Severity: SevError,
			Msg: fmt.Sprintf("control can fall through past the last instruction (%v); terminate with halt or an unconditional jump", last),
		})
	}
	return diags
}

// lintInfiniteLoops flags cycles in the CFG that have no exit edge and
// contain no barrier: every thread entering one spins forever with no way
// to synchronise out.
func lintInfiniteLoops(g *CFG, reach []bool) []Diag {
	var diags []Diag
	for _, scc := range stronglyConnected(g, reach) {
		inSCC := make(map[int]bool, len(scc))
		for _, id := range scc {
			inSCC[id] = true
		}
		// A single block is a cycle only if it has a self-edge.
		if len(scc) == 1 {
			self := false
			for _, s := range g.Blocks[scc[0]].Succs {
				if s == scc[0] {
					self = true
				}
			}
			if !self {
				continue
			}
		}
		hasExit, hasBarrier := false, false
		first := scc[0]
		for _, id := range scc {
			if g.Blocks[id].Start < g.Blocks[first].Start {
				first = id
			}
			for _, s := range g.Blocks[id].Succs {
				if !inSCC[s] {
					hasExit = true
				}
			}
			for pc := g.Blocks[id].Start; pc < g.Blocks[id].End; pc++ {
				if g.Code[pc].Op == isa.BARRIER {
					hasBarrier = true
				}
			}
		}
		if !hasExit && !hasBarrier {
			diags = append(diags, Diag{
				Pass: "infinite-loop", PC: g.Blocks[first].Start, Block: first, Severity: SevError,
				Msg: fmt.Sprintf("loop over blocks %v has no exit edge and no barrier; it can never terminate", scc),
			})
		}
	}
	return diags
}

// stronglyConnected returns Tarjan's strongly connected components of the
// reachable subgraph.
func stronglyConnected(g *CFG, reach []bool) [][]int {
	n := len(g.Blocks)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0
	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.Blocks[v].Succs {
			if !reach[w] {
				continue
			}
			if index[w] == -1 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Ints(scc)
			sccs = append(sccs, scc)
		}
	}
	for v := 0; v < n; v++ {
		if reach[v] && index[v] == -1 {
			strong(v)
		}
	}
	return sccs
}
