package analysis

import (
	"testing"

	"acr/internal/isa"
)

func TestDominatorsDiamond(t *testing.T) {
	g, err := BuildCFG(diamond(), 0)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDominators(g)

	for b := 0; b < 4; b++ {
		if !d.Dominates(0, b) {
			t.Errorf("entry block must dominate block %d", b)
		}
		if !d.Dominates(b, b) {
			t.Errorf("block %d must dominate itself", b)
		}
	}
	// Neither arm dominates the join.
	if d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Error("diamond arms must not dominate the join block")
	}
	if d.Idom[3] != 0 {
		t.Errorf("idom(join) = %d, want entry (merge point's idom skips the arms)", d.Idom[3])
	}
}

func TestDominatorsLoop(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 0}, // b0
		{Op: isa.BGE, Rs: 1, Rt: 2, Imm: 4},
		{Op: isa.ADDI, Rd: 1, Rs: 1, Imm: 1}, // b1 body
		{Op: isa.JMP, Imm: 1},
		{Op: isa.HALT}, // b2 exit
	}
	g, err := BuildCFG(code, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDominators(g)
	head := g.BlockOf(1)
	body := g.BlockOf(2)
	exit := g.BlockOf(4)
	if !d.Dominates(head, body) || !d.Dominates(head, exit) {
		t.Error("loop head must dominate body and exit")
	}
	if d.Dominates(body, exit) {
		t.Error("loop body must not dominate the exit")
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.JMP, Imm: 2},
		{Op: isa.LI, Rd: 1, Imm: 1}, // unreachable
		{Op: isa.HALT},
	}
	g, err := BuildCFG(code, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDominators(g)
	dead := g.BlockOf(1)
	if d.Dominates(dead, g.BlockOf(2)) || d.Dominates(g.Entry, dead) {
		t.Error("unreachable blocks neither dominate nor are dominated")
	}
}
