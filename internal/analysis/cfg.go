// Package analysis provides whole-program static analysis over isa
// programs: basic-block/control-flow-graph construction with branch-target
// resolution, the classic bit-vector dataflow analyses (reaching
// definitions, register liveness), dominance, and — layered on top — a lint
// pass suite (cmd/acrlint) and a Slice recomputability verifier that proves
// a slice.Static replay-safe before it is trusted by recovery.
//
// The package is the static half of the paper's compiler pass (§III,
// Fig. 3): where internal/slice derives Slices dynamically from the
// executed trace, analysis decides *ahead of execution* which stores have a
// provably recomputable backward slice and which programs are structurally
// sound enough to run at all. Everything operates on the []isa.Instr code
// image shared by prog.Program, so the same passes serve workload kernels,
// example programs and hand-built test windows.
package analysis

import (
	"errors"
	"fmt"

	"acr/internal/isa"
)

// Block is one basic block: the half-open instruction range [Start, End)
// with single-entry/single-exit control flow. Succs and Preds are block IDs.
type Block struct {
	ID    int
	Start int
	End   int
	Succs []int
	Preds []int
}

// CFG is the control-flow graph of a code image. Blocks partition the code;
// every instruction belongs to exactly one block.
type CFG struct {
	Code   []isa.Instr
	Blocks []Block
	// Entry is the ID of the block containing the program entry point.
	Entry int

	blockOf []int // pc -> block ID
}

// BuildCFG partitions code into basic blocks and resolves branch targets.
// It fails when the code is empty, the entry is out of range, or any branch
// targets an instruction outside the code image — the static counterpart of
// the assembler's unresolved-label check.
func BuildCFG(code []isa.Instr, entry int) (*CFG, error) {
	n := len(code)
	if n == 0 {
		return nil, errors.New("analysis: empty code image")
	}
	if entry < 0 || entry >= n {
		return nil, fmt.Errorf("analysis: entry %d outside code [0,%d)", entry, n)
	}

	// Leaders: the entry, pc 0, every branch target, and every instruction
	// following a branch or HALT.
	leader := make([]bool, n)
	leader[0] = true
	leader[entry] = true
	for pc, in := range code {
		if t, ok := in.BranchTarget(); ok {
			if t < 0 || t >= n {
				return nil, fmt.Errorf("analysis: pc %d: %v targets %d, outside code [0,%d)", pc, in, t, n)
			}
			leader[t] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
		if in.Op == isa.HALT && pc+1 < n {
			leader[pc+1] = true
		}
	}

	g := &CFG{Code: code, blockOf: make([]int, n)}
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leader[pc] {
			id := len(g.Blocks)
			g.Blocks = append(g.Blocks, Block{ID: id, Start: start, End: pc})
			for i := start; i < pc; i++ {
				g.blockOf[i] = id
			}
			start = pc
		}
	}
	g.Entry = g.blockOf[entry]

	// Edges. A block ending in HALT has no successors; a conditional
	// branch has the target plus the fall-through; falling off the end of
	// the code image exits the program (the lint suite flags it).
	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for id := range g.Blocks {
		b := &g.Blocks[id]
		last := code[b.End-1]
		if t, ok := last.BranchTarget(); ok {
			addEdge(id, g.blockOf[t])
			if last.Op != isa.JMP && b.End < n {
				addEdge(id, g.blockOf[b.End])
			}
			continue
		}
		if last.Op == isa.HALT {
			continue
		}
		if b.End < n {
			addEdge(id, g.blockOf[b.End])
		}
	}
	return g, nil
}

// BlockOf returns the ID of the block containing pc.
func (g *CFG) BlockOf(pc int) int { return g.blockOf[pc] }

// Reachable reports, per block, whether it is reachable from the entry.
func (g *CFG) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []int{g.Entry}
	seen[g.Entry] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[id].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// ReversePostorder returns the reachable blocks in reverse postorder of a
// depth-first walk from the entry — the iteration order that makes the
// forward dataflow fixpoints converge in few passes.
func (g *CFG) ReversePostorder() []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var walk func(id int)
	walk = func(id int) {
		seen[id] = true
		for _, s := range g.Blocks[id].Succs {
			if !seen[s] {
				walk(s)
			}
		}
		post = append(post, id)
	}
	walk(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// reachableFrom reports, per block, whether it is reachable from block id
// by following one or more edges (id itself is included only when it lies
// on a cycle).
func (g *CFG) reachableFrom(id int) []bool {
	seen := make([]bool, len(g.Blocks))
	var stack []int
	for _, s := range g.Blocks[id].Succs {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}
