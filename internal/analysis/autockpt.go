package analysis

import (
	"fmt"

	"acr/internal/isa"
	"acr/internal/slice"
)

// This file implements the auto checkpoint strategy's static pass: an
// AutoCheck-style compile-time sweep over every ASSOC-ADDR site that decides,
// before the program runs, how the runtime amnesic machinery should treat
// each site. The pass reuses the package's CFG, dominance, reaching-defs and
// liveness analyses (through the shared Verifier) to prove per site whether
// the stored value's static slice is replay-safe, and turns the proof into a
// per-site policy:
//
//   - prune (-1): the site's static slice already exceeds the length cap the
//     dynamic policy would apply (or the boost ceiling, or cannot be sliced
//     at all), so every runtime compile at this site is predicted to be
//     rejected work. The runtime drops the association before touching the
//     AddrMap — the value is simply logged conventionally, so pruning can
//     never make recovery unsound, it only removes wasted compile/insert
//     energy.
//   - boost (+n): the slice is proven replay-safe and the stored value is
//     dead after the store (its only consumer WAS the store), but the slice
//     is longer than the dynamic threshold. The site's length cap is raised
//     to n so the runtime embeds it anyway: recomputation is the only way to
//     regenerate a dead value, which is exactly the amnesic win the fixed
//     threshold misses.
//   - default (0): leave the dynamic policy alone. Notably, a short slice
//     that fails static verification is NOT pruned: the static aliasing and
//     closure proofs are conservative around loops, while the runtime
//     compile validates against the actual executed trace and is the
//     arbiter of soundness.
//
// The runtime compile still validates every accepted Slice against the
// actual execution, so the plan is purely a cost policy; a wrong static
// judgement costs traffic, never correctness.

// AutoPlan is the result of PlanCheckpointSites: a per-PC site policy plus
// the pass's accounting.
type AutoPlan struct {
	// SiteCaps is indexed by the ASSOC-ADDR instruction's PC. -1 prunes the
	// site, 0 defers to the dynamic policy, a positive value overrides the
	// site's Slice-length cap. Non-ASSOC PCs hold 0.
	SiteCaps []int32

	Sites     int // ASSOC-ADDR sites examined
	Verified  int // sites whose static slice proved replay-safe
	Pruned    int // sites pruned (unsound or over the boost ceiling)
	Boosted   int // sites whose length cap was raised
	Defaulted int // sites left to the dynamic policy
}

// boostFactor bounds how far the static pass may raise a site's length cap
// above the dynamic threshold. Beyond it, recomputation cost dwarfs the log
// write it saves even for dead values.
const boostFactor = 4

// PlanCheckpointSites statically analyses every ASSOC-ADDR site of code and
// returns the auto strategy's site plan. threshold is the dynamic
// Slice-length threshold the plan is computed against (non-positive selects
// the paper's default of 10).
func PlanCheckpointSites(code []isa.Instr, entry, threshold int) (*AutoPlan, error) {
	if threshold <= 0 {
		threshold = 10
	}
	v, err := NewVerifier(code, entry)
	if err != nil {
		return nil, fmt.Errorf("analysis: auto plan: %w", err)
	}
	lv := NewLiveness(v.g)
	plan := &AutoPlan{SiteCaps: make([]int32, len(code))}
	boostCap := boostFactor * threshold

	for pc, in := range code {
		if in.Op != isa.ASSOCADDR {
			continue
		}
		plan.Sites++
		// The prog validator pairs every ASSOC-ADDR with the immediately
		// preceding store; be defensive about raw code anyway.
		if pc == 0 || code[pc-1].Op != isa.ST {
			plan.SiteCaps[pc] = -1
			plan.Pruned++
			continue
		}
		st, err := slice.Backward(code[:pc], pc-1)
		if err != nil || st.Len() > boostCap {
			plan.SiteCaps[pc] = -1
			plan.Pruned++
			continue
		}
		if v.Verify(st) == nil {
			plan.Verified++
			if st.Len() > threshold {
				// Proven replay-safe but over the dynamic threshold:
				// boost the cap when the stored value is dead after the
				// store — then the slice is the sole way to regenerate it
				// and the longer recomputation is worth the omitted log
				// write. The cap is raised to the full ceiling, not the
				// static length, absorbing static/dynamic length skew.
				valReg := code[pc-1].Rt
				if valReg != 0 && lv.LiveOutAt(pc)&(1<<uint(valReg)) == 0 {
					plan.SiteCaps[pc] = int32(boostCap)
					plan.Boosted++
					continue
				}
			}
		}
		if st.Len() > threshold {
			// Not boostable, and the dynamic compile would reject the
			// slice at the threshold anyway: every runtime compile at
			// this site is predicted waste. Prune it.
			plan.SiteCaps[pc] = -1
			plan.Pruned++
			continue
		}
		plan.Defaulted++
	}
	return plan, nil
}
