package analysis

import (
	"fmt"
	"sort"

	"acr/internal/isa"
	"acr/internal/slice"
)

// This file implements the Slice recomputability verifier: the static proof
// that a slice.Static is replay-safe, i.e. that evaluating its members over
// its buffered inputs at recovery time reproduces the stored value
// bit-for-bit (paper §III, Fig. 3). The proof obligations are
//
//  1. purity — every member is a pure ALU/FPU instruction (no memory
//     access, no control flow, no system op);
//  2. guaranteed execution — every member and input load dominates the
//     sliced store, so whenever the store executed, so did they;
//  3. closure — every operand consumed by a member (and the stored value
//     itself) is produced by a slice member, captured by a buffered input
//     load, or listed as a buffered live-in; a reaching definition from any
//     other instruction means the slice would replay a stale value;
//  4. address determinism — the effective address of every input load and
//     of the store has a unique reaching definition, so the captured
//     location is not control-flow dependent;
//  5. no clobber — no store on a path between an input load and the sliced
//     store may alias the load's address, so the buffered value is the one
//     memory held when the slice's inputs were captured.
//
// Violations are reported as *UnsoundSliceError with the offending PCs, so
// an unsound Slice is rejected with a precise diagnostic instead of
// silently corrupting recovery. The runtime half of the same contract is
// slice.(*Compiled).Validate, which Tracker.Compile applies to every
// dynamically extracted Slice.

// UnsoundSliceError explains why a Slice failed verification.
type UnsoundSliceError struct {
	// StoreIdx is the sliced store's index in the window.
	StoreIdx int
	// PC is the instruction the violation is anchored to.
	PC int
	// Obligation names the violated proof obligation.
	Obligation string
	// Msg is the human-readable diagnostic.
	Msg string
}

func (e *UnsoundSliceError) Error() string {
	return fmt.Sprintf("slice of store at pc %d is not replay-safe (%s): %s", e.StoreIdx, e.Obligation, e.Msg)
}

// Verifier proves slice.Static values replay-safe over one code image. The
// underlying analyses (CFG, dominance, reaching definitions) are computed
// once and shared across Verify calls, so verifying every store of a
// program costs one analysis plus cheap per-slice checks.
type Verifier struct {
	g     *CFG
	dom   *Dominators
	rd    *ReachingDefs
	reach [][]bool // lazily built per-block forward reachability
}

// NewVerifier builds a verifier for the code image. entry is the PC
// execution starts at (0 for slicing windows).
func NewVerifier(code []isa.Instr, entry int) (*Verifier, error) {
	g, err := BuildCFG(code, entry)
	if err != nil {
		return nil, err
	}
	return &Verifier{
		g:     g,
		dom:   NewDominators(g),
		rd:    NewReachingDefs(g),
		reach: make([][]bool, len(g.Blocks)),
	}, nil
}

// VerifyStatic is the one-shot convenience: build a Verifier over code and
// verify s. Use a shared Verifier to check many slices of one program.
func VerifyStatic(code []isa.Instr, s *slice.Static) error {
	v, err := NewVerifier(code, 0)
	if err != nil {
		return err
	}
	return v.Verify(s)
}

// Verify proves s replay-safe, or returns an *UnsoundSliceError describing
// the first violated proof obligation.
func (v *Verifier) Verify(s *slice.Static) error {
	code := v.g.Code
	fail := func(pc int, obligation, format string, args ...any) error {
		return &UnsoundSliceError{StoreIdx: s.StoreIdx, PC: pc, Obligation: obligation, Msg: fmt.Sprintf(format, args...)}
	}

	// Structural validation of the member/input index sets.
	if s.StoreIdx < 0 || s.StoreIdx >= len(code) {
		return fail(s.StoreIdx, "structure", "store index outside code [0,%d)", len(code))
	}
	st := code[s.StoreIdx]
	if st.Op != isa.ST {
		return fail(s.StoreIdx, "structure", "instruction %v is not a store", st)
	}
	member := make(map[int]bool, len(s.Members))
	input := make(map[int]bool, len(s.InputLoads))
	for _, m := range s.Members {
		if m < 0 || m >= s.StoreIdx {
			return fail(m, "structure", "member index %d is not before the store at pc %d", m, s.StoreIdx)
		}
		if !code[m].Op.IsALU() {
			return fail(m, "purity", "member %v is not a pure ALU/FPU instruction", code[m])
		}
		member[m] = true
	}
	for _, l := range s.InputLoads {
		if l < 0 || l >= s.StoreIdx {
			return fail(l, "structure", "input load index %d is not before the store at pc %d", l, s.StoreIdx)
		}
		if code[l].Op != isa.LD {
			return fail(l, "structure", "input %v is not a load", code[l])
		}
		if member[l] {
			return fail(l, "structure", "pc %d listed as both member and input load", l)
		}
		input[l] = true
	}
	liveIn := make(map[isa.Reg]bool, len(s.LiveIn))
	for _, r := range s.LiveIn {
		liveIn[r] = true
	}

	// Obligation 2: members and input loads dominate the store.
	sb := v.g.BlockOf(s.StoreIdx)
	inSlice := make([]int, 0, len(member)+len(input))
	for m := range member {
		inSlice = append(inSlice, m)
	}
	for l := range input {
		inSlice = append(inSlice, l)
	}
	sort.Ints(inSlice)
	for _, pc := range inSlice {
		mb := v.g.BlockOf(pc)
		if mb != sb && !v.dom.Dominates(mb, sb) {
			return fail(pc, "dominance",
				"slice instruction at pc %d (block %d) does not dominate the store at pc %d (block %d): on some path to the store it never executes",
				pc, mb, s.StoreIdx, sb)
		}
	}

	// Obligation 3: operand closure under reaching definitions.
	checkUses := func(pc int, regs []isa.Reg) error {
		for _, r := range regs {
			if r == 0 {
				continue
			}
			for _, d := range v.rd.DefsAt(pc, r) {
				switch {
				case d == EntryDef:
					if !liveIn[r] {
						return fail(pc, "closure",
							"operand %v of %v at pc %d may hold its program-entry value, but %v is not captured as a live-in input",
							r, code[pc], pc, r)
					}
				case !member[d] && !input[d]:
					return fail(pc, "closure",
						"operand %v of %v at pc %d is defined by non-slice instruction at pc %d (%v); the slice is not closed over its producers",
						r, code[pc], pc, d, code[d])
				}
			}
		}
		return nil
	}
	var srcs []isa.Reg
	for _, m := range s.Members {
		srcs = code[m].SrcRegs(srcs[:0])
		if err := checkUses(m, srcs); err != nil {
			return err
		}
	}
	if err := checkUses(s.StoreIdx, []isa.Reg{st.Rt}); err != nil {
		return err
	}

	// Obligation 4: address determinism for the input loads and the store.
	addrDef := make(map[int]int, len(input)+1)
	addrSites := append(append([]int(nil), s.InputLoads...), s.StoreIdx)
	for _, pc := range addrSites {
		base := code[pc].Rs
		if base == 0 {
			addrDef[pc] = EntryDef
			continue
		}
		defs := v.rd.DefsAt(pc, base)
		if len(defs) != 1 {
			return fail(pc, "address-determinism",
				"address base %v of %v at pc %d has %d reaching definitions (pcs %v); the effective address is control-flow dependent",
				base, code[pc], pc, len(defs), defs)
		}
		addrDef[pc] = defs[0]
	}

	// Obligation 5: no store on a path between an input load and the
	// sliced store may alias the load's address.
	for _, l := range s.InputLoads {
		for pc, in := range code {
			if in.Op != isa.ST || pc == s.StoreIdx {
				continue
			}
			if !v.onPath(l, pc) || !v.onPath(pc, s.StoreIdx) {
				continue
			}
			switch v.alias(code, addrDef, l, pc) {
			case aliasMust:
				return fail(pc, "no-clobber",
					"store %v at pc %d overwrites the address of buffered input load %v at pc %d before the sliced store; the captured input would be stale at replay",
					in, pc, code[l], l)
			case aliasMay:
				return fail(pc, "no-clobber",
					"store %v at pc %d cannot be proven distinct from buffered input load %v at pc %d",
					in, pc, code[l], l)
			}
		}
	}
	return nil
}

type aliasKind uint8

const (
	aliasNo aliasKind = iota
	aliasMay
	aliasMust
)

// alias classifies whether the store at stPC may write the word read by the
// load at ldPC. Addresses are base+imm; two sites compare when their base
// registers carry the same unique reaching definition (same producer, hence
// same value), in which case equal immediates must alias and distinct
// immediates cannot.
func (v *Verifier) alias(code []isa.Instr, addrDef map[int]int, ldPC, stPC int) aliasKind {
	ld, st := code[ldPC], code[stPC]
	stDefs := v.rd.DefsAt(stPC, st.Rs)
	sameBase := false
	if ld.Rs == 0 && st.Rs == 0 {
		sameBase = true
	} else if ld.Rs == st.Rs && len(stDefs) == 1 && stDefs[0] == addrDef[ldPC] {
		sameBase = true
	}
	if sameBase {
		if ld.Imm == st.Imm {
			return aliasMust
		}
		return aliasNo
	}
	return aliasMay
}

// onPath reports whether execution can pass through pc b after passing
// through pc a (a strictly before b on some path).
func (v *Verifier) onPath(a, b int) bool {
	ba, bb := v.g.BlockOf(a), v.g.BlockOf(b)
	if ba == bb && a < b {
		return true
	}
	if v.reach[ba] == nil {
		v.reach[ba] = v.g.reachableFrom(ba)
	}
	return v.reach[ba][bb]
}
