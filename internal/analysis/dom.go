package analysis

// Dominators holds the dominator tree of a CFG, computed with the
// Cooper–Harvey–Kennedy iterative algorithm over reverse postorder. Block a
// dominates block b when every path from the entry to b passes through a —
// the property the Slice verifier needs: a slice member that dominates the
// sliced store is guaranteed to have executed whenever the store executes.
type Dominators struct {
	g *CFG
	// Idom is the immediate dominator per block ID; the entry is its own
	// idom and unreachable blocks hold -1.
	Idom []int
	// rpoNum orders blocks by reverse postorder for the intersect walk.
	rpoNum []int
}

// NewDominators computes the dominator tree of g.
func NewDominators(g *CFG) *Dominators {
	d := &Dominators{g: g, Idom: make([]int, len(g.Blocks)), rpoNum: make([]int, len(g.Blocks))}
	for i := range d.Idom {
		d.Idom[i] = -1
		d.rpoNum[i] = -1
	}
	rpo := g.ReversePostorder()
	for i, id := range rpo {
		d.rpoNum[id] = i
	}
	d.Idom[g.Entry] = g.Entry
	for changed := true; changed; {
		changed = false
		for _, id := range rpo {
			if id == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[id].Preds {
				if d.Idom[p] == -1 {
					continue // pred not yet processed or unreachable
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && d.Idom[id] != newIdom {
				d.Idom[id] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *Dominators) intersect(a, b int) int {
	for a != b {
		for d.rpoNum[a] > d.rpoNum[b] {
			a = d.Idom[a]
		}
		for d.rpoNum[b] > d.rpoNum[a] {
			b = d.Idom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (every block
// dominates itself). Unreachable blocks dominate nothing and are dominated
// by nothing.
func (d *Dominators) Dominates(a, b int) bool {
	if d.Idom[a] == -1 || d.Idom[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == d.g.Entry {
			return false
		}
		b = d.Idom[b]
	}
}
