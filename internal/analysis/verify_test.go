package analysis

import (
	"errors"
	"strings"
	"testing"

	"acr/internal/isa"
	"acr/internal/slice"
)

// fig3 is a straight-line window in the shape of the paper's Fig. 3: two
// loads feed a pure arithmetic chain whose result is stored back.
//
//	0 li   r1, 8
//	1 ld   r2, 0(r1)     [I]
//	2 ld   r3, 1(r1)     [I]
//	3 add  r4, r2, r3    [S]
//	4 muli r5, r4, 2     [S]
//	5 st   r5, 2(r1)     [ST]
//	6 halt
func fig3() []isa.Instr {
	return []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 8},
		{Op: isa.LD, Rd: 2, Rs: 1, Imm: 0},
		{Op: isa.LD, Rd: 3, Rs: 1, Imm: 1},
		{Op: isa.ADD, Rd: 4, Rs: 2, Rt: 3},
		{Op: isa.MULI, Rd: 5, Rs: 4, Imm: 2},
		{Op: isa.ST, Rt: 5, Rs: 1, Imm: 2},
		{Op: isa.HALT},
	}
}

// wantUnsound asserts err is an *UnsoundSliceError violating the named
// obligation at the given pc.
func wantUnsound(t *testing.T, err error, obligation string, pc int) {
	t.Helper()
	if err == nil {
		t.Fatalf("want %s violation at pc %d, slice verified as sound", obligation, pc)
	}
	var u *UnsoundSliceError
	if !errors.As(err, &u) {
		t.Fatalf("err = %v (%T), want *UnsoundSliceError", err, err)
	}
	if u.Obligation != obligation || u.PC != pc {
		t.Fatalf("violation = %s at pc %d (%s), want %s at pc %d", u.Obligation, u.PC, u.Msg, obligation, pc)
	}
	if u.Msg == "" || !strings.Contains(err.Error(), "not replay-safe") {
		t.Fatalf("diagnostic %q lacks the replay-safety framing", err.Error())
	}
}

func TestVerifySoundFig3Slice(t *testing.T) {
	code := fig3()
	s, err := slice.Backward(code, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Members) != 2 || len(s.InputLoads) != 2 {
		t.Fatalf("Backward produced %+v, want 2 members and 2 input loads", s)
	}
	if err := VerifyStatic(code, s); err != nil {
		t.Fatalf("the Fig. 3 slice is replay-safe, got: %v", err)
	}
}

func TestVerifyRejectsBrokenClosure(t *testing.T) {
	code := fig3()
	// Drop the muli from the members: the stored value's producer is now
	// outside the slice.
	s := &slice.Static{StoreIdx: 5, Members: []int{3}, InputLoads: []int{1, 2}}
	wantUnsound(t, VerifyStatic(code, s), "closure", 5)
}

func TestVerifyRejectsMissingLiveIn(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.ADD, Rd: 4, Rs: 9, Rt: 9}, // r9 holds its entry value
		{Op: isa.ST, Rt: 4, Rs: 1, Imm: 0},
		{Op: isa.HALT},
	}
	sound := &slice.Static{StoreIdx: 1, Members: []int{0}, LiveIn: []isa.Reg{9}}
	if err := VerifyStatic(code, sound); err != nil {
		t.Fatalf("slice with r9 captured as live-in is sound, got: %v", err)
	}
	unsound := &slice.Static{StoreIdx: 1, Members: []int{0}}
	wantUnsound(t, VerifyStatic(code, unsound), "closure", 0)
}

func TestVerifyRejectsClobberedInput(t *testing.T) {
	// A store between the buffered input load and the sliced store
	// overwrites the very word the load captured.
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 8},
		{Op: isa.LI, Rd: 9, Imm: 7},
		{Op: isa.LD, Rd: 2, Rs: 1, Imm: 0},
		{Op: isa.ADD, Rd: 4, Rs: 2, Rt: 2},
		{Op: isa.ST, Rt: 9, Rs: 1, Imm: 0}, // clobbers word 8
		{Op: isa.ST, Rt: 4, Rs: 1, Imm: 2},
		{Op: isa.HALT},
	}
	s, err := slice.Backward(code, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantUnsound(t, VerifyStatic(code, s), "no-clobber", 4)

	// The same store one word over is provably distinct: sound.
	code[4].Imm = 1
	if err := VerifyStatic(code, s); err != nil {
		t.Fatalf("store to a provably distinct word is harmless, got: %v", err)
	}

	// A store through an unrelated base register cannot be disambiguated:
	// may-alias also rejects.
	code[4] = isa.Instr{Op: isa.ST, Rt: 9, Rs: 9, Imm: 0}
	wantUnsound(t, VerifyStatic(code, s), "no-clobber", 4)
}

func TestVerifyRejectsNonDominatingMember(t *testing.T) {
	// The load and add sit in a conditional arm the store does not require.
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 8},
		{Op: isa.BEQ, Rs: 1, Rt: 0, Imm: 4},
		{Op: isa.LD, Rd: 2, Rs: 1, Imm: 0},
		{Op: isa.ADDI, Rd: 4, Rs: 2, Imm: 1},
		{Op: isa.ST, Rt: 4, Rs: 1, Imm: 2},
		{Op: isa.HALT},
	}
	s := &slice.Static{StoreIdx: 4, Members: []int{3}, InputLoads: []int{2}}
	wantUnsound(t, VerifyStatic(code, s), "dominance", 2)
}

func TestVerifyRejectsControlFlowDependentAddress(t *testing.T) {
	// The load's base register is written on two paths: the captured
	// address is control-flow dependent.
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 8},
		{Op: isa.BEQ, Rs: 1, Rt: 0, Imm: 3},
		{Op: isa.LI, Rd: 1, Imm: 16},
		{Op: isa.LD, Rd: 2, Rs: 1, Imm: 0},
		{Op: isa.ADDI, Rd: 4, Rs: 2, Imm: 1},
		{Op: isa.ST, Rt: 4, Rs: 1, Imm: 1},
		{Op: isa.HALT},
	}
	s := &slice.Static{StoreIdx: 5, Members: []int{4}, InputLoads: []int{3}}
	wantUnsound(t, VerifyStatic(code, s), "address-determinism", 3)
}

func TestVerifyRejectsImpureMember(t *testing.T) {
	code := fig3()
	// A load listed as a member violates purity.
	s := &slice.Static{StoreIdx: 5, Members: []int{1, 3, 4}, InputLoads: []int{2}}
	wantUnsound(t, VerifyStatic(code, s), "purity", 1)
}

func TestVerifyRejectsBadStructure(t *testing.T) {
	code := fig3()
	for _, s := range []*slice.Static{
		{StoreIdx: 99},                      // store outside code
		{StoreIdx: 3},                       // not a store
		{StoreIdx: 5, Members: []int{6}},    // member after store
		{StoreIdx: 5, InputLoads: []int{3}}, // input is not a load
		{StoreIdx: 5, Members: []int{3}, InputLoads: []int{3}}, // overlap
	} {
		err := VerifyStatic(code, s)
		var u *UnsoundSliceError
		if !errors.As(err, &u) {
			t.Fatalf("Static %+v must be rejected with a diagnostic, got %v", s, err)
		}
	}
}

// TestVerifierReuse checks that one Verifier instance proves many slices of
// the same program, the cmd/acrlint usage pattern.
func TestVerifierReuse(t *testing.T) {
	code := fig3()
	v, err := NewVerifier(code, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := slice.Backward(code, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := v.Verify(s); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
}
