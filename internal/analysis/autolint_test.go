package analysis

import (
	"strings"
	"testing"

	"acr/internal/isa"
)

func TestAutoPlanDiagsSites(t *testing.T) {
	code := autoKernel()
	diags, err := AutoPlanDiags(code, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	pruned, boosted := 0, 0
	for _, d := range diags {
		if d.Pass != "auto-plan" {
			t.Errorf("unexpected pass %q: %s", d.Pass, d)
		}
		if d.Severity != SevInfo {
			t.Errorf("auto-plan diag is %v, want info: %s", d.Severity, d)
		}
		if code[d.PC].Op != isa.ASSOCADDR {
			t.Errorf("diag anchored off-site at pc %d (%v)", d.PC, code[d.PC])
		}
		switch {
		case strings.Contains(d.Msg, "pruned"):
			pruned++
		case strings.Contains(d.Msg, "boosted"):
			boosted++
		default:
			t.Errorf("unclassifiable auto-plan diag: %s", d)
		}
	}
	// autoKernel at threshold 3: one boosted site, two pruned sites, one
	// defaulted site that must stay silent.
	if pruned != 2 || boosted != 1 {
		t.Errorf("got %d pruned + %d boosted diags, want 2 + 1:\n%v", pruned, boosted, diags)
	}
}

func TestAutoPlanDiagsBarriers(t *testing.T) {
	// The first barrier dominates the store below it (same straight-line
	// block) and must stay silent; the final barrier dominates no store and
	// is surfaced as a synchronisation-only boundary.
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 8},
		{Op: isa.BARRIER},
		{Op: isa.ST, Rt: 1, Rs: 1, Imm: 0},
		{Op: isa.BARRIER},
		{Op: isa.HALT},
	}
	diags, err := AutoPlanDiags(code, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diags, want 1:\n%v", len(diags), diags)
	}
	d := diags[0]
	if d.PC != 3 || d.Severity != SevInfo || !strings.Contains(d.Msg, "barrier dominates no store") {
		t.Errorf("unexpected barrier diag: %s", d)
	}
}

func TestSeverityStrings(t *testing.T) {
	for sev, want := range map[Severity]string{
		SevWarn: "warning", SevError: "error", SevInfo: "info",
	} {
		if got := sev.String(); got != want {
			t.Errorf("Severity(%d).String() = %q, want %q", sev, got, want)
		}
	}
}
