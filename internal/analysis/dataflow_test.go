package analysis

import (
	"sort"
	"testing"

	"acr/internal/isa"
)

func TestReachingDefsDiamond(t *testing.T) {
	g, err := BuildCFG(diamond(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rd := NewReachingDefs(g)

	// At the join (pc 5), r2 may come from either arm.
	defs := rd.DefsAt(5, 2)
	sort.Ints(defs)
	if len(defs) != 2 || defs[0] != 2 || defs[1] != 4 {
		t.Errorf("defs of r2 at pc 5 = %v, want [2 4]", defs)
	}
	// r1 has the single def at pc 0.
	if defs := rd.DefsAt(5, 1); len(defs) != 1 || defs[0] != 0 {
		t.Errorf("defs of r1 at pc 5 = %v, want [0]", defs)
	}
	// A never-written register reaches only the entry pseudo-def.
	if defs := rd.DefsAt(5, 9); len(defs) != 1 || defs[0] != EntryDef {
		t.Errorf("defs of r9 at pc 5 = %v, want [EntryDef]", defs)
	}
	// Before pc 0 executes, r1 still holds its entry value.
	if defs := rd.DefsAt(0, 1); len(defs) != 1 || defs[0] != EntryDef {
		t.Errorf("defs of r1 at pc 0 = %v, want [EntryDef]", defs)
	}
	// r0 has no definitions by construction.
	if defs := rd.DefsAt(5, 0); defs != nil {
		t.Errorf("defs of r0 = %v, want nil", defs)
	}
}

func TestReachingDefsLoopCarried(t *testing.T) {
	// 0 li r1,0 ; 1 li r2,10 ; 2 bge r1,r2 -> 5 ; 3 addi r1,r1,1 ;
	// 4 jmp 2 ; 5 halt
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 0},
		{Op: isa.LI, Rd: 2, Imm: 10},
		{Op: isa.BGE, Rs: 1, Rt: 2, Imm: 5},
		{Op: isa.ADDI, Rd: 1, Rs: 1, Imm: 1},
		{Op: isa.JMP, Imm: 2},
		{Op: isa.HALT},
	}
	g, err := BuildCFG(code, 0)
	if err != nil {
		t.Fatal(err)
	}
	rd := NewReachingDefs(g)
	// At the loop head (pc 2), r1 comes from the init or the back edge.
	defs := rd.DefsAt(2, 1)
	sort.Ints(defs)
	if len(defs) != 2 || defs[0] != 0 || defs[1] != 3 {
		t.Errorf("defs of r1 at loop head = %v, want [0 3]", defs)
	}
}

func TestLiveness(t *testing.T) {
	g, err := BuildCFG(diamond(), 0)
	if err != nil {
		t.Fatal(err)
	}
	lv := NewLiveness(g)

	// After pc 0 (li r1), r1 is live (branch + join read it).
	if lv.LiveOutAt(0)&(1<<1) == 0 {
		t.Error("r1 must be live after its definition at pc 0")
	}
	// r2 is live out of both arms.
	if lv.LiveOutAt(2)&(1<<2) == 0 || lv.LiveOutAt(4)&(1<<2) == 0 {
		t.Error("r2 must be live out of both diamond arms")
	}
	// After the join add (pc 5), nothing is read anymore.
	if out := lv.LiveOutAt(5); out != 0 {
		t.Errorf("live-out at pc 5 = %#x, want 0", out)
	}
	// Block-level: r1 and r2 live into the join block.
	join := g.BlockOf(5)
	if lv.LiveIn[join]&(1<<1) == 0 || lv.LiveIn[join]&(1<<2) == 0 {
		t.Errorf("join live-in = %#x, want r1 and r2", lv.LiveIn[join])
	}
}

func TestLivenessLoopKeepsCounterLive(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 0},
		{Op: isa.LI, Rd: 2, Imm: 10},
		{Op: isa.BGE, Rs: 1, Rt: 2, Imm: 5},
		{Op: isa.ADDI, Rd: 1, Rs: 1, Imm: 1},
		{Op: isa.JMP, Imm: 2},
		{Op: isa.HALT},
	}
	g, err := BuildCFG(code, 0)
	if err != nil {
		t.Fatal(err)
	}
	lv := NewLiveness(g)
	// The increment feeds the back edge: r1 live after pc 3.
	if lv.LiveOutAt(3)&(1<<1) == 0 {
		t.Error("loop counter must stay live across the back edge")
	}
	if lv.LiveOutAt(3)&(1<<2) == 0 {
		t.Error("loop bound must stay live across the back edge")
	}
}
