package analysis

import (
	"strings"
	"testing"

	"acr/internal/isa"
	"acr/internal/prog"
)

// lintFind returns the diagnostics of the given pass.
func lintFind(t *testing.T, code []isa.Instr, dataWords int, pass string) []Diag {
	t.Helper()
	diags, err := LintCode(code, 0, dataWords)
	if err != nil {
		t.Fatal(err)
	}
	var out []Diag
	for _, d := range diags {
		if d.Pass == pass {
			out = append(out, d)
		}
	}
	return out
}

func TestLintUnreachable(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.JMP, Imm: 2},
		{Op: isa.LI, Rd: 1, Imm: 1}, // dead block
		{Op: isa.HALT},
	}
	got := lintFind(t, code, 0, "unreachable")
	if len(got) != 1 || got[0].PC != 1 {
		t.Fatalf("unreachable diags = %v, want one at pc 1", got)
	}
}

func TestLintUninitRead(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.ADD, Rd: 3, Rs: 4, Rt: 5}, // r4, r5 never written
		{Op: isa.HALT},
	}
	got := lintFind(t, code, 0, "uninit-read")
	if len(got) != 2 || got[0].PC != 0 {
		t.Fatalf("uninit-read diags = %v, want two at pc 0 (r4 and r5)", got)
	}
	// Reads of r0 and the loader-preset registers are exempt, and a
	// register written on *some* path is not definitely-uninitialised.
	clean := []isa.Instr{
		{Op: isa.BEQ, Rs: prog.RegTID, Rt: 0, Imm: 2},
		{Op: isa.LI, Rd: 1, Imm: 7},
		{Op: isa.ADDI, Rd: 2, Rs: 1, Imm: 1}, // r1 maybe-uninit: not flagged
		{Op: isa.MOV, Rd: 3, Rs: 0},
		{Op: isa.HALT},
	}
	if got := lintFind(t, clean, 0, "uninit-read"); len(got) != 0 {
		t.Fatalf("maybe-initialised reads must not be flagged, got %v", got)
	}
}

func TestLintDeadStore(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 5},        // dead: overwritten before read
		{Op: isa.LI, Rd: 1, Imm: 6},        // live: stored below
		{Op: isa.ST, Rs: 0, Rt: 1, Imm: 0}, // mem[0] <- r1
		{Op: isa.HALT},
	}
	got := lintFind(t, code, 8, "dead-store")
	if len(got) != 1 || got[0].PC != 0 {
		t.Fatalf("dead-store diags = %v, want exactly pc 0", got)
	}
	// Loads with unused results model traffic and are exempt.
	traffic := []isa.Instr{
		{Op: isa.LD, Rd: 2, Rs: 0, Imm: 0},
		{Op: isa.HALT},
	}
	if got := lintFind(t, traffic, 8, "dead-store"); len(got) != 0 {
		t.Fatalf("unused load results must not be flagged, got %v", got)
	}
}

func TestLintWriteR0(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.LI, Rd: 0, Imm: 5},
		{Op: isa.HALT},
	}
	got := lintFind(t, code, 0, "write-r0")
	if len(got) != 1 || got[0].PC != 0 {
		t.Fatalf("write-r0 diags = %v, want one at pc 0", got)
	}
}

func TestLintOutOfSegment(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 100},
		{Op: isa.LD, Rd: 2, Rs: 1, Imm: 0},  // word 100, segment is 8
		{Op: isa.ST, Rs: 0, Rt: 2, Imm: -1}, // word -1
		{Op: isa.ST, Rs: 0, Rt: 2, Imm: 3},  // in range
		{Op: isa.HALT},
	}
	got := lintFind(t, code, 8, "oob-mem")
	if len(got) != 2 || got[0].PC != 1 || got[1].PC != 2 {
		t.Fatalf("oob-mem diags = %v, want pcs 1 and 2", got)
	}
	// Unknown (thread-dependent) bases are never flagged.
	nac := []isa.Instr{
		{Op: isa.MULI, Rd: 1, Rs: prog.RegTID, Imm: 1 << 40},
		{Op: isa.LD, Rd: 2, Rs: 1, Imm: 0},
		{Op: isa.HALT},
	}
	if got := lintFind(t, nac, 8, "oob-mem"); len(got) != 0 {
		t.Fatalf("NAC addresses must not be flagged, got %v", got)
	}
}

func TestLintFallOffEnd(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.ADD, Rd: 1, Rs: 0, Rt: 0},
	}
	got := lintFind(t, code, 0, "fall-off-end")
	if len(got) != 1 {
		t.Fatalf("fall-off-end diags = %v, want one", got)
	}
}

func TestLintInfiniteLoop(t *testing.T) {
	spin := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 0},
		{Op: isa.JMP, Imm: 1}, // self-loop, no exit, no barrier
	}
	got := lintFind(t, spin, 0, "infinite-loop")
	if len(got) != 1 {
		t.Fatalf("infinite-loop diags = %v, want one", got)
	}
	// The same loop with a barrier is a synchronisation pattern, exempt.
	sync := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 0},
		{Op: isa.BARRIER},
		{Op: isa.JMP, Imm: 1},
	}
	if got := lintFind(t, sync, 0, "infinite-loop"); len(got) != 0 {
		t.Fatalf("barrier loops must not be flagged, got %v", got)
	}
	// A loop with an exit edge terminates.
	counted := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 0},
		{Op: isa.BGE, Rs: 1, Rt: 2, Imm: 4},
		{Op: isa.ADDI, Rd: 1, Rs: 1, Imm: 1},
		{Op: isa.JMP, Imm: 1},
		{Op: isa.HALT},
	}
	if got := lintFind(t, counted, 0, "infinite-loop"); len(got) != 0 {
		t.Fatalf("counted loops must not be flagged, got %v", got)
	}
}

func TestLintRejectsBadBranch(t *testing.T) {
	code := []isa.Instr{{Op: isa.JMP, Imm: 7}}
	if _, err := LintCode(code, 0, 0); err == nil {
		t.Fatal("lint must refuse code whose CFG cannot be built")
	}
}

// TestLintBuilderProgram exercises the prog.Program entry point on a
// well-formed builder program, which must lint clean.
func TestLintBuilderProgram(t *testing.T) {
	b := prog.New("clean")
	base := b.Data(16)
	b.Li(1, base)
	b.LoopConst(2, 3, 8, func() {
		b.Op3(isa.ADD, 4, 1, 2)
		b.Ld(5, 4, 0)
		b.OpI(isa.ADDI, 5, 5, 1)
		b.St(5, 4, 0)
	})
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Lint(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String() + "\n")
		}
		t.Fatalf("clean program produced diagnostics:\n%s", sb.String())
	}
}
