package analysis

import (
	"math/bits"

	"acr/internal/isa"
)

// This file implements the two classic bit-vector dataflow analyses the
// lint passes and the Slice verifier are built on. Both run the standard
// iterative worklist fixpoint over basic blocks and answer per-instruction
// queries by replaying the block-local transfer function from the block
// boundary — blocks are short, so queries stay cheap without a per-pc
// materialisation.
//
// Register r0 is hardwired to zero and is excluded from both analyses: it
// has no definitions (writes are discarded) and reading it needs none.

// EntryDef is the pseudo-definition PC reported by ReachingDefs for a
// register that may still hold its program-entry value (architecturally
// zero, or the loader-preset thread id / thread count).
const EntryDef = -1

// ReachingDefs is the reaching-definitions analysis: for every use point it
// reports which instructions may have produced the current value of a
// register. The definition universe is every instruction that writes a
// non-r0 register, plus one entry pseudo-definition per register.
type ReachingDefs struct {
	g     *CFG
	words int
	// defPC maps def ID -> defining pc (EntryDef for entry pseudo-defs).
	defPC []int
	// kill[reg] is the bitset of all def IDs of reg.
	kill [isa.NumRegs][]uint64
	// entryID[reg] is the def ID of reg's entry pseudo-definition.
	entryID [isa.NumRegs]int
	// defID[pc] is the def ID of the instruction at pc, or -1.
	defID []int
	// in[block] is the bitset of defs reaching the block entry.
	in [][]uint64
}

// NewReachingDefs runs the analysis over g.
func NewReachingDefs(g *CFG) *ReachingDefs {
	rd := &ReachingDefs{g: g, defID: make([]int, len(g.Code))}
	for pc, in := range g.Code {
		rd.defID[pc] = -1
		if r, ok := in.DstReg(); ok && r != 0 {
			rd.defID[pc] = len(rd.defPC)
			rd.defPC = append(rd.defPC, pc)
		}
	}
	for r := 1; r < isa.NumRegs; r++ {
		rd.entryID[r] = len(rd.defPC)
		rd.defPC = append(rd.defPC, EntryDef)
	}
	nDefs := len(rd.defPC)
	rd.words = (nDefs + 63) / 64
	for pc, id := range rd.defID {
		if id < 0 {
			continue
		}
		r, _ := g.Code[pc].DstReg()
		if rd.kill[r] == nil {
			rd.kill[r] = make([]uint64, rd.words)
		}
		setBit(rd.kill[r], id)
	}
	for r := 1; r < isa.NumRegs; r++ {
		if rd.kill[r] == nil {
			rd.kill[r] = make([]uint64, rd.words)
		}
		setBit(rd.kill[r], rd.entryID[r])
	}

	rd.in = make([][]uint64, len(g.Blocks))
	for i := range rd.in {
		rd.in[i] = make([]uint64, rd.words)
	}
	for r := 1; r < isa.NumRegs; r++ {
		setBit(rd.in[g.Entry], rd.entryID[r])
	}

	// Forward union fixpoint over reverse postorder.
	rpo := g.ReversePostorder()
	out := make([]uint64, rd.words)
	for changed := true; changed; {
		changed = false
		for _, id := range rpo {
			copy(out, rd.in[id])
			rd.transferRange(out, g.Blocks[id].Start, g.Blocks[id].End)
			for _, s := range g.Blocks[id].Succs {
				if unionInto(rd.in[s], out) {
					changed = true
				}
			}
		}
	}
	return rd
}

// transferRange applies the kill/gen transfer of instructions [from, to).
func (rd *ReachingDefs) transferRange(set []uint64, from, to int) {
	for pc := from; pc < to; pc++ {
		id := rd.defID[pc]
		if id < 0 {
			continue
		}
		r, _ := rd.g.Code[pc].DstReg()
		for w := range set {
			set[w] &^= rd.kill[r][w]
		}
		setBit(set, id)
	}
}

// DefsAt returns the PCs of the definitions of reg that may reach the
// instruction at pc (before it executes). EntryDef (-1) denotes the entry
// pseudo-definition. Queries on r0 return nil: the zero register has no
// definitions.
func (rd *ReachingDefs) DefsAt(pc int, reg isa.Reg) []int {
	if reg == 0 {
		return nil
	}
	b := rd.g.Blocks[rd.g.BlockOf(pc)]
	set := make([]uint64, rd.words)
	copy(set, rd.in[b.ID])
	rd.transferRange(set, b.Start, pc)
	var defs []int
	for w, word := range set {
		word &= rd.kill[reg][w]
		for word != 0 {
			i := bits.TrailingZeros64(word)
			defs = append(defs, rd.defPC[w*64+i])
			word &= word - 1
		}
	}
	return defs
}

// Liveness is the backward register-liveness analysis. Live sets are 32-bit
// masks indexed by register number; r0 is never live.
type Liveness struct {
	g *CFG
	// LiveIn and LiveOut are per-block register masks.
	LiveIn, LiveOut []uint32
}

// NewLiveness runs the analysis over g.
func NewLiveness(g *CFG) *Liveness {
	lv := &Liveness{
		g:       g,
		LiveIn:  make([]uint32, len(g.Blocks)),
		LiveOut: make([]uint32, len(g.Blocks)),
	}
	// Backward union fixpoint (postorder = reversed RPO works well).
	rpo := g.ReversePostorder()
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			id := rpo[i]
			b := g.Blocks[id]
			out := uint32(0)
			for _, s := range b.Succs {
				out |= lv.LiveIn[s]
			}
			in := lv.transferBackward(out, b.Start, b.End)
			if out != lv.LiveOut[id] || in != lv.LiveIn[id] {
				lv.LiveOut[id] = out
				lv.LiveIn[id] = in
				changed = true
			}
		}
	}
	return lv
}

// transferBackward applies instructions [from, to) in reverse to the live
// set live (which is the set live after pc to-1).
func (lv *Liveness) transferBackward(live uint32, from, to int) uint32 {
	var srcs []isa.Reg
	for pc := to - 1; pc >= from; pc-- {
		in := lv.g.Code[pc]
		if r, ok := in.DstReg(); ok && r != 0 {
			live &^= 1 << r
		}
		srcs = in.SrcRegs(srcs[:0])
		for _, r := range srcs {
			if r != 0 {
				live |= 1 << r
			}
		}
	}
	return live
}

// LiveOutAt returns the registers live immediately after the instruction at
// pc (bit r set = register r live).
func (lv *Liveness) LiveOutAt(pc int) uint32 {
	b := lv.g.Blocks[lv.g.BlockOf(pc)]
	live := lv.LiveOut[b.ID]
	return lv.transferBackward(live, pc+1, b.End)
}

func setBit(set []uint64, i int) { set[i/64] |= 1 << (i % 64) }

func unionInto(dst, src []uint64) (changed bool) {
	for w := range dst {
		if n := dst[w] | src[w]; n != dst[w] {
			dst[w] = n
			changed = true
		}
	}
	return changed
}
