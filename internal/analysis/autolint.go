package analysis

import (
	"fmt"
	"sort"

	"acr/internal/isa"
)

// AutoPlanDiags surfaces the auto checkpoint strategy's static site plan
// (PlanCheckpointSites) as info-level lint diagnostics, so the decisions
// the runtime will silently act on are reviewable next to the ordinary
// lint findings: every pruned ASSOC-ADDR site (predicted-rejected compiles
// dropped before the AddrMap), every boosted site (length cap raised for a
// dead, replay-safe value), and every barrier that dominates no store —
// a checkpoint boundary whose interval can never log or omit a value.
//
// All findings are SevInfo: the plan is a cost policy, never a soundness
// question, so acrlint reports them without gating on them.
func AutoPlanDiags(code []isa.Instr, entry, threshold int) ([]Diag, error) {
	plan, err := PlanCheckpointSites(code, entry, threshold)
	if err != nil {
		return nil, err
	}
	g, err := BuildCFG(code, entry)
	if err != nil {
		return nil, err
	}
	reach := g.Reachable()
	var diags []Diag
	for pc, in := range code {
		if in.Op != isa.ASSOCADDR {
			continue
		}
		switch siteCap := plan.SiteCaps[pc]; {
		case siteCap < 0:
			diags = append(diags, Diag{
				Pass: "auto-plan", PC: pc, Block: g.BlockOf(pc), Severity: SevInfo,
				Msg: "assoc-addr site is pruned: every runtime compile here is predicted rejected work, so the association is dropped and the store logged conventionally",
			})
		case siteCap > 0:
			diags = append(diags, Diag{
				Pass: "auto-plan", PC: pc, Block: g.BlockOf(pc), Severity: SevInfo,
				Msg: fmt.Sprintf("assoc-addr site is boosted: the stored value is dead after the store and its slice is proven replay-safe, so the site's length cap is raised to %d", siteCap),
			})
		}
	}
	diags = append(diags, lintBarrierNoStores(g, reach)...)
	sort.Slice(diags, func(i, j int) bool { return diags[i].PC < diags[j].PC })
	return diags, nil
}

// lintBarrierNoStores flags reachable barriers that dominate no store.
// Checkpoints are established at barrier boundaries, so a barrier no store
// can follow opens an interval in which the logging machinery can never
// fire: a synchronisation-only boundary, worth knowing about when reading
// checkpoint-volume results. The check is block-precise: a store later in
// the barrier's own straight-line block counts as dominated.
func lintBarrierNoStores(g *CFG, reach []bool) []Diag {
	dom := NewDominators(g)
	var stores []int
	for _, b := range g.Blocks {
		if !reach[b.ID] {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			if g.Code[pc].Op == isa.ST {
				stores = append(stores, pc)
			}
		}
	}
	var diags []Diag
	for _, b := range g.Blocks {
		if !reach[b.ID] {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			if g.Code[pc].Op != isa.BARRIER {
				continue
			}
			dominated := false
			for _, st := range stores {
				if sb := g.BlockOf(st); sb == b.ID {
					if st > pc {
						dominated = true
						break
					}
				} else if dom.Dominates(b.ID, sb) {
					dominated = true
					break
				}
			}
			if !dominated {
				diags = append(diags, Diag{
					Pass: "auto-plan", PC: pc, Block: b.ID, Severity: SevInfo,
					Msg: "barrier dominates no store: the checkpoint interval it opens can never log or omit a value (synchronisation-only boundary)",
				})
			}
		}
	}
	return diags
}
