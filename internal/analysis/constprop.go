package analysis

import (
	"acr/internal/isa"
	"acr/internal/prog"
)

// Constant propagation over the standard three-level lattice: a register is
// either a known constant or NAC (not-a-constant). At program entry every
// register is architecturally zero except the loader-preset thread id and
// thread count, which vary per thread and start NAC. Loads produce NAC; ALU
// ops fold through isa.EvalALU when every consumed operand is constant, so
// folding is bit-exact with execution (including the architected
// divide-by-zero-yields-zero rule). The out-of-segment lint pass uses the
// result to bound statically-known effective addresses.

type constKind uint8

const (
	constUnknown constKind = iota // no path information yet (lattice bottom)
	constConst
	constNAC
)

type constVal struct {
	kind constKind
	v    int64
}

type constEnv [isa.NumRegs]constVal

func meetVal(a, b constVal) constVal {
	switch {
	case a.kind == constUnknown:
		return b
	case b.kind == constUnknown:
		return a
	case a.kind == constConst && b.kind == constConst && a.v == b.v:
		return a
	}
	return constVal{kind: constNAC}
}

func meetEnv(dst *constEnv, src *constEnv) (changed bool) {
	for r := 1; r < isa.NumRegs; r++ {
		m := meetVal(dst[r], src[r])
		if m != dst[r] {
			dst[r] = m
			changed = true
		}
	}
	return changed
}

// ConstProp holds per-block constant environments at block entry.
type ConstProp struct {
	g  *CFG
	in []constEnv
}

// NewConstProp runs constant propagation over g.
func NewConstProp(g *CFG) *ConstProp {
	cp := &ConstProp{g: g, in: make([]constEnv, len(g.Blocks))}
	entry := &cp.in[g.Entry]
	for r := 1; r < isa.NumRegs; r++ {
		entry[r] = constVal{kind: constConst}
	}
	entry[prog.RegTID] = constVal{kind: constNAC}
	entry[prog.RegNTHR] = constVal{kind: constNAC}

	rpo := g.ReversePostorder()
	for changed := true; changed; {
		changed = false
		for _, id := range rpo {
			env := cp.in[id] // copy
			b := g.Blocks[id]
			for pc := b.Start; pc < b.End; pc++ {
				transferConst(&env, g.Code[pc])
			}
			for _, s := range b.Succs {
				if meetEnv(&cp.in[s], &env) {
					changed = true
				}
			}
		}
	}
	return cp
}

// transferConst applies one instruction to the environment.
func transferConst(env *constEnv, in isa.Instr) {
	rd, writes := in.DstReg()
	if !writes || rd == 0 {
		return
	}
	if !in.Op.IsALU() { // LD (and any future opaque producer)
		env[rd] = constVal{kind: constNAC}
		return
	}
	val := func(r isa.Reg) (int64, bool) {
		if r == 0 {
			return 0, true
		}
		return env[r].v, env[r].kind == constConst
	}
	var a, b, c int64
	ok := true
	switch in.Op {
	case isa.LI, isa.LUI:
	case isa.MOV, isa.FNEG, isa.FABS, isa.FSQRT, isa.CVTF, isa.CVTI,
		isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
		a, ok = val(in.Rs)
	case isa.FMA:
		var oa, ob, oc bool
		a, oa = val(in.Rs)
		b, ob = val(in.Rt)
		c, oc = val(in.Rd)
		ok = oa && ob && oc
	default:
		var oa, ob bool
		a, oa = val(in.Rs)
		b, ob = val(in.Rt)
		ok = oa && ob
	}
	if !ok {
		env[rd] = constVal{kind: constNAC}
		return
	}
	env[rd] = constVal{kind: constConst, v: isa.EvalALU(in.Op, a, b, c, in.Imm)}
}

// ValueAt returns the constant value of reg immediately before the
// instruction at pc, if the analysis proved one.
func (cp *ConstProp) ValueAt(pc int, reg isa.Reg) (int64, bool) {
	if reg == 0 {
		return 0, true
	}
	b := cp.g.Blocks[cp.g.BlockOf(pc)]
	env := cp.in[b.ID] // copy
	for i := b.Start; i < pc; i++ {
		transferConst(&env, cp.g.Code[i])
	}
	return env[reg].v, env[reg].kind == constConst
}
