// Package prog provides the program representation executed by the
// simulator and a small assembler-style builder API used by the workload
// kernels. A Program holds one shared code image plus per-thread entry
// points; threads are distinguished at run time by the thread-id register
// convention (see Builder).
package prog

import (
	"fmt"
	"sort"
	"strings"

	"acr/internal/isa"
)

// Program is an executable image for the simulated machine.
type Program struct {
	Name string
	// Code is the shared instruction memory, indexed by PC.
	Code []isa.Instr
	// Entry is the PC at which every thread starts.
	Entry int
	// DataWords is the number of 64-bit words of data memory the program
	// requires. The loader sizes memory from it.
	DataWords int
	// Init seeds data memory before execution; may be nil. It runs once,
	// before any instruction, and its writes are *not* checkpoint events
	// (they model the pre-ROI program phase).
	Init func(mem []int64)
	// Labels maps symbolic label names to PCs, for diagnostics.
	Labels map[string]int
}

// Validate checks structural well-formedness: branch targets in range,
// defined opcodes, register indices in range, and that every ASSOCADDR
// immediately follows a store with the same address operands (the paper
// requires ASSOC-ADDR to execute atomically with its store).
func (p *Program) Validate() error {
	n := len(p.Code)
	if p.Entry < 0 || p.Entry >= n {
		return fmt.Errorf("prog %s: entry %d out of range [0,%d)", p.Name, p.Entry, n)
	}
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("prog %s: pc %d: invalid op %d", p.Name, pc, in.Op)
		}
		if in.Rd >= isa.NumRegs || in.Rs >= isa.NumRegs || in.Rt >= isa.NumRegs {
			return fmt.Errorf("prog %s: pc %d: register out of range in %v", p.Name, pc, in)
		}
		if in.Op.IsBranch() {
			if in.Imm < 0 || in.Imm >= int64(n) {
				return fmt.Errorf("prog %s: pc %d: branch target %d out of range", p.Name, pc, in.Imm)
			}
		}
		if in.Op == isa.ASSOCADDR {
			if pc == 0 {
				return fmt.Errorf("prog %s: pc 0: ASSOCADDR without preceding store", p.Name)
			}
			prev := p.Code[pc-1]
			if prev.Op != isa.ST || prev.Rs != in.Rs || prev.Imm != in.Imm {
				return fmt.Errorf("prog %s: pc %d: ASSOCADDR does not pair with preceding store %v", p.Name, pc, prev)
			}
		}
	}
	return nil
}

// Disassemble renders the whole program as text, annotating label targets.
func (p *Program) Disassemble() string {
	target := make(map[int][]string)
	for name, pc := range p.Labels {
		target[pc] = append(target[pc], name)
	}
	var b strings.Builder
	for pc, in := range p.Code {
		for _, name := range target[pc] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "%6d  %s\n", pc, in)
	}
	return b.String()
}

// Label is a forward-referenceable branch target handed out by a Builder.
type Label struct {
	id int
}

// Builder assembles a Program. The zero value is not usable; call New.
//
// Register conventions used by all workload kernels:
//
//	r0        hardwired zero
//	RegTID    (r31) thread id, preset by the loader
//	RegNTHR   (r30) thread count, preset by the loader
type Builder struct {
	name      string
	code      []isa.Instr
	labels    map[string]int
	pending   map[int][]int // label id -> pcs with unresolved targets
	placed    map[int]int   // label id -> pc
	nextLabel int
	dataWords int
	err       error
}

// Conventional registers preset by the loader for every thread.
const (
	RegTID  isa.Reg = 31
	RegNTHR isa.Reg = 30
)

// New returns a Builder for a program with the given name.
func New(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int),
		pending: make(map[int][]int),
		placed:  make(map[int]int),
	}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.code) }

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Instr) *Builder {
	b.code = append(b.code, in)
	return b
}

// Op3 emits a three-register ALU instruction rd <- rs op rt.
func (b *Builder) Op3(op isa.Op, rd, rs, rt isa.Reg) *Builder {
	return b.Emit(isa.Instr{Op: op, Rd: rd, Rs: rs, Rt: rt})
}

// OpI emits an immediate ALU instruction rd <- rs op imm.
func (b *Builder) OpI(op isa.Op, rd, rs isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Instr{Op: op, Rd: rd, Rs: rs, Imm: imm})
}

// Li loads a 32-bit sign-extended immediate into rd.
func (b *Builder) Li(rd isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Instr{Op: isa.LI, Rd: rd, Imm: imm})
}

// Mov copies rs to rd.
func (b *Builder) Mov(rd, rs isa.Reg) *Builder {
	return b.Emit(isa.Instr{Op: isa.MOV, Rd: rd, Rs: rs})
}

// Ld emits rd <- mem[rs+off].
func (b *Builder) Ld(rd, rs isa.Reg, off int64) *Builder {
	return b.Emit(isa.Instr{Op: isa.LD, Rd: rd, Rs: rs, Imm: off})
}

// St emits mem[rs+off] <- rt.
func (b *Builder) St(rt, rs isa.Reg, off int64) *Builder {
	return b.Emit(isa.Instr{Op: isa.ST, Rs: rs, Rt: rt, Imm: off})
}

// StAssoc emits a store immediately followed by the paired ASSOC-ADDR
// instruction, hinting to the ACR checkpoint handler that the stored value
// is a recomputation candidate (whether it actually is depends on the
// dynamic Slice the tracker derives and the length threshold).
func (b *Builder) StAssoc(rt, rs isa.Reg, off int64) *Builder {
	b.St(rt, rs, off)
	return b.Emit(isa.Instr{Op: isa.ASSOCADDR, Rs: rs, Imm: off})
}

// Barrier emits a full-program barrier.
func (b *Builder) Barrier() *Builder { return b.Emit(isa.Instr{Op: isa.BARRIER}) }

// Halt stops the executing thread.
func (b *Builder) Halt() *Builder { return b.Emit(isa.Instr{Op: isa.HALT}) }

// NewLabel allocates an unplaced label.
func (b *Builder) NewLabel() Label {
	b.nextLabel++
	return Label{id: b.nextLabel}
}

// Place binds l to the current PC. A label may be placed once.
func (b *Builder) Place(l Label) *Builder {
	if _, dup := b.placed[l.id]; dup {
		b.fail("label %d placed twice", l.id)
		return b
	}
	pc := b.PC()
	b.placed[l.id] = pc
	for _, site := range b.pending[l.id] {
		b.code[site].Imm = int64(pc)
	}
	delete(b.pending, l.id)
	return b
}

// PlaceNamed binds l at the current PC and records name for disassembly.
func (b *Builder) PlaceNamed(l Label, name string) *Builder {
	b.labels[name] = b.PC()
	return b.Place(l)
}

func (b *Builder) branch(op isa.Op, rs, rt isa.Reg, l Label) *Builder {
	imm := int64(0)
	if pc, ok := b.placed[l.id]; ok {
		imm = int64(pc)
	} else {
		b.pending[l.id] = append(b.pending[l.id], b.PC())
	}
	return b.Emit(isa.Instr{Op: op, Rs: rs, Rt: rt, Imm: imm})
}

// Beq branches to l when rs == rt.
func (b *Builder) Beq(rs, rt isa.Reg, l Label) *Builder { return b.branch(isa.BEQ, rs, rt, l) }

// Bne branches to l when rs != rt.
func (b *Builder) Bne(rs, rt isa.Reg, l Label) *Builder { return b.branch(isa.BNE, rs, rt, l) }

// Blt branches to l when rs < rt (signed).
func (b *Builder) Blt(rs, rt isa.Reg, l Label) *Builder { return b.branch(isa.BLT, rs, rt, l) }

// Bge branches to l when rs >= rt (signed).
func (b *Builder) Bge(rs, rt isa.Reg, l Label) *Builder { return b.branch(isa.BGE, rs, rt, l) }

// Jmp jumps unconditionally to l.
func (b *Builder) Jmp(l Label) *Builder { return b.branch(isa.JMP, 0, 0, l) }

// Loop emits a counted loop: it initialises ctr to 0, runs body(ctr), and
// increments until ctr == bound (bound is a register, evaluated each
// iteration). body must not clobber ctr or bound.
func (b *Builder) Loop(ctr, bound isa.Reg, body func()) *Builder {
	b.Li(ctr, 0)
	head := b.NewLabel()
	done := b.NewLabel()
	b.Place(head)
	b.Bge(ctr, bound, done)
	body()
	b.OpI(isa.ADDI, ctr, ctr, 1)
	b.Jmp(head)
	b.Place(done)
	return b
}

// LoopConst is Loop with a constant trip count; it burns a scratch register
// for the bound.
func (b *Builder) LoopConst(ctr, scratch isa.Reg, n int64, body func()) *Builder {
	b.Li(scratch, n)
	return b.Loop(ctr, scratch, body)
}

// Data reserves n words of data memory and returns the base word address.
func (b *Builder) Data(n int) int64 {
	base := b.dataWords
	b.dataWords += n
	return int64(base)
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("prog %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Build finalises the program. It fails if any label is still unresolved or
// the assembled program does not validate.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.pending) > 0 {
		var sites []int
		for _, pcs := range b.pending {
			sites = append(sites, pcs...)
		}
		sort.Ints(sites)
		return nil, fmt.Errorf("prog %s: %d unresolved labels, branched to from pcs %v", b.name, len(b.pending), sites)
	}
	p := &Program{
		Name:      b.name,
		Code:      b.code,
		DataWords: b.dataWords,
		Labels:    b.labels,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for use in tests and workload
// constructors whose programs are statically known to be well-formed.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
