package prog

import (
	"strings"
	"testing"

	"acr/internal/isa"
)

func TestBuildSimple(t *testing.T) {
	b := New("simple")
	b.Li(1, 42)
	b.Li(2, 8)
	b.Op3(isa.ADD, 3, 1, 2)
	base := b.Data(4)
	b.Li(4, base)
	b.St(3, 4, 0)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 6 {
		t.Errorf("len(Code) = %d", len(p.Code))
	}
	if p.DataWords != 4 {
		t.Errorf("DataWords = %d", p.DataWords)
	}
}

func TestForwardAndBackwardLabels(t *testing.T) {
	b := New("labels")
	top := b.NewLabel()
	end := b.NewLabel()
	b.Place(top)
	b.Li(1, 1)
	b.Beq(1, 1, end) // forward
	b.Jmp(top)       // backward
	b.Place(end)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Imm != 3 {
		t.Errorf("forward branch target = %d, want 3", p.Code[1].Imm)
	}
	if p.Code[2].Imm != 0 {
		t.Errorf("backward branch target = %d, want 0", p.Code[2].Imm)
	}
}

func TestUnresolvedLabelFails(t *testing.T) {
	b := New("bad")
	l := b.NewLabel()
	b.Jmp(l)
	b.Halt()
	_, err := b.Build()
	if err == nil {
		t.Fatal("expected error for unresolved label")
	}
	if !strings.Contains(err.Error(), "pcs [0]") {
		t.Fatalf("error %q should name the branch site pc 0", err)
	}
}

func TestDoublePlacedLabelFails(t *testing.T) {
	b := New("bad2")
	l := b.NewLabel()
	b.Place(l)
	b.Halt()
	b.Place(l)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for doubly placed label")
	}
}

func TestValidateRejectsBadBranch(t *testing.T) {
	p := &Program{Name: "x", Code: []isa.Instr{{Op: isa.JMP, Imm: 99}, {Op: isa.HALT}}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected out-of-range branch to fail validation")
	}
}

func TestValidateRejectsLoneAssocAddr(t *testing.T) {
	p := &Program{Name: "x", Code: []isa.Instr{
		{Op: isa.NOP},
		{Op: isa.ASSOCADDR, Rs: 1, Imm: 0},
		{Op: isa.HALT},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("ASSOCADDR without paired store must fail validation")
	}
	p2 := &Program{Name: "x", Code: []isa.Instr{
		{Op: isa.ASSOCADDR, Rs: 1, Imm: 0},
		{Op: isa.HALT},
	}}
	if err := p2.Validate(); err == nil {
		t.Fatal("ASSOCADDR at pc 0 must fail validation")
	}
}

func TestStAssocPairValidates(t *testing.T) {
	b := New("assoc")
	b.Li(1, 7)
	b.Li(2, 0)
	b.StAssoc(1, 2, 5)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[2].Op != isa.ST || p.Code[3].Op != isa.ASSOCADDR {
		t.Fatalf("StAssoc emitted %v, %v", p.Code[2].Op, p.Code[3].Op)
	}
}

func TestLoopShape(t *testing.T) {
	b := New("loop")
	body := 0
	b.LoopConst(1, 2, 10, func() {
		body++
		b.OpI(isa.ADDI, 3, 3, 1)
	})
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if body != 1 {
		t.Fatalf("body emitted %d times at build time, want 1", body)
	}
	// li bound, li ctr, bge, body, addi, jmp, halt
	if len(p.Code) != 7 {
		t.Errorf("loop emitted %d instructions, want 7", len(p.Code))
	}
}

func TestDisassembleShowsLabels(t *testing.T) {
	b := New("dis")
	l := b.NewLabel()
	b.PlaceNamed(l, "main")
	b.Li(1, 5)
	b.Halt()
	p := b.MustBuild()
	text := p.Disassemble()
	if !strings.Contains(text, "main:") {
		t.Errorf("disassembly missing label:\n%s", text)
	}
	if !strings.Contains(text, "li r1, 5") {
		t.Errorf("disassembly missing instruction:\n%s", text)
	}
}

func TestDataAllocationSequential(t *testing.T) {
	b := New("data")
	a := b.Data(10)
	c := b.Data(5)
	if a != 0 || c != 10 {
		t.Errorf("Data bases = %d, %d; want 0, 10", a, c)
	}
	b.Halt()
	p := b.MustBuild()
	if p.DataWords != 15 {
		t.Errorf("DataWords = %d, want 15", p.DataWords)
	}
}

func TestBranchHelpers(t *testing.T) {
	b := New("branches")
	end := b.NewLabel()
	b.Li(1, 1)
	b.Li(2, 2)
	b.Bne(1, 2, end)
	b.Blt(1, 2, end)
	b.Bge(2, 1, end)
	b.Place(end)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for pc := 2; pc <= 4; pc++ {
		if p.Code[pc].Imm != 5 {
			t.Errorf("branch at %d targets %d, want 5", pc, p.Code[pc].Imm)
		}
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	p := &Program{Name: "r", Code: []isa.Instr{
		{Op: isa.ADD, Rd: 40, Rs: 1, Rt: 2},
		{Op: isa.HALT},
	}}
	if err := p.Validate(); err == nil {
		t.Error("register 40 must fail validation")
	}
}

func TestValidateRejectsBadOpcode(t *testing.T) {
	p := &Program{Name: "o", Code: []isa.Instr{
		{Op: isa.Op(200)},
		{Op: isa.HALT},
	}}
	if err := p.Validate(); err == nil {
		t.Error("invalid opcode must fail validation")
	}
}

func TestValidateRejectsBadEntry(t *testing.T) {
	p := &Program{Name: "e", Code: []isa.Instr{{Op: isa.HALT}}, Entry: 5}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range entry must fail validation")
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	b := New("panic")
	l := b.NewLabel()
	b.Jmp(l) // unresolved
	defer func() {
		if recover() == nil {
			t.Error("MustBuild must panic on unresolved label")
		}
	}()
	b.MustBuild()
}

func TestLoopDoesNotClobberOtherRegs(t *testing.T) {
	b := New("clobber")
	b.Li(9, 77)
	b.LoopConst(1, 2, 5, func() {
		b.OpI(isa.ADDI, 3, 3, 1)
	})
	b.Halt()
	p := b.MustBuild()
	// Statically check the loop only writes its counter, bound and body
	// registers.
	written := map[isa.Reg]bool{}
	for _, in := range p.Code {
		if rd, ok := in.DstReg(); ok {
			written[rd] = true
		}
	}
	for _, r := range []isa.Reg{1, 2, 3, 9} {
		if !written[r] {
			t.Errorf("register %v never written", r)
		}
	}
	if written[4] || written[10] {
		t.Error("loop wrote unexpected registers")
	}
}
