package prog

// BlockSpan is the half-open instruction range [Start, End) of one basic
// block of a code image.
type BlockSpan struct {
	Start, End int
}

// Len returns the number of instructions in the block.
func (s BlockSpan) Len() int { return s.End - s.Start }

// BlockTable is the basic-block partition of a program's code image in a
// form the execution engine can index per retired instruction: every pc
// maps to exactly one block, and blocks tile the code in address order.
// The analysis package builds the table from the program CFG (prog cannot
// import analysis, so the type lives here and the builder there); the cpu
// block compiler consumes it as its unit of compilation and caching.
type BlockTable struct {
	// Spans lists the blocks in ascending address order.
	Spans []BlockSpan
	// BlockOf maps each pc to its index in Spans.
	BlockOf []int32
}

// Check verifies the partition invariants against a code image of n
// instructions: spans tile [0, n) exactly and BlockOf agrees with them.
// The execution engine trusts an incoming table; Check lets its
// constructor (and tests) establish that trust cheaply once.
func (t *BlockTable) Check(n int) bool {
	if len(t.BlockOf) != n {
		return false
	}
	next := 0
	for i, s := range t.Spans {
		if s.Start != next || s.End <= s.Start || s.End > n {
			return false
		}
		for pc := s.Start; pc < s.End; pc++ {
			if int(t.BlockOf[pc]) != i {
				return false
			}
		}
		next = s.End
	}
	return next == n
}
