// Package stats provides the small table/metric toolkit the experiment
// harness uses to render paper-style tables and figure series.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// AddRow appends a row; cells beyond len(Cols) are dropped, missing cells
// are blank-padded at render time.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table, column-aligned.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width, cell)
			} else {
				fmt.Fprintf(&b, "%*s", width, cell)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Pct formats a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f", v) }

// OverheadPct returns (value-base)/base in percent.
func OverheadPct(value, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (value - base) / base * 100
}

// ReductionPct returns (from-to)/from in percent: how much `to` improves
// on `from`.
func ReductionPct(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return (from - to) / from * 100
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs and its index (0, -1 for empty input).
func Max(xs []float64) (float64, int) {
	if len(xs) == 0 {
		return 0, -1
	}
	best, at := xs[0], 0
	for i, x := range xs[1:] {
		if x > best {
			best, at = x, i+1
		}
	}
	return best, at
}

// RenderCSV writes the table as CSV (title and notes as comment lines),
// for downstream plotting.
func (t *Table) RenderCSV(w io.Writer) {
	cw := csv.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	cw.Write(t.Cols)
	for _, row := range t.Rows {
		padded := make([]string, len(t.Cols))
		copy(padded, row)
		cw.Write(padded)
	}
	cw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}
