package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Cols: []string{"a", "long-col"}}
	tab.AddRow("x", "1")
	tab.AddRow("yyyy", "22")
	tab.AddNote("hello %d", 42)
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	for _, want := range []string{"T\n=", "a", "long-col", "yyyy", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderPadsShortRows(t *testing.T) {
	tab := &Table{Cols: []string{"a", "b", "c"}}
	tab.AddRow("only-one")
	var b strings.Builder
	tab.Render(&b) // must not panic
	if !strings.Contains(b.String(), "only-one") {
		t.Error("row lost")
	}
}

func TestOverheadPct(t *testing.T) {
	if got := OverheadPct(150, 100); got != 50 {
		t.Errorf("OverheadPct = %v", got)
	}
	if got := OverheadPct(100, 0); got != 0 {
		t.Errorf("OverheadPct with zero base = %v", got)
	}
}

func TestReductionPct(t *testing.T) {
	if got := ReductionPct(100, 75); got != 25 {
		t.Errorf("ReductionPct = %v", got)
	}
	if got := ReductionPct(0, 10); got != 0 {
		t.Errorf("ReductionPct with zero from = %v", got)
	}
	if got := ReductionPct(100, 120); got != -20 {
		t.Errorf("negative reduction = %v", got)
	}
}

func TestMeanMax(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	v, i := Max([]float64{1, 5, 3})
	if v != 5 || i != 1 {
		t.Errorf("Max = %v at %d", v, i)
	}
	if _, i := Max(nil); i != -1 {
		t.Errorf("Max(nil) index = %d", i)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(12.345); got != "12.35" {
		t.Errorf("Pct = %q", got)
	}
}

func TestRenderCSV(t *testing.T) {
	tab := &Table{Title: "T", Cols: []string{"a", "b"}}
	tab.AddRow("x", "1")
	tab.AddRow("short")
	tab.AddNote("n")
	var b strings.Builder
	tab.RenderCSV(&b)
	out := b.String()
	for _, want := range []string{"# T\n", "a,b\n", "x,1\n", "short,\n", "# n\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
