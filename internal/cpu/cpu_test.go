package cpu

import (
	"testing"

	"acr/internal/energy"
	"acr/internal/isa"
	"acr/internal/mem"
	"acr/internal/prog"
	"acr/internal/slice"
)

type testHooks struct {
	firstStores []int64
	olds        []int64
	assocs      []int64
	assocPCs    []int
	stall       int64
}

func (h *testHooks) FirstStore(core int, addr, old int64) int64 {
	h.firstStores = append(h.firstStores, addr)
	h.olds = append(h.olds, old)
	return h.stall
}

func (h *testHooks) Assoc(core, pc int, addr int64, recipe slice.Ref) int64 {
	h.assocs = append(h.assocs, addr)
	h.assocPCs = append(h.assocPCs, pc)
	return 0
}

func run(t *testing.T, p *prog.Program, hooks Hooks, tr *slice.Tracker) (*Core, *mem.System, *energy.Meter) {
	t.Helper()
	meter := energy.NewMeter(nil)
	words := p.DataWords
	if words == 0 {
		words = 64
	}
	m := mem.MustNewSystem(mem.DefaultConfig(), 1, words, meter)
	if p.Init != nil {
		buf := make([]int64, words)
		p.Init(buf)
		for i, v := range buf {
			m.WriteWord(int64(i), v)
		}
	}
	c := New(0, p.Entry, 1)
	c.AssocEnabled = true
	for steps := 0; c.State == Running; steps++ {
		if steps > 1_000_000 {
			t.Fatal("runaway program")
		}
		c.Step(p, m, tr, hooks)
		c.FlushAccounting(meter)
	}
	return c, m, meter
}

func TestArithmeticProgram(t *testing.T) {
	b := prog.New("arith")
	base := b.Data(8)
	b.Li(1, 6)
	b.Li(2, 7)
	b.Op3(isa.MUL, 3, 1, 2)
	b.Li(4, base)
	b.St(3, 4, 0)
	b.Halt()
	c, m, _ := run(t, b.MustBuild(), nil, nil)
	if m.ReadWord(base) != 42 {
		t.Errorf("mem[%d] = %d, want 42", base, m.ReadWord(base))
	}
	if c.Instrs != 6 {
		t.Errorf("instrs = %d, want 6", c.Instrs)
	}
}

func TestLoopExecution(t *testing.T) {
	b := prog.New("loop")
	base := b.Data(1)
	b.Li(10, base)
	b.LoopConst(1, 2, 10, func() {
		b.OpI(isa.ADDI, 3, 3, 2) // r3 += 2
	})
	b.St(3, 10, 0)
	b.Halt()
	_, m, _ := run(t, b.MustBuild(), nil, nil)
	if m.ReadWord(base) != 20 {
		t.Errorf("loop result = %d, want 20", m.ReadWord(base))
	}
}

func TestFourIssueTiming(t *testing.T) {
	// 8 ALU instructions retire in 2 cycles on the 4-issue core.
	b := prog.New("timing")
	for i := 0; i < 8; i++ {
		b.OpI(isa.ADDI, 1, 1, 1)
	}
	b.Halt()
	c, _, _ := run(t, b.MustBuild(), nil, nil)
	// 8 ALU quarters + 1 halt quarter = 9 quarters = 2 cycles (floor).
	if got := c.Cycles(); got != 2 {
		t.Errorf("cycles = %d, want 2", got)
	}
}

func TestMemoryLatencyCharged(t *testing.T) {
	b := prog.New("mem")
	base := b.Data(8)
	b.Li(1, base)
	b.Ld(2, 1, 0) // cold: DRAM latency
	b.Halt()
	c, _, _ := run(t, b.MustBuild(), nil, nil)
	cfg := mem.DefaultConfig()
	if c.Cycles() < cfg.DRAMCycles {
		t.Errorf("cycles = %d, want at least DRAM latency %d", c.Cycles(), cfg.DRAMCycles)
	}
}

func TestFirstStoreHook(t *testing.T) {
	b := prog.New("hooks")
	base := b.Data(8)
	b.Li(1, base)
	b.Li(2, 5)
	b.St(2, 1, 0) // first store to base
	b.St(2, 1, 0) // second store, same word: no hook
	b.St(2, 1, 1) // first store to base+1
	b.Halt()
	h := &testHooks{}
	run(t, b.MustBuild(), h, nil)
	if len(h.firstStores) != 2 {
		t.Fatalf("FirstStore fired %d times, want 2", len(h.firstStores))
	}
	if h.firstStores[0] != base || h.firstStores[1] != base+1 {
		t.Errorf("FirstStore addrs = %v", h.firstStores)
	}
	if h.olds[0] != 0 {
		t.Errorf("old value = %d, want 0", h.olds[0])
	}
}

func TestFirstStoreStallCharged(t *testing.T) {
	mk := func(stall int64) int64 {
		b := prog.New("stall")
		base := b.Data(8)
		b.Li(1, base)
		b.Li(2, 5)
		b.St(2, 1, 0)
		b.Halt()
		h := &testHooks{stall: stall}
		c, _, _ := run(t, b.MustBuild(), h, nil)
		return c.Cycles()
	}
	if mk(100)-mk(0) != 100 {
		t.Errorf("stall not charged: delta = %d", mk(100)-mk(0))
	}
}

func TestAssocHookCarriesRecipe(t *testing.T) {
	b := prog.New("assoc")
	base := b.Data(8)
	b.Li(1, base)
	b.Li(2, 21)
	b.OpI(isa.MULI, 3, 2, 2) // 42, pure arithmetic
	b.StAssoc(3, 1, 0)
	b.Halt()
	h := &testHooks{}
	tr := slice.NewTracker(1)
	p := b.MustBuild()
	_, m, _ := run(t, p, h, tr)
	if len(h.assocs) != 1 || h.assocs[0] != base {
		t.Fatalf("assocs = %v, want [%d]", h.assocs, base)
	}
	if pc := h.assocPCs[0]; p.Code[pc].Op != isa.ASSOCADDR {
		t.Errorf("Assoc carried pc %d (%v), want the ASSOC-ADDR's own PC", pc, p.Code[pc].Op)
	}
	if m.ReadWord(base) != 42 {
		t.Errorf("stored value = %d", m.ReadWord(base))
	}
}

func TestRecipeOfStoredValueEvaluable(t *testing.T) {
	// End-to-end: the recipe passed to Assoc recomputes the stored value.
	b := prog.New("recipe")
	base := b.Data(8)
	b.Li(1, base)
	b.Li(2, 10)
	b.OpI(isa.ADDI, 3, 2, 32)
	b.StAssoc(3, 1, 0)
	b.Halt()
	tr := slice.NewTracker(1)
	var got int64
	hk := hookFunc(func(core, pc int, addr int64, recipe slice.Ref) int64 {
		c, ok := tr.Compile(core, recipe, 64)
		if !ok {
			panic("recipe must compile")
		}
		got = c.Eval(nil)
		return 0
	})
	run(t, b.MustBuild(), hk, tr)
	if got != 42 {
		t.Errorf("recomputed = %d, want 42", got)
	}
}

type hookFunc func(core, pc int, addr int64, recipe slice.Ref) int64

func (f hookFunc) FirstStore(core int, addr, old int64) int64        { return 0 }
func (f hookFunc) Assoc(core, pc int, addr int64, r slice.Ref) int64 { return f(core, pc, addr, r) }

func TestBarrierAndHaltStates(t *testing.T) {
	b := prog.New("states")
	b.Barrier()
	b.Halt()
	p := b.MustBuild()
	meter := energy.NewMeter(nil)
	m := mem.MustNewSystem(mem.DefaultConfig(), 1, 64, meter)
	c := New(0, p.Entry, 1)
	c.Step(p, m, nil, nil)
	if c.State != AtBarrier {
		t.Fatalf("state = %v, want at-barrier", c.State)
	}
	c.State = Running // release
	c.Step(p, m, nil, nil)
	if c.State != Halted {
		t.Fatalf("state = %v, want halted", c.State)
	}
}

func TestArchSnapshotRestore(t *testing.T) {
	c := New(3, 17, 8)
	c.Regs[5] = 99
	snap := c.Arch()
	c.Regs[5] = 1
	c.PC = 0
	c.Restore(&snap)
	if c.Regs[5] != 99 || c.PC != 17 {
		t.Errorf("restore failed: r5=%d pc=%d", c.Regs[5], c.PC)
	}
	if c.Regs[prog.RegTID] != 3 || c.Regs[prog.RegNTHR] != 8 {
		t.Errorf("thread registers not preset: tid=%d n=%d",
			c.Regs[prog.RegTID], c.Regs[prog.RegNTHR])
	}
	if snap.Words() != isa.NumRegs+1 {
		t.Errorf("arch words = %d", snap.Words())
	}
}

func TestR0StaysZero(t *testing.T) {
	b := prog.New("r0")
	b.Li(0, 42)
	b.OpI(isa.ADDI, 1, 0, 1)
	b.Halt()
	c, _, _ := run(t, b.MustBuild(), nil, nil)
	if c.Regs[0] != 0 {
		t.Errorf("r0 = %d", c.Regs[0])
	}
	if c.Regs[1] != 1 {
		t.Errorf("r1 = %d, want 1 (r0 must read as 0)", c.Regs[1])
	}
}

func TestBranchRedirects(t *testing.T) {
	b := prog.New("branch")
	skip := b.NewLabel()
	b.Li(1, 1)
	b.Beq(1, 1, skip)
	b.Li(2, 99) // skipped
	b.Place(skip)
	b.Halt()
	c, _, _ := run(t, b.MustBuild(), nil, nil)
	if c.Regs[2] != 0 {
		t.Errorf("taken branch did not skip: r2 = %d", c.Regs[2])
	}
}
