package cpu

import (
	"math/rand"
	"testing"

	"acr/internal/energy"
	"acr/internal/isa"
	"acr/internal/mem"
	"acr/internal/prog"
)

// TestEveryALUOpMatchesEvalALU executes each ALU op through the full core
// pipeline and cross-checks the architectural result against isa.EvalALU —
// the function the recomputation engine uses. Any divergence would break
// the recompute-equals-stored guarantee.
func TestEveryALUOpMatchesEvalALU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	aluOps := []isa.Op{
		isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.SLT, isa.ADDI, isa.MULI, isa.ANDI,
		isa.ORI, isa.XORI, isa.SHLI, isa.SHRI, isa.LUI, isa.LI, isa.MOV,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FNEG, isa.FABS,
		isa.FSQRT, isa.FMA, isa.CVTF, isa.CVTI, isa.FLT,
	}
	meter := energy.NewMeter(nil)
	m := mem.MustNewSystem(mem.DefaultConfig(), 1, 64, meter)
	for _, op := range aluOps {
		for trial := 0; trial < 20; trial++ {
			a, bv, cv := rng.Int63(), rng.Int63(), rng.Int63()
			imm := rng.Int63n(1 << 20)
			c := New(0, 0, 1)
			c.Regs[1], c.Regs[2], c.Regs[3] = a, bv, cv
			p := &prog.Program{Name: "op", Code: []isa.Instr{
				{Op: op, Rd: 3, Rs: 1, Rt: 2, Imm: imm},
				{Op: isa.HALT},
			}}
			c.Step(p, m, nil, nil)
			want := isa.EvalALU(op, a, bv, cv, imm)
			if c.Regs[3] != want {
				t.Fatalf("%v(%d,%d,%d,imm=%d): core %d, EvalALU %d",
					op, a, bv, cv, imm, c.Regs[3], want)
			}
		}
	}
}

func TestUntakenBranchFallsThrough(t *testing.T) {
	meter := energy.NewMeter(nil)
	m := mem.MustNewSystem(mem.DefaultConfig(), 1, 64, meter)
	p := &prog.Program{Name: "b", Code: []isa.Instr{
		{Op: isa.BNE, Rs: 0, Rt: 0, Imm: 0}, // never taken (r0 == r0)
		{Op: isa.HALT},
	}}
	c := New(0, 0, 1)
	c.Step(p, m, nil, nil)
	if c.PC != 1 {
		t.Fatalf("untaken branch PC = %d, want 1", c.PC)
	}
}

func TestAssocDisabledIsFree(t *testing.T) {
	b := prog.New("free")
	base := b.Data(8)
	b.Li(1, base)
	b.Li(2, 5)
	b.StAssoc(2, 1, 0)
	b.Halt()
	p := b.MustBuild()

	run := func(enabled bool) (int64, int64) {
		meter := energy.NewMeter(nil)
		m := mem.MustNewSystem(mem.DefaultConfig(), 1, 8, meter)
		c := New(0, 0, 1)
		c.AssocEnabled = enabled
		for c.State == Running {
			c.Step(p, m, nil, nil)
		}
		return c.Instrs, c.Cycles()
	}
	instrOn, _ := run(true)
	instrOff, _ := run(false)
	if instrOn != instrOff+1 {
		t.Errorf("ASSOC-ADDR retirement: enabled %d instrs, disabled %d (want +1)",
			instrOn, instrOff)
	}
}

func TestStepPanicsOnHaltedCore(t *testing.T) {
	meter := energy.NewMeter(nil)
	m := mem.MustNewSystem(mem.DefaultConfig(), 1, 8, meter)
	p := &prog.Program{Name: "h", Code: []isa.Instr{{Op: isa.HALT}}}
	c := New(0, 0, 1)
	c.Step(p, m, nil, nil)
	defer func() {
		if recover() == nil {
			t.Error("Step on halted core must panic")
		}
	}()
	c.Step(p, m, nil, nil)
}
