// Package cpu models the in-order cores of the simulated machine (Table I:
// 1.09 GHz, 4-issue, in-order, 8 outstanding loads/stores). A core is a
// functional interpreter over the ISA plus a timing model: ALU instructions
// retire at the issue rate (4 per cycle), memory instructions stall for the
// latency of the cache level that services them.
//
// Both execution engines — the Step interpreter and the block-compilation
// BlockRunner — are deterministic functions of architectural state: no
// wall-clock reads, no process-global randomness, no map-iteration order.
// The sim package's bit-identity oracles depend on it.
//
//acr:deterministic
package cpu

import (
	"fmt"

	"acr/internal/energy"
	"acr/internal/isa"
	"acr/internal/mem"
	"acr/internal/prog"
	"acr/internal/slice"
)

// State is the scheduling state of a core.
type State uint8

// Core states.
const (
	Running State = iota
	AtBarrier
	Halted
)

func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case AtBarrier:
		return "at-barrier"
	case Halted:
		return "halted"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// ArchState is the architectural state captured by a checkpoint: exactly
// what the paper's baseline checkpoints per core besides memory (§II-A:
// "recording (the rest of) each core's architectural state").
type ArchState struct {
	Regs  [isa.NumRegs]int64
	PC    int
	State State
}

// Words returns the architectural state size in 64-bit words, used to cost
// register checkpointing.
func (a *ArchState) Words() int { return isa.NumRegs + 1 }

// Hooks intercepts architectural events that the checkpointing machinery
// cares about. The machine implements Hooks; a nil hook field disables the
// corresponding mechanism.
type Hooks interface {
	// FirstStore fires when a store hits a word whose log bit was clear
	// (first update in the current checkpoint interval). old is the
	// word's value before the store. It returns extra stall cycles
	// charged to the storing core (the inline log write or the cheaper
	// AddrMap check when the value is omitted).
	FirstStore(core int, addr, old int64) int64
	// Assoc fires when an ASSOC-ADDR retires, carrying the instruction's
	// own PC (keying static per-site policies), the effective address of
	// the paired store and the recipe of the stored value. It returns
	// extra stall cycles (AddrMap insertion).
	Assoc(core, pc int, addr int64, recipe slice.Ref) int64
}

// quarters per cycle: the 4-issue core is accounted in quarter-cycle units
// so that four back-to-back ALU instructions cost one cycle.
const qPerCycle = 4

// Core is one simulated in-order core.
type Core struct {
	ID    int
	Regs  [isa.NumRegs]int64
	PC    int
	State State

	// OnState, when non-nil, observes every scheduling-state transition
	// (BARRIER/HALT retirement, barrier release, recovery roll-back). The
	// sim scheduler uses it to maintain incremental run-state counters
	// instead of rescanning every core per instruction. Transitions are
	// rare (events, not instructions), so the indirect call is off the
	// hot path.
	OnState func(c *Core, from, to State)

	// quarters is the local clock in quarter-cycle units.
	quarters int64
	// Instrs counts retired instructions.
	Instrs int64

	// AssocEnabled selects whether ASSOC-ADDR instructions are live. In
	// non-ACR configurations the compiler would not embed them, so they
	// are skipped at zero cost, keeping the baseline binary honest.
	AssocEnabled bool

	lastStoreAddr int64
	lastStoreReg  isa.Reg

	// Shadow counters for the energy events charged on the retire path.
	// Step increments these core-local fields instead of calling
	// energy.Meter.Add per instruction; FlushAccounting drains them into
	// the shared meter at quantum boundaries. Counts are commutative, so
	// batching leaves every meter total bit-identical.
	accL1I   uint64
	accInt   uint64
	accFloat uint64
	accL1D   uint64
}

// New returns a core with the given id, entry PC and thread-id registers
// preset per the prog package convention.
func New(id int, entry int, nThreads int) *Core {
	c := &Core{ID: id, PC: entry}
	c.Regs[prog.RegTID] = int64(id)
	c.Regs[prog.RegNTHR] = int64(nThreads)
	return c
}

// Cycles returns the core-local clock in cycles.
//
//acr:spec-safe
func (c *Core) Cycles() int64 { return c.quarters / qPerCycle }

// AddCycles advances the core-local clock (checkpoint stalls, recovery
// stalls, barrier synchronisation).
func (c *Core) AddCycles(n int64) { c.quarters += n * qPerCycle }

// SetCycles forces the core-local clock (synchronisation to a barrier or
// checkpoint release time).
func (c *Core) SetCycles(n int64) { c.quarters = n * qPerCycle }

// SetState transitions the core's scheduling state, notifying OnState.
// All state changes — the core's own BARRIER/HALT retirement as well as the
// machine's barrier releases and recovery roll-backs — go through here so
// incremental counters never drift from the cores.
func (c *Core) SetState(s State) {
	if c.State == s {
		return
	}
	from := c.State
	c.State = s
	if c.OnState != nil {
		c.OnState(c, from, s)
	}
}

// Arch captures the core's architectural state.
func (c *Core) Arch() ArchState {
	return ArchState{Regs: c.Regs, PC: c.PC, State: c.State}
}

// Restore overwrites the core's architectural state (recovery roll-back).
func (c *Core) Restore(a *ArchState) {
	c.Regs = a.Regs
	c.PC = a.PC
	c.SetState(a.State)
}

// Step executes one instruction. The tracker may be nil (recipe tracking is
// only needed for ACR configurations); hooks may be nil (no checkpointing).
// Step panics on architecturally impossible situations (bad PC), which the
// prog validator rules out for well-formed programs.
//
// Energy events on the retire path accumulate in the core's shadow
// counters; the caller must FlushAccounting before reading the meter.
//
//acr:noalloc
func (c *Core) Step(p *prog.Program, m *mem.System, tr *slice.Tracker, hooks Hooks) {
	if c.State != Running {
		panic(fmt.Sprintf("cpu: Step on %v core %d", c.State, c.ID))
	}
	in := p.Code[c.PC]
	if in.Op == isa.ASSOCADDR && !c.AssocEnabled {
		// Not part of the baseline binary: skip for free.
		c.PC++
		return
	}
	c.accL1I++
	c.Instrs++
	next := c.PC + 1

	switch {
	case in.Op == isa.NOP:
		c.quarters++

	case in.Op.IsALU():
		res := isa.EvalALU(in.Op, c.Regs[in.Rs], c.Regs[in.Rt], c.Regs[in.Rd], in.Imm)
		if in.Rd != 0 {
			c.Regs[in.Rd] = res
		}
		if in.Op.IsFloat() {
			c.accFloat++
		} else {
			c.accInt++
		}
		if tr != nil {
			tr.OnALU(c.ID, in)
		}
		c.quarters++

	case in.Op == isa.LD:
		addr := c.Regs[in.Rs] + in.Imm
		val, lat := m.Load(c.ID, addr)
		if in.Rd != 0 {
			c.Regs[in.Rd] = val
		}
		if tr != nil {
			tr.OnLoad(c.ID, in.Rd, val)
		}
		c.quarters += lat * qPerCycle

	case in.Op == isa.ST:
		addr := c.Regs[in.Rs] + in.Imm
		old, first, lat := m.Store(c.ID, addr, c.Regs[in.Rt])
		c.quarters += lat * qPerCycle
		if first && hooks != nil {
			c.quarters += hooks.FirstStore(c.ID, addr, old) * qPerCycle
		}
		c.lastStoreAddr = addr
		c.lastStoreReg = in.Rt

	case in.Op == isa.ASSOCADDR:
		// Validated to pair with the preceding store: executes
		// atomically with it (paper §III-A). Modelled after a store
		// to L1-D (paper §IV).
		c.accL1D++
		c.quarters++
		if hooks != nil && tr != nil {
			c.quarters += hooks.Assoc(c.ID, c.PC, c.lastStoreAddr, tr.Recipe(c.ID, c.lastStoreReg)) * qPerCycle
		}

	case in.Op.IsBranch():
		if isa.BranchTaken(in.Op, c.Regs[in.Rs], c.Regs[in.Rt]) {
			next = int(in.Imm)
		}
		c.quarters++

	case in.Op == isa.BARRIER:
		// Clock first, then the transition: OnState observers read the
		// core's clock inclusive of the barrier instruction's own cycle
		// (the sim scheduler's incremental barrier-time aggregate relies
		// on this).
		c.quarters++
		c.SetState(AtBarrier)

	case in.Op == isa.HALT:
		c.quarters++
		c.SetState(Halted)

	default:
		panic(fmt.Sprintf("cpu: unhandled op %v at pc %d", in.Op, c.PC))
	}
	c.PC = next
}

// FlushAccounting drains the shadow counters into meter. The scheduler
// calls it once per executed quantum (and defensively before reading
// results), turning one meter call per retired instruction into one per
// quantum while keeping every count exactly equal.
//
//acr:noalloc
func (c *Core) FlushAccounting(meter *energy.Meter) {
	if c.accL1I != 0 {
		meter.Add(energy.L1IAccess, c.accL1I)
		c.accL1I = 0
	}
	if c.accInt != 0 {
		meter.Add(energy.IntOp, c.accInt)
		c.accInt = 0
	}
	if c.accFloat != 0 {
		meter.Add(energy.FloatOp, c.accFloat)
		c.accFloat = 0
	}
	if c.accL1D != 0 {
		meter.Add(energy.L1DAccess, c.accL1D)
		c.accL1D = 0
	}
}
