package cpu

import (
	"testing"

	"acr/internal/analysis"
	"acr/internal/energy"
	"acr/internal/isa"
	"acr/internal/mem"
	"acr/internal/prog"
)

// dispatchKernel is a single-core kernel with the simulator's common op
// mix — short ALU runs, a load/store pair, and a backward branch — sized
// so one full execution dominates any setup cost.
func dispatchKernel(iters int) *prog.Program {
	b := prog.New("dispatch")
	base := b.Data(64)
	b.Li(1, base)
	b.Li(4, 64)
	b.LoopConst(20, 21, int64(iters), func() {
		b.Loop(2, 4, func() {
			b.Op3(isa.ADD, 5, 1, 2)
			b.Ld(3, 5, 0)
			b.OpI(isa.SHRI, 3, 3, 1)
			b.OpI(isa.ADDI, 3, 3, 3)
			b.Op3(isa.XOR, 6, 3, 2)
			b.St(6, 5, 0)
		})
	})
	b.Halt()
	return b.MustBuild()
}

func dispatchSetup(tb testing.TB, p *prog.Program) (*Core, *mem.System) {
	tb.Helper()
	meter := energy.NewMeter(nil)
	sys := mem.MustNewSystem(mem.DefaultConfig(), 1, p.DataWords, meter)
	c := New(0, p.Entry, 1)
	return c, sys
}

func dispatchRunner(tb testing.TB, p *prog.Program, sys *mem.System) *BlockRunner {
	tb.Helper()
	table, err := analysis.BuildBlockTable(p.Code, p.Entry)
	if err != nil {
		tb.Fatalf("BuildBlockTable: %v", err)
	}
	r := NewBlockRunner(p, table, sys, nil, nil, false)
	if r == nil {
		tb.Fatal("NewBlockRunner returned nil")
	}
	return r
}

const dispatchBudget = int64(1) << 40

// BenchmarkStepDispatch measures the per-instruction dispatch cost of the
// three execution regimes: the interpreter (Step per op), the compiled
// engine driven with an unbounded quantum (pure threaded-code speed), and
// the compiled engine driven one cycle at a time (the quantum length the
// multi-core scheduler typically grants, so entry/exit bookkeeping shows
// up). The ns/instr metric is the comparable number.
func BenchmarkStepDispatch(b *testing.B) {
	p := dispatchKernel(50)

	run := func(b *testing.B, exec func(c *Core, sys *mem.System) int64) {
		var instrs int64
		for i := 0; i < b.N; i++ {
			c, sys := dispatchSetup(b, p)
			instrs = exec(c, sys)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs*int64(b.N)), "ns/instr")
	}

	b.Run("interp", func(b *testing.B) {
		run(b, func(c *Core, sys *mem.System) int64 {
			for c.State == Running {
				c.Step(p, sys, nil, nil)
			}
			return c.Instrs
		})
	})
	b.Run("compiled", func(b *testing.B) {
		run(b, func(c *Core, sys *mem.System) int64 {
			r := dispatchRunner(b, p, sys)
			r.Run(c, unboundedCycles, dispatchBudget)
			return c.Instrs
		})
	})
	b.Run("compiled-quantum", func(b *testing.B) {
		run(b, func(c *Core, sys *mem.System) int64 {
			r := dispatchRunner(b, p, sys)
			for c.State == Running {
				r.Run(c, c.Cycles()+1, dispatchBudget)
			}
			return c.Instrs
		})
	})
}

const unboundedCycles = int64(^uint64(0)>>1) / qPerCycle

// TestCompiledDispatchAllocBudget pins the compiled engine's hot path to
// zero allocations: once a program's blocks are compiled, executing them
// must not allocate, or quantum-rate garbage would dominate long runs.
func TestCompiledDispatchAllocBudget(t *testing.T) {
	p := dispatchKernel(2)
	c, sys := dispatchSetup(t, p)
	r := dispatchRunner(t, p, sys)
	// Warm run: compiles every block.
	r.Run(c, unboundedCycles, dispatchBudget)

	allocs := testing.AllocsPerRun(5, func() {
		c2 := New(0, p.Entry, 1)
		r.Run(c2, unboundedCycles, dispatchBudget)
	})
	// The probe body allocates the fresh core; the engine itself must
	// add nothing.
	if allocs > 1 {
		t.Fatalf("compiled run allocates %.1f objects/run, want ≤ 1 (the probe's own core)", allocs)
	}
}
