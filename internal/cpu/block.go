// Block-compilation execution engine: basic blocks of the program are
// compiled once into flat streams of decoded micro-ops (threaded code) and
// then executed without per-instruction fetch/decode dispatch. The engine
// is a pure speed seam — every architectural effect, energy count, hook
// invocation and its order, and clock advance is bit-identical to running
// cpu.Core.Step per instruction. The contract is enforced structurally
// (each compiled op is derived from the corresponding Step case, ALU
// semantics come from the isa.ALUFn table proven equivalent to
// isa.EvalALU) and empirically (the sim package's compile fuzz oracle).
//
// Compilation model. A compiled block holds one micro-op per instruction:
//
//   - most ops (ALU, NOP, disabled-ASSOCADDR skips, loads and stores
//     without observers, branches and jumps) decode at compile time into
//     16-byte micro-ops — operands register-indexed, immediates
//     pre-transformed (LUI shifted, shift counts masked, branch targets
//     block-relative), r0-discards lowered to accounting-only kinds. The
//     runner executes them through one compact switch with
//     clock/energy/instruction counts accumulated in locals and flushed
//     on exit; counts are commutative, so batching the flush leaves
//     every total bit-identical. A taken branch whose target lies inside
//     the same block threads directly to that offset; other targets
//     return to the outer loop.
//   - observed ops (LD with the slice tracker on, ST with store hooks
//     installed, tracked ALU, enabled-ASSOCADDR) also decode into
//     micro-ops: the tracker, hook and AddrMap interfaces only receive
//     values — never the core or its clock — so the observer call sites
//     inline into the switch without breaking the local-accumulator
//     discipline.
//   - dyn ops — BARRIER and HALT (scheduling-state transitions) — are
//     closures referenced from the stream that account for themselves
//     through the core, with the batched clock synced across the call.
//
// The quantum bound and step budget are checked before every op, exactly
// where the interpreter loop checks them.
//
// Blocks compile lazily on first execution into a per-program cache; a
// block the compiler refuses (unknown op, or the test deny hook) deopts:
// the runner retires its instructions through Core.Step instead, one at a
// time, under the same outer loop. Speculative rounds (SpecStep) and any
// path outside the serial scheduler never enter the engine at all — those
// are deopt-by-design at the sim layer.
package cpu

import (
	"acr/internal/isa"
	"acr/internal/mem"
	"acr/internal/prog"
	"acr/internal/slice"
)

// CompileStats counts block-engine activity. The counts are engine
// diagnostics like sim.ParallelStats — they are deliberately not part of
// the architectural result, which must be bit-identical with the engine
// off.
type CompileStats struct {
	// Blocks is the number of basic blocks compiled (cache fills).
	Blocks int64
	// BlockRuns counts block transitions: table lookups that landed on a
	// compiled block. Consecutive quanta inside one block count once.
	BlockRuns int64
	// CompiledInstrs counts instructions retired through compiled code.
	CompiledInstrs int64
	// InterpSteps counts instructions retired through the interpreter
	// deopt path while the engine was on.
	InterpSteps int64
	// Deopts counts blocks the compiler refused.
	Deopts int64
}

// microOp is one instruction decoded at compile time into a 16-byte
// entry: operands register-indexed, immediates pre-transformed (LUI
// shifted, shift counts masked), r0-discards lowered to accounting-only
// kinds, dyn ops carrying their closure index in imm.
type microOp struct {
	imm              int64
	kind, rd, rs, rt uint8
}

// Micro-op kinds. Only exact (integer) operations get their own kind;
// all floating point goes through mkFnF, which dispatches the op's
// shared isa.ALUFn table entry so that NaN payloads stay bit-identical
// across engines (see isa.EvalALU). The kind encodes the accounting
// class: mkSkip charges nothing, mkNop charges a quarter and a fetch,
// every other fixed kind additionally charges one int (default) or
// float (mkDropF/mkFnF) ALU energy event, and mkDyn ops account for
// themselves inside their closures.
const (
	mkDyn uint8 = iota
	mkSkip
	mkNop
	mkADD
	mkSUB
	mkMUL
	mkDIV
	mkREM
	mkAND
	mkOR
	mkXOR
	mkSHL
	mkSHR
	mkSLT
	mkADDI
	mkMULI
	mkANDI
	mkORI
	mkXORI
	mkSHLI
	mkSHRI
	mkLI
	mkMOV
	mkDropI // integer ALU writing r0: accounting only
	mkDropF // float ALU writing r0: accounting only
	mkFnI   // integer-class table dispatch (conversion/compare tail)
	mkFnF   // float-class table dispatch; imm holds the isa.Op
	mkLD    // load, tracker off; imm holds the address offset
	mkST    // store, hooks off; imm holds the address offset
	mkTrI   // integer ALU, tracker on: refetches the instr for OnALU
	mkTrF   // float ALU, tracker on
	mkTrLD  // load surfacing to the tracker; imm holds the offset
	mkHkST  // store with first-store hooks; imm holds the offset
	mkAssoc // enabled ASSOC-ADDR with hooks and tracker installed
	mkJMP   // unconditional jump; imm holds target-start
	mkBEQ   // conditional branches; imm holds target-start
	mkBNE
	mkBLT
	mkBGE
)

// compiledBlock is the threaded-code form of one basic block:
// micro[pc-start] is the decoded op at pc, and dyn holds the closures
// that mkDyn entries index.
type compiledBlock struct {
	start int
	micro []microOp
	dyn   []func(c *Core) int
}

// BlockRunner executes a program through its compiled-block cache for one
// machine configuration. The memory system, tracker and hooks are captured
// at construction so compilation can specialise on their presence; the
// cores only pass through Run. The runner is not safe for concurrent use —
// the sim layer only drives it from the serial scheduler's goroutine.
type BlockRunner struct {
	prog  *prog.Program
	code  []isa.Instr
	table *prog.BlockTable
	sys   *mem.System
	tr    *slice.Tracker
	hooks Hooks
	assoc bool

	blocks []*compiledBlock
	tried  []bool
	stats  CompileStats
	// lastB caches the most recently executed block across Run calls:
	// quanta are short and loop-shaped code re-enters the same block on
	// most of them, and compiled blocks depend only on the pc, never on
	// which core executes, so the cache is valid across cores.
	lastB *compiledBlock

	// deny, when non-nil, vetoes compilation of blocks whose span it
	// matches: the test hook that forces the interpreter deopt path.
	deny func(start, end int) bool
}

// NewBlockRunner builds a runner for p over the given block table and
// machine substrates. tr and hooks may be nil, exactly as for Step;
// assocEnabled must match Core.AssocEnabled on every core the runner will
// execute. It returns nil if the table does not tile p's code — the caller
// falls back to the interpreter.
func NewBlockRunner(p *prog.Program, table *prog.BlockTable, sys *mem.System, tr *slice.Tracker, hooks Hooks, assocEnabled bool) *BlockRunner {
	if table == nil || !table.Check(len(p.Code)) {
		return nil
	}
	return &BlockRunner{
		prog:   p,
		code:   p.Code,
		table:  table,
		sys:    sys,
		tr:     tr,
		hooks:  hooks,
		assoc:  assocEnabled,
		blocks: make([]*compiledBlock, len(table.Spans)),
		tried:  make([]bool, len(table.Spans)),
	}
}

// Stats returns the engine counters accumulated so far.
func (r *BlockRunner) Stats() CompileStats { return r.stats }

// SetDeny installs the compile veto used by tests to force deopts.
func (r *BlockRunner) SetDeny(deny func(start, end int) bool) { r.deny = deny }

// Run executes core c until it leaves the Running state, its clock reaches
// bound (exclusive, in cycles, checked before each op exactly like the
// interpreter loop's c.Cycles() < bound), or budget instructions have
// retired. It returns the number of instructions retired, which the caller
// adds to its step count; energy stays in the core's shadow counters until
// the caller flushes, as with Step.
//
//acr:noalloc
func (r *BlockRunner) Run(c *Core, bound, budget int64) (steps int64) {
	const maxInt64 = int64(^uint64(0) >> 1)
	qb := maxInt64
	if bound < qb/qPerCycle {
		// quarters < bound*qPerCycle  ⟺  Cycles() < bound, exactly,
		// because both sides are non-negative.
		qb = bound * qPerCycle
	}
	// Clock, energy and instruction counts accumulate in locals and flush
	// to the core once on exit — counts are commutative, so totals stay
	// bit-identical, and they survive block transitions within the
	// quantum. Around each dyn op or deopt Step the clock syncs both
	// ways: those paths charge their dynamic latency (and their observers
	// read the clock) through the core. Bound and budget are checked
	// before every op, exactly the interpreter's pre-op checks.
	//
	// aInstr counts accounted micro ops (dyn ops, deopt steps and skips
	// excluded). aNop counts those with no ALU energy event (NOP, loads,
	// stores, control transfers) and aFloat the float-class ops, so the
	// integer ALU energy count is derived as the remainder at flush.
	q := c.quarters
	pc := c.PC
	regs := &c.Regs
	code := r.code
	var aInstr, aNop, aFloat, interp int64
	b := r.lastB
	var mos []microOp
	if b != nil {
		mos = b.micro
	}
	off := 0
	for c.State == Running && q < qb && steps < budget {
		if b == nil || pc < b.start || pc-b.start >= len(mos) {
			if pc < 0 || pc >= len(r.code) {
				// Fell off the code image: materialise the core state and
				// reproduce the interpreter's out-of-range panic rather
				// than inventing a new failure mode.
				c.PC, c.quarters = pc, q
				c.Step(r.prog, r.sys, r.tr, r.hooks)
			}
			if b = r.blockAt(pc); b == nil {
				// Deopt: this block runs interpreted, one op per outer
				// check, through the materialised core state.
				c.PC, c.quarters = pc, q
				c.Step(r.prog, r.sys, r.tr, r.hooks)
				pc, q = c.PC, c.quarters
				steps++
				interp++
				continue
			}
			mos = b.micro
			r.lastB = b
			r.stats.BlockRuns++
		}
		off = pc - b.start
	block:
		for off < len(mos) && q < qb && steps < budget {
			mo := &mos[off]
			rd := mo.rd & (isa.NumRegs - 1)
			rs := mo.rs & (isa.NumRegs - 1)
			rt := mo.rt & (isa.NumRegs - 1)
			switch mo.kind {
			case mkDyn:
				c.quarters = q
				next := b.dyn[mo.imm](c)
				q = c.quarters
				steps++
				noff := next - b.start
				if c.State != Running || noff < 0 || noff >= len(mos) {
					// HALT/BARRIER retired, or control left the block; the
					// outer loop re-enters at the target block's head.
					off = noff
					break block
				}
				// Fall-through or an in-block branch target (the tight-loop
				// back edge): thread directly.
				off = noff
				continue
			case mkSkip:
				// Disabled ASSOCADDR: consumes a step, charges nothing.
				steps++
				off++
				continue
			case mkNop:
				aNop++
			case mkADD:
				regs[rd] = regs[rs] + regs[rt]
			case mkSUB:
				regs[rd] = regs[rs] - regs[rt]
			case mkMUL:
				regs[rd] = regs[rs] * regs[rt]
			case mkDIV:
				if regs[rt] == 0 {
					regs[rd] = 0
				} else {
					regs[rd] = regs[rs] / regs[rt]
				}
			case mkREM:
				if regs[rt] == 0 {
					regs[rd] = 0
				} else {
					regs[rd] = regs[rs] % regs[rt]
				}
			case mkAND:
				regs[rd] = regs[rs] & regs[rt]
			case mkOR:
				regs[rd] = regs[rs] | regs[rt]
			case mkXOR:
				regs[rd] = regs[rs] ^ regs[rt]
			case mkSHL:
				regs[rd] = regs[rs] << (uint64(regs[rt]) & 63)
			case mkSHR:
				regs[rd] = int64(uint64(regs[rs]) >> (uint64(regs[rt]) & 63))
			case mkSLT:
				if regs[rs] < regs[rt] {
					regs[rd] = 1
				} else {
					regs[rd] = 0
				}
			case mkADDI:
				regs[rd] = regs[rs] + mo.imm
			case mkMULI:
				regs[rd] = regs[rs] * mo.imm
			case mkANDI:
				regs[rd] = regs[rs] & mo.imm
			case mkORI:
				regs[rd] = regs[rs] | mo.imm
			case mkXORI:
				regs[rd] = regs[rs] ^ mo.imm
			case mkSHLI:
				regs[rd] = regs[rs] << uint64(mo.imm)
			case mkSHRI:
				regs[rd] = int64(uint64(regs[rs]) >> uint64(mo.imm))
			case mkLI:
				regs[rd] = mo.imm
			case mkMOV:
				regs[rd] = regs[rs]
			case mkDropI:
				// Integer ALU writing r0: the write is discarded, the
				// accounting is not.
			case mkDropF:
				aFloat++
			case mkFnI:
				regs[rd] = isa.ALUFn(isa.Op(mo.imm))(regs[rs], regs[rt], regs[rd], 0) //acr:spec-ok pure table entry, written once at init
			case mkFnF:
				regs[rd] = isa.ALUFn(isa.Op(mo.imm))(regs[rs], regs[rt], regs[rd], 0) //acr:spec-ok pure table entry, written once at init
				aFloat++
			case mkLD:
				// Load with the tracker off: the memory system never reads the
				// core clock, so the local-q discipline holds across the call.
				val, lat := r.sys.Load(c.ID, regs[rs]+mo.imm)
				if rd != 0 {
					regs[rd] = val
				}
				q += lat * qPerCycle
				aInstr++
				aNop++
				steps++
				off++
				continue
			case mkST:
				addr := regs[rs] + mo.imm
				_, _, lat := r.sys.Store(c.ID, addr, regs[rt])
				q += lat * qPerCycle
				c.lastStoreAddr = addr
				c.lastStoreReg = isa.Reg(rt)
				aInstr++
				aNop++
				steps++
				off++
				continue
			case mkTrI:
				// Tracked ALU refetches the original instruction: OnALU
				// observes the full encoding, and the refetch keeps the
				// micro-op's imm free. The tracker only receives values, so
				// the batched clock needs no sync.
				in := code[b.start+off]
				if rd != 0 {
					regs[rd] = isa.ALUFn(in.Op)(regs[rs], regs[rt], regs[rd], in.Imm) //acr:spec-ok pure table entry, written once at init
				}
				r.tr.OnALU(c.ID, in)
			case mkTrF:
				in := code[b.start+off]
				if rd != 0 {
					regs[rd] = isa.ALUFn(in.Op)(regs[rs], regs[rt], regs[rd], in.Imm) //acr:spec-ok pure table entry, written once at init
				}
				r.tr.OnALU(c.ID, in)
				aFloat++
			case mkTrLD:
				val, lat := r.sys.Load(c.ID, regs[rs]+mo.imm)
				if rd != 0 {
					regs[rd] = val
				}
				r.tr.OnLoad(c.ID, isa.Reg(rd), val)
				q += lat * qPerCycle
				aInstr++
				aNop++
				steps++
				off++
				continue
			case mkHkST:
				addr := regs[rs] + mo.imm
				old, first, lat := r.sys.Store(c.ID, addr, regs[rt])
				q += lat * qPerCycle
				if first {
					q += r.hooks.FirstStore(c.ID, addr, old) * qPerCycle
				}
				c.lastStoreAddr = addr
				c.lastStoreReg = isa.Reg(rt)
				aInstr++
				aNop++
				steps++
				off++
				continue
			case mkAssoc:
				c.accL1D++
				q++
				q += r.hooks.Assoc(c.ID, b.start+off, c.lastStoreAddr,
					r.tr.Recipe(c.ID, c.lastStoreReg)) * qPerCycle
				aInstr++
				aNop++
				steps++
				off++
				continue
			case mkJMP:
				q++
				aInstr++
				aNop++
				steps++
				off = int(mo.imm)
				if off < 0 || off >= len(mos) {
					break block
				}
				continue
			case mkBEQ:
				q++
				aInstr++
				aNop++
				steps++
				if regs[rs] == regs[rt] {
					off = int(mo.imm)
					if off < 0 || off >= len(mos) {
						break block
					}
					continue
				}
				off++
				continue
			case mkBNE:
				q++
				aInstr++
				aNop++
				steps++
				if regs[rs] != regs[rt] {
					off = int(mo.imm)
					if off < 0 || off >= len(mos) {
						break block
					}
					continue
				}
				off++
				continue
			case mkBLT:
				q++
				aInstr++
				aNop++
				steps++
				if regs[rs] < regs[rt] {
					off = int(mo.imm)
					if off < 0 || off >= len(mos) {
						break block
					}
					continue
				}
				off++
				continue
			default: // mkBGE
				q++
				aInstr++
				aNop++
				steps++
				if regs[rs] >= regs[rt] {
					off = int(mo.imm)
					if off < 0 || off >= len(mos) {
						break block
					}
					continue
				}
				off++
				continue
			}
			// Shared fixed-op accounting: one quarter, one fetch.
			q++
			aInstr++
			steps++
			off++
		}
		pc = b.start + off
	}
	c.PC = pc
	c.quarters = q
	if aInstr != 0 {
		c.Instrs += aInstr
		c.accL1I += uint64(aInstr)
		c.accInt += uint64(aInstr - aNop - aFloat)
		c.accFloat += uint64(aFloat)
	}
	r.stats.CompiledInstrs += steps - interp
	if interp != 0 {
		r.stats.InterpSteps += interp
	}
	return steps
}

// blockAt returns the compiled block containing pc, compiling it on first
// use, or nil when the block is deopted to the interpreter.
func (r *BlockRunner) blockAt(pc int) *compiledBlock {
	id := r.table.BlockOf[pc]
	if b := r.blocks[id]; b != nil {
		return b
	}
	if r.tried[id] {
		return nil
	}
	r.tried[id] = true
	sp := r.table.Spans[id]
	if r.deny != nil && r.deny(sp.Start, sp.End) {
		r.stats.Deopts++
		return nil
	}
	b := r.compile(sp.Start, sp.End)
	if b == nil {
		r.stats.Deopts++
		return nil
	}
	r.stats.Blocks++
	r.blocks[id] = b
	return b
}

// compile translates code [start, end) into a compiled block, or returns
// nil if any op defeats the compiler (the deopt path takes over).
func (r *BlockRunner) compile(start, end int) *compiledBlock {
	b := &compiledBlock{
		start: start,
		micro: make([]microOp, end-start),
	}
	for pc := start; pc < end; pc++ {
		in := r.code[pc]
		switch {
		case in.Op == isa.NOP:
			b.micro[pc-start] = microOp{kind: mkNop}
		case in.Op == isa.ASSOCADDR && !r.assoc:
			// Not part of the baseline binary: a free skip that still
			// consumes one scheduler step, like the interpreter's early
			// return.
			b.micro[pc-start] = microOp{kind: mkSkip}
		case in.Op.IsALU() && r.tr == nil:
			b.micro[pc-start] = microALU(in)
		case in.Op.IsALU():
			// Tracker on: every ALU op surfaces to the slice tracker. The
			// micro-op keeps the operand indices for the register file; the
			// runner refetches the instruction itself for OnALU.
			k := mkTrI
			if in.Op.IsFloat() {
				k = mkTrF
			}
			b.micro[pc-start] = microOp{kind: k, rd: uint8(in.Rd), rs: uint8(in.Rs), rt: uint8(in.Rt)}
		case in.Op == isa.LD && r.tr == nil:
			b.micro[pc-start] = microOp{kind: mkLD, rd: uint8(in.Rd), rs: uint8(in.Rs), imm: in.Imm}
		case in.Op == isa.LD:
			b.micro[pc-start] = microOp{kind: mkTrLD, rd: uint8(in.Rd), rs: uint8(in.Rs), imm: in.Imm}
		case in.Op == isa.ST && r.hooks == nil:
			b.micro[pc-start] = microOp{kind: mkST, rs: uint8(in.Rs), rt: uint8(in.Rt), imm: in.Imm}
		case in.Op == isa.ST:
			b.micro[pc-start] = microOp{kind: mkHkST, rs: uint8(in.Rs), rt: uint8(in.Rt), imm: in.Imm}
		case in.Op == isa.ASSOCADDR && r.hooks != nil && r.tr != nil:
			b.micro[pc-start] = microOp{kind: mkAssoc}
		case in.Op == isa.JMP:
			// Control ops store their target as a block-relative offset;
			// out-of-block offsets exit the runner, which re-enters at the
			// target block.
			b.micro[pc-start] = microOp{kind: mkJMP, imm: in.Imm - int64(start)}
		case in.Op == isa.BEQ, in.Op == isa.BNE, in.Op == isa.BLT, in.Op == isa.BGE:
			var k uint8
			switch in.Op {
			case isa.BEQ:
				k = mkBEQ
			case isa.BNE:
				k = mkBNE
			case isa.BLT:
				k = mkBLT
			default:
				k = mkBGE
			}
			b.micro[pc-start] = microOp{kind: k, rs: uint8(in.Rs), rt: uint8(in.Rt), imm: in.Imm - int64(start)}
		default:
			fn := r.compileDyn(pc, in)
			if fn == nil {
				return nil
			}
			b.micro[pc-start] = microOp{kind: mkDyn, imm: int64(len(b.dyn))}
			b.dyn = append(b.dyn, fn)
		}
	}
	return b
}

// microALU decodes one ALU instruction into its micro-op: integer
// arithmetic gets a dedicated exact kind with immediates pre-transformed;
// floating point and the conversion/compare tail keep the shared-table
// dispatch (mkFnI/mkFnF) so NaN payloads stay bit-identical. A write to
// r0 is architecturally discarded and the computation is pure and
// unobserved, so the op lowers to its accounting class alone.
func microALU(in isa.Instr) microOp {
	if in.Rd == 0 {
		if in.Op.IsFloat() {
			return microOp{kind: mkDropF}
		}
		return microOp{kind: mkDropI}
	}
	mo := microOp{rd: uint8(in.Rd), rs: uint8(in.Rs), rt: uint8(in.Rt), imm: in.Imm}
	switch in.Op {
	case isa.ADD:
		mo.kind = mkADD
	case isa.SUB:
		mo.kind = mkSUB
	case isa.MUL:
		mo.kind = mkMUL
	case isa.DIV:
		mo.kind = mkDIV
	case isa.REM:
		mo.kind = mkREM
	case isa.AND:
		mo.kind = mkAND
	case isa.OR:
		mo.kind = mkOR
	case isa.XOR:
		mo.kind = mkXOR
	case isa.SHL:
		mo.kind = mkSHL
	case isa.SHR:
		mo.kind = mkSHR
	case isa.SLT:
		mo.kind = mkSLT
	case isa.ADDI:
		mo.kind = mkADDI
	case isa.MULI:
		mo.kind = mkMULI
	case isa.ANDI:
		mo.kind = mkANDI
	case isa.ORI:
		mo.kind = mkORI
	case isa.XORI:
		mo.kind = mkXORI
	case isa.SHLI:
		mo.kind, mo.imm = mkSHLI, int64(uint64(in.Imm)&63)
	case isa.SHRI:
		mo.kind, mo.imm = mkSHRI, int64(uint64(in.Imm)&63)
	case isa.LUI:
		mo.kind, mo.imm = mkLI, in.Imm<<32
	case isa.LI:
		mo.kind = mkLI
	case isa.MOV:
		mo.kind = mkMOV
	default:
		// Float, conversion and compare ops: shared-table dispatch. None
		// of them reads the immediate field, which instead carries the
		// op for the table lookup.
		mo.kind, mo.imm = mkFnI, int64(in.Op)
		if in.Op.IsFloat() {
			mo.kind = mkFnF
		}
	}
	return mo
}

// compileDyn closes over one scheduling-state op — BARRIER, HALT, or an
// enabled ASSOC-ADDR with its observers absent (cpu-level tests; sim always
// installs both). It returns nil for ops the compiler does not handle.
func (r *BlockRunner) compileDyn(pc int, in isa.Instr) func(c *Core) int {
	next := pc + 1
	switch in.Op {
	case isa.ASSOCADDR:
		// Enabled but unobserved (hooks or tracker nil): charges like a
		// store to L1-D with no AddrMap work.
		return func(c *Core) int {
			c.accL1I++
			c.Instrs++
			c.accL1D++
			c.quarters++
			return next
		}
	case isa.BARRIER:
		return func(c *Core) int {
			c.accL1I++
			c.Instrs++
			// Clock before the transition, exactly like Step: OnState
			// observers read the clock inclusive of the barrier's cycle.
			c.quarters++
			c.SetState(AtBarrier)
			return next
		}
	case isa.HALT:
		return func(c *Core) int {
			c.accL1I++
			c.Instrs++
			c.quarters++
			c.SetState(Halted)
			return next
		}
	}
	return nil
}
