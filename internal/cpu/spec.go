package cpu

import (
	"fmt"

	"acr/internal/isa"
	"acr/internal/mem"
	"acr/internal/prog"
	"acr/internal/slice"
)

// SpecState is the rollback snapshot of everything SpecStep mutates on a
// Core. Saving it before a speculative quantum and restoring it on abort
// returns the core bit-identically to the round start (speculative
// execution touches nothing else on the core: hooks are deferred and the
// memory side lives behind the mem.SpecView).
type SpecState struct {
	regs     [isa.NumRegs]int64
	pc       int
	state    State
	quarters int64
	instrs   int64

	lastStoreAddr int64
	lastStoreReg  isa.Reg

	accL1I, accInt, accFloat, accL1D uint64
}

// SaveSpec snapshots the core into s.
//
//acr:spec-safe
func (c *Core) SaveSpec(s *SpecState) {
	s.regs = c.Regs
	s.pc = c.PC
	s.state = c.State
	s.quarters = c.quarters
	s.instrs = c.Instrs
	s.lastStoreAddr = c.lastStoreAddr
	s.lastStoreReg = c.lastStoreReg
	s.accL1I, s.accInt, s.accFloat, s.accL1D = c.accL1I, c.accInt, c.accFloat, c.accL1D
}

// RestoreSpec restores the core from s. The State field is written
// directly, not through SetState: speculative execution fired no OnState
// notification (SpecStep changes State silently), so reverting it silently
// keeps observers exactly balanced.
//
//acr:spec-safe
func (c *Core) RestoreSpec(s *SpecState) {
	c.Regs = s.regs
	c.PC = s.pc
	c.State = s.state
	c.quarters = s.quarters
	c.Instrs = s.instrs
	c.lastStoreAddr = s.lastStoreAddr
	c.lastStoreReg = s.lastStoreReg
	c.accL1I, c.accInt, c.accFloat, c.accL1D = s.accL1I, s.accInt, s.accFloat, s.accL1D
}

// State returns the scheduling state the snapshot captured (the engine
// replays the pre→post transition through SetState on commit).
func (s *SpecState) SavedState() State { return s.state }

// SavedInstrs returns the retired-instruction count the snapshot captured
// (the engine charges the committed delta against the step budget).
func (s *SpecState) SavedInstrs() int64 { return s.instrs }

// SpecHooks is the speculative counterpart of Hooks. Instead of applying
// checkpoint effects, implementations predict the stall a hook would
// return (pure, against round-frozen state) and record the event for
// replay through the real Hooks at commit, in the serial merge order.
// cycle is the core-local cycle at which the instruction issuing the event
// started — the first component of the engine's deterministic merge key.
//
//acr:spec-safe
type SpecHooks interface {
	SpecFirstStore(core int, cycle int64, addr, old int64) int64
	SpecAssoc(core int, cycle int64, pc int, addr int64, recipe slice.Ref) int64
}

// SpecStep executes one instruction speculatively: identical to Step in
// every architectural and timing respect, except that memory goes through
// the core's SpecView, checkpoint hooks are predicted-and-recorded via
// SpecHooks, and scheduling-state changes (BARRIER/HALT) are written
// directly instead of through SetState — OnState observers are shared
// across cores, so notification is deferred to the commit step on the
// machine's goroutine.
//
// SpecStep runs on a worker goroutine. It touches only the core itself,
// the core-private SpecView and tracker shard, and frozen shared state;
// that confinement is the data-race-freedom argument for the parallel
// engine.
//
//acr:spec-safe
//acr:noalloc
func (c *Core) SpecStep(p *prog.Program, sv *mem.SpecView, tr *slice.Tracker, hooks SpecHooks) {
	if c.State != Running {
		panic(fmt.Sprintf("cpu: SpecStep on %v core %d", c.State, c.ID))
	}
	start := c.quarters / qPerCycle
	in := p.Code[c.PC]
	if in.Op == isa.ASSOCADDR && !c.AssocEnabled {
		c.PC++
		return
	}
	c.accL1I++
	c.Instrs++
	next := c.PC + 1

	switch {
	case in.Op == isa.NOP:
		c.quarters++

	case in.Op.IsALU():
		res := isa.EvalALU(in.Op, c.Regs[in.Rs], c.Regs[in.Rt], c.Regs[in.Rd], in.Imm)
		if in.Rd != 0 {
			c.Regs[in.Rd] = res
		}
		if in.Op.IsFloat() {
			c.accFloat++
		} else {
			c.accInt++
		}
		if tr != nil {
			tr.OnALU(c.ID, in)
		}
		c.quarters++

	case in.Op == isa.LD:
		addr := c.Regs[in.Rs] + in.Imm
		val, lat := sv.Load(addr)
		if in.Rd != 0 {
			c.Regs[in.Rd] = val
		}
		if tr != nil {
			tr.OnLoad(c.ID, in.Rd, val)
		}
		c.quarters += lat * qPerCycle

	case in.Op == isa.ST:
		addr := c.Regs[in.Rs] + in.Imm
		old, first, lat := sv.Store(addr, c.Regs[in.Rt])
		c.quarters += lat * qPerCycle
		if first && hooks != nil {
			c.quarters += hooks.SpecFirstStore(c.ID, start, addr, old) * qPerCycle
		}
		c.lastStoreAddr = addr
		c.lastStoreReg = in.Rt

	case in.Op == isa.ASSOCADDR:
		c.accL1D++
		c.quarters++
		if hooks != nil && tr != nil {
			sv.NoteAssoc(c.lastStoreAddr)
			c.quarters += hooks.SpecAssoc(c.ID, start, c.PC, c.lastStoreAddr, tr.Recipe(c.ID, c.lastStoreReg)) * qPerCycle
		}

	case in.Op.IsBranch():
		if isa.BranchTaken(in.Op, c.Regs[in.Rs], c.Regs[in.Rt]) {
			next = int(in.Imm)
		}
		c.quarters++

	case in.Op == isa.BARRIER:
		c.quarters++
		c.State = AtBarrier // silent; transition replayed at commit

	case in.Op == isa.HALT:
		c.quarters++
		c.State = Halted // silent; transition replayed at commit

	default:
		panic(fmt.Sprintf("cpu: unhandled op %v at pc %d", in.Op, c.PC))
	}
	c.PC = next
}
