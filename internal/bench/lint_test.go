package bench

import (
	"testing"

	"acr/internal/analysis"
	"acr/internal/workloads"
)

// TestAllWorkloadsLintClean is the guard behind the acrlint CI gate: every
// shipped kernel must produce zero static-analysis diagnostics at every
// shipped class and the thread counts the experiments use. A kernel change
// that introduces an uninitialised read, dead store, unreachable block or
// unterminated loop fails here before it can skew the paper's figures.
func TestAllWorkloadsLintClean(t *testing.T) {
	classes := []workloads.Class{workloads.ClassS, workloads.ClassW, workloads.ClassA}
	for _, bench := range workloads.All() {
		for _, class := range classes {
			for _, threads := range []int{4, 16} {
				p, err := bench.Build(threads, class)
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", bench.Name, class.Name, threads, err)
				}
				diags, err := analysis.Lint(p)
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", bench.Name, class.Name, threads, err)
				}
				for _, d := range diags {
					t.Errorf("%s/%s/%d: %s", bench.Name, class.Name, threads, d)
				}
			}
		}
	}
}
