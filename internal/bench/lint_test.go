package bench

import (
	"io"
	"testing"

	"acr/internal/analysis"
	"acr/internal/telemetry"
	"acr/internal/workloads"
)

// TestAllWorkloadsLintClean is the guard behind the acrlint CI gate: every
// shipped kernel must produce zero static-analysis diagnostics at every
// shipped class and the thread counts the experiments use. A kernel change
// that introduces an uninitialised read, dead store, unreachable block or
// unterminated loop fails here before it can skew the paper's figures.
func TestAllWorkloadsLintClean(t *testing.T) {
	classes := []workloads.Class{workloads.ClassS, workloads.ClassW, workloads.ClassA}
	for _, bench := range workloads.All() {
		for _, class := range classes {
			for _, threads := range []int{4, 8, 16} {
				p, err := bench.Build(threads, class)
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", bench.Name, class.Name, threads, err)
				}
				diags, err := analysis.Lint(p)
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", bench.Name, class.Name, threads, err)
				}
				for _, d := range diags {
					t.Errorf("%s/%s/%d: %s", bench.Name, class.Name, threads, d)
				}
			}
		}
	}
}

// TestInstrumentedRunsLintClean is the telemetry wing of the lint gate:
// attaching the full observability stack (metrics Collector + Chrome
// tracer) to a run must introduce no new static-analysis diagnostics on the
// executed kernel. The program is linted before and after an observed run;
// both passes must be clean and identical — probe wiring is one-way and
// never rewrites kernel code.
func TestInstrumentedRunsLintClean(t *testing.T) {
	const threads = 4
	r := NewRunner()
	p := Params{Threads: threads, Class: workloads.ClassS}
	for _, name := range []string{"is", "cg"} {
		bench, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		lint := func(label string) []analysis.Diag {
			prog, err := bench.Build(threads, p.Class)
			if err != nil {
				t.Fatalf("%s (%s): %v", name, label, err)
			}
			diags, err := analysis.Lint(prog)
			if err != nil {
				t.Fatalf("%s (%s): %v", name, label, err)
			}
			for _, d := range diags {
				t.Errorf("%s (%s): %s", name, label, d)
			}
			return diags
		}
		lint("before instrumented run")

		reg := telemetry.NewRegistry()
		col := telemetry.NewCollector(reg)
		tracer := telemetry.NewTracer(io.Discard, threads)
		res, err := r.RunObserved(name, p, ReCkptNE, col, tracer)
		if err != nil {
			t.Fatalf("%s: observed run: %v", name, err)
		}
		col.ObserveResult(res)
		if err := tracer.Close(); err != nil {
			t.Fatalf("%s: tracer: %v", name, err)
		}

		lint("after instrumented run")
	}
}
