package bench

import (
	"fmt"

	"acr/internal/fault"
	"acr/internal/mem"
	"acr/internal/sim"
	"acr/internal/stats"
)

// TableI renders the simulated architecture (paper Table I).
func TableI() *stats.Table {
	cfg := mem.DefaultConfig()
	t := &stats.Table{Title: "Table I: Simulated architecture", Cols: []string{"Parameter", "Value"}}
	t.AddRow("Technology node", "22nm")
	t.AddRow("Core", "1.09 GHz, 4-issue, in-order, 8 outstanding ld/st")
	t.AddRow("L1-I (LRU)", fmt.Sprintf("%dKB, %d-way, 3.66ns", cfg.L1I.SizeBytes>>10, cfg.L1I.Ways))
	t.AddRow("L1-D (LRU, WB)", fmt.Sprintf("%dKB, %d-way, 3.66ns", cfg.L1D.SizeBytes>>10, cfg.L1D.Ways))
	t.AddRow("L2 (LRU, WB)", fmt.Sprintf("%dKB, %d-way, 24.77ns", cfg.L2.SizeBytes>>10, cfg.L2.Ways))
	t.AddRow("Main Memory", fmt.Sprintf("120ns (%d cycles), 7.6 GB/s/controller, 1 contr. per %d cores",
		cfg.DRAMCycles, cfg.CoresPerController))
	return t
}

// Fig1 renders the relative component error rate across technology
// generations (paper Fig. 1, 8% degradation/bit/generation).
func Fig1(generations int) *stats.Table {
	t := &stats.Table{
		Title: "Fig. 1: Relative component error rate (8% degradation/bit/generation)",
		Cols:  []string{"Generation", "Relative error rate"},
	}
	for g := 0; g <= generations; g++ {
		t.AddRow(fmt.Sprintf("%d", g), fmt.Sprintf("%.2f", fault.RelativeErrorRate(g)))
	}
	return t
}

// overheads collects the percentage time/energy overhead of spec w.r.t.
// NoCkpt for each benchmark.
func (r *Runner) overheads(p Params, spec Spec, energy bool) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, name := range BenchNames() {
		base, err := r.Baseline(name, p)
		if err != nil {
			return nil, err
		}
		res, err := r.Run(name, p, spec)
		if err != nil {
			return nil, err
		}
		if energy {
			out[name] = stats.OverheadPct(res.EnergyPJ, base.EnergyPJ)
		} else {
			out[name] = stats.OverheadPct(float64(res.Cycles), float64(base.Cycles))
		}
	}
	return out, nil
}

// figOverheads builds Fig. 6 (time) or Fig. 7 (energy): the overhead of
// Ckpt_NE, Ckpt_E, ReCkpt_NE, ReCkpt_E w.r.t. NoCkpt, plus the reduction
// ReCkpt achieves over Ckpt.
func (r *Runner) figOverheads(p Params, energy bool) (*stats.Table, error) {
	kind, fig := "time", "Fig. 6"
	if energy {
		kind, fig = "energy", "Fig. 7"
	}
	t := &stats.Table{
		Title: fmt.Sprintf("%s: %% %s overhead of checkpointing and recovery (w.r.t. NoCkpt)", fig, kind),
		Cols: []string{"bench", "Ckpt_NE", "Ckpt_E", "ReCkpt_NE", "ReCkpt_E",
			"redNE%", "redE%"},
	}
	specs := []Spec{CkptNE, CkptE, ReCkptNE, ReCkptE}
	if err := r.warm(p, append([]Spec{NoCkpt}, specs...)...); err != nil {
		return nil, err
	}
	ovh := make([]map[string]float64, len(specs))
	for i, s := range specs {
		m, err := r.overheads(p, s, energy)
		if err != nil {
			return nil, err
		}
		ovh[i] = m
	}
	var redNE, redE []float64
	for _, name := range BenchNames() {
		rNE := stats.ReductionPct(ovh[0][name], ovh[2][name])
		rE := stats.ReductionPct(ovh[1][name], ovh[3][name])
		redNE = append(redNE, rNE)
		redE = append(redE, rE)
		t.AddRow(name,
			stats.Pct(ovh[0][name]), stats.Pct(ovh[1][name]),
			stats.Pct(ovh[2][name]), stats.Pct(ovh[3][name]),
			stats.Pct(rNE), stats.Pct(rE))
	}
	t.AddRow("avg", "", "", "", "", stats.Pct(stats.Mean(redNE)), stats.Pct(stats.Mean(redE)))
	t.AddNote("redNE/redE: %% reduction of the %s overhead by ReCkpt w.r.t. Ckpt (error-free / 1 error)", kind)
	return t, nil
}

// Fig6 reproduces the execution-time overhead figure.
func (r *Runner) Fig6(p Params) (*stats.Table, error) { return r.figOverheads(p, false) }

// Fig7 reproduces the energy overhead figure.
func (r *Runner) Fig7(p Params) (*stats.Table, error) { return r.figOverheads(p, true) }

// Fig8 reproduces the EDP reduction of ReCkpt_NE and ReCkpt_E w.r.t.
// Ckpt_NE and Ckpt_E.
func (r *Runner) Fig8(p Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Fig. 8: % EDP reduction under ReCkpt_NE and ReCkpt_E (w.r.t. Ckpt_NE / Ckpt_E)",
		Cols:  []string{"bench", "ReCkpt_NE", "ReCkpt_E"},
	}
	if err := r.warm(p, NoCkpt, CkptNE, ReCkptNE, CkptE, ReCkptE); err != nil {
		return nil, err
	}
	var ne, e []float64
	for _, name := range BenchNames() {
		rCkNE, err := r.Run(name, p, CkptNE)
		if err != nil {
			return nil, err
		}
		rReNE, err := r.Run(name, p, ReCkptNE)
		if err != nil {
			return nil, err
		}
		rCkE, err := r.Run(name, p, CkptE)
		if err != nil {
			return nil, err
		}
		rReE, err := r.Run(name, p, ReCkptE)
		if err != nil {
			return nil, err
		}
		vNE := stats.ReductionPct(rCkNE.EDP(), rReNE.EDP())
		vE := stats.ReductionPct(rCkE.EDP(), rReE.EDP())
		ne = append(ne, vNE)
		e = append(e, vE)
		t.AddRow(name, stats.Pct(vNE), stats.Pct(vE))
	}
	t.AddRow("avg", stats.Pct(stats.Mean(ne)), stats.Pct(stats.Mean(e)))
	return t, nil
}

// sizeReduction computes the Overall and Max checkpoint size reductions of
// a ReCkpt_NE run (paper Fig. 9 semantics): Overall compares total
// checkpointed volume; Max compares the largest single checkpoint, whose
// reduction bounds the memory footprint win because two checkpoints are
// retained (§V-C).
func sizeReduction(res sim.Result) (overall, max float64) {
	var logged, omitted, maxBase, maxACR float64
	for _, iv := range res.Intervals {
		logged += float64(iv.Logged)
		omitted += float64(iv.Omitted)
		if s := float64(iv.Size()); s > maxBase {
			maxBase = s
		}
		if l := float64(iv.Logged); l > maxACR {
			maxACR = l
		}
	}
	total := logged + omitted
	if total > 0 {
		overall = omitted / total * 100
	}
	if maxBase > 0 {
		max = (maxBase - maxACR) / maxBase * 100
	}
	return overall, max
}

// Fig9 reproduces the checkpoint size reduction figure (Overall and Max).
func (r *Runner) Fig9(p Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Fig. 9: % reduction of checkpoint size under ReCkpt_NE (w.r.t. Ckpt_NE)",
		Cols:  []string{"bench", "Overall", "Max"},
	}
	if err := r.warm(p, ReCkptNE); err != nil {
		return nil, err
	}
	var all []float64
	for _, name := range BenchNames() {
		res, err := r.Run(name, p, ReCkptNE)
		if err != nil {
			return nil, err
		}
		overall, max := sizeReduction(res)
		all = append(all, overall)
		t.AddRow(name, stats.Pct(overall), stats.Pct(max))
	}
	t.AddRow("avg", stats.Pct(stats.Mean(all)), "")
	t.AddNote("Max = reduction of the largest single checkpoint (memory-footprint proxy, §V-C)")
	return t, nil
}

// TableII reproduces the Slice-length threshold sweep: total checkpoint
// size reduction under ReCkpt_NE for thresholds 10..50.
func (r *Runner) TableII(p Params) (*stats.Table, error) {
	thresholds := []int{10, 20, 30, 40, 50}
	t := &stats.Table{
		Title: "Table II: total checkpoint size reduction (%) w.r.t. Slice length threshold",
		Cols:  []string{"bench", "10", "20", "30", "40", "50"},
	}
	specs := make([]Spec, 0, len(thresholds))
	for _, th := range thresholds {
		spec := ReCkptNE
		spec.Threshold = th
		specs = append(specs, spec)
	}
	if err := r.warm(p, specs...); err != nil {
		return nil, err
	}
	for _, name := range BenchNames() {
		row := []string{name}
		for _, th := range thresholds {
			spec := ReCkptNE
			spec.Threshold = th
			res, err := r.Run(name, p, spec)
			if err != nil {
				return nil, err
			}
			overall, _ := sizeReduction(res)
			row = append(row, stats.Pct(overall))
		}
		t.AddRow(row...)
	}
	t.AddNote("the paper's Table II lists bt/cg/ft/is/lu/mg/sp; dc is included here for completeness")
	return t, nil
}

// Fig10 reproduces the per-interval checkpoint size reduction over time for
// one benchmark (the paper shows bt) across thresholds.
func (r *Runner) Fig10(p Params, benchName string) (*stats.Table, error) {
	thresholds := []int{10, 20, 30, 40, 50}
	jobs := make([]Job, 0, len(thresholds))
	for _, th := range thresholds {
		spec := ReCkptNE
		spec.Threshold = th
		jobs = append(jobs, Job{Bench: benchName, Params: p, Spec: spec})
	}
	if _, err := r.RunAll(jobs); err != nil {
		return nil, err
	}
	cols := []string{"interval"}
	series := make([][]float64, len(thresholds))
	maxLen := 0
	for i, th := range thresholds {
		cols = append(cols, fmt.Sprintf("thr=%d", th))
		spec := ReCkptNE
		spec.Threshold = th
		res, err := r.Run(benchName, p, spec)
		if err != nil {
			return nil, err
		}
		for _, iv := range res.Intervals {
			red := 0.0
			if iv.Size() > 0 {
				red = float64(iv.Omitted) / float64(iv.Size()) * 100
			}
			series[i] = append(series[i], red)
		}
		if len(series[i]) > maxLen {
			maxLen = len(series[i])
		}
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Fig. 10: %% checkpoint size reduction per interval over time (%s)", benchName),
		Cols:  cols,
	}
	for k := 0; k < maxLen; k++ {
		row := []string{fmt.Sprintf("%d", k+1)}
		for i := range thresholds {
			if k < len(series[i]) {
				row = append(row, stats.Pct(series[i][k]))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig11 reproduces the error-rate sweep: % time overhead of Ckpt_E and
// ReCkpt_E w.r.t. NoCkpt for 1..5 errors, with the EDP reduction series of
// §V-D2.
func (r *Runner) Fig11(p Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Fig. 11: % execution time overhead vs number of errors (w.r.t. NoCkpt)",
		Cols: []string{"bench",
			"Ckpt 1e", "Re 1e", "Ckpt 2e", "Re 2e", "Ckpt 3e", "Re 3e",
			"Ckpt 4e", "Re 4e", "Ckpt 5e", "Re 5e"},
	}
	specs := []Spec{NoCkpt}
	for e := 1; e <= 5; e++ {
		specs = append(specs,
			Spec{Ckpt: true, Errors: e},
			Spec{Ckpt: true, Errors: e, Amnesic: true})
	}
	if err := r.warm(p, specs...); err != nil {
		return nil, err
	}
	type cell struct{ ck, re float64 }
	grid := make(map[string][]cell)
	for _, name := range BenchNames() {
		base, err := r.Baseline(name, p)
		if err != nil {
			return nil, err
		}
		for e := 1; e <= 5; e++ {
			ck := Spec{Ckpt: true, Errors: e}
			re := Spec{Ckpt: true, Errors: e, Amnesic: true}
			rc, err := r.Run(name, p, ck)
			if err != nil {
				return nil, err
			}
			rr, err := r.Run(name, p, re)
			if err != nil {
				return nil, err
			}
			grid[name] = append(grid[name], cell{
				ck: stats.OverheadPct(float64(rc.Cycles), float64(base.Cycles)),
				re: stats.OverheadPct(float64(rr.Cycles), float64(base.Cycles)),
			})
		}
	}
	for _, name := range BenchNames() {
		row := []string{name}
		for _, c := range grid[name] {
			row = append(row, stats.Pct(c.ck), stats.Pct(c.re))
		}
		t.AddRow(row...)
	}
	// §V-D2 companion: per-error-count average reduction.
	for e := 0; e < 5; e++ {
		var reds []float64
		for _, name := range BenchNames() {
			c := grid[name][e]
			reds = append(reds, stats.ReductionPct(c.ck, c.re))
		}
		t.AddNote("%d error(s): ReCkpt_E reduces time overhead by %.2f%% on average", e+1, stats.Mean(reds))
	}
	return t, nil
}

// Fig12 reproduces the checkpoint-frequency sweep: % time overhead of
// Ckpt_NE and ReCkpt_NE w.r.t. NoCkpt for 25/50/75/100 checkpoints.
func (r *Runner) Fig12(p Params) (*stats.Table, error) {
	counts := []int{25, 50, 75, 100}
	cols := []string{"bench"}
	for _, c := range counts {
		cols = append(cols, fmt.Sprintf("Ckpt %d", c), fmt.Sprintf("Re %d", c))
	}
	t := &stats.Table{
		Title: "Fig. 12: % execution time overhead vs number of checkpoints (w.r.t. NoCkpt)",
		Cols:  cols,
	}
	specs := []Spec{NoCkpt}
	for _, c := range counts {
		specs = append(specs,
			Spec{Ckpt: true, NumCkpts: c},
			Spec{Ckpt: true, Amnesic: true, NumCkpts: c})
	}
	if err := r.warm(p, specs...); err != nil {
		return nil, err
	}
	perCount := make([][]float64, len(counts))
	for _, name := range BenchNames() {
		base, err := r.Baseline(name, p)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for i, c := range counts {
			ck := Spec{Ckpt: true, NumCkpts: c}
			re := Spec{Ckpt: true, Amnesic: true, NumCkpts: c}
			rc, err := r.Run(name, p, ck)
			if err != nil {
				return nil, err
			}
			rr, err := r.Run(name, p, re)
			if err != nil {
				return nil, err
			}
			oc := stats.OverheadPct(float64(rc.Cycles), float64(base.Cycles))
			or := stats.OverheadPct(float64(rr.Cycles), float64(base.Cycles))
			perCount[i] = append(perCount[i], stats.ReductionPct(oc, or))
			row = append(row, stats.Pct(oc), stats.Pct(or))
		}
		t.AddRow(row...)
	}
	for i, c := range counts {
		t.AddNote("%d checkpoints: ReCkpt_NE reduces time overhead by %.2f%% on average", c, stats.Mean(perCount[i]))
	}
	return t, nil
}

// Fig13 reproduces the coordinated-local study: execution time of the four
// local configurations normalised to their global counterparts.
func (r *Runner) Fig13(p Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Fig. 13: normalized execution time of local configurations (w.r.t. global counterparts)",
		Cols:  []string{"bench", "Ckpt_NE,Loc", "Ckpt_E,Loc", "ReCkpt_NE,Loc", "ReCkpt_E,Loc"},
	}
	pairs := [][2]Spec{
		{CkptNELoc, CkptNE},
		{CkptELoc, CkptE},
		{ReCkptNELoc, ReCkptNE},
		{ReCkptELoc, ReCkptE},
	}
	var specs []Spec
	for _, pair := range pairs {
		specs = append(specs, pair[0], pair[1])
	}
	if err := r.warm(p, specs...); err != nil {
		return nil, err
	}
	for _, name := range BenchNames() {
		row := []string{name}
		for _, pair := range pairs {
			loc, err := r.Run(name, p, pair[0])
			if err != nil {
				return nil, err
			}
			glob, err := r.Run(name, p, pair[1])
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", float64(loc.Cycles)/float64(glob.Cycles)))
		}
		t.AddRow(row...)
	}
	t.AddNote("y < 1 means coordinated-local checkpointing beats global (paper §V-E)")
	return t, nil
}

// Scalability reproduces §V-D4: checkpointing overhead and ReCkpt_NE
// reductions for 8-, 16- and 32-threaded executions.
func (r *Runner) Scalability(class Params) (*stats.Table, error) {
	threadCounts := []int{8, 16, 32}
	cols := []string{"bench"}
	for _, tc := range threadCounts {
		cols = append(cols, fmt.Sprintf("ovh@%d", tc), fmt.Sprintf("red@%d", tc), fmt.Sprintf("edp@%d", tc))
	}
	t := &stats.Table{
		Title: "Sec. V-D4: scalability — Ckpt_NE overhead, ReCkpt_NE time-overhead reduction and EDP reduction",
		Cols:  cols,
	}
	var jobs []Job
	for _, tc := range threadCounts {
		p := Params{Threads: tc, Class: class.Class}
		for _, name := range BenchNames() {
			for _, s := range []Spec{NoCkpt, CkptNE, ReCkptNE} {
				jobs = append(jobs, Job{Bench: name, Params: p, Spec: s})
			}
		}
	}
	if _, err := r.RunAll(jobs); err != nil {
		return nil, err
	}
	for _, name := range BenchNames() {
		row := []string{name}
		for _, tc := range threadCounts {
			p := Params{Threads: tc, Class: class.Class}
			base, err := r.Baseline(name, p)
			if err != nil {
				return nil, err
			}
			rc, err := r.Run(name, p, CkptNE)
			if err != nil {
				return nil, err
			}
			rr, err := r.Run(name, p, ReCkptNE)
			if err != nil {
				return nil, err
			}
			oc := stats.OverheadPct(float64(rc.Cycles), float64(base.Cycles))
			or := stats.OverheadPct(float64(rr.Cycles), float64(base.Cycles))
			edp := stats.ReductionPct(rc.EDP(), rr.EDP())
			row = append(row, stats.Pct(oc), stats.Pct(stats.ReductionPct(oc, or)), stats.Pct(edp))
		}
		t.AddRow(row...)
	}
	return t, nil
}
