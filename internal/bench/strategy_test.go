package bench

import (
	"encoding/json"
	"testing"

	"acr/internal/ckpt"
)

// TestSpecStrategyNames: the new strategies get their own configuration
// names, so tables and job-failure messages identify the scheme.
func TestSpecStrategyNames(t *testing.T) {
	cases := map[string]Spec{
		"Ckpt_NE":     {Ckpt: true, Strategy: ckpt.KindFull},
		"ReCkpt_E":    {Ckpt: true, Strategy: ckpt.KindAmnesic, Errors: 1},
		"DiffCkpt_NE": {Ckpt: true, Strategy: ckpt.KindDifferential},
		"TierCkpt_E":  {Ckpt: true, Strategy: ckpt.KindTiered, Errors: 2},
		"AutoCkpt_NE": {Ckpt: true, Strategy: ckpt.KindAuto},
		"AutoCkpt_E,Loc": {Ckpt: true, Strategy: ckpt.KindAuto, Errors: 1,
			Local: true},
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("Spec %+v renders %q, want %q", spec, got, want)
		}
	}
}

// TestSpecNormalization: the legacy Amnesic boolean and the explicit
// KindAmnesic strategy are the same configuration — they must normalise to
// one spelling so the memo cache holds a single cell for both.
func TestSpecNormalization(t *testing.T) {
	legacy := Spec{Ckpt: true, Amnesic: true}
	explicit := Spec{Ckpt: true, Strategy: ckpt.KindAmnesic}
	if legacy.normalized() != explicit.normalized() {
		t.Errorf("legacy %+v and explicit %+v normalise differently:\n%+v\n%+v",
			legacy, explicit, legacy.normalized(), explicit.normalized())
	}
	if got := explicit.normalized(); !got.Amnesic {
		t.Errorf("normalised KindAmnesic spec lost the Amnesic flag: %+v", got)
	}
	if got := legacy.normalized().String(); got != "ReCkpt_NE" {
		t.Errorf("normalised legacy spec renders %q", got)
	}
}

// TestStrategyMemoKeysDistinct is the cache-collision satellite: every
// strategy must key its own cache cell, and the two amnesic spellings must
// share exactly one.
func TestStrategyMemoKeysDistinct(t *testing.T) {
	p := tinyParams()
	keys := make(map[runKey]ckpt.Kind)
	for _, k := range ckpt.Kinds() {
		j := Job{Bench: "is", Params: p, Spec: Spec{Ckpt: true, Strategy: k}}
		key := j.key()
		if prev, dup := keys[key]; dup {
			t.Fatalf("strategies %v and %v collide on cache key %+v", prev, k, key)
		}
		keys[key] = k
	}
	if len(keys) != len(ckpt.Kinds()) {
		t.Fatalf("expected %d distinct keys, got %d", len(ckpt.Kinds()), len(keys))
	}

	legacy := Job{Bench: "is", Params: p, Spec: Spec{Ckpt: true, Amnesic: true}}
	explicit := Job{Bench: "is", Params: p, Spec: Spec{Ckpt: true, Strategy: ckpt.KindAmnesic}}
	if legacy.key() != explicit.key() {
		t.Errorf("legacy Amnesic and explicit KindAmnesic jobs key different cells:\n%+v\n%+v",
			legacy.key(), explicit.key())
	}
}

// TestStrategyMemoSharedCell executes both amnesic spellings through the
// runner and checks they occupied one cache entry with identical results —
// the end-to-end form of the key test above.
func TestStrategyMemoSharedCell(t *testing.T) {
	r := NewRunner()
	p := tinyParams()
	a, err := r.Run("is", p, Spec{Ckpt: true, Amnesic: true, NumCkpts: 10})
	if err != nil {
		t.Fatal(err)
	}
	before := len(r.cache)
	b, err := r.Run("is", p, Spec{Ckpt: true, Strategy: ckpt.KindAmnesic, NumCkpts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.cache) != before {
		t.Errorf("explicit spelling grew the cache from %d to %d entries — duplicate cell",
			before, len(r.cache))
	}
	if a.Cycles != b.Cycles || a.EnergyPJ != b.EnergyPJ || a.Ckpt != b.Ckpt {
		t.Errorf("spellings returned different results:\n%+v\n%+v", a, b)
	}
}

// TestStrategyMatrixDocSmoke runs the matrix generator on a tiny grid and
// checks shape plus the per-strategy traffic signatures: each scheme must
// leave its own fingerprint in the counters, or the strategies are labels
// rather than mechanisms.
func TestStrategyMatrixDocSmoke(t *testing.T) {
	r := NewRunner()
	p := tinyParams()
	doc, err := r.StrategyMatrixDoc([]string{"is"}, []int{2, 4}, p.Class, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 2 * len(ckpt.Kinds())
	if len(doc.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(doc.Cells), wantCells)
	}
	if doc.HostCPUs < 1 {
		t.Errorf("host_cpus = %d", doc.HostCPUs)
	}
	for _, c := range doc.Cells {
		switch c.Strategy {
		case "full":
			if c.Omitted != 0 || c.Delta != 0 || c.FastLog != 0 {
				t.Errorf("full cell has amnesic/delta/tier traffic: %+v", c)
			}
			if c.Logged == 0 {
				t.Errorf("full cell logged nothing: %+v", c)
			}
		case "amnesic":
			if c.Delta != 0 || c.FastLog != 0 {
				t.Errorf("amnesic cell has delta/tier traffic: %+v", c)
			}
		case "differential":
			if c.Delta == 0 || c.Logged != c.Delta {
				t.Errorf("differential cell: logged %d, delta %d", c.Logged, c.Delta)
			}
			if c.Omitted != 0 {
				t.Errorf("differential cell omitted %d words", c.Omitted)
			}
		case "tiered":
			if c.FastLog == 0 || c.Demoted == 0 {
				t.Errorf("tiered cell: fast %d, demoted %d", c.FastLog, c.Demoted)
			}
		case "auto":
			if c.Delta != 0 || c.FastLog != 0 {
				t.Errorf("auto cell has delta/tier traffic: %+v", c)
			}
		default:
			t.Errorf("unknown strategy %q in matrix", c.Strategy)
		}
		if c.Recoveries == 0 {
			t.Errorf("%s@%d: error variant recovered nothing", c.Strategy, c.Threads)
		}
	}

	// The doc must round-trip through JSON — it is the CI artifact.
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back StrategyMatrixDoc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != wantCells {
		t.Errorf("JSON round-trip lost cells: %d", len(back.Cells))
	}
}

// TestStrategyMatrixTableRenders: the rendered table carries every strategy
// row and the explanatory notes.
func TestStrategyMatrixTableRenders(t *testing.T) {
	r := NewRunner()
	p := tinyParams()
	tab, err := r.StrategyMatrix([]string{"is"}, []int{2}, p.Class, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(ckpt.Kinds()) {
		t.Errorf("rows = %d, want %d", len(tab.Rows), len(ckpt.Kinds()))
	}
}
