package bench

import "fmt"

// CompileMode is the CLI spelling of the block-compilation knob shared by
// acrsim and acrbench. The engine is bit-identical to the interpreter for
// every configuration, so the mode only decides where the wall-clock seam
// engages:
//
//   - off: interpreter everywhere (the default).
//   - on: the engine on every execution. Rejected when combined with
//     intra-run parallelism, because the parallel engine's speculative
//     rounds bypass block compilation — the combination would silently
//     run almost everything uncompiled.
//   - auto: the engine exactly where it can engage — serial executions —
//     and off otherwise; valid with any worker count.
type CompileMode int

const (
	CompileOff CompileMode = iota
	CompileOn
	CompileAuto
)

// compileModeNames is the -compile flag grammar, aliases included.
var compileModeNames = map[string]CompileMode{
	"off":   CompileOff,
	"false": CompileOff,
	"on":    CompileOn,
	"true":  CompileOn,
	"auto":  CompileAuto,
}

// ParseCompileMode parses the -compile flag value. The empty string is the
// default: off.
func ParseCompileMode(s string) (CompileMode, error) {
	if s == "" {
		return CompileOff, nil
	}
	if m, ok := compileModeNames[s]; ok {
		return m, nil
	}
	return CompileOff, fmt.Errorf("unknown -compile mode %q (valid: off, on, auto)", s)
}

func (m CompileMode) String() string {
	switch m {
	case CompileOn:
		return "on"
	case CompileAuto:
		return "auto"
	default:
		return "off"
	}
}

// Resolve turns the mode into the Runner.SimCompile setting for a given
// intra-run worker count (after any 0 → GOMAXPROCS expansion). CompileOn
// is an error with simWorkers > 1: the parallel engine's speculative
// rounds execute through SpecStep and never enter the block engine, so
// "on" cannot be honored — auto expresses the supported intent.
func (m CompileMode) Resolve(simWorkers int) (bool, error) {
	switch m {
	case CompileOn:
		if simWorkers > 1 {
			return false, fmt.Errorf("-compile on is unsupported with -workers %d: speculative rounds bypass block compilation; use -workers 1, or -compile auto to compile the serial executions only", simWorkers)
		}
		return true, nil
	case CompileAuto:
		return simWorkers <= 1, nil
	default:
		return false, nil
	}
}
