package bench

import (
	"strconv"
	"strings"
	"testing"

	"acr/internal/ckpt"
	"acr/internal/sim"
	"acr/internal/workloads"
)

// tinyParams keeps the experiment tests fast: 4 threads, a reduced class.
func tinyParams() Params {
	return Params{Threads: 4, Class: workloads.Class{Name: "T", N: 32, Iters: 24}}
}

func TestSpecNames(t *testing.T) {
	cases := map[string]Spec{
		"NoCkpt":        NoCkpt,
		"Ckpt_NE":       CkptNE,
		"Ckpt_E":        CkptE,
		"ReCkpt_NE":     ReCkptNE,
		"ReCkpt_E":      ReCkptE,
		"Ckpt_NE,Loc":   CkptNELoc,
		"Ckpt_E,Loc":    CkptELoc,
		"ReCkpt_NE,Loc": ReCkptNELoc,
		"ReCkpt_E,Loc":  ReCkptELoc,
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("Spec %v renders %q, want %q", spec, got, want)
		}
	}
}

func TestRunnerMemoises(t *testing.T) {
	r := NewRunner()
	p := tinyParams()
	a, err := r.Run("is", p, CkptNE)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("is", p, CkptNE)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.EnergyPJ != b.EnergyPJ {
		t.Error("memoised run differs")
	}
	if len(r.cache) < 2 { // baseline + run
		t.Errorf("cache size = %d", len(r.cache))
	}
}

func TestRunnerRejectsUnknownBenchmark(t *testing.T) {
	r := NewRunner()
	if _, err := r.Run("nope", tinyParams(), NoCkpt); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCheckpointBudgetRealised(t *testing.T) {
	r := NewRunner()
	p := tinyParams()
	spec := CkptNE
	spec.NumCkpts = 10
	res, err := r.Run("bt", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ckpt.Checkpoints != 10 {
		t.Errorf("realised checkpoints = %d, want 10", res.Ckpt.Checkpoints)
	}
}

func TestErrorRunsRecover(t *testing.T) {
	r := NewRunner()
	p := tinyParams()
	spec := ReCkptE
	spec.Errors = 2
	res, err := r.Run("lu", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ckpt.Recoveries != 2 {
		t.Errorf("recoveries = %d, want 2", res.Ckpt.Recoveries)
	}
}

func TestTableIStatic(t *testing.T) {
	tab := TableI()
	if len(tab.Rows) < 5 {
		t.Errorf("Table I rows = %d", len(tab.Rows))
	}
	var b strings.Builder
	tab.Render(&b)
	if !strings.Contains(b.String(), "22nm") {
		t.Error("Table I missing technology node")
	}
}

func TestFig1Monotonic(t *testing.T) {
	tab := Fig1(6)
	prev := 0.0
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev && row[0] != "0" {
			t.Errorf("error rate not increasing at generation %s", row[0])
		}
		prev = v
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	r := NewRunner()
	tab, err := r.Fig6(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 { // 8 benchmarks + avg
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows[:8] {
		ckNE, _ := strconv.ParseFloat(row[1], 64)
		ckE, _ := strconv.ParseFloat(row[2], 64)
		if ckNE <= 0 {
			t.Errorf("%s: checkpointing overhead %v not positive", row[0], ckNE)
		}
		if ckE <= ckNE {
			t.Errorf("%s: error run (%v) not slower than error-free (%v)", row[0], ckE, ckNE)
		}
	}
	// The headline claim: ReCkpt reduces the overhead on average.
	avg, _ := strconv.ParseFloat(tab.Rows[8][5], 64)
	if avg <= 0 {
		t.Errorf("average NE reduction %v not positive", avg)
	}
}

func TestFig9AndTableIIShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	r := NewRunner()
	p := tinyParams()
	tab, err := r.TableII(p)
	if err != nil {
		t.Fatal(err)
	}
	// Size reduction must be (approximately) monotone in the threshold.
	for _, row := range tab.Rows {
		prev := -1.0
		for i := 1; i < len(row); i++ {
			v, _ := strconv.ParseFloat(row[i], 64)
			if v+1e-9 < prev-2.0 { // allow small interval-boundary noise
				t.Errorf("%s: reduction drops from %v to %v at threshold column %d",
					row[0], prev, v, i)
			}
			if prev < v {
				prev = v
			}
		}
	}
	fig9, err := r.Fig9(p)
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) (overall, max float64) {
		for _, row := range fig9.Rows {
			if row[0] == name {
				o, _ := strconv.ParseFloat(row[1], 64)
				m, _ := strconv.ParseFloat(row[2], 64)
				return o, m
			}
		}
		t.Fatalf("missing %s", name)
		return 0, 0
	}
	// The paper's Fig. 9 signatures: is has high Overall but near-zero
	// Max; ft has near-zero Max.
	isO, isM := find("is")
	if isO < 20 {
		t.Errorf("is overall reduction %v too low", isO)
	}
	if isM > isO/2 {
		t.Errorf("is Max (%v) should be far below Overall (%v)", isM, isO)
	}
	_, ftM := find("ft")
	if ftM > 10 {
		t.Errorf("ft Max reduction %v should be near zero", ftM)
	}
}

func TestFig13LocalShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	r := NewRunner()
	tab, err := r.Fig13(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, row := range tab.Rows {
			if row[0] == name {
				v, _ := strconv.ParseFloat(row[1], 64)
				return v
			}
		}
		t.Fatalf("missing %s", name)
		return 0
	}
	// bt/cg/sp communicate all-to-all: local buys (almost) nothing.
	for _, name := range []string{"bt", "cg", "sp"} {
		if v := get(name); v < 0.9 {
			t.Errorf("%s: local ratio %v unexpectedly low for an all-to-all benchmark", name, v)
		}
	}
	// ft/is/mg decompose into pairs: local must win clearly.
	for _, name := range []string{"ft", "is", "mg"} {
		if v := get(name); v > 0.95 {
			t.Errorf("%s: local ratio %v shows no benefit for a pairwise benchmark", name, v)
		}
	}
}

func TestSizeReductionSemantics(t *testing.T) {
	// Construct a synthetic interval history to pin Fig. 9 semantics:
	// the largest baseline checkpoint may be a different interval from
	// the largest amnesic one.
	resSim := simResultWith([][2]int64{
		{100, 0}, // interval 1: 100 logged, 0 omitted  (baseline max)
		{20, 60}, // interval 2: mostly omitted
		{10, 10},
	})
	overall, max := sizeReduction(resSim)
	wantOverall := 100 * 70.0 / 200.0
	if overall != wantOverall {
		t.Errorf("overall = %v, want %v", overall, wantOverall)
	}
	// maxBase = 100 (interval 1), maxACR = 100 (interval 1 logged).
	if max != 0 {
		t.Errorf("max = %v, want 0", max)
	}
	resSim = simResultWith([][2]int64{
		{10, 90}, // biggest baseline interval, heavily omitted
		{30, 0},
	})
	_, max = sizeReduction(resSim)
	// maxBase = 100, maxACR = 30 → 70%.
	if max != 70 {
		t.Errorf("max = %v, want 70", max)
	}
}

// simResultWith builds a sim.Result with the given (logged, omitted)
// interval history.
func simResultWith(ivs [][2]int64) (res sim.Result) {
	for _, iv := range ivs {
		res.Intervals = append(res.Intervals, ckpt.IntervalStat{Logged: iv[0], Omitted: iv[1]})
	}
	return res
}
