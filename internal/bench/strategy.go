package bench

import (
	"fmt"
	"runtime"

	"acr/internal/ckpt"
	"acr/internal/stats"
	"acr/internal/workloads"
)

// This file implements the strategy-matrix experiment: every checkpoint
// strategy crossed with a set of workloads and core counts, in error-free
// and error-injected variants, reported against each scale's NoCkpt
// baseline. It is the evaluation for the pluggable strategy engine — the
// per-strategy cost signatures (inline log stall vs sealed delta scan vs
// fast-tier drain vs statically pruned associations) must separate in this
// table, or the strategies are labels rather than mechanisms.

// StrategySpecs returns one Spec per checkpoint strategy, with the given
// injected-error count.
func StrategySpecs(errors int) []Spec {
	specs := make([]Spec, 0, len(ckpt.Kinds()))
	for _, k := range ckpt.Kinds() {
		specs = append(specs, Spec{Ckpt: true, Strategy: k, Errors: errors})
	}
	return specs
}

// StrategyCell is one cell of the strategy matrix: a benchmark at a core
// count under one strategy, with its overheads and traffic decomposition.
type StrategyCell struct {
	Bench    string `json:"bench"`
	Threads  int    `json:"threads"`
	Strategy string `json:"strategy"`

	// Overheads w.r.t. the NoCkpt baseline at the same scale, percent.
	TimeOvhNE   float64 `json:"time_ovh_ne_pct"`
	EnergyOvhNE float64 `json:"energy_ovh_ne_pct"`
	TimeOvhE    float64 `json:"time_ovh_e_pct"`
	EnergyOvhE  float64 `json:"energy_ovh_e_pct"`

	// Traffic decomposition of the error-free run: each strategy's
	// distinguishing counters.
	Logged     int64 `json:"logged_words"`
	Omitted    int64 `json:"omitted_words"`
	Delta      int64 `json:"delta_words"`
	FastLog    int64 `json:"fast_log_words"`
	Demoted    int64 `json:"demoted_words"`
	Recoveries int64 `json:"recoveries"`
}

// StrategyMatrixDoc is the exportable strategy-matrix result.
type StrategyMatrixDoc struct {
	Class    string         `json:"class"`
	NumCkpts int            `json:"num_ckpts"`
	Errors   int            `json:"errors"`
	HostCPUs int            `json:"host_cpus"`
	Cells    []StrategyCell `json:"cells"`
}

// StrategyMatrixDoc runs the full strategy × benchmark × core-count grid
// and returns the structured result. errors is the injected-error count of
// the _E variants.
func (r *Runner) StrategyMatrixDoc(benches []string, threadCounts []int, class workloads.Class, errors int) (*StrategyMatrixDoc, error) {
	doc := &StrategyMatrixDoc{
		Class:    class.Name,
		NumCkpts: DefaultNumCkpts,
		Errors:   errors,
		HostCPUs: runtime.NumCPU(),
	}
	// Warm the whole grid through the memoised worker pool, then read the
	// cells back (cache hits) in deterministic order.
	specs := append([]Spec{NoCkpt}, append(StrategySpecs(0), StrategySpecs(errors)...)...)
	var jobs []Job
	for _, threads := range threadCounts {
		p := Params{Threads: threads, Class: class}
		for _, benchName := range benches {
			for _, s := range specs {
				jobs = append(jobs, Job{Bench: benchName, Params: p, Spec: s})
			}
		}
	}
	if _, err := r.RunAll(jobs); err != nil {
		return nil, err
	}
	for _, threads := range threadCounts {
		p := Params{Threads: threads, Class: class}
		for _, benchName := range benches {
			base, err := r.Baseline(benchName, p)
			if err != nil {
				return nil, err
			}
			for _, kind := range ckpt.Kinds() {
				ne, err := r.Run(benchName, p, Spec{Ckpt: true, Strategy: kind})
				if err != nil {
					return nil, err
				}
				er, err := r.Run(benchName, p, Spec{Ckpt: true, Strategy: kind, Errors: errors})
				if err != nil {
					return nil, err
				}
				doc.Cells = append(doc.Cells, StrategyCell{
					Bench:       benchName,
					Threads:     threads,
					Strategy:    kind.String(),
					TimeOvhNE:   stats.OverheadPct(float64(ne.Cycles), float64(base.Cycles)),
					EnergyOvhNE: stats.OverheadPct(ne.EnergyPJ, base.EnergyPJ),
					TimeOvhE:    stats.OverheadPct(float64(er.Cycles), float64(base.Cycles)),
					EnergyOvhE:  stats.OverheadPct(er.EnergyPJ, base.EnergyPJ),
					Logged:      ne.Ckpt.LoggedWords,
					Omitted:     ne.Ckpt.OmittedWords,
					Delta:       ne.Ckpt.DeltaWords,
					FastLog:     ne.Ckpt.FastLogWords,
					Demoted:     ne.Ckpt.DemotedWords,
					Recoveries:  er.Ckpt.Recoveries,
				})
			}
		}
	}
	return doc, nil
}

// StrategyMatrix renders the strategy matrix as a table.
func (r *Runner) StrategyMatrix(benches []string, threadCounts []int, class workloads.Class, errors int) (*stats.Table, error) {
	doc, err := r.StrategyMatrixDoc(benches, threadCounts, class, errors)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Checkpoint-strategy matrix (class %s, %d ckpts, %d error(s) in _E)",
			doc.Class, doc.NumCkpts, doc.Errors),
		Cols: []string{"bench", "cores", "strategy",
			"tNE%", "eNE%", "tE%", "eE%",
			"logged", "omitted", "delta", "fast", "demoted"},
	}
	for _, c := range doc.Cells {
		t.AddRow(c.Bench, fmt.Sprintf("%d", c.Threads), c.Strategy,
			fmt.Sprintf("%.2f", c.TimeOvhNE), fmt.Sprintf("%.2f", c.EnergyOvhNE),
			fmt.Sprintf("%.2f", c.TimeOvhE), fmt.Sprintf("%.2f", c.EnergyOvhE),
			fmt.Sprintf("%d", c.Logged), fmt.Sprintf("%d", c.Omitted),
			fmt.Sprintf("%d", c.Delta), fmt.Sprintf("%d", c.FastLog),
			fmt.Sprintf("%d", c.Demoted))
	}
	t.AddNote("Overheads w.r.t. NoCkpt at the same core count; traffic columns from the error-free run.")
	t.AddNote("full: inline 2-word undo log to DRAM. amnesic: log minus AddrMap omissions.")
	t.AddNote("differential: no inline log; dirty words sealed into the checkpoint (delta).")
	t.AddNote("tiered: inline log to the fast NVM tier (fast), demoted to DRAM at depth %d of %d retained.",
		ckpt.TieredFastRetain, ckpt.TieredRetention)
	t.AddNote("auto: amnesic plus the static site plan (pruned/boosted ASSOC sites).")
	return t, nil
}
