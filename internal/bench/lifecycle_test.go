package bench

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"acr/internal/ckpt"
	"acr/internal/sim"
	"acr/internal/workloads"
)

// recordingLifecycle captures every JobBegin/JobEnd and counts observed
// events, for asserting the driver fires the seam correctly.
type recordingLifecycle struct {
	begins []beginCall
	tokens []*recordingObservation
}

type beginCall struct {
	key    string
	shared bool
}

type recordingObservation struct {
	events int
	ended  bool
	res    sim.Result
	err    error
}

func (o *recordingObservation) OnEvent(sim.Event) { o.events++ }

func (o *recordingObservation) Observers() []sim.Observer { return []sim.Observer{o} }

func (o *recordingObservation) JobEnd(res sim.Result, err error) {
	o.ended, o.res, o.err = true, res, err
}

func (l *recordingLifecycle) JobBegin(j Job, key string, shared bool) JobObservation {
	l.begins = append(l.begins, beginCall{key: key, shared: shared})
	tok := &recordingObservation{}
	l.tokens = append(l.tokens, tok)
	return tok
}

func lcParams() Params {
	return Params{Threads: 2, Class: workloads.ClassS}
}

func TestLifecycleObservesRunAll(t *testing.T) {
	lc := &recordingLifecycle{}
	r := NewRunner()
	r.Lifecycle = lc
	p := lcParams()

	jobs := []Job{
		{Bench: "is", Params: p, Spec: NoCkpt},
		{Bench: "is", Params: p, Spec: CkptNE},
		{Bench: "is", Params: p, Spec: NoCkpt}, // cache-shared duplicate
	}
	results, err := r.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(lc.begins) != 3 {
		t.Fatalf("JobBegin fired %d times, want 3", len(lc.begins))
	}
	for i, tok := range lc.tokens {
		if !tok.ended {
			t.Fatalf("token %d never received JobEnd", i)
		}
		if tok.err != nil {
			t.Fatalf("token %d: %v", i, tok.err)
		}
	}
	// The duplicate NoCkpt job shares the first job's cache cell.
	if lc.begins[0].key != lc.begins[2].key {
		t.Fatalf("duplicate jobs got different keys: %q vs %q", lc.begins[0].key, lc.begins[2].key)
	}
	if lc.begins[0].key == lc.begins[1].key {
		t.Fatal("distinct specs share a key")
	}
	// The checkpointed job's winning execution observes events
	// (checkpoints at least); a job that rode the cache observes none.
	ckptTok := lc.tokens[1]
	if ckptTok.events == 0 {
		t.Fatal("checkpointed job observed no events")
	}
	if results[1].Ckpt.Checkpoints == 0 {
		t.Fatal("sanity: checkpointed run performed no checkpoints")
	}
	// Delivered results match the driver's.
	if ckptTok.res.Cycles != results[1].Cycles {
		t.Fatalf("JobEnd result diverges: %d vs %d", ckptTok.res.Cycles, results[1].Cycles)
	}
}

// TestLifecycleObservationInvariant proves the PR 3 invariant across the
// lifecycle seam: a runner with a lifecycle attached returns bit-identical
// results to one without.
func TestLifecycleObservationInvariant(t *testing.T) {
	p := lcParams()
	jobs := []Job{
		{Bench: "is", Params: p, Spec: NoCkpt},
		{Bench: "is", Params: p, Spec: ReCkptE},
	}

	plain := NewRunner()
	want, err := plain.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}

	observed := NewRunner()
	observed.Lifecycle = &recordingLifecycle{}
	got, err := observed.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("job %d: results diverge with a lifecycle attached\nwant %+v\ngot  %+v",
				i, want[i], got[i])
		}
	}
}

func TestLifecycleObservesRunObserved(t *testing.T) {
	lc := &recordingLifecycle{}
	r := NewRunner()
	r.Lifecycle = lc
	p := lcParams()

	res, err := r.RunObserved("is", p, CkptNE)
	if err != nil {
		t.Fatal(err)
	}
	// RunObserved registers exactly one lifecycle job for the observed
	// replay (its internal baseline/calibration runs are plain cache
	// fills).
	if len(lc.begins) != 1 {
		t.Fatalf("JobBegin fired %d times, want 1", len(lc.begins))
	}
	tok := lc.tokens[0]
	if !tok.ended || tok.err != nil {
		t.Fatalf("token: ended=%v err=%v", tok.ended, tok.err)
	}
	if tok.events == 0 {
		t.Fatal("observed replay produced no events")
	}
	if tok.res.Cycles != res.Cycles {
		t.Fatalf("JobEnd result diverges: %d vs %d", tok.res.Cycles, res.Cycles)
	}
}

// TestKeyStringCoversEverySpecField is the KeyString completeness proof:
// perturbing any single Spec field of a checkpointed job must change the
// key, so distinct memo cells can never collide in the run registry or its
// journal. The memokey analyzer proves every field reaches runKey; this
// proves runKey's string form keeps the distinctions.
func TestKeyStringCoversEverySpecField(t *testing.T) {
	base := Job{Bench: "cg", Params: lcParams(), Spec: Spec{Ckpt: true}}
	baseKey := base.KeyString()

	specType := reflect.TypeOf(Spec{})
	for i := 0; i < specType.NumField(); i++ {
		field := specType.Field(i)
		j := base
		sv := reflect.ValueOf(&j.Spec).Elem().Field(i)
		switch field.Type.Kind() {
		case reflect.Bool:
			sv.SetBool(!sv.Bool())
		case reflect.Int:
			if field.Type == reflect.TypeOf(ckpt.Kind(0)) {
				sv.Set(reflect.ValueOf(ckpt.KindTiered))
			} else {
				sv.SetInt(sv.Int() + 3)
			}
		case reflect.Float64:
			sv.SetFloat(sv.Float() + 0.25)
		default:
			t.Fatalf("Spec field %s has unhandled kind %s — extend this test", field.Name, field.Type.Kind())
		}
		if got := j.KeyString(); got == baseKey {
			t.Errorf("Spec.%s does not reach KeyString: %q", field.Name, got)
		}
	}

	// Non-spec key components too.
	for _, j := range []Job{
		{Bench: "is", Params: base.Params, Spec: base.Spec},
		{Bench: "cg", Params: Params{Threads: 4, Class: workloads.ClassS}, Spec: base.Spec},
		{Bench: "cg", Params: Params{Threads: 2, Class: workloads.ClassW}, Spec: base.Spec},
	} {
		if j.KeyString() == baseKey {
			t.Errorf("job %+v shares the base key", j)
		}
	}

	// Keys are URL-path-safe modulo slashes (the observatory's routing
	// contract) and spell the paper configuration.
	if strings.ContainsAny(baseKey, " \t\n?#") {
		t.Errorf("key %q contains URL-hostile characters", baseKey)
	}
	if want := fmt.Sprintf("cg/t2/S/%s/", base.Spec.String()); !strings.HasPrefix(baseKey, want) {
		t.Errorf("key %q lacks prefix %q", baseKey, want)
	}
}

// TestKeyStringMatchesMemoIdentity: two jobs share a KeyString exactly when
// they share a memo cell — the normalised legacy spelling and the explicit
// strategy spelling collapse to one key.
func TestKeyStringMatchesMemoIdentity(t *testing.T) {
	p := lcParams()
	legacy := Job{Bench: "is", Params: p, Spec: Spec{Ckpt: true, Amnesic: true}}
	explicit := Job{Bench: "is", Params: p, Spec: Spec{Ckpt: true, Strategy: ckpt.KindAmnesic}}
	if legacy.KeyString() != explicit.KeyString() {
		t.Fatalf("normalised spellings diverge: %q vs %q", legacy.KeyString(), explicit.KeyString())
	}
}
