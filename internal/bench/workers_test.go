package bench

import (
	"reflect"
	"testing"

	"acr/internal/workloads"
)

// TestRunnerSimWorkersBitIdentical: a runner driving machines through the
// parallel engine (SimWorkers > 1) memoises exactly the Results a serial
// runner produces, across the calibration fixed point — the property that
// justifies keeping SimWorkers out of the cache key.
func TestRunnerSimWorkersBitIdentical(t *testing.T) {
	p := Params{Threads: 8, Class: workloads.ClassS}
	serial := NewRunner()
	par := NewRunner()
	par.SimWorkers = 4
	for _, spec := range []Spec{NoCkpt, ReCkptNE, ReCkptE} {
		want, err := serial.Run("is", p, spec)
		if err != nil {
			t.Fatalf("%v serial: %v", spec, err)
		}
		got, err := par.Run("is", p, spec)
		if err != nil {
			t.Fatalf("%v parallel: %v", spec, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%v: SimWorkers=4 diverged from serial:\nserial:   %+v\nparallel: %+v", spec, want, got)
		}
	}

	// RunObserved always replays serially; against a parallel-warmed cache
	// that is the workers>1 vs workers=1 cross-check acrsim's telemetry
	// guard relies on.
	cached, err := par.Run("is", p, ReCkptE)
	if err != nil {
		t.Fatal(err)
	}
	obs := &streamRecorder{}
	replayed, err := par.RunObserved("is", p, ReCkptE, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached, replayed) {
		t.Errorf("serial replay diverged from parallel-cached run:\ncached:   %+v\nreplayed: %+v", cached, replayed)
	}
	if len(obs.events) == 0 {
		t.Error("observer saw no events during the serial replay")
	}
}
