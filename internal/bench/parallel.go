package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"acr/internal/sim"
)

// Job names one cell of an experiment grid: a benchmark at a scale under a
// configuration.
type Job struct {
	Bench  string
	Params Params
	Spec   Spec
}

func (j Job) key() runKey {
	return runKey{j.Bench, j.Params.Threads, j.Params.Class.Name, j.Spec.normalized()}
}

// JobReport records how one RunAll job executed. QueueWait is the time the
// job sat behind other jobs before a worker picked it up; Wall is the time
// inside the (memoised) Run call; Shared marks jobs whose cache entry
// already existed when they started — they rode on another job's execution
// (or an earlier RunAll) instead of paying for their own.
type JobReport struct {
	Job       Job
	QueueWait time.Duration
	Wall      time.Duration
	Shared    bool
}

// Reports returns the per-job reports accumulated across this runner's
// RunAll calls, in submission order within each call. Wall and QueueWait
// are host-time measurements: useful for driver diagnostics, never for
// simulated results.
func (r *Runner) Reports() []JobReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]JobReport(nil), r.reports...)
}

func (r *Runner) hasEntry(key runKey) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cache[key] != nil
}

func (r *Runner) appendReports(reports []JobReport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reports = append(r.reports, reports...)
}

// RunAll executes the jobs through the memoised cache with a worker pool
// bounded by Runner.Workers (GOMAXPROCS when zero). Each sim.Machine is
// fully independent, so the grid parallelises without coordination beyond
// the cache; results come back in job order and are bit-identical to a
// serial execution (the simulator is deterministic, and memoisation
// deduplicates shared cells such as the NoCkpt baselines). On failure the
// first failing job in job order is reported, independent of scheduling.
func (r *Runner) RunAll(jobs []Job) ([]sim.Result, error) {
	results := make([]sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	reports := make([]JobReport, len(jobs))
	start := time.Now() //acr:wallclock-ok queue-wait profiling only; never reaches results
	defer func() { r.appendReports(reports) }()

	runOne := func(i int) {
		j := jobs[i]
		t0 := time.Now() //acr:wallclock-ok per-job wall profiling only; never reaches results
		shared := r.hasEntry(j.key())
		var obs []sim.Observer
		token := r.beginJob(j)
		if token != nil {
			obs = token.Observers()
		}
		results[i], errs[i] = r.runWith(j.Bench, j.Params, j.Spec, obs...)
		if token != nil {
			token.JobEnd(results[i], errs[i])
		}
		reports[i] = JobReport{
			Job:       j,
			QueueWait: t0.Sub(start),
			Wall:      time.Since(t0), //acr:wallclock-ok per-job wall profiling only; never reaches results
			Shared:    shared,
		}
	}

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			runOne(i)
			if errs[i] != nil {
				return nil, fmt.Errorf("job %d (%s %v): %w", i, j.Bench, j.Spec, errs[i])
			}
		}
		return results, nil
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("job %d (%s %v): %w", i, jobs[i].Bench, jobs[i].Spec, err)
		}
	}
	return results, nil
}

// warm pre-executes specs × the eight paper benchmarks through RunAll so a
// generator's subsequent sequential Run calls read memoised results. The
// experiment generators call it first: table assembly stays simple and
// ordered while the simulations — the actual cost — run in parallel.
func (r *Runner) warm(p Params, specs ...Spec) error {
	jobs := make([]Job, 0, len(specs)*len(BenchNames()))
	for _, name := range BenchNames() {
		for _, s := range specs {
			jobs = append(jobs, Job{Bench: name, Params: p, Spec: s})
		}
	}
	_, err := r.RunAll(jobs)
	return err
}
