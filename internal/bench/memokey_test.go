package bench

import (
	"reflect"
	"testing"

	"acr/internal/ckpt"
)

// specProbes varies exactly one Spec field away from its zero value. The
// memokey analyzer proves statically that every non-exempt field reaches
// the memo key; this table lets TestMemoKeyNonExemptFieldsDistinct prove
// dynamically that the key actually separates on each one.
var specProbes = map[string]Spec{
	"Ckpt":        {Ckpt: true},
	"Errors":      {Errors: 1},
	"Amnesic":     {Amnesic: true},
	"Local":       {Local: true},
	"Threshold":   {Threshold: 7},
	"NumCkpts":    {NumCkpts: 13},
	"CostPolicy":  {CostPolicy: true},
	"Adaptive":    {Adaptive: true},
	"MapCapacity": {MapCapacity: 128},
	"DetectFrac":  {DetectFrac: 0.25},
	"Strategy":    {Strategy: ckpt.KindTiered},
}

// TestMemoKeyNonExemptFieldsDistinct: the //acr:memo-spec grammar promises
// that changing any non-exempt Spec field changes the memoisation key.
// Every field is enumerated by reflection, so adding a Spec field without
// extending the probe table fails here — the dynamic twin of the memokey
// analyzer's completeness check.
func TestMemoKeyNonExemptFieldsDistinct(t *testing.T) {
	p := tinyParams()
	base := Job{Bench: "is", Params: p}
	st := reflect.TypeOf(Spec{})
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		probe, ok := specProbes[name]
		if !ok {
			t.Errorf("Spec field %s has no probe: extend specProbes when adding fields", name)
			continue
		}
		if reflect.ValueOf(probe).Field(i).IsZero() {
			t.Errorf("probe for %s leaves the field at its zero value", name)
			continue
		}
		varied := Job{Bench: "is", Params: p, Spec: probe}
		if base.key() == varied.key() {
			t.Errorf("varying non-exempt Spec field %s does not change the memo key: %+v",
				name, varied.key())
		}
	}
}

// TestMemoKeyProbesPairwiseDistinct: no two single-field probes may fold to
// the same key either — the normaliser is allowed to merge spellings of the
// same configuration (Amnesic vs KindAmnesic), never distinct ones.
func TestMemoKeyProbesPairwiseDistinct(t *testing.T) {
	p := tinyParams()
	keys := make(map[runKey]string)
	for name, probe := range specProbes {
		key := Job{Bench: "is", Params: p, Spec: probe}.key()
		if prev, dup := keys[key]; dup {
			t.Errorf("probes %s and %s collide on memo key %+v", prev, name, key)
		}
		keys[key] = name
	}
}

// TestMemoExemptKnobsShareCell: the //acr:memo-exempt grammar promises the
// opposite direction — changing an exempt Runner knob must neither open a
// new cache cell nor change the memoised result. The declared knobs
// (Workers, SimWorkers, SimCompile, SimCoalesce) are flipped across their
// interesting settings — SimCompile leaning on the compile fuzz oracle's
// bit-identity guarantee and SimCoalesce on the scheduler's coalescing
// contract (NewRunner enables it, so the flipped setting is off).
func TestMemoExemptKnobsShareCell(t *testing.T) {
	p := tinyParams()
	spec := Spec{Ckpt: true, Amnesic: true, NumCkpts: 10}

	r := NewRunner()
	want, err := r.Run("is", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(r.cache)

	// Same runner, knobs changed: the warmed cache must be reused as-is.
	r.Workers = 4
	r.SimWorkers = 2
	r.SimCompile = true
	r.SimCoalesce = false
	if _, err := r.Run("is", p, spec); err != nil {
		t.Fatal(err)
	}
	if len(r.cache) != cells {
		t.Errorf("changing exempt knobs grew the cache from %d to %d cells", cells, len(r.cache))
	}

	// Fresh runner at the other knob settings: the exempt declaration also
	// claims result invariance, so a cold run must be bit-identical.
	r2 := NewRunner()
	r2.Workers = 4
	r2.SimWorkers = 2
	r2.SimCompile = true
	r2.SimCoalesce = false
	got, err := r2.Run("is", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("exempt knobs changed the result:\nserial: %+v\nknobbed: %+v", want, got)
	}
	if len(r2.cache) != cells {
		t.Errorf("knobbed runner used %d cells, serial used %d", len(r2.cache), cells)
	}
}
