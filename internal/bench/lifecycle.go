package bench

import (
	"fmt"

	"acr/internal/sim"
)

// Lifecycle observes driver-level job execution: the observability plane
// (internal/obsrv) implements it to register every RunAll/RunObserved job
// in the live run registry. Hooks are driver-side only — they see host-time
// lifecycle transitions and may attach sim.Observers, but like every
// observer they must not feed anything back into simulated results: a
// runner with a Lifecycle attached returns bit-identical Results to one
// without (the simulator's observation invariant, enforced by the
// determinism tests and the observerpurity analyzer).
type Lifecycle interface {
	// JobBegin is called when the driver starts working on a job. key is
	// the job's deterministic memoisation key (Job.KeyString); shared
	// reports that the job's cache cell already existed, so it will ride
	// on another execution instead of simulating. The returned
	// observation receives the job's completion; a nil return disables
	// observation for this job.
	JobBegin(j Job, key string, shared bool) JobObservation
}

// JobObservation is one observed job in flight.
type JobObservation interface {
	// Observers are attached to every machine execution performed on
	// behalf of this job (including checkpoint-period calibration
	// attempts — the flight-recorder semantics are "recent activity",
	// not "the converged run"; use Runner.RunObserved for the latter).
	// Cache-shared jobs execute nothing, so their observers see no
	// events.
	Observers() []sim.Observer
	// JobEnd delivers the job's final result or error.
	JobEnd(res sim.Result, err error)
}

// KeyString renders the job's deterministic memoisation key as a stable,
// human-readable string: benchmark, scale, the paper configuration name,
// then every remaining normalised Spec knob spelled explicitly. Two jobs
// share a KeyString exactly when they share a memo cache cell, so the
// string is usable as a cross-process run-registry and result-store key
// (the lifecycle key test proves every Spec field reaches it).
func (j Job) KeyString() string {
	k := j.key()
	s := k.spec
	return fmt.Sprintf("%s/t%d/%s/%s/e%d-th%d-n%d-c%t-a%t-m%d-d%g",
		k.bench, k.threads, k.class, s.String(),
		s.Errors, s.Threshold, s.NumCkpts, s.CostPolicy, s.Adaptive,
		s.MapCapacity, s.DetectFrac)
}

// beginJob fires the runner's lifecycle hook for j, returning a nil
// observation when no lifecycle is attached.
func (r *Runner) beginJob(j Job) JobObservation {
	if r.Lifecycle == nil {
		return nil
	}
	return r.Lifecycle.JobBegin(j, j.KeyString(), r.hasEntry(j.key()))
}
