// Package bench is the experiment harness: it reconstructs every table and
// figure of the paper's evaluation (§IV–§V) from simulator runs. Each
// experiment has a generator returning a stats.Table; cmd/acrbench and the
// repository's bench_test.go drive them.
//
//acr:deterministic
package bench

import (
	"fmt"
	"sync"

	"acr/internal/ckpt"
	acr "acr/internal/core"
	"acr/internal/fault"
	"acr/internal/sim"
	"acr/internal/workloads"
)

// Spec names one of the paper's configurations (§IV). Every field either
// reaches the memoisation key (runKey embeds the normalised Spec) or is
// folded into a keyed field by the canonicaliser — the memokey analyzer
// proves it.
//
//acr:memo-spec normalized
type Spec struct {
	// Ckpt enables checkpointing; Errors injects that many fail-stop
	// errors; Amnesic attaches ACR; Local selects coordinated local
	// checkpointing.
	Ckpt    bool
	Errors  int
	Amnesic bool
	Local   bool
	// Threshold overrides the benchmark's Slice-length threshold
	// (0 keeps the benchmark default: 10, or 5 for is).
	Threshold int
	// NumCkpts sets the checkpoint budget used to derive the period
	// (0 = the paper's default of 25, §V-D3).
	NumCkpts int

	// Extensions beyond the paper's configurations, used by the
	// ablation experiments:
	// CostPolicy replaces the greedy threshold with the cost-based
	// Slice selection the paper sketches in §III-A.
	CostPolicy bool
	// Adaptive enables recomputation-aware checkpoint placement
	// (§V-D1/§V-D3 future work).
	Adaptive bool
	// MapCapacity overrides the AddrMap record capacity (0 = 4096 per
	// core).
	MapCapacity int
	// DetectFrac overrides the error-detection latency as a fraction of
	// the checkpoint period (0 = the default 0.5; must stay ≤ the
	// strategy's retained-checkpoint depth minus one).
	DetectFrac float64

	// Strategy selects the checkpoint scheme (ckpt.Kinds). The zero value
	// composes with the legacy booleans: Amnesic spells ckpt.KindAmnesic,
	// otherwise the conventional full-logging baseline. Specs are
	// normalised before memoisation, so the boolean and explicit
	// spellings share one cache cell instead of colliding or duplicating.
	Strategy ckpt.Kind
}

// normalized folds the legacy Amnesic boolean and the Strategy field into
// one canonical spelling: Strategy always names the scheme, and Amnesic is
// set exactly for the amnesic-family strategies. Every cache key and
// execution path uses the normalised form.
func (s Spec) normalized() Spec {
	if s.Strategy == ckpt.KindFull && s.Amnesic {
		s.Strategy = ckpt.KindAmnesic
	}
	s.Amnesic = s.Strategy.Amnesic()
	return s
}

// Kind returns the checkpoint strategy the Spec resolves to after
// normalisation — the name CLIs and telemetry should report.
func (s Spec) Kind() ckpt.Kind {
	return s.normalized().Strategy
}

// The paper's named configurations.
var (
	NoCkpt      = Spec{}
	CkptNE      = Spec{Ckpt: true}
	CkptE       = Spec{Ckpt: true, Errors: 1}
	ReCkptNE    = Spec{Ckpt: true, Amnesic: true}
	ReCkptE     = Spec{Ckpt: true, Amnesic: true, Errors: 1}
	CkptNELoc   = Spec{Ckpt: true, Local: true}
	CkptELoc    = Spec{Ckpt: true, Errors: 1, Local: true}
	ReCkptNELoc = Spec{Ckpt: true, Amnesic: true, Local: true}
	ReCkptELoc  = Spec{Ckpt: true, Amnesic: true, Errors: 1, Local: true}
)

// String renders the paper's name for the configuration.
func (s Spec) String() string {
	if !s.Ckpt {
		return "NoCkpt"
	}
	s = s.normalized()
	var name string
	switch s.Strategy {
	case ckpt.KindAmnesic:
		name = "ReCkpt"
	case ckpt.KindDifferential:
		name = "DiffCkpt"
	case ckpt.KindTiered:
		name = "TierCkpt"
	case ckpt.KindAuto:
		name = "AutoCkpt"
	default:
		name = "Ckpt"
	}
	if s.Errors > 0 {
		name += "_E"
	} else {
		name += "_NE"
	}
	if s.Local {
		name += ",Loc"
	}
	return name
}

// Params fixes the machine scale for a set of experiments.
type Params struct {
	Threads int
	Class   workloads.Class
}

// DefaultParams mirrors the paper's primary setup: 8 threads on 8 cores
// (scalability raises this to 16/32), class W problems.
func DefaultParams() Params {
	return Params{Threads: 8, Class: workloads.ClassW}
}

// DefaultNumCkpts is the paper's default checkpoint count per run.
const DefaultNumCkpts = 25

// runKey is the memoisation key: a pure value (the memokey analyzer proves
// deep comparability), so semantically equal configurations hit one cell.
//
//acr:memo-key
type runKey struct {
	bench   string
	threads int
	class   string
	spec    Spec
}

// Runner executes configurations with memoisation: figures 6–8 share runs,
// and every checkpointed run shares its NoCkpt baseline. The cache is safe
// for concurrent use — RunAll executes experiment grids through a worker
// pool — and deduplicates in-flight work: concurrent requests for the same
// key block on one execution instead of repeating it.
//
// Exported fields are driver knobs living outside the memo key; each must
// carry //acr:memo-exempt with its result-invariance argument (the memokey
// analyzer rejects undeclared knobs).
//
//acr:memo-cache
type Runner struct {
	// Workers bounds RunAll's worker pool; 0 means GOMAXPROCS. Results
	// are bit-identical at any pool width — jobs are independent machines
	// and results return in job order — so the knob stays outside the key.
	//
	//acr:memo-exempt
	Workers int

	// SimWorkers is the intra-run worker count handed to
	// sim.Config.Workers (0 or 1 = serial execution). The parallel engine
	// is bit-identical to the serial scheduler — any speculative round
	// that fails its conflict check is discarded and replayed serially —
	// so SimWorkers is deliberately not part of the memoisation key: a
	// cache warmed at one worker count serves every other.
	//
	//acr:memo-exempt
	SimWorkers int

	// SimCompile hands sim.Config.Compile to every execution: the
	// block-compilation engine. The engine is bit-identical to the
	// interpreter by contract (the sim package's compile fuzz oracle),
	// so the knob is deliberately not part of the memoisation key: a
	// cache warmed with the engine on serves -compile=false runs and
	// vice versa.
	//
	//acr:memo-exempt
	SimCompile bool

	// SimCoalesce hands sim.Config.Coalesce to every execution: scheduler
	// quantum coalescing on the serial engine. Coalescing only reorders
	// provably core-private instructions, so results are bit-identical
	// with it on or off (the sim package's fuzz and oracle suites pin
	// this) and the knob is deliberately not part of the memoisation key,
	// exactly like SimCompile. NewRunner enables it.
	//
	//acr:memo-exempt
	SimCoalesce bool

	// Lifecycle, when non-nil, receives job begin/end notifications from
	// RunAll and RunObserved and may attach observers to executions (the
	// live run registry in internal/obsrv rides on it). Observation is
	// strictly one-way — observers cannot change simulated results, so
	// the hook stays outside the memo key and a cache warmed with a
	// lifecycle attached serves runs without one, bit-identically.
	//
	//acr:memo-exempt
	Lifecycle Lifecycle

	mu      sync.Mutex
	cache   map[runKey]*runEntry
	reports []JobReport
}

// runEntry is one memoised cell: the once gate serialises computation so a
// key is simulated exactly once no matter how many goroutines request it.
type runEntry struct {
	once sync.Once
	res  sim.Result
	err  error
}

// NewRunner returns an empty-cache runner with quantum coalescing enabled
// (the sim default).
func NewRunner() *Runner {
	return &Runner{cache: make(map[runKey]*runEntry), SimCoalesce: true}
}

// Run executes benchmark bench under spec at the given scale, memoised.
// It is safe to call concurrently; dependent runs (a checkpointed spec
// calibrating against its NoCkpt baseline) nest through distinct cache
// entries, so the once gates cannot deadlock.
func (r *Runner) Run(benchName string, p Params, spec Spec) (sim.Result, error) {
	return r.runWith(benchName, p, spec)
}

// runWith is Run with observers attached to every execution performed for
// the key (calibration attempts included; dependent baseline runs are
// their own keys and stay unobserved). Only the caller that wins the once
// gate attaches its observers — concurrent requests for an in-flight key
// share the result, not the event stream.
func (r *Runner) runWith(benchName string, p Params, spec Spec, obs ...sim.Observer) (sim.Result, error) {
	spec = spec.normalized()
	e := r.entry(runKey{benchName, p.Threads, p.Class.Name, spec})
	e.once.Do(func() { e.res, e.err = r.run(benchName, p, spec, obs...) })
	return e.res, e.err
}

func (r *Runner) entry(key runKey) *runEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.cache[key]
	if e == nil {
		e = &runEntry{}
		r.cache[key] = e
	}
	return e
}

// Baseline returns the NoCkpt run for the benchmark at the given scale.
func (r *Runner) Baseline(benchName string, p Params) (sim.Result, error) {
	return r.Run(benchName, p, NoCkpt)
}

func (r *Runner) run(benchName string, p Params, spec Spec, obs ...sim.Observer) (sim.Result, error) {
	bench, err := workloads.ByName(benchName)
	if err != nil {
		return sim.Result{}, err
	}
	if !spec.Ckpt {
		return r.execute(bench, p, spec, r.SimWorkers, 0, 0, 0, obs...)
	}

	// The paper fixes the number of checkpoints per run and distributes
	// them uniformly over the *checkpointed* execution (§IV, §V-D3).
	// The runtime is not known before the run, so the period is
	// calibrated by fixed point: start from the NoCkpt runtime, re-derive
	// the period from each run's realised length, and stop once the
	// final checkpoint lands in the last fraction of the run.
	base, err := r.Baseline(benchName, p)
	if err != nil {
		return sim.Result{}, err
	}
	n := spec.NumCkpts
	if n == 0 {
		n = DefaultNumCkpts
	}
	roi := int64(float64(base.Cycles) * bench.WarmupFrac)
	horizon := base.Cycles
	var res sim.Result
	for attempt := 0; attempt < 4; attempt++ {
		period := (horizon - roi) / int64(n+1)
		if period < 1 {
			period = 1
		}
		res, err = r.execute(bench, p, spec, r.SimWorkers, period, int64(n), roi, obs...)
		if err != nil {
			return sim.Result{}, err
		}
		// Converged when the n budgeted checkpoints cover the run:
		// the realised run is within one period of n+1 periods past
		// the ROI start.
		if res.Cycles-roi <= int64(n+2)*period {
			break
		}
		horizon = res.Cycles
	}
	return res, nil
}

func (r *Runner) execute(bench workloads.Bench, p Params, spec Spec, workers int, period, maxCkpts, roi int64, obs ...sim.Observer) (sim.Result, error) {
	spec = spec.normalized()
	cfg := sim.DefaultConfig(p.Threads)
	cfg.Workers = workers
	cfg.Compile = r.SimCompile
	cfg.Coalesce = r.SimCoalesce
	cfg.Observers = obs
	if spec.Ckpt {
		cfg.Checkpointing = true
		cfg.Strategy = spec.Strategy
		cfg.PeriodCycles = period
		cfg.MaxCheckpoints = maxCkpts
		cfg.ROIStartCycles = roi
		if spec.Local {
			cfg.Mode = ckpt.Local
		}
		if spec.Amnesic {
			threshold := spec.Threshold
			if threshold == 0 {
				threshold = bench.Threshold
			}
			capacity := spec.MapCapacity
			if capacity == 0 {
				capacity = 4096 * p.Threads
			}
			cfg.ACR = acr.Config{Threshold: threshold, MapCapacity: capacity}
			if spec.CostPolicy {
				cfg.ACR.Policy = acr.PolicyCost
			}
			cfg.AdaptivePlacement = spec.Adaptive
		}
		if spec.Errors > 0 {
			// Errors uniformly distributed over the ROI (§V-D2),
			// detection latency of half a period by default (≤ period,
			// §II-A).
			frac := spec.DetectFrac
			if frac == 0 {
				frac = 0.5
			}
			lat := int64(float64(period) * frac)
			cfg.Errors = fault.UniformIn(spec.Errors, roi, roi+period*maxCkpts, lat)
		}
	}
	program, err := bench.Build(p.Threads, p.Class)
	if err != nil {
		return sim.Result{}, fmt.Errorf("bench %s %v: %w", bench.Name, spec, err)
	}
	m, err := sim.New(cfg, program)
	if err != nil {
		return sim.Result{}, fmt.Errorf("bench %s %v: %w", bench.Name, spec, err)
	}
	res, err := m.Run()
	if err != nil {
		return sim.Result{}, fmt.Errorf("bench %s %v: %w", bench.Name, spec, err)
	}
	return res, nil
}

// BenchNames returns the evaluation order used by the paper's figures.
func BenchNames() []string {
	return []string{"bt", "cg", "dc", "ft", "is", "lu", "mg", "sp"}
}
