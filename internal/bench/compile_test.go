package bench

import (
	"strings"
	"testing"
)

// TestCompileModeRoundTrip: every mode's canonical spelling parses back to
// itself — the -compile flag analogue of the checkpoint-spec round-trip.
func TestCompileModeRoundTrip(t *testing.T) {
	for _, m := range []CompileMode{CompileOff, CompileOn, CompileAuto} {
		got, err := ParseCompileMode(m.String())
		if err != nil {
			t.Fatalf("ParseCompileMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("ParseCompileMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
}

// TestCompileModeAliases: bool spellings map onto on/off, and the empty
// string (an unset flag default) is off.
func TestCompileModeAliases(t *testing.T) {
	for in, want := range map[string]CompileMode{
		"":      CompileOff,
		"false": CompileOff,
		"true":  CompileOn,
	} {
		got, err := ParseCompileMode(in)
		if err != nil {
			t.Fatalf("ParseCompileMode(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseCompileMode(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestCompileModeRejectsGarbage: unknown spellings fail with an error that
// names the valid grammar, the way -strategy rejections do.
func TestCompileModeRejectsGarbage(t *testing.T) {
	for _, in := range []string{"yes", "ON", "compile", "1"} {
		if _, err := ParseCompileMode(in); err == nil {
			t.Errorf("ParseCompileMode(%q) accepted garbage", in)
		} else if !strings.Contains(err.Error(), "off, on, auto") {
			t.Errorf("ParseCompileMode(%q) error does not list valid modes: %v", in, err)
		}
	}
}

// TestCompileModeResolve: the worker-count validation matrix. "on" with a
// parallel engine is the unsupported combination — speculative rounds
// bypass block compilation, so honoring the flag is impossible.
func TestCompileModeResolve(t *testing.T) {
	cases := []struct {
		mode    CompileMode
		workers int
		want    bool
		wantErr bool
	}{
		{CompileOff, 1, false, false},
		{CompileOff, 8, false, false},
		{CompileOn, 1, true, false},
		{CompileOn, 2, false, true},
		{CompileOn, 8, false, true},
		{CompileAuto, 1, true, false},
		{CompileAuto, 8, false, false},
	}
	for _, c := range cases {
		got, err := c.mode.Resolve(c.workers)
		if (err != nil) != c.wantErr {
			t.Errorf("%v.Resolve(%d) error = %v, wantErr %v", c.mode, c.workers, err, c.wantErr)
			continue
		}
		if err != nil && !strings.Contains(err.Error(), "unsupported") {
			t.Errorf("%v.Resolve(%d) error does not say unsupported: %v", c.mode, c.workers, err)
		}
		if got != c.want {
			t.Errorf("%v.Resolve(%d) = %v, want %v", c.mode, c.workers, got, c.want)
		}
	}
}
