package bench

import (
	"fmt"

	"acr/internal/stats"
)

// Ablations beyond the paper's figures, exercising the design choices
// DESIGN.md calls out: the Slice-selection policy (threshold vs the
// cost-based alternative of §III-A), the AddrMap capacity bound (§III-C),
// the error-detection latency assumption (§II-A), and the
// recomputation-aware checkpoint placement left to future work
// (§V-D1/§V-D3).

// AblationPolicy compares the paper's greedy threshold against the
// cost-based Slice selection on checkpoint size and time overhead.
func (r *Runner) AblationPolicy(p Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Ablation: Slice selection policy — greedy threshold (paper) vs cost-based (§III-A sketch)",
		Cols: []string{"bench", "thr size-red%", "cost size-red%",
			"thr time-ovh%", "cost time-ovh%"},
	}
	costSpec := ReCkptNE
	costSpec.CostPolicy = true
	if err := r.warm(p, NoCkpt, ReCkptNE, costSpec); err != nil {
		return nil, err
	}
	for _, name := range BenchNames() {
		base, err := r.Baseline(name, p)
		if err != nil {
			return nil, err
		}
		thr, err := r.Run(name, p, ReCkptNE)
		if err != nil {
			return nil, err
		}
		cost := ReCkptNE
		cost.CostPolicy = true
		cres, err := r.Run(name, p, cost)
		if err != nil {
			return nil, err
		}
		to, _ := sizeReduction(thr)
		co, _ := sizeReduction(cres)
		t.AddRow(name, stats.Pct(to), stats.Pct(co),
			stats.Pct(stats.OverheadPct(float64(thr.Cycles), float64(base.Cycles))),
			stats.Pct(stats.OverheadPct(float64(cres.Cycles), float64(base.Cycles))))
	}
	t.AddNote("the cost policy embeds every Slice whose recomputation is cheaper than the avoided memory traffic")
	return t, nil
}

// AblationAddrMap sweeps the AddrMap capacity (records per machine) and
// reports the checkpoint size reduction, exposing the bound of §III-C: the
// number of omittable values is limited by how many associations the
// on-chip buffer can retain.
func (r *Runner) AblationAddrMap(p Params) (*stats.Table, error) {
	caps := []int{64, 256, 1024, 4096 * p.Threads}
	cols := []string{"bench"}
	for _, c := range caps {
		cols = append(cols, fmt.Sprintf("%d", c))
	}
	t := &stats.Table{
		Title: "Ablation: checkpoint size reduction (%) vs AddrMap capacity (records)",
		Cols:  cols,
	}
	specs := make([]Spec, 0, len(caps))
	for _, c := range caps {
		spec := ReCkptNE
		spec.MapCapacity = c
		specs = append(specs, spec)
	}
	if err := r.warm(p, specs...); err != nil {
		return nil, err
	}
	for _, name := range BenchNames() {
		row := []string{name}
		for _, c := range caps {
			spec := ReCkptNE
			spec.MapCapacity = c
			res, err := r.Run(name, p, spec)
			if err != nil {
				return nil, err
			}
			overall, _ := sizeReduction(res)
			row = append(row, stats.Pct(overall))
		}
		t.AddRow(row...)
	}
	t.AddNote("a too-small AddrMap cannot retain enough <address, Slice> records to cover the interval's unique stores (§III-C)")
	return t, nil
}

// AblationDetect sweeps the error-detection latency (as a fraction of the
// checkpoint period) and reports the time overhead of ReCkpt_E: a longer
// lag invalidates the newest checkpoint more often, forcing deeper
// roll-backs (Fig. 2) and longer waste.
func (r *Runner) AblationDetect(p Params) (*stats.Table, error) {
	fracs := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	cols := []string{"bench"}
	for _, f := range fracs {
		cols = append(cols, fmt.Sprintf("%.2f", f))
	}
	t := &stats.Table{
		Title: "Ablation: ReCkpt_E time overhead (%) vs detection latency (fraction of period)",
		Cols:  cols,
	}
	specs := []Spec{NoCkpt}
	for _, f := range fracs {
		spec := ReCkptE
		spec.DetectFrac = f
		specs = append(specs, spec)
	}
	if err := r.warm(p, specs...); err != nil {
		return nil, err
	}
	for _, name := range BenchNames() {
		base, err := r.Baseline(name, p)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, f := range fracs {
			spec := ReCkptE
			spec.DetectFrac = f
			res, err := r.Run(name, p, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Pct(stats.OverheadPct(float64(res.Cycles), float64(base.Cycles))))
		}
		t.AddRow(row...)
	}
	t.AddNote("latency ≤ period is the assumption that lets two retained checkpoints suffice (§II-A)")
	return t, nil
}

// AblationAdaptive compares uniform checkpoint placement (the paper's
// setup) against the recomputation-aware placement of §V-D1/§V-D3's
// future-work remark.
func (r *Runner) AblationAdaptive(p Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Ablation: uniform vs recomputation-aware checkpoint placement (ReCkpt_NE)",
		Cols: []string{"bench", "uniform ckpts", "adaptive ckpts",
			"uniform ovh%", "adaptive ovh%", "uniform red%", "adaptive red%"},
	}
	adaSpec := ReCkptNE
	adaSpec.Adaptive = true
	if err := r.warm(p, NoCkpt, ReCkptNE, adaSpec); err != nil {
		return nil, err
	}
	for _, name := range BenchNames() {
		base, err := r.Baseline(name, p)
		if err != nil {
			return nil, err
		}
		uni, err := r.Run(name, p, ReCkptNE)
		if err != nil {
			return nil, err
		}
		spec := ReCkptNE
		spec.Adaptive = true
		ada, err := r.Run(name, p, spec)
		if err != nil {
			return nil, err
		}
		uo, _ := sizeReduction(uni)
		ao, _ := sizeReduction(ada)
		t.AddRow(name,
			fmt.Sprintf("%d", uni.Ckpt.Checkpoints), fmt.Sprintf("%d", ada.Ckpt.Checkpoints),
			stats.Pct(stats.OverheadPct(float64(uni.Cycles), float64(base.Cycles))),
			stats.Pct(stats.OverheadPct(float64(ada.Cycles), float64(base.Cycles))),
			stats.Pct(uo), stats.Pct(ao))
	}
	t.AddNote("adaptive placement defers boundaries while recomputation is absorbing the would-be checkpoint")
	return t, nil
}
