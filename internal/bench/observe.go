package bench

import (
	"acr/internal/sim"
	"acr/internal/workloads"
)

// RunObserved executes benchmark benchName under spec with observers
// attached to the machine's event stream.
//
// Observers cannot attach through Run: checkpoint-period calibration
// (Runner.run) may execute a configuration several times before its fixed
// point converges, so an observer there would see the concatenation of
// calibration attempts. RunObserved instead obtains the memoised, calibrated
// Result first, then re-executes exactly once with the realised period and
// ROI echoed in that Result. The simulator is deterministic, so the replay
// is bit-identical to the cached run — the observers see the single
// converged execution, and the returned Result equals Run's.
//
// The replay always runs serially (sim.Config.Workers = 1) regardless of
// r.SimWorkers: the serial scheduler is the determinism oracle, so when the
// cached run used the parallel engine, comparing the replayed Result against
// the cached one cross-checks workers>1 against workers=1 — a divergence is
// a parallel-determinism bug the caller must surface, not export around.
// A runner with a Lifecycle attached additionally registers the observed
// job: the lifecycle's observers join the replay (seeing exactly the
// converged execution) and JobEnd receives the replayed Result.
func (r *Runner) RunObserved(benchName string, p Params, spec Spec, obs ...sim.Observer) (res sim.Result, err error) {
	bench, berr := workloads.ByName(benchName)
	if berr != nil {
		return sim.Result{}, berr
	}
	if token := r.beginJob(Job{Bench: benchName, Params: p, Spec: spec}); token != nil {
		obs = append(append([]sim.Observer(nil), token.Observers()...), obs...)
		defer func() { token.JobEnd(res, err) }()
	}
	if !spec.Ckpt {
		return r.execute(bench, p, spec, 1, 0, 0, 0, obs...)
	}
	calibrated, cerr := r.Run(benchName, p, spec)
	if cerr != nil {
		return sim.Result{}, cerr
	}
	n := spec.NumCkpts
	if n == 0 {
		n = DefaultNumCkpts
	}
	return r.execute(bench, p, spec, 1, calibrated.PeriodCycles, int64(n), calibrated.ROIStartCycles, obs...)
}
