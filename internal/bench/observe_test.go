package bench

import (
	"reflect"
	"testing"

	"acr/internal/sim"
	"acr/internal/workloads"
)

type streamRecorder struct {
	events []sim.Event
}

func (o *streamRecorder) OnEvent(e sim.Event) { o.events = append(o.events, e) }

func observeParams() Params { return Params{Threads: 4, Class: workloads.ClassS} }

// TestRunObservedMatchesRun: the observed replay of a calibrated
// checkpointed run returns a Result bit-identical to the memoised one —
// the observers watched the same execution the tables report.
func TestRunObservedMatchesRun(t *testing.T) {
	r := NewRunner()
	p := observeParams()
	want, err := r.Run("is", p, ReCkptE)
	if err != nil {
		t.Fatal(err)
	}
	obs := &streamRecorder{}
	got, err := r.RunObserved("is", p, ReCkptE, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("observed replay diverged from memoised run:\n%+v\n%+v", want, got)
	}
	if len(obs.events) == 0 {
		t.Fatal("observer saw no events")
	}
	kinds := map[sim.EventKind]int{}
	for _, e := range obs.events {
		kinds[e.Kind]++
	}
	if kinds[sim.EvCheckpoint] == 0 || kinds[sim.EvRecovery] == 0 {
		t.Errorf("stream missing checkpoint/recovery events: %v", kinds)
	}
}

// TestObserverStreamStableAcrossDrivers: the event stream RunObserved
// delivers is identical whether the runner's cache was warmed serially or
// through the parallel worker pool — scheduling the grid differently must
// not change what any single run looks like.
func TestObserverStreamStableAcrossDrivers(t *testing.T) {
	p := observeParams()
	jobs := []Job{
		{Bench: "is", Params: p, Spec: NoCkpt},
		{Bench: "is", Params: p, Spec: ReCkptNE},
		{Bench: "is", Params: p, Spec: ReCkptE},
	}
	stream := func(workers int) []sim.Event {
		r := NewRunner()
		r.Workers = workers
		if _, err := r.RunAll(jobs); err != nil {
			t.Fatal(err)
		}
		obs := &streamRecorder{}
		if _, err := r.RunObserved("is", p, ReCkptE, obs); err != nil {
			t.Fatal(err)
		}
		return obs.events
	}
	serial := stream(1)
	parallel := stream(4)
	if len(serial) == 0 {
		t.Fatal("empty event stream")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("event stream depends on the driver: %d events serial, %d parallel",
			len(serial), len(parallel))
	}
}

// TestJobReports: RunAll populates one report per job in submission order;
// a job whose cache entry already exists is marked Shared (it rode on the
// earlier execution instead of paying for its own).
func TestJobReports(t *testing.T) {
	r := NewRunner()
	r.Workers = 1 // serial keeps the Shared attribution deterministic
	p := observeParams()
	jobs := []Job{
		{Bench: "is", Params: p, Spec: NoCkpt},
		{Bench: "is", Params: p, Spec: ReCkptNE},
		{Bench: "is", Params: p, Spec: NoCkpt}, // duplicate of job 0
	}
	if _, err := r.RunAll(jobs); err != nil {
		t.Fatal(err)
	}
	reports := r.Reports()
	if len(reports) != len(jobs) {
		t.Fatalf("got %d reports, want %d", len(reports), len(jobs))
	}
	for i, rep := range reports {
		if rep.Job != jobs[i] {
			t.Errorf("report %d is for %+v, want %+v", i, rep.Job, jobs[i])
		}
		if rep.Wall <= 0 {
			t.Errorf("report %d: non-positive wall time %v", i, rep.Wall)
		}
		if rep.QueueWait < 0 {
			t.Errorf("report %d: negative queue wait %v", i, rep.QueueWait)
		}
	}
	if reports[0].Shared {
		t.Error("first NoCkpt job marked shared")
	}
	// Job 1 calibrates against the NoCkpt baseline job 0 computed, and job 2
	// repeats job 0 outright: both must be free rides.
	if !reports[2].Shared {
		t.Error("duplicate NoCkpt job not marked shared")
	}

	// A second RunAll over an already-warm cache is all shared.
	if _, err := r.RunAll(jobs[:1]); err != nil {
		t.Fatal(err)
	}
	reports = r.Reports()
	if len(reports) != len(jobs)+1 {
		t.Fatalf("reports did not accumulate: %d", len(reports))
	}
	if !reports[len(reports)-1].Shared {
		t.Error("warm-cache job not marked shared")
	}
}
