package bench

import (
	"reflect"
	"strings"
	"testing"
)

// TestParallelDriverMatchesSerial is the driver half of the determinism
// regression: the same experiment grid executed serially and through a
// forced multi-worker pool must produce byte-identical sim.Result structs,
// in job order. Workers is forced above 1 so the concurrent path runs even
// on a single-CPU machine (go test -race then exercises the cache).
func TestParallelDriverMatchesSerial(t *testing.T) {
	p := tinyParams()
	spec := ReCkptE // faulted, amnesic: the config with the most machinery
	spec.Errors = 2
	jobs := []Job{
		{Bench: "is", Params: p, Spec: NoCkpt},
		{Bench: "is", Params: p, Spec: CkptNE},
		{Bench: "is", Params: p, Spec: spec},
		{Bench: "lu", Params: p, Spec: spec},
		{Bench: "mg", Params: p, Spec: ReCkptNE},
	}

	serial := NewRunner()
	serial.Workers = 1
	want, err := serial.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}

	par := NewRunner()
	par.Workers = 4
	got, err := par.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(got), len(jobs))
	}
	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %d (%s %v): parallel result differs from serial:\n%+v\n%+v",
				i, jobs[i].Bench, jobs[i].Spec, got[i], want[i])
		}
	}

	// And a second parallel pass over a fresh runner replays identically.
	again := NewRunner()
	again.Workers = 4
	rerun, err := again.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rerun, got) {
		t.Error("parallel driver not deterministic across runs")
	}
}

// TestRunAllReportsFirstFailingJob: errors surface by job order, not by
// completion order, so failure reporting is deterministic too.
func TestRunAllReportsFirstFailingJob(t *testing.T) {
	r := NewRunner()
	r.Workers = 4
	jobs := []Job{
		{Bench: "is", Params: tinyParams(), Spec: NoCkpt},
		{Bench: "bogus1", Params: tinyParams(), Spec: NoCkpt},
		{Bench: "bogus2", Params: tinyParams(), Spec: NoCkpt},
	}
	_, err := r.RunAll(jobs)
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if !strings.Contains(err.Error(), "job 1") || !strings.Contains(err.Error(), "bogus1") {
		t.Errorf("error does not name the first failing job: %v", err)
	}
}

// TestRunnerConcurrentSameKey: concurrent requests for one key must share a
// single execution (the once gate), not race or duplicate work.
func TestRunnerConcurrentSameKey(t *testing.T) {
	r := NewRunner()
	r.Workers = 8
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Bench: "is", Params: tinyParams(), Spec: CkptNE}
	}
	out, err := r.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if !reflect.DeepEqual(out[i], out[0]) {
			t.Fatalf("duplicate jobs disagree at %d", i)
		}
	}
	if len(r.cache) != 2 { // the run + its NoCkpt baseline
		t.Errorf("cache holds %d entries, want 2", len(r.cache))
	}
}
