// Package isa defines the instruction set of the simulated machine.
//
// The ISA is a small RISC-like load/store architecture with 32 general
// purpose 64-bit registers. Floating point operations reinterpret register
// contents as IEEE-754 float64. The ISA carries one extension beyond a
// textbook RISC: the ASSOCADDR instruction from the ACR paper, which
// associates the memory address written by the adjacent store with the
// backward Slice that can recompute the stored value (paper §III-A).
package isa

import "fmt"

// NumRegs is the number of general purpose registers. Register 0 is
// hardwired to zero, as in MIPS/RISC-V.
const NumRegs = 32

// Reg identifies a general purpose register.
type Reg uint8

// String returns the assembly name of the register (r0..r31).
func (r Reg) String() string { return fmt.Sprintf("r%d", r) }

// Op enumerates the operations of the ISA.
type Op uint8

// Operations. Integer ALU ops come first, then floating point, then memory,
// control flow, and system operations. The split into categories is load
// bearing: Slices may contain only ops for which IsSliceable reports true.
const (
	NOP Op = iota

	// Integer ALU: rd <- rs OP rt (or imm for the *I forms).
	ADD
	SUB
	MUL
	DIV
	REM
	AND
	OR
	XOR
	SHL
	SHR
	SLT // set rd=1 if rs < rt (signed)
	ADDI
	MULI
	ANDI
	ORI
	XORI
	SHLI
	SHRI
	LUI // rd <- imm << 32
	LI  // rd <- imm (sign-extended 32-bit)
	MOV // rd <- rs

	// Floating point (registers reinterpreted as float64).
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FABS
	FSQRT
	FMA  // rd <- rs*rt + rd
	CVTF // rd <- float64(int64(rs))
	CVTI // rd <- int64(float64(rs))
	FLT  // rd <- 1 if f(rs) < f(rt)

	// Memory: word (64-bit) granularity. Address = rs + imm (word units).
	LD // rd <- mem[rs+imm]
	ST // mem[rs+imm] <- rt

	// Control flow. Branch targets are absolute instruction indices held
	// in imm (the assembler resolves labels).
	BEQ // if rs == rt goto imm
	BNE
	BLT
	BGE
	JMP  // goto imm
	HALT // stop this hardware thread

	// System.
	BARRIER // synchronise with all other threads of the program
	// ASSOCADDR executes atomically with the store that precedes it in
	// program order, associating the store's effective address with the
	// Slice able to recompute the stored value (paper §III-A). The
	// simulator's ACR checkpoint handler consumes it; on a machine
	// without ACR it is a NOP.
	ASSOCADDR

	numOps
)

var opNames = [...]string{
	NOP: "nop",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", SLT: "slt",
	ADDI: "addi", MULI: "muli", ANDI: "andi", ORI: "ori", XORI: "xori",
	SHLI: "shli", SHRI: "shri", LUI: "lui", LI: "li", MOV: "mov",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FNEG: "fneg",
	FABS: "fabs", FSQRT: "fsqrt", FMA: "fma", CVTF: "cvtf", CVTI: "cvti",
	FLT: "flt",
	LD:  "ld", ST: "st",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", JMP: "jmp",
	HALT: "halt", BARRIER: "barrier", ASSOCADDR: "assocaddr",
}

// String returns the mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o < numOps }

// IsALU reports whether o is a pure register-to-register arithmetic/logic
// operation (integer or floating point). Exactly these ops may appear in a
// Slice: the paper requires Slices to contain no memory instructions and no
// branches (§II-B, §III-A).
//
//acr:spec-safe
func (o Op) IsALU() bool {
	switch o {
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SHL, SHR, SLT,
		ADDI, MULI, ANDI, ORI, XORI, SHLI, SHRI, LUI, LI, MOV,
		FADD, FSUB, FMUL, FDIV, FNEG, FABS, FSQRT, FMA, CVTF, CVTI, FLT:
		return true
	}
	return false
}

// IsFloat reports whether o operates on floating point data. Used by the
// energy model, which charges FPU ops more than integer ALU ops.
//
//acr:spec-safe
func (o Op) IsFloat() bool {
	switch o {
	case FADD, FSUB, FMUL, FDIV, FNEG, FABS, FSQRT, FMA, CVTF, CVTI, FLT:
		return true
	}
	return false
}

// IsMem reports whether o accesses data memory.
func (o Op) IsMem() bool { return o == LD || o == ST }

// IsBranch reports whether o may redirect control flow.
//
//acr:spec-safe
func (o Op) IsBranch() bool {
	switch o {
	case BEQ, BNE, BLT, BGE, JMP:
		return true
	}
	return false
}

// HasImm reports whether o consumes the instruction's immediate field.
func (o Op) HasImm() bool {
	switch o {
	case ADDI, MULI, ANDI, ORI, XORI, SHLI, SHRI, LUI, LI,
		LD, ST, BEQ, BNE, BLT, BGE, JMP, ASSOCADDR:
		return true
	}
	return false
}

// Instr is one machine instruction. The layout is a fixed four-operand
// format; unused fields are zero. Imm holds sign-extended immediates,
// absolute branch targets, or (for LD/ST) the word offset added to Rs.
type Instr struct {
	Op  Op
	Rd  Reg   // destination (LD: destination; ST: unused)
	Rs  Reg   // first source / base address register
	Rt  Reg   // second source / store data register
	Imm int64 // immediate / branch target / address offset
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch {
	case in.Op == NOP || in.Op == HALT || in.Op == BARRIER:
		return in.Op.String()
	case in.Op == JMP:
		return fmt.Sprintf("jmp %d", in.Imm)
	case in.Op == LD:
		return fmt.Sprintf("ld %s, %d(%s)", in.Rd, in.Imm, in.Rs)
	case in.Op == ST:
		return fmt.Sprintf("st %s, %d(%s)", in.Rt, in.Imm, in.Rs)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs, in.Rt, in.Imm)
	case in.Op == LI || in.Op == LUI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case in.Op == ASSOCADDR:
		return fmt.Sprintf("assocaddr %d(%s)", in.Imm, in.Rs)
	case in.Op == MOV || in.Op == FNEG || in.Op == FABS || in.Op == FSQRT ||
		in.Op == CVTF || in.Op == CVTI:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs)
	case in.Op.HasImm():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs, in.Rt)
	}
}

// SrcRegs appends to dst the registers the instruction reads, and returns
// the extended slice. Register 0 reads are included (they read the
// hardwired zero).
func (in Instr) SrcRegs(dst []Reg) []Reg {
	switch in.Op {
	case NOP, HALT, BARRIER, JMP, LI, LUI:
		return dst
	case MOV, FNEG, FABS, FSQRT, CVTF, CVTI:
		return append(dst, in.Rs)
	case ADDI, MULI, ANDI, ORI, XORI, SHLI, SHRI:
		return append(dst, in.Rs)
	case LD:
		return append(dst, in.Rs)
	case ST:
		return append(dst, in.Rs, in.Rt)
	case BEQ, BNE, BLT, BGE:
		return append(dst, in.Rs, in.Rt)
	case FMA:
		return append(dst, in.Rs, in.Rt, in.Rd)
	case ASSOCADDR:
		return append(dst, in.Rs)
	default: // three-operand ALU
		return append(dst, in.Rs, in.Rt)
	}
}

// BranchTarget returns the absolute instruction index the instruction may
// redirect control flow to, and true; or 0 and false for non-branches.
func (in Instr) BranchTarget() (int, bool) {
	if in.Op.IsBranch() {
		return int(in.Imm), true
	}
	return 0, false
}

// DstReg returns the register the instruction writes and true, or 0 and
// false if it writes none. Writes to r0 are discarded by the core but still
// reported here.
//
//acr:spec-safe
func (in Instr) DstReg() (Reg, bool) {
	switch in.Op {
	case NOP, HALT, BARRIER, JMP, ST, BEQ, BNE, BLT, BGE, ASSOCADDR:
		return 0, false
	default:
		return in.Rd, true
	}
}
