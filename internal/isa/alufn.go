package isa

import "math"

// ALUOp is the specialised form of one ALU operation: a branch-free
// function of the source values a (Rs), b (Rt), c (Rd before the
// instruction; only FMA reads it) and the immediate. The block compiler
// (internal/cpu) captures the function once per compiled instruction so
// the hot path pays one indirect call instead of re-dispatching the
// EvalALU switch per retirement.
type ALUOp func(a, b, c, imm int64) int64

// aluFns holds one specialised function per ALU op. Each entry computes
// exactly what the corresponding EvalALU case computes — the equivalence
// is enforced bit-for-bit by TestALUFnMatchesEvalALU.
var aluFns = [numOps]ALUOp{
	ADD: func(a, b, _, _ int64) int64 { return a + b },
	SUB: func(a, b, _, _ int64) int64 { return a - b },
	MUL: func(a, b, _, _ int64) int64 { return a * b },
	DIV: func(a, b, _, _ int64) int64 {
		if b == 0 {
			return 0
		}
		return a / b
	},
	REM: func(a, b, _, _ int64) int64 {
		if b == 0 {
			return 0
		}
		return a % b
	},
	AND: func(a, b, _, _ int64) int64 { return a & b },
	OR:  func(a, b, _, _ int64) int64 { return a | b },
	XOR: func(a, b, _, _ int64) int64 { return a ^ b },
	SHL: func(a, b, _, _ int64) int64 { return a << (uint64(b) & 63) },
	SHR: func(a, b, _, _ int64) int64 { return int64(uint64(a) >> (uint64(b) & 63)) },
	SLT: func(a, b, _, _ int64) int64 {
		if a < b {
			return 1
		}
		return 0
	},
	ADDI: func(a, _, _, imm int64) int64 { return a + imm },
	MULI: func(a, _, _, imm int64) int64 { return a * imm },
	ANDI: func(a, _, _, imm int64) int64 { return a & imm },
	ORI:  func(a, _, _, imm int64) int64 { return a | imm },
	XORI: func(a, _, _, imm int64) int64 { return a ^ imm },
	SHLI: func(a, _, _, imm int64) int64 { return a << (uint64(imm) & 63) },
	SHRI: func(a, _, _, imm int64) int64 { return int64(uint64(a) >> (uint64(imm) & 63)) },
	LUI:  func(_, _, _, imm int64) int64 { return imm << 32 },
	LI:   func(_, _, _, imm int64) int64 { return imm },
	MOV:  func(a, _, _, _ int64) int64 { return a },
	FADD: func(a, b, _, _ int64) int64 { return f2i(i2f(a) + i2f(b)) },
	FSUB: func(a, b, _, _ int64) int64 { return f2i(i2f(a) - i2f(b)) },
	FMUL: func(a, b, _, _ int64) int64 { return f2i(i2f(a) * i2f(b)) },
	FDIV: func(a, b, _, _ int64) int64 { return f2i(i2f(a) / i2f(b)) },
	FNEG: func(a, _, _, _ int64) int64 { return f2i(-i2f(a)) },
	FABS: func(a, _, _, _ int64) int64 { return f2i(math.Abs(i2f(a))) },
	FSQRT: func(a, _, _, _ int64) int64 {
		return f2i(math.Sqrt(i2f(a)))
	},
	FMA:  func(a, b, c, _ int64) int64 { return f2i(i2f(a)*i2f(b) + i2f(c)) },
	CVTF: func(a, _, _, _ int64) int64 { return f2i(float64(a)) },
	CVTI: func(a, _, _, _ int64) int64 { return int64(i2f(a)) },
	FLT: func(a, b, _, _ int64) int64 {
		if i2f(a) < i2f(b) {
			return 1
		}
		return 0
	},
}

// ALUFn returns the specialised function for op. It panics if op is not an
// ALU operation; callers gate on Op.IsALU, exactly as for EvalALU.
func ALUFn(op Op) ALUOp {
	if !op.IsALU() {
		panic("isa: ALUFn on non-ALU op " + op.String())
	}
	return aluFns[op]
}
