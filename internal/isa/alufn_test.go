package isa

import (
	"math"
	"math/rand"
	"testing"
)

// TestALUFnMatchesEvalALU proves the specialised ALU table equivalent to
// the reference switch interpreter over adversarial corners and a
// randomized sweep of every ALU op. EvalALU itself dispatches through the
// table (so all engines share one code path), which makes this test the
// semantic anchor: the table must still compute what the switch computes.
// The only tolerated divergence is the NaN payload of floating-point
// results, which the language does not pin down across separately
// compiled expressions — both sides must then agree the result is NaN.
func TestALUFnMatchesEvalALU(t *testing.T) {
	corners := []int64{
		0, 1, -1, 2, -2, 63, 64, -63, -64,
		math.MaxInt64, math.MinInt64, math.MaxInt64 - 1, math.MinInt64 + 1,
		f2i(0.0), f2i(math.Copysign(0, -1)), f2i(1.5), f2i(-2.25),
		f2i(math.Inf(1)), f2i(math.Inf(-1)), f2i(math.NaN()),
		f2i(math.MaxFloat64), f2i(math.SmallestNonzeroFloat64),
	}
	rng := rand.New(rand.NewSource(42))
	randVal := func() int64 {
		if rng.Intn(3) == 0 {
			return corners[rng.Intn(len(corners))]
		}
		return int64(rng.Uint64())
	}

	for op := Op(0); op < numOps; op++ {
		if !op.IsALU() {
			continue
		}
		fn := ALUFn(op)
		check := func(a, b, c, imm int64) {
			t.Helper()
			want := evalALUSwitch(op, a, b, c, imm)
			got := fn(a, b, c, imm)
			if got2 := EvalALU(op, a, b, c, imm); got2 != got {
				t.Fatalf("%v(a=%#x b=%#x c=%#x imm=%#x): EvalALU %#x diverges from its own table %#x",
					op, a, b, c, imm, got2, got)
			}
			if got != want {
				if op.IsFloat() && math.IsNaN(i2f(got)) && math.IsNaN(i2f(want)) {
					return // NaN payloads may differ across compiled expressions
				}
				t.Fatalf("%v(a=%#x b=%#x c=%#x imm=%#x): ALUFn %#x, reference switch %#x",
					op, a, b, c, imm, got, want)
			}
		}
		for _, a := range corners {
			for _, b := range corners {
				check(a, b, corners[(len(corners)/2)], b)
			}
		}
		for i := 0; i < 10_000; i++ {
			check(randVal(), randVal(), randVal(), randVal())
		}
	}
}

// TestALUFnRejectsNonALU mirrors EvalALU's contract on non-ALU ops.
func TestALUFnRejectsNonALU(t *testing.T) {
	for _, op := range []Op{NOP, LD, ST, BEQ, JMP, HALT, BARRIER, ASSOCADDR} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ALUFn(%v) did not panic", op)
				}
			}()
			ALUFn(op)
		}()
	}
}
