package isa

import "math"

// EvalALU computes the result of a pure ALU operation. a and b are the
// values of Rs and Rt; c is the value of Rd before the instruction (only
// FMA reads it); imm is the immediate field. EvalALU is the single source
// of truth for arithmetic semantics: the CPU interpreter and the Slice
// recomputation engine both call it, which guarantees that a recomputed
// value is bit-identical to the originally stored one.
//
// EvalALU panics if op is not an ALU operation; callers gate on Op.IsALU.
//
// EvalALU dispatches through the aluFns specialisation table (alufn.go) —
// the same function values the block compiler captures per instruction —
// so the interpreter, the Slice recomputation engine and compiled blocks
// execute the identical machine code for every op. Sharing one code path
// is what makes floating-point results bit-identical across engines even
// for NaN payloads, whose propagation the language does not pin down
// across separately compiled expressions.
//
//acr:spec-safe
func EvalALU(op Op, a, b, c, imm int64) int64 {
	if !op.IsALU() {
		panic("isa: EvalALU on non-ALU op " + op.String())
	}
	return aluFns[op](a, b, c, imm) //acr:spec-ok pure table entries, written once at init
}

// evalALUSwitch is the reference switch form of EvalALU, retained for the
// table-equivalence test.
func evalALUSwitch(op Op, a, b, c, imm int64) int64 {
	switch op {
	case ADD:
		return a + b
	case SUB:
		return a - b
	case MUL:
		return a * b
	case DIV:
		if b == 0 {
			return 0 // architected: division by zero yields zero
		}
		return a / b
	case REM:
		if b == 0 {
			return 0
		}
		return a % b
	case AND:
		return a & b
	case OR:
		return a | b
	case XOR:
		return a ^ b
	case SHL:
		return a << (uint64(b) & 63)
	case SHR:
		return int64(uint64(a) >> (uint64(b) & 63))
	case SLT:
		if a < b {
			return 1
		}
		return 0
	case ADDI:
		return a + imm
	case MULI:
		return a * imm
	case ANDI:
		return a & imm
	case ORI:
		return a | imm
	case XORI:
		return a ^ imm
	case SHLI:
		return a << (uint64(imm) & 63)
	case SHRI:
		return int64(uint64(a) >> (uint64(imm) & 63))
	case LUI:
		return imm << 32
	case LI:
		return imm
	case MOV:
		return a
	case FADD:
		return f2i(i2f(a) + i2f(b))
	case FSUB:
		return f2i(i2f(a) - i2f(b))
	case FMUL:
		return f2i(i2f(a) * i2f(b))
	case FDIV:
		return f2i(i2f(a) / i2f(b))
	case FNEG:
		return f2i(-i2f(a))
	case FABS:
		return f2i(math.Abs(i2f(a)))
	case FSQRT:
		return f2i(math.Sqrt(i2f(a)))
	case FMA:
		return f2i(i2f(a)*i2f(b) + i2f(c))
	case CVTF:
		return f2i(float64(a))
	case CVTI:
		return int64(i2f(a))
	case FLT:
		if i2f(a) < i2f(b) {
			return 1
		}
		return 0
	}
	panic("isa: EvalALU on non-ALU op " + op.String())
}

// BranchTaken reports whether a branch with source values a, b is taken.
// JMP is unconditionally taken. BranchTaken panics on non-branch ops.
//
//acr:spec-safe
func BranchTaken(op Op, a, b int64) bool {
	switch op {
	case BEQ:
		return a == b
	case BNE:
		return a != b
	case BLT:
		return a < b
	case BGE:
		return a >= b
	case JMP:
		return true
	}
	panic("isa: BranchTaken on non-branch op " + op.String())
}

// F2I converts a float64 to its register (bit pattern) representation.
func F2I(f float64) int64 { return f2i(f) }

// I2F interprets a register value as a float64.
func I2F(v int64) float64 { return i2f(v) }

//acr:spec-safe
func f2i(f float64) int64 { return int64(math.Float64bits(f)) }

//acr:spec-safe
func i2f(v int64) float64 { return math.Float64frombits(uint64(v)) }
