package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpClassesDisjoint(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		classes := 0
		if op.IsALU() {
			classes++
		}
		if op.IsMem() {
			classes++
		}
		if op.IsBranch() {
			classes++
		}
		if classes > 1 {
			t.Errorf("op %v belongs to %d classes", op, classes)
		}
	}
}

func TestEveryOpNamed(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if !op.Valid() {
			t.Fatalf("op %d not valid below numOps", op)
		}
		s := op.String()
		if s == "" || s[0] == 'o' && s[1] == 'p' && s[2] == '(' {
			t.Errorf("op %d has no mnemonic", op)
		}
	}
	if Op(numOps).Valid() {
		t.Error("numOps reported valid")
	}
}

func TestFloatOpsAreALU(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.IsFloat() && !op.IsALU() {
			t.Errorf("float op %v not classified ALU", op)
		}
	}
}

func TestEvalALUInteger(t *testing.T) {
	cases := []struct {
		op        Op
		a, b, imm int64
		want      int64
	}{
		{ADD, 3, 4, 0, 7},
		{SUB, 3, 4, 0, -1},
		{MUL, -3, 4, 0, -12},
		{DIV, 12, 4, 0, 3},
		{DIV, 12, 0, 0, 0},
		{REM, 13, 4, 0, 1},
		{REM, 13, 0, 0, 0},
		{AND, 0b1100, 0b1010, 0, 0b1000},
		{OR, 0b1100, 0b1010, 0, 0b1110},
		{XOR, 0b1100, 0b1010, 0, 0b0110},
		{SHL, 1, 4, 0, 16},
		{SHR, -1, 60, 0, 15},
		{SLT, -5, 3, 0, 1},
		{SLT, 3, -5, 0, 0},
		{ADDI, 10, 0, -3, 7},
		{MULI, 10, 0, -3, -30},
		{ANDI, 0b111, 0, 0b101, 0b101},
		{ORI, 0b100, 0, 0b001, 0b101},
		{XORI, 0b111, 0, 0b010, 0b101},
		{SHLI, 3, 0, 2, 12},
		{SHRI, 16, 0, 2, 4},
		{LUI, 0, 0, 5, 5 << 32},
		{LI, 99, 0, -42, -42},
		{MOV, 77, 0, 0, 77},
	}
	for _, c := range cases {
		got := EvalALU(c.op, c.a, c.b, 0, c.imm)
		if got != c.want {
			t.Errorf("%v(%d,%d,imm=%d) = %d, want %d", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestEvalALUFloat(t *testing.T) {
	a, b := F2I(2.5), F2I(4.0)
	check := func(op Op, want float64) {
		t.Helper()
		got := I2F(EvalALU(op, a, b, F2I(1.0), 0))
		if got != want {
			t.Errorf("%v = %g, want %g", op, got, want)
		}
	}
	check(FADD, 6.5)
	check(FSUB, -1.5)
	check(FMUL, 10.0)
	check(FDIV, 0.625)
	check(FNEG, -2.5)
	check(FSQRT, math.Sqrt(2.5))
	check(FMA, 2.5*4.0+1.0)
	if got := I2F(EvalALU(FABS, F2I(-3.25), 0, 0, 0)); got != 3.25 {
		t.Errorf("FABS = %g", got)
	}
	if got := I2F(EvalALU(CVTF, 7, 0, 0, 0)); got != 7.0 {
		t.Errorf("CVTF = %g", got)
	}
	if got := EvalALU(CVTI, F2I(7.9), 0, 0, 0); got != 7 {
		t.Errorf("CVTI = %d", got)
	}
	if got := EvalALU(FLT, F2I(1.0), F2I(2.0), 0, 0); got != 1 {
		t.Errorf("FLT(1,2) = %d", got)
	}
	if got := EvalALU(FLT, F2I(2.0), F2I(1.0), 0, 0); got != 0 {
		t.Errorf("FLT(2,1) = %d", got)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		// NaN payloads round-trip through the bit conversion.
		return F2I(I2F(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalALUDeterministic(t *testing.T) {
	// Property: EvalALU is a pure function — same inputs, same output.
	// This underpins the recomputation correctness guarantee.
	f := func(a, b, c, imm int64) bool {
		for op := Op(0); op < numOps; op++ {
			if !op.IsALU() {
				continue
			}
			if EvalALU(op, a, b, c, imm) != EvalALU(op, a, b, c, imm) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{BEQ, 1, 1, true}, {BEQ, 1, 2, false},
		{BNE, 1, 2, true}, {BNE, 2, 2, false},
		{BLT, -1, 0, true}, {BLT, 0, -1, false},
		{BGE, 0, 0, true}, {BGE, -1, 0, false},
		{JMP, 0, 0, true},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("BranchTaken(%v,%d,%d) = %v", c.op, c.a, c.b, got)
		}
	}
}

func TestSrcDstRegs(t *testing.T) {
	in := Instr{Op: ADD, Rd: 1, Rs: 2, Rt: 3}
	srcs := in.SrcRegs(nil)
	if len(srcs) != 2 || srcs[0] != 2 || srcs[1] != 3 {
		t.Errorf("ADD srcs = %v", srcs)
	}
	if d, ok := in.DstReg(); !ok || d != 1 {
		t.Errorf("ADD dst = %v,%v", d, ok)
	}

	st := Instr{Op: ST, Rs: 4, Rt: 5, Imm: 8}
	srcs = st.SrcRegs(nil)
	if len(srcs) != 2 || srcs[0] != 4 || srcs[1] != 5 {
		t.Errorf("ST srcs = %v", srcs)
	}
	if _, ok := st.DstReg(); ok {
		t.Error("ST should have no dst")
	}

	fma := Instr{Op: FMA, Rd: 1, Rs: 2, Rt: 3}
	srcs = fma.SrcRegs(nil)
	if len(srcs) != 3 || srcs[2] != 1 {
		t.Errorf("FMA srcs = %v (must read Rd)", srcs)
	}

	ld := Instr{Op: LD, Rd: 7, Rs: 8}
	if d, ok := ld.DstReg(); !ok || d != 7 {
		t.Errorf("LD dst = %v,%v", d, ok)
	}
	if s := ld.SrcRegs(nil); len(s) != 1 || s[0] != 8 {
		t.Errorf("LD srcs = %v", s)
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: ADD, Rd: 1, Rs: 2, Rt: 3}, "add r1, r2, r3"},
		{Instr{Op: ADDI, Rd: 1, Rs: 2, Imm: -4}, "addi r1, r2, -4"},
		{Instr{Op: LD, Rd: 5, Rs: 6, Imm: 16}, "ld r5, 16(r6)"},
		{Instr{Op: ST, Rs: 6, Rt: 7, Imm: 0}, "st r7, 0(r6)"},
		{Instr{Op: BEQ, Rs: 1, Rt: 2, Imm: 42}, "beq r1, r2, 42"},
		{Instr{Op: JMP, Imm: 9}, "jmp 9"},
		{Instr{Op: HALT}, "halt"},
		{Instr{Op: BARRIER}, "barrier"},
		{Instr{Op: LI, Rd: 3, Imm: 100}, "li r3, 100"},
		{Instr{Op: MOV, Rd: 3, Rs: 4}, "mov r3, r4"},
		{Instr{Op: ASSOCADDR, Rs: 2, Imm: 8}, "assocaddr 8(r2)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
