package workloads

import (
	"acr/internal/isa"
	"acr/internal/prog"
)

// BuildIS assembles the is (integer sort) kernel.
//
// Structure mirrored from NAS IS: keys are generated once by a loop-carried
// pseudo-random recurrence (unrecomputable — together with the workspace
// fill this makes the initial interval the largest checkpoint, explaining
// is's near-zero Max reduction, Fig. 9, 2.04%); each ranking iteration then
// clears the bucket counters (a zero-op Slice), counts keys (the stored
// count is load+1: a one-instruction Slice), computes bucket ranks by a
// running prefix sum (Slice length grows with the bucket index — the
// medium-length population), and rewrites keys with a short transform.
// Nearly all steady-state stores are recomputable even at tiny thresholds,
// which is why the paper caps is's threshold at 5 (§V-D1 footnote: 97.39%
// of values recomputable at 10, 75.74% at 5). Threads exchange bucket
// boundaries pairwise and are imbalanced, so is benefits strongly from
// coordinated-local checkpointing (§V-E, ≈36%).
func BuildIS(threads int, class Class) (*prog.Program, error) {
	b := prog.New("is")
	n := int64(class.N)
	nBuckets := int64(32)
	keys := b.Data(threads * class.N)
	work := b.Data(threads * class.N)
	counts := b.Data(threads * int(nBuckets))
	ranks := b.Data(threads * int(nBuckets))
	shared := b.Data(64 * lineWords)

	const (
		rCnt isa.Reg = 10
		rRnk isa.Reg = 11
		rWrk isa.Reg = 12
	)

	streamSetup(b, threads)
	partitionBase(b, rBase, keys, n)
	partitionBase(b, rWrk, work, n)
	partitionBase(b, rCnt, counts, nBuckets)
	partitionBase(b, rRnk, ranks, nBuckets)
	// Key generation: the amnesia-resistant bulk of the first interval.
	lcgFill(b, rBase, n)
	lcgFill(b, rWrk, n)
	b.Barrier()

	outerLoop(b, class.Iters, func() {
		// Clear counters: the stored zero is trivially recomputable.
		b.Li(rEnd, nBuckets)
		b.Loop(rIdx, rEnd, func() {
			b.Op3(isa.ADD, rAddr, rCnt, rIdx)
			b.StAssoc(0, rAddr, 0)
		})
		// Count: counts[key mod B]++ — a one-instruction Slice.
		b.Li(rEnd, n)
		b.Loop(rIdx, rEnd, func() {
			b.Op3(isa.ADD, rAddr, rBase, rIdx)
			b.Ld(rVal, rAddr, 0)
			b.OpI(isa.ANDI, rTmp, rVal, nBuckets-1)
			b.Op3(isa.ADD, rAddr, rCnt, rTmp)
			b.Ld(rVal, rAddr, 0)
			b.OpI(isa.ADDI, rVal, rVal, 1)
			b.StAssoc(rVal, rAddr, 0)
		})
		// Prefix ranks: rank[k] = sum of counts[0..k] — the Slice grows
		// with k (the running accumulation stays in a register).
		b.Li(rAcc, 0)
		b.Li(rEnd, nBuckets)
		b.Loop(rIdx, rEnd, func() {
			b.Op3(isa.ADD, rAddr, rCnt, rIdx)
			b.Ld(rTmp, rAddr, 0)
			b.Op3(isa.ADD, rAcc, rAcc, rTmp)
			b.Op3(isa.ADD, rAddr, rRnk, rIdx)
			b.StAssoc(rAcc, rAddr, 0)
		})
		b.Barrier()
		// Key rewrite: short transform (2–3 instruction Slices), plus a
		// sprinkle of 7-deep chains (the 6..10 population that pushes
		// recomputability from 75% at threshold 5 to 97% at 10).
		chainPhase(b, rBase, rBase, n, 10, []depthBucket{
			{UpTo: 8, Depth: 2},
			{UpTo: 10, Depth: 7},
		}, true)
		// Bucket-boundary exchange with a block-stable partner.
		pairExchange(b, shared, 8)
		imbalance(b, 40)
	})
	b.Halt()
	return b.Build()
}
