// Package workloads provides the eight NAS-derived benchmark kernels the
// paper evaluates (§IV): bt, cg, dc, ft, is, lu, mg and sp (ep is excluded,
// as in the paper). The original NAS codes are Fortran/C and cannot run on
// the simulated ISA, so each kernel is re-implemented in the mini-ISA,
// reproducing the structural properties ACR's behaviour depends on:
//
//   - the backward-slice length distribution of stored values (which sets
//     recomputability at each threshold, Table II) emerges from the real
//     inner computations — sparse dot products for cg, counting and prefix
//     sums for is, twiddle recurrences for ft, stencils for mg, block-line
//     solves for bt/sp/lu, aggregation for dc;
//   - the inter-thread communication pattern (which sets coordinated-local
//     grouping, Fig. 13) — all-to-all reductions for bt/cg/sp, block-stable
//     pairings for ft/is/mg/dc, a neighbour chain for lu;
//   - the temporal distribution of store volume (which sets the Max
//     checkpoint reduction, Fig. 9) — is and ft have dominant
//     unrecomputable initialisation phases, dc's volume is uniform.
//
// Where the NAS inner expression depth matters but the full physics would
// add nothing (bt/sp/lu block factorisations), the kernels emit arithmetic
// chains whose depth profile is calibrated to the paper's Table II; the
// calibration is documented per kernel.
package workloads

import (
	"fmt"
	"sort"

	"acr/internal/prog"
)

// Class selects the problem scale, in the spirit of the NAS class letters.
type Class struct {
	Name string
	// N is the per-thread element count of the main arrays.
	N int
	// Iters is the number of outer iterations of the region of interest.
	Iters int
}

// Predefined classes. Tests use S; the paper-reproduction harness uses W.
var (
	ClassS = Class{Name: "S", N: 48, Iters: 40}
	ClassW = Class{Name: "W", N: 128, Iters: 56}
	ClassA = Class{Name: "A", N: 256, Iters: 64}
)

// ClassByName resolves a class letter.
func ClassByName(name string) (Class, error) {
	switch name {
	case "S", "s":
		return ClassS, nil
	case "W", "w":
		return ClassW, nil
	case "A", "a":
		return ClassA, nil
	}
	return Class{}, fmt.Errorf("workloads: unknown class %q", name)
}

// Bench is one benchmark kernel.
type Bench struct {
	Name string
	// Threshold is the Slice-length threshold the paper uses for this
	// benchmark (10, except is where it conservatively drops to 5 —
	// §V-D1 footnote 4).
	Threshold int
	// WarmupFrac is the fraction of the baseline runtime that precedes
	// the region of interest. is and ft famously include their input
	// generation in the benchmarked region (which is what makes their
	// largest checkpoint amnesia-resistant, Fig. 9); the solver kernels
	// start measuring after the arrays are warm.
	WarmupFrac float64
	// Build assembles the program for the given thread count and class. It
	// fails (rather than panics) if the kernel emitted malformed code, e.g.
	// a branch whose label was never placed.
	Build func(threads int, class Class) (*prog.Program, error)
}

var registry = []Bench{
	{Name: "bt", Threshold: 10, WarmupFrac: 0.25, Build: BuildBT},
	{Name: "cg", Threshold: 10, WarmupFrac: 0.25, Build: BuildCG},
	{Name: "dc", Threshold: 10, WarmupFrac: 0.25, Build: BuildDC},
	{Name: "ft", Threshold: 10, WarmupFrac: 0, Build: BuildFT},
	{Name: "is", Threshold: 5, WarmupFrac: 0, Build: BuildIS},
	{Name: "lu", Threshold: 10, WarmupFrac: 0.25, Build: BuildLU},
	{Name: "mg", Threshold: 10, WarmupFrac: 0.25, Build: BuildMG},
	{Name: "sp", Threshold: 10, WarmupFrac: 0.25, Build: BuildSP},
}

// All returns the eight benchmarks in the paper's order.
func All() []Bench {
	out := make([]Bench, len(registry))
	copy(out, registry)
	return out
}

// Names returns the benchmark names, sorted.
func Names() []string {
	names := make([]string, len(registry))
	for i, b := range registry {
		names[i] = b.Name
	}
	sort.Strings(names)
	return names
}

// ByName resolves a benchmark.
func ByName(name string) (Bench, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	return Bench{}, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, Names())
}
