package workloads

import (
	"acr/internal/isa"
	"acr/internal/prog"
)

// BuildLU assembles the lu (SSOR solver) kernel.
//
// Structure mirrored from NAS LU: per outer iteration, lower and upper
// triangular sweeps update the flow variables; each thread depends on its
// neighbour's boundary plane, forming a wavefront pipeline whose chain
// links every core into one communication component — so coordinated-local
// checkpointing buys lu little (§V-E reports ≈10%). The SSOR block depth
// profile calibrates Table II: ≤10: 42.7%, ≤20: 46.7%, ≤30: 64.4%,
// ≤40: 74.7%, ≤50: 81.1%.
func BuildLU(threads int, class Class) (*prog.Program, error) {
	b := prog.New("lu")
	n := int64(class.N)
	u := b.Data(threads * class.N)
	rsd := b.Data(threads * class.N)
	shared := b.Data(64 * lineWords)

	buckets := []depthBucket{
		{UpTo: 427, Depth: 7},
		{UpTo: 467, Depth: 15},
		{UpTo: 640, Depth: 25},
		{UpTo: 747, Depth: 35},
		{UpTo: 811, Depth: 45},
		{UpTo: 1000, Depth: 60},
	}

	streamSetup(b, threads)
	partitionBase(b, rBase, u, n)
	partitionBase(b, rSrc, rsd, n)
	lcgFill(b, rBase, n)
	b.Barrier()

	outerLoop(b, class.Iters, func() {
		// Lower sweep u -> rsd, upper sweep rsd -> u.
		chainPhase(b, rBase, rSrc, n, 1000, buckets, true)
		b.Barrier()
		chainPhase(b, rSrc, rBase, n, 1000, buckets, true)
		// Wavefront boundary exchange: chains all cores together on
		// most iterations; every eighth iteration ends a wavefront and
		// needs no exchange, which is where coordinated-local
		// checkpointing recovers its small (~10%) win for lu (§V-E).
		skip := b.NewLabel()
		b.OpI(isa.ANDI, rTmp, rIter, 7)
		b.Li(rTmp2, 7)
		b.Beq(rTmp, rTmp2, skip)
		neighbourExchange(b, shared)
		b.Place(skip)
		b.Barrier()
	})
	b.Halt()
	return b.Build()
}
