package workloads

import (
	"acr/internal/prog"
)

// BuildMG assembles the mg (multigrid) kernel.
//
// Structure mirrored from NAS MG: V-cycle iterations smooth the grid and
// apply residual corrections. A smoothed point's value gathers a full
// stencil neighbourhood, so the bulk of stored values carry ≈26-instruction
// Slices — below threshold 30 but above 10 and 20, which is exactly the
// Table II staircase for mg (≤10: 11.6%, ≤20: 19.7%, ≤30: 88%, ≤40: 90.3%).
// The short population comes from boundary and restriction stores. At any
// given V-cycle level only a block-stable subset of threads exchange, so
// the per-interval communication graph is pairs and coordinated-local
// checkpointing helps (§V-E, ≈32%).
func BuildMG(threads int, class Class) (*prog.Program, error) {
	b := prog.New("mg")
	n := int64(class.N)
	u := b.Data(threads * class.N)
	r := b.Data(threads * class.N)
	shared := b.Data(64 * lineWords)

	buckets := []depthBucket{
		{UpTo: 116, Depth: 7},   // boundary / restriction stores
		{UpTo: 197, Depth: 15},  // coarse-level partial stencils
		{UpTo: 880, Depth: 26},  // full stencil gathers
		{UpTo: 903, Depth: 36},  // fused smooth+correct points
		{UpTo: 1000, Depth: 55}, // multi-level fused chains
	}

	streamSetup(b, threads)
	partitionBase(b, rBase, u, n)
	partitionBase(b, rSrc, r, n)
	lcgFill(b, rBase, n)
	b.Barrier()

	outerLoop(b, class.Iters, func() {
		// Smooth u -> r, correct r -> u.
		chainPhase(b, rBase, rSrc, n, 1000, buckets, true)
		b.Barrier()
		chainPhase(b, rSrc, rBase, n, 1000, buckets, true)
		// Level-stable halo exchange: pairs per interval.
		pairExchange(b, shared, 8)
		imbalance(b, 32)
	})
	b.Halt()
	return b.Build()
}
