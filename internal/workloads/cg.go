package workloads

import (
	"acr/internal/isa"
	"acr/internal/prog"
)

// BuildCG assembles the cg (conjugate gradient) kernel.
//
// Structure mirrored from NAS CG: each iteration performs a sparse
// matrix-vector product q = A·p with a register-resident floating-point
// accumulation per row, a vector update p = q·β + δ whose scalars derive
// from the global reduction, and two all-to-all dot-product reductions (so
// coordinated-local checkpointing degenerates to global — §V-E). The Slice
// of q[i] is the row's FMA chain: its length tracks the row population nnz,
// and the p-update Slices inherit the reduction's accumulation chain, so at
// threshold 10 only the shortest rows qualify. The sparsity profile below
// lands the Table II staircase: ≤10: ≈7%, ≤20: ≈67%, ≤30: ≈90%, then flat
// (the longest rows never qualify, exactly as cg plateaus at 89.8%).
func BuildCG(threads int, class Class) (*prog.Program, error) {
	b := prog.New("cg")
	n := int64(class.N)
	maxNnz := int64(60)
	a := b.Data(threads * streamWords)
	p := b.Data(threads * class.N)
	q := b.Data(threads * class.N)
	shared := b.Data(64 * lineWords)

	const (
		rABase isa.Reg = 10
		rNnz   isa.Reg = 11
		rK     isa.Reg = 12
		rPA    isa.Reg = 13
		rXV    isa.Reg = 14
	)

	partitionBase(b, rBase, p, n)
	partitionBase(b, rSrc, q, n)
	partitionBase(b, rABase, a, streamWords)
	lcgFill(b, rABase, n) // seed the leading band of the matrix
	lcgFill(b, rBase, n)
	b.Barrier()

	outerLoop(b, class.Iters, func() {
		// q[i] = sum_k a[i,k] * p[(i+k) mod n]  (row FMA chain).
		b.Li(rEnd, n)
		b.Loop(rIdx, rEnd, func() {
			// Row population by hashed row index:
			// 14% nnz 6, 20% nnz 16, 45% nnz 26, 21% nnz 55.
			b.OpI(isa.MULI, rTmp, rIdx, 7919)
			b.OpI(isa.ADDI, rTmp, rTmp, 5)
			b.Li(rTmp2, 100)
			b.Op3(isa.REM, rTmp, rTmp, rTmp2)
			l16 := b.NewLabel()
			l26 := b.NewLabel()
			l55 := b.NewLabel()
			lgo := b.NewLabel()
			b.Li(rTmp2, 14)
			b.Bge(rTmp, rTmp2, l16)
			b.Li(rNnz, 6)
			b.Jmp(lgo)
			b.Place(l16)
			b.Li(rTmp2, 34)
			b.Bge(rTmp, rTmp2, l26)
			b.Li(rNnz, 16)
			b.Jmp(lgo)
			b.Place(l26)
			b.Li(rTmp2, 79)
			b.Bge(rTmp, rTmp2, l55)
			b.Li(rNnz, 26)
			b.Jmp(lgo)
			b.Place(l55)
			b.Li(rNnz, 55)
			b.Place(lgo)

			// acc = 0 (the zero register's recipe is free), then one
			// FMA per nonzero: Slice length == nnz + 1.
			b.Mov(rAcc, 0)
			b.Li(rK, 0)
			khead := b.NewLabel()
			kdone := b.NewLabel()
			b.Place(khead)
			b.Bge(rK, rNnz, kdone)
			// a-value address: the matrix band rotates with the
			// iteration over a region exceeding the L2, so the
			// sparse matrix streams from memory as in the real cg.
			b.Op3(isa.ADD, rAddr, rIter, rIdx)
			b.OpI(isa.MULI, rAddr, rAddr, maxNnz)
			b.Op3(isa.ADD, rAddr, rAddr, rK)
			b.OpI(isa.ANDI, rAddr, rAddr, streamWords-1)
			b.Op3(isa.ADD, rAddr, rAddr, rABase)
			b.Ld(rPA, rAddr, 0)
			// p address: base + (i+k) mod n
			b.Op3(isa.ADD, rAddr, rIdx, rK)
			b.Li(rTmp2, n)
			b.Op3(isa.REM, rAddr, rAddr, rTmp2)
			b.Op3(isa.ADD, rAddr, rAddr, rBase)
			b.Ld(rXV, rAddr, 0)
			b.Op3(isa.FMA, rAcc, rPA, rXV)
			b.OpI(isa.ADDI, rK, rK, 1)
			b.Jmp(khead)
			b.Place(kdone)
			b.Op3(isa.ADD, rAddr, rSrc, rIdx)
			b.StAssoc(rAcc, rAddr, 0)
		})
		b.Barrier()
		// First dot-product reduction: rho = sum of per-thread partials.
		// rAcc's recipe afterwards is the accumulation over all threads'
		// published values — an ≈(nthr+1)-instruction chain.
		b.Mov(rVal, rAcc)
		allToAllReduce(b, shared)
		// Vector update p[i] = q[i]/2 + beta, with beta derived from the
		// reduction: the Slice inherits the reduction chain plus the
		// scalar beta arithmetic (≈ threads + 7 instructions) — beyond
		// threshold 10 but within 20 at the paper's core counts,
		// reproducing cg's jump in Table II.
		b.OpI(isa.SHRI, rC1, rAcc, 1)
		b.OpI(isa.MULI, rC1, rC1, 3)
		b.OpI(isa.ADDI, rC1, rC1, 7)
		b.OpI(isa.XORI, rC1, rC1, 0x55)
		b.Li(rEnd, n)
		b.Loop(rIdx, rEnd, func() {
			b.Op3(isa.ADD, rAddr, rSrc, rIdx)
			b.Ld(rVal, rAddr, 0)
			b.OpI(isa.SHRI, rVal, rVal, 1)
			b.Op3(isa.ADD, rVal, rVal, rC1)
			b.Op3(isa.ADD, rAddr, rBase, rIdx)
			b.StAssoc(rVal, rAddr, 0)
		})
		// Second reduction of the CG iteration.
		b.Mov(rVal, rAcc)
		allToAllReduce(b, shared)
	})
	b.Halt()
	return b.Build()
}
