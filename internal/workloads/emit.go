package workloads

import (
	"acr/internal/isa"
	"acr/internal/prog"
)

// Register conventions shared by the kernels. r31/r30 are the loader-preset
// thread id / thread count (prog.RegTID / prog.RegNTHR).
const (
	rIdx   isa.Reg = 1  // inner loop index
	rEnd   isa.Reg = 2  // inner loop bound
	rVal   isa.Reg = 3  // value being computed/stored
	rAddr  isa.Reg = 4  // effective address scratch
	rTmp   isa.Reg = 5  // scratch
	rTmp2  isa.Reg = 6  // scratch
	rBase  isa.Reg = 7  // own partition base
	rSrc   isa.Reg = 8  // source partition base
	rAcc   isa.Reg = 9  // accumulator
	rIter  isa.Reg = 20 // outer iteration index
	rItEnd isa.Reg = 21 // outer iteration bound
	rC1    isa.Reg = 22 // loop-invariant constant
	rC2    isa.Reg = 23 // loop-invariant constant
	rPart  isa.Reg = 24 // partner/neighbour base
	rSeed  isa.Reg = 25 // PRNG state
	rStr   isa.Reg = 26 // streaming window offset for the iteration
	rStrB  isa.Reg = 27 // streaming array partition base
)

// streamWords is the per-thread size of the streaming input array, in
// words. It exceeds the L2 capacity and is touched with a per-iteration
// rotating window, so streamed loads are compulsory misses — modelling the
// memory-bound character of the NAS codes, whose inputs do not fit on chip.
// Must be a power of two (the window offset wraps with a mask).
const streamWords = 1 << 17

// lineWords must match the memory system's line size: communication slots
// and partition bases are line-aligned so that sharing observed by the
// directory reflects true communication, not false sharing.
const lineWords = 8

// depthBucket maps element indices (by idx mod the pattern modulus) to the
// arithmetic depth of the stored value's Slice. Buckets are cumulative:
// an index i falls in the first bucket with i mod modulus < UpTo.
type depthBucket struct {
	UpTo  int64
	Depth int
}

// chainOps emits depth dependent integer ALU ops transforming rVal. Each op
// uses an immediate form, so the Slice grows by exactly one instruction per
// op. The op mix (multiply, add, xor, shift) mirrors the address/value
// manipulation typical of compiled scientific kernels.
func chainOps(b *prog.Builder, depth int) {
	for k := 0; k < depth; k++ {
		switch k % 4 {
		case 0:
			b.OpI(isa.MULI, rVal, rVal, 3)
		case 1:
			b.OpI(isa.ADDI, rVal, rVal, 7)
		case 2:
			b.OpI(isa.XORI, rVal, rVal, 0x2545)
		default:
			b.OpI(isa.SHRI, rVal, rVal, 1)
		}
	}
}

// chainPhase emits one compute phase: for each element i of the thread's
// partition, load src[i], apply a depth-bucketed arithmetic chain, and store
// the result to dst[i] with ASSOC-ADDR. The depth pattern is what calibrates
// the benchmark's Slice-length distribution (Table II): an element whose
// bucket depth is d yields a Slice of exactly d instructions rooted at the
// buffered load.
//
// srcBase and dstBase are registers holding partition base addresses; n is
// the element count; modulus/buckets define the depth pattern.
//
// When stream is true, every fourth element additionally reads one word of
// the thread's streaming array (base rStrB, set up by streamSetup) through a
// per-iteration rotating window of never-reused lines — the compulsory-miss
// traffic of the input grids the NAS codes sweep. The streamed value joins
// the stored value with one extra ADD, so the element's Slice gains one
// instruction and one buffered input.
func chainPhase(b *prog.Builder, srcBase, dstBase isa.Reg, n int64, modulus int64, buckets []depthBucket, stream bool) {
	if stream {
		// Window offset for this iteration: iter*n*8 within the array.
		b.OpI(isa.MULI, rStr, rIter, n*8)
		b.OpI(isa.ANDI, rStr, rStr, streamWords-1)
	}
	b.Li(rEnd, n)
	b.Loop(rIdx, rEnd, func() {
		b.Op3(isa.ADD, rAddr, srcBase, rIdx)
		b.Ld(rVal, rAddr, 0)
		var skipStream prog.Label
		if stream {
			skipStream = b.NewLabel()
			b.OpI(isa.ANDI, rTmp, rIdx, 3)
			b.Bne(rTmp, 0, skipStream)
			// addr = streamBase + ((window + idx*8) & mask): a fresh
			// line per streamed element.
			b.OpI(isa.MULI, rTmp, rIdx, 8)
			b.Op3(isa.ADD, rTmp, rTmp, rStr)
			b.OpI(isa.ANDI, rTmp, rTmp, streamWords-1)
			b.Op3(isa.ADD, rTmp, rTmp, rStrB)
			b.Ld(rTmp2, rTmp, 0)
			b.Op3(isa.ADD, rVal, rVal, rTmp2)
			b.Place(skipStream)
		}

		store := b.NewLabel()
		// Hash the index before bucketing so the depth mix covers the
		// whole pattern regardless of the partition size.
		b.OpI(isa.MULI, rTmp, rIdx, 7919)
		b.OpI(isa.ADDI, rTmp, rTmp, 3)
		b.Li(rTmp2, modulus)
		b.Op3(isa.REM, rTmp, rTmp, rTmp2)
		next := b.NewLabel()
		for bi, bucket := range buckets {
			if bi > 0 {
				b.Place(next)
				next = b.NewLabel()
			}
			if bi < len(buckets)-1 {
				b.Li(rTmp2, bucket.UpTo)
				b.Bge(rTmp, rTmp2, next)
			}
			chainOps(b, bucket.Depth)
			if bi < len(buckets)-1 {
				b.Jmp(store)
			}
		}
		b.Place(store)
		b.Op3(isa.ADD, rAddr, dstBase, rIdx)
		b.StAssoc(rVal, rAddr, 0)
	})
}

// streamSetup reserves the thread's streaming input array and points rStrB
// at its partition. The array is zero-initialised (its values only perturb
// the computation; its cold lines are what matters).
func streamSetup(b *prog.Builder, threads int) {
	base := b.Data(threads * streamWords)
	partitionBase(b, rStrB, base, streamWords)
}

// lcgFill emits an initialisation phase: fill dst[0..n) with pseudo-random
// values produced by a register-resident linear congruential recurrence.
// The recurrence is loop-carried, so the stored values' backward slices grow
// without bound and almost none are recomputable — modelling the NAS random
// initialisation (is key generation, ft input generation) that makes the
// initial checkpoint interval amnesia-resistant (Fig. 9 Max).
func lcgFill(b *prog.Builder, dstBase isa.Reg, n int64) {
	// Seed depends on the thread id so partitions differ.
	b.OpI(isa.MULI, rSeed, prog.RegTID, 2654435761)
	b.OpI(isa.ADDI, rSeed, rSeed, 12345)
	b.Li(rEnd, n)
	b.Loop(rIdx, rEnd, func() {
		b.OpI(isa.MULI, rSeed, rSeed, 1103515245)
		b.OpI(isa.ADDI, rSeed, rSeed, 12345)
		b.OpI(isa.SHRI, rVal, rSeed, 16)
		b.Op3(isa.ADD, rAddr, dstBase, rIdx)
		b.StAssoc(rVal, rAddr, 0)
	})
}

// partitionBase emits rBase = arrBase + tid*stride.
func partitionBase(b *prog.Builder, dst isa.Reg, arrBase int64, stride int64) {
	b.OpI(isa.MULI, dst, prog.RegTID, stride)
	b.OpI(isa.ADDI, dst, dst, arrBase)
}

// allToAllReduce emits the coordination pattern of bt/cg/sp: every thread
// publishes a partial value to its line-aligned slot of a shared array,
// barriers, then reads every other thread's slot and accumulates. The
// directory observes a complete communication graph, so coordinated-local
// checkpointing degenerates to global for these benchmarks (paper §V-E).
// The partial published is rVal; the reduced sum is left in rAcc.
func allToAllReduce(b *prog.Builder, sharedBase int64) {
	b.OpI(isa.MULI, rAddr, prog.RegTID, lineWords)
	b.OpI(isa.ADDI, rAddr, rAddr, sharedBase)
	b.StAssoc(rVal, rAddr, 0)
	b.Barrier()
	b.Li(rAcc, 0)
	b.Loop(rTmp, prog.RegNTHR, func() {
		b.OpI(isa.MULI, rAddr, rTmp, lineWords)
		b.OpI(isa.ADDI, rAddr, rAddr, sharedBase)
		b.Ld(rTmp2, rAddr, 0)
		b.Op3(isa.ADD, rAcc, rAcc, rTmp2)
	})
	b.Barrier()
}

// pairExchange emits the coordination pattern of ft/is/mg/dc: each thread
// exchanges a value with a partner chosen by XOR-ing the thread id with a
// small mask. The mask alternates between 1 and 2 every blockIters outer
// iterations, so within any one checkpoint interval the pairing is stable
// and the communication graph decomposes into 2-core components —
// coordinated-local checkpointing then coordinates pairs instead of the
// whole machine (paper §V-E). The exchanged value is rVal; the partner's
// value lands in rTmp2.
func pairExchange(b *prog.Builder, sharedBase int64, blockIters int64) {
	b.OpI(isa.MULI, rAddr, prog.RegTID, lineWords)
	b.OpI(isa.ADDI, rAddr, rAddr, sharedBase)
	b.StAssoc(rVal, rAddr, 0)
	b.Barrier()
	// mask = 1 + ((iter / blockIters) & 1); partner = tid ^ mask,
	// clamped into range by modulo (safe for any thread count).
	b.Li(rTmp, blockIters)
	b.Op3(isa.DIV, rTmp, rIter, rTmp)
	b.OpI(isa.ANDI, rTmp, rTmp, 1)
	b.OpI(isa.ADDI, rTmp, rTmp, 1)
	b.Op3(isa.XOR, rTmp, prog.RegTID, rTmp)
	b.Op3(isa.REM, rTmp, rTmp, prog.RegNTHR)
	b.OpI(isa.MULI, rAddr, rTmp, lineWords)
	b.OpI(isa.ADDI, rAddr, rAddr, sharedBase)
	b.Ld(rTmp2, rAddr, 0)
	b.Barrier()
}

// neighbourExchange emits lu's wavefront coupling: each thread publishes a
// boundary value and reads its left neighbour's, forming a chain that links
// every core into one communication component — so coordinated-local
// checkpointing buys lu little (paper §V-E reports ≈10%).
func neighbourExchange(b *prog.Builder, sharedBase int64) {
	b.OpI(isa.MULI, rAddr, prog.RegTID, lineWords)
	b.OpI(isa.ADDI, rAddr, rAddr, sharedBase)
	b.StAssoc(rVal, rAddr, 0)
	b.Barrier()
	b.OpI(isa.ADDI, rTmp, prog.RegTID, 1)
	b.Op3(isa.REM, rTmp, rTmp, prog.RegNTHR)
	b.OpI(isa.MULI, rAddr, rTmp, lineWords)
	b.OpI(isa.ADDI, rAddr, rAddr, sharedBase)
	b.Ld(rTmp2, rAddr, 0)
	b.Barrier()
}

// imbalance emits tid-proportional extra work (a pure-ALU delay loop),
// modelling the load imbalance that makes global coordination expensive for
// ft/is/mg/dc: the global barrier waits for the slowest core, while local
// groups only wait for their own members.
func imbalance(b *prog.Builder, unit int64) {
	b.OpI(isa.MULI, rTmp, prog.RegTID, unit)
	b.Li(rTmp2, 0)
	head := b.NewLabel()
	done := b.NewLabel()
	b.Place(head)
	b.Bge(rTmp2, rTmp, done)
	b.OpI(isa.ADDI, rTmp2, rTmp2, 1)
	b.Jmp(head)
	b.Place(done)
}

// outerLoop wraps body in the benchmark's outer iteration loop over
// class.Iters iterations, with rIter as the induction variable.
func outerLoop(b *prog.Builder, iters int, body func()) {
	b.Li(rItEnd, int64(iters))
	b.Li(rIter, 0)
	head := b.NewLabel()
	done := b.NewLabel()
	b.Place(head)
	b.Bge(rIter, rItEnd, done)
	body()
	b.OpI(isa.ADDI, rIter, rIter, 1)
	b.Jmp(head)
	b.Place(done)
}
