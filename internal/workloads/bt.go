package workloads

import (
	"acr/internal/isa"
	"acr/internal/prog"
)

// BuildBT assembles the bt (block tridiagonal solver) kernel.
//
// Structure mirrored from NAS BT: per outer iteration, alternating-direction
// line sweeps update the solution and right-hand-side arrays, followed by a
// global residual reduction in which every thread reads every other thread's
// partial — making bt's communication graph complete, so coordinated-local
// checkpointing cannot beat global (paper §V-E observes exactly this for
// bt). Stored values are produced by 5x5-block factorisation arithmetic; the
// depth profile below calibrates the Slice-length distribution to Table II:
// ≤10: 36.5%, ≤20: 45%, ≤30: 85%, ≤40: 88%, ≤50: 90%.
func BuildBT(threads int, class Class) (*prog.Program, error) {
	b := prog.New("bt")
	n := int64(class.N)
	u := b.Data(threads * class.N)
	rhs := b.Data(threads * class.N)
	shared := b.Data(64 * lineWords)

	buckets := []depthBucket{
		{UpTo: 82, Depth: 8}, // ≈41% scalar updates (the boundary
		// refresh below pulls the realised ≤10 share back to ≈36%)
		{UpTo: 90, Depth: 16},  // 8.5% 3x3-ish block rows
		{UpTo: 170, Depth: 25}, // 40% 5x5 block rows
		{UpTo: 176, Depth: 36},
		{UpTo: 180, Depth: 46},
		{UpTo: 200, Depth: 70}, // 10% full back-substitution chains
	}

	streamSetup(b, threads)
	partitionBase(b, rBase, u, n)
	partitionBase(b, rSrc, rhs, n)
	lcgFill(b, rBase, n)
	b.Barrier()

	outerLoop(b, class.Iters, func() {
		// x-sweep: u -> rhs; y-sweep: rhs -> u.
		chainPhase(b, rBase, rSrc, n, 200, buckets, true)
		b.Barrier()
		chainPhase(b, rSrc, rBase, n, 200, buckets, true)
		// Every eighth iteration, the boundary conditions are refreshed
		// from the random stream — a burst of unrecomputable stores.
		// This is the temporal variation in recomputation opportunity
		// that Fig. 10 shows for bt and that motivates the paper's
		// adaptive-placement future work (§V-D1).
		skip := b.NewLabel()
		b.OpI(isa.ANDI, rTmp, rIter, 3)
		b.Li(rTmp2, 3)
		b.Bne(rTmp, rTmp2, skip)
		lcgFill(b, rBase, n/2)
		b.Place(skip)
		// Residual reduction: complete communication graph.
		allToAllReduce(b, shared)
	})
	b.Halt()
	return b.Build()
}
