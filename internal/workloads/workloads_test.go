package workloads

import (
	"testing"

	"acr/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"bt", "cg", "dc", "ft", "is", "lu", "mg", "sp"}
	if len(names) != len(want) {
		t.Fatalf("benchmarks = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("benchmarks = %v, want %v", names, want)
		}
	}
	if _, err := ByName("ep"); err == nil {
		t.Error("ep must be excluded, as in the paper")
	}
	b, err := ByName("is")
	if err != nil || b.Threshold != 5 {
		t.Errorf("is threshold = %d, want 5 (paper §V-D1)", b.Threshold)
	}
	b, _ = ByName("bt")
	if b.Threshold != 10 {
		t.Errorf("bt threshold = %d, want 10", b.Threshold)
	}
}

func TestClassByName(t *testing.T) {
	for _, n := range []string{"S", "W", "A", "s", "w", "a"} {
		if _, err := ClassByName(n); err != nil {
			t.Errorf("class %q: %v", n, err)
		}
	}
	if _, err := ClassByName("X"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestAllProgramsValidate(t *testing.T) {
	for _, bench := range All() {
		for _, threads := range []int{4, 8} {
			p, err := bench.Build(threads, ClassS)
			if err != nil {
				t.Fatalf("%s/%d: %v", bench.Name, threads, err)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("%s/%d: %v", bench.Name, threads, err)
			}
			if p.DataWords == 0 {
				t.Errorf("%s: no data", bench.Name)
			}
		}
	}
}

func TestAllBenchmarksRunToCompletion(t *testing.T) {
	tiny := Class{Name: "T", N: 16, Iters: 4}
	for _, bench := range All() {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			p, err := bench.Build(4, tiny)
			if err != nil {
				t.Fatal(err)
			}
			m, err := sim.New(sim.DefaultConfig(4), p)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Instrs == 0 || res.Cycles == 0 {
				t.Errorf("empty run: %+v", res)
			}
		})
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	tiny := Class{Name: "T", N: 16, Iters: 4}
	for _, bench := range All() {
		p1, err := bench.Build(4, tiny)
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		m1, _ := sim.New(sim.DefaultConfig(4), p1)
		r1, err := m1.Run()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		p2, err := bench.Build(4, tiny)
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		m2, _ := sim.New(sim.DefaultConfig(4), p2)
		r2, err := m2.Run()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}
		if r1.Cycles != r2.Cycles || r1.Instrs != r2.Instrs {
			t.Errorf("%s: non-deterministic (%d/%d vs %d/%d)",
				bench.Name, r1.Cycles, r1.Instrs, r2.Cycles, r2.Instrs)
		}
	}
}

// TestCommunicationShapes checks the coordination property each kernel's
// doc comment claims: bt/cg/sp communicate all-to-all (one group), the
// others decompose.
func TestCommunicationShapes(t *testing.T) {
	tiny := Class{Name: "T", N: 16, Iters: 4}
	allToAll := map[string]bool{"bt": true, "cg": true, "sp": true, "lu": true}
	for _, bench := range All() {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			p, err := bench.Build(4, tiny)
			if err != nil {
				t.Fatal(err)
			}
			m, err := sim.New(sim.DefaultConfig(4), p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			groups := m.Mem().CommGroups()
			if allToAll[bench.Name] {
				// lu chains all cores; bt/cg/sp reduce all-to-all.
				if len(groups) != 1 {
					t.Errorf("%s: expected one communication component, got %d (%b)",
						bench.Name, len(groups), groups)
				}
			} else {
				if len(groups) < 2 {
					t.Errorf("%s: expected decomposed communication, got %b",
						bench.Name, groups)
				}
			}
		})
	}
}
