package workloads

import (
	"testing"

	acr "acr/internal/core"
	"acr/internal/sim"
)

// measureReduction runs bench amnesically at the given threshold in the
// steady-state regime (few checkpoints relative to iterations) and returns
// the overall checkpoint size reduction in percent.
func measureReduction(t *testing.T, name string, threshold int) float64 {
	t.Helper()
	bench, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tiny := Class{Name: "T", N: 32, Iters: 24}
	p, err := bench.Build(4, tiny)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.New(sim.DefaultConfig(4), p)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(4)
	cfg.Checkpointing = true
	cfg.Amnesic = true
	cfg.ACR = acr.Config{Threshold: threshold, MapCapacity: 4096 * 4}
	cfg.PeriodCycles = baseRes.Cycles / 7
	cfg.ROIStartCycles = int64(float64(baseRes.Cycles) * bench.WarmupFrac)
	p2, err := bench.Build(4, tiny)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(cfg, p2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := res.Ckpt.LoggedWords + res.Ckpt.OmittedWords
	if total == 0 {
		t.Fatalf("%s: no checkpointable volume", name)
	}
	return 100 * float64(res.Ckpt.OmittedWords) / float64(total)
}

// TestTableIIStaircases pins the per-benchmark Slice-length behaviour the
// paper's Table II reports, as ordering constraints (not absolute values):
// every benchmark's reduction is monotone in the threshold, cg is the least
// recomputable at threshold 10 and jumps sharply at 20, is is the most
// recomputable at small thresholds.
func TestTableIIStaircases(t *testing.T) {
	if testing.Short() {
		t.Skip("workload characterisation test")
	}
	at10 := map[string]float64{}
	for _, name := range Names() {
		r10 := measureReduction(t, name, 10)
		r30 := measureReduction(t, name, 30)
		if r30+2 < r10 { // small tolerance for boundary noise
			t.Errorf("%s: reduction fell from %.1f to %.1f when threshold rose 10→30", name, r10, r30)
		}
		at10[name] = r10
	}
	// cg must be the least recomputable at threshold 10 (paper: 6.99%).
	for name, v := range at10 {
		if name != "cg" && v < at10["cg"] {
			t.Errorf("cg (%.1f%%) should be the least recomputable at threshold 10, but %s has %.1f%%",
				at10["cg"], name, v)
		}
	}
	// is must be the most recomputable (paper: 97.39% at threshold 10).
	for name, v := range at10 {
		if name != "is" && v > at10["is"] {
			t.Errorf("is (%.1f%%) should be the most recomputable at threshold 10, but %s has %.1f%%",
				at10["is"], name, v)
		}
	}
	// cg's signature jump at threshold 20 (paper: 6.99% → 67.06%).
	cg20 := measureReduction(t, "cg", 20)
	if cg20 < at10["cg"]*3 {
		t.Errorf("cg should jump sharply at threshold 20: %.1f%% → %.1f%%", at10["cg"], cg20)
	}
}

// TestThresholdFiveIsSpecial pins the paper's footnote: at threshold 10
// nearly all of is's values are recomputable, which is why the evaluation
// conservatively drops is to threshold 5.
func TestThresholdFiveIsSpecial(t *testing.T) {
	if testing.Short() {
		t.Skip("workload characterisation test")
	}
	r5 := measureReduction(t, "is", 5)
	r10 := measureReduction(t, "is", 10)
	if r10 <= r5 {
		t.Errorf("is at threshold 10 (%.1f%%) should exceed threshold 5 (%.1f%%)", r10, r5)
	}
	if r5 < 40 {
		t.Errorf("is at threshold 5 should still omit heavily (got %.1f%%)", r5)
	}
}
