package workloads

import (
	"acr/internal/isa"
	"acr/internal/prog"
)

// BuildDC assembles the dc (data cube) kernel.
//
// Structure mirrored from NAS DC: each iteration scans the thread's tuple
// partition, derives a group key with a few arithmetic ops, and accumulates
// the measure into the keyed aggregate (a one-instruction Slice rooted at
// two loads), then materialises a cube view with moderate-depth value
// chains. dc is store-dense with volume spread uniformly over intervals,
// which is why the paper reports its largest reduction of the *largest*
// checkpoint (58.3%, Fig. 9) and the highest energy reduction under errors
// (§V-B). Threads aggregate independently and merge pairwise every few
// iterations, so coordinated-local checkpointing sees small groups (§V-E).
func BuildDC(threads int, class Class) (*prog.Program, error) {
	b := prog.New("dc")
	n := int64(class.N)
	tuples := b.Data(threads * class.N)
	agg := b.Data(threads * class.N)
	view := b.Data(threads * class.N)
	shared := b.Data(64 * lineWords)

	const rAgg isa.Reg = 10
	const rView isa.Reg = 11

	streamSetup(b, threads)
	partitionBase(b, rBase, tuples, n)
	partitionBase(b, rAgg, agg, n)
	partitionBase(b, rView, view, n)
	lcgFill(b, rBase, n)
	b.Barrier()

	viewBuckets := []depthBucket{
		{UpTo: 30, Depth: 8},   // roll-up sums
		{UpTo: 100, Depth: 24}, // derived-measure cells
	}

	outerLoop(b, class.Iters, func() {
		// Aggregation: agg[key(t)] += t. The stored value's Slice is a
		// single add over two buffered loads.
		b.Li(rEnd, n)
		b.Loop(rIdx, rEnd, func() {
			b.Op3(isa.ADD, rAddr, rBase, rIdx)
			b.Ld(rVal, rAddr, 0)
			// key = (t*constant >> 5) mod n — address arithmetic,
			// not part of the stored value's Slice.
			b.OpI(isa.MULI, rTmp, rVal, 2654435761)
			b.OpI(isa.SHRI, rTmp, rTmp, 5)
			b.Li(rTmp2, n)
			b.Op3(isa.REM, rTmp, rTmp, rTmp2)
			b.Op3(isa.ADD, rAddr, rAgg, rTmp)
			b.Ld(rTmp2, rAddr, 0)
			b.Op3(isa.ADD, rVal, rVal, rTmp2)
			b.StAssoc(rVal, rAddr, 0)
		})
		b.Barrier()
		// Cube view materialisation: moderate chains from the aggregates.
		chainPhase(b, rAgg, rView, n, 100, viewBuckets, true)
		// Pairwise merge of partial aggregates.
		pairExchange(b, shared, 8)
		imbalance(b, 24)
	})
	b.Halt()
	return b.Build()
}
