package workloads

import (
	"acr/internal/prog"
)

// BuildFT assembles the ft (3-D FFT) kernel.
//
// Structure mirrored from NAS FT: the input field is generated once by a
// loop-carried pseudo-random recurrence (unrecomputable, and the largest
// store volume of any interval — which is why ft shows the smallest Max
// checkpoint reduction in Fig. 9, 0.05%), then iterations apply butterfly
// passes between the two planes. A butterfly output's Slice is the twiddle
// recurrence feeding it, whose depth varies with the butterfly's position
// in its block; the profile below calibrates Table II (≤10: 23%, ≤20: 71%,
// ≤30: 88%, ≤40: 99.5%). Threads exchange with block-stable partners
// (transpose sub-blocks) and carry imbalanced work, so ft benefits most
// from coordinated-local checkpointing (§V-E reports ≈42%).
func BuildFT(threads int, class Class) (*prog.Program, error) {
	b := prog.New("ft")
	n := int64(class.N)
	x := b.Data(threads * class.N)
	y := b.Data(threads * class.N)
	scratch := b.Data(threads * class.N)
	shared := b.Data(64 * lineWords)

	buckets := []depthBucket{
		{UpTo: 46, Depth: 8},   // 23% first butterflies of a block
		{UpTo: 142, Depth: 16}, // 48%
		{UpTo: 176, Depth: 26}, // 17%
		{UpTo: 199, Depth: 36}, // 11.5%
		{UpTo: 200, Depth: 55}, // long twiddle chains
	}

	streamSetup(b, threads)
	partitionBase(b, rBase, x, n)
	partitionBase(b, rSrc, y, n)
	partitionBase(b, rPart, scratch, n)
	// Input generation: x, y and the scratch plane — triple volume, all
	// produced by the loop-carried recurrence.
	lcgFill(b, rBase, n)
	lcgFill(b, rSrc, n)
	lcgFill(b, rPart, n)
	b.Barrier()

	outerLoop(b, class.Iters, func() {
		// Forward pass x -> y, inverse pass y -> x.
		chainPhase(b, rBase, rSrc, n, 200, buckets, true)
		b.Barrier()
		chainPhase(b, rSrc, rBase, n, 200, buckets, true)
		// Transpose exchange with a block-stable partner.
		pairExchange(b, shared, 8)
		imbalance(b, 48)
	})
	b.Halt()
	return b.Build()
}
