package workloads

import (
	"acr/internal/prog"
)

// BuildSP assembles the sp (scalar pentadiagonal solver) kernel.
//
// Structure mirrored from NAS SP: alternating-direction pentadiagonal line
// solves followed by a global residual reduction each iteration. Like bt
// and cg, the reduction makes sp's communication graph complete, so
// coordinated-local checkpointing cannot beat global (§V-E). The scalar
// (rather than block) factorisation yields somewhat shorter chains than bt;
// the profile calibrates Table II: ≤10: 37.4%, ≤20: 47.9%, ≤30: 71.8%,
// ≤40: 93.8%, ≤50: 96.1%.
func BuildSP(threads int, class Class) (*prog.Program, error) {
	b := prog.New("sp")
	n := int64(class.N)
	u := b.Data(threads * class.N)
	rhs := b.Data(threads * class.N)
	shared := b.Data(64 * lineWords)

	buckets := []depthBucket{
		{UpTo: 374, Depth: 7},
		{UpTo: 479, Depth: 15},
		{UpTo: 718, Depth: 25},
		{UpTo: 938, Depth: 35},
		{UpTo: 961, Depth: 45},
		{UpTo: 1000, Depth: 60},
	}

	streamSetup(b, threads)
	partitionBase(b, rBase, u, n)
	partitionBase(b, rSrc, rhs, n)
	lcgFill(b, rBase, n)
	b.Barrier()

	outerLoop(b, class.Iters, func() {
		chainPhase(b, rBase, rSrc, n, 1000, buckets, true)
		b.Barrier()
		chainPhase(b, rSrc, rBase, n, 1000, buckets, true)
		allToAllReduce(b, shared)
	})
	b.Halt()
	return b.Build()
}
