package slice

import "fmt"

// Validate checks the runtime half of the Slice soundness contract on a
// compiled Slice: every op must be a pure ALU/FPU instruction and every
// operand must reference either a buffered input slot or the result of an
// earlier op (topological order). These are the same proof obligations the
// static verifier (internal/analysis) discharges for compiler-pass slices —
// purity and operand closure — restated over the slot encoding. Tracker.
// Compile applies Validate to every Slice it emits, so a malformed Slice is
// rejected with a diagnostic instead of silently corrupting recovery.
func (c *Compiled) Validate() error {
	base := len(c.Inputs)
	for j, op := range c.Ops {
		if !op.Op.IsALU() {
			return fmt.Errorf("slice: op %d (%v) is not a pure ALU/FPU instruction; slices must not contain memory, branch or system ops", j, op.Op)
		}
		for _, slot := range [3]int32{op.A, op.B, op.C} {
			if slot < -1 {
				return fmt.Errorf("slice: op %d (%v) has invalid operand slot %d", j, op.Op, slot)
			}
			if int(slot) >= base+j {
				return fmt.Errorf("slice: op %d (%v) reads slot %d, which is not produced before it (have %d inputs and %d earlier ops); operands must be topologically ordered", j, op.Op, slot, base, j)
			}
		}
	}
	return nil
}
