package slice

import (
	"math/rand"
	"testing"

	"acr/internal/isa"
)

// regSim pairs a Tracker with an architectural register file so tests can
// check the core invariant: a register's compiled recipe evaluates to its
// architectural value.
type regSim struct {
	t    *Tracker
	regs [isa.NumRegs]int64
}

func newRegSim() *regSim { return &regSim{t: NewTracker(1)} }

func (s *regSim) exec(in isa.Instr) {
	if !in.Op.IsALU() {
		panic("regSim: ALU only")
	}
	res := isa.EvalALU(in.Op, s.regs[in.Rs], s.regs[in.Rt], s.regs[in.Rd], in.Imm)
	if in.Rd != 0 {
		s.regs[in.Rd] = res
	}
	s.t.OnALU(0, in)
}

func (s *regSim) load(rd isa.Reg, val int64) {
	if rd != 0 {
		s.regs[rd] = val
	}
	s.t.OnLoad(0, rd, val)
}

func (s *regSim) checkInvariant(t *testing.T, maxOps int) {
	t.Helper()
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		c, ok := s.t.Compile(0, s.t.Recipe(0, r), maxOps)
		if !ok {
			continue
		}
		if got := c.Eval(nil); got != s.regs[r] {
			t.Fatalf("recipe of %v evaluates to %d, architectural value %d\nslice:\n%s",
				r, got, s.regs[r], c)
		}
	}
}

func TestRecipeMatchesArchitecturalValue(t *testing.T) {
	s := newRegSim()
	s.exec(isa.Instr{Op: isa.LI, Rd: 1, Imm: 7})
	s.exec(isa.Instr{Op: isa.LI, Rd: 2, Imm: 5})
	s.exec(isa.Instr{Op: isa.ADD, Rd: 3, Rs: 1, Rt: 2})
	s.exec(isa.Instr{Op: isa.MUL, Rd: 4, Rs: 3, Rt: 3})
	s.load(5, 100)
	s.exec(isa.Instr{Op: isa.ADD, Rd: 6, Rs: 4, Rt: 5})
	s.checkInvariant(t, 64)

	c, ok := s.t.Compile(0, s.t.Recipe(0, 6), 64)
	if !ok {
		t.Fatal("r6 should compile")
	}
	if c.Eval(nil) != (7+5)*(7+5)+100 {
		t.Fatalf("r6 = %d", c.Eval(nil))
	}
	// Slice contains the two LIs, ADD, MUL, ADD = 5 ops; the load is an
	// input, not a member.
	if c.Len() != 5 {
		t.Errorf("slice length = %d, want 5", c.Len())
	}
	if c.NumInputs() != 1 {
		t.Errorf("inputs = %d, want 1", c.NumInputs())
	}
}

func TestSharedSubexpressionDeduplicated(t *testing.T) {
	s := newRegSim()
	s.exec(isa.Instr{Op: isa.LI, Rd: 1, Imm: 3})
	s.exec(isa.Instr{Op: isa.MUL, Rd: 2, Rs: 1, Rt: 1}) // 9
	s.exec(isa.Instr{Op: isa.ADD, Rd: 3, Rs: 2, Rt: 2}) // 18, r2 shared
	c, ok := s.t.Compile(0, s.t.Recipe(0, 3), 64)
	if !ok {
		t.Fatal("compile failed")
	}
	// li, mul, add = 3 distinct ops even though the tree has 4 nodes.
	if c.Len() != 3 {
		t.Errorf("dedup failed: len = %d, want 3", c.Len())
	}
	if c.Eval(nil) != 18 {
		t.Errorf("Eval = %d", c.Eval(nil))
	}
}

func TestLoadsCutSlices(t *testing.T) {
	s := newRegSim()
	s.load(1, 41)
	s.exec(isa.Instr{Op: isa.ADDI, Rd: 2, Rs: 1, Imm: 1})
	c, ok := s.t.Compile(0, s.t.Recipe(0, 2), 64)
	if !ok {
		t.Fatal("compile failed")
	}
	if c.Len() != 1 || c.NumInputs() != 1 {
		t.Errorf("len=%d inputs=%d, want 1,1", c.Len(), c.NumInputs())
	}
	if c.Eval(nil) != 42 {
		t.Errorf("Eval = %d", c.Eval(nil))
	}
}

func TestOpaquePropagates(t *testing.T) {
	s := newRegSim()
	s.t.MarkOpaque(0, 1)
	s.exec(isa.Instr{Op: isa.ADDI, Rd: 2, Rs: 1, Imm: 1})
	if _, ok := s.t.Compile(0, s.t.Recipe(0, 2), 64); ok {
		t.Error("op over opaque child must be opaque")
	}
}

func TestSaturationCollapsesLongChains(t *testing.T) {
	s := newRegSim()
	s.exec(isa.Instr{Op: isa.LI, Rd: 1, Imm: 1})
	for i := 0; i < SatSize+10; i++ {
		s.exec(isa.Instr{Op: isa.ADDI, Rd: 1, Rs: 1, Imm: 1})
	}
	if s.t.Size(0, s.t.Recipe(0, 1)) != SatSize {
		t.Errorf("size = %d, want saturated %d", s.t.Size(0, s.t.Recipe(0, 1)), SatSize)
	}
	if _, ok := s.t.Compile(0, s.t.Recipe(0, 1), 300); ok {
		t.Error("saturated recipe must not compile")
	}
}

func TestCompileRespectsMaxOps(t *testing.T) {
	s := newRegSim()
	s.exec(isa.Instr{Op: isa.LI, Rd: 1, Imm: 1})
	for i := 0; i < 20; i++ {
		s.exec(isa.Instr{Op: isa.ADDI, Rd: 1, Rs: 1, Imm: 1})
	}
	if _, ok := s.t.Compile(0, s.t.Recipe(0, 1), 10); ok {
		t.Error("21-op recipe compiled under maxOps=10")
	}
	if c, ok := s.t.Compile(0, s.t.Recipe(0, 1), 21); !ok || c.Len() != 21 {
		t.Errorf("21-op recipe should compile under maxOps=21 (ok=%v)", ok)
	}
}

func TestFMAReadsDestination(t *testing.T) {
	s := newRegSim()
	s.exec(isa.Instr{Op: isa.LI, Rd: 1, Imm: 0})
	s.exec(isa.Instr{Op: isa.CVTF, Rd: 1, Rs: 1}) // 0.0 accumulator
	s.load(2, isa.F2I(3.0))
	s.load(3, isa.F2I(4.0))
	s.exec(isa.Instr{Op: isa.FMA, Rd: 1, Rs: 2, Rt: 3})
	c, ok := s.t.Compile(0, s.t.Recipe(0, 1), 64)
	if !ok {
		t.Fatal("FMA recipe should compile")
	}
	if got := isa.I2F(c.Eval(nil)); got != 12.0 {
		t.Errorf("FMA recipe = %g, want 12", got)
	}
}

func TestRandomProgramInvariant(t *testing.T) {
	// Property: after any random sequence of ALU ops and loads, every
	// compilable register recipe evaluates to the architectural value.
	rng := rand.New(rand.NewSource(7))
	aluOps := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SLT, isa.ADDI, isa.MULI, isa.SHLI, isa.SHRI, isa.LI, isa.MOV,
		isa.FADD, isa.FMUL, isa.FSUB, isa.FMA, isa.CVTF}
	for trial := 0; trial < 30; trial++ {
		s := newRegSim()
		for step := 0; step < 300; step++ {
			if rng.Intn(5) == 0 {
				s.load(isa.Reg(rng.Intn(31)+1), rng.Int63())
				continue
			}
			op := aluOps[rng.Intn(len(aluOps))]
			in := isa.Instr{
				Op:  op,
				Rd:  isa.Reg(rng.Intn(31) + 1),
				Rs:  isa.Reg(rng.Intn(32)),
				Rt:  isa.Reg(rng.Intn(32)),
				Imm: rng.Int63n(100) - 50,
			}
			s.exec(in)
		}
		s.checkInvariant(t, 256)
	}
}

func TestCompactionPreservesRecipes(t *testing.T) {
	tr := NewTracker(2)
	var regs [isa.NumRegs]int64
	tr.OnALU(0, isa.Instr{Op: isa.LI, Rd: 1, Imm: 11})
	regs[1] = 11
	tr.OnALU(0, isa.Instr{Op: isa.MULI, Rd: 2, Rs: 1, Imm: 3})
	regs[2] = 33
	tr.OnLoad(1, 5, 77)
	// Force a compaction on core 1's shard by generating garbage.
	tr.shards[1].compactLimit = len(tr.shards[1].arena) + 50
	for i := 0; i < 200; i++ {
		tr.OnALU(1, isa.Instr{Op: isa.LI, Rd: 9, Imm: int64(i)})
	}
	c, ok := tr.Compile(0, tr.Recipe(0, 2), 64)
	if !ok || c.Eval(nil) != 33 {
		t.Fatalf("recipe lost across compaction: ok=%v", ok)
	}
	c, ok = tr.Compile(1, tr.Recipe(1, 5), 64)
	if !ok || c.Eval(nil) != 77 {
		t.Fatalf("other core's recipe lost across compaction: ok=%v", ok)
	}
	c, ok = tr.Compile(1, tr.Recipe(1, 9), 64)
	if !ok || c.Eval(nil) != 199 {
		t.Fatalf("latest recipe wrong after compaction: ok=%v", ok)
	}
	if tr.ArenaLen() > 300 {
		t.Errorf("arena not compacted: %d nodes", tr.ArenaLen())
	}
}

func TestResetCoreCapturesLiveIns(t *testing.T) {
	tr := NewTracker(1)
	var vals [isa.NumRegs]int64
	vals[4] = 1234
	tr.ResetCore(0, &vals)
	c, ok := tr.Compile(0, tr.Recipe(0, 4), 64)
	if !ok || c.Eval(nil) != 1234 {
		t.Fatal("live-in not captured by ResetCore")
	}
	if c.Len() != 0 || c.NumInputs() != 1 {
		t.Errorf("live-in slice: len=%d inputs=%d, want 0,1", c.Len(), c.NumInputs())
	}
}

func TestZeroRegisterRecipe(t *testing.T) {
	tr := NewTracker(1)
	c, ok := tr.Compile(0, tr.Recipe(0, 0), 64)
	if !ok || c.Eval(nil) != 0 {
		t.Fatal("r0 recipe must evaluate to 0")
	}
	// Writes to r0 must not change its recipe.
	tr.OnALU(0, isa.Instr{Op: isa.LI, Rd: 0, Imm: 5})
	c, _ = tr.Compile(0, tr.Recipe(0, 0), 64)
	if c.Eval(nil) != 0 {
		t.Fatal("r0 recipe changed by write")
	}
}

func TestStorageWords(t *testing.T) {
	c := &Compiled{Inputs: []int64{1, 2, 3}, Ops: make([]COp, 5)}
	if got := c.StorageWords(); got != 3+3 {
		t.Errorf("StorageWords = %d, want 6", got)
	}
}

func TestCompiledStringRenders(t *testing.T) {
	s := newRegSim()
	s.load(1, 10)
	s.exec(isa.Instr{Op: isa.ADDI, Rd: 2, Rs: 1, Imm: 5})
	c, _ := s.t.Compile(0, s.t.Recipe(0, 2), 64)
	out := c.String()
	if out == "" {
		t.Fatal("empty rendering")
	}
}

func TestStaticBackwardSliceFig3(t *testing.T) {
	// The Fig. 3 running example, unrolled once:
	//   i, j loaded from memory; sumArr = (i*i) + (j<<1); store sumArr.
	code := []isa.Instr{
		{Op: isa.LD, Rd: 1, Rs: 10, Imm: 0},  // 0: load i      [input]
		{Op: isa.LD, Rd: 2, Rs: 10, Imm: 1},  // 1: load j      [input]
		{Op: isa.MUL, Rd: 3, Rs: 1, Rt: 1},   // 2: i*i         [slice]
		{Op: isa.SHLI, Rd: 4, Rs: 2, Imm: 1}, // 3: j<<1        [slice]
		{Op: isa.LD, Rd: 7, Rs: 10, Imm: 2},  // 4: unrelated load
		{Op: isa.ADD, Rd: 5, Rs: 3, Rt: 4},   // 5: sum         [slice]
		{Op: isa.ADDI, Rd: 8, Rs: 7, Imm: 1}, // 6: unrelated
		{Op: isa.ST, Rs: 11, Rt: 5, Imm: 0},  // 7: store sumArr
	}
	s, err := Backward(code, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantMembers := []int{2, 3, 5}
	if len(s.Members) != len(wantMembers) {
		t.Fatalf("members = %v, want %v", s.Members, wantMembers)
	}
	for i, m := range wantMembers {
		if s.Members[i] != m {
			t.Fatalf("members = %v, want %v", s.Members, wantMembers)
		}
	}
	wantInputs := []int{0, 1}
	if len(s.InputLoads) != 2 || s.InputLoads[0] != 0 || s.InputLoads[1] != 1 {
		t.Fatalf("input loads = %v, want %v", s.InputLoads, wantInputs)
	}
	if s.Len() != 3 || s.NumInputs() != 2 {
		t.Errorf("Len=%d NumInputs=%d, want 3,2", s.Len(), s.NumInputs())
	}
	r := s.Render(code)
	if r == "" {
		t.Error("empty render")
	}
}

func TestStaticBackwardRejectsNonStore(t *testing.T) {
	code := []isa.Instr{{Op: isa.NOP}}
	if _, err := Backward(code, 0); err == nil {
		t.Error("expected error slicing a non-store")
	}
	if _, err := Backward(code, 5); err == nil {
		t.Error("expected error for out-of-range index")
	}
}

func TestStaticLiveInDetected(t *testing.T) {
	// r1 is never defined in the window: it is a live-in input.
	code := []isa.Instr{
		{Op: isa.ADDI, Rd: 2, Rs: 1, Imm: 3},
		{Op: isa.ST, Rs: 10, Rt: 2, Imm: 0},
	}
	s, err := Backward(code, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only r1 is live-in: r10 is the address base, and address registers
	// are not part of the value slice.
	if len(s.LiveIn) != 1 || s.LiveIn[0] != 1 {
		t.Errorf("live-in = %v, want [r1]", s.LiveIn)
	}
}

func TestStaticSliceMultipleStores(t *testing.T) {
	// Two stores in one window: slices must be independent.
	code := []isa.Instr{
		{Op: isa.LD, Rd: 1, Rs: 10, Imm: 0},
		{Op: isa.ADDI, Rd: 2, Rs: 1, Imm: 1},
		{Op: isa.ST, Rs: 11, Rt: 2, Imm: 0},
		{Op: isa.MULI, Rd: 3, Rs: 2, Imm: 5},
		{Op: isa.ST, Rs: 11, Rt: 3, Imm: 1},
	}
	s1, err := Backward(code, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Len() != 1 || s1.NumInputs() != 1 {
		t.Errorf("first store slice: len=%d inputs=%d", s1.Len(), s1.NumInputs())
	}
	s2, err := Backward(code, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Second store's slice: MULI + ADDI (2 members), load input.
	if s2.Len() != 2 || s2.NumInputs() != 1 {
		t.Errorf("second store slice: len=%d inputs=%d", s2.Len(), s2.NumInputs())
	}
}

func TestStaticSliceRedefinitionShadows(t *testing.T) {
	// r2 is defined twice; only the latest definition before the store
	// belongs to the slice.
	code := []isa.Instr{
		{Op: isa.LI, Rd: 2, Imm: 1}, // dead
		{Op: isa.LI, Rd: 2, Imm: 9}, // live
		{Op: isa.ST, Rs: 11, Rt: 2, Imm: 0},
	}
	s, err := Backward(code, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Members[0] != 1 {
		t.Errorf("members = %v, want [1]", s.Members)
	}
}

func TestTrackerSetLiveIn(t *testing.T) {
	tr := NewTracker(1)
	tr.SetLiveIn(0, 4, 1234)
	tr.OnALU(0, isa.Instr{Op: isa.ADDI, Rd: 5, Rs: 4, Imm: 1})
	c, ok := tr.Compile(0, tr.Recipe(0, 5), 10)
	if !ok || c.Eval(nil) != 1235 {
		t.Fatal("live-in not usable as slice input")
	}
}

func TestCompiledOpsSplitByUnit(t *testing.T) {
	c := &Compiled{Inputs: []int64{isa.F2I(1), isa.F2I(2)}, Ops: []COp{
		{Op: isa.FMUL, A: 0, B: 1, C: -1},
		{Op: isa.ADDI, A: 2, B: -1, C: -1, Imm: 0},
	}}
	if c.FloatOps() != 1 || c.IntOps() != 1 {
		t.Errorf("FloatOps=%d IntOps=%d, want 1,1", c.FloatOps(), c.IntOps())
	}
}
