package slice

import (
	"math/rand"
	"testing"

	"acr/internal/isa"
)

// TestCompactionStressMultiCore drives four cores of random ALU and load
// traffic through hundreds of arena compaction cycles at a deliberately
// tiny limit, interleaving context-switch resets, and checks after every
// phase that each compilable register recipe still evaluates to its
// architectural value — the bit-identity contract the iterative compactor
// and the double-buffered arena must preserve.
func TestCompactionStressMultiCore(t *testing.T) {
	const nCores = 4
	aluOps := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SLT, isa.ADDI, isa.MULI, isa.SHLI, isa.SHRI, isa.LI, isa.MOV,
		isa.FADD, isa.FMUL, isa.FSUB, isa.FMA, isa.CVTF}
	rng := rand.New(rand.NewSource(11))
	tr := NewTracker(nCores)
	for i := range tr.shards {
		tr.shards[i].compactLimit = 512
	}
	var regs [nCores][isa.NumRegs]int64
	compactions := 0
	lastLen := tr.ArenaLen()
	for phase := 0; phase < 40; phase++ {
		for step := 0; step < 400; step++ {
			core := rng.Intn(nCores)
			if rng.Intn(5) == 0 {
				rd := isa.Reg(rng.Intn(31) + 1)
				val := rng.Int63()
				regs[core][rd] = val
				tr.OnLoad(core, rd, val)
				continue
			}
			in := isa.Instr{
				Op:  aluOps[rng.Intn(len(aluOps))],
				Rd:  isa.Reg(rng.Intn(31) + 1),
				Rs:  isa.Reg(rng.Intn(32)),
				Rt:  isa.Reg(rng.Intn(32)),
				Imm: rng.Int63n(100) - 50,
			}
			res := isa.EvalALU(in.Op, regs[core][in.Rs], regs[core][in.Rt],
				regs[core][in.Rd], in.Imm)
			if in.Rd != 0 {
				regs[core][in.Rd] = res
			}
			tr.OnALU(core, in)
			if l := tr.ArenaLen(); l < lastLen {
				compactions++
			}
			lastLen = tr.ArenaLen()
		}
		if phase%7 == 3 {
			// Context switch: restart one core from its architectural file.
			core := rng.Intn(nCores)
			tr.ResetCore(core, &regs[core])
		}
		for core := 0; core < nCores; core++ {
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				c, ok := tr.Compile(core, tr.Recipe(core, isa.Reg(r)), 256)
				if !ok {
					continue
				}
				if got := c.Eval(nil); got != regs[core][r] {
					t.Fatalf("phase %d core %d: recipe of r%d = %d, architectural %d\n%s",
						phase, core, r, got, regs[core][r], c)
				}
			}
		}
	}
	if compactions < 5 {
		t.Fatalf("only %d compactions observed — stress did not exercise the compactor", compactions)
	}
	// The growth rule may raise the limit for a large live set, but the
	// arena must stay bounded, not track the 64k ops executed.
	if tr.ArenaLen() > 1<<14 {
		t.Errorf("arena grew unboundedly: %d nodes after %d compactions", tr.ArenaLen(), compactions)
	}
}
