// Package slice implements the recomputation substrate of ACR: extraction,
// representation and evaluation of Slices (paper §II-B, §III-A).
//
// A Slice is the backward slice of the value written by a store, restricted
// to arithmetic/logic instructions: loads (and any other opaque producers)
// cut the slice and their values become buffered *input operands*. The paper
// extracts Slices with a Pin-based compiler pass that unrolls loops and
// embeds qualifying Slices (length ≤ threshold) into the binary; this
// package derives the identical object at simulation time by maintaining,
// per architectural register, the expression DAG ("recipe") of its current
// value. The invariant — evaluating a register's recipe always reproduces
// the register's architectural value bit-for-bit — is what makes amnesic
// recovery exact.
package slice

import (
	"math"

	"acr/internal/isa"
)

// Ref identifies a recipe node inside one core's shard of a Tracker. Refs
// are invalidated by arena compaction; they must not be stored outside the
// Tracker. Durable consumers (the AddrMap) call Compile to obtain a
// standalone Slice.
type Ref = int32

const noRef Ref = -1

// SatSize is the saturation value of the tree-size field: a recipe whose
// unrolled instruction count reaches SatSize is treated as unrecomputable
// (it could never satisfy any threshold the paper sweeps, which tops out at
// 50 instructions).
const SatSize = 255

type nodeKind uint8

const (
	kindOp     nodeKind = iota // interior ALU node
	kindInput                  // buffered input operand (load result or live-in)
	kindZero                   // the hardwired zero register
	kindOpaque                 // unrecomputable value
)

type node struct {
	kind nodeKind
	op   isa.Op
	size uint8 // saturating unrolled instruction count
	a    Ref
	b    Ref
	c    Ref
	imm  int64
	val  int64 // captured value for kindInput leaves
}

// shard is one core's private recipe store. Recipes never reference nodes
// of another core's shard — registers are core-private and loads cut
// Slices — so shards share nothing and distinct cores may track
// concurrently (the parallel execution engine's requirement).
type shard struct {
	arena   []node
	opaque  Ref
	zero    Ref
	recipes [isa.NumRegs]Ref
	// compactLimit triggers arena compaction; live recipes are bounded
	// (≤ SatSize nodes per register), so compaction keeps memory flat.
	compactLimit int

	// spare is the second arena buffer: compact() moves live nodes into
	// it and the buffers swap roles, so no compaction allocates once both
	// have reached compactLimit capacity.
	spare []node
	// remap holds new-ref+1 per old arena index during compaction
	// (0 = not yet moved), so it can be bulk-cleared; stack is the
	// explicit DFS work list replacing the recursive walk.
	remap []Ref
	stack []Ref
	// liveHi is the high-water mark of the post-compaction live set.
	liveHi int

	// Speculative-round state (BeginSpec/CommitSpec/AbortSpec). While a
	// round is open, compaction is deferred by lifting compactLimit —
	// refs recorded by the round's hook events must stay valid until the
	// round commits — and savedLimit holds the real limit. specBase and
	// specRecipes snapshot the rollback point: nodes are only appended
	// during a round, so aborting truncates the arena and restores the
	// recipe roots.
	savedLimit  int
	specBase    int
	specRecipes [isa.NumRegs]Ref
}

// Tracker maintains per-core, per-register recipes. It is the simulator's
// stand-in for the paper's compiler pass plus the input-operand buffer.
//
// The per-instruction path (OnALU/OnLoad → push) appends into a pre-sized
// per-core arena and performs no other work; arenas are kept flat by
// periodic compaction, which retains only nodes reachable from register
// recipes. Compaction double-buffers the arena and reuses its remap and
// work-stack scratch, so steady-state tracking is allocation-free.
//
// The tracker is sharded by core: the tracking methods taking a core index
// (OnALU, OnLoad, the Begin/Commit/AbortSpec round protocol, ...) touch
// only that core's shard, so such calls for DISTINCT cores are safe
// concurrently (calls for the same core are not). Compile/CompileInto are
// the exception: they reuse one Tracker-wide visited table (cTab) — a
// per-shard table at 32 cores costs ~3 MB of scratch and measurably
// thrashes the cache — and so must not run concurrently with each other.
// The simulator honours this by compiling only on the main goroutine:
// serial execution compiles in the FirstStore/Assoc hooks, and the
// parallel engine defers those hooks during speculation (workers only
// Peek, which evaluates already-compiled Slices) and replays them at
// commit, serially.
type Tracker struct {
	shards []shard

	// cTab is the epoch-stamped visited table reused by Compile.
	cTab compileScratch
}

// arenaBudget bounds the total arena nodes across all shards between
// compactions — the same resident-memory budget the pre-sharding single
// arena ran with. Each shard gets budget/nCores (floored), so machine-wide
// footprint and amortized compaction cost stay flat as core count grows
// instead of multiplying by it.
const arenaBudget = 1 << 16

// minCompactLimit floors the per-shard limit so small sweeps don't thrash;
// compact() auto-raises the limit when a shard's live set outgrows it.
const minCompactLimit = 1 << 11

// NewTracker returns a tracker for nCores cores with all registers holding
// the zero recipe (registers are architecturally zero at program start).
func NewTracker(nCores int) *Tracker {
	t := &Tracker{shards: make([]shard, nCores)}
	limit := arenaBudget / nCores
	if limit < minCompactLimit {
		limit = minCompactLimit
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.compactLimit = limit
		s.arena = make([]node, 0, limit/4)
		s.opaque = s.push(node{kind: kindOpaque, size: SatSize})
		s.zero = s.push(node{kind: kindZero, size: 0})
		for r := range s.recipes {
			s.recipes[r] = s.zero
		}
	}
	return t
}

//acr:spec-safe
func (s *shard) push(n node) Ref {
	s.arena = append(s.arena, n)
	return Ref(len(s.arena) - 1)
}

//acr:spec-safe
func (s *shard) at(r Ref) *node { return &s.arena[r] }

//acr:spec-safe
func (s *shard) recipe(reg isa.Reg) Ref {
	if reg == 0 {
		return s.zero
	}
	return s.recipes[reg]
}

//acr:spec-safe
func (s *shard) setRecipe(reg isa.Reg, r Ref) {
	if reg == 0 {
		return
	}
	s.recipes[reg] = r
	if len(s.arena) >= s.compactLimit {
		s.compact()
	}
}

// Recipe returns the recipe of reg on core.
//
//acr:spec-safe
func (t *Tracker) Recipe(core int, reg isa.Reg) Ref {
	return t.shards[core].recipe(reg)
}

// Size returns the unrolled instruction count of core's recipe r (SatSize
// if saturated/unrecomputable).
//
//acr:spec-safe
func (t *Tracker) Size(core int, r Ref) int { return int(t.shards[core].at(r).size) }

// OnLoad records that a load wrote val into rd: the recipe becomes a
// buffered-input leaf capturing the loaded value (loads cut Slices and
// their results are input operands, paper §III-A / Fig. 3).
//
//acr:spec-safe
func (t *Tracker) OnLoad(core int, rd isa.Reg, val int64) {
	s := &t.shards[core]
	s.setRecipe(rd, s.push(node{kind: kindInput, val: val}))
}

// SetLiveIn marks rd as holding an externally-produced value val (e.g.
// restored from a checkpoint). Like a load result, it becomes a buffered
// input leaf.
//
//acr:spec-safe
func (t *Tracker) SetLiveIn(core int, rd isa.Reg, val int64) {
	t.OnLoad(core, rd, val)
}

// ResetCore resets every register of core to input leaves capturing vals
// (vals[0] is ignored; r0 stays the zero recipe).
func (t *Tracker) ResetCore(core int, vals *[isa.NumRegs]int64) {
	s := &t.shards[core]
	for r := 1; r < isa.NumRegs; r++ {
		s.recipes[r] = s.push(node{kind: kindInput, val: vals[r]})
	}
	if len(s.arena) >= s.compactLimit {
		s.compact()
	}
}

// OnALU updates rd's recipe for the executed ALU instruction in.
//
//acr:spec-safe
func (t *Tracker) OnALU(core int, in isa.Instr) {
	rd, ok := in.DstReg()
	if !ok {
		return
	}
	s := &t.shards[core]
	var a, b, c Ref = noRef, noRef, noRef
	switch in.Op {
	case isa.LI, isa.LUI:
		// No register sources.
	case isa.MOV, isa.FNEG, isa.FABS, isa.FSQRT, isa.CVTF, isa.CVTI,
		isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
		a = s.recipe(in.Rs)
	case isa.FMA:
		a = s.recipe(in.Rs)
		b = s.recipe(in.Rt)
		c = s.recipe(in.Rd)
	default:
		a = s.recipe(in.Rs)
		b = s.recipe(in.Rt)
	}
	size := 1
	for _, ch := range [3]Ref{a, b, c} {
		if ch == noRef {
			continue
		}
		n := s.at(ch)
		if n.kind == kindOpaque {
			s.setRecipe(rd, s.opaque)
			return
		}
		size += int(n.size)
	}
	if size >= SatSize {
		s.setRecipe(rd, s.opaque)
		return
	}
	s.setRecipe(rd, s.push(node{
		kind: kindOp, op: in.Op, size: uint8(size),
		a: a, b: b, c: c, imm: in.Imm,
	}))
}

// MarkOpaque forces rd's recipe to the unrecomputable sentinel.
//
//acr:spec-safe
func (t *Tracker) MarkOpaque(core int, rd isa.Reg) {
	s := &t.shards[core]
	s.setRecipe(rd, s.opaque)
}

// ArenaLen reports the number of live arena nodes across all shards
// (diagnostics/tests).
func (t *Tracker) ArenaLen() int {
	n := 0
	for i := range t.shards {
		n += len(t.shards[i].arena)
	}
	return n
}

// BeginSpec opens a speculative round on core's shard: the rollback point
// is snapshotted and compaction is deferred, so refs handed out during the
// round stay valid until CommitSpec (hook-event replay needs them) and
// AbortSpec can discard the round by truncation. Rounds do not nest.
//
//acr:spec-safe
func (t *Tracker) BeginSpec(core int) {
	s := &t.shards[core]
	s.savedLimit = s.compactLimit
	s.compactLimit = math.MaxInt
	s.specBase = len(s.arena)
	s.specRecipes = s.recipes
}

// CommitSpec closes core's speculative round, keeping its nodes. Deferred
// compaction runs now if the arena grew past the limit; the caller must not
// hold refs across this call.
//
//acr:spec-safe
func (t *Tracker) CommitSpec(core int) {
	s := &t.shards[core]
	s.compactLimit = s.savedLimit
	if len(s.arena) >= s.compactLimit {
		s.compact()
	}
}

// AbortSpec discards every node pushed since BeginSpec and restores the
// recipe roots, returning the shard bit-identically to its pre-round state
// (nodes are immutable and only appended, so truncation suffices).
//
//acr:spec-safe
func (t *Tracker) AbortSpec(core int) {
	s := &t.shards[core]
	s.arena = s.arena[:s.specBase]
	s.recipes = s.specRecipes
	s.compactLimit = s.savedLimit
}

// compact rebuilds the shard's arena keeping only nodes reachable from
// register recipes. Reachability is bounded: every live recipe has tree
// size < SatSize, so the compacted arena is small regardless of execution
// length. The walk is iterative (explicit work stack) over a bulk-cleared
// remap array, and the surviving nodes move into the spare buffer, which
// is pre-sized from the live-set high-water mark so the following
// compactLimit pushes never reallocate.
//
//acr:spec-safe
func (s *shard) compact() {
	if cap(s.remap) < len(s.arena) {
		s.remap = make([]Ref, len(s.arena))
	}
	remap := s.remap[:len(s.arena)]
	clear(remap) // 0 = not moved; stored values are new ref + 1

	newArena := s.spare[:0]
	if cap(newArena) < s.compactLimit {
		newArena = make([]node, 0, s.compactLimit)
	}
	newArena = append(newArena, s.arena[s.opaque], s.arena[s.zero])
	remap[s.opaque] = 1
	remap[s.zero] = 2

	stack := s.stack[:0]
	for i, root := range s.recipes {
		if remap[root] == 0 {
			stack = append(stack, root)
			for len(stack) > 0 {
				r := stack[len(stack)-1]
				if remap[r] != 0 {
					stack = stack[:len(stack)-1]
					continue
				}
				n := &s.arena[r]
				// Children move first; push in reverse so they are
				// processed a, b, c.
				ready := true
				if n.c != noRef && remap[n.c] == 0 {
					stack = append(stack, n.c)
					ready = false
				}
				if n.b != noRef && remap[n.b] == 0 {
					stack = append(stack, n.b)
					ready = false
				}
				if n.a != noRef && remap[n.a] == 0 {
					stack = append(stack, n.a)
					ready = false
				}
				if !ready {
					continue
				}
				nn := *n
				if nn.a != noRef {
					nn.a = remap[nn.a] - 1
				}
				if nn.b != noRef {
					nn.b = remap[nn.b] - 1
				}
				if nn.c != noRef {
					nn.c = remap[nn.c] - 1
				}
				newArena = append(newArena, nn)
				remap[r] = Ref(len(newArena))
				stack = stack[:len(stack)-1]
			}
		}
		s.recipes[i] = remap[root] - 1
	}
	s.stack = stack[:0]
	s.spare = s.arena[:0]
	s.arena = newArena
	s.opaque = 0
	s.zero = 1
	if len(s.arena) > s.liveHi {
		s.liveHi = len(s.arena)
	}
	if len(s.arena)*2 > s.compactLimit {
		s.compactLimit = len(s.arena) * 2
	}
}
