// Package slice implements the recomputation substrate of ACR: extraction,
// representation and evaluation of Slices (paper §II-B, §III-A).
//
// A Slice is the backward slice of the value written by a store, restricted
// to arithmetic/logic instructions: loads (and any other opaque producers)
// cut the slice and their values become buffered *input operands*. The paper
// extracts Slices with a Pin-based compiler pass that unrolls loops and
// embeds qualifying Slices (length ≤ threshold) into the binary; this
// package derives the identical object at simulation time by maintaining,
// per architectural register, the expression DAG ("recipe") of its current
// value. The invariant — evaluating a register's recipe always reproduces
// the register's architectural value bit-for-bit — is what makes amnesic
// recovery exact.
package slice

import (
	"acr/internal/isa"
)

// Ref identifies a recipe node inside a Tracker. Refs are invalidated by
// arena compaction; they must not be stored outside the Tracker. Durable
// consumers (the AddrMap) call Compile to obtain a standalone Slice.
type Ref = int32

const noRef Ref = -1

// SatSize is the saturation value of the tree-size field: a recipe whose
// unrolled instruction count reaches SatSize is treated as unrecomputable
// (it could never satisfy any threshold the paper sweeps, which tops out at
// 50 instructions).
const SatSize = 255

type nodeKind uint8

const (
	kindOp     nodeKind = iota // interior ALU node
	kindInput                  // buffered input operand (load result or live-in)
	kindZero                   // the hardwired zero register
	kindOpaque                 // unrecomputable value
)

type node struct {
	kind nodeKind
	op   isa.Op
	size uint8 // saturating unrolled instruction count
	a    Ref
	b    Ref
	c    Ref
	imm  int64
	val  int64 // captured value for kindInput leaves
}

// Tracker maintains per-core, per-register recipes. It is the simulator's
// stand-in for the paper's compiler pass plus the input-operand buffer.
//
// The per-instruction path (OnALU/OnLoad → push) appends into a
// pre-sized arena and performs no other work; the arena is kept flat by
// periodic compaction, which retains only nodes reachable from register
// recipes. Compaction double-buffers the arena and reuses its remap and
// work-stack scratch, so steady-state tracking is allocation-free.
type Tracker struct {
	arena  []node
	opaque Ref
	zero   Ref
	// recipes[core*NumRegs+reg]
	recipes []Ref
	nCores  int
	// compactLimit triggers arena compaction; live recipes are bounded
	// (≤ SatSize nodes per register), so compaction keeps memory flat.
	compactLimit int

	// spare is the second arena buffer: compact() moves live nodes into
	// it and the buffers swap roles, so no compaction allocates once both
	// have reached compactLimit capacity.
	spare []node
	// remap holds new-ref+1 per old arena index during compaction
	// (0 = not yet moved), so it can be bulk-cleared; stack is the
	// explicit DFS work list replacing the recursive walk.
	remap []Ref
	stack []Ref
	// liveHi is the high-water mark of the post-compaction live set,
	// used to pre-size fresh arenas.
	liveHi int

	// cTab is the epoch-stamped visited table reused by Compile.
	cTab compileScratch
}

// defaultCompactLimit bounds the arena between compactions. It trades
// compaction frequency (one sweep per ~64k retired tracked instructions)
// against resident arena memory (two buffers of this many nodes).
const defaultCompactLimit = 1 << 16

// NewTracker returns a tracker for nCores cores with all registers holding
// the zero recipe (registers are architecturally zero at program start).
func NewTracker(nCores int) *Tracker {
	t := &Tracker{
		nCores:       nCores,
		recipes:      make([]Ref, nCores*isa.NumRegs),
		compactLimit: defaultCompactLimit,
	}
	t.arena = make([]node, 0, 4096)
	t.opaque = t.push(node{kind: kindOpaque, size: SatSize})
	t.zero = t.push(node{kind: kindZero, size: 0})
	for i := range t.recipes {
		t.recipes[i] = t.zero
	}
	return t
}

func (t *Tracker) push(n node) Ref {
	t.arena = append(t.arena, n)
	return Ref(len(t.arena) - 1)
}

func (t *Tracker) at(r Ref) *node { return &t.arena[r] }

// Recipe returns the recipe of reg on core.
func (t *Tracker) Recipe(core int, reg isa.Reg) Ref {
	if reg == 0 {
		return t.zero
	}
	return t.recipes[core*isa.NumRegs+int(reg)]
}

func (t *Tracker) setRecipe(core int, reg isa.Reg, r Ref) {
	if reg == 0 {
		return
	}
	t.recipes[core*isa.NumRegs+int(reg)] = r
	if len(t.arena) >= t.compactLimit {
		t.compact()
	}
}

// Size returns the unrolled instruction count of the recipe (SatSize if
// saturated/unrecomputable).
func (t *Tracker) Size(r Ref) int { return int(t.at(r).size) }

// OnLoad records that a load wrote val into rd: the recipe becomes a
// buffered-input leaf capturing the loaded value (loads cut Slices and
// their results are input operands, paper §III-A / Fig. 3).
func (t *Tracker) OnLoad(core int, rd isa.Reg, val int64) {
	t.setRecipe(core, rd, t.push(node{kind: kindInput, val: val}))
}

// SetLiveIn marks rd as holding an externally-produced value val (e.g.
// restored from a checkpoint). Like a load result, it becomes a buffered
// input leaf.
func (t *Tracker) SetLiveIn(core int, rd isa.Reg, val int64) {
	t.setRecipe(core, rd, t.push(node{kind: kindInput, val: val}))
}

// ResetCore resets every register of core to input leaves capturing vals
// (vals[0] is ignored; r0 stays the zero recipe).
func (t *Tracker) ResetCore(core int, vals *[isa.NumRegs]int64) {
	for r := 1; r < isa.NumRegs; r++ {
		t.recipes[core*isa.NumRegs+r] = t.push(node{kind: kindInput, val: vals[r]})
	}
	if len(t.arena) >= t.compactLimit {
		t.compact()
	}
}

// OnALU updates rd's recipe for the executed ALU instruction in.
func (t *Tracker) OnALU(core int, in isa.Instr) {
	rd, ok := in.DstReg()
	if !ok {
		return
	}
	var a, b, c Ref = noRef, noRef, noRef
	switch in.Op {
	case isa.LI, isa.LUI:
		// No register sources.
	case isa.MOV, isa.FNEG, isa.FABS, isa.FSQRT, isa.CVTF, isa.CVTI,
		isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
		a = t.Recipe(core, in.Rs)
	case isa.FMA:
		a = t.Recipe(core, in.Rs)
		b = t.Recipe(core, in.Rt)
		c = t.Recipe(core, in.Rd)
	default:
		a = t.Recipe(core, in.Rs)
		b = t.Recipe(core, in.Rt)
	}
	size := 1
	for _, ch := range [3]Ref{a, b, c} {
		if ch == noRef {
			continue
		}
		n := t.at(ch)
		if n.kind == kindOpaque {
			t.setRecipe(core, rd, t.opaque)
			return
		}
		size += int(n.size)
	}
	if size >= SatSize {
		t.setRecipe(core, rd, t.opaque)
		return
	}
	t.setRecipe(core, rd, t.push(node{
		kind: kindOp, op: in.Op, size: uint8(size),
		a: a, b: b, c: c, imm: in.Imm,
	}))
}

// MarkOpaque forces rd's recipe to the unrecomputable sentinel.
func (t *Tracker) MarkOpaque(core int, rd isa.Reg) {
	t.setRecipe(core, rd, t.opaque)
}

// ArenaLen reports the number of live arena nodes (diagnostics/tests).
func (t *Tracker) ArenaLen() int { return len(t.arena) }

// compact rebuilds the arena keeping only nodes reachable from register
// recipes. Reachability is bounded: every live recipe has tree size
// < SatSize, so the compacted arena is small regardless of execution
// length. The walk is iterative (explicit work stack) over a bulk-cleared
// remap array, and the surviving nodes move into the spare buffer, which
// is pre-sized from the live-set high-water mark so the following
// compactLimit pushes never reallocate.
func (t *Tracker) compact() {
	if cap(t.remap) < len(t.arena) {
		t.remap = make([]Ref, len(t.arena))
	}
	remap := t.remap[:len(t.arena)]
	clear(remap) // 0 = not moved; stored values are new ref + 1

	newArena := t.spare[:0]
	if cap(newArena) < t.compactLimit {
		newArena = make([]node, 0, t.compactLimit)
	}
	newArena = append(newArena, t.arena[t.opaque], t.arena[t.zero])
	remap[t.opaque] = 1
	remap[t.zero] = 2

	stack := t.stack[:0]
	for i, root := range t.recipes {
		if remap[root] == 0 {
			stack = append(stack, root)
			for len(stack) > 0 {
				r := stack[len(stack)-1]
				if remap[r] != 0 {
					stack = stack[:len(stack)-1]
					continue
				}
				n := &t.arena[r]
				// Children move first; push in reverse so they are
				// processed a, b, c.
				ready := true
				if n.c != noRef && remap[n.c] == 0 {
					stack = append(stack, n.c)
					ready = false
				}
				if n.b != noRef && remap[n.b] == 0 {
					stack = append(stack, n.b)
					ready = false
				}
				if n.a != noRef && remap[n.a] == 0 {
					stack = append(stack, n.a)
					ready = false
				}
				if !ready {
					continue
				}
				nn := *n
				if nn.a != noRef {
					nn.a = remap[nn.a] - 1
				}
				if nn.b != noRef {
					nn.b = remap[nn.b] - 1
				}
				if nn.c != noRef {
					nn.c = remap[nn.c] - 1
				}
				newArena = append(newArena, nn)
				remap[r] = Ref(len(newArena))
				stack = stack[:len(stack)-1]
			}
		}
		t.recipes[i] = remap[root] - 1
	}
	t.stack = stack[:0]
	t.spare = t.arena[:0]
	t.arena = newArena
	t.opaque = 0
	t.zero = 1
	if len(t.arena) > t.liveHi {
		t.liveHi = len(t.arena)
	}
	if len(t.arena)*2 > t.compactLimit {
		t.compactLimit = len(t.arena) * 2
	}
}
