package slice

import (
	"fmt"
	"strings"

	"acr/internal/isa"
)

// Static is the result of static backward slicing from a store over a
// straight-line (unrolled) instruction window — the classic Weiser slice of
// Fig. 3(b/c), before it is turned into an ACR Slice by replacing loads
// with buffered inputs (Fig. 3(d)).
type Static struct {
	// StoreIdx is the index of the sliced store within the window.
	StoreIdx int
	// Members lists window indices of arithmetic/logic instructions in
	// the slice, in program order. This is the ACR Slice body.
	Members []int
	// InputLoads lists window indices of load instructions whose results
	// feed the slice; ACR replaces each with a buffered input operand.
	InputLoads []int
	// LiveIn lists registers the slice needs at window entry; these also
	// become buffered inputs.
	LiveIn []isa.Reg
}

// Len returns the ACR Slice length in instructions (members only — loads
// and the store itself are not part of a Slice, paper §III-A).
func (s *Static) Len() int { return len(s.Members) }

// NumInputs returns the number of buffered input operands the Slice needs.
func (s *Static) NumInputs() int { return len(s.InputLoads) + len(s.LiveIn) }

// Backward computes the static backward slice of the store at storeIdx in
// the straight-line window code. Branches inside the window are skipped:
// the paper derives Slices from unrolled traces, so the window is assumed
// to be an execution-ordered trace (Fig. 3's loop "would be unrolled in
// reality", footnote 1).
func Backward(code []isa.Instr, storeIdx int) (*Static, error) {
	if storeIdx < 0 || storeIdx >= len(code) {
		return nil, fmt.Errorf("slice: store index %d out of range", storeIdx)
	}
	st := code[storeIdx]
	if st.Op != isa.ST {
		return nil, fmt.Errorf("slice: instruction %d is %v, not a store", storeIdx, st.Op)
	}
	s := &Static{StoreIdx: storeIdx}
	needed := map[isa.Reg]bool{st.Rt: true}
	delete(needed, 0) // r0 is constant
	var members, inputs []int
	for i := storeIdx - 1; i >= 0; i-- {
		in := code[i]
		rd, writes := in.DstReg()
		if !writes || rd == 0 || !needed[rd] {
			continue
		}
		switch {
		case in.Op.IsALU():
			members = append(members, i)
			delete(needed, rd)
			for _, r := range in.SrcRegs(nil) {
				if r != 0 {
					needed[r] = true
				}
			}
		case in.Op == isa.LD:
			inputs = append(inputs, i)
			delete(needed, rd)
		default:
			// An opaque producer (should not occur for this ISA);
			// treat like a live-in cut.
			delete(needed, rd)
			s.LiveIn = append(s.LiveIn, rd)
		}
	}
	// Reverse into program order.
	for i := len(members) - 1; i >= 0; i-- {
		s.Members = append(s.Members, members[i])
	}
	for i := len(inputs) - 1; i >= 0; i-- {
		s.InputLoads = append(s.InputLoads, inputs[i])
	}
	for r := range needed {
		s.LiveIn = append(s.LiveIn, r)
	}
	sortRegs(s.LiveIn)
	return s, nil
}

func sortRegs(rs []isa.Reg) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j] < rs[j-1]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// Render pretty-prints the slice against its window, in the style of
// Fig. 3: members are marked [S], input loads [I], the store [ST].
func (s *Static) Render(code []isa.Instr) string {
	mark := make(map[int]string)
	for _, i := range s.Members {
		mark[i] = "[S] "
	}
	for _, i := range s.InputLoads {
		mark[i] = "[I] "
	}
	mark[s.StoreIdx] = "[ST]"
	var b strings.Builder
	for i, in := range code {
		m := mark[i]
		if m == "" {
			m = "    "
		}
		fmt.Fprintf(&b, "%s %4d  %s\n", m, i, in)
	}
	if len(s.LiveIn) > 0 {
		fmt.Fprintf(&b, "live-in inputs: %v\n", s.LiveIn)
	}
	return b.String()
}
